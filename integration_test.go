package selest

// Cross-cutting integration tests: properties that must hold across every
// learner in the repository — the agnostic-learning guarantees of
// Section 2.1 (noisy labels), determinism, validity of estimates, and
// persistence round-trips under realistic workloads.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func allTrainers(dim, n int) []Trainer {
	k := 4 * n
	return []Trainer{
		NewQuadHist(dim, k),
		NewPtsHist(dim, k, 3),
		NewQuickSel(dim, 5),
		NewIsomer(dim, 0),
		NewGaussMix(dim, maxI(n/4, 8), 7),
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Agnostic learning (the Remark after Theorem 2.1): labels need not come
// from any data distribution. Training on labels corrupted with bounded
// noise must still produce a model close to the noiseless one.
func TestNoisyLabelRobustness(t *testing.T) {
	ds := NewDataset(Power, 8000, 1).Project([]int{0, 1})
	gen := NewWorkload(ds, 42)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 200, 200)

	// Corrupt labels with ±0.05 uniform noise, clipped to [0,1].
	r := rng.New(99)
	noisy := make([]LabeledQuery, len(train))
	for i, z := range train {
		s := z.Sel + 0.1*(r.Float64()-0.5)
		if s < 0 {
			s = 0
		}
		if s > 1 {
			s = 1
		}
		noisy[i] = LabeledQuery{R: z.R, Sel: s}
	}

	for _, mk := range []func() Trainer{
		func() Trainer { return NewQuadHist(2, 800) },
		func() Trainer { return NewPtsHist(2, 800, 3) },
	} {
		clean, err := mk().Train(train)
		if err != nil {
			t.Fatal(err)
		}
		dirty, err := mk().Train(noisy)
		if err != nil {
			t.Fatal(err)
		}
		cleanRMS := RMS(clean, test)
		dirtyRMS := RMS(dirty, test)
		// The noisy model may be worse, but bounded: the noise std is
		// ~0.029, so the degradation must stay within a few times that.
		if dirtyRMS > cleanRMS+0.06 {
			t.Fatalf("%s: noisy training degraded RMS from %v to %v", mk().Name(), cleanRMS, dirtyRMS)
		}
	}
}

// Every learner must produce valid selectivities (estimates in [0,1]) and
// ≈1 on the whole space, on every query class it supports.
func TestAllModelsProduceValidSelectivities(t *testing.T) {
	ds := NewDataset(Forest, 6000, 2).Project([]int{0, 1})
	gen := NewWorkload(ds, 9)
	spec := Spec{Class: OrthogonalRange, Centers: RandomCenters}
	train, test := gen.TrainTest(spec, 100, 200)
	for _, tr := range allTrainers(2, 100) {
		m, err := tr.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		for _, z := range test {
			e := m.Estimate(z.R)
			if e < 0 || e > 1 || math.IsNaN(e) {
				t.Fatalf("%s: invalid estimate %v", tr.Name(), e)
			}
		}
		whole := m.Estimate(NewBox(Point{0, 0}, Point{1, 1}))
		// GaussMix mass can leak outside the cube; everyone else must
		// put (numerically) all mass inside.
		tol := 1e-6
		if tr.Name() == "GaussMix" {
			tol = 0.2
		}
		if whole < 1-tol-1e-9 || whole > 1+1e-9 {
			t.Fatalf("%s: whole-space estimate %v", tr.Name(), whole)
		}
	}
}

// Training is deterministic: same seed, same feedback → identical models.
func TestTrainingDeterminism(t *testing.T) {
	ds := NewDataset(Power, 5000, 4).Project([]int{0, 1})
	gen := NewWorkload(ds, 21)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 80, 100)
	for _, mk := range []func() Trainer{
		func() Trainer { return NewQuadHist(2, 320) },
		func() Trainer { return NewPtsHist(2, 320, 3) },
		func() Trainer { return NewQuickSel(2, 5) },
		func() Trainer { return NewGaussMix(2, 20, 7) },
	} {
		a, err := mk().Train(train)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().Train(train)
		if err != nil {
			t.Fatal(err)
		}
		for _, z := range test {
			if a.Estimate(z.R) != b.Estimate(z.R) {
				t.Fatalf("%s: non-deterministic training", mk().Name())
			}
		}
	}
}

// Persistence: every trained model survives a save/load round trip with
// identical estimates, via the facade.
func TestPersistenceAcrossAllModels(t *testing.T) {
	ds := NewDataset(Census, 5000, 5).Project([]int{0, 4})
	gen := NewWorkload(ds, 13)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 60, 60)
	for _, tr := range allTrainers(2, 60) {
		m, err := tr.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatalf("%s: save: %v", tr.Name(), err)
		}
		got, err := LoadModel(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", tr.Name(), err)
		}
		for _, z := range test {
			if math.Abs(m.Estimate(z.R)-got.Estimate(z.R)) > 1e-12 {
				t.Fatalf("%s: estimate drift after persistence", tr.Name())
			}
		}
	}
}

// Theorem 2.1 in action: the empirical error of QUADHIST decreases as the
// training size grows through a doubling schedule (allowing small
// non-monotonic wiggles between adjacent sizes but demanding an overall
// downward trend).
func TestLearningCurveTrend(t *testing.T) {
	ds := NewDataset(Power, 10000, 6).Project([]int{0, 1})
	gen := NewWorkload(ds, 33)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	test := gen.Generate(spec, 300)
	sizes := []int{25, 50, 100, 200, 400}
	rms := make([]float64, len(sizes))
	for i, n := range sizes {
		m, err := NewQuadHist(2, 4*n).Train(gen.Generate(spec, n))
		if err != nil {
			t.Fatal(err)
		}
		rms[i] = RMS(m, test)
	}
	if rms[len(rms)-1] >= rms[0] {
		t.Fatalf("no improvement across the learning curve: %v", rms)
	}
	// The 16x-larger training set should at least halve the error.
	if rms[len(rms)-1] > rms[0]/2 {
		t.Fatalf("learning curve too flat: %v", rms)
	}
}

// Streaming and batch QUADHIST agree on held-out error when fed the same
// feedback with the same τ.
func TestStreamingMatchesBatch(t *testing.T) {
	ds := NewDataset(Power, 5000, 7).Project([]int{0, 1})
	gen := NewWorkload(ds, 3)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 150, 150)

	inc, err := NewIncrementalQuadHist(2, 0.01, 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range train {
		if err := inc.Observe(z.R, z.Sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Refit(); err != nil {
		t.Fatal(err)
	}
	if rms := RMS(inc, test); rms > 0.1 {
		t.Fatalf("streaming RMS = %v", rms)
	}
}

// IndexModel must be estimate-identical to the flat model and pass through
// non-box-bucketed models unchanged.
func TestIndexModelEquivalence(t *testing.T) {
	ds := NewDataset(Power, 5000, 8).Project([]int{0, 1})
	gen := NewWorkload(ds, 19)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 120, 120)
	for _, tr := range []Trainer{NewQuadHist(2, 480), NewQuickSel(2, 5), NewIsomer(2, 0)} {
		m, err := tr.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		idx := IndexModel(m)
		if idx.NumBuckets() != m.NumBuckets() {
			t.Fatalf("%s: bucket count drift", tr.Name())
		}
		for _, z := range test {
			if math.Abs(m.Estimate(z.R)-idx.Estimate(z.R)) > 1e-9 {
				t.Fatalf("%s: indexed estimate differs", tr.Name())
			}
		}
	}
	// PTSHIST passes through unchanged.
	pm, err := NewPtsHist(2, 100, 3).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if IndexModel(pm) != pm {
		t.Fatal("point model not passed through")
	}
}
