// Command selvet is the project's static-analysis gate: it loads every
// package of the module with the stdlib go/ast + go/types toolchain (no
// external dependencies) and runs the analyzers of internal/analysis,
// which enforce the determinism, concurrency, and numeric contracts the
// reproduction's results depend on.
//
// Usage:
//
//	selvet ./...                     # whole module (the CI gate)
//	selvet ./internal/solver ./internal/lp
//	selvet -json ./...               # machine-readable findings
//	selvet -run detrand,floateq ./...
//
// Findings print as file:line:col: [analyzer] message and make selvet
// exit 1; a clean tree exits 0; usage or load errors exit 2. Individual
// lines are suppressed with `//selvet:ignore <analyzer> <reason>` on the
// offending or preceding line — the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		run     = flag.String("run", "", "comma-separated analyzer subset (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: selvet [-json] [-run analyzers] [patterns...]\n")
		fmt.Fprintf(os.Stderr, "patterns: ./... (default), package dirs, or dir/... subtrees\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := resolve(mod, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunPackage(pkg, analyzers)...)
	}
	analysis.SortDiagnostics(diags)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if n := len(diags); n > 0 {
			fmt.Printf("selvet: %d finding(s)\n", n)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// resolve expands the command-line patterns against the loaded module.
// "./..." selects every module package; "dir/..." a subtree; a plain path
// selects one package, loading it on demand if the module walk skipped it
// (e.g. fixture directories under testdata).
func resolve(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	seen := map[string]bool{}
	var out []*analysis.Package
	add := func(p *analysis.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range mod.Pkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			rel, err := relPattern(mod, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range mod.Pkgs {
				if p.RelPath == rel || strings.HasPrefix(p.RelPath, rel+"/") || rel == "" {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("selvet: pattern %s matches no packages", pat)
			}
		default:
			rel, err := relPattern(mod, pat)
			if err != nil {
				return nil, err
			}
			if p, ok := mod.Lookup(rel); ok {
				add(p)
				continue
			}
			p, err := mod.LoadDir(pat)
			if err != nil {
				return nil, fmt.Errorf("selvet: cannot load %s: %w", pat, err)
			}
			add(p)
		}
	}
	return out, nil
}

// relPattern normalizes a pattern to a module-relative slash path.
func relPattern(mod *analysis.Module, pat string) (string, error) {
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(mod.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("selvet: %s is outside the module", pat)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	return rel, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selvet:", err)
	os.Exit(2)
}
