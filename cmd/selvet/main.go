// Command selvet is the project's static-analysis gate: it loads every
// package of the module with the stdlib go/ast + go/types toolchain (no
// external dependencies) and runs the analyzers of internal/analysis,
// which enforce the determinism, concurrency, and numeric contracts the
// reproduction's results depend on.
//
// Usage:
//
//	selvet ./...                     # whole module (the CI gate)
//	selvet ./internal/solver ./internal/lp
//	selvet -json ./...               # machine-readable findings + summary
//	selvet -run detrand,floateq ./...
//	selvet -strict-suppressions ./...  # also flag stale //selvet:ignore lines
//
// Findings print as file:line:col: [analyzer] message and make selvet
// exit 1; a clean tree exits 0; usage or load errors exit 2. Individual
// lines are suppressed with `//selvet:ignore <analyzer> <reason>` on the
// offending or preceding line — the reason is mandatory. With
// -strict-suppressions, a directive whose analyzer ran but reported
// nothing on its line is itself a finding: stale suppressions silently
// widen the exemption surface as code changes underneath them.
//
// -json emits an object: {"findings": [...], "summary": {...}} where the
// summary carries per-analyzer finding and suppression counts, files and
// packages scanned, and wall time in milliseconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
)

// summary is the machine-readable run report in -json mode.
type summary struct {
	Findings     map[string]int `json:"findings_by_analyzer"`
	Suppressions map[string]int `json:"suppressions_by_analyzer"`
	Packages     int            `json:"packages"`
	Files        int            `json:"files"`
	ElapsedMS    int64          `json:"elapsed_ms"`
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings and a run summary as JSON")
		run     = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		strict  = flag.Bool("strict-suppressions", false, "flag //selvet:ignore directives that suppress nothing")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: selvet [-json] [-run analyzers] [-strict-suppressions] [patterns...]\n")
		fmt.Fprintf(os.Stderr, "patterns: ./... (default), package dirs, or dir/... subtrees\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	start := time.Now()

	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := analysis.LoadModule(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := resolve(mod, patterns)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	sum := summary{Findings: map[string]int{}, Suppressions: map[string]int{}}
	for _, pkg := range pkgs {
		ds, stats := analysis.RunPackageStats(pkg, analyzers, *strict)
		diags = append(diags, ds...)
		for name, n := range stats.Findings {
			sum.Findings[name] += n
		}
		for name, n := range stats.Suppressions {
			sum.Suppressions[name] += n
		}
		sum.Packages++
		sum.Files += stats.Files
	}
	analysis.SortDiagnostics(diags)
	sum.ElapsedMS = time.Since(start).Milliseconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		out := struct {
			Findings []analysis.Diagnostic `json:"findings"`
			Summary  summary               `json:"summary"`
		}{diags, sum}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if n := len(diags); n > 0 {
			fmt.Printf("selvet: %d finding(s)\n", n)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// resolve expands the command-line patterns against the loaded module.
// "./..." selects every module package; "dir/..." a subtree; a plain path
// selects one package, loading it on demand if the module walk skipped it
// (e.g. fixture directories under testdata).
func resolve(mod *analysis.Module, patterns []string) ([]*analysis.Package, error) {
	seen := map[string]bool{}
	var out []*analysis.Package
	add := func(p *analysis.Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			for _, p := range mod.Pkgs {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			rel, err := relPattern(mod, strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range mod.Pkgs {
				if p.RelPath == rel || strings.HasPrefix(p.RelPath, rel+"/") || rel == "" {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("selvet: pattern %s matches no packages", pat)
			}
		default:
			rel, err := relPattern(mod, pat)
			if err != nil {
				return nil, err
			}
			if p, ok := mod.Lookup(rel); ok {
				add(p)
				continue
			}
			p, err := mod.LoadDir(pat)
			if err != nil {
				return nil, fmt.Errorf("selvet: cannot load %s: %w", pat, err)
			}
			add(p)
		}
	}
	return out, nil
}

// relPattern normalizes a pattern to a module-relative slash path.
func relPattern(mod *analysis.Module, pat string) (string, error) {
	abs, err := filepath.Abs(pat)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(mod.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("selvet: %s is outside the module", pat)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	return rel, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selvet:", err)
	os.Exit(2)
}
