// Command selload drives a deterministic open-loop load schedule against
// a live selserve and judges the run against a declarative SLO manifest.
//
// Usage:
//
//	selload -self -rate 500 -duration 5s                 # in-process server
//	selload -addr http://host:8080 -bin-addr host:9090   # external server
//	selload -self -slo scripts/slo.json -o report.json   # gate + artifact
//
// The schedule is a pure function of -seed/-rate/-duration/-arrival/-mix:
// the same flags reproduce the same request stream byte for byte at any
// -workers value (workers only partition the one global schedule). Two
// latency views are recorded per traffic class — intended-start
// (completion minus scheduled start; immune to coordinated omission) and
// actual-start (completion minus send) — and the server's /metrics page is
// scraped before and after so the JSON report correlates client tails
// with server-side histogram and counter deltas.
//
// Exit status: 0 on success, 1 when the run fails or the SLO manifest is
// violated, 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target base URL, e.g. http://127.0.0.1:8080 (omit with -self)")
		binAddr  = flag.String("bin-addr", "", "binary-protocol host:port (required when the mix sends bin traffic to an external server)")
		self     = flag.Bool("self", false, "spawn an in-process selserve (HTTP and binary listeners on 127.0.0.1) and load it")
		rate     = flag.Float64("rate", 200, "mean arrivals per second, all classes combined")
		duration = flag.Duration("duration", 5*time.Second, "schedule horizon")
		arrival  = flag.String("arrival", "exp", "inter-arrival process: exp (Poisson) or uniform")
		seed     = flag.Uint64("seed", 1, "base schedule seed; same seed, same request stream")
		workers  = flag.Int("workers", 4, "concurrent senders, one persistent connection each (does not change the schedule)")
		mixFlag  = flag.String("mix", "", `traffic mix as "class=weight,..." over single, batch, stream, bin, feedback, swap (default: the built-in estimate-dominated mix)`)
		model    = flag.String("model", "", "target model name (empty = server default)")
		buckets  = flag.Int("model-buckets", 4096, "grid-model buckets for the -self server")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout (0 = none)")
		sloPath  = flag.String("slo", "", "SLO manifest path; violations fail the run (exit 1)")
		out      = flag.String("o", "", "write the JSON report artifact to this file")
	)
	flag.Parse()

	mix := load.DefaultMix()
	if *mixFlag != "" {
		m, err := load.ParseMix(*mixFlag)
		if err != nil {
			usage(err)
		}
		mix = m
	}
	arr, err := load.ParseArrival(*arrival)
	if err != nil {
		usage(err)
	}
	var manifest *load.Manifest
	if *sloPath != "" {
		f, err := os.Open(*sloPath)
		if err != nil {
			usage(err)
		}
		manifest, err = load.ParseManifest(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			usage(err)
		}
	}
	if *self == (*addr != "") {
		usage(fmt.Errorf("need exactly one of -self or -addr"))
	}

	opts := load.Options{
		BaseURL: *addr,
		BinAddr: *binAddr,
		Model:   *model,
		Workers: *workers,
		Timeout: *timeout,
		Spec: load.ScheduleSpec{
			Seed:     *seed,
			Rate:     *rate,
			Duration: *duration,
			Arrival:  arr,
			Mix:      mix,
		},
	}
	if *self {
		stop, err := startSelf(&opts, *buckets)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	before := scrape(opts.BaseURL, *timeout, "before")
	res, err := load.Run(opts)
	if err != nil {
		fatal(err)
	}
	after := scrape(opts.BaseURL, *timeout, "after")

	report := load.BuildReport(opts, res, before, after)
	rep := load.NewReporter(os.Stdout)
	rep.Titlef("selload: %d events in %.2fs (%.1f rps achieved, %.1f scheduled), seed %d, %d workers",
		res.Events, res.Wall.Seconds(), report.AchievedRPS, *rate, *seed, *workers)
	rep.ClassTable(res.Collector)
	if err := rep.Err(); err != nil {
		fatal(err)
	}

	pass := true
	if manifest != nil {
		verdict := report.Judge(manifest, res.Collector, load.FeedbackLostDelta(before, after))
		pass = verdict.Pass
		if pass {
			fmt.Printf("SLO %q: PASS\n", verdict.Name)
		} else {
			fmt.Printf("SLO %q: FAIL (%d violations)\n", verdict.Name, len(verdict.Violations))
			for _, v := range verdict.Violations {
				fmt.Printf("  %s\n", v)
			}
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		err = report.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
	}
	if !pass {
		os.Exit(1)
	}
}

// startSelf boots an in-process selserve on loopback listeners — online
// updates enabled so feedback traffic exercises the microsecond update
// path, background retraining effectively off so the run stays a function
// of the schedule — and points opts at it.
func startSelf(opts *load.Options, buckets int) (stop func(), err error) {
	model := load.GridModel(buckets, 0)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{
		OnlineUpdates:     true,
		MinRetrainSamples: 1 << 30,
	})
	s.Registry().Set(serve.DefaultModelName, "selload-self", model)

	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	binLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = httpLn.Close() // already failing; the listen error is the story
		return nil, err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(httpLn)
	ctx, cancel := context.WithCancel(context.Background())
	binDone := make(chan struct{})
	go func() { defer close(binDone); _ = s.ServeBin(ctx, binLn) }()

	opts.BaseURL = "http://" + httpLn.Addr().String()
	opts.BinAddr = binLn.Addr().String()
	fmt.Printf("selload: self server on %s (bin %s)\n", opts.BaseURL, opts.BinAddr)
	return func() {
		cancel()
		_ = srv.Close() // teardown on exit; nothing to do with the error
		<-binDone
	}, nil
}

// scrape fetches one /metrics bookend; a failed scrape degrades the report
// (no server block) rather than failing the run.
func scrape(baseURL string, timeout time.Duration, which string) *obs.Scrape {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	sc, err := load.ScrapeMetrics(baseURL, timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selload: %s scrape failed, report will omit server deltas: %v\n", which, err)
		return nil
	}
	return sc
}

func usage(err error) {
	fmt.Fprintln(os.Stderr, "selload:", err)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selload:", err)
	os.Exit(1)
}
