// Command selgen emits synthetic datasets and labeled query workloads as
// CSV, for inspection or for driving external tools.
//
// Usage:
//
//	selgen -dataset power -n 10000 > power.csv
//	selgen -dataset forest -dims 3 -workload data-driven -class ball -queries 500 > wl.csv
//
// Without -workload it prints tuples (one row per tuple, one column per
// attribute). With -workload it prints labeled queries in the interchange
// format consumed by seltrain.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/workload"
)

func main() {
	var (
		dsName   = flag.String("dataset", "power", "dataset: power, forest, census, dmv")
		n        = flag.Int("n", 0, "tuple count (0 = dataset default)")
		seed     = flag.Uint64("seed", 1, "generation seed")
		dims     = flag.Int("dims", 2, "number of (leading) attributes to project onto")
		wl       = flag.String("workload", "", "emit a workload instead of tuples: data-driven, random, gaussian")
		class    = flag.String("class", "range", "query class: range, halfspace, ball")
		nQueries = flag.Int("queries", 200, "number of queries to emit")
		maxSide  = flag.Float64("maxside", 0, "cap on range-query side lengths (0 = paper's [0,1])")
		stats    = flag.Bool("stats", false, "print workload selectivity statistics instead of CSV")
	)
	flag.Parse()

	ds := dataset.ByName(*dsName, *n, *seed)
	idx := make([]int, *dims)
	for i := range idx {
		idx[i] = i
	}
	proj := ds.Project(idx)

	if *wl == "" {
		w := bufio.NewWriter(os.Stdout)
		names := make([]string, proj.Dim())
		for i, c := range proj.Cols {
			names[i] = c.Name
		}
		fmt.Fprintln(w, strings.Join(names, ","))
		for _, p := range proj.Points {
			parts := make([]string, len(p))
			for i, v := range p {
				parts[i] = strconv.FormatFloat(v, 'g', 8, 64)
			}
			fmt.Fprintln(w, strings.Join(parts, ","))
		}
		// bufio latches the first write error; Flush surfaces it.
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		return
	}

	centers, err := workload.ParseCenters(*wl)
	if err != nil {
		fatal(err)
	}
	qclass, err := workload.ParseClass(*class)
	if err != nil {
		fatal(err)
	}
	gen := workload.NewGenerator(proj, *seed+1)
	queries := gen.Generate(workload.Spec{Class: qclass, Centers: centers, MaxSide: *maxSide}, *nQueries)
	if *stats {
		s := workload.Summarize(queries)
		fmt.Printf("queries        %d\n", s.N)
		fmt.Printf("mean sel       %.5f\n", s.Mean)
		fmt.Printf("median sel     %.5f\n", s.Median)
		fmt.Printf("min/max sel    %.5f / %.5f\n", s.Min, s.Max)
		fmt.Printf("near-zero frac %.3f (sel < %g)\n", s.NearZeroFrac, workload.NearZeroThreshold)
		return
	}
	if err := workload.WriteCSV(os.Stdout, qclass, queries); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selgen:", err)
	os.Exit(1)
}
