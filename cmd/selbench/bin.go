package main

// The -bin mode: end-to-end throughput of the length-prefixed binary
// protocol (DESIGN.md §15) over real TCP, next to the NDJSON stream and
// JSON batch paths from -stream so all three wire formats are measured
// against the same 4096-bucket model in one table. Three binary rows:
// single (one estimate frame per round trip), pipeline (all frames
// written before reading responses), and batch (one batched-estimate
// frame carrying every query).

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/wirebin"
)

// runBin benchmarks the binary wire path with n queries split across
// conns persistent connections, reporting best-of-3 ns/query.
func runBin(w io.Writer, n, conns int) error {
	if conns < 1 {
		conns = 1
	}
	model := load.GridModel(4096, 0)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{})
	s.Registry().Set(serve.DefaultModelName, "bench", model)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = s.ServeBin(ctx, ln) }()
	defer func() { cancel(); <-done }()

	queries := load.GridQueries(7, n)

	rows := []struct {
		name string
		run  func(c *wirebin.Client, lo, hi int) error
	}{
		{"single", func(c *wirebin.Client, lo, hi int) error {
			for _, q := range queries[lo:hi] {
				if _, _, err := c.Estimate("", q); err != nil {
					return err
				}
			}
			return nil
		}},
		{"pipeline", func(c *wirebin.Client, lo, hi int) error {
			reqs := make([][]byte, 0, hi-lo)
			for _, q := range queries[lo:hi] {
				f, err := wirebin.AppendEstimateReq(nil, nil, q)
				if err != nil {
					return err
				}
				reqs = append(reqs, f)
			}
			got := 0
			if err := c.Pipeline(reqs, func(i int, r *wirebin.Response) error {
				got++
				return nil
			}); err != nil {
				return err
			}
			if got != hi-lo {
				return fmt.Errorf("pipeline: %d responses, want %d", got, hi-lo)
			}
			return nil
		}},
		{"batch", func(c *wirebin.Client, lo, hi int) error {
			ests, _, err := c.EstimateBatch("", queries[lo:hi], nil)
			if err != nil {
				return err
			}
			if len(ests) != hi-lo {
				return fmt.Errorf("batch: %d estimates, want %d", len(ests), hi-lo)
			}
			return nil
		}},
	}

	rep := load.NewReporter(w)
	rep.Titlef("binary wire path throughput, %d queries, %d conns (best of 3)", n, conns)
	rep.ThroughputHeader("ns/query", "queries/sec")
	addr := ln.Addr().String()
	for _, row := range rows {
		best, err := bestOf(3, func() (time.Duration, error) {
			return binRep(addr, conns, n, row.run)
		})
		if err != nil {
			return fmt.Errorf("%s: %v", row.name, err)
		}
		arm := load.NewBench(row.name)
		arm.ObserveBatch(best.Seconds(), n)
		rep.ThroughputRow(row.name, arm.MeanNs())
	}
	return rep.Err()
}

// binRep runs one timed repetition: conns clients in parallel, each
// owning an equal shard of the n queries over its own connection.
func binRep(addr string, conns, n int, run func(c *wirebin.Client, lo, hi int) error) (time.Duration, error) {
	clients := make([]*wirebin.Client, conns)
	for i := range clients {
		c, err := wirebin.Dial(addr)
		if err != nil {
			return 0, err
		}
		defer c.Close()
		clients[i] = c
	}
	errs := make([]error, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		lo, hi := i*n/conns, (i+1)*n/conns
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(i int, c *wirebin.Client, lo, hi int) {
			defer wg.Done()
			errs[i] = run(c, lo, hi)
		}(i, c, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return elapsed, nil
}

// bestOf returns the fastest of reps calls to f.
func bestOf(reps int, f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		elapsed, err := f()
		if err != nil {
			return 0, err
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, nil
}
