package main

// The -trainprof mode: per-family training profiles on one synthetic
// labeled workload, printed as TrainStats summary lines. It answers
// "where does training time go for each method?" from the command line,
// using the same obs.TrainLog instrumentation that seltrain -trace and
// the serving retrainer expose — no `go test -bench` harness needed.

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
)

// trainProfWorkload labels n synthetic box queries with a grid-model
// ground truth (the estpath model), so every family trains on identical,
// deterministic feedback.
func trainProfWorkload(n int) []core.LabeledQuery {
	truth := load.GridModel(4096, 0)
	core.Accelerate(truth)
	qs := load.GridQueries(7, n)
	samples := make([]core.LabeledQuery, len(qs))
	for i, q := range qs {
		samples[i] = core.LabeledQuery{R: q, Sel: truth.Estimate(q)}
	}
	return samples
}

// runTrainProf trains each model family on the synthetic workload and
// prints one stage-timing line per family.
func runTrainProf(w io.Writer, n int) error {
	samples := trainProfWorkload(n)
	nTrain := len(samples)
	buckets := 4 * nTrain
	const dim = 2

	families := []struct {
		name string
		make func(log *obs.TrainLog) core.Trainer
	}{
		{"quadhist", func(log *obs.TrainLog) core.Trainer {
			tr := hist.New(dim, buckets)
			tr.Log = log
			return tr
		}},
		{"ptshist", func(log *obs.TrainLog) core.Trainer {
			tr := ptshist.New(dim, buckets, 1)
			tr.Log = log
			return tr
		}},
		{"quicksel", func(log *obs.TrainLog) core.Trainer {
			tr := quicksel.New(dim, 1)
			tr.Log = log
			return tr
		}},
		{"isomer", func(log *obs.TrainLog) core.Trainer {
			tr := isomer.New(dim)
			tr.Log = log
			return tr
		}},
	}

	if _, err := fmt.Fprintf(w, "training profile (%d queries, dim %d, %d buckets)\n", nTrain, dim, buckets); err != nil {
		return err
	}
	for _, fam := range families {
		log := obs.NewTrainLog(obs.Span{})
		tr := fam.make(log)
		if _, err := tr.Train(samples); err != nil {
			if _, werr := fmt.Fprintf(w, "%-9s error: %v\n", fam.name, err); werr != nil {
				return werr
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-9s %s\n", fam.name, log.Stats().Summary()); err != nil {
			return err
		}
	}
	return nil
}
