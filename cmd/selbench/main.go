// Command selbench regenerates the paper's tables and figures.
//
// Usage:
//
//	selbench -exp fig11              # one experiment, default preset
//	selbench -exp table1 -preset full
//	selbench -all -preset quick      # every registered experiment
//	selbench -list                   # show experiment ids
//
// Output is plain-text tables, one per figure/table, in the format recorded
// in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list)")
		preset    = flag.String("preset", "default", "preset: quick, default, full")
		all       = flag.Bool("all", false, "run every registered experiment")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		seed      = flag.Uint64("seed", 0, "override the preset's base seed")
		out       = flag.String("o", "", "write output to this file instead of stdout")
		workers   = flag.Int("workers", 0, "concurrent sweep points and kernel workers (0 = all CPUs); results are identical for any value")
		estpath   = flag.Bool("estpath", false, "benchmark the estimate hot path (flat vs BVH vs BVH+cache) and exit")
		estIters  = flag.Int("estpath-iters", 20000, "query evaluations per estimate-path cell")
		trainprof = flag.Bool("trainprof", false, "print per-family training stage timings on a synthetic workload and exit")
		trainN    = flag.Int("trainprof-queries", 200, "training queries for -trainprof")
		stream    = flag.Bool("stream", false, "benchmark the NDJSON stream endpoint vs the batch endpoint over a real listener and exit")
		streamN   = flag.Int("stream-queries", 50000, "queries per request for -stream")
		bin       = flag.Bool("bin", false, "benchmark the binary wire protocol over a real listener and exit")
		binN      = flag.Int("bin-queries", 50000, "total queries for -bin")
		conns     = flag.Int("conns", 1, "parallel persistent connections for -stream and -bin")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *estpath {
		if err := runEstPath(os.Stdout, *estIters); err != nil {
			fatal(err)
		}
		return
	}
	if *trainprof {
		if err := runTrainProf(os.Stdout, *trainN); err != nil {
			fatal(err)
		}
		return
	}
	if *stream {
		if err := runStream(os.Stdout, *streamN, *conns); err != nil {
			fatal(err)
		}
		return
	}
	if *bin {
		if err := runBin(os.Stdout, *binN, *conns); err != nil {
			fatal(err)
		}
		return
	}
	cfg, err := experiments.Preset(*preset)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers != 0 {
		cfg.Workers = *workers
		parallel.SetDefault(*workers)
	}

	ids := []string{*exp}
	if *all {
		ids = experiments.IDs()
	} else if *exp == "" {
		fmt.Fprintln(os.Stderr, "selbench: need -exp <id>, -all, or -list")
		flag.Usage()
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
	}
	for _, id := range ids {
		start := time.Now()
		results, err := experiments.Run(id, cfg)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			if err := r.Render(w); err != nil {
				fatal(err)
			}
		}
		if _, err := fmt.Fprintf(w, "(%s completed in %.1fs, preset %s)\n\n", id, time.Since(start).Seconds(), *preset); err != nil {
			fatal(err)
		}
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selbench:", err)
	os.Exit(1)
}
