package main

// The -stream mode: end-to-end throughput of the NDJSON streaming
// endpoint (DESIGN.md §13) against the batched /v1/estimate JSON
// endpoint, over a real TCP listener so the numbers include the full
// HTTP stack. The model, queries, request bodies, and the result table
// all come from internal/load — the same 4096-bucket grid the -estpath
// mode and the open-loop harness use, so the delta between rows is wire
// and codec cost, not workload drift.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/load"
	"repro/internal/serve"
)

// postAndDrain posts body and reads the whole response, returning the
// number of newline-delimited lines and the elapsed wall time.
func postAndDrain(url, contentType string, body []byte) (lines int, elapsed time.Duration, err error) {
	start := time.Now()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, 0, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		b, err := br.ReadBytes('\n')
		if len(b) > 0 {
			lines++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return lines, 0, err
		}
	}
	return lines, time.Since(start), nil
}

// runStream benchmarks the stream vs batch wire paths with n queries
// split across conns parallel connections, reporting best-of ns/query.
func runStream(w io.Writer, n, conns int) error {
	if conns < 1 {
		conns = 1
	}
	model := load.GridModel(4096, 0)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{})
	s.Registry().Set(serve.DefaultModelName, "bench", model)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	queries := load.GridQueries(7, n)

	// Each connection posts its own shard of the query set; with
	// conns=1 this is the original single-request benchmark.
	type shard struct {
		body      []byte
		wantLines int
	}
	makeShards := func(render func([]geom.Range) []byte, linesPer func(int) int) []shard {
		out := make([]shard, 0, conns)
		for i := 0; i < conns; i++ {
			lo, hi := i*n/conns, (i+1)*n/conns
			if lo == hi {
				continue
			}
			out = append(out, shard{render(queries[lo:hi]), linesPer(hi - lo)})
		}
		return out
	}
	rows := []struct {
		name, url, ctype string
		shards           []shard
	}{
		{"stream", base + "/v1/estimate/stream", "application/x-ndjson",
			makeShards(load.StreamBody, func(k int) int { return k })},
		{"batch", base + "/v1/estimate", "application/json",
			makeShards(func(qs []geom.Range) []byte { return load.BatchBody("", qs) },
				func(int) int { return 1 })},
	}

	rep := load.NewReporter(w)
	rep.Titlef("wire path throughput, %d queries, %d conns (best of 3)", n, conns)
	rep.ThroughputHeader("ns/query", "queries/sec")
	for _, row := range rows {
		best, err := bestOf(3, func() (time.Duration, error) {
			errs := make([]error, len(row.shards))
			var wg sync.WaitGroup
			start := time.Now()
			for i, sh := range row.shards {
				wg.Add(1)
				go func(i int, sh shard) {
					defer wg.Done()
					lines, _, err := postAndDrain(row.url, row.ctype, sh.body)
					if err == nil && lines != sh.wantLines {
						err = fmt.Errorf("%d response lines, want %d", lines, sh.wantLines)
					}
					errs[i] = err
				}(i, sh)
			}
			wg.Wait()
			elapsed := time.Since(start)
			for _, err := range errs {
				if err != nil {
					return 0, err
				}
			}
			return elapsed, nil
		})
		if err != nil {
			return fmt.Errorf("%s: %v", row.name, err)
		}
		arm := load.NewBench(row.name)
		arm.ObserveBatch(best.Seconds(), n)
		rep.ThroughputRow(row.name, arm.MeanNs())
	}
	return rep.Err()
}
