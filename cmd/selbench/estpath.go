package main

// The -estpath mode: a self-contained benchmark of the estimate hot path
// (DESIGN.md §10) that needs no `go test` harness — flat O(m) scan vs the
// BVH index vs the BVH behind the serving cache, at each bucket count the
// serving layer is sized for. Models are synthetic k×k grids so the run
// measures prediction, not training.

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/serve"
)

// estPathModel builds a k×k grid histogram (m = k² buckets) with
// deterministic simplex weights.
func estPathModel(m int) *hist.Model {
	k := int(math.Round(math.Sqrt(float64(m))))
	buckets := make([]geom.Box, 0, k*k)
	weights := make([]float64, 0, k*k)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			buckets = append(buckets, geom.NewBox(
				geom.Point{float64(i) / float64(k), float64(j) / float64(k)},
				geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)},
			))
			w := float64((i*31+j*17)%97 + 1)
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &hist.Model{Buckets: buckets, Weights: weights}
}

func estPathQueries(n int) []geom.Range {
	r := rng.New(7)
	qs := make([]geom.Range, n)
	for i := range qs {
		c := geom.Point{r.Float64(), r.Float64()}
		qs[i] = geom.BoxFromCenter(c, []float64{0.02 + 0.3*r.Float64(), 0.02 + 0.3*r.Float64()})
	}
	return qs
}

// timeKernel runs fn over iters query evaluations and returns ns/query.
func timeKernel(iters int, queries []geom.Range, fn func(q geom.Range)) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(queries[i%len(queries)])
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// runEstPath prints the estimate-path latency table. iters is the number
// of query evaluations per (kernel, m) cell.
func runEstPath(w io.Writer, iters int) error {
	queries := estPathQueries(256)
	if _, err := fmt.Fprintf(w, "estimate path latency, ns/query (%d iterations per cell)\n", iters); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %12s %12s %12s %10s %12s\n",
		"m", "flat", "bvh", "bvh+cache", "bvh_x", "cache_x"); err != nil {
		return err
	}
	for _, m := range []int{256, 1024, 4096, 16384} {
		model := estPathModel(m)
		flat := timeKernel(iters, queries, func(q geom.Range) {
			bvh.EstimateFlat(model.Buckets, model.Weights, q)
		})
		core.Accelerate(model)
		accel := timeKernel(iters, queries, func(q geom.Range) {
			model.Estimate(q)
		})
		cache := serve.NewEstimateCache(4 * len(queries))
		cached := timeKernel(iters, queries, func(q geom.Range) {
			key, ok := serve.QueryKey(q)
			if !ok {
				return
			}
			if _, hit := cache.Get("bench", 1, key); hit {
				return
			}
			cache.Put("bench", 1, key, model.Estimate(q))
		})
		if _, err := fmt.Fprintf(w, "%8d %12.0f %12.0f %12.0f %9.1fx %11.1fx\n",
			m, flat, accel, cached, flat/accel, flat/cached); err != nil {
			return err
		}
	}
	return nil
}
