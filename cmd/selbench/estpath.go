package main

// The -estpath mode: a self-contained benchmark of the estimate hot path
// (DESIGN.md §10) that needs no `go test` harness — flat O(m) scan vs the
// BVH index vs the BVH behind the serving cache, at each bucket count the
// serving layer is sized for. Models and queries come from internal/load
// (the same generators the load harness and wire benchmarks use), so
// every benchmark in the repo measures the same workload.

import (
	"io"
	"time"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/load"
	"repro/internal/serve"
)

// timeKernel runs fn over iters query evaluations and returns the mean
// ns/query, accounted through a shared-reporter histogram arm (the timing
// wraps the whole loop, so the kernel itself carries no per-call
// instrumentation).
func timeKernel(name string, iters int, queries []geom.Range, fn func(q geom.Range)) float64 {
	arm := load.NewBench(name)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn(queries[i%len(queries)])
	}
	arm.ObserveBatch(time.Since(start).Seconds(), iters)
	return arm.MeanNs()
}

// runEstPath prints the estimate-path latency table. iters is the number
// of query evaluations per (kernel, m) cell.
func runEstPath(w io.Writer, iters int) error {
	queries := load.GridQueries(7, 256)
	rep := load.NewReporter(w)
	rep.Titlef("estimate path latency, ns/query (%d iterations per cell)", iters)
	rep.Rowf("%8s %12s %12s %12s %10s %12s",
		"m", "flat", "bvh", "bvh+cache", "bvh_x", "cache_x")
	for _, m := range []int{256, 1024, 4096, 16384} {
		model := load.GridModel(m, 0)
		flat := timeKernel("flat", iters, queries, func(q geom.Range) {
			bvh.EstimateFlat(model.Buckets, model.Weights, q)
		})
		core.Accelerate(model)
		accel := timeKernel("bvh", iters, queries, func(q geom.Range) {
			model.Estimate(q)
		})
		cache := serve.NewEstimateCache(4 * len(queries))
		cached := timeKernel("bvh+cache", iters, queries, func(q geom.Range) {
			key, ok := serve.QueryKey(q)
			if !ok {
				return
			}
			if _, hit := cache.Get("bench", 1, key); hit {
				return
			}
			cache.Put("bench", 1, key, model.Estimate(q))
		})
		rep.Rowf("%8d %12.0f %12.0f %12.0f %9.1fx %11.1fx",
			m, flat, accel, cached, flat/accel, flat/cached)
	}
	return rep.Err()
}
