// Command seltrain trains a named selectivity model on a labeled workload
// CSV (as produced by selgen -workload …) and reports its accuracy.
//
// Usage:
//
//	selgen -dataset power -workload data-driven -queries 1000 > wl.csv
//	seltrain -model quadhist -class range -train 0.7 -out m.json < wl.csv
//
// The file is split into a training prefix and a test suffix according to
// -train; metrics are computed on the held-out suffix. With -out the
// trained model is written as a modelio envelope, ready for selserve:
//
//	selserve -model m.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/metrics"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

func main() {
	var (
		model     = flag.String("model", "quadhist", "model: quadhist, ptshist, quicksel, isomer")
		class     = flag.String("class", "range", "query class of the CSV: range, halfspace, ball")
		trainFrac = flag.Float64("train", 0.7, "fraction of rows used for training")
		buckets   = flag.Int("buckets", 0, "model complexity (0 = 4x training size)")
		seed      = flag.Uint64("seed", 1, "model seed")
		minSel    = flag.Float64("minsel", 1e-5, "Q-error floor")
		outPath   = flag.String("out", "", "write the trained model to this file (modelio envelope)")
		savePath  = flag.String("save", "", "deprecated alias for -out")
		loadPath  = flag.String("load", "", "skip training: load a model and evaluate it on every CSV row")
		workers   = flag.Int("workers", 0, "worker-pool size for the training kernels (0 = all CPUs); results are identical for any value")
		tracePath = flag.String("trace", "", "write a Chrome trace-event JSON profile of the run to this file (chrome://tracing)")
	)
	flag.Parse()
	if *workers < 0 {
		usage(fmt.Errorf("-workers must be non-negative, got %d", *workers))
	}
	if *workers != 0 {
		parallel.SetDefault(*workers)
	}

	// Flag validation: a bad invocation gets a usage message and a
	// non-zero exit before any input is read.
	if flag.NArg() > 0 {
		usage(fmt.Errorf("unexpected arguments: %v (input is read from stdin)", flag.Args()))
	}
	if *trainFrac <= 0 || *trainFrac >= 1 {
		usage(fmt.Errorf("-train must be in (0,1), got %v", *trainFrac))
	}
	if *buckets < 0 {
		usage(fmt.Errorf("-buckets must be non-negative, got %d", *buckets))
	}
	if *minSel <= 0 {
		usage(fmt.Errorf("-minsel must be positive, got %v", *minSel))
	}
	if *outPath != "" && *savePath != "" && *outPath != *savePath {
		usage(fmt.Errorf("-out and -save (deprecated alias) disagree: %q vs %q", *outPath, *savePath))
	}
	if *outPath == "" {
		*outPath = *savePath
	}
	if *loadPath != "" && *outPath != "" {
		usage(fmt.Errorf("-load and -out are mutually exclusive"))
	}

	qclass, err := workload.ParseClass(*class)
	if err != nil {
		usage(err)
	}

	// With -trace, the whole run (workload read, every training stage,
	// evaluation) is recorded as one span tree and written as Chrome
	// trace-event JSON on exit. Without it, root is the zero Span and
	// every span call below is inert.
	var tracer *obs.Tracer
	var root obs.Span
	if *tracePath != "" {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
		tracer.SetSampling(1)
		root = tracer.StartRoot("seltrain")
	}
	finishTrace := func() {
		if tracer == nil {
			return
		}
		root.End()
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	readSpan := root.Child("read_workload")
	samples, dim, err := workload.ReadCSV(os.Stdin, qclass)
	if err != nil {
		fatal(err)
	}
	readSpan.Items = int64(len(samples))
	readSpan.End()

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		m, err := modelio.Load(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		report("(loaded "+*loadPath+")", dim, 0, len(samples), m, samples, *minSel, nil, root)
		finishTrace()
		return
	}
	if len(samples) < 4 {
		fatal(fmt.Errorf("need at least 4 queries, got %d", len(samples)))
	}
	nTrain := int(*trainFrac * float64(len(samples)))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain >= len(samples) {
		nTrain = len(samples) - 1
	}
	train, test := samples[:nTrain], samples[nTrain:]
	k := *buckets
	if k == 0 {
		k = 4 * len(train)
	}

	// The TrainLog feeds two outputs from the same instrumentation: the
	// "train" stage line of the report (always) and the stage spans of
	// the -trace profile (when tracing).
	tlog := obs.NewTrainLog(root)
	var tr core.Trainer
	switch *model {
	case "quadhist":
		h := hist.New(dim, k)
		h.Log = tlog
		tr = h
	case "ptshist":
		p := ptshist.New(dim, k, *seed)
		p.Log = tlog
		tr = p
	case "quicksel":
		q := quicksel.New(dim, *seed)
		q.Log = tlog
		tr = q
	case "isomer":
		is := isomer.New(dim)
		is.Log = tlog
		tr = is
	default:
		usage(fmt.Errorf("unknown model %q", *model))
	}

	m, err := tr.Train(train)
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := modelio.Save(f, m); err != nil {
			// Best-effort close; the save failure is the one to report.
			_ = f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	report(tr.Name(), dim, len(train), len(test), m, test, *minSel, tlog.Stats(), root)
	finishTrace()
}

// report prints the evaluation block for a model on a test set.
func report(name string, dim, nTrain, nTest int, m core.Model, test []core.LabeledQuery, minSel float64, stats *obs.TrainStats, parent obs.Span) {
	ev := parent.Child("evaluate")
	est := core.Estimates(m, test)
	ev.Items = int64(nTest)
	ev.End()
	truth := workload.Truths(test)
	q := metrics.SummarizeQErrors(est, truth, minSel)
	fmt.Printf("model      %s\n", name)
	fmt.Printf("dim        %d\n", dim)
	fmt.Printf("train/test %d/%d\n", nTrain, nTest)
	fmt.Printf("buckets    %d\n", m.NumBuckets())
	if stats != nil {
		fmt.Printf("train      %s\n", stats.Summary())
	}
	fmt.Printf("rms        %.5f\n", metrics.RMS(est, truth))
	fmt.Printf("linf       %.5f\n", metrics.LInf(est, truth))
	fmt.Printf("qerror     p50=%.3f p95=%.3f p99=%.3f max=%.3f\n", q.P50, q.P95, q.P99, q.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seltrain:", err)
	os.Exit(1)
}

// usage reports a bad invocation with the flag summary and exits 2, the
// conventional usage-error status.
func usage(err error) {
	fmt.Fprintln(os.Stderr, "seltrain:", err)
	flag.Usage()
	os.Exit(2)
}
