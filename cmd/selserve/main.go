// Command selserve runs the selectivity-estimation server: it preloads
// trained models (as written by seltrain -out), serves estimate requests
// over HTTP, buffers observed-selectivity feedback, and periodically
// retrains and hot-swaps the serving models. SIGINT/SIGTERM trigger a
// graceful drain.
//
// Usage:
//
//	selgen -dataset power -workload data-driven -queries 1000 > wl.csv
//	seltrain -model quadhist -class range -out m.json < wl.csv
//	selserve -addr :8080 -model m.json
//
//	curl -s localhost:8080/v1/estimate -d '{"query":{"lo":[0,0],"hi":[0.3,0.3]}}'
//	curl -s localhost:8080/v1/feedback -d '{"observations":[{"lo":[0,0],"hi":[0.3,0.3],"sel":0.11}]}'
//	curl -s localhost:8080/statz
//
// A -model flag may be repeated and may carry a name prefix: either
// "m.json" (registered as "default") or "power=m.json".
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/modelio"
	"repro/internal/serve"
)

// modelFlags collects repeated -model arguments.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }

func (m *modelFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty -model value")
	}
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		feedbackCap = flag.Int("feedback-cap", 4096, "feedback ring capacity per model")
		minRetrain  = flag.Int("min-retrain", 32, "buffered observations required before a retrain")
		interval    = flag.Duration("retrain-interval", 15*time.Second, "background retrain period")
		tolerance   = flag.Float64("retrain-tolerance", 0, "max held-out RMS regression a retrained model may introduce and still be swapped in")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		cacheSize   = flag.Int("estimate-cache", 0, "generation-keyed estimate cache entries (0 = default 4096, negative disables)")
		workers     = flag.Int("estimate-workers", 0, "workers for batched estimate requests (0 = all CPUs); responses are identical for any value")
	)
	flag.Var(&models, "model", "model file to preload, optionally name=path (repeatable)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "selserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Options{
		FeedbackCapacity:  *feedbackCap,
		MinRetrainSamples: *minRetrain,
		RetrainInterval:   *interval,
		RetrainTolerance:  *tolerance,
		DrainTimeout:      *drain,
		EstimateCacheSize: *cacheSize,
		EstimateWorkers:   *workers,
	})
	for _, spec := range models {
		name, path := serve.DefaultModelName, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
			if name == "" || path == "" {
				fatal(fmt.Errorf("malformed -model %q, want name=path", spec))
			}
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		m, err := modelio.Load(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		entry := srv.Registry().Set(name, "file", m)
		log.Printf("loaded model %q from %s (%d buckets, generation %d)",
			name, path, m.NumBuckets(), entry.Generation)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("selserve listening on %s (%d models)", *addr, len(models))
	if err := srv.Run(ctx, *addr); err != nil {
		fatal(err)
	}
	log.Printf("selserve drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "selserve:", err)
	os.Exit(1)
}
