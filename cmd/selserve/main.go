// Command selserve runs the selectivity-estimation server: it preloads
// trained models (as written by seltrain -out; JSON envelopes and binary
// snapshots are both accepted), serves estimate requests over HTTP — and,
// with -listen-bin, over the compact binary protocol (internal/wirebin) —
// buffers observed-selectivity feedback, and periodically retrains and
// hot-swaps the serving models. SIGINT/SIGTERM trigger a graceful drain.
//
// Usage:
//
//	selgen -dataset power -workload data-driven -queries 1000 > wl.csv
//	seltrain -model quadhist -class range -out m.json < wl.csv
//	selserve -addr :8080 -model m.json
//
//	curl -s localhost:8080/v1/estimate -d '{"query":{"lo":[0,0],"hi":[0.3,0.3]}}'
//	curl -s localhost:8080/v1/feedback -d '{"observations":[{"lo":[0,0],"hi":[0.3,0.3],"sel":0.11}]}'
//	curl -s localhost:8080/statz
//	curl -s localhost:8080/metrics
//	curl -s "localhost:8080/debug/trace" > trace.json   # chrome://tracing
//
// A -model flag may be repeated and may carry a name prefix: either
// "m.json" (registered as "default") or "power=m.json".
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/modelio"
	"repro/internal/online"
	"repro/internal/serve"
)

// modelFlags collects repeated -model arguments.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }

func (m *modelFlags) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty -model value")
	}
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlags
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		addrBin     = flag.String("listen-bin", "", "binary-protocol listen address (e.g. :8081; empty disables)")
		feedbackCap = flag.Int("feedback-cap", 4096, "feedback ring capacity per model")
		minRetrain  = flag.Int("min-retrain", 32, "buffered observations required before a retrain")
		interval    = flag.Duration("retrain-interval", 15*time.Second, "background retrain period")
		tolerance   = flag.Float64("retrain-tolerance", 0, "max held-out RMS regression a retrained model may introduce and still be swapped in")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		cacheSize   = flag.Int("estimate-cache", 0, "generation-keyed estimate cache entries (0 = default 4096, negative disables)")
		workers     = flag.Int("estimate-workers", 0, "workers for batched estimate requests (0 = all CPUs); responses are identical for any value")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		traceSample = flag.Int("trace-sample", 0, "trace one request in N for GET /debug/trace (0 disables, 1 traces all)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		onlineOn    = flag.Bool("online", false, "fold feedback into serving weights online (microsecond updates; retrainer stays on as structural fallback)")
		onlineBatch = flag.Int("online-batch", 1, "observations per online update batch (1 = publish every observation)")
		onlineRate  = flag.Float64("online-rate", online.DefaultRate, "online learning rate")
		onlineRule  = flag.String("online-rule", "gradient", "online update rule: gradient or multiplicative")
	)
	flag.Var(&models, "model", "model file to preload, optionally name=path (repeatable)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "selserve: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "selserve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	}
	logger := slog.New(handler)

	rule, err := online.ParseRule(*onlineRule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selserve: bad -online-rule: %v\n", err)
		os.Exit(2)
	}

	srv := serve.NewServer(serve.Options{
		FeedbackCapacity:  *feedbackCap,
		MinRetrainSamples: *minRetrain,
		RetrainInterval:   *interval,
		RetrainTolerance:  *tolerance,
		DrainTimeout:      *drain,
		EstimateCacheSize: *cacheSize,
		EstimateWorkers:   *workers,
		TraceSample:       *traceSample,
		EnablePprof:       *pprofOn,
		OnlineUpdates:     *onlineOn,
		OnlineBatchSize:   *onlineBatch,
		OnlineRate:        *onlineRate,
		OnlineRule:        rule,
		Logger:            logger,
	})
	for _, spec := range models {
		name, path := serve.DefaultModelName, spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
			if name == "" || path == "" {
				fatal(logger, fmt.Errorf("malformed -model %q, want name=path", spec))
			}
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(logger, err)
		}
		m, err := modelio.LoadAny(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fatal(logger, fmt.Errorf("%s: %w", path, err))
		}
		entry := srv.Registry().Set(name, "file", m)
		logger.Info("model loaded",
			slog.String("model", name),
			slog.String("path", path),
			slog.Int("buckets", m.NumBuckets()),
			slog.Int64("generation", entry.Generation),
		)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger.Info("selserve listening",
		slog.String("addr", *addr),
		slog.String("addr_bin", *addrBin),
		slog.Int("models", len(models)),
		slog.Int("trace_sample", *traceSample),
		slog.Bool("pprof", *pprofOn),
		slog.Bool("online", *onlineOn),
	)
	// The binary listener runs beside HTTP; model lifecycle (retrainer,
	// registry) lives with the HTTP Serve loop, so RunBin only serves
	// frames. Both drain on the same signal context.
	errc := make(chan error, 1)
	if *addrBin != "" {
		go func() { errc <- srv.RunBin(ctx, *addrBin) }()
	}
	if err := srv.Run(ctx, *addr); err != nil {
		fatal(logger, err)
	}
	if *addrBin != "" {
		if err := <-errc; err != nil {
			fatal(logger, err)
		}
	}
	logger.Info("selserve drained cleanly")
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", slog.String("error", err.Error()))
	os.Exit(1)
}
