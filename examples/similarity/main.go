// Similarity: distance-based (ball) query selectivity in higher dimensions
// — the "how many products are within distance r of this one?" workload
// from the paper's introduction, served by PTSHIST.
//
// The example embeds a catalog of items as 8-dimensional feature vectors
// (simulated via the Forest dataset's numeric attributes), trains PTSHIST
// on ball-query feedback, and then answers radius-sweep cardinality
// questions that a recommendation engine would ask before choosing between
// an exact scan and an approximate index probe.
//
//	go run ./examples/similarity
package main

import (
	"fmt"
	"log"

	selest "repro"
)

func main() {
	const dim = 8
	ds := selest.NewDataset(selest.Forest, 20000, 5)
	feats := ds.NumericProjection(dim)
	gen := selest.NewWorkload(feats, 17)

	spec := selest.Spec{Class: selest.BallQueries, Centers: selest.DataDriven}
	train, test := gen.TrainTest(spec, 600, 300)

	// PTSHIST: the paper's generic learner for high dimensions — point
	// buckets avoid the curse of dimensionality in volume computations.
	model, err := selest.NewPtsHist(dim, 4*len(train), 23).Train(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PtsHist on %dD ball queries: %d point buckets, RMS=%.4f\n",
		dim, model.NumBuckets(), selest.RMS(model, test))

	// Radius sweep around one reference item: estimated vs true counts.
	ref := selest.Point(feats.Points[123])
	tree := gen.Tree()
	fmt.Printf("\nneighborhood size around item #123 (N=%d):\n", feats.Len())
	fmt.Printf("%8s %12s %12s\n", "radius", "estimated", "true")
	for _, radius := range []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8} {
		q := selest.NewBall(ref, radius)
		est := model.Estimate(q) * float64(feats.Len())
		truth := tree.Count(q)
		fmt.Printf("%8.2f %12.0f %12d\n", radius, est, truth)
	}
	fmt.Println("\nmonotone, consistent estimates: usable to pick scan vs index probe")
}
