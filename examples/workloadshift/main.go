// Workloadshift: what happens when the production query distribution
// drifts away from the training distribution — the Section 4.3 scenario,
// reproduced as a small monitoring playbook.
//
// We train QUADHIST on a narrow Gaussian workload centered at (0.3, 0.3),
// stream test workloads whose centers drift toward (0.8, 0.8) to watch the
// error grow with the shift, and then retrain on a mixed workload to show
// that overlap restores accuracy ("we can still gain something from a
// learned model when there is overlap between their coverage").
//
//	go run ./examples/workloadshift
package main

import (
	"fmt"
	"log"

	selest "repro"
)

func main() {
	ds := selest.NewDataset(selest.Forest, 20000, 3).NumericProjection(2)
	gen := selest.NewWorkload(ds, 31)

	// Narrow queries (sides ≤ 0.25) make the workload genuinely local,
	// so drift in the center distribution moves the probed region.
	specAt := func(mean float64) selest.Spec {
		return selest.Spec{
			Class:     selest.OrthogonalRange,
			Centers:   selest.GaussianCenters,
			GaussMean: selest.Point{mean, mean},
			GaussStd:  0.08,
			MaxSide:   0.25,
		}
	}

	const trainMean = 0.3
	train := gen.Generate(specAt(trainMean), 500)
	model, err := selest.NewQuadHist(2, 2000).Train(train)
	if err != nil {
		log.Fatal(err)
	}

	means := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	tests := make(map[float64][]selest.LabeledQuery, len(means))
	for _, m := range means {
		tests[m] = gen.Generate(specAt(m), 300)
	}

	baseline := selest.RMS(model, tests[trainMean])
	fmt.Printf("QuadHist trained at workload mean (%.1f,%.1f); in-distribution RMS = %.4f\n",
		trainMean, trainMean, baseline)
	fmt.Printf("\nerror under drifted test workloads (fixed model):\n")
	fmt.Printf("%10s %10s %10s\n", "test mean", "rms", "vs base")
	worst := trainMean
	worstRMS := baseline
	for _, mean := range means {
		rms := selest.RMS(model, tests[mean])
		fmt.Printf("%10.1f %10.4f %9.1fx\n", mean, rms, rms/baseline)
		if rms > worstRMS {
			worst, worstRMS = mean, rms
		}
	}

	// The production fix: retrain on a mixture of the historical and the
	// drifted workload, keeping both regions covered.
	mixed := append(gen.Generate(specAt(trainMean), 300), gen.Generate(specAt(worst), 300)...)
	model2, err := selest.NewQuadHist(2, 2400).Train(mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter retraining on a %.1f+%.1f mixed workload:\n", trainMean, worst)
	fmt.Printf("%10s %12s %12s\n", "test mean", "old rms", "new rms")
	for _, mean := range []float64{trainMean, worst} {
		fmt.Printf("%10.1f %12.4f %12.4f\n",
			mean, selest.RMS(model, tests[mean]), selest.RMS(model2, tests[mean]))
	}
}
