// Discs: selectivity of semi-algebraic disc-intersection queries — the
// Section 2.2 example that shows the framework extends beyond the three
// headline query classes.
//
// The data objects are discs in the plane (think: delivery zones, radio
// coverage cells). A query asks "how many zones does this query disc
// overlap?" — a range space over disc-space whose lifted encoding
// (cx, cy, radius) is semi-algebraic with finite VC dimension, hence
// learnable by Theorem 2.1. PTSHIST learns it without any code specific to
// the query class: only a membership test is needed.
//
// The example also demonstrates model persistence and streaming feedback.
//
//	go run ./examples/discs
package main

import (
	"bytes"
	"fmt"
	"log"

	selest "repro"
)

func main() {
	// 20k delivery zones: two metro clusters, mostly small radii.
	zones := selest.NewDataset(selest.Discs, 20000, 11)
	gen := selest.NewWorkload(zones, 5)

	spec := selest.Spec{Class: selest.DiscQueries, Centers: selest.DataDriven, MaxRadius: 0.4}
	train, test := gen.TrainTest(spec, 500, 250)

	model, err := selest.NewPtsHist(3, 2000, 13).Train(train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PtsHist on disc-intersection queries: %d buckets, held-out RMS=%.4f\n",
		model.NumBuckets(), selest.RMS(model, test))

	// Persist and reload — the optimizer nodes load this at plan time.
	var buf bytes.Buffer
	if err := selest.SaveModel(&buf, model); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := selest.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized model: %d bytes; restored RMS=%.4f (identical)\n",
		size, selest.RMS(restored, test))

	// The same feedback can be consumed as a stream (here with plain
	// box queries on the zone-center projection): the quadtree refines
	// per observation, weights refit every 100 records.
	centers := zones.Project([]int{0, 1})
	cgen := selest.NewWorkload(centers, 23)
	cspec := selest.Spec{Class: selest.OrthogonalRange, Centers: selest.DataDriven}
	stream := cgen.Generate(cspec, 400)
	inc, err := selest.NewIncrementalQuadHist(2, 0.002, 4000, 100)
	if err != nil {
		log.Fatal(err)
	}
	ctest := cgen.Generate(cspec, 200)
	fmt.Printf("\nstreaming feedback (zone centers, box queries):\n")
	fmt.Printf("%12s %10s %10s\n", "observed", "buckets", "rms")
	for i, z := range stream {
		if err := inc.Observe(z.R, z.Sel); err != nil {
			log.Fatal(err)
		}
		if (i+1)%100 == 0 {
			fmt.Printf("%12d %10d %10.4f\n", i+1, inc.NumBuckets(), selest.RMS(inc, ctest))
		}
	}
}
