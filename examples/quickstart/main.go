// Quickstart: train a learned selectivity estimator from query feedback
// alone and use it on unseen queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	selest "repro"
)

func main() {
	// A 2D projection of the (synthetic) Power dataset: 20k tuples,
	// heavily skewed toward low power readings.
	ds := selest.NewDataset(selest.Power, 20000, 1).Project([]int{0, 1})
	gen := selest.NewWorkload(ds, 42)

	// 500 training queries drawn from a data-driven workload, labeled
	// with their exact selectivities — the "query feedback" a database
	// system collects for free during execution.
	spec := selest.Spec{Class: selest.OrthogonalRange, Centers: selest.DataDriven}
	train, test := gen.TrainTest(spec, 500, 200)

	// QUADHIST: the paper's generic learner for low dimensions.
	model, err := selest.NewQuadHist(2, 2000).Train(train)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained QuadHist with %d buckets on %d queries\n",
		model.NumBuckets(), len(train))
	fmt.Printf("held-out RMS error:   %.4f\n", selest.RMS(model, test))
	q := selest.QErrors(model, test, 1.0/float64(ds.Len()))
	fmt.Printf("held-out Q-error:     p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		q.P50, q.P95, q.P99, q.Max)

	// Estimate a few hand-written queries.
	queries := []selest.Range{
		selest.NewBox(selest.Point{0, 0}, selest.Point{0.3, 0.3}),
		selest.NewBall(selest.Point{0.2, 0.2}, 0.15),
		selest.NewHalfspace(selest.Point{1, 1}, 0.8), // x+y ≥ 0.8
	}
	for _, r := range queries {
		fmt.Printf("estimate %v = %.4f\n", r, model.Estimate(r))
	}

	// Theorem 2.1's sample-complexity bound for this setting (ε=0.05,
	// δ=0.05, d=2): how training size scales in theory.
	fmt.Printf("theory: n0(0.05, 0.05) for 2D boxes ~ %.3g (unit constants)\n",
		selest.SampleComplexityOrthogonal(0.05, 0.05, 2))
}
