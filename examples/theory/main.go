// Theory: a guided tour of the paper's Section 2 — VC dimensions checked
// by machine, Theorem 2.1's sample-complexity bounds, the fat-shattering
// construction behind the non-learnability of convex polygons (Figure 5 /
// Lemma 2.7), and the low-crossing orderings of Lemma 2.4.
//
//	go run ./examples/theory
package main

import (
	"fmt"
	"math"

	selest "repro"
	"repro/internal/core"
	"repro/internal/crossing"
	"repro/internal/geom"
	"repro/internal/rng"
)

func main() {
	fmt.Println("== VC dimension facts (Figure 2), machine-checked ==")
	diamond := []geom.Point{{0.5, 0.9}, {0.9, 0.5}, {0.5, 0.1}, {0.1, 0.5}}
	fmt.Printf("rectangles shatter the 4-point diamond:      %v\n",
		core.CanShatterBoxes(diamond))
	withCenter := append(append([]geom.Point{}, diamond...), geom.Point{0.5, 0.5})
	fmt.Printf("rectangles shatter diamond + center (5 pts): %v (VC-dim of boxes in 2D is 4)\n",
		core.CanShatterBoxes(withCenter))
	tri := []geom.Point{{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.8}}
	fmt.Printf("halfspaces shatter a triangle:               %v (VC-dim d+1 = 3)\n",
		core.CanShatterHalfspaces(tri))

	fmt.Println("\n== Theorem 2.1: n0(eps, delta) with unit constants ==")
	fmt.Printf("%4s %18s %18s %18s\n", "d", "boxes (2d+3)", "halfspaces (d+4)", "balls (d+5)")
	for _, d := range []int{2, 4, 6} {
		fmt.Printf("%4d %18.3g %18.3g %18.3g\n", d,
			selest.SampleComplexityOrthogonal(0.1, 0.05, d),
			selest.SampleComplexityHalfspace(0.1, 0.05, d),
			selest.SampleComplexityBall(0.1, 0.05, d))
	}

	fmt.Println("\n== Lemma 2.7 / Figure 5: convex polygons are not learnable ==")
	// k polygons over 2^k circle points realize every incidence pattern,
	// so delta distributions γ-shatter them for any γ ≤ 1/2, at any k.
	for _, k := range []int{3, 4, 5, 6} {
		n := 1 << uint(k)
		pts := circlePoints(n)
		ranges := make([]geom.Range, k)
		for i := 0; i < k; i++ {
			var members []geom.Point
			for j := 0; j < n; j++ {
				if j&(1<<uint(i)) != 0 {
					members = append(members, pts[j])
				}
			}
			ranges[i] = geom.ConvexHull(members)
		}
		ok := core.DeltaShatterWitness(ranges, pts, 0.5) != nil
		fmt.Printf("  %d polygons over %2d circle points: γ=1/2-shattered = %v\n", k, n, ok)
	}
	fmt.Println("  → fat-shattering dimension unbounded → not (agnostically) learnable")

	fmt.Println("\n== Lemma 2.4: low-crossing orderings (λ=4 for 2D boxes) ==")
	r := rng.New(7)
	sample := make([]geom.Point, 600)
	for i := range sample {
		sample[i] = geom.Point{r.Float64(), r.Float64()}
	}
	fmt.Printf("%6s %14s %14s %14s\n", "k", "identity", "greedy", "k^0.75·log k")
	for _, k := range []int{64, 128, 256} {
		ranges := make([]geom.Range, k)
		for i := range ranges {
			c := geom.Point{r.Float64(), r.Float64()}
			ranges[i] = geom.BoxFromCenter(c, []float64{0.2 + 0.5*r.Float64(), 0.2 + 0.5*r.Float64()})
		}
		inc := crossing.IncidenceMatrix(ranges, sample)
		maxI, _ := crossing.MaxAndMean(crossing.CrossingCounts(inc, crossing.IdentityOrder(k), len(sample)))
		maxG, _ := crossing.MaxAndMean(crossing.CrossingCounts(inc, crossing.GreedyOrder(inc), len(sample)))
		fmt.Printf("%6d %14d %14d %14.1f\n", k, maxI, maxG, crossing.TheoryBound(k, 4))
	}
	fmt.Println("  → max crossings grow sublinearly under a good ordering:")
	fmt.Println("    this is what caps |T_j| in Lemma 2.5 and yields the fat-shattering bound")
}

func circlePoints(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Point{0.5 + 0.4*math.Cos(theta), 0.5 + 0.4*math.Sin(theta)}
	}
	return pts
}
