// Optimizer: a cost-based query-optimizer scenario — the motivating
// application of selectivity estimation in the paper's introduction.
//
// A simulated optimizer (internal/optsim) must pick an access path — seq
// scan, index scan, or bitmap scan — for each range predicate, and an
// outer/inner order for a two-table join. We compare the plans it produces
// with learned selectivities against the plans under true selectivities
// (the oracle) and under the classical "uniformity + independence"
// fallback that optimizers use without statistics.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	selest "repro"
	"repro/internal/optsim"
)

func main() {
	ds := selest.NewDataset(selest.DMV, 30000, 7).Project([]int{4, 10}) // make × weight
	gen := selest.NewWorkload(ds, 99)
	// Moderate predicate widths put queries near the plan crossover.
	spec := selest.Spec{Class: selest.OrthogonalRange, Centers: selest.DataDriven, MaxSide: 0.4}
	train, test := gen.TrainTest(spec, 400, 300)

	model, err := selest.NewQuadHist(2, 1600).Train(train)
	if err != nil {
		log.Fatal(err)
	}

	cm := optsim.DefaultCostModel()
	n := ds.Len()
	learned := optsim.ReplayScans(cm, n, model, test)
	naive := optsim.ReplayScans(cm, n, optsim.UniformityAssumption{Dim: 2}, test)

	fmt.Printf("access-path choice on %d test predicates over dmv (N=%d)\n", len(test), n)
	fmt.Printf("%-22s %14s %18s\n", "estimator", "plan agreement", "regret vs oracle")
	fmt.Printf("%-22s %13.1f%% %17.2f%%\n", "learned (QuadHist)",
		100*learned.AgreementRate(), 100*learned.RegretFraction())
	fmt.Printf("%-22s %13.1f%% %17.2f%%\n", "uniform+independent",
		100*naive.AgreementRate(), 100*naive.RegretFraction())

	// Join ordering: filter dmv by predicate A and census by predicate B,
	// then join. The side with fewer surviving rows should be outer.
	cds := selest.NewDataset(selest.Census, 20000, 3).Project([]int{0, 11})
	cgen := selest.NewWorkload(cds, 17)
	cspec := selest.Spec{Class: selest.OrthogonalRange, Centers: selest.DataDriven, MaxSide: 0.4}
	ctrain, ctest := cgen.TrainTest(cspec, 400, 300)
	cmodel, err := selest.NewQuadHist(2, 1600).Train(ctrain)
	if err != nil {
		log.Fatal(err)
	}

	flipsLearned, flipsNaive := 0, 0
	var regretLearned, regretNaive, baseCost float64
	naiveEst := optsim.UniformityAssumption{Dim: 2}
	pairs := min(len(test), len(ctest))
	for i := 0; i < pairs; i++ {
		a, b := test[i], ctest[i]
		dl := optsim.PlanJoin(cm, n, cds.Len(),
			model.Estimate(a.R), cmodel.Estimate(b.R), a.Sel, b.Sel)
		dn := optsim.PlanJoin(cm, n, cds.Len(),
			naiveEst.Estimate(a.R), naiveEst.Estimate(b.R), a.Sel, b.Sel)
		if dl.AOuter != dl.OptAOuter {
			flipsLearned++
		}
		if dn.AOuter != dn.OptAOuter {
			flipsNaive++
		}
		regretLearned += dl.Cost - dl.BestCost
		regretNaive += dn.Cost - dn.BestCost
		baseCost += dl.BestCost
	}
	fmt.Printf("\njoin-order choice on %d dmv⋈census pairs\n", pairs)
	fmt.Printf("%-22s %14s %18s\n", "estimator", "wrong orders", "regret vs oracle")
	fmt.Printf("%-22s %14d %17.2f%%\n", "learned (QuadHist)", flipsLearned, 100*regretLearned/baseCost)
	fmt.Printf("%-22s %14d %17.2f%%\n", "uniform+independent", flipsNaive, 100*regretNaive/baseCost)

}
