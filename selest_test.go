package selest

import (
	"math"
	"testing"
)

// TestEndToEnd exercises the public API exactly as the README quick start
// does: dataset → workload → train → estimate → metrics.
func TestEndToEnd(t *testing.T) {
	ds := NewDataset(Power, 6000, 1).Project([]int{0, 1})
	gen := NewWorkload(ds, 42)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 200, 150)

	model, err := NewQuadHist(2, 800).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := RMS(model, test); rms > 0.12 {
		t.Fatalf("quickstart RMS = %v", rms)
	}
	q := QErrors(model, test, 1.0/float64(ds.Len()))
	if q.P50 < 1 || math.IsNaN(q.P50) {
		t.Fatalf("median q-error = %v", q.P50)
	}
	if LInf(model, test) > 0.5 {
		t.Fatalf("LInf = %v", LInf(model, test))
	}
}

func TestAllTrainersViaFacade(t *testing.T) {
	ds := NewDataset(Forest, 4000, 2).Project([]int{0, 1})
	gen := NewWorkload(ds, 7)
	spec := Spec{Class: OrthogonalRange, Centers: DataDriven}
	train, test := gen.TrainTest(spec, 60, 80)

	trainers := []Trainer{
		NewQuadHist(2, 240),
		NewPtsHist(2, 240, 3),
		NewQuickSel(2, 5),
		NewIsomer(2, 0),
		NewArrangement(2, false),
		NewArrangement(2, true),
	}
	for _, tr := range trainers {
		m, err := tr.Train(train)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		rms := RMS(m, test)
		if rms > 0.25 {
			t.Fatalf("%s: RMS %v", tr.Name(), rms)
		}
		if m.NumBuckets() == 0 {
			t.Fatalf("%s: zero buckets", tr.Name())
		}
	}
}

func TestQueryTypesViaFacade(t *testing.T) {
	ds := NewDataset(Power, 4000, 3).Project([]int{0, 1})
	gen := NewWorkload(ds, 9)
	for _, class := range []struct {
		name string
		spec Spec
	}{
		{"halfspace", Spec{Class: HalfspaceQueries, Centers: DataDriven}},
		{"ball", Spec{Class: BallQueries, Centers: DataDriven}},
	} {
		train, test := gen.TrainTest(class.spec, 80, 80)
		m, err := NewPtsHist(2, 320, 11).Train(train)
		if err != nil {
			t.Fatalf("%s: %v", class.name, err)
		}
		if rms := RMS(m, test); rms > 0.2 {
			t.Fatalf("%s: RMS %v", class.name, rms)
		}
	}
}

func TestManualRanges(t *testing.T) {
	b := NewBox(Point{0.1, 0.1}, Point{0.5, 0.5})
	if !b.Contains(Point{0.2, 0.2}) {
		t.Fatal("box membership")
	}
	ball := NewBall(Point{0.5, 0.5}, 0.2)
	if !ball.Contains(Point{0.5, 0.6}) {
		t.Fatal("ball membership")
	}
	h := NewHalfspace(Point{1, 0}, 0.5)
	if !h.Contains(Point{0.7, 0}) || h.Contains(Point{0.3, 0}) {
		t.Fatal("halfspace membership")
	}
}

func TestTheoryFacade(t *testing.T) {
	// The Theorem 2.1 ordering: orthogonal (λ=2d) needs the most samples
	// in moderate dimension, halfspaces (λ=d+1) the fewest.
	d := 4
	or := SampleComplexityOrthogonal(0.1, 0.05, d)
	hs := SampleComplexityHalfspace(0.1, 0.05, d)
	bl := SampleComplexityBall(0.1, 0.05, d)
	if !(or > bl && bl > hs) {
		t.Fatalf("sample complexity ordering violated: box %v, ball %v, halfspace %v", or, bl, hs)
	}
	if FatShattering(0.1, 4) <= 0 {
		t.Fatal("fat-shattering bound non-positive")
	}
}

func TestNewGeometryFacade(t *testing.T) {
	lp := NewLpBall(Point{0.5, 0.5}, 0.3, 1)
	if !lp.Contains(Point{0.6, 0.6}) || lp.Contains(Point{0.9, 0.9}) {
		t.Fatal("LpBall membership via facade")
	}
	ann := NewAnnulus(0.5, 0.5, 0.1, 0.3, 2)
	if !ann.Contains(Point{0.7, 0.5}) || ann.Contains(Point{0.5, 0.5}) {
		t.Fatal("annulus membership via facade")
	}
	// Models can train on ℓp-ball feedback out of the box: only the
	// membership test is needed by PtsHist.
	ds := NewDataset(Power, 3000, 9).Project([]int{0, 1})
	gen := NewWorkload(ds, 27)
	tree := gen.Tree()
	train := make([]LabeledQuery, 0, 60)
	for i := 0; i < 60; i++ {
		c := Point(ds.Points[i*37%ds.Len()]).Clone()
		q := NewLpBall(c, 0.1+0.3*float64(i%7)/7, 1)
		train = append(train, LabeledQuery{R: q, Sel: tree.Selectivity(q)})
	}
	m, err := NewPtsHist(2, 240, 5).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := RMS(m, train); rms > 0.1 {
		t.Fatalf("ℓ1-ball training RMS = %v", rms)
	}
}
