package selest

// Open-loop load-harness benchmarks (DESIGN.md §16): each arm drives a
// short deterministic schedule of one traffic class against an in-process
// server via internal/load — the same schedule/worker machinery cmd/selload
// uses — and reports the class's intended-start p99 (completion minus
// scheduled start, the coordinated-omission-safe tail) as the ns/op
// metric, so scripts/bench.sh records tail latency under load next to the
// closed-loop wire benchmarks. Wall time per iteration is the schedule
// horizon, not the sum of request latencies; ns/op here is a latency
// quantile, not throughput.

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/serve"
)

// loadBenchServer starts a server the way `selload -self` does: online
// updates on, background retraining effectively off, both listeners on
// loopback.
func loadBenchServer(b *testing.B) (baseURL, binAddr string) {
	b.Helper()
	model := load.GridModel(4096, 0)
	core.Accelerate(model)
	s := serve.NewServer(serve.Options{
		OnlineUpdates:     true,
		MinRetrainSamples: 1 << 30,
	})
	s.Registry().Set(serve.DefaultModelName, "bench", model)

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	bln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(hln)
	ctx, cancel := context.WithCancel(context.Background())
	binDone := make(chan struct{})
	go func() { defer close(binDone); _ = s.ServeBin(ctx, bln) }()
	b.Cleanup(func() {
		cancel()
		srv.Close()
		<-binDone
	})
	return "http://" + hln.Addr().String(), bln.Addr().String()
}

func BenchmarkSelLoad(b *testing.B) {
	baseURL, binAddr := loadBenchServer(b)
	arms := []struct {
		name  string
		class load.Class
	}{
		{"single_p99", load.ClassSingle},
		{"bin_p99", load.ClassBin},
		{"feedback_p99", load.ClassFeedback},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var mix load.Mix
			mix[arm.class] = 1
			var p99ns float64
			for i := 0; i < b.N; i++ {
				res, err := load.Run(load.Options{
					BaseURL: baseURL,
					BinAddr: binAddr,
					Workers: 4,
					Timeout: 10 * time.Second,
					Spec: load.ScheduleSpec{
						Seed:     1,
						Rate:     500,
						Duration: time.Second,
						Arrival:  load.ArrivalExp,
						Mix:      mix,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				cs := res.Collector.Class(arm.class)
				if errs := cs.Errors.Value(); errs > 0 {
					b.Fatalf("%d of %d requests failed", errs, cs.Sent.Value())
				}
				s := load.Summarize(cs.Intended.Snapshot())
				if s.Count == 0 {
					b.Fatal("no completed requests")
				}
				p99ns = s.P99Us * 1e3
			}
			b.ReportMetric(p99ns, "ns/op")
		})
	}
}
