// Package quicksel implements the QUICKSEL baseline (Park, Zhong, Mozafari,
// SIGMOD 2020) used in the paper's comparisons: the data distribution is a
// mixture of uniform distributions over (overlapping) boxes, and bucket
// weights are fit by a quadratic program that keeps the mixture as close to
// uniform as the observed selectivities allow.
//
// Following the paper's experimental convention, the model uses 4× as many
// buckets as training queries: the query boxes themselves plus random boxes
// sampled around query regions (QuickSel's own bucket-sampling strategy).
// Weight fitting minimizes ‖A·w − s‖² + μ‖w − u‖² over the probability
// simplex — the regularized, always-feasible version of QuickSel's
// "closest to uniform subject to consistency" program; the simplex
// constraint keeps estimates valid selectivities, which the paper requires
// of every compared method.
package quicksel

import (
	"errors"
	"math"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/solver"
)

// BucketMultiplier is the paper's 4× bucket convention.
const BucketMultiplier = 4

// Options configures QUICKSEL training.
type Options struct {
	// BucketsPerQuery is the bucket multiplier (default 4).
	BucketsPerQuery int
	// Mu is the uniform-regularization strength (default 1e-3).
	Mu float64
	// Seed drives bucket sampling.
	Seed uint64
	// Solver picks the weight-estimation algorithm.
	Solver solver.Method
	// ExactQP uses QuickSel's original equality-constrained quadratic
	// program — min ‖w−u‖² s.t. A·w = s, Σw = 1 — solved in closed form
	// via the KKT system. Weights may then be negative, which is exactly
	// the behaviour the paper criticizes ("models that do not correspond
	// to any valid hypothesis … estimates that are not monotone or
	// consistent"); estimates are still clamped to [0,1]. The default
	// (false) solves the regularized simplex-constrained variant instead,
	// keeping the model a valid distribution.
	ExactQP bool
}

// Trainer builds QUICKSEL models.
type Trainer struct {
	Dim  int
	Opts Options
	// Log, when non-nil, collects per-stage timings and solver iteration
	// counts (and mirrors the stages as trace spans); see obs.TrainLog.
	Log *obs.TrainLog
}

// New returns a QUICKSEL trainer with the 4× bucket convention.
func New(dim int, seed uint64) *Trainer {
	return &Trainer{Dim: dim, Opts: Options{Seed: seed}}
}

// Name implements core.Trainer.
func (t *Trainer) Name() string { return "QuickSel" }

// Model is a trained mixture of uniforms over overlapping boxes.
// Estimate is BVH-accelerated above bvh.IndexThreshold buckets (the sum
// runs over buckets, not space, so overlap is fine); Buckets and Weights
// must not be mutated after the first Estimate/Accelerate call.
type Model struct {
	Buckets []geom.Box
	Weights []float64

	accel bvh.Lazy
}

// Train implements core.Trainer. Query ranges must expose a bounding box;
// non-box ranges are approximated by their bounding boxes, as a mixture of
// uniform boxes cannot represent them exactly.
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("quicksel: empty training set")
	}
	r := rng.New(t.Opts.Seed)
	mult := t.Opts.BucketsPerQuery
	if mult == 0 {
		mult = BucketMultiplier
	}
	mu := t.Opts.Mu
	if mu == 0 {
		mu = 1e-3
	}

	// Bucket generation: each query contributes its own box plus
	// (mult−1) jittered sub-boxes of it, QuickSel's sampling of the
	// "intersection lattice" of the workload.
	stage := t.Log.Stage("bucket_sample")
	buckets := make([]geom.Box, 0, mult*len(samples)+1)
	buckets = append(buckets, geom.UnitCube(t.Dim)) // background bucket
	for _, z := range samples {
		qb := boxOf(z.R)
		buckets = append(buckets, qb)
		for extra := 0; extra < mult-1; extra++ {
			buckets = append(buckets, jitteredSubBox(qb, r))
		}
	}
	stage.EndItems(int64(len(buckets)))

	stage = t.Log.Stage("design_matrix")
	a := core.DesignMatrixBoxes(samples, buckets)
	s := core.Selectivities(samples)
	stage.EndItems(int64(a.Rows) * int64(a.Cols))

	if t.Opts.ExactQP {
		stage = t.Log.Stage("solve")
		w, err := exactQPWeights(a, s)
		stage.End()
		if err != nil {
			return nil, err
		}
		t.Log.SetSolver("exact_qp", 0)
		return &Model{Buckets: buckets, Weights: w}, nil
	}
	// Regularization rows: √μ·(w − u) ≈ 0.
	stage = t.Log.Stage("solve")
	n := len(buckets)
	m := len(samples)
	aug := linalg.NewMatrix(m+n, n)
	copy(aug.Data[:m*n], a.Data)
	sqrtMu := math.Sqrt(mu)
	u := 1 / float64(n)
	rhs := make([]float64, m+n)
	copy(rhs, s)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sqrtMu)
		rhs[m+j] = sqrtMu * u
	}
	var sst solver.Stats
	w, err := solver.WeightsWithStats(t.Opts.Solver, aug, rhs, &sst)
	stage.EndItems(int64(sst.Iterations))
	if err != nil {
		return nil, err
	}
	t.Log.SetSolver(sst.Method, sst.Iterations)
	return &Model{Buckets: buckets, Weights: w}, nil
}

// exactQPWeights solves min ‖w − u‖² subject to Ã·w = s̃, where Ã is A with
// an appended all-ones row and s̃ is s with an appended 1 (the sum-to-one
// constraint). The KKT conditions give w = u + Ãᵀλ with (Ã Ãᵀ)λ = s̃ − Ã·u;
// a small ridge handles rank deficiency (redundant or contradictory
// feedback rows).
func exactQPWeights(a *linalg.Matrix, s []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	at := linalg.NewMatrix(m+1, n)
	copy(at.Data[:m*n], a.Data)
	ones := at.Row(m)
	for j := range ones {
		ones[j] = 1
	}
	rhs := make([]float64, m+1)
	u := 1 / float64(n)
	au := at.MulVec(uniformVec(n, u))
	copy(rhs, s)
	rhs[m] = 1
	for i := range rhs {
		rhs[i] -= au[i]
	}
	// Gram matrix G = Ã Ãᵀ (+ ridge).
	g := linalg.NewMatrix(m+1, m+1)
	for i := 0; i <= m; i++ {
		ri := at.Row(i)
		for j := i; j <= m; j++ {
			v := linalg.Dot(ri, at.Row(j))
			if i == j {
				v += 1e-9
			}
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	lambda, err := linalg.CholeskySolve(g, rhs)
	if err != nil {
		return nil, err
	}
	w := at.TMulVec(lambda)
	for j := range w {
		w[j] += u
	}
	return w, nil
}

func uniformVec(n int, u float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = u
	}
	return v
}

// boxOf returns the range itself if it is a box, otherwise its bounding
// box.
func boxOf(r geom.Range) geom.Box {
	if b, ok := r.(geom.Box); ok {
		return b.BoundingBox()
	}
	return r.BoundingBox()
}

// jitteredSubBox draws a random sub-box of b: QuickSel populates its bucket
// set with boxes concentrated where queries observed mass.
func jitteredSubBox(b geom.Box, r *rng.RNG) geom.Box {
	d := b.Dim()
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		side := b.Hi[i] - b.Lo[i]
		if side <= 0 {
			lo[i], hi[i] = b.Lo[i], b.Hi[i]
			continue
		}
		// Sub-interval covering 30–100% of the side.
		f := 0.3 + 0.7*r.Float64()
		w := f * side
		start := b.Lo[i] + r.Float64()*(side-w)
		lo[i], hi[i] = start, start+w
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// NumBuckets implements core.Model.
func (m *Model) NumBuckets() int { return len(m.Buckets) }

// Estimate implements core.Model: mixture of uniforms, Equation 6 with
// overlapping buckets, via the shared BVH for large models and the flat
// kernel below the indexing threshold.
func (m *Model) Estimate(r geom.Range) float64 {
	if t := m.accel.Ensure(m.Buckets, m.Weights); t != nil {
		return t.Estimate(r)
	}
	return bvh.EstimateFlat(m.Buckets, m.Weights, r)
}

// Accelerate implements core.Accelerable (force the one-time BVH build).
func (m *Model) Accelerate() { m.accel.Ensure(m.Buckets, m.Weights) }

// IndexTree returns the built BVH index, or nil if none has been built
// yet. It never triggers a build; the binary snapshot writer uses it to
// decide whether a tree section can be persisted.
func (m *Model) IndexTree() *bvh.Tree { return m.accel.Built() }

// SeedIndex installs a prebuilt BVH as this model's index (winning only if
// none exists yet), so a model loaded from a binary snapshot skips the
// build entirely — the subsequent Accelerate is a no-op.
func (m *Model) SeedIndex(t *bvh.Tree) { m.accel.Seed(t) }

// WeightView implements core.Reweightable.
func (m *Model) WeightView() ([]geom.Box, []float64) { return m.Buckets, m.Weights }

// WithWeights implements core.Reweightable: bucket geometry (and, when
// built, the BVH node structure) is shared with the receiver; only the
// weight vector and the cached subtree sums are new. Overlapping buckets
// need no special handling — the estimate sum runs over buckets, not
// space.
func (m *Model) WithWeights(w []float64) core.Model {
	if len(w) != len(m.Buckets) {
		panic("quicksel: WithWeights weight count mismatch")
	}
	nm := &Model{Buckets: m.Buckets, Weights: w}
	if t := m.accel.Built(); t != nil {
		nm.accel.Seed(t.Reweight(w))
	}
	return nm
}

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
var _ core.Accelerable = (*Model)(nil)
var _ core.Reweightable = (*Model)(nil)
