package quicksel

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func gen2D(seed uint64) *workload.Generator {
	return workload.NewGenerator(dataset.Power(6000, 1).Project([]int{0, 1}), seed)
}

func TestBucketConvention(t *testing.T) {
	g := gen2D(42)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 50)
	m, err := New(2, 7).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// 4× queries + 1 background bucket.
	if got := m.NumBuckets(); got != 4*50+1 {
		t.Fatalf("bucket count %d, want %d", got, 4*50+1)
	}
}

func TestTrainAccuracy(t *testing.T) {
	g := gen2D(1)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 150)
	m, err := New(2, 3).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.15 {
		t.Fatalf("test RMS = %v", rms)
	}
}

func TestWeightsOnSimplex(t *testing.T) {
	g := gen2D(2)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Gaussian}, 60)
	m, err := New(2, 5).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	model := m.(*Model)
	sum := 0.0
	for _, w := range model.Weights {
		if w < -1e-12 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestEstimateBoundsAndFullSpace(t *testing.T) {
	g := gen2D(3)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Random}
	train, test := g.TrainTest(spec, 80, 150)
	m, err := New(2, 11).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v out of range", e)
		}
	}
	if e := m.Estimate(geom.UnitCube(2)); math.Abs(e-1) > 1e-6 {
		t.Fatalf("unit-cube estimate = %v", e)
	}
}

func TestJitteredSubBoxStaysInside(t *testing.T) {
	b := geom.NewBox(geom.Point{0.2, 0.3}, geom.Point{0.8, 0.7})
	r := newTestRNG()
	for i := 0; i < 500; i++ {
		sub := jitteredSubBox(b, r)
		if !b.ContainsBox(sub) {
			t.Fatalf("sub-box %v escapes %v", sub, b)
		}
		if sub.Volume() <= 0 {
			t.Fatalf("degenerate sub-box %v", sub)
		}
	}
}

func TestDegenerateQueryBoxes(t *testing.T) {
	// Zero-width query boxes (equality predicates on a categorical
	// column collapse in older encodings) must not crash training.
	thin := geom.NewBox(geom.Point{0.5, 0}, geom.Point{0.5, 1})
	train := []core.LabeledQuery{
		{R: thin, Sel: 0.0},
		{R: geom.UnitCube(2), Sel: 1.0},
	}
	m, err := New(2, 13).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if e := m.Estimate(geom.UnitCube(2)); math.Abs(e-1) > 1e-6 {
		t.Fatalf("estimate = %v", e)
	}
}

func TestEmptyTrainingSetFails(t *testing.T) {
	if _, err := New(2, 1).Train(nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestHigherDimensions(t *testing.T) {
	ds := dataset.Forest(5000, 9).NumericProjection(5)
	g := workload.NewGenerator(ds, 21)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 120, 120)
	m, err := New(5, 23).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.25 {
		t.Fatalf("5D test RMS = %v", rms)
	}
}

// The exact KKT program fits the training selectivities (nearly) exactly
// and exposes QuickSel's signature flaw: weights can be negative, though
// estimates remain clamped to [0,1].
func TestExactQPFitsTrainingExactly(t *testing.T) {
	g := gen2D(7)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 60, 100)
	tr := &Trainer{Dim: 2, Opts: Options{Seed: 3, ExactQP: true}}
	m, err := tr.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	model := m.(*Model)
	// Sum-to-one holds exactly (it is one of the equality constraints).
	sum := 0.0
	negatives := 0
	for _, w := range model.Weights {
		sum += w
		if w < -1e-9 {
			negatives++
		}
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Fatalf("exact-QP weights sum to %v", sum)
	}
	// Training residual is tiny: the constraints force A·w = s. The
	// model's Estimate clamps, so evaluate the raw fitted values.
	worst := 0.0
	for _, z := range train {
		raw := 0.0
		for j, b := range model.Buckets {
			if v := b.Volume(); v > 0 {
				raw += z.R.IntersectBoxVolume(b) / v * model.Weights[j]
			}
		}
		if d := math.Abs(raw - z.Sel); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Fatalf("exact-QP training L∞ = %v, want ≈0", worst)
	}
	// Estimates stay valid despite any negative weights.
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v out of [0,1]", e)
		}
	}
	t.Logf("exact-QP: %d/%d negative weights (the paper's validity criticism)", negatives, len(model.Weights))
}

// The default (simplex-constrained) mode generalizes at least comparably to
// the exact QP on held-out queries.
func TestExactQPVsDefaultGeneralization(t *testing.T) {
	g := gen2D(9)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 100, 150)
	def, err := New(2, 3).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (&Trainer{Dim: 2, Opts: Options{Seed: 3, ExactQP: true}}).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if core.RMS(def, test) > core.RMS(exact, test)+0.05 {
		t.Fatalf("default mode (%v) much worse than exact QP (%v)",
			core.RMS(def, test), core.RMS(exact, test))
	}
}
