package quicksel

import (
	"math"
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/workload"
)

// A trained QUICKSEL model (overlapping buckets) must estimate
// identically through its BVH and the flat kernel, and implement the
// core.Accelerable capability.
func TestTrainedModelAcceleratedMatchesFlat(t *testing.T) {
	g := gen2D(23)
	train, test := g.TrainTest(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 80, 60)
	mm, err := New(2, 23).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := mm.(*Model)
	if m.NumBuckets() < bvh.IndexThreshold {
		t.Fatalf("fixture too small to exercise the BVH path: %d buckets", m.NumBuckets())
	}
	if !core.Accelerate(m) {
		t.Fatal("quicksel model does not implement core.Accelerable")
	}
	for _, z := range test {
		want := bvh.EstimateFlat(m.Buckets, m.Weights, z.R)
		if got := m.Estimate(z.R); math.Abs(got-want) > 1e-9 {
			t.Fatalf("accelerated estimate %v != flat %v for %v", got, want, z.R)
		}
	}
}
