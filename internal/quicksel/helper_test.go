package quicksel

import "repro/internal/rng"

func newTestRNG() *rng.RNG { return rng.New(1234) }
