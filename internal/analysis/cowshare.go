package analysis

// AnalyzerCowshare machine-checks the copy-on-write publication contract
// (DESIGN.md §14): bvh.Tree.Reweight and core.Reweightable.WithWeights
// hand out trees that share every structure array with the original, so
// concurrent readers of the old tree see the new tree's memory. The only
// safe writers are the builders; everything else must treat those arrays
// as frozen. go test -race catches a violation only when a reader and
// the writer collide inside the race window — this check catches the
// write at compile time.
//
// Two package-dependent modes:
//
//   - inside a package named "bvh": any write to a field of Tree — or
//     through a local alias of one, like the builder's node-box windows —
//     is flagged unless the tree was constructed locally (assigned from a
//     Tree composite literal in the same function) or the write happens
//     in one of the construction methods (build, sumWeights), which run
//     only on trees no reader has seen yet. The construction-method list
//     is project knowledge, same as poolcapture's pool entry points.
//
//   - everywhere: slices obtained from a WeightView() call (the
//     core.Reweightable contract) or a Tree's Weights() method are live
//     model state; indexed writes, copy-into, and append through them are
//     flagged. Taint propagates through assignments and reslices
//     (FlowFrom).

import (
	"go/ast"
	"go/types"
)

var AnalyzerCowshare = &Analyzer{
	Name: "cowshare",
	Doc:  "structure arrays shared by COW trees and weight views must only be written during construction",
	Run:  runCowshare,
}

// cowBuilders are the bvh construction methods that may write structure
// arrays through their receiver: they run strictly before publication.
var cowBuilders = map[string]bool{
	"build":      true,
	"sumWeights": true,
}

func runCowshare(p *Pass) {
	inBVH := p.Pkg != nil && p.Pkg.Name() == "bvh"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if inBVH && !(isTreeMethod(p.Info, fn) && cowBuilders[fn.Name.Name]) {
				checkTreeWrites(p, fn)
			}
			checkViewWrites(p, fn)
			return false
		})
	}
}

// isTreeMethod reports whether fn is a method with a (possibly pointer)
// Tree receiver.
func isTreeMethod(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	return t != nil && isTreeType(t)
}

func isTreeType(t types.Type) bool {
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Tree" && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "bvh"
}

// --- mode 1: structure-array writes inside package bvh ---------------------

func checkTreeWrites(p *Pass, fn *ast.FuncDecl) {
	// Locals constructed from a Tree composite literal are private until
	// the function publishes them; writes through them are construction.
	fresh := FlowFrom(p.Info, fn, func(e ast.Expr) bool {
		cl, ok := ast.Unparen(e).(*ast.CompositeLit)
		if !ok {
			return false
		}
		t := p.Info.TypeOf(cl)
		return t != nil && isTreeType(t)
	})
	// Slice-typed locals aliasing a (non-fresh) tree's field arrays —
	// `nlo := t.nlo[off : off+d]` — share the backing store: element
	// writes through them are writes to the shared structure. Only
	// alias-preserving right-hand sides (the selector itself, possibly
	// resliced) propagate; deriving a scalar from a field does not.
	aliases := sliceAliases(p.Info, fn, func(e ast.Expr) bool {
		sel, _ := treeFieldSel(p.Info, e)
		return sel != nil && !Derived(p.Info, sel.X, fresh, nil)
	})

	forEachWrite(fn, func(lhs ast.Expr, at ast.Node) {
		reportSharedWrite(p, lhs, at, fresh, aliases)
	})
}

// sliceAliases computes the slice-typed locals of fn that alias storage
// matched by base: assigned from a base expression (possibly resliced)
// or from another alias. Unlike FlowFrom, only alias-preserving
// right-hand sides propagate — make(..., len(alias)) is fresh storage.
func sliceAliases(info *types.Info, fn ast.Node, base func(ast.Expr) bool) map[types.Object]bool {
	aliases := map[types.Object]bool{}
	mark := func(lhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil || aliases[obj] {
			return false
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return false
		}
		aliases[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch {
			case len(as.Lhs) == len(as.Rhs):
				for i, rhs := range as.Rhs {
					if aliasExpr(info, rhs, base, aliases) && mark(as.Lhs[i]) {
						changed = true
					}
				}
			case len(as.Rhs) == 1 && aliasExpr(info, as.Rhs[0], base, aliases):
				// Multi-value form (w, n := m.WeightView()): any
				// slice-typed result may be the view.
				for _, lhs := range as.Lhs {
					if mark(lhs) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return aliases
}

// aliasExpr reports whether e, after peeling reslices, matches base or
// names an already-aliased local — the forms sharing a backing array.
func aliasExpr(info *types.Info, e ast.Expr, base func(ast.Expr) bool, aliases map[types.Object]bool) bool {
	for {
		if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
			e = sl.X
			continue
		}
		break
	}
	e = ast.Unparen(e)
	if base(e) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return aliases[obj]
		}
	}
	return false
}

// treeFieldSel matches a selector of a Tree field, returning it and the
// field object.
func treeFieldSel(info *types.Info, e ast.Expr) (*ast.SelectorExpr, types.Object) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	if t := info.TypeOf(sel.X); t == nil || !isTreeType(t) {
		return nil, nil
	}
	return sel, s.Obj()
}

// reportSharedWrite flags one assignment target that stores into shared
// tree structure.
func reportSharedWrite(p *Pass, lhs ast.Expr, at ast.Node, fresh, aliases map[types.Object]bool) {
	base := ast.Unparen(lhs)
	// Peel element/window addressing down to the stored-into expression.
	peeled := false
	for {
		switch x := base.(type) {
		case *ast.IndexExpr:
			base = ast.Unparen(x.X)
			peeled = true
			continue
		case *ast.StarExpr:
			base = ast.Unparen(x.X)
			peeled = true
			continue
		}
		break
	}
	if sel, obj := treeFieldSel(p.Info, base); sel != nil {
		if Derived(p.Info, sel.X, fresh, nil) {
			return // locally constructed tree: still private
		}
		p.Reportf(at.Pos(),
			"write to %s of a published bvh.Tree: structure arrays are shared by Reweight and must stay frozen", obj.Name())
		return
	}
	// Rebinding an alias variable is harmless; only element writes
	// through it touch the shared backing array.
	if !peeled {
		return
	}
	if id, ok := base.(*ast.Ident); ok {
		if obj := p.Info.ObjectOf(id); obj != nil && aliases[obj] && !fresh[obj] {
			p.Reportf(at.Pos(),
				"write through %s, an alias of a published bvh.Tree structure array", obj.Name())
		}
	}
}

// --- mode 2: writes through weight views -----------------------------------

// viewCall matches calls that expose live COW state: any WeightView()
// (the core.Reweightable contract) and Weights() on a bvh Tree.
func viewCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "WeightView":
		return true
	case "Weights":
		t := info.TypeOf(sel.X)
		return t != nil && isTreeType(t)
	}
	return false
}

func checkViewWrites(p *Pass, fn *ast.FuncDecl) {
	seed := func(e ast.Expr) bool { return viewCall(p.Info, e) }
	aliases := sliceAliases(p.Info, fn, seed)
	isView := func(e ast.Expr) bool {
		return aliasExpr(p.Info, e, seed, aliases)
	}

	forEachWrite(fn, func(lhs ast.Expr, at ast.Node) {
		// Only element writes share memory; rebinding a variable doesn't.
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			return
		}
		if isView(ix.X) {
			p.Reportf(at.Pos(),
				"write into a weight view: WeightView/Weights expose live model state shared with concurrent readers")
		}
	})

	// copy(view, ...) and append(view, ...) write the shared backing.
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		switch {
		case id.Name == "copy" && len(call.Args) == 2 && isBuiltin(p.Info, id):
			if isView(call.Args[0]) {
				p.Reportf(call.Pos(), "copy into a weight view overwrites live model state shared with concurrent readers")
			}
		case id.Name == "append" && len(call.Args) > 0 && isBuiltin(p.Info, id):
			if isView(call.Args[0]) {
				p.Reportf(call.Pos(), "append through a weight view may write the shared backing array of live model state")
			}
		}
		return true
	})
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.ObjectOf(id).(*types.Builtin)
	return ok
}

// forEachWrite visits every assignment target and inc/dec operand in fn,
// including inside nested function literals — a closure writing shared
// structure is still this function's write.
func forEachWrite(fn *ast.FuncDecl, visit func(lhs ast.Expr, at ast.Node)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				visit(lhs, x)
			}
		case *ast.IncDecStmt:
			visit(x.X, x)
		}
		return true
	})
}
