// Package poolfix is a selvet fixture for poolcapture: racy writes from
// closures on the parallel pool, the sanctioned index-slot patterns, and
// a suppressed case.
package poolfix

import "repro/internal/parallel"

// good writes each result to its own index slot.
func good(n int) []float64 {
	out := make([]float64, n)
	parallel.ForEach(n, 0, func(i int) {
		out[i] = float64(i) * 2
	})
	return out
}

// goodDerived addresses a disjoint region derived from the work index.
func goodDerived(n int) []float64 {
	out := make([]float64, 2*n)
	parallel.ForEachChunk(n, 0, 4, func(i int) {
		base := 2 * i
		for j := 0; j < 2; j++ {
			out[base+j] = float64(i + j)
		}
	})
	return out
}

func badScalar(n int) float64 {
	sum := 0.0
	parallel.ForEach(n, 0, func(i int) {
		sum += float64(i) // want "writes captured sum"
	})
	return sum
}

func badSlot(n int) []int {
	out := make([]int, 1)
	parallel.ForEach(n, 0, func(i int) {
		out[0]++ // want "writes captured out"
	})
	return out
}

type acc struct{ hits int }

func badField(n int, a *acc) {
	parallel.ForEach(n, 0, func(i int) {
		a.hits = a.hits + 1 // want "writes captured a"
	})
}

func suppressed(n int) {
	done := false
	parallel.ForEach(n, 0, func(i int) {
		done = true //selvet:ignore poolcapture fixture demonstrates an idempotent flag write
	})
	_ = done
}
