// Package detfix is a selvet fixture: violations of the detrand
// contract, the allowed idioms, and a suppressed case.
package detfix

import (
	"math/rand" // want "imports math/rand"
	"time"
)

func clocky() time.Duration {
	start := time.Now() // want "time.Now"
	_ = rand.Int()
	d := time.Since(start) // want "time.Since"
	time.Sleep(d)          // want "time.Sleep"
	return d
}

// pure uses only methods on an explicit instant — deterministic, no
// findings.
func pure(t0 time.Time) bool {
	deadline := t0.Add(time.Second)
	return t0.After(deadline)
}

func suppressed() time.Time {
	return time.Now() //selvet:ignore detrand fixture demonstrates a sanctioned wall-clock read
}
