// Package obslabelfix is a selvet fixture: dynamic metric names and
// label keys, unsorted and duplicate label registration, request-derived
// label values, the sanctioned shapes (constants, sorted keys, a label
// bound to a local first), and a suppressed case.
package obslabelfix

import (
	"net/http"

	"repro/internal/obs"
)

func register(reg *obs.Registry, name string, r *http.Request) {
	reg.Counter(name, "dynamic name forks the time series") // want "metric name is not a compile-time constant"

	reg.Counter("m_unsorted_total", "unsorted keys",
		obs.Label{Key: "route", Value: "/v1"},
		obs.Label{Key: "class", Value: "4xx"}) // want "label keys not in sorted order"

	reg.Counter("m_dup_total", "duplicate keys",
		obs.Label{Key: "class", Value: "4xx"},
		obs.Label{Key: "class", Value: "5xx"}) // want "duplicate label key"

	key := "dyn"
	reg.Gauge("m_dynkey", "dynamic key",
		obs.Label{Key: key, Value: "v"}) // want "obs.Label key is not a compile-time constant"

	reg.Counter("m_request_total", "request-derived value",
		obs.Label{Key: "path", Value: r.URL.Path}) // want "value derives from an"

	// Sorted constant keys with static values are the contract.
	reg.Counter("ok_total", "sorted",
		obs.Label{Key: "class", Value: "2xx"},
		obs.Label{Key: "route", Value: "/v1"})
	reg.Histogram("ok_seconds", "latency", nil,
		obs.Label{Key: "route", Value: "/v1"})

	// A label bound to a local still participates in the order check.
	rl := obs.Label{Key: "route", Value: "/v1/estimate"}
	reg.Counter("ok_local_total", "local label, sorted",
		obs.Label{Key: "class", Value: "5xx"}, rl)
	reg.Counter("bad_local_total", "local label, unsorted",
		rl,
		obs.Label{Key: "class", Value: "5xx"}) // want "label keys not in sorted order"

	//selvet:ignore obslabel fixture demonstrates a sanctioned migration-period dynamic name
	reg.Gauge(name, "suppressed dynamic name")
}
