// Package bvh is a selvet fixture for cowshare. The package is named
// bvh on purpose: structure-array mode keys on the package name, the
// same way the real internal/bvh is checked. It seeds writes to a
// published Tree's structure arrays (directly and through a reslice
// alias), writes through weight views, the sanctioned construction
// shapes, and a suppressed case.
package bvh

// Tree mirrors the real flat-array index: every slice field is shared
// wholesale by copy-on-write reweighting.
type Tree struct {
	nlo, nhi []float64
	weights  []float64
	wsums    []float64
}

// Build constructs a fresh tree: writes are fine until it is returned.
func Build(n int) *Tree {
	t := &Tree{}
	for i := 0; i < n; i++ {
		t.nlo = append(t.nlo, 0)
		t.nhi = append(t.nhi, 1)
	}
	t.build(0)
	t.sumWeights()
	return t
}

// build is a construction method: it writes structure arrays through
// its receiver before any reader can see the tree.
func (t *Tree) build(id int) {
	t.nlo[id] = 0
	window := t.nhi[id:]
	window[0] = 1
}

func (t *Tree) sumWeights() {
	for i := range t.wsums {
		t.wsums[i] = 0
	}
}

// Reweight shares every structure array with the original and only
// fills the arrays it owns — the copy-on-write contract.
func Reweight(t *Tree, w []float64) *Tree {
	nt := &Tree{nlo: t.nlo, nhi: t.nhi, weights: w}
	nt.wsums = append(nt.wsums, 0)
	nt.sumWeights()
	return nt
}

func (t *Tree) Weights() []float64 { return t.weights }

func mutateDirect(t *Tree) {
	t.nlo[0] = 2 // want "write to nlo of a published bvh.Tree"
}

func mutateField(t *Tree) {
	t.nhi = append(t.nhi, 3) // want "write to nhi of a published bvh.Tree"
}

func mutateAlias(t *Tree) {
	window := t.nlo[0:2]
	window[0] = 3 // want "alias of a published bvh.Tree structure array"
}

// readOK derives scalars and reads freely; only writes are the hazard.
func readOK(t *Tree) float64 {
	v := t.nlo[0]
	window := t.nhi[0:1]
	return v + window[0]
}

func tamperView(t *Tree) {
	w := t.Weights()
	w[0] = 2 // want "write into a weight view"
}

func overwriteView(t *Tree, w []float64) {
	copy(t.Weights(), w) // want "copy into a weight view"
}

func growView(t *Tree) []float64 {
	return append(t.Weights(), 1) // want "append through a weight view"
}

// model exercises the core.Reweightable contract by method name, the
// cross-package half of the check.
type model struct {
	w []float64
}

func (m *model) WeightView() ([]float64, int) { return m.w, len(m.w) }

func tamperModel(m *model) {
	w, _ := m.WeightView()
	w[0] = 1 // want "write into a weight view"
}

// cloneOK copies a view into private storage — reads never flag.
func cloneOK(m *model) []float64 {
	w, n := m.WeightView()
	out := make([]float64, n)
	copy(out, w)
	return out
}

func suppressed(t *Tree) {
	//selvet:ignore cowshare fixture demonstrates a single-owner tree mutated before publication
	t.nlo[0] = 4
}
