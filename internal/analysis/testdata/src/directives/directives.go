// Package dirfix is a selvet fixture for the driver's directive
// validation: directives naming unknown analyzers or lacking a reason
// are themselves findings.
package dirfix

func unused() int {
	x := 1 //selvet:ignore nosuch this analyzer does not exist
	y := 2 //selvet:ignore detrand
	return x + y
}
