// Package dirfix is a selvet fixture for the driver's directive
// validation: directives naming unknown analyzers or lacking a reason
// are themselves findings, and -strict-suppressions additionally flags
// well-formed directives that suppress nothing.
package dirfix

func unused() int {
	x := 1 //selvet:ignore nosuch this analyzer does not exist
	y := 2 //selvet:ignore detrand
	return x + y
}

func stale() int {
	//selvet:ignore floateq nothing on this line triggers floateq anymore
	return 3
}
