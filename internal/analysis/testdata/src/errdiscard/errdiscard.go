// Package errfix is a selvet fixture for errdiscard: silently dropped
// errors, the permitted discard idioms, and a suppressed case.
package errfix

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

func explode() error { return nil }

func bad() {
	explode() // want "explode returns an error that is silently dropped"
}

func badWriter(w io.Writer) {
	fmt.Fprintln(w, "hi") // want "fmt.Fprintln returns an error"
}

// okExplicit discards visibly.
func okExplicit() {
	_ = explode()
}

// okDefer: deferred cleanup is conventional and exempt.
func okDefer(f *os.File) {
	defer f.Close()
}

// okBuffer: in-memory sinks cannot fail.
func okBuffer() string {
	var b bytes.Buffer
	b.WriteString("x")
	var sb strings.Builder
	sb.WriteString("y")
	fmt.Fprintf(&b, "z")
	return b.String() + sb.String()
}

// okStdout: fmt printing to stdout/stderr has nowhere better to report.
func okStdout() {
	fmt.Println("ok")
	fmt.Fprintln(os.Stderr, "ok")
}

func suppressed(w io.Writer) {
	fmt.Fprintln(w, "hi") //selvet:ignore errdiscard fixture demonstrates a sanctioned best-effort write
}
