// Package atomicmixfix is a selvet fixture: locations accessed both
// through sync/atomic and plainly, value copies of typed atomic
// wrappers, the sanctioned accesses (methods, address-of, plain-only
// fields), and a suppressed case.
package atomicmixfix

import "sync/atomic"

type counters struct {
	hits   int64 // accessed atomically: plain access is a race
	config int64 // plain-only: fine
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func raceyRead(c *counters) int64 {
	return c.hits // want "accessed atomically elsewhere in this package"
}

func raceyWrite(c *counters) {
	c.hits++ // want "accessed atomically elsewhere in this package"
}

func plainOK(c *counters) {
	c.config = 7
}

var total int64

func bumpTotal() {
	atomic.AddInt64(&total, 1)
}

func readTotal() int64 {
	return total // want "accessed atomically elsewhere in this package"
}

type gauge struct {
	v atomic.Int64
}

func set(g *gauge) {
	g.v.Store(1) // method receiver: sanctioned
}

func addr(g *gauge) *atomic.Int64 {
	return &g.v // address-of: sanctioned
}

func copyOut(g *gauge) atomic.Int64 {
	return g.v // want "copying sync/atomic.Int64"
}

// Indexing a wrapper slice and calling a method on the element is the
// intended access path.
func sliceOK(xs []atomic.Int64) int64 {
	return xs[0].Load()
}

func suppressed(c *counters) int64 {
	//selvet:ignore atomicmix fixture demonstrates a startup-only read before any goroutine exists
	return c.hits
}
