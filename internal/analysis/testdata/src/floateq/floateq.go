// Package floateqfix is a selvet fixture: float equality violations, the
// exempt idioms (exact zero, NaN test, named comparison helpers), and a
// suppressed case.
package floateqfix

func bad(a, b float64) bool {
	return a == b // want "== on float operands"
}

func badNeq(xs []float64, y float64) bool {
	return xs[0] != y // want "!= on float operands"
}

// zeroOK compares against exact zero — well-defined in IEEE-754.
func zeroOK(a float64) bool { return a == 0 }

// nanOK is the canonical NaN test: identical operands.
func nanOK(a float64) bool { return a != a }

// almostEqual is a comparison helper by name; exact comparison inside is
// its job.
func almostEqual(a, b float64) bool {
	return a == b || diff(a, b) < 1e-12
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func suppressed(a, b float64) bool {
	return a == b //selvet:ignore floateq fixture demonstrates a sanctioned exact comparison
}
