// Package zeroallocfix is a selvet fixture: allocating constructs inside
// //selvet:zeroalloc-annotated functions, the sanctioned allocation-free
// idioms, an annotated function literal, and a suppressed case.
// Unannotated functions may allocate freely.
package zeroallocfix

import "fmt"

type sink struct {
	vals []float64
}

func take(any) {}

//selvet:zeroalloc
func badFmt(n int) {
	fmt.Println(n) // want "call to fmt.Println" // want "interface boxing of int"
}

//selvet:zeroalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//selvet:zeroalloc
func badConv(b []byte) string {
	s := string(b) // want "string conversion"
	return s
}

// Conversion contexts the runtime special-cases stay exempt.
//
//selvet:zeroalloc
func convOK(m map[string]int, b []byte, s string) bool {
	if m[string(b)] > 0 {
		return true
	}
	return string(b) == s
}

//selvet:zeroalloc
func badBox(f float64) {
	take(f) // want "interface boxing of float64"
}

// Constants, nil, and pointer-shaped values box without allocating.
//
//selvet:zeroalloc
func boxOK(p *sink, ch chan int) {
	take("static")
	take(nil)
	take(p)
	take(ch)
}

//selvet:zeroalloc
func badClosure(n int) func() int {
	f := func() int { return n } // want "closure captures n"
	return f
}

//selvet:zeroalloc
func badAppend() []int {
	var out []int
	out = append(out, 1) // want "append to non-arena slice out"
	return out
}

// Caller-owned and scratch-arena storage stays rooted through append.
//
//selvet:zeroalloc
func appendOK(dst []byte, b byte) []byte {
	return append(dst, b)
}

//selvet:zeroalloc
func scratchOK(s *sink, v float64) {
	s.vals = append(s.vals[:0], v)
}

// Error paths may allocate: the contract covers the happy path.
//
//selvet:zeroalloc
func errPathOK(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n)
	}
	return nil
}

// A function literal is annotated by a directive on the preceding line.
func makeHandler(n int) func() int {
	//selvet:zeroalloc
	return func() int {
		var xs []int
		//selvet:ignore zeroalloc fixture demonstrates a sanctioned one-time allocation
		xs = append(xs, n)
		return xs[0]
	}
}

// plain is unannotated: allocation is not a finding.
func plain(n int) string {
	return fmt.Sprintf("%d", n)
}
