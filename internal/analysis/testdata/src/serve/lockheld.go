// Package servefix is a selvet fixture for lockheld: blocking work under
// a held mutex, the copy-then-write pattern, and a suppressed case. The
// directory is named "serve" so the serving-scope rule applies to it.
package servefix

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

type store struct {
	mu   sync.Mutex
	vals map[string]int
	ch   chan int
}

func (s *store) bad(w http.ResponseWriter) {
	s.mu.Lock()
	_ = json.NewEncoder(w).Encode(s.vals) // want "streaming JSON Encode"
	s.ch <- 1                             // want "channel send"
	fmt.Fprintln(w, "done")               // want "fmt output Fprintln"
	s.mu.Unlock()
}

// deferred holds the lock to function end, so the write is under it.
func (s *store) deferred(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := fmt.Fprintln(w, len(s.vals)) // want "fmt output Fprintln"
	return err
}

// good is the sanctioned pattern: copy under the lock, write after.
func (s *store) good(w io.Writer) error {
	s.mu.Lock()
	n := len(s.vals)
	s.mu.Unlock()
	_, err := fmt.Fprintln(w, n)
	return err
}

// branch unlocks on the early path; the fallthrough is still locked.
func (s *store) branch() {
	s.mu.Lock()
	if len(s.vals) == 0 {
		s.mu.Unlock()
		return
	}
	v := <-s.ch // want "channel receive"
	s.vals["x"] = v
	s.mu.Unlock()
}

func (s *store) suppressed() {
	s.mu.Lock()
	s.ch <- 1 //selvet:ignore lockheld fixture demonstrates a sanctioned send under lock
	s.mu.Unlock()
}
