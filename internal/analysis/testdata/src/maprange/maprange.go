// Package maprangefix is a selvet fixture: map iteration feeding
// order-sensitive sinks, the sanctioned collect-then-sort pattern, and a
// suppressed case.
package maprangefix

import (
	"fmt"
	"sort"
)

func emit(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "Println inside range over map"
	}
}

func accumulate(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "float accumulation into total"
	}
	return total
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys"
	}
	return keys
}

// collectSorted is the canonical deterministic pattern: gather, then
// sort. No findings.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intAccumulate is order-insensitive (integer addition is associative).
// No findings.
func intAccumulate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //selvet:ignore maprange fixture demonstrates an intentionally unordered dump
	}
}
