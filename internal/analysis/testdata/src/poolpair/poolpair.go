// Package poolpairfix is a selvet fixture: sync.Pool Gets that leak on
// some control-flow path, a use after a plain Put, the sanctioned
// shapes (defer Put, Put on every branch, Put before an explicit
// panic), and a suppressed case.
package poolpairfix

import (
	"bytes"
	"sync"
)

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func leakOnElse(cond bool) {
	b := pool.Get().(*bytes.Buffer) // want "not matched by a Put on every path"
	if cond {
		pool.Put(b)
	}
}

func leakOnPanic(cond bool) {
	b := pool.Get().(*bytes.Buffer) // want "not matched by a Put on every path"
	if cond {
		panic("before the Put")
	}
	pool.Put(b)
}

func useAfterPut() int {
	b := pool.Get().(*bytes.Buffer)
	pool.Put(b)
	return b.Len() // want "used after being returned to its sync.Pool"
}

// deferOK is the canonical shape: the deferred Put covers early returns
// and explicit panics alike.
func deferOK(cond bool) {
	b := pool.Get().(*bytes.Buffer)
	defer pool.Put(b)
	if cond {
		return
	}
	b.Reset()
}

// branchesOK returns the value on every path explicitly.
func branchesOK(cond bool) {
	b := pool.Get().(*bytes.Buffer)
	if cond {
		b.Reset()
		pool.Put(b)
		return
	}
	pool.Put(b)
}

// panicAfterDeferOK: the defer runs on the panic unwind.
func panicAfterDeferOK(cond bool) {
	b := pool.Get().(*bytes.Buffer)
	defer pool.Put(b)
	if cond {
		panic("unwinds through the defer")
	}
}

// loopOK: a Get/Put pair fully inside one loop iteration.
func loopOK(n int) {
	for i := 0; i < n; i++ {
		b := pool.Get().(*bytes.Buffer)
		b.Reset()
		pool.Put(b)
	}
}

func suppressed() {
	//selvet:ignore poolpair fixture demonstrates a value intentionally retired from the pool
	b := pool.Get().(*bytes.Buffer)
	b.Reset()
}
