package analysis

// AnalyzerZeroalloc machine-checks the zero-allocation wire-path contract
// (DESIGN.md §13–14): a function or closure annotated
//
//	//selvet:zeroalloc
//
// (in a FuncDecl's doc comment, or on the line directly above a FuncLit)
// must not contain the allocating constructs the hand-rolled codec was
// built to avoid:
//
//   - interface boxing of a non-pointer-shaped concrete value (constants
//     and nil are exempt — the compiler materializes static interface
//     data for them; pointers, channels, maps, and funcs are direct
//     interface values)
//   - closures that capture enclosing locals (a capture-free literal is
//     a static function value)
//   - append whose destination is not arena-rooted: reachable, through
//     the function's own assignments, from a parameter, receiver, or
//     package-level variable — pooled storage whose capacity amortizes
//   - string concatenation, and string<->[]byte/[]rune conversions
//     outside the compiler's non-allocating contexts (map index,
//     comparison operand, switch tag)
//   - any call into package fmt
//
// Two path-sensitive exemptions mirror what the runtime gate
// (TestEstimateHandlerZeroAlloc) actually measures — the success path:
// constructs inside a return statement whose returned error is non-nil,
// and constructs inside a block (if/case body, not the function body
// itself) that terminates in return or panic, are error-path work and
// exempt. The static check and the runtime gate are complementary and
// both required: this analyzer pins the constructs, AllocsPerRun pins
// the arena capacities the analyzer takes on faith.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var AnalyzerZeroalloc = &Analyzer{
	Name: "zeroalloc",
	Doc:  "functions annotated //selvet:zeroalloc must not contain allocating constructs",
	Run:  runZeroalloc,
}

const zeroallocDirective = "//selvet:zeroalloc"

func runZeroalloc(p *Pass) {
	for _, f := range p.Files {
		// Lines holding a //selvet:zeroalloc comment, for FuncLit
		// annotations (a literal has no doc comment of its own).
		directiveLines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == zeroallocDirective {
					directiveLines[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && docHasZeroalloc(fn.Doc) {
					za := &zeroallocCheck{p: p, fn: fn.Body, params: funcParamObjs(p.Info, fn)}
					if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
						za.results = obj.Type().(*types.Signature).Results()
					}
					za.check()
					return false
				}
			case *ast.FuncLit:
				line := p.Fset.Position(fn.Pos()).Line
				if directiveLines[line] || directiveLines[line-1] {
					za := &zeroallocCheck{p: p, fn: fn.Body, params: litParamObjs(p.Info, fn)}
					if sig, ok := p.Info.TypeOf(fn).(*types.Signature); ok {
						za.results = sig.Results()
					}
					za.check()
					return false
				}
			}
			return true
		})
	}
}

func docHasZeroalloc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == zeroallocDirective {
			return true
		}
	}
	return false
}

// funcParamObjs collects a declaration's receiver, parameter, and named
// result objects — the arena roots the caller owns.
func funcParamObjs(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	addFieldList(fn.Recv)
	addFieldList(fn.Type.Params)
	addFieldList(fn.Type.Results)
	return out
}

func litParamObjs(info *types.Info, fn *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, fl := range []*ast.FieldList{fn.Type.Params, fn.Type.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

type zeroallocCheck struct {
	p       *Pass
	fn      *ast.BlockStmt
	params  map[types.Object]bool
	results *types.Tuple          // declared result types, for return boxing
	rooted  map[types.Object]bool // locals resolved to arena storage
}

func (za *zeroallocCheck) check() {
	za.rooted = za.computeRooted()
	za.stmts(za.fn.List, true, false)
}

// --- statement walk with error-path exemption ------------------------------

// stmts walks one statement list. topLevel marks the function body's own
// list (whose trailing return is the success path); exempt marks that the
// whole list is error-path work.
func (za *zeroallocCheck) stmts(list []ast.Stmt, topLevel, exempt bool) {
	for _, s := range list {
		za.stmt(s, topLevel, exempt)
	}
}

// blockExempt reports whether a nested statement list is error-path work:
// it ends in an explicit return or panic. The function body's own list is
// never exempt — its tail is the success path.
func blockExempt(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		return isPanicCall(last.X)
	}
	return false
}

func (za *zeroallocCheck) stmt(s ast.Stmt, topLevel, exempt bool) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		za.stmts(x.List, false, exempt)
	case *ast.IfStmt:
		za.expr(x.Init, exempt)
		za.expr(x.Cond, exempt)
		za.stmts(x.Body.List, false, exempt || blockExempt(x.Body.List))
		if x.Else != nil {
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				za.stmts(blk.List, false, exempt || blockExempt(blk.List))
			} else {
				za.stmt(x.Else, false, exempt)
			}
		}
	case *ast.ForStmt:
		za.expr(x.Init, exempt)
		za.expr(x.Cond, exempt)
		za.expr(x.Post, exempt)
		za.stmts(x.Body.List, false, exempt)
	case *ast.RangeStmt:
		za.expr(x.X, exempt)
		za.stmts(x.Body.List, false, exempt)
	case *ast.SwitchStmt:
		za.expr(x.Init, exempt)
		za.switchTag(x.Tag, exempt)
		za.caseClauses(x.Body, exempt)
	case *ast.TypeSwitchStmt:
		za.expr(x.Init, exempt)
		za.expr(x.Assign, exempt)
		za.caseClauses(x.Body, exempt)
	case *ast.SelectStmt:
		for _, cs := range x.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				za.expr(cc.Comm, exempt)
				za.stmts(cc.Body, false, exempt || blockExempt(cc.Body))
			}
		}
	case *ast.ReturnStmt:
		za.returnStmt(x, exempt)
	case *ast.LabeledStmt:
		za.stmt(x.Stmt, topLevel, exempt)
	default:
		za.expr(s, exempt)
	}
}

func (za *zeroallocCheck) caseClauses(body *ast.BlockStmt, exempt bool) {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				za.exprCtx(e, exempt, false)
			}
			za.stmts(cc.Body, false, exempt || blockExempt(cc.Body))
		}
	}
}

// returnStmt exempts allocating work on a return that hands back a
// non-nil error: that is by definition the failure path.
func (za *zeroallocCheck) returnStmt(x *ast.ReturnStmt, exempt bool) {
	if !exempt {
		sawErr := false
		for _, res := range x.Results {
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if t := za.p.Info.TypeOf(res); t != nil && isErrorType(t) {
				sawErr = true
			}
		}
		exempt = sawErr
	}
	for i, res := range x.Results {
		za.exprCtx(res, exempt, false)
		if za.results != nil && len(x.Results) == za.results.Len() {
			za.boxing(res, za.results.At(i).Type(), exempt)
		}
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// --- expression walk -------------------------------------------------------

// expr walks any node (stmt fragments included) in a normal context.
func (za *zeroallocCheck) expr(n ast.Node, exempt bool) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.AssignStmt:
		za.assign(x, exempt)
	case ast.Expr:
		za.exprCtx(x, exempt, false)
	case *ast.ExprStmt:
		za.exprCtx(x.X, exempt, false)
	case *ast.DeferStmt:
		za.call(x.Call, exempt)
	case *ast.GoStmt:
		za.call(x.Call, exempt)
	case *ast.IncDecStmt:
		za.exprCtx(x.X, exempt, false)
	case *ast.SendStmt:
		za.exprCtx(x.Chan, exempt, false)
		za.exprCtx(x.Value, exempt, false)
		za.boxing(x.Value, chanElem(za.p.Info.TypeOf(x.Chan)), exempt)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						za.exprCtx(v, exempt, false)
						if i < len(vs.Names) {
							if obj := za.p.Info.ObjectOf(vs.Names[i]); obj != nil {
								za.boxing(v, obj.Type(), exempt)
							}
						}
					}
				}
			}
		}
	}
}

func chanElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return ch.Elem()
	}
	return nil
}

// assign checks string-concat assignment ops, boxing into interface
// destinations, and walks both sides.
func (za *zeroallocCheck) assign(x *ast.AssignStmt, exempt bool) {
	if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isString(za.p.Info.TypeOf(x.Lhs[0])) && !exempt {
		za.p.Reportf(x.Pos(), "string concatenation allocates on the zero-alloc path")
	}
	for _, lhs := range x.Lhs {
		za.exprCtx(lhs, exempt, false)
	}
	for i, rhs := range x.Rhs {
		za.exprCtx(rhs, exempt, false)
		if len(x.Lhs) == len(x.Rhs) && (x.Tok == token.ASSIGN || x.Tok == token.DEFINE) {
			if t := za.p.Info.TypeOf(x.Lhs[i]); t != nil {
				za.boxing(rhs, t, exempt)
			}
		}
	}
}

// exprCtx walks one expression. noAllocConv marks the compiler contexts
// where a string conversion does not allocate (map index, comparison
// operand, switch tag).
func (za *zeroallocCheck) exprCtx(e ast.Expr, exempt, noAllocConv bool) {
	switch x := e.(type) {
	case nil:
	case *ast.ParenExpr:
		za.exprCtx(x.X, exempt, noAllocConv)
	case *ast.BinaryExpr:
		za.binary(x, exempt)
	case *ast.CallExpr:
		if za.stringConversion(x, exempt, noAllocConv) {
			return
		}
		za.call(x, exempt)
	case *ast.FuncLit:
		za.funcLit(x, exempt)
	case *ast.IndexExpr:
		za.exprCtx(x.X, exempt, false)
		// Indexing a map evaluates the key without materializing it.
		isMap := false
		if t := za.p.Info.TypeOf(x.X); t != nil {
			_, isMap = t.Underlying().(*types.Map)
		}
		za.exprCtx(x.Index, exempt, isMap)
	case *ast.SliceExpr:
		za.exprCtx(x.X, exempt, false)
		za.exprCtx(x.Low, exempt, false)
		za.exprCtx(x.High, exempt, false)
		za.exprCtx(x.Max, exempt, false)
	case *ast.StarExpr:
		za.exprCtx(x.X, exempt, false)
	case *ast.UnaryExpr:
		za.exprCtx(x.X, exempt, false)
	case *ast.SelectorExpr:
		za.exprCtx(x.X, exempt, false)
	case *ast.TypeAssertExpr:
		za.exprCtx(x.X, exempt, false)
	case *ast.KeyValueExpr:
		za.exprCtx(x.Key, exempt, false)
		za.exprCtx(x.Value, exempt, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			za.exprCtx(el, exempt, false)
		}
	}
}

// switchTag walks a switch tag, where a string conversion is free.
func (za *zeroallocCheck) switchTag(tag ast.Expr, exempt bool) {
	if tag == nil {
		return
	}
	za.exprCtx(tag, exempt, true)
}

// binary flags string + and walks operands; comparison operands are
// no-alloc conversion contexts.
func (za *zeroallocCheck) binary(x *ast.BinaryExpr, exempt bool) {
	switch x.Op {
	case token.ADD:
		if isString(za.p.Info.TypeOf(x)) && !exempt {
			za.p.Reportf(x.OpPos, "string concatenation allocates on the zero-alloc path")
		}
		za.exprCtx(x.X, exempt, false)
		za.exprCtx(x.Y, exempt, false)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		za.exprCtx(x.X, exempt, true)
		za.exprCtx(x.Y, exempt, true)
	default:
		za.exprCtx(x.X, exempt, false)
		za.exprCtx(x.Y, exempt, false)
	}
}

// stringConversion handles T(x) for the string<->bytes/runes family,
// reporting it outside no-alloc contexts. Returns true when the call was
// a conversion it fully handled.
func (za *zeroallocCheck) stringConversion(call *ast.CallExpr, exempt, noAllocConv bool) bool {
	tv, ok := za.p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type
	src := za.p.Info.TypeOf(call.Args[0])
	if src == nil {
		return false
	}
	conv := (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
	if conv {
		if !exempt && !noAllocConv {
			// A conversion of a constant is folded at compile time.
			if cv, ok := za.p.Info.Types[call.Args[0]]; !ok || cv.Value == nil {
				za.p.Reportf(call.Pos(), "string conversion allocates on the zero-alloc path (exempt as a map index, comparison operand, or switch tag)")
			}
		}
		za.exprCtx(call.Args[0], exempt, false)
		return true
	}
	// Some other conversion: walk the operand, no finding.
	za.exprCtx(call.Args[0], exempt, false)
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// call checks fmt calls, append rootedness, and boxing at call arguments.
func (za *zeroallocCheck) call(call *ast.CallExpr, exempt bool) {
	if fn := calleeFunc(za.p.Info, call); fn != nil && funcPkgPath(fn) == "fmt" && !exempt {
		za.p.Reportf(call.Pos(), "call to fmt.%s allocates on the zero-alloc path", fn.Name())
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Obj == nil && id.Name == "append" {
		za.appendCall(call, exempt)
		for _, a := range call.Args {
			za.exprCtx(a, exempt, false)
		}
		return
	}
	za.exprCtx(call.Fun, exempt, false)
	sig, _ := za.p.Info.TypeOf(call.Fun).(*types.Signature)
	for i, a := range call.Args {
		za.exprCtx(a, exempt, false)
		if sig == nil || exempt {
			continue
		}
		if pt := paramType(sig, i, call); pt != nil {
			za.boxing(a, pt, exempt)
		}
	}
}

// paramType resolves the declared type of argument i, unwrapping the
// variadic slice.
func paramType(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if call.Ellipsis != token.NoPos {
			if i == n-1 {
				return sig.Params().At(n - 1).Type()
			}
			return nil
		}
		if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// boxing reports arg being converted to an interface destination when the
// conversion must materialize a heap value: concrete, non-pointer-shaped,
// non-constant, non-nil operands.
func (za *zeroallocCheck) boxing(arg ast.Expr, dst types.Type, exempt bool) {
	if exempt || dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := za.p.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	if tv.Value != nil {
		return // constants box to static interface data
	}
	if tv.IsNil() {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing word
	}
	if isPointerShaped(src) {
		return
	}
	za.p.Reportf(arg.Pos(), "interface boxing of %s allocates on the zero-alloc path", src)
}

// isPointerShaped reports types stored directly in an interface word.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// funcLit flags closures that capture enclosing state; a capture-free
// literal is a static function value and passes.
func (za *zeroallocCheck) funcLit(lit *ast.FuncLit, exempt bool) {
	if exempt {
		return
	}
	var captured []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := za.p.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if obj.Parent() == nil || obj.Parent().Parent() == nil {
			return true // fields, package vars: not captures
		}
		if declaredWithin(obj, lit) || za.isPackageLevel(obj) {
			return true
		}
		// Declared in an enclosing function scope: a capture.
		if declaredWithin(obj, za.fn) || za.params[obj] {
			seen[obj] = true
			captured = append(captured, obj.Name())
		}
		return true
	})
	if len(captured) > 0 {
		za.p.Reportf(lit.Pos(), "closure captures %s and allocates on the zero-alloc path", strings.Join(captured, ", "))
	}
	// The literal's own body is not part of the annotated contract
	// unless separately annotated, so stop here.
}

func (za *zeroallocCheck) isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// --- append rootedness -----------------------------------------------------

// appendCall reports append whose destination cannot be traced to arena
// storage (parameter, receiver, or package variable).
func (za *zeroallocCheck) appendCall(call *ast.CallExpr, exempt bool) {
	if exempt || len(call.Args) == 0 {
		return
	}
	if !za.rootedExpr(call.Args[0]) {
		za.p.Reportf(call.Pos(), "append to non-arena slice %s allocates on the zero-alloc path", exprName(call.Args[0]))
	}
}

func exprName(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		return id.Name
	}
	return "expression"
}

// computeRooted resolves which locals hold arena-backed slices, by
// optimistic fixpoint: every local starts rooted and is demoted when any
// of its assignments (or its uninitialized declaration) supplies
// non-arena storage. Self-referential growth (`out = append(out, ...)`)
// keeps the initial root.
func (za *zeroallocCheck) computeRooted() map[types.Object]bool {
	rooted := map[types.Object]bool{}
	var locals []types.Object
	ast.Inspect(za.fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := za.p.Info.Defs[id]
		if obj == nil || !declaredWithin(obj, za.fn) {
			return true
		}
		if _, isVar := obj.(*types.Var); isVar {
			rooted[obj] = true
			locals = append(locals, obj)
		}
		return true
	})
	za.rooted = rooted

	demote := func(lhs ast.Expr, rhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		obj := za.p.Info.ObjectOf(id)
		if obj == nil || !rooted[obj] {
			return false
		}
		if rhs == nil || !za.rootedExpr(rhs) {
			delete(rooted, obj)
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(za.fn, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						if demote(x.Lhs[i], x.Rhs[i]) {
							changed = true
						}
					}
				} else {
					// Multi-value results are not arena storage.
					for _, lhs := range x.Lhs {
						if demote(lhs, nil) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					var rhs ast.Expr
					if len(x.Values) == len(x.Names) {
						rhs = x.Values[i]
					}
					if demote(name, rhs) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if x.Key != nil {
					if demote(x.Key, x.X) {
						changed = true
					}
				}
				if x.Value != nil {
					if demote(x.Value, x.X) {
						changed = true
					}
				}
			}
			return true
		})
	}
	return rooted
}

// rootedExpr reports whether e denotes (or derives from) arena storage.
func (za *zeroallocCheck) rootedExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := za.p.Info.ObjectOf(x)
		if obj == nil {
			return false
		}
		if za.params[obj] || za.isPackageLevel(obj) {
			return true
		}
		if declaredWithin(obj, za.fn) {
			return za.rooted[obj]
		}
		// Captured from an enclosing function: treat as caller-owned.
		return true
	case *ast.SelectorExpr:
		// A field chain roots at its base: p.sc.strbuf is arena iff p is.
		return za.rootedExpr(x.X)
	case *ast.IndexExpr:
		return za.rootedExpr(x.X)
	case *ast.StarExpr:
		return za.rootedExpr(x.X)
	case *ast.SliceExpr:
		return za.rootedExpr(x.X)
	case *ast.TypeAssertExpr:
		return za.rootedExpr(x.X)
	case *ast.CallExpr:
		// A sync.Pool Get hands back recycled arena memory — the pooled
		// scratch pattern the zero-alloc path is built on.
		if poolGet(za.p.Info, x) != nil {
			return true
		}
		// append(rooted, ...) and conversions of rooted storage stay rooted.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Obj == nil && id.Name == "append" && len(x.Args) > 0 {
			return za.rootedExpr(x.Args[0])
		}
		if tv, ok := za.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return za.rootedExpr(x.Args[0])
		}
		// Stdlib append-style builders (utf8.AppendRune, strconv.
		// AppendFloat, ...) grow and return their first argument, so
		// rootedness flows through them exactly like builtin append.
		if fn := calleeFunc(za.p.Info, x); fn != nil && len(x.Args) > 0 &&
			strings.HasPrefix(fn.Name(), "Append") && isStdlibPkg(funcPkgPath(fn)) {
			return za.rootedExpr(x.Args[0])
		}
		return false
	}
	return false
}

// isStdlibPkg reports a standard-library import path (no dot in the
// first segment, the convention module paths violate).
func isStdlibPkg(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return path != "" && !strings.Contains(first, ".")
}
