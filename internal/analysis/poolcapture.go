package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerPoolcapture enforces the parallel engine's ordered-reduction
// rule: a closure handed to internal/parallel's Map / ForEach /
// ForEachChunk runs concurrently on many workers, so it may only write
// captured state through a location derived from its own work index
// (`out[i] = ...`). A write to a captured scalar, struct field, or a
// fixed element (`out[0]`, `sum += x`) is a data race and breaks the
// byte-identical-for-any-worker-count guarantee.
var AnalyzerPoolcapture = &Analyzer{
	Name: "poolcapture",
	Doc:  "closures on the parallel pool may write captured state only through their own index slot",
	Run:  runPoolcapture,
}

// poolFuncs are the fan-out entry points of internal/parallel.
var poolFuncs = map[string]bool{
	"Map":          true,
	"ForEach":      true,
	"ForEachChunk": true,
}

func runPoolcapture(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || !poolFuncs[fn.Name()] {
				return true
			}
			if pp := funcPkgPath(fn); !strings.HasSuffix(pp, "internal/parallel") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkPoolClosure(p, lit)
			return true
		})
	}
}

// checkPoolClosure flags writes through captured variables that are not
// addressed by the closure's own index.
func checkPoolClosure(p *Pass, lit *ast.FuncLit) {
	params := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.ObjectOf(name); obj != nil {
				params[obj] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkPoolWrite(p, lit, params, lhs)
			}
		case *ast.IncDecStmt:
			checkPoolWrite(p, lit, params, x.X)
		}
		return true
	})
}

// checkPoolWrite analyzes one assignment target inside a pool closure.
// The target is safe when its root variable is declared inside the
// closure (per-invocation state), or when some index on the access path
// mentions the closure's index parameter or closure-local state (a slot
// derived from the work index). A write whose whole path is captured,
// index-free, or indexed only by captured values is shared between
// workers and gets flagged.
func checkPoolWrite(p *Pass, lit *ast.FuncLit, params map[types.Object]bool, lhs ast.Expr) {
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	obj := p.Info.ObjectOf(root)
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if indexedByLocal(p.Info, lit, params, lhs) {
		return
	}
	p.Reportf(lhs.Pos(),
		"parallel closure writes captured %s outside its own index slot; every worker races on it", obj.Name())
}

// indexedByLocal reports whether any index expression on the access path
// references the closure's parameters or closure-local variables.
func indexedByLocal(info *types.Info, lit *ast.FuncLit, params map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			ok := false
			ast.Inspect(x.Index, func(n ast.Node) bool {
				id, isIdent := n.(*ast.Ident)
				if !isIdent {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					return true
				}
				if params[obj] || declaredWithin(obj, lit) {
					ok = true
				}
				return !ok
			})
			if ok {
				return true
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
