// Package analysis is the project's static-analysis engine: a small,
// stdlib-only (go/parser + go/ast + go/types, no x/tools) driver that
// loads every package in the module and runs project-specific analyzers
// enforcing the determinism, concurrency, and numeric contracts that the
// reproduction's results depend on (see DESIGN.md §9).
//
// The analyzers are:
//
//   - detrand:     no global math/rand or wall-clock reads in
//     deterministic packages
//   - maprange:    no map iteration feeding ordered output or float
//     accumulation in deterministic packages
//   - floateq:     no ==/!= on floating-point operands outside approved
//     comparison helpers
//   - lockheld:    no blocking I/O or channel operations while a
//     sync.Mutex/RWMutex is held in the serving packages
//   - errdiscard:  no silently dropped error returns
//   - poolcapture: closures handed to the internal/parallel pool must
//     only write captured state through their own index slot
//   - zeroalloc:   functions annotated //selvet:zeroalloc must contain
//     no allocating constructs (boxing, capturing closures, string
//     concat/conversion, fmt, un-rooted append)
//   - poolpair:    every sync.Pool Get reaches a Put on all CFG paths,
//     and the value is never used after a plain Put
//   - atomicmix:   a location accessed via sync/atomic anywhere in a
//     package is never accessed plainly, and typed atomic wrappers are
//     never copied by value
//   - cowshare:    structure arrays shared by copy-on-write bvh trees
//     and WeightView slices are only written during construction
//   - obslabel:    metric names and label keys are compile-time
//     constants, labels are registered in sorted order, and label values
//     are never request-derived
//
// The last five run on a lightweight intraprocedural CFG/dataflow layer
// (cfg.go, flow.go) built directly over go/ast — basic blocks, a generic
// forward worklist solver, and a flow-insensitive taint fixpoint.
//
// Findings can be suppressed per line with
//
//	//selvet:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory: a directive without one is itself reported, so every
// suppression in the tree documents why the contract does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"position"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// RelPath is the package path relative to the module root ("" for
	// the root package). Scope decisions use it, never the filesystem.
	RelPath string
	Info    *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by module-relative path; nil means the
	// analyzer runs on every package.
	Applies func(relPath string) bool
	Run     func(*Pass)
}

// All returns the full analyzer set in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetrand,
		AnalyzerMaprange,
		AnalyzerFloateq,
		AnalyzerLockheld,
		AnalyzerErrdiscard,
		AnalyzerPoolcapture,
		AnalyzerZeroalloc,
		AnalyzerPoolpair,
		AnalyzerAtomicmix,
		AnalyzerCowshare,
		AnalyzerObslabel,
	}
}

// ByName resolves a comma-separated analyzer list; empty selects All.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// --- package scopes --------------------------------------------------------

// hasSegment reports whether the module-relative package path contains the
// given path segment.
func hasSegment(rel, seg string) bool {
	for _, s := range strings.Split(rel, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// DeterministicScope reports whether a package must obey the determinism
// contract: everything except the serving layer (internal/serve), the
// command-line entry points (cmd/...), and the runnable examples. Those
// three are allowed to touch wall clocks and other ambient state; every
// other package must thread internal/rng seeds and produce byte-identical
// results for a fixed seed.
func DeterministicScope(rel string) bool {
	return !hasSegment(rel, "cmd") && !hasSegment(rel, "examples") && !hasSegment(rel, "serve")
}

// ServeScope reports whether a package is part of the concurrent serving
// layer, where the lock-hygiene contract (no blocking I/O under a mutex)
// applies.
func ServeScope(rel string) bool {
	return hasSegment(rel, "serve")
}

// --- suppression directives ------------------------------------------------

// IgnoreDirective is one parsed //selvet:ignore comment.
type IgnoreDirective struct {
	Analyzer string
	Reason   string
	Position token.Position
	used     bool
}

const ignorePrefix = "//selvet:ignore"

// parseIgnores extracts a file's ignore directives in source order.
func parseIgnores(fset *token.FileSet, file *ast.File) []*IgnoreDirective {
	var out []*IgnoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			out = append(out, &IgnoreDirective{
				Analyzer: name,
				Reason:   strings.TrimSpace(reason),
				Position: fset.Position(c.Pos()),
			})
		}
	}
	return out
}

// PackageStats summarizes one package's run: surviving findings and used
// suppressions per analyzer, plus the file count. The selvet -json
// summary aggregates these across packages.
type PackageStats struct {
	Findings     map[string]int
	Suppressions map[string]int
	Files        int
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving diagnostics: findings suppressed by a well-formed
// //selvet:ignore directive on the same or preceding line are dropped,
// while malformed directives (unknown analyzer, missing reason) are
// reported as findings of the pseudo-analyzer "selvet".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunPackageStats(pkg, analyzers, false)
	return diags
}

// RunPackageStats is RunPackage plus per-analyzer counters. With strict
// set, a well-formed directive whose analyzer ran on this package but
// suppressed nothing is itself reported ("selvet" pseudo-analyzer): a
// stale suppression means the code was fixed, or the directive never
// matched — either way it silently widens the exemption surface.
func RunPackageStats(pkg *Package, analyzers []*Analyzer, strict bool) ([]Diagnostic, PackageStats) {
	stats := PackageStats{
		Findings:     map[string]int{},
		Suppressions: map[string]int{},
		Files:        len(pkg.Files),
	}
	var raw []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.RelPath) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			RelPath:  pkg.RelPath,
			Info:     pkg.Info,
			diags:    &raw,
		}
		a.Run(pass)
	}

	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ignores := map[string][]*IgnoreDirective{}
	var directives []*IgnoreDirective
	for _, f := range pkg.Files {
		for _, dir := range parseIgnores(pkg.Fset, f) {
			key := fmt.Sprintf("%s:%d", dir.Position.Filename, dir.Position.Line)
			ignores[key] = append(ignores[key], dir)
			directives = append(directives, dir)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if suppressed(d, ignores) {
			continue
		}
		stats.Findings[d.Analyzer]++
		out = append(out, d)
	}
	report := func(dir *IgnoreDirective, format string, args ...any) {
		stats.Findings["selvet"]++
		out = append(out, Diagnostic{
			Analyzer: "selvet",
			Position: dir.Position,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, dir := range directives {
		switch {
		case !known[dir.Analyzer]:
			report(dir, "ignore directive names unknown analyzer %q", dir.Analyzer)
		case dir.Reason == "":
			report(dir, "ignore directive for %q needs a reason", dir.Analyzer)
		case dir.used:
			stats.Suppressions[dir.Analyzer]++
		case strict && ran[dir.Analyzer]:
			report(dir, "stale ignore directive: %q reported nothing on this line", dir.Analyzer)
		}
	}
	SortDiagnostics(out)
	return out, stats
}

// suppressed reports whether a well-formed directive on the diagnostic's
// line or the line above covers it.
func suppressed(d Diagnostic, ignores map[string][]*IgnoreDirective) bool {
	for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
		key := fmt.Sprintf("%s:%d", d.Position.Filename, line)
		for _, dir := range ignores[key] {
			if dir.Analyzer == d.Analyzer && dir.Reason != "" {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// SortDiagnostics orders findings by file, line, column, then analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
