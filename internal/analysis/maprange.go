package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerMaprange enforces the ordering half of the determinism
// contract: in deterministic packages, iterating a map must not feed
// order-sensitive sinks. Go randomizes map iteration order per run, so a
// range-over-map that appends to an outer slice (unless that slice is
// sorted afterwards in the same function), accumulates into an outer
// float (float addition is not associative), or writes output directly
// produces run-dependent bytes.
var AnalyzerMaprange = &Analyzer{
	Name:    "maprange",
	Doc:     "forbid map iteration feeding ordered output or float accumulation in deterministic packages",
	Applies: DeterministicScope,
	Run:     runMaprange,
}

func runMaprange(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(p, body, rs)
				return true
			})
		})
	}
}

// checkMapRangeBody flags the order-sensitive sinks inside one
// range-over-map loop.
func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			checkMapRangeAssign(p, fnBody, rs, x)
		case *ast.CallExpr:
			if name, ok := outputCallName(x); ok {
				p.Reportf(x.Pos(),
					"%s inside range over map emits output in random iteration order", name)
			}
		}
		return true
	})
}

func checkMapRangeAssign(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if !isFloat(p.Info.TypeOf(lhs)) {
				continue
			}
			if obj := lhsObject(p.Info, lhs); obj != nil && !declaredWithin(obj, rs) {
				p.Reportf(as.Pos(),
					"float accumulation into %s inside range over map depends on iteration order (float addition is not associative)", obj.Name())
			}
		}
	case token.ASSIGN:
		// x = append(x, ...) growing a slice declared outside the loop.
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			obj := lhsObject(p.Info, as.Lhs[i])
			if obj == nil || declaredWithin(obj, rs) {
				continue
			}
			if sortedLater(p.Info, fnBody, rs, obj) {
				continue
			}
			p.Reportf(as.Pos(),
				"append to %s inside range over map collects elements in random iteration order; sort the result or iterate sorted keys", obj.Name())
		}
	}
}

// lhsObject resolves the root object an assignment target writes through.
func lhsObject(info *types.Info, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil {
		return nil
	}
	return info.ObjectOf(id)
}

// outputCallName reports whether a call writes output (Print/Fprint/Write
// family) and returns a printable callee name.
func outputCallName(call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	for _, prefix := range []string{"Print", "Fprint", "Write"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return name, true
		}
	}
	return "", false
}

// sortedLater reports whether obj is passed to a sort/slices call after
// the range loop in the same function — the canonical collect-then-sort
// pattern, which is deterministic.
func sortedLater(info *types.Info, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if pp := funcPkgPath(fn); pp != "sort" && pp != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
