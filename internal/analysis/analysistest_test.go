package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared: it is read-only for every test.
var (
	modOnce sync.Once
	mod     *Module
	modErr  error
)

func loadTestModule(t *testing.T) *Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = LoadModule(".") })
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

// want is one expected diagnostic, parsed from a fixture comment of the
// form  // want "substring"  on the offending line.
type want struct {
	file string
	line int
	sub  string
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				out = append(out, want{file: e.Name(), line: i + 1, sub: m[1]})
			}
		}
	}
	return out
}

// runFixture loads one fixture package and checks the analyzer's
// diagnostics against its // want comments: every want must be matched
// by a finding on its line, and every finding must be expected. This is
// the shared table row for all analyzer tests — positive, negative, and
// suppressed cases live side by side in each fixture file.
func runFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	m := loadTestModule(t)
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := m.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := RunPackage(pkg, analyzers)
	wants := parseWants(t, dir)

	matchedDiag := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for di, d := range diags {
			if filepath.Base(d.Position.Filename) == w.file &&
				d.Position.Line == w.line && strings.Contains(d.Message, w.sub) {
				matchedDiag[di] = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.sub)
		}
	}
	for di, d := range diags {
		if !matchedDiag[di] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestDetrandFixture(t *testing.T)  { runFixture(t, "detrand", []*Analyzer{AnalyzerDetrand}) }
func TestMaprangeFixture(t *testing.T) { runFixture(t, "maprange", []*Analyzer{AnalyzerMaprange}) }
func TestFloateqFixture(t *testing.T)  { runFixture(t, "floateq", []*Analyzer{AnalyzerFloateq}) }
func TestLockheldFixture(t *testing.T) { runFixture(t, "serve", []*Analyzer{AnalyzerLockheld}) }
func TestErrdiscardFixture(t *testing.T) {
	runFixture(t, "errdiscard", []*Analyzer{AnalyzerErrdiscard})
}
func TestPoolcaptureFixture(t *testing.T) {
	runFixture(t, "poolcapture", []*Analyzer{AnalyzerPoolcapture})
}
func TestZeroallocFixture(t *testing.T) { runFixture(t, "zeroalloc", []*Analyzer{AnalyzerZeroalloc}) }
func TestPoolpairFixture(t *testing.T)  { runFixture(t, "poolpair", []*Analyzer{AnalyzerPoolpair}) }
func TestAtomicmixFixture(t *testing.T) {
	runFixture(t, "atomicmix", []*Analyzer{AnalyzerAtomicmix})
}
func TestCowshareFixture(t *testing.T) { runFixture(t, "cowshare", []*Analyzer{AnalyzerCowshare}) }
func TestObslabelFixture(t *testing.T) { runFixture(t, "obslabel", []*Analyzer{AnalyzerObslabel}) }

// TestFixturesAreSeededViolations double-checks the property verify.sh
// relies on: running the full analyzer set over any violation fixture
// yields at least one finding (nonzero selvet exit).
func TestFixturesAreSeededViolations(t *testing.T) {
	m := loadTestModule(t)
	for _, fixture := range []string{
		"detrand", "maprange", "floateq", "serve", "errdiscard", "poolcapture",
		"zeroalloc", "poolpair", "atomicmix", "cowshare", "obslabel",
	} {
		pkg, err := m.LoadDir(filepath.Join("testdata", "src", fixture))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", fixture, err)
		}
		if diags := RunPackage(pkg, All()); len(diags) == 0 {
			t.Errorf("fixture %s: expected the full analyzer set to flag it, got no findings", fixture)
		}
	}
}

func TestDirectiveValidation(t *testing.T) {
	m := loadTestModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, All())
	var unknown, noReason bool
	for _, d := range diags {
		if d.Analyzer != "selvet" {
			t.Errorf("unexpected non-driver finding: %s", d)
			continue
		}
		if strings.Contains(d.Message, `unknown analyzer "nosuch"`) {
			unknown = true
		}
		if strings.Contains(d.Message, "needs a reason") {
			noReason = true
		}
	}
	if !unknown {
		t.Error("directive naming an unknown analyzer was not reported")
	}
	if !noReason {
		t.Error("directive without a reason was not reported")
	}
}

// TestRepoIsClean is the self-gate: the full analyzer set over every
// package of this module must produce zero findings — the exact
// condition under which `go run ./cmd/selvet ./...` exits 0. Strict
// suppression checking is on, so every //selvet:ignore in the tree must
// also still be earning its keep.
func TestRepoIsClean(t *testing.T) {
	m := loadTestModule(t)
	var dirty []string
	for _, pkg := range m.Pkgs {
		diags, _ := RunPackageStats(pkg, All(), true)
		for _, d := range diags {
			dirty = append(dirty, d.String())
		}
	}
	if len(dirty) > 0 {
		t.Fatalf("selvet findings in the tree (fix or suppress with a reason):\n%s",
			strings.Join(dirty, "\n"))
	}
}

// TestStaleSuppression checks -strict-suppressions semantics: a
// well-formed directive whose analyzer ran but reported nothing is a
// finding under strict mode and silent otherwise, and the run stats
// count used suppressions but not stale ones.
func TestStaleSuppression(t *testing.T) {
	m := loadTestModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	lax, _ := RunPackageStats(pkg, All(), false)
	for _, d := range lax {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale directive reported without strict mode: %s", d)
		}
	}
	strict, stats := RunPackageStats(pkg, All(), true)
	found := false
	for _, d := range strict {
		if d.Analyzer == "selvet" && strings.Contains(d.Message, "stale ignore directive") &&
			strings.Contains(d.Message, "floateq") {
			found = true
		}
	}
	if !found {
		t.Error("strict mode did not flag the stale floateq directive")
	}
	if stats.Suppressions["floateq"] != 0 {
		t.Errorf("stale directive counted as a used suppression: %v", stats.Suppressions)
	}
	if stats.Files == 0 {
		t.Error("stats did not count scanned files")
	}
}

// TestFixtureStats checks the per-analyzer counters the -json summary is
// built from, over a fixture with known findings and one suppression.
func TestFixtureStats(t *testing.T) {
	m := loadTestModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "poolpair"))
	if err != nil {
		t.Fatal(err)
	}
	_, stats := RunPackageStats(pkg, []*Analyzer{AnalyzerPoolpair}, false)
	if stats.Findings["poolpair"] != 3 {
		t.Errorf("poolpair findings = %d, want 3 (two leaks, one use-after-put)", stats.Findings["poolpair"])
	}
	if stats.Suppressions["poolpair"] != 1 {
		t.Errorf("poolpair suppressions = %d, want 1", stats.Suppressions["poolpair"])
	}
}

func TestScopes(t *testing.T) {
	cases := []struct {
		rel           string
		deterministic bool
		serve         bool
	}{
		{"", true, false},
		{"internal/solver", true, false},
		{"internal/experiments", true, false},
		{"internal/serve", false, true},
		{"cmd/selbench", false, false},
		{"examples/quickstart", false, false},
		{"internal/analysis/testdata/src/serve", false, true},
		{"internal/analysis/testdata/src/detrand", true, false},
	}
	for _, c := range cases {
		if got := DeterministicScope(c.rel); got != c.deterministic {
			t.Errorf("DeterministicScope(%q) = %v, want %v", c.rel, got, c.deterministic)
		}
		if got := ServeScope(c.rel); got != c.serve {
			t.Errorf("ServeScope(%q) = %v, want %v", c.rel, got, c.serve)
		}
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want %d", len(all), err, len(All()))
	}
	two, err := ByName("detrand, floateq")
	if err != nil || len(two) != 2 || two[0].Name != "detrand" || two[1].Name != "floateq" {
		t.Fatalf("ByName subset failed: %v, err %v", two, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) should fail")
	}
}

func TestDiagnosticString(t *testing.T) {
	m := loadTestModule(t)
	pkg, err := m.LoadDir(filepath.Join("testdata", "src", "floateq"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{AnalyzerFloateq})
	if len(diags) == 0 {
		t.Fatal("expected findings")
	}
	s := diags[0].String()
	if !strings.Contains(s, "floateq.go:") || !strings.Contains(s, "[floateq]") {
		t.Errorf("diagnostic string %q lacks position or analyzer tag", s)
	}
	if fmt.Sprint(diags[0].Position.Line) == "0" {
		t.Error("diagnostic has no line number")
	}
}
