package analysis

// AnalyzerObslabel machine-checks the metrics-registration contract of
// internal/obs (DESIGN.md §14). Three rules:
//
//   - metric names and label keys are compile-time constants — a
//     computed name silently forks a time series and breaks dashboards
//     that query by literal name;
//   - labels are passed to Counter/Gauge/Histogram/CounterFunc/GaugeFunc
//     in sorted key order — renderLabels sorts internally, but the
//     registration call is the documented place readers learn the label
//     set, so pass order is part of the contract;
//   - label values must not derive from an *http.Request — request-
//     derived values (paths, header contents) have unbounded cardinality
//     and blow up the registry. Route patterns are fine because they are
//     the mux's compile-time strings, not the request's.
//
// obs.Label literals are checked wherever they occur (including ones
// bound to a local and passed by name, the stats.go idiom); name
// constancy and key order are checked at the registration call.

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

var AnalyzerObslabel = &Analyzer{
	Name: "obslabel",
	Doc:  "metric names and label keys must be constants, labels sorted at registration, values not request-derived",
	Run:  runObslabel,
}

// obsRegMethods maps Registry method name to the argument index where
// the variadic labels begin.
var obsRegMethods = map[string]int{
	"Counter":     2, // name, help, labels...
	"Gauge":       2,
	"Histogram":   3, // name, help, bounds, labels...
	"CounterFunc": 3, // name, help, fn, labels...
	"GaugeFunc":   3,
}

func runObslabel(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			checkObsInFunc(p, fn)
			return false
		})
	}
}

func checkObsInFunc(p *Pass, fn *ast.FuncDecl) {
	// Variables carrying request-derived data in this function.
	reqSeed := func(e ast.Expr) bool {
		return isHTTPRequest(p.Info.TypeOf(e))
	}
	reqTainted := FlowFrom(p.Info, fn, reqSeed)

	// Every obs.Label literal: constant key, non-request value. Also
	// remember each local bound to exactly one literal so call-site
	// ordering can see through the name.
	litKeys := map[ast.Expr]string{}     // literal -> constant key ("" if unknown)
	bound := map[types.Object]ast.Expr{} // local -> its single literal
	ast.Inspect(fn, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if !isObsLabel(p.Info.TypeOf(x)) {
				return true
			}
			key, val := labelLitFields(x)
			k := ""
			if key != nil {
				if tv, ok := p.Info.Types[key]; ok && tv.Value != nil {
					k = constString(tv)
				} else {
					p.Reportf(key.Pos(), "obs.Label key is not a compile-time constant")
				}
			}
			litKeys[x] = k
			if val != nil && Derived(p.Info, val, reqTainted, reqSeed) {
				p.Reportf(val.Pos(), "obs.Label value derives from an *http.Request: request-derived label values have unbounded cardinality")
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					bindLabelLocal(p.Info, x.Lhs[i], rhs, bound)
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == len(x.Names) {
				for i, name := range x.Names {
					bindLabelLocal(p.Info, name, x.Values[i], bound)
				}
			}
		}
		return true
	})

	// Registration calls: constant name, sorted keys.
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		labelStart, ok := obsRegistryCall(p.Info, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if tv, ok := p.Info.Types[call.Args[0]]; !ok || tv.Value == nil {
			p.Reportf(call.Args[0].Pos(), "metric name is not a compile-time constant")
		}
		if call.Ellipsis.IsValid() {
			return true // labels... spread: the slice is checked where built
		}
		prev, prevKnown := "", false
		for _, arg := range call.Args[labelStart:] {
			key, known := argLabelKey(p.Info, arg, litKeys, bound)
			if !known {
				prevKnown = false
				continue
			}
			if prevKnown {
				if key == prev {
					p.Reportf(arg.Pos(), "duplicate label key %q in registration call", key)
				} else if key < prev {
					p.Reportf(arg.Pos(), "label keys not in sorted order at registration: %q after %q", key, prev)
				}
			}
			prev, prevKnown = key, true
		}
		return true
	})
}

// obsRegistryCall reports whether call is a Registry registration method
// of internal/obs, returning the index of the first label argument.
func obsRegistryCall(info *types.Info, call *ast.CallExpr) (int, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0, false
	}
	start, ok := obsRegMethods[fn.Name()]
	if !ok || !strings.HasSuffix(funcPkgPath(fn), "internal/obs") {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !sig.Variadic() {
		return 0, false
	}
	return start, true
}

// argLabelKey resolves the constant key of one label argument: either an
// obs.Label literal, or a local bound to exactly one such literal.
func argLabelKey(info *types.Info, arg ast.Expr, litKeys map[ast.Expr]string, bound map[types.Object]ast.Expr) (string, bool) {
	e := ast.Unparen(arg)
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			if lit, ok := bound[obj]; ok {
				e = lit
			}
		}
	}
	k, ok := litKeys[e]
	return k, ok && k != ""
}

// bindLabelLocal records lhs -> rhs when rhs is an obs.Label composite
// literal and lhs is a plain local; a second binding poisons the entry.
func bindLabelLocal(info *types.Info, lhs, rhs ast.Expr, bound map[types.Object]ast.Expr) {
	cl, ok := ast.Unparen(rhs).(*ast.CompositeLit)
	if !ok || !isObsLabel(info.TypeOf(cl)) {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.ObjectOf(id)
	if obj == nil {
		return
	}
	if _, dup := bound[obj]; dup {
		bound[obj] = nil // rebound: key no longer statically known
		return
	}
	bound[obj] = cl
}

// labelLitFields extracts the Key and Value expressions from an
// obs.Label composite literal, keyed or positional.
func labelLitFields(cl *ast.CompositeLit) (key, val ast.Expr) {
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				switch id.Name {
				case "Key":
					key = kv.Value
				case "Value":
					val = kv.Value
				}
			}
			continue
		}
		switch i {
		case 0:
			key = elt
		case 1:
			val = elt
		}
	}
	return key, val
}

func isObsLabel(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Label" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

func isHTTPRequest(t types.Type) bool {
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func constString(tv types.TypeAndValue) string {
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}
