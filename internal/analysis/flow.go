package analysis

// Flow-insensitive intraprocedural value tracking shared by the
// dataflow-backed analyzers (DESIGN.md §14): given a seed predicate over
// expressions, FlowFrom computes the set of variables in one function
// whose value may derive from a seed — "this slice aliases a COW weight
// view", "this string came from the request". Flow-insensitivity (any
// assignment order) errs toward tainting more, which is the safe
// direction for every consumer in this package.

import (
	"go/ast"
	"go/types"
)

// FlowFrom returns the objects (variables) declared or assigned inside fn
// whose value may derive from an expression matched by seed. Derivation
// propagates through assignments, short variable declarations, var specs
// with initializers, and value-preserving wrappers (parens, slicing,
// indexing, selection, type conversion); an expression derives taint when
// seed matches it or any of its subexpressions, or when it mentions an
// already-tainted object.
func FlowFrom(info *types.Info, fn ast.Node, seed func(ast.Expr) bool) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	derives := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false // a nested closure's internals are its own scope
			case ast.Expr:
				if seed(x) {
					hit = true
				}
				if id, ok := x.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
						hit = true
					}
				}
			}
			return !hit
		})
		return hit
	}
	mark := func(lhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i, rhs := range x.Rhs {
						if derives(rhs) && mark(x.Lhs[i]) {
							changed = true
						}
					}
				} else if len(x.Rhs) == 1 && derives(x.Rhs[0]) {
					// Multi-value form: one seed result taints every LHS.
					for _, lhs := range x.Lhs {
						if mark(lhs) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					var rhs ast.Expr
					switch {
					case len(x.Values) == len(x.Names):
						rhs = x.Values[i]
					case len(x.Values) == 1:
						rhs = x.Values[0]
					}
					if rhs != nil && derives(rhs) && mark(name) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if derives(x.X) {
					// Ranging over a tainted collection taints the
					// element (and, harmlessly, the key).
					for _, lhs := range []ast.Expr{x.Key, x.Value} {
						if lhs != nil && mark(lhs) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// Derived reports whether e derives from the given taint set or seed, by
// the same rules FlowFrom uses for right-hand sides.
func Derived(info *types.Info, e ast.Expr, tainted map[types.Object]bool, seed func(ast.Expr) bool) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ex, ok := n.(ast.Expr); ok && seed != nil && seed(ex) {
			hit = true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && tainted[obj] {
				hit = true
			}
		}
		return !hit
	})
	return hit
}
