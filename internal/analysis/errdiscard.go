package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrdiscard forbids silently dropped error returns: a call used
// as a bare expression statement whose results include an error is a
// finding. Explicit discards (`_ = f()`), deferred cleanup
// (`defer f.Close()`), and a short allowlist of can't-fail or
// by-convention sinks (bytes.Buffer / strings.Builder methods, fmt
// printing to stdout/stderr) stay permitted; everything else must be
// checked or visibly discarded.
var AnalyzerErrdiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "forbid silently dropped error returns",
	Run:  runErrdiscard,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrdiscard(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Info, call) || discardAllowed(p.Info, call) {
				return true
			}
			p.Reportf(es.Pos(), "%s returns an error that is silently dropped; check it or discard explicitly with _ =", calleeName(call))
			return true
		})
	}
}

// returnsError reports whether any result of the call is of type error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // builtin or conversion
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// discardAllowed reports whether the call sits on the can't-fail /
// by-convention allowlist.
func discardAllowed(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	// Methods on in-memory buffers never fail (their Write* return
	// errors only to satisfy io interfaces).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if namedFrom(rt, "bytes", "Buffer") || namedFrom(rt, "strings", "Builder") {
			return true
		}
	}
	if funcPkgPath(fn) != "fmt" {
		return false
	}
	name := fn.Name()
	// fmt.Print* write to stdout; a failed stdout write has nowhere
	// better to report itself in a CLI.
	if strings.HasPrefix(name, "Print") {
		return true
	}
	// fmt.Fprint* to stdout/stderr or an in-memory sink is equally
	// benign. A *bufio.Writer is also allowed: bufio latches the first
	// write error and reports it from every later call, so the
	// mandatory Flush at the end surfaces anything dropped here. To any
	// other writer the error matters.
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		dst := ast.Unparen(call.Args[0])
		if sel, ok := dst.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
		t := info.TypeOf(dst)
		if t != nil && (namedFrom(t, "bytes", "Buffer") ||
			namedFrom(t, "strings", "Builder") || namedFrom(t, "bufio", "Writer")) {
			return true
		}
	}
	return false
}

// calleeName renders the called function for the message.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
