package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerLockheld enforces the serving layer's lock hygiene: while a
// sync.Mutex or sync.RWMutex is held, a handler must not perform blocking
// work — channel sends/receives, HTTP response writes, JSON
// encoding/decoding to a network writer, fmt/log output, file I/O, or
// sleeps. A slow client or full channel would otherwise stall every
// request contending on the lock. The standard pattern is: lock, copy,
// unlock, then do I/O on the copy.
//
// The walker is intentionally conservative and syntactic: it tracks
// Lock/Unlock pairs (including `defer mu.Unlock()`, which holds the lock
// to function end) along straight-line statement order, treating branch
// and loop bodies as running under the lock state at their entry. It does
// not follow calls into other functions of the package.
var AnalyzerLockheld = &Analyzer{
	Name:    "lockheld",
	Doc:     "forbid blocking I/O and channel operations while a mutex is held in serving packages",
	Applies: ServeScope,
	Run:     runLockheld,
}

func runLockheld(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(_ string, body *ast.BlockStmt) {
			w := &lockWalker{pass: p}
			w.stmts(body.List)
		})
	}
}

type lockWalker struct {
	pass  *Pass
	depth int // mutexes currently held
}

func (w *lockWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if kind := lockCallKind(w.pass.Info, x.X); kind != 0 {
			w.depth += kind
			if w.depth < 0 {
				w.depth = 0
			}
			return
		}
		w.checkExpr(x.X)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` holds the lock to function end: leave the
		// depth up. Other deferred calls run at return, after this
		// statement's surroundings — skip them.
	case *ast.GoStmt:
		// Spawning is non-blocking; the goroutine body starts unlocked.
	case *ast.SendStmt:
		if w.depth > 0 {
			w.pass.Reportf(x.Pos(), "channel send while holding a mutex can block every contender")
		}
		w.checkExpr(x.Value)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.checkExpr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.checkExpr(r)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		w.checkExpr(x.Cond)
		w.branch(x.Body.List)
		if x.Else != nil {
			w.branch([]ast.Stmt{x.Else})
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Cond != nil {
			w.checkExpr(x.Cond)
		}
		w.branch(x.Body.List)
	case *ast.RangeStmt:
		w.checkExpr(x.X)
		w.branch(x.Body.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.stmt(x.Init)
		}
		if x.Tag != nil {
			w.checkExpr(x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		if w.depth > 0 {
			w.pass.Reportf(x.Pos(), "select (channel operations) while holding a mutex can block every contender")
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.branch(cc.Body)
			}
		}
	case *ast.BlockStmt:
		w.branch(x.List)
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	}
}

// branch walks nested statements under the current lock state and
// restores it afterwards, so a branch-local Lock/Unlock cannot leak into
// the fallthrough path.
func (w *lockWalker) branch(list []ast.Stmt) {
	saved := w.depth
	w.stmts(list)
	w.depth = saved
}

// checkExpr flags blocking operations inside an expression evaluated
// while locked. Function literals are skipped: they run when called, not
// here, and funcBodies analyzes their bodies separately.
func (w *lockWalker) checkExpr(e ast.Expr) {
	if w.depth == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.pass.Reportf(x.Pos(), "channel receive while holding a mutex can block every contender")
			}
		case *ast.CallExpr:
			if why := blockingCall(w.pass.Info, x); why != "" {
				w.pass.Reportf(x.Pos(), "%s while holding a mutex can block every contender; copy under the lock and do I/O after unlocking", why)
			}
		}
		return true
	})
}

// lockCallKind classifies an expression statement: +1 for mu.Lock/RLock,
// -1 for mu.Unlock/RUnlock on a sync mutex, 0 otherwise.
func lockCallKind(info *types.Info, e ast.Expr) int {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0
	}
	fn := calleeFunc(info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return 0
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// blockingCall classifies calls that may block on I/O, the network, or
// the scheduler; it returns a human-readable description or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	pkg, name := funcPkgPath(fn), fn.Name()
	switch pkg {
	case "net/http":
		return "net/http call " + name
	case "log":
		return "log output " + name
	case "net":
		return "network call net." + name
	case "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return "fmt output " + name
		}
	case "encoding/json":
		if name == "Encode" || name == "Decode" {
			return "streaming JSON " + name
		}
	case "bufio":
		if strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Read") || name == "Flush" {
			return "buffered I/O bufio." + name
		}
	case "io", "io/ioutil":
		return "io call " + name
	case "os":
		switch name {
		case "Create", "Open", "OpenFile", "ReadFile", "WriteFile", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll":
			return "file I/O os." + name
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	}
	// Writes through *os.File receivers (stdout, log files).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if namedFrom(sig.Recv().Type(), "os", "File") {
			return "os.File method " + name
		}
	}
	return ""
}
