package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDetrand enforces the seeded-randomness half of the determinism
// contract: deterministic packages (everything outside internal/serve,
// cmd/, and examples/) must not import the globally-seeded math/rand
// packages — randomness is threaded through internal/rng seeds — and must
// not read the wall clock, whose values leak into control flow and output
// and make runs unrepeatable.
var AnalyzerDetrand = &Analyzer{
	Name:    "detrand",
	Doc:     "forbid math/rand and wall-clock reads in deterministic packages",
	Applies: DeterministicScope,
	Run:     runDetrand,
}

// nondetTimeFuncs are the time-package functions that observe the wall
// clock or the scheduler. Pure constructors (time.Duration arithmetic,
// time.Unix on an explicit instant) stay allowed.
var nondetTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runDetrand(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(),
					"deterministic package imports %s; use internal/rng with a threaded seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || funcPkgPath(fn) != "time" || !nondetTimeFuncs[fn.Name()] {
				return true
			}
			// Methods (time.Time.After, .Sub, …) are pure functions of
			// their receiver; only the package-level clock readers are
			// nondeterministic.
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				return true
			}
			p.Reportf(sel.Pos(),
				"deterministic package reads the wall clock via time.%s; results become unrepeatable", fn.Name())
			return true
		})
	}
}
