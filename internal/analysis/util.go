package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves the *types.Func a call expression invokes, looking
// through parentheses. It returns nil for builtins, conversions, and
// calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of a function's defining package
// ("" for builtins and universe-scope functions like error.Error).
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedFrom reports whether t (or the pointee, if t is a pointer) is the
// named type pkgPath.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 &&
		node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// rootIdent descends assignable expressions (selectors, indexes, derefs,
// parens) to the identifier at their base, or nil (e.g. for calls).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcBodies visits every function body in the file — declarations and
// literals — exactly once, with the body's enclosing *ast.FuncDecl name
// ("" for literals).
func funcBodies(file *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn.Name.Name, fn.Body)
			}
		case *ast.FuncLit:
			visit("", fn.Body)
		}
		return true
	})
}

// nameSuggestsComparison reports whether a function name marks an
// approved float-comparison helper (Equal, Approx, Near, Close, Cmp,
// Less — exact comparison is these helpers' whole job).
func nameSuggestsComparison(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range []string{"equal", "approx", "near", "close", "cmp", "less"} {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}
