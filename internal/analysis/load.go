package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module (or an
// extra directory loaded on demand, e.g. a test fixture).
type Package struct {
	// Path is the full import path; RelPath is Path without the module
	// prefix ("" for the module root package).
	Path    string
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info

	imports []string // module-internal imports, full paths
}

// Module is a loaded, fully type-checked module.
type Module struct {
	Path string // module path from go.mod
	Root string // directory containing go.mod
	Fset *token.FileSet
	// Pkgs holds the module's packages in dependency (topological)
	// order, ties broken by path.
	Pkgs []*Package

	byPath map[string]*Package
	gcImp  types.Importer
	srcImp types.Importer
}

// LoadModule locates the enclosing module of dir, parses every package in
// it (skipping testdata, vendor, hidden, and underscore directories, and
// all _test.go files — the contracts the analyzers enforce exempt tests),
// and type-checks them in dependency order. Standard-library imports are
// resolved through the compiler's export data when available, falling
// back to type-checking the GOROOT source, so the loader needs nothing
// outside the standard toolchain.
func LoadModule(dir string) (*Module, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Path:   modPath,
		Root:   root,
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}
	m.gcImp = importer.Default()
	m.srcImp = importer.ForCompiler(m.Fset, "source", nil)

	if err := m.parseTree(); err != nil {
		return nil, err
	}
	if err := m.checkAll(); err != nil {
		return nil, err
	}
	return m, nil
}

// findModule walks up from dir to the first go.mod and returns its
// directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
	}
}

// skipDir reports whether the walker should ignore a directory.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// parseTree walks the module and parses every package directory.
func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != m.Root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		pkg, err := m.parseDir(path)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.byPath[pkg.Path] = pkg
		}
		return nil
	})
}

// parseDir parses the non-test Go files of one directory into a Package
// (nil if the directory holds no Go files).
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := m.Path
	if rel != "" {
		path = m.Path + "/" + rel
	}
	pkg := &Package{Path: path, RelPath: rel, Dir: dir, Fset: m.Fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	return pkg, nil
}

// checkAll type-checks every parsed package in topological order.
func (m *Module) checkAll() error {
	paths := make([]string, 0, len(m.byPath))
	for p := range m.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = visiting
		deps := append([]string(nil), m.byPath[p].imports...)
		sort.Strings(deps)
		for _, d := range deps {
			if _, ok := m.byPath[d]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which is not in the module", p, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return err
		}
	}
	for _, p := range order {
		pkg := m.byPath[p]
		if err := m.check(pkg); err != nil {
			return err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return nil
}

// check type-checks one parsed package whose module-internal dependencies
// are already checked.
func (m *Module) check(pkg *Package) error {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// Import implements types.Importer: module-internal paths resolve to the
// already-checked packages; everything else (the standard library) goes
// through export data with a from-source fallback.
func (m *Module) Import(path string) (*types.Package, error) {
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, ok := m.byPath[path]
		if !ok || p.Types == nil {
			return nil, fmt.Errorf("analysis: internal import %s not loaded", path)
		}
		return p.Types, nil
	}
	if pkg, err := m.gcImp.Import(path); err == nil {
		return pkg, nil
	}
	return m.srcImp.Import(path)
}

// LoadDir parses and type-checks one extra directory (outside the normal
// module walk, e.g. an analyzer fixture under testdata) against the
// already-loaded module. The package's RelPath is its path relative to
// the module root, so the same scope rules apply as for real packages.
func (m *Module) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := m.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	if err := m.check(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// Lookup resolves a module-relative package path ("" or "." for the root
// package) to a loaded package.
func (m *Module) Lookup(rel string) (*Package, bool) {
	rel = strings.Trim(strings.TrimPrefix(rel, "./"), "/")
	if rel == "." {
		rel = ""
	}
	path := m.Path
	if rel != "" {
		path = m.Path + "/" + rel
	}
	p, ok := m.byPath[path]
	return p, ok
}
