package analysis

// AnalyzerPoolpair machine-checks the pooling discipline (DESIGN.md §14):
// every value checked out of a sync.Pool must go back. Concretely, for
// each
//
//	v := pool.Get().(*T)
//
// inside one function, every control-flow path from the Get to the
// function exit must execute either pool.Put(v) or defer pool.Put(v)
// (the deferred form also covers explicit panics raised after the defer
// runs — the reason handlers use it). And once a non-deferred Put(v) has
// executed, the function must not touch v again: the pool may already
// have handed it to another goroutine.
//
// The check is a forward dataflow over the function's CFG with a tiny
// per-value lattice {live, put, deferred}; a merge point keeps the set of
// statuses reaching it, so "some path leaks" and "definitely used after
// Put" are both exact over the modeled graph (see cfg.go for what is
// modeled).

import (
	"go/ast"
	"go/types"
)

var AnalyzerPoolpair = &Analyzer{
	Name: "poolpair",
	Doc:  "every sync.Pool Get must reach a Put (or defer Put) on all paths, and the value must not be used after Put",
	Run:  runPoolpair,
}

// pool value statuses, combined as bit sets at merge points.
const (
	ppLive     = 1 << iota // checked out, not yet returned
	ppPut                  // returned via a plain Put
	ppDeferred             // returned via defer Put (covers later panics)
)

func runPoolpair(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPoolPairs(p, body)
			}
			return true
		})
	}
}

// poolGet matches `pool.Get()` possibly wrapped in a type assertion,
// returning the call when the callee is (*sync.Pool).Get.
func poolGet(info *types.Info, e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Get" || funcPkgPath(fn) != "sync" {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !namedFrom(recv.Type(), "sync", "Pool") {
		return nil
	}
	return call
}

// poolPutArg returns the object passed to a (*sync.Pool).Put call, nil
// for anything else.
func poolPutArg(info *types.Info, call *ast.CallExpr) types.Object {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Put" || funcPkgPath(fn) != "sync" {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !namedFrom(recv.Type(), "sync", "Pool") {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(id)
}

// checkPoolPairs analyzes one function body. Nested function literals are
// analyzed by their own runPoolpair visit, and a Get whose value escapes
// into a nested literal is out of this analyzer's intraprocedural scope —
// in this tree pooled values never cross function boundaries.
func checkPoolPairs(p *Pass, body *ast.BlockStmt) {
	// First sweep: find the pooled variables and their Get sites.
	gets := map[types.Object]*ast.CallExpr{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals get their own analysis
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call := poolGet(p.Info, as.Rhs[0])
		if call == nil {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.ObjectOf(id); obj != nil {
				gets[obj] = call
			}
		}
		return true
	})
	if len(gets) == 0 {
		return
	}

	g := BuildCFG(body)
	type state = map[types.Object]int
	boundary := state{}
	meet := func(a, b state) state {
		out := make(state, len(a))
		for k, v := range a {
			out[k] = v
		}
		for k, v := range b {
			out[k] |= v
		}
		return out
	}
	equal := func(a, b state) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}

	// usedAfterPut records findings during transfer; dedup by position.
	reported := map[ast.Node]bool{}
	transfer := func(blk *Block, in state) state {
		out := make(state, len(in))
		for k, v := range in {
			out[k] = v
		}
		for _, n := range blk.Nodes {
			applyPoolNode(p, n, gets, out, reported)
		}
		return out
	}
	_, outs := ForwardFlow(g, boundary, meet, equal, transfer)

	// A Get leaks when some path reaches Exit with the value still live.
	// Exit's in-state is the meet over its predecessors' out-states.
	final := state{}
	for _, pred := range g.Exit.Preds {
		if s, ok := outs[pred]; ok {
			final = meet(final, s)
		}
	}
	for obj, status := range final {
		if status&ppLive != 0 && status&ppDeferred == 0 {
			p.Reportf(gets[obj].Pos(),
				"sync.Pool Get of %s is not matched by a Put on every path to the function exit", obj.Name())
		}
	}
}

// applyPoolNode advances the per-variable statuses across one CFG node.
func applyPoolNode(p *Pass, n ast.Node, gets map[types.Object]*ast.CallExpr, st map[types.Object]int, reported map[ast.Node]bool) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 && poolGet(p.Info, x.Rhs[0]) != nil {
			if id, ok := ast.Unparen(x.Lhs[0]).(*ast.Ident); ok {
				if obj := p.Info.ObjectOf(id); obj != nil {
					if _, tracked := gets[obj]; tracked {
						st[obj] = ppLive
						return
					}
				}
			}
		}
	case *ast.DeferStmt:
		if obj := poolPutArg(p.Info, x.Call); obj != nil {
			if _, tracked := gets[obj]; tracked {
				st[obj] = ppDeferred
				return
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if obj := poolPutArg(p.Info, call); obj != nil {
				if _, tracked := gets[obj]; tracked {
					// Uses inside the Put call itself are fine.
					st[obj] = ppPut
					return
				}
			}
		}
	}
	// Any other appearance of a tracked variable is a use: flag it when
	// the value has definitely been returned already.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		if _, tracked := gets[obj]; !tracked {
			return true
		}
		if st[obj] == ppPut && !reported[m] {
			reported[m] = true
			p.Reportf(id.Pos(), "%s is used after being returned to its sync.Pool", obj.Name())
		}
		return true
	})
}
