package analysis

// Intraprocedural control-flow graphs over go/ast, plus a forward
// dataflow driver (DESIGN.md §14). This is deliberately not SSA and not
// x/tools/go/cfg: the analyzers in this package need exactly two
// capabilities — "does fact X hold on every path from a statement to the
// function exit" (poolpair) and "which syntactic constructs can execute
// on a path" — and a basic-block graph over the raw AST answers both
// while keeping positions and types.Info usable directly for reporting.
//
// Granularity: a Block's Nodes are the leaf statements and expressions
// that execute in it, in order. Control statements are decomposed — an
// IfStmt contributes its Init and Cond to the block that evaluates them,
// never its branches; a RangeStmt contributes its X, Key, and Value
// expressions to the loop head. Analyzers that walk Block.Nodes with
// ast.Inspect therefore see each executed node exactly once.
//
// Conservative corners, chosen to keep the builder small:
//
//   - goto jumps to Exit (the tree has no gotos; a goto-heavy function
//     would see spurious "on some path" findings, never missed ones for
//     must-reach properties).
//   - Only explicit panic(...) calls end a path; implicit runtime panics
//     (nil derefs, bounds) are not modeled. Deferred calls still cover
//     them in the analyzers' semantics because a defer, once executed,
//     holds on every later exit.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: Nodes execute in order, then control moves to
// one of Succs. The virtual Exit block of a CFG has no Nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry is where
// execution starts; every return, explicit panic, and fall-off-the-end
// path leads to Exit.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // all blocks, Entry first, Exit last
}

// BuildCFG constructs the control-flow graph of a function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{}
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit) // fall off the end (implicit return)
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// loopTargets is one enclosing breakable/continuable construct.
type loopTargets struct {
	label     string // enclosing label, "" when unlabeled
	brk, cont *Block // cont is nil for switch/select
}

type cfgBuilder struct {
	g     *CFG
	cur   *Block // nil after a terminator (unreachable until next join)
	loops []loopTargets
	label string // pending label for the next loop/switch statement
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// use appends a node to the current block, materializing an unreachable
// block when control cannot get here (code after return/break).
func (b *cfgBuilder) use(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmtList(x.List)
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x, b.takeLabel())
	case *ast.RangeStmt:
		b.rangeStmt(x, b.takeLabel())
	case *ast.SwitchStmt:
		b.switchStmt(x.Init, x.Tag, nil, x.Body, b.takeLabel())
	case *ast.TypeSwitchStmt:
		b.switchStmt(x.Init, nil, x.Assign, x.Body, b.takeLabel())
	case *ast.SelectStmt:
		b.selectStmt(x, b.takeLabel())
	case *ast.ReturnStmt:
		b.use(x)
		b.terminate()
	case *ast.BranchStmt:
		b.branchStmt(x)
	case *ast.LabeledStmt:
		b.label = x.Label.Name
		b.stmt(x.Stmt)
		b.label = ""
	case *ast.ExprStmt:
		b.use(x)
		if isPanicCall(x.X) {
			b.terminate()
		}
	default:
		// Assign, Decl, IncDec, Send, Defer, Go, Empty: straight-line.
		b.use(s)
	}
}

// takeLabel consumes the pending label of a labeled loop/switch.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

// terminate routes the current block to Exit and marks what follows
// unreachable.
func (b *cfgBuilder) terminate() {
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	}
}

func (b *cfgBuilder) ifStmt(x *ast.IfStmt) {
	b.use(x.Init)
	b.use(x.Cond)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()

	then := b.newBlock()
	b.edge(head, then)
	b.cur = then
	b.stmtList(x.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after)
	}

	if x.Else != nil {
		els := b.newBlock()
		b.edge(head, els)
		b.cur = els
		b.stmt(x.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	} else {
		b.edge(head, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(x *ast.ForStmt, label string) {
	b.use(x.Init)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	b.use(x.Cond)

	after := b.newBlock()
	// The continue target runs Post (when present) and loops back.
	cont := head
	if x.Post != nil {
		cont = b.newBlock()
		b.cur = cont
		b.use(x.Post)
		b.edge(cont, head)
	}
	body := b.newBlock()
	b.edge(head, body)
	if x.Cond != nil {
		b.edge(head, after)
	}
	b.loops = append(b.loops, loopTargets{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(x.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	// For a for{} with no break, after has no predecessors: the code
	// following the loop is unreachable and analyzes with no in-state.
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(x *ast.RangeStmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.use(x.X)
	head := b.newBlock()
	b.edge(b.cur, head)
	// Key/Value are (re)assigned at the head on every iteration.
	b.cur = head
	b.use(x.Key)
	b.use(x.Value)

	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after) // empty collection
	b.loops = append(b.loops, loopTargets{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(x.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = after
}

// switchStmt builds expression and type switches: tag evaluates in the
// head, each clause gets its own block, fallthrough chains clause bodies.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label string) {
	b.use(init)
	b.use(tag)
	b.use(assign)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.loops = append(b.loops, loopTargets{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.use(e)
		}
		// Fallthrough is only legal as a clause's final statement: peel it
		// off and chain into the next clause's body block instead.
		body, falls := cc.Body, false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				body, falls = body[:n-1], true
			}
		}
		b.stmtList(body)
		switch {
		case falls && b.cur != nil && i+1 < len(blocks):
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
		case b.cur != nil:
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(x *ast.SelectStmt, label string) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	head := b.cur
	after := b.newBlock()
	b.loops = append(b.loops, loopTargets{label: label, brk: after})
	for _, cs := range x.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		b.cur = blk
		b.use(cc.Comm)
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = after
}

func (b *cfgBuilder) branchStmt(x *ast.BranchStmt) {
	target := func(cont bool) *Block {
		for i := len(b.loops) - 1; i >= 0; i-- {
			lt := b.loops[i]
			if cont && lt.cont == nil {
				continue // break-only construct (switch/select)
			}
			if x.Label != nil && lt.label != x.Label.Name {
				continue
			}
			if cont {
				return lt.cont
			}
			return lt.brk
		}
		return nil
	}
	switch x.Tok {
	case token.BREAK:
		if t := target(false); t != nil && b.cur != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := target(true); t != nil && b.cur != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		// Conservative: route to Exit (see file comment).
		b.terminate()
	case token.FALLTHROUGH:
		// Normally peeled off by switchStmt; a stray one terminates.
		b.cur = nil
	}
}

// isPanicCall reports whether e is a call of the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// --- forward dataflow ------------------------------------------------------

// ForwardFlow runs a forward worklist fixpoint over g. boundary is the
// entry state; meet joins the out-states of a block's predecessors
// (called only with states of blocks already visited); transfer computes
// a block's out-state from its in-state and must not mutate its input.
// equal bounds the iteration. The returned maps hold the fixpoint
// in- and out-states of every block; the in-state of g.Exit is the join
// over every path through the function.
func ForwardFlow[S any](g *CFG, boundary S, meet func(S, S) S, equal func(S, S) bool, transfer func(*Block, S) S) (in, out map[*Block]S) {
	in = make(map[*Block]S, len(g.Blocks))
	out = make(map[*Block]S, len(g.Blocks))
	seen := make(map[*Block]bool, len(g.Blocks))

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		var s S
		if blk == g.Entry {
			s = boundary
		} else {
			first := true
			for _, p := range blk.Preds {
				if !seen[p] {
					continue
				}
				if first {
					s = out[p]
					first = false
				} else {
					s = meet(s, out[p])
				}
			}
			if first {
				continue // no processed predecessor yet (unreachable or later in queue)
			}
		}
		ns := transfer(blk, s)
		if seen[blk] && equal(ns, out[blk]) {
			in[blk] = s
			continue
		}
		in[blk], out[blk] = s, ns
		seen[blk] = true
		for _, succ := range blk.Succs {
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in, out
}
