package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerFloateq enforces the numeric contract on comparisons: == and !=
// on floating-point operands are almost always a rounding-sensitivity bug
// and belong inside named tolerance helpers. Three well-defined idioms
// are exempt: comparison against the constant zero (exact by IEEE-754),
// the x != x NaN test (the operands are syntactically identical), and
// comparisons inside functions whose name declares them a comparison
// helper (Equal/Approx/Near/Close/Cmp/Less).
var AnalyzerFloateq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands outside approved comparison helpers",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	for _, f := range p.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			if nameSuggestsComparison(name) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					// Literal bodies are visited on their own.
					return false
				}
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(be.X)) && !isFloat(p.Info.TypeOf(be.Y)) {
					return true
				}
				if isConstZero(p.Info, be.X) || isConstZero(p.Info, be.Y) {
					return true
				}
				if types.ExprString(be.X) == types.ExprString(be.Y) {
					return true // x != x — the NaN test
				}
				p.Reportf(be.Pos(),
					"%s on float operands is rounding-sensitive; use a tolerance helper or compare against exact zero", be.Op)
				return true
			})
		})
	}
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
