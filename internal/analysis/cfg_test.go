package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseBody wraps a statement list in a function and returns its body.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f(c bool, x int) {\n" + body + "\n}\nfunc a() {}\nfunc b() {}\nfunc g() {}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// reachable returns the blocks reachable from Entry.
func reachable(g *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// blockCalling finds the block whose nodes contain a call to the named
// function.
func blockCalling(g *CFG, name string) *Block {
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestCFGLinear(t *testing.T) {
	g := BuildCFG(parseBody(t, "a()\nb()"))
	r := reachable(g)
	if !r[g.Exit] {
		t.Fatal("exit not reachable in a straight-line body")
	}
	if blk := blockCalling(g, "a"); blk == nil || !r[blk] {
		t.Fatal("straight-line statement not placed in a reachable block")
	}
	if len(g.Exit.Preds) == 0 {
		t.Fatal("exit has no predecessors")
	}
}

func TestCFGIfElseMerges(t *testing.T) {
	g := BuildCFG(parseBody(t, "if c {\na()\n} else {\nb()\n}\ng()"))
	r := reachable(g)
	ga, gb, gg := blockCalling(g, "a"), blockCalling(g, "b"), blockCalling(g, "g")
	if ga == nil || gb == nil || gg == nil {
		t.Fatal("branch statements not placed in blocks")
	}
	if !r[ga] || !r[gb] || !r[gg] {
		t.Fatal("branch or merge block unreachable")
	}
	if !hasEdge(ga, gg) || !hasEdge(gb, gg) {
		t.Fatal("both branches must flow into the merge block")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := BuildCFG(parseBody(t, "if c {\na()\nreturn\n}\nb()"))
	ga, gb := blockCalling(g, "a"), blockCalling(g, "b")
	if ga == nil || gb == nil {
		t.Fatal("statements not placed in blocks")
	}
	if !hasEdge(ga, g.Exit) {
		t.Fatal("return must edge to exit")
	}
	if hasEdge(ga, gb) {
		t.Fatal("code after return must not be a successor of the returning block")
	}
	if !reachable(g)[gb] {
		t.Fatal("fall-through branch must stay reachable")
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g := BuildCFG(parseBody(t, "a()\nreturn\nb()"))
	gb := blockCalling(g, "b")
	if gb == nil {
		t.Fatal("dead statement not placed in a block")
	}
	if reachable(g)[gb] {
		t.Fatal("statement after an unconditional return must be unreachable")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := BuildCFG(parseBody(t, "for x > 0 {\na()\n}\nb()"))
	r := reachable(g)
	ga, gb := blockCalling(g, "a"), blockCalling(g, "b")
	if ga == nil || gb == nil || !r[ga] || !r[gb] {
		t.Fatal("loop body and continuation must be reachable")
	}
	// The loop body must eventually lead back to itself.
	seen := map[*Block]bool{}
	stack := ga.Succs
	cyclic := false
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == ga {
			cyclic = true
			break
		}
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	if !cyclic {
		t.Fatal("loop body has no back edge")
	}
}

func TestCFGPanicEdgesToExit(t *testing.T) {
	g := BuildCFG(parseBody(t, "if c {\na()\npanic(\"x\")\n}\nb()"))
	ga, gb := blockCalling(g, "a"), blockCalling(g, "b")
	if ga == nil || gb == nil {
		t.Fatal("statements not placed in blocks")
	}
	if !hasEdge(ga, g.Exit) {
		t.Fatal("explicit panic must edge to exit")
	}
	if hasEdge(ga, gb) {
		t.Fatal("panicking block must not fall through")
	}
}

func TestCFGFallthroughChains(t *testing.T) {
	g := BuildCFG(parseBody(t, "switch x {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\n}\ng()"))
	r := reachable(g)
	ga, gb, gg := blockCalling(g, "a"), blockCalling(g, "b"), blockCalling(g, "g")
	if ga == nil || gb == nil || gg == nil {
		t.Fatal("switch statements not placed in blocks")
	}
	if !hasEdge(ga, gb) {
		t.Fatal("fallthrough must chain to the next case clause")
	}
	if !r[gg] {
		t.Fatal("code after the switch must be reachable")
	}
}

// TestForwardFlowReachingState checks the worklist solver on a diamond:
// a fact introduced on one branch survives to the merge under a union
// meet, and blocks after an unconditional return never observe it.
func TestForwardFlowReachingState(t *testing.T) {
	g := BuildCFG(parseBody(t, "if c {\na()\n} else {\nb()\n}\ng()"))
	ga, gg := blockCalling(g, "a"), blockCalling(g, "g")
	meet := func(x, y int) int { return x | y }
	equal := func(x, y int) bool { return x == y }
	transfer := func(blk *Block, in int) int {
		if blk == ga {
			return in | 1
		}
		return in
	}
	ins, outs := ForwardFlow(g, 0, meet, equal, transfer)
	if ins[gg]&1 == 0 {
		t.Fatal("fact set on the then-branch must reach the merge block")
	}
	if outs[ga]&1 == 0 {
		t.Fatal("transfer output lost")
	}
	// The else branch alone must not carry the fact.
	if gb := blockCalling(g, "b"); gb != nil && ins[gb]&1 != 0 {
		t.Fatal("fact leaked into a sibling branch")
	}
}

// TestFlowFrom checks the taint fixpoint: derivation through plain and
// multi-value assignment and reslicing, and no derivation for unrelated
// locals.
func TestFlowFrom(t *testing.T) {
	src := `package p
func seedFn() []int { return nil }
func f() {
	s := seedFn()
	u := s[1:]
	v, w := s, 0
	clean := make([]int, 4)
	_, _, _, _ = u, v, w, clean
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Type-check the snippet so FlowFrom has object identities.
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	tainted := FlowFrom(info, fn, func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "seedFn"
	})
	names := map[string]bool{}
	for obj := range tainted {
		names[obj.Name()] = true
	}
	for _, want := range []string{"s", "u", "v"} {
		if !names[want] {
			t.Errorf("%s should be tainted, got %v", want, keys(names))
		}
	}
	if names["clean"] {
		t.Error("clean derives only its length from nothing tainted; it must stay clean")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
