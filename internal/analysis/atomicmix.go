package analysis

// AnalyzerAtomicmix machine-checks the atomics discipline (DESIGN.md
// §14): a memory location is either always atomic or never atomic.
// Mixing the two — `atomic.AddInt64(&s.n, 1)` in one function and
// `s.n++` in another — is a data race the race detector only catches
// when both sides happen to run under -race at the same time.
//
// Two forms are enforced package-wide:
//
//   - legacy form: any struct field or package variable whose address is
//     passed to a sync/atomic function must never be read or written
//     plainly anywhere else in the package;
//   - typed form: a field of wrapper type (atomic.Int64, atomic.Uint64,
//     atomic.Pointer[T], ...) must only be touched through its methods —
//     copying the wrapper value out reads the guts non-atomically (and
//     go vet's copylocks misses the load-bearing half of that story).
//
// Fields of a slice-of-wrapper (e.g. []atomic.Int64) are reached by
// indexing, which is fine — the element's methods still do the access.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var AnalyzerAtomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed atomically anywhere in the package must never be accessed plainly",
	Run:  runAtomicmix,
}

func runAtomicmix(p *Pass) {
	// Pass 1: collect the objects used atomically via the legacy
	// &x-to-sync/atomic-function form, and remember those call sites so
	// pass 2 can exempt them.
	atomicObjs := map[types.Object]bool{}
	atomicSites := map[*ast.Ident]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || funcPkgPath(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj, id := trackableObject(p.Info, un.X); obj != nil {
					atomicObjs[obj] = true
					atomicSites[id] = true
				}
			}
			return true
		})
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.ObjectOf(id)
			if obj == nil || !atomicObjs[obj] || atomicSites[id] {
				return true
			}
			if defIsDeclaration(p.Info, id) {
				return true
			}
			p.Reportf(id.Pos(),
				"%s is accessed atomically elsewhere in this package; this plain access races with it", obj.Name())
			return true
		})
	}

	checkTypedWrappers(p)
}

// trackableObject resolves the field or package-level variable a
// &-operand denotes — the locations whose accesses are scattered widely
// enough that the mixed-use race hides. Locals are skipped: their atomic
// and plain uses sit in one function where review sees both.
func trackableObject(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), x.Sel
		}
		// Package-qualified var (pkg.Var).
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && !obj.IsField() && obj.Parent() == obj.Pkg().Scope() {
			return obj, x.Sel
		}
	case *ast.Ident:
		if obj, ok := info.ObjectOf(x).(*types.Var); ok && !obj.IsField() && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj, x
		}
	}
	return nil, nil
}

// defIsDeclaration reports whether id is the declaring occurrence (field
// declaration, var spec name) rather than an access.
func defIsDeclaration(info *types.Info, id *ast.Ident) bool {
	_, isDef := info.Defs[id]
	return isDef
}

// checkTypedWrappers flags value copies of atomic.* typed wrappers:
// selector or index expressions of wrapper type that are neither a
// method-call receiver nor an address-of operand.
func checkTypedWrappers(p *Pass) {
	for _, f := range p.Files {
		// allowed holds wrapper-typed expressions appearing in sanctioned
		// positions; every other wrapper-typed selector/index is a copy.
		allowed := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				// recv.Method(...) — the receiver side of a method call —
				// or a deeper selection through the wrapper.
				if isAtomicWrapper(p.Info.TypeOf(x.X)) {
					allowed[ast.Unparen(x.X)] = true
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND && isAtomicWrapper(p.Info.TypeOf(x.X)) {
					allowed[ast.Unparen(x.X)] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			var e ast.Expr
			switch x := n.(type) {
			case *ast.SelectorExpr:
				e = x
			case *ast.IndexExpr:
				e = x
			default:
				return true
			}
			if !isAtomicWrapper(p.Info.TypeOf(e)) || allowed[e] {
				return true
			}
			// Type expressions — atomic.Int64 in a field declaration, or a
			// generic instantiation atomic.Pointer[T] — are not values.
			if tv, ok := p.Info.Types[e]; !ok || !tv.IsValue() {
				return true
			}
			p.Reportf(e.Pos(),
				"copying %s reads an atomic wrapper non-atomically; use its methods or take its address", types.TypeString(p.Info.TypeOf(e), nil))
			return true
		})
	}
}

// isAtomicWrapper reports the typed wrappers of sync/atomic.
func isAtomicWrapper(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}
