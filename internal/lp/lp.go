// Package lp implements a dense primal simplex linear-programming solver.
//
// It exists to support the L∞ training objective of Section 4.6 of the
// paper: minimizing the maximum absolute selectivity error over the training
// workload is the LP
//
//	min t   s.t.  A·w − t·1 ≤ s,  −A·w − t·1 ≤ −s,  Σw = 1,  w ≥ 0, t ≥ 0.
//
// The solver handles the general form min cᵀx subject to Aub·x ≤ bub,
// Aeq·x = beq, x ≥ 0 using the Big-M method with a dense tableau, Dantzig
// pricing and a Bland's-rule fallback to prevent cycling.
package lp

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the pivot budget was exhausted.
	IterLimit
)

// ErrNoSolution is returned for infeasible or unbounded programs.
var ErrNoSolution = errors.New("lp: no optimal solution")

// Problem is a linear program in the general form described above. Aub/Bub
// may be nil when there are no inequality constraints, likewise Aeq/Beq.
type Problem struct {
	C        []float64
	Aub      *linalg.Matrix
	Bub      []float64
	Aeq      *linalg.Matrix
	Beq      []float64
	MaxIters int // 0 means a generous default
}

// Solution holds the optimizer and objective value.
type Solution struct {
	X      []float64
	Value  float64
	Status Status
	Pivots int
}

// Solve runs the simplex method on the problem.
func Solve(p Problem) (*Solution, error) {
	n := len(p.C)
	mUb, mEq := 0, 0
	if p.Aub != nil {
		mUb = p.Aub.Rows
		if p.Aub.Cols != n || len(p.Bub) != mUb {
			panic("lp: inequality shape mismatch")
		}
	}
	if p.Aeq != nil {
		mEq = p.Aeq.Rows
		if p.Aeq.Cols != n || len(p.Beq) != mEq {
			panic("lp: equality shape mismatch")
		}
	}
	m := mUb + mEq

	// Tableau columns: n structural + mUb slacks + m artificials + RHS.
	// Artificials are added for every row (simplest Big-M bookkeeping);
	// slack columns serve as initial basis where the RHS is nonnegative
	// and no artificial is needed, but uniform artificials keep the code
	// simple and the cost is one extra column per row.
	nSlack := mUb
	nArt := m
	cols := n + nSlack + nArt + 1
	t := linalg.NewMatrix(m+1, cols)
	rhsCol := cols - 1

	// Big-M value scaled to the data.
	maxAbs := 1.0
	for _, v := range p.C {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	scan := func(a *linalg.Matrix, b []float64) {
		if a == nil {
			return
		}
		for _, v := range a.Data {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		for _, v := range b {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
	}
	scan(p.Aub, p.Bub)
	scan(p.Aeq, p.Beq)
	bigM := 1e7 * maxAbs

	basis := make([]int, m)
	// Fill inequality rows.
	for i := 0; i < mUb; i++ {
		row := t.Row(i)
		copy(row[:n], p.Aub.Row(i))
		rhs := p.Bub[i]
		if rhs < 0 {
			// Normalize to nonnegative RHS by flipping the row; the
			// slack then has coefficient −1 and cannot be basic, so the
			// artificial starts basic.
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			row[n+i] = -1
		} else {
			row[n+i] = 1
		}
		row[n+nSlack+i] = 1
		row[rhsCol] = rhs
		basis[i] = n + nSlack + i
	}
	// Fill equality rows.
	for k := 0; k < mEq; k++ {
		i := mUb + k
		row := t.Row(i)
		copy(row[:n], p.Aeq.Row(k))
		rhs := p.Beq[k]
		if rhs < 0 {
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		row[n+nSlack+i] = 1
		row[rhsCol] = rhs
		basis[i] = n + nSlack + i
	}
	// Objective row: c for structural vars, bigM for artificials.
	obj := t.Row(m)
	copy(obj[:n], p.C)
	for i := 0; i < nArt; i++ {
		obj[n+nSlack+i] = bigM
	}
	// Price out the basic artificials: obj ← obj − bigM·Σrows.
	for i := 0; i < m; i++ {
		row := t.Row(i)
		for j := 0; j < cols; j++ {
			obj[j] -= bigM * row[j]
		}
	}

	maxIters := p.MaxIters
	if maxIters == 0 {
		maxIters = 50 * (m + n + 10)
	}
	const eps = 1e-9
	pivots := 0
	for ; pivots < maxIters; pivots++ {
		// Entering column: Dantzig rule with Bland fallback when the
		// iteration count gets high (anti-cycling).
		enter := -1
		if pivots < maxIters/2 {
			best := -eps
			for j := 0; j < cols-1; j++ {
				if obj[j] < best {
					best = obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < cols-1; j++ {
				if obj[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			break // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t.At(i, enter)
			if a > eps {
				ratio := t.At(i, rhsCol) / a
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return &Solution{Status: Unbounded, Pivots: pivots}, ErrNoSolution
		}
		pivot(t, leave, enter)
		basis[leave] = enter
	}
	if pivots >= maxIters {
		return &Solution{Status: IterLimit, Pivots: pivots}, ErrNoSolution
	}
	// Detect infeasibility: a basic artificial with positive value.
	for i, bj := range basis {
		if bj >= n+nSlack && t.At(i, rhsCol) > 1e-6*math.Max(1, maxAbs) {
			return &Solution{Status: Infeasible, Pivots: pivots}, ErrNoSolution
		}
	}
	x := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			x[bj] = t.At(i, rhsCol)
		}
	}
	val := 0.0
	for j := 0; j < n; j++ {
		val += p.C[j] * x[j]
	}
	return &Solution{X: x, Value: val, Status: Optimal, Pivots: pivots}, nil
}

// pivot performs a full tableau pivot on (r, c).
func pivot(t *linalg.Matrix, r, c int) {
	cols := t.Cols
	prow := t.Row(r)
	pval := prow[c]
	inv := 1 / pval
	for j := 0; j < cols; j++ {
		prow[j] *= inv
	}
	for i := 0; i < t.Rows; i++ {
		if i == r {
			continue
		}
		row := t.Row(i)
		f := row[c]
		if f == 0 {
			continue
		}
		for j := 0; j < cols; j++ {
			row[j] -= f * prow[j]
		}
		row[c] = 0 // exact zero against drift
	}
}

// MinimaxWeights solves the L∞ weight-estimation program of Section 4.6:
// the weights on the probability simplex minimizing max_i |(A·w)_i − s_i|.
func MinimaxWeights(a *linalg.Matrix, s []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(s) != m {
		panic("lp: MinimaxWeights shape mismatch")
	}
	// Variables: w₀..w_{n−1}, t.
	c := make([]float64, n+1)
	c[n] = 1
	aub := linalg.NewMatrix(2*m, n+1)
	bub := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		arow := a.Row(i)
		up := aub.Row(i)
		dn := aub.Row(m + i)
		for j := 0; j < n; j++ {
			up[j] = arow[j]
			dn[j] = -arow[j]
		}
		up[n] = -1
		dn[n] = -1
		bub[i] = s[i]
		bub[m+i] = -s[i]
	}
	aeq := linalg.NewMatrix(1, n+1)
	for j := 0; j < n; j++ {
		aeq.Set(0, j, 1)
	}
	beq := []float64{1}
	sol, err := Solve(Problem{C: c, Aub: aub, Bub: bub, Aeq: aeq, Beq: beq})
	if err != nil {
		return nil, err
	}
	w := make([]float64, n)
	copy(w, sol.X[:n])
	// Exact renormalization against simplex-method round-off.
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum > 1e-12 {
		for j := range w {
			w[j] /= sum
		}
	}
	return w, nil
}
