package lp

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestSolveBasic2D(t *testing.T) {
	// max x + y  s.t. x ≤ 2, y ≤ 3, x+y ≤ 4  (min −x−y).
	sol, err := Solve(Problem{
		C:   []float64{-1, -1},
		Aub: linalg.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}}),
		Bub: []float64{2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-(-4)) > 1e-8 {
		t.Fatalf("objective = %v, want −4", sol.Value)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 1, x,y ≥ 0 → x=1, y=0.
	sol, err := Solve(Problem{
		C:   []float64{1, 2},
		Aeq: linalg.FromRows([][]float64{{1, 1}}),
		Beq: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-1) > 1e-8 || math.Abs(sol.X[1]) > 1e-8 {
		t.Fatalf("solution = %v, want [1 0]", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ −1 with x ≥ 0 is infeasible.
	sol, err := Solve(Problem{
		C:   []float64{1},
		Aub: linalg.FromRows([][]float64{{1}}),
		Bub: []float64{-1},
	})
	if err == nil {
		t.Fatalf("infeasible LP solved: %+v", sol)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min −x with only x ≥ 0: unbounded below.
	sol, err := Solve(Problem{C: []float64{-1}})
	if err == nil {
		t.Fatalf("unbounded LP solved: %+v", sol)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want Unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −2 (i.e. x ≥ 2) → x = 2.
	sol, err := Solve(Problem{
		C:   []float64{1},
		Aub: linalg.FromRows([][]float64{{-1}}),
		Bub: []float64{-2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > 1e-8 {
		t.Fatalf("x = %v, want 2", sol.X[0])
	}
}

func TestSolveDegenerateTies(t *testing.T) {
	// Multiple optimal vertices; any optimum with value 1 is fine.
	sol, err := Solve(Problem{
		C:   []float64{1, 1},
		Aeq: linalg.FromRows([][]float64{{1, 1}}),
		Beq: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-1) > 1e-8 {
		t.Fatalf("value = %v, want 1", sol.Value)
	}
}

// Property: on random feasible bounded LPs, the simplex optimum is at least
// as good as any random feasible point.
func TestSolveBeatsRandomFeasible(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.IntN(5)
		m := 1 + r.IntN(5)
		aub := linalg.NewMatrix(m, n)
		for i := range aub.Data {
			aub.Data[i] = r.Float64() // nonnegative rows keep it bounded
		}
		bub := make([]float64, m)
		for i := range bub {
			bub[i] = 0.5 + r.Float64()
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = 2*r.Float64() - 1
		}
		// Add box constraint x ≤ 1 per coordinate to guarantee bounded.
		box := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			box.Set(i, i, 1)
		}
		full := linalg.NewMatrix(m+n, n)
		copy(full.Data[:m*n], aub.Data)
		copy(full.Data[m*n:], box.Data)
		fullB := append(append([]float64{}, bub...), onesN(n)...)
		sol, err := Solve(Problem{C: c, Aub: full, Bub: fullB})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for probe := 0; probe < 40; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = r.Float64()
			}
			feasible := true
			for i := 0; i < m; i++ {
				if linalg.Dot(full.Row(i), x) > fullB[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			val := linalg.Dot(c, x)
			if val < sol.Value-1e-7 {
				t.Fatalf("random feasible point %v beats simplex %v", val, sol.Value)
			}
		}
	}
}

func onesN(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestMinimaxWeightsExactFit(t *testing.T) {
	// Identity design: weights should reproduce s when s is a distribution.
	a := linalg.FromRows([][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}})
	s := []float64{0.2, 0.3, 0.5}
	w, err := MinimaxWeights(a, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if math.Abs(w[i]-s[i]) > 1e-6 {
			t.Fatalf("weights = %v, want %v", w, s)
		}
	}
}

func TestMinimaxWeightsMinimizesMaxError(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 30; trial++ {
		m := 2 + r.IntN(8)
		n := 2 + r.IntN(5)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		s := make([]float64, m)
		for i := range s {
			s[i] = r.Float64()
		}
		w, err := MinimaxWeights(a, s)
		if err != nil {
			t.Fatal(err)
		}
		got := maxAbsErr(a, w, s)
		// Compare against random feasible candidates.
		for probe := 0; probe < 60; probe++ {
			u := make([]float64, n)
			sum := 0.0
			for j := range u {
				u[j] = r.ExpFloat64()
				sum += u[j]
			}
			for j := range u {
				u[j] /= sum
			}
			if maxAbsErr(a, u, s) < got-1e-6 {
				t.Fatalf("random simplex point beats minimax: %v < %v", maxAbsErr(a, u, s), got)
			}
		}
	}
}

func maxAbsErr(a *linalg.Matrix, w, s []float64) float64 {
	y := a.MulVec(w)
	worst := 0.0
	for i := range y {
		worst = math.Max(worst, math.Abs(y[i]-s[i]))
	}
	return worst
}

// Degenerate LPs with many ties stress the anti-cycling fallback.
func TestSolveHighlyDegenerate(t *testing.T) {
	// All constraints identical: max ties in the ratio test.
	n := 6
	rows := make([][]float64, 12)
	rhs := make([]float64, 12)
	for i := range rows {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1
		}
		rows[i] = row
		rhs[i] = 1
	}
	c := make([]float64, n)
	for j := range c {
		c[j] = -1 // maximize Σx subject to Σx ≤ 1 twelve times
	}
	sol, err := Solve(Problem{C: c, Aub: linalg.FromRows(rows), Bub: rhs})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-(-1)) > 1e-8 {
		t.Fatalf("degenerate LP value %v, want −1", sol.Value)
	}
}

// A chain of equalities with redundancy remains solvable.
func TestSolveRedundantEqualities(t *testing.T) {
	aeq := linalg.FromRows([][]float64{
		{1, 1, 0},
		{0, 1, 1},
		{1, 2, 1}, // sum of the first two: redundant
	})
	beq := []float64{1, 1, 2}
	sol, err := Solve(Problem{C: []float64{1, 1, 1}, Aeq: aeq, Beq: beq})
	if err != nil {
		t.Fatal(err)
	}
	// Feasible points satisfy x1+x2=1, x2+x3=1; min Σx = 1 + min x2… at
	// x2=1: x=(0,1,0), Σ=1.
	if math.Abs(sol.Value-1) > 1e-7 {
		t.Fatalf("redundant-equality LP value %v, want 1", sol.Value)
	}
}

// MinimaxWeights on larger random instances stays feasible and beats the
// uniform distribution's max error.
func TestMinimaxWeightsScales(t *testing.T) {
	r := rng.New(97)
	m, n := 40, 25
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = r.Float64()
	}
	s := make([]float64, m)
	for i := range s {
		s[i] = r.Float64()
	}
	w, err := MinimaxWeights(a, s)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range w {
		if v < -1e-9 {
			t.Fatalf("negative weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	u := make([]float64, n)
	for j := range u {
		u[j] = 1 / float64(n)
	}
	if maxAbsErr(a, w, s) > maxAbsErr(a, u, s)+1e-9 {
		t.Fatalf("minimax %v worse than uniform %v", maxAbsErr(a, w, s), maxAbsErr(a, u, s))
	}
}
