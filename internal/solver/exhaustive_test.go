package solver

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// gridSimplexMin brute-forces min ‖A·w − s‖² over the probability simplex
// by enumerating a fine barycentric grid — the ground truth the solvers are
// checked against on small instances.
func gridSimplexMin(a *linalg.Matrix, s []float64, steps int) float64 {
	n := a.Cols
	best := math.Inf(1)
	w := make([]float64, n)
	var rec func(dim, left int)
	rec = func(dim, left int) {
		if dim == n-1 {
			w[dim] = float64(left) / float64(steps)
			if o := objective(a, w, s); o < best {
				best = o
			}
			return
		}
		for k := 0; k <= left; k++ {
			w[dim] = float64(k) / float64(steps)
			rec(dim+1, left-k)
		}
	}
	if n == 1 {
		w[0] = 1
		return objective(a, w, s)
	}
	rec(0, steps)
	return best
}

// The constrained solvers reach (essentially) the global simplex optimum
// found by exhaustive grid search on small random problems.
func TestSolversMatchExhaustiveGrid(t *testing.T) {
	r := rng.New(4099)
	for trial := 0; trial < 40; trial++ {
		m := 2 + r.IntN(6)
		n := 1 + r.IntN(4) // keep the grid enumeration tractable
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		s := make([]float64, m)
		for i := range s {
			s[i] = r.Float64()
		}
		ref := gridSimplexMin(a, s, 60)

		wN, err := SimplexWeights(a, s)
		if err != nil {
			t.Fatal(err)
		}
		if o := objective(a, wN, s); o > ref+2e-3 {
			t.Fatalf("trial %d: NNLS objective %v above grid optimum %v", trial, o, ref)
		}
		wP := SimplexPGD(a, s, 4000)
		if o := objective(a, wP, s); o > ref+2e-3 {
			t.Fatalf("trial %d: PGD objective %v above grid optimum %v", trial, o, ref)
		}
	}
}

// The auto path (Weights) picks PGD above the size threshold and still
// produces simplex-feasible, competitive weights at scale.
func TestWeightsLargeScalePath(t *testing.T) {
	r := rng.New(71)
	m, n := 60, nnlsSizeLimit+50
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		if r.Float64() < 0.3 {
			a.Data[i] = r.Float64()
		}
	}
	s := make([]float64, m)
	for i := range s {
		s[i] = r.Float64() * 0.5
	}
	w, err := Weights(a, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != n {
		t.Fatalf("weight length %d", len(w))
	}
	sum := 0.0
	for _, v := range w {
		if v < -1e-12 {
			t.Fatalf("negative weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Must beat the uniform distribution.
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / float64(n)
	}
	if objective(a, w, s) > objective(a, u, s)+1e-9 {
		t.Fatalf("solved weights worse than uniform: %v vs %v",
			objective(a, w, s), objective(a, u, s))
	}
}

// Power iteration underestimates nothing catastrophically: the returned
// λmax bounds the Rayleigh quotient of random probes.
func TestPowerIterationDominatesProbes(t *testing.T) {
	r := rng.New(83)
	for trial := 0; trial < 30; trial++ {
		m, n := 4+r.IntN(10), 2+r.IntN(8)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = 2*r.Float64() - 1
		}
		lam := powerIterSq(a, 100)
		for probe := 0; probe < 20; probe++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = 2*r.Float64() - 1
			}
			av := a.MulVec(v)
			rq := linalg.Dot(av, av) / linalg.Dot(v, v)
			if rq > lam*(1+1e-6)+1e-9 {
				t.Fatalf("probe Rayleigh quotient %v exceeds power-iteration λ %v", rq, lam)
			}
		}
	}
}
