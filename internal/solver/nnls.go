// Package solver implements the constrained optimization routines behind
// the weight-estimation phase (Section 3.1, Eq. 8 of the paper):
//
//	minimize   Σᵢ (s_D(Rᵢ) − sᵢ)²  =  ‖A·w − s‖²
//	subject to Σⱼ wⱼ = 1,  0 ≤ wⱼ ≤ 1,
//
// where A[i][j] = vol(Bⱼ ∩ Rᵢ)/vol(Bⱼ) for histograms and the 0/1
// membership indicator for discrete distributions.
//
// Like the paper's released code (which calls scipy.optimize.nnls), the
// primary solver is Lawson–Hanson non-negative least squares with the
// sum-to-one constraint enforced by a strongly weighted augmentation row;
// the upper bound wⱼ ≤ 1 is then implied. A projected-gradient solver over
// the probability simplex is provided as an ablation alternative, and an
// L∞-objective trainer (Section 4.6) lives in linf.go on top of the LP
// simplex in internal/lp.
package solver

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// ErrMaxIterations is returned when an iterative solver fails to converge
// within its iteration budget.
var ErrMaxIterations = errors.New("solver: iteration budget exhausted")

// Stats reports what a weight-estimation call actually did — which
// algorithm ran and how many (outer) iterations it took. The learners
// surface it through obs.TrainStats so per-query adaptation cost is
// visible in seltrain/selbench output and the serving /statz block. A nil
// *Stats is ignored everywhere, so uninstrumented callers pay nothing.
type Stats struct {
	// Method is the algorithm that ran: "nnls", "pgd", or "exact_qp".
	Method string
	// Iterations counts outer iterations: active-set changes for NNLS,
	// FISTA steps for PGD.
	Iterations int
}

func (s *Stats) record(method string, iterations int) {
	if s == nil {
		return
	}
	s.Method = method
	s.Iterations = iterations
}

// NNLS solves min ‖A·x − b‖₂ subject to x ≥ 0 with the Lawson–Hanson
// active-set algorithm. It returns the solution vector; KKT optimality
// (within tolerance) is property-tested.
//
// The inner solves run on the normal equations: the Gram matrix G = AᵀA
// and c = Aᵀb are assembled once (by the blocked parallel kernel in
// internal/linalg), and every active-set change then works on a small
// submatrix of G via Cholesky — instead of re-touching all of A with a
// fresh QR per iteration, which made the solver the dominant cost of
// every training sweep.
func NNLS(a *linalg.Matrix, b []float64) ([]float64, error) {
	return NNLSStats(a, b, nil)
}

// NNLSStats is NNLS with an optional iteration-count report.
func NNLSStats(a *linalg.Matrix, b []float64, st *Stats) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		panic("solver: NNLS shape mismatch")
	}
	g := linalg.Gram(a, 0)
	c := a.TMulVec(b)

	x := make([]float64, n)
	passive := make([]bool, n) // the set P in Lawson–Hanson
	// w = Aᵀ(b − A·x) = c − G·x is the negative gradient; at x = 0 it
	// is just c.
	w := make([]float64, n)
	copy(w, c)

	tol := 1e-10 * (1 + linalg.Norm2(b))
	maxOuter := 3 * n
	if maxOuter < 30 {
		maxOuter = 30
	}
	for outer := 0; outer < maxOuter; outer++ {
		// Find the most violated dual coordinate among the active set.
		best := -1
		bestW := tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				bestW = w[j]
				best = j
			}
		}
		if best < 0 {
			st.record("nnls", outer)
			return x, nil // KKT satisfied
		}
		passive[best] = true
		for {
			// Solve the unconstrained LS restricted to the passive set.
			z, err := solvePassive(a, g, c, b, passive)
			if err != nil {
				return nil, err
			}
			// Check feasibility of the passive solution.
			minZ := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && z[j] < minZ {
					minZ = z[j]
				}
			}
			if minZ > 0 {
				copy(x, z)
				break
			}
			// Step toward z until the first passive variable hits zero.
			alpha := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					if denom := x[j] - z[j]; denom > 0 {
						alpha = math.Min(alpha, x[j]/denom)
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= 1e-14 {
						x[j] = 0
						passive[j] = false
					}
				}
			}
			// If everything left the passive set, re-enter outer loop.
			any := false
			for j := 0; j < n; j++ {
				if passive[j] {
					any = true
					break
				}
			}
			if !any {
				break
			}
		}
		// Refresh the gradient w = c − G·x, accumulating over the
		// support of x (the passive set is small compared to n).
		copy(w, c)
		for j, xj := range x {
			if xj != 0 {
				linalg.AXPY(-xj, g.Row(j), w)
			}
		}
	}
	// Non-convergence is extremely rare; return the current feasible
	// iterate rather than failing the training run.
	st.record("nnls", maxOuter)
	return x, nil
}

// solvePassive solves the least-squares problem restricted to the columns
// in the passive set, returning a full-length vector with zeros elsewhere.
// The fast path solves the normal equations on the passive submatrix of
// the precomputed Gram matrix (O(p³) instead of O(m·p²), without touching
// A at all), with one iterative-refinement step to claw back the accuracy
// the squared condition number costs. A rank-deficient passive set falls
// back to dense QR on the original columns.
func solvePassive(a, g *linalg.Matrix, c, b []float64, passive []bool) ([]float64, error) {
	n := a.Cols
	cols := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if passive[j] {
			cols = append(cols, j)
		}
	}
	p := len(cols)
	z := make([]float64, n)
	if p == 0 {
		return z, nil
	}
	gp := linalg.NewMatrix(p, p)
	cp := make([]float64, p)
	for ki, j := range cols {
		gj := g.Row(j)
		gpRow := gp.Row(ki)
		for kj, jj := range cols {
			gpRow[kj] = gj[jj]
		}
		cp[ki] = c[j]
	}
	chol, err := linalg.NewCholesky(gp)
	if err != nil {
		return solvePassiveQR(a, b, passive)
	}
	zs := chol.Solve(cp)
	// One refinement step against the same factorization: r = cp − Gp·z,
	// z += Gp⁻¹r.
	r := gp.MulVec(zs)
	for i := range r {
		r[i] = cp[i] - r[i]
	}
	linalg.AXPY(1, chol.Solve(r), zs)
	for ki, j := range cols {
		z[j] = zs[ki]
	}
	return z, nil
}

// solvePassiveQR is the original dense path: materialize the passive
// columns and run Householder least squares. It remains both the
// rank-deficiency fallback and the reference implementation for the
// solver ablation tests.
func solvePassiveQR(a *linalg.Matrix, b []float64, passive []bool) ([]float64, error) {
	n := a.Cols
	cols := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if passive[j] {
			cols = append(cols, j)
		}
	}
	sub := linalg.NewMatrix(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		srow := sub.Row(i)
		for k, j := range cols {
			srow[k] = row[j]
		}
	}
	zs, err := linalg.LeastSquares(sub, b)
	if err != nil {
		return nil, err
	}
	z := make([]float64, n)
	for k, j := range cols {
		z[j] = zs[k]
	}
	return z, nil
}

// SimplexWeights solves Eq. 8: min ‖A·w − s‖² subject to w on the
// probability simplex. The sum-to-one constraint is enforced by appending
// the strongly weighted row ρ·1ᵀw = ρ to the NNLS system — the exact
// construction used with scipy's nnls in the paper's code — followed by an
// exact renormalization of any residual drift.
func SimplexWeights(a *linalg.Matrix, s []float64) ([]float64, error) {
	return SimplexWeightsStats(a, s, nil)
}

// SimplexWeightsStats is SimplexWeights with an optional solver report.
func SimplexWeightsStats(a *linalg.Matrix, s []float64, st *Stats) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if n == 0 {
		return nil, errors.New("solver: no buckets")
	}
	// Scale ρ to dominate the data rows without destroying conditioning.
	maxAbs := 0.0
	for _, v := range a.Data {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	rho := 100 * math.Max(maxAbs, 1) * math.Sqrt(float64(m)+1)
	aug := linalg.NewMatrix(m+1, n)
	copy(aug.Data, a.Data)
	lastRow := aug.Row(m)
	for j := range lastRow {
		lastRow[j] = rho
	}
	rhs := make([]float64, m+1)
	copy(rhs, s)
	rhs[m] = rho
	w, err := NNLSStats(aug, rhs, st)
	if err != nil {
		return nil, err
	}
	normalize(w)
	return w, nil
}

// normalize rescales a non-negative vector to sum to one; if the vector is
// (numerically) zero it falls back to the uniform distribution.
func normalize(w []float64) {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum <= 1e-300 {
		u := 1.0 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range w {
		w[i] *= inv
	}
}
