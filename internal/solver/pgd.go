package solver

import (
	"math"
	"sort"

	"repro/internal/linalg"
)

// ProjectSimplex projects v onto the probability simplex
// {w : w ≥ 0, Σw = 1} in Euclidean norm using the sort-based algorithm of
// Duchi et al. (2008). The input is not modified.
func ProjectSimplex(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	u := make([]float64, n)
	copy(u, v)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	cum := 0.0
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass at the largest coordinate (degenerate input).
		theta = u[0] - 1
	}
	w := make([]float64, n)
	for i, vi := range v {
		w[i] = math.Max(0, vi-theta)
	}
	// Counteract floating-point drift.
	normalize(w)
	return w
}

// SimplexPGD solves min ‖A·w − s‖² over the probability simplex with
// Nesterov-accelerated projected gradient (FISTA). It is the large-scale
// alternative to the Lawson–Hanson path: O(m·n) per iteration regardless of
// the active-set size.
func SimplexPGD(a *linalg.Matrix, s []float64, iters int) []float64 {
	n := a.Cols
	if n == 0 {
		return nil
	}
	// Lipschitz constant of the gradient: 2·λmax(AᵀA), estimated by a
	// few power iterations.
	l := 2 * powerIterSq(a, 30)
	if l <= 0 {
		l = 1
	}
	step := 1 / l

	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	y := make([]float64, n)
	copy(y, w)
	tPrev := 1.0
	objPrev := math.Inf(1)
	for it := 0; it < iters; it++ {
		// Gradient at y: 2Aᵀ(Ay − s).
		r := a.MulVec(y)
		for i := range r {
			r[i] -= s[i]
		}
		g := a.TMulVec(r)
		cand := make([]float64, n)
		for i := range cand {
			cand[i] = y[i] - 2*step*g[i]
		}
		wNext := ProjectSimplex(cand)
		tNext := (1 + math.Sqrt(1+4*tPrev*tPrev)) / 2
		beta := (tPrev - 1) / tNext
		for i := range y {
			y[i] = wNext[i] + beta*(wNext[i]-w[i])
		}
		w = wNext
		tPrev = tNext
		// Cheap convergence check every 25 iterations.
		if it%25 == 24 {
			obj := objective(a, w, s)
			if objPrev-obj < 1e-12*(1+obj) {
				break
			}
			objPrev = obj
		}
	}
	return w
}

// objective evaluates ‖A·w − s‖².
func objective(a *linalg.Matrix, w, s []float64) float64 {
	r := a.MulVec(w)
	o := 0.0
	for i := range r {
		d := r[i] - s[i]
		o += d * d
	}
	return o
}

// powerIterSq estimates λmax(AᵀA) = ‖A‖₂² by power iteration.
func powerIterSq(a *linalg.Matrix, iters int) float64 {
	n := a.Cols
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 + float64(i%7)/7
	}
	lambda := 0.0
	for it := 0; it < iters; it++ {
		u := a.MulVec(v)
		w := a.TMulVec(u)
		norm := linalg.Norm2(w)
		if norm == 0 {
			return 0
		}
		lambda = linalg.Dot(v, w) / linalg.Dot(v, v)
		for i := range w {
			v[i] = w[i] / norm
		}
	}
	return lambda
}

// nnlsSizeLimit is the bucket-count threshold above which SimplexWeights
// switches from Lawson–Hanson NNLS (exact active set, cubic in the passive
// set) to accelerated projected gradient (linear per iteration).
const nnlsSizeLimit = 350

// pgdIterations is the iteration budget for the large-scale path.
const pgdIterations = 600

// Weights solves the weight-estimation program of Eq. 8 choosing the
// algorithm by problem size. Method selection can be forced with
// WeightsWith.
func Weights(a *linalg.Matrix, s []float64) ([]float64, error) {
	if a.Cols <= nnlsSizeLimit {
		return SimplexWeights(a, s)
	}
	return SimplexPGD(a, s, pgdIterations), nil
}

// Method selects a weight-estimation algorithm.
type Method int

const (
	// MethodAuto picks NNLS for small bucket counts, PGD otherwise.
	MethodAuto Method = iota
	// MethodNNLS forces Lawson–Hanson with sum-to-one augmentation.
	MethodNNLS
	// MethodPGD forces accelerated projected gradient on the simplex.
	MethodPGD
)

// WeightsWith is Weights with an explicit method choice, used by the
// solver-ablation benchmarks.
func WeightsWith(method Method, a *linalg.Matrix, s []float64) ([]float64, error) {
	switch method {
	case MethodNNLS:
		return SimplexWeights(a, s)
	case MethodPGD:
		return SimplexPGD(a, s, pgdIterations), nil
	default:
		return Weights(a, s)
	}
}
