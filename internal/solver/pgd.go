package solver

import (
	"math"
	"sort"

	"repro/internal/linalg"
)

// Sparse-compression policy for the iterative solvers: design matrices
// (Equations 6/7) are mostly zeros because a range query only touches
// nearby buckets, so above a minimum size we run the FISTA matvecs on a
// compressed copy unless the matrix turns out to be nearly dense.
const (
	sparseMinElems   = 1 << 12
	sparseMaxDensity = 0.75
)

// ProjectSimplex projects v onto the probability simplex
// {w : w ≥ 0, Σw = 1} in Euclidean norm using the sort-based algorithm of
// Duchi et al. (2008). The input is not modified.
func ProjectSimplex(v []float64) []float64 {
	n := len(v)
	if n == 0 {
		return nil
	}
	w := make([]float64, n)
	projectSimplexInto(w, v, make([]float64, n))
	return w
}

// projectSimplexInto writes the simplex projection of v into dst using u
// as sort scratch (all length n); the iterative solvers call it once per
// iteration, so it must not allocate.
func projectSimplexInto(dst, v, u []float64) {
	n := len(v)
	copy(u, v)
	sort.Float64s(u)
	cum := 0.0
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		ui := u[n-1-i] // descending traversal of the ascending sort
		cum += ui
		t := (cum - 1) / float64(i+1)
		if ui-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		// All mass at the largest coordinate (degenerate input).
		theta = u[n-1] - 1
	}
	for i, vi := range v {
		dst[i] = math.Max(0, vi-theta)
	}
	// Counteract floating-point drift.
	normalize(dst)
}

// SimplexPGD solves min ‖A·w − s‖² over the probability simplex with
// Nesterov-accelerated projected gradient (FISTA). It is the large-scale
// alternative to the Lawson–Hanson path: O(nnz) per iteration regardless
// of the active-set size. The matrix is compressed once up front; because
// simplex-projected iterates are mostly exact zeros, the A·y product then
// skips most columns outright.
func SimplexPGD(a *linalg.Matrix, s []float64, iters int) []float64 {
	return SimplexPGDStats(a, s, iters, nil)
}

// SimplexPGDStats is SimplexPGD with an optional report of how many FISTA
// steps actually ran before the relative-improvement stop fired.
func SimplexPGDStats(a *linalg.Matrix, s []float64, iters int, st *Stats) []float64 {
	m, n := a.Rows, a.Cols
	if n == 0 {
		st.record("pgd", 0)
		return nil
	}
	var sp *linalg.Sparse
	if m*n >= sparseMinElems {
		if c := linalg.NewSparse(a); c.Density() <= sparseMaxDensity {
			sp = c
		}
	}
	// All per-iteration storage is allocated once and reused.
	ax := make([]float64, m)
	mulVec := func(dst, x []float64) {
		if sp != nil {
			sp.MulVecInto(dst, x)
			return
		}
		copy(dst, a.MulVec(x))
	}
	tMulVec := func(dst, x []float64) {
		if sp != nil {
			sp.TMulVecInto(dst, x)
			return
		}
		copy(dst, a.TMulVec(x))
	}

	// Lipschitz constant of the gradient: 2·λmax(AᵀA), estimated by a
	// few power iterations.
	l := 2 * powerIterSqKernels(mulVec, tMulVec, m, n, 30)
	if l <= 0 {
		l = 1
	}
	step := 1 / l

	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	y := make([]float64, n)
	copy(y, w)
	g := make([]float64, n)
	cand := make([]float64, n)
	wNext := make([]float64, n)
	scratch := make([]float64, n)
	tPrev := 1.0
	objPrev := math.Inf(1)
	ran := 0
	for it := 0; it < iters; it++ {
		ran = it + 1
		// Gradient at y: 2Aᵀ(Ay − s).
		mulVec(ax, y)
		for i := range ax {
			ax[i] -= s[i]
		}
		tMulVec(g, ax)
		for i := range cand {
			cand[i] = y[i] - 2*step*g[i]
		}
		projectSimplexInto(wNext, cand, scratch)
		tNext := (1 + math.Sqrt(1+4*tPrev*tPrev)) / 2
		beta := (tPrev - 1) / tNext
		for i := range y {
			y[i] = wNext[i] + beta*(wNext[i]-w[i])
		}
		w, wNext = wNext, w
		tPrev = tNext
		// Cheap convergence check every 25 iterations. The stop rule is
		// a 1e-7 relative objective improvement per block — orders of
		// magnitude below the ~1e-2 RMS scale the trained models live
		// at, but loose enough to cut the tail of the iteration budget
		// once FISTA has flattened.
		if it%25 == 24 {
			mulVec(ax, w)
			obj := 0.0
			for i := range ax {
				d := ax[i] - s[i]
				obj += d * d
			}
			if objPrev-obj < 1e-7*(1+obj) {
				break
			}
			objPrev = obj
		}
	}
	st.record("pgd", ran)
	return w
}

// objective evaluates ‖A·w − s‖².
func objective(a *linalg.Matrix, w, s []float64) float64 {
	r := a.MulVec(w)
	o := 0.0
	for i := range r {
		d := r[i] - s[i]
		o += d * d
	}
	return o
}

// powerIterSq estimates λmax(AᵀA) = ‖A‖₂² by power iteration on the
// dense matrix.
func powerIterSq(a *linalg.Matrix, iters int) float64 {
	mulVec := func(dst, x []float64) { copy(dst, a.MulVec(x)) }
	tMulVec := func(dst, x []float64) { copy(dst, a.TMulVec(x)) }
	return powerIterSqKernels(mulVec, tMulVec, a.Rows, a.Cols, iters)
}

// powerIterSqKernels is powerIterSq over caller-provided matvec kernels
// (the FISTA path passes the sparse ones).
func powerIterSqKernels(mulVec, tMulVec func(dst, x []float64), m, n, iters int) float64 {
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 + float64(i%7)/7
	}
	u := make([]float64, m)
	w := make([]float64, n)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		mulVec(u, v)
		tMulVec(w, u)
		norm := linalg.Norm2(w)
		if norm == 0 {
			return 0
		}
		lambda = linalg.Dot(v, w) / linalg.Dot(v, v)
		for i := range w {
			v[i] = w[i] / norm
		}
	}
	return lambda
}

// nnlsSizeLimit is the bucket-count threshold above which SimplexWeights
// switches from Lawson–Hanson NNLS (exact active set, cubic in the passive
// set) to accelerated projected gradient (linear per iteration).
const nnlsSizeLimit = 350

// pgdIterations is the iteration budget for the large-scale path.
const pgdIterations = 600

// Weights solves the weight-estimation program of Eq. 8 choosing the
// algorithm by problem size. Method selection can be forced with
// WeightsWith.
func Weights(a *linalg.Matrix, s []float64) ([]float64, error) {
	return WeightsWithStats(MethodAuto, a, s, nil)
}

// Method selects a weight-estimation algorithm.
type Method int

const (
	// MethodAuto picks NNLS for small bucket counts, PGD otherwise.
	MethodAuto Method = iota
	// MethodNNLS forces Lawson–Hanson with sum-to-one augmentation.
	MethodNNLS
	// MethodPGD forces accelerated projected gradient on the simplex.
	MethodPGD
)

// WeightsWith is Weights with an explicit method choice, used by the
// solver-ablation benchmarks.
func WeightsWith(method Method, a *linalg.Matrix, s []float64) ([]float64, error) {
	return WeightsWithStats(method, a, s, nil)
}

// WeightsWithStats is WeightsWith with an optional report of the resolved
// method and its iteration count (st may be nil).
func WeightsWithStats(method Method, a *linalg.Matrix, s []float64, st *Stats) ([]float64, error) {
	if method == MethodAuto {
		if a.Cols <= nnlsSizeLimit {
			method = MethodNNLS
		} else {
			method = MethodPGD
		}
	}
	switch method {
	case MethodNNLS:
		return SimplexWeightsStats(a, s, st)
	default:
		return SimplexPGDStats(a, s, pgdIterations, st), nil
	}
}
