package solver

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestNNLSUnconstrainedCase(t *testing.T) {
	// Positive exact solution: NNLS must match plain least squares.
	a := linalg.FromRows([][]float64{{2, 0}, {0, 3}})
	x, err := NNLS(a, []float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("NNLS = %v, want [2 3]", x)
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Unconstrained optimum has a negative coordinate; NNLS pins it to 0.
	a := linalg.FromRows([][]float64{{1, 1}, {1, -1}})
	// Unconstrained solution of A x = (0, 2) is x = (1, −1).
	x, err := NNLS(a, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 0 {
		t.Fatalf("NNLS x₂ = %v, want 0", x[1])
	}
	if x[0] < 0 {
		t.Fatalf("NNLS produced negative coordinate: %v", x)
	}
}

// Property: NNLS satisfies the KKT conditions — x ≥ 0, gradient ≥ −tol on
// the active set and ≈ 0 on the passive set.
func TestNNLSKKT(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 200; trial++ {
		m := 2 + r.IntN(15)
		n := 1 + r.IntN(10)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = 2*r.Float64() - 1
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		res := linalg.Residual(a, x, b)
		// gradient of ½‖Ax−b‖² is Aᵀ(Ax−b).
		g := a.TMulVec(res)
		tol := 1e-6 * (1 + linalg.Norm2(b))
		for j := 0; j < n; j++ {
			if x[j] < -1e-12 {
				t.Fatalf("negative coordinate x[%d] = %v", j, x[j])
			}
			if x[j] > 1e-10 && math.Abs(g[j]) > tol {
				t.Fatalf("passive coordinate %d has gradient %v", j, g[j])
			}
			if x[j] <= 1e-10 && g[j] < -tol {
				t.Fatalf("active coordinate %d has negative gradient %v (descent direction exists)", j, g[j])
			}
		}
	}
}

// Property: NNLS is at least as good as any random nonnegative candidate.
func TestNNLSBeatsRandomFeasiblePoints(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 50; trial++ {
		m := 3 + r.IntN(10)
		n := 1 + r.IntN(6)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.Float64()
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		opt := objective(a, x, b)
		for probe := 0; probe < 50; probe++ {
			y := make([]float64, n)
			for j := range y {
				y[j] = 2 * r.Float64()
			}
			if objective(a, y, b) < opt-1e-8 {
				t.Fatalf("random point beats NNLS: %v < %v", objective(a, y, b), opt)
			}
		}
	}
}

func TestProjectSimplexBasics(t *testing.T) {
	w := ProjectSimplex([]float64{0.2, 0.3, 0.5})
	for i, v := range []float64{0.2, 0.3, 0.5} {
		if math.Abs(w[i]-v) > 1e-12 {
			t.Fatalf("projection moved a simplex point: %v", w)
		}
	}
	w2 := ProjectSimplex([]float64{10, 0, 0})
	if math.Abs(w2[0]-1) > 1e-12 || w2[1] != 0 || w2[2] != 0 {
		t.Fatalf("projection of dominant coordinate = %v", w2)
	}
}

// Properties of simplex projection: feasibility, idempotence, and
// optimality (no feasible point is closer to the input).
func TestProjectSimplexProperties(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.IntN(12)
		v := make([]float64, n)
		for i := range v {
			v[i] = 6*r.Float64() - 3
		}
		w := ProjectSimplex(v)
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				t.Fatalf("negative projection coordinate %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("projection sums to %v", sum)
		}
		// Idempotence.
		w2 := ProjectSimplex(w)
		for i := range w {
			if math.Abs(w[i]-w2[i]) > 1e-9 {
				t.Fatalf("projection not idempotent at %d", i)
			}
		}
		// Optimality against random feasible candidates.
		dist := distSq(v, w)
		for probe := 0; probe < 30; probe++ {
			u := randSimplex(r, n)
			if distSq(v, u) < dist-1e-9 {
				t.Fatalf("feasible point closer than projection")
			}
		}
	}
}

func distSq(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func randSimplex(r *rng.RNG, n int) []float64 {
	u := make([]float64, n)
	sum := 0.0
	for i := range u {
		u[i] = r.ExpFloat64()
		sum += u[i]
	}
	for i := range u {
		u[i] /= sum
	}
	return u
}

func TestSimplexWeightsRecoversExactDistribution(t *testing.T) {
	// Three buckets, queries that pin the weights exactly.
	// Query 1 covers bucket 0 fully: s = w0 = 0.5.
	// Query 2 covers bucket 1 fully: s = w1 = 0.3.
	// Query 3 covers all: s = 1.
	a := linalg.FromRows([][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{1, 1, 1},
	})
	s := []float64{0.5, 0.3, 1}
	w, err := SimplexWeights(a, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.3, 0.2}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-6 {
			t.Fatalf("weights = %v, want %v", w, want)
		}
	}
}

func TestSimplexWeightsAlwaysFeasible(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 100; trial++ {
		m := 1 + r.IntN(20)
		n := 1 + r.IntN(15)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		s := make([]float64, m)
		for i := range s {
			s[i] = r.Float64()
		}
		w, err := SimplexWeights(a, s)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range w {
			if v < -1e-12 || v > 1+1e-9 {
				t.Fatalf("weight out of [0,1]: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum to %v", sum)
		}
	}
}

func TestSimplexPGDMatchesNNLSOnSmallProblems(t *testing.T) {
	r := rng.New(53)
	for trial := 0; trial < 30; trial++ {
		m := 5 + r.IntN(15)
		n := 2 + r.IntN(8)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()
		}
		s := make([]float64, m)
		for i := range s {
			s[i] = r.Float64()
		}
		wNNLS, err := SimplexWeights(a, s)
		if err != nil {
			t.Fatal(err)
		}
		wPGD := SimplexPGD(a, s, 3000)
		oN := objective(a, wNNLS, s)
		oP := objective(a, wPGD, s)
		if oP > oN+1e-4*(1+oN) {
			t.Fatalf("PGD objective %v much worse than NNLS %v", oP, oN)
		}
	}
}

func TestWeightsWithMethods(t *testing.T) {
	a := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	s := []float64{0.7, 0.3}
	for _, method := range []Method{MethodAuto, MethodNNLS, MethodPGD} {
		w, err := WeightsWith(method, a, s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w[0]-0.7) > 1e-4 || math.Abs(w[1]-0.3) > 1e-4 {
			t.Fatalf("method %v: weights = %v", method, w)
		}
	}
}

func TestNormalizeFallsBackToUniform(t *testing.T) {
	w := []float64{0, 0, 0, 0}
	normalize(w)
	for _, v := range w {
		if math.Abs(v-0.25) > 1e-15 {
			t.Fatalf("normalize zero vector = %v", w)
		}
	}
}
