package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

func init() {
	Register("fig17", fig17)
	Register("fig18_19", fig18to19)
	Register("fig20_21", func(cfg Config) []*Result {
		return queryTypeSweep(cfg, workload.Halfspace, "fig20", "fig21")
	})
	Register("fig22_23", func(cfg Config) []*Result {
		return queryTypeSweep(cfg, workload.Ball, "fig22", "fig23")
	})
}

// fig17 reproduces Figure 17: PTSHIST RMS error vs training size, one
// series per dimensionality, Forest Data-driven orthogonal ranges
// (Section 4.4).
func fig17(cfg Config) []*Result {
	res := &Result{
		ID:     "fig17",
		Title:  "PtsHist RMS error vs training size across dimensions (Forest Data-driven)",
		Header: []string{"dim", "train_n", "buckets", "rms"},
	}
	points := []sweepPoint{}
	for _, d := range cfg.Dims {
		g := newGenerator(cfg, "forest", d, workload.OrthogonalRange)
		spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
		test := g.Generate(spec, cfg.TestQueries)
		minSel := 1.0 / float64(g.Dataset().Len())
		for _, n := range cfg.TrainSizes {
			train := g.Generate(spec, n)
			points = append(points, sweepPoint{
				train: train, test: test, minSel: minSel,
				trainer: ptshist.New(d, cfg.BucketMultiplier*n, cfg.Seed+13),
			})
		}
	}
	runs := runSweep(cfg, points)
	k := 0
	for _, d := range cfg.Dims {
		for _, n := range cfg.TrainSizes {
			run := runs[k]
			k++
			if !run.OK {
				res.Rows = append(res.Rows, []string{strconv.Itoa(d), strconv.Itoa(n), dash, dash})
				continue
			}
			res.Rows = append(res.Rows, []string{
				strconv.Itoa(d), strconv.Itoa(n), strconv.Itoa(run.Buckets), fmtF(run.RMS),
			})
		}
	}
	res.Notes = append(res.Notes,
		"expected shape: error decreases with training size and flattens; higher dimension needs more queries for the same accuracy (Theorem 2.1's exponential d-dependence)")
	return []*Result{res}
}

// fig18to19 reproduces Figures 18 and 19: RMS error and training time vs
// dimensionality at a fixed training size for QuickSel, QuadHist and
// PtsHist (Forest, Data-driven; ISOMER excluded as in the paper).
func fig18to19(cfg Config) []*Result {
	n := cfg.TrainSizes[len(cfg.TrainSizes)-1]
	resR := &Result{
		ID:     "fig18",
		Title:  fmt.Sprintf("RMS error vs dimensions (Forest Data-driven, n=%d)", n),
		Header: []string{"dim", "method", "rms"},
	}
	resT := &Result{
		ID:     "fig19",
		Title:  fmt.Sprintf("training time vs dimensions (Forest Data-driven, n=%d)", n),
		Header: []string{"dim", "method", "seconds"},
	}
	points := []sweepPoint{}
	for _, d := range cfg.Dims {
		g := newGenerator(cfg, "forest", d, workload.OrthogonalRange)
		spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
		train, test := g.TrainTest(spec, n, cfg.TestQueries)
		minSel := 1.0 / float64(g.Dataset().Len())
		k := cfg.BucketMultiplier * n
		for _, tr := range []core.Trainer{
			quicksel.New(d, cfg.Seed+7),
			hist.New(d, k),
			ptshist.New(d, k, cfg.Seed+13),
		} {
			points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: tr})
		}
	}
	runs := runSweep(cfg, points)
	for k, run := range runs {
		d := cfg.Dims[k/3]
		if !run.OK {
			resR.Rows = append(resR.Rows, []string{strconv.Itoa(d), run.Name, dash})
			resT.Rows = append(resT.Rows, []string{strconv.Itoa(d), run.Name, dash})
			continue
		}
		resR.Rows = append(resR.Rows, []string{strconv.Itoa(d), run.Name, fmtF(run.RMS)})
		resT.Rows = append(resT.Rows, []string{strconv.Itoa(d), run.Name, fmtSecs(run.TrainS)})
	}
	resR.Notes = append(resR.Notes,
		"expected shape: all methods degrade with d; accuracies comparable")
	resT.Notes = append(resT.Notes,
		"expected shape: PtsHist training scales best in high d (simpler buckets)")
	return []*Result{resR, resT}
}

// queryTypeSweep reproduces Figures 20–23 (Section 4.5): halfspace or ball
// queries on Forest, PTSHIST across dimensions plus QUADHIST at d=2 only
// (its intersection computations make it too slow beyond, as in the paper).
func queryTypeSweep(cfg Config, class workload.Class, idRMS, idTime string) []*Result {
	resR := &Result{
		ID:     idRMS,
		Title:  fmt.Sprintf("RMS error vs training size, %s queries (Forest Data-driven)", class),
		Header: []string{"dim", "method", "train_n", "rms"},
	}
	resT := &Result{
		ID:     idTime,
		Title:  fmt.Sprintf("training time vs training size, %s queries (Forest Data-driven)", class),
		Header: []string{"dim", "method", "train_n", "seconds"},
	}
	type rowKey struct{ d, n int }
	points := []sweepPoint{}
	keys := []rowKey{}
	for _, d := range cfg.Dims {
		g := newGenerator(cfg, "forest", d, class)
		spec := workload.Spec{Class: class, Centers: workload.DataDriven}
		test := g.Generate(spec, cfg.TestQueries)
		minSel := 1.0 / float64(g.Dataset().Len())
		for _, n := range cfg.TrainSizes {
			train := g.Generate(spec, n)
			k := cfg.BucketMultiplier * n
			trainers := []core.Trainer{ptshist.New(d, k, cfg.Seed+13)}
			if d == 2 {
				trainers = append(trainers, hist.New(d, k))
			}
			for _, tr := range trainers {
				points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: tr})
				keys = append(keys, rowKey{d, n})
			}
		}
	}
	runs := runSweep(cfg, points)
	for k, run := range runs {
		d, n := keys[k].d, keys[k].n
		if !run.OK {
			resR.Rows = append(resR.Rows, []string{strconv.Itoa(d), run.Name, strconv.Itoa(n), dash})
			resT.Rows = append(resT.Rows, []string{strconv.Itoa(d), run.Name, strconv.Itoa(n), dash})
			continue
		}
		resR.Rows = append(resR.Rows, []string{strconv.Itoa(d), run.Name, strconv.Itoa(n), fmtF(run.RMS)})
		resT.Rows = append(resT.Rows, []string{strconv.Itoa(d), run.Name, strconv.Itoa(n), fmtSecs(run.TrainS)})
	}
	resR.Notes = append(resR.Notes,
		"expected shape: error decreases with training size; higher d needs more queries; QuadHist (d=2 only) more accurate than PtsHist in 2D")
	resT.Notes = append(resT.Notes,
		"expected shape: QuadHist slower than PtsHist in 2D; PtsHist stays scalable as d grows")
	return []*Result{resR, resT}
}
