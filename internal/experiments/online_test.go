package experiments

import (
	"strconv"
	"testing"
)

// TestExtOnlineBound runs the drift experiment at smoke scale and enforces
// the stated accuracy bound from its Notes: in the final window, the
// online-gradient fold must beat the never-updated static model, and stay
// within max(2× retrain RMS, retrain RMS + 0.02) of the periodic full
// retrain.
func TestExtOnlineBound(t *testing.T) {
	results := extOnline(smoke())
	if len(results) != 1 {
		t.Fatalf("ext_online returned %d results", len(results))
	}
	res := results[0]
	if len(res.Rows) != extOnlineWindows {
		t.Fatalf("ext_online produced %d windows, want %d", len(res.Rows), extOnlineWindows)
	}
	last := res.Rows[len(res.Rows)-1]
	col := func(j int) float64 {
		v, err := strconv.ParseFloat(last[j], 64)
		if err != nil {
			t.Fatalf("row cell %d %q not a float: %v", j, last[j], err)
		}
		return v
	}
	staticRMS, gradRMS, mwRMS, retrainRMS := col(2), col(3), col(4), col(5)
	if gradRMS >= staticRMS {
		t.Fatalf("online-gradient did not beat static in the final window: %v vs %v",
			gradRMS, staticRMS)
	}
	if mwRMS >= staticRMS {
		t.Fatalf("online-mw did not beat static in the final window: %v vs %v",
			mwRMS, staticRMS)
	}
	bound := max(2*retrainRMS, retrainRMS+0.02)
	if gradRMS > bound {
		t.Fatalf("online-gradient final-window RMS %v exceeds the stated bound %v (retrain %v)",
			gradRMS, bound, retrainRMS)
	}
}

// TestExtOnlineDeterministic: two runs with the same config must emit
// identical rows — the experiment sits in the repository's deterministic
// scope and feeds the determinism render tests.
func TestExtOnlineDeterministic(t *testing.T) {
	a := extOnline(smoke())[0]
	b := extOnline(smoke())[0]
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d col %d differs across runs: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}
