package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/crossing"
	"repro/internal/geom"
	"repro/internal/rng"
)

func init() {
	Register("ext_crossing", extCrossing)
	Register("ext_theory", extTheory)
}

// extCrossing empirically validates Lemma 2.4: there is an ordering of any
// range set whose consecutive symmetric differences are crossed by every
// point only O(k^{1−1/λ} log k) times. We compare the identity ordering
// (linear growth) against the greedy Hamming-chaining ordering, with the
// Chazelle–Welzl envelope as a reference column (λ = 4 for 2D boxes).
func extCrossing(cfg Config) []*Result {
	r := rng.New(cfg.Seed + 4242)
	pts := make([]geom.Point, 800)
	for i := range pts {
		pts[i] = geom.Point{r.Float64(), r.Float64()}
	}
	res := &Result{
		ID:     "ext_crossing",
		Title:  "extension: Lemma 2.4 crossing numbers — identity vs greedy low-crossing ordering (2D boxes, λ=4)",
		Header: []string{"k", "max_cross_identity", "max_cross_greedy", "envelope_k^0.75*logk"},
	}
	for _, k := range []int{32, 64, 128, 256, 512} {
		ranges := make([]geom.Range, k)
		for i := range ranges {
			c := geom.Point{r.Float64(), r.Float64()}
			s := []float64{0.2 + 0.5*r.Float64(), 0.2 + 0.5*r.Float64()}
			ranges[i] = geom.BoxFromCenter(c, s)
		}
		inc := crossing.IncidenceMatrix(ranges, pts)
		maxI, _ := crossing.MaxAndMean(crossing.CrossingCounts(inc, crossing.IdentityOrder(k), len(pts)))
		maxG, _ := crossing.MaxAndMean(crossing.CrossingCounts(inc, crossing.GreedyOrder(inc), len(pts)))
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(k),
			strconv.Itoa(maxI),
			strconv.Itoa(maxG),
			fmtF(crossing.TheoryBound(k, 4)),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: identity ordering crossings grow ~linearly in k; the greedy low-crossing ordering grows sublinearly, tracking the k^{1-1/λ} log k envelope that Lemma 2.5 turns into the fat-shattering bound")
	return []*Result{res}
}

// extTheory prints the Theorem 2.1 sample-complexity table for the three
// headline query classes across dimensions — the quantitative face of the
// learnability results, with unit constants (comparable across cells, not
// literal counts).
func extTheory(cfg Config) []*Result {
	res := &Result{
		ID:     "ext_theory",
		Title:  "Theorem 2.1 sample-complexity calculator, n0(eps=0.1, delta=0.05), unit constants",
		Header: []string{"d", "orthogonal_2d+3", "halfspace_d+4", "ball_d+5"},
	}
	for _, d := range cfg.Dims {
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(d),
			fmtF(core.SampleComplexityOrthogonal(0.1, 0.05, d)),
			fmtF(core.SampleComplexityHalfspace(0.1, 0.05, d)),
			fmtF(core.SampleComplexityBall(0.1, 0.05, d)),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: every column grows with d; orthogonal (lambda=2d) grows fastest for d>=3, matching the 2d+3 vs d+4 vs d+5 exponents")
	return []*Result{res}
}
