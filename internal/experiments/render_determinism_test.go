package experiments

import (
	"bytes"
	"testing"
	"time"
)

// TestRenderedBytesIdentical is the regression test for the maprange
// half of the determinism contract: rendering the same experiments twice
// in one process must produce identical bytes. Any map-iteration order
// leaking into row assembly or table emission (or any wall-clock value
// leaking into a non-timing table) breaks this immediately, because Go
// randomizes map iteration per map instance.
func TestRenderedBytesIdentical(t *testing.T) {
	cfg := Config{
		Seed:             1,
		TrainSizes:       []int{30},
		TestQueries:      40,
		DataSize:         1500,
		BucketMultiplier: 4,
		IsomerMaxTrain:   30,
		IsomerBudget:     time.Second,
		Dims:             []int{2},
		Fig9Buckets:      []int{10, 20},
	}
	render := func() []byte {
		var buf bytes.Buffer
		// fig9 exercises the sweep engine, table1 the multi-workload
		// row assembly; neither table includes wall-clock columns.
		for _, id := range []string{"fig9", "table1"} {
			rs, err := Run(id, cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, r := range rs {
				if err := r.Render(&buf); err != nil {
					t.Fatalf("%s: render: %v", id, err)
				}
			}
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		a := bytes.Split(first, []byte("\n"))
		b := bytes.Split(second, []byte("\n"))
		for i := range a {
			if i >= len(b) || !bytes.Equal(a[i], b[i]) {
				t.Fatalf("rendered bytes differ at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("rendered outputs differ in length: %d vs %d bytes", len(first), len(second))
	}
}
