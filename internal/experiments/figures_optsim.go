package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/optsim"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

func init() {
	Register("ext_optimizer", extOptimizer)
}

// extOptimizer is an end-to-end extension experiment: instead of RMS or
// Q-error it measures what the paper's introduction actually cares about —
// the *plan quality* a cost-based optimizer achieves with each estimator.
// Every estimator plans the same scan workload through the optsim cost
// model; regret is the extra execution cost versus oracle plans.
func extOptimizer(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	// Moderate query sizes put many queries near the access-path
	// crossover, where estimation errors actually change plans.
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven, MaxSide: 0.4}
	test := g.Generate(spec, cfg.TestQueries)
	cm := optsim.DefaultCostModel()
	n := g.Dataset().Len()

	res := &Result{
		ID:     "ext_optimizer",
		Title:  "extension: optimizer plan quality by estimator (Power 2D, scan access-path choice)",
		Header: []string{"train_n", "estimator", "plan_agreement", "regret_frac"},
	}
	addRow := func(trainN, name string, rep optsim.Report) {
		res.Rows = append(res.Rows, []string{
			trainN, name,
			fmtF(rep.AgreementRate()), fmtF(rep.RegretFraction()),
		})
	}
	// Baselines independent of training size.
	addRow(dash, "uniformity", optsim.ReplayScans(cm, n, optsim.UniformityAssumption{Dim: 2}, test))
	addRow(dash, "oracle", optsim.ReplayScans(cm, n, optsim.Oracle{Samples: test}, test))

	for _, trainN := range cfg.TrainSizes {
		train := g.Generate(spec, trainN)
		k := cfg.BucketMultiplier * trainN
		trainers := []core.Trainer{
			hist.New(2, k),
			ptshist.New(2, k, cfg.Seed+13),
			quicksel.New(2, cfg.Seed+7),
		}
		for _, tr := range trainers {
			m, err := tr.Train(train)
			if err != nil {
				addRow(strconv.Itoa(trainN), tr.Name(), optsim.Report{})
				continue
			}
			addRow(strconv.Itoa(trainN), tr.Name(), optsim.ReplayScans(cm, n, m, test))
		}
	}
	res.Notes = append(res.Notes,
		"expected shape: learned estimators recover near-oracle plan agreement with a few hundred training queries; the uniformity baseline pays a persistent regret")
	return []*Result{res}
}
