package experiments

import (
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/online"
	"repro/internal/workload"
)

func init() {
	Register("ext_online", extOnline)
}

// extOnlineWindows is the number of evaluation windows the drifting stream
// is split into; the underlying data distribution moves linearly from the
// Power dataset to the Forest dataset across them.
const extOnlineWindows = 8

// extOnline compares adaptation strategies on a feedback stream with
// concept drift — the serving scenario internal/online exists for. A
// QuadHist model is trained against the Power data distribution; the
// distribution then drifts toward Forest as the mixture (1−t)·Power +
// t·Forest. Selectivity is linear in the data distribution, so the
// blended label is the exact selectivity of the drifting mixture — no
// approximation. Four strategies process the same stream prequentially
// (predict first, then learn from the observation):
//
//   - static: the trained model, never updated — the no-adaptation floor.
//   - online-gradient / online-mw: the internal/online updaters, one
//     microsecond-scale weight update per observation.
//   - retrain: a full refit on the recent feedback window at every window
//     boundary — the expensive path the serve-layer retrainer fallback
//     takes.
//
// Reported per window: RMS of the pre-feedback predictions.
func extOnline(cfg Config) []*Result {
	gA := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	gB := newGenerator(cfg, "forest", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	perWindow := max(60, cfg.TestQueries/4)

	n := cfg.TrainSizes[len(cfg.TrainSizes)-1]
	train := gA.Generate(spec, n) // labels: pure Power (t = 0)
	base, err := hist.New(2, cfg.BucketMultiplier*n).TrainHist(train)
	if err != nil {
		return []*Result{{ID: "ext_online", Title: "extension: online learning under drift",
			Notes: []string{"base training failed: " + err.Error()}}}
	}

	// Window i: queries drawn as usual, labeled with the mixture
	// selectivity at drift fraction t(i).
	stream := make([][]core.LabeledQuery, extOnlineWindows)
	fracs := make([]float64, extOnlineWindows)
	for i := range stream {
		t := float64(i) / float64(extOnlineWindows-1)
		fracs[i] = t
		w := gA.Generate(spec, perWindow)
		for j := range w {
			w[j].Sel = (1-t)*w[j].Sel + t*gB.Tree().Selectivity(w[j].R)
		}
		stream[i] = w
	}

	gradU, _ := online.ForModel(base, online.Options{Rule: online.RuleGradient})
	mwU, _ := online.ForModel(base, online.Options{Rule: online.RuleMultiplicative})

	res := &Result{
		ID:    "ext_online",
		Title: "extension: online weight updates vs full retrain under concept drift (QuadHist, Power→Forest mixture)",
		Header: []string{"window", "drift_frac", "static_rms", "online_grad_rms",
			"online_mw_rms", "retrain_rms"},
	}

	var retrainModel core.Model = base
	var recent []core.LabeledQuery // retrain memory: the last few windows
	windowRMS := func(m core.Model, w []core.LabeledQuery) float64 {
		return metrics.RMS(core.Estimates(m, w), workload.Truths(w))
	}
	for i, w := range stream {
		staticRMS := windowRMS(base, w)
		retrainRMS := windowRMS(retrainModel, w)

		// Prequential online folds: predict-then-update per observation.
		gradErr, mwErr := 0.0, 0.0
		for _, z := range w {
			d := gradU.Model().Estimate(z.R) - z.Sel
			gradErr += d * d
			d = mwU.Model().Estimate(z.R) - z.Sel
			mwErr += d * d
			gradU.Apply([]core.LabeledQuery{z})
			mwU.Apply([]core.LabeledQuery{z})
		}
		gradRMS := rootMean(gradErr, len(w))
		mwRMS := rootMean(mwErr, len(w))

		res.Rows = append(res.Rows, []string{
			strconv.Itoa(i), fmtF(fracs[i]),
			fmtF(staticRMS), fmtF(gradRMS), fmtF(mwRMS), fmtF(retrainRMS),
		})

		// Window boundary: the retrain strategy refits on recent feedback.
		recent = append(recent, w...)
		if keep := 3 * perWindow; len(recent) > keep {
			recent = recent[len(recent)-keep:]
		}
		if m, rerr := hist.New(2, cfg.BucketMultiplier*len(recent)).TrainHist(recent); rerr == nil {
			retrainModel = m
		}
	}

	res.Notes = append(res.Notes,
		"expected shape: static RMS degrades as the data distribution drifts away from the one the model was trained on; both online rules track the drift at a fraction of retraining cost",
		"stated bound (checked by the package test): in the final window, online-gradient RMS < static RMS, and online-gradient RMS <= max(2x retrain RMS, retrain RMS + 0.02)")
	return []*Result{res}
}

// rootMean is the RMS of a sum of squared errors over n samples.
func rootMean(sumSq float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumSq / float64(n))
}
