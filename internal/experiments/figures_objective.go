package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	Register("fig24_29", fig24to29)
}

// fig24to29 reproduces Figures 24–29 (Section 4.6): QUADHIST trained with
// the L2 objective vs the L∞ objective, reporting train RMS, test RMS,
// train L∞ and test L∞ across model complexities — six panels collapsed
// into one table with the objective as a column.
func fig24to29(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	// Section 4.6 uses a fixed training set and varies model complexity;
	// the LP solver bounds the practical training size.
	n := cfg.TrainSizes[0]
	for _, c := range cfg.TrainSizes {
		if c <= 200 && c > n {
			n = c
		}
	}
	train, test := g.TrainTest(spec, n, cfg.TestQueries)
	trainTruth := workload.Truths(train)
	testTruth := workload.Truths(test)

	res := &Result{
		ID:     "fig24_29",
		Title:  "L2- vs Linf-trained QuadHist across model complexity (Power 2D Data-driven, n=" + strconv.Itoa(n) + ")",
		Header: []string{"objective", "buckets", "train_rms", "test_rms", "train_linf", "test_linf"},
	}
	sizes := []int{}
	for _, b := range cfg.Fig9Buckets {
		if b <= 1000 { // LP tableau size bounds the L∞ sweep
			sizes = append(sizes, b)
		}
	}
	for _, objective := range []hist.Objective{hist.ObjectiveL2, hist.ObjectiveLInf} {
		name := "L2"
		if objective == hist.ObjectiveLInf {
			name = "Linf"
		}
		for _, b := range sizes {
			tr := &hist.Trainer{Dim: 2, Opts: hist.Options{MaxBuckets: b, Objective: objective}}
			m, err := tr.TrainHist(train)
			if err != nil {
				res.Rows = append(res.Rows, []string{name, strconv.Itoa(b), dash, dash, dash, dash})
				continue
			}
			trainEst := core.Estimates(m, train)
			testEst := core.Estimates(m, test)
			res.Rows = append(res.Rows, []string{
				name,
				strconv.Itoa(m.NumBuckets()),
				fmtF(metrics.RMS(trainEst, trainTruth)),
				fmtF(metrics.RMS(testEst, testTruth)),
				fmtF(metrics.LInf(trainEst, trainTruth)),
				fmtF(metrics.LInf(testEst, testTruth)),
			})
		}
	}
	res.Notes = append(res.Notes,
		"expected shape: each objective minimizes its own train metric; the L2-trained model also keeps test Linf under control, while the Linf-trained model gives no guarantee on (and is worse in) RMS — the paper's conclusion that L2 is the better objective")
	return []*Result{res}
}
