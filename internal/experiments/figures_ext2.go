package experiments

import (
	"strconv"
	"time"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

func init() {
	Register("ext_noise", extNoise)
	Register("ext_predtime", extPredTime)
}

// extNoise probes the agnostic side of the learning framework (the Remark
// after Theorem 2.1): training labels are corrupted with uniform noise of
// growing amplitude; agnostic learnability predicts graceful degradation
// toward the best achievable loss rather than collapse.
func extNoise(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	n := cfg.TrainSizes[len(cfg.TrainSizes)-1]
	train, test := g.TrainTest(spec, n, cfg.TestQueries)
	truth := workload.Truths(test)

	res := &Result{
		ID:     "ext_noise",
		Title:  "extension: label-noise robustness (agnostic learning), QuadHist, Power 2D, n=" + strconv.Itoa(n),
		Header: []string{"noise_amp", "train_rms_vs_clean_labels", "test_rms"},
	}
	r := rng.New(cfg.Seed + 999)
	for _, amp := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		noisy := make([]core.LabeledQuery, len(train))
		for i, z := range train {
			s := z.Sel + amp*(2*r.Float64()-1)
			noisy[i] = core.LabeledQuery{R: z.R, Sel: core.Clamp01(s)}
		}
		m, err := hist.New(2, cfg.BucketMultiplier*n).TrainHist(noisy)
		if err != nil {
			res.Rows = append(res.Rows, []string{fmtF(amp), dash, dash})
			continue
		}
		res.Rows = append(res.Rows, []string{
			fmtF(amp),
			fmtF(core.RMS(m, train)), // against the clean labels
			fmtF(metrics.RMS(core.Estimates(m, test), truth)),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: test error grows smoothly with the noise amplitude and stays well below it (squared loss averages zero-mean noise out) — no collapse, as agnostic learnability predicts")
	return []*Result{res}
}

// extPredTime measures prediction latency versus model complexity — the
// paper notes prediction time "is dictated by model complexity" (§4.1) —
// and the speedup of BVH-indexed evaluation over the flat scan for
// partition histograms.
func extPredTime(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	n := cfg.TrainSizes[len(cfg.TrainSizes)-1]
	train := g.Generate(spec, n)
	test := g.Generate(spec, cfg.TestQueries)

	res := &Result{
		ID:     "ext_predtime",
		Title:  "extension: prediction time vs model complexity (QuadHist, flat vs BVH-indexed)",
		Header: []string{"buckets", "flat_us_per_query", "bvh_us_per_query", "speedup"},
	}
	for _, b := range cfg.Fig9Buckets {
		if b < 16 { // too few buckets to time meaningfully
			continue
		}
		m, err := hist.New(2, b).TrainHist(train)
		if err != nil {
			continue
		}
		idx := bvh.Build(m.Buckets, m.Weights)
		flat := timePerQuery(func(r int) { m.Estimate(test[r].R) }, len(test))
		fast := timePerQuery(func(r int) { idx.Estimate(test[r].R) }, len(test))
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(m.NumBuckets()),
			fmtF(flat), fmtF(fast), fmtF(flat / fast),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: flat latency grows linearly with buckets; BVH latency grows sublinearly (only boundary buckets are touched), so the speedup widens with model size")
	return []*Result{res}
}

// timePerQuery returns microseconds per call, averaged over enough rounds
// to be stable. This is a latency microbenchmark: the clock reads are the
// measurement itself, which is why the determinism suppressions below are
// sound — no model output depends on them.
func timePerQuery(fn func(r int), nQueries int) float64 {
	rounds := 1
	for {
		start := time.Now() //selvet:ignore detrand query latency is the measured quantity of this figure
		for k := 0; k < rounds; k++ {
			for q := 0; q < nQueries; q++ {
				fn(q)
			}
		}
		elapsed := time.Since(start) //selvet:ignore detrand query latency is the measured quantity of this figure
		if elapsed > 50*time.Millisecond {
			return float64(elapsed.Microseconds()) / float64(rounds*nQueries)
		}
		rounds *= 4
	}
}
