// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 4 and Appendix B). Each runner synthesizes
// the dataset and workload the paper used (via the documented
// substitutions), trains the compared methods, and emits the same rows or
// series the paper reports, as plain-text tables.
//
// The runners are exposed through a registry keyed by experiment id
// (fig9, fig11, table1, …) used by cmd/selbench and by the benchmark
// harness at the repository root.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
	"repro/internal/workload"
)

// Config scales an experiment run. The paper's exact sizes are the Full
// preset; Default trades the largest training sizes for wall-clock sanity;
// Quick is the preset used by `go test -bench`.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Workers bounds the number of sweep points trained concurrently
	// (0 = the shared pool default, i.e. GOMAXPROCS). Every value
	// produces identical result rows; only wall-clock changes.
	Workers int
	// TrainSizes is the training-set sweep (paper: 50..2000).
	TrainSizes []int
	// TestQueries is the held-out test-set size.
	TestQueries int
	// DataSize is the synthetic dataset size (0 = per-dataset default).
	DataSize int
	// BucketMultiplier is the model-complexity convention (paper: 4×).
	BucketMultiplier int
	// IsomerMaxTrain mirrors the paper's cutoff: ISOMER rows with more
	// training queries than this print "-" ("could not finish training
	// in 30 minutes with 500 training queries").
	IsomerMaxTrain int
	// IsomerBudget bounds each ISOMER training run.
	IsomerBudget time.Duration
	// Dims is the dimensionality sweep of Figs 17–23.
	Dims []int
	// Fig9Buckets is the model-complexity sweep of Fig 9.
	Fig9Buckets []int
}

// Full reproduces the paper's exact sweep sizes.
func Full() Config {
	return Config{
		Seed:             1,
		TrainSizes:       []int{50, 200, 500, 1000, 2000},
		TestQueries:      500,
		BucketMultiplier: 4,
		IsomerMaxTrain:   200,
		IsomerBudget:     5 * time.Minute,
		Dims:             []int{2, 4, 6, 8, 10},
		Fig9Buckets:      []int{10, 50, 100, 500, 1000, 5000, 10000},
	}
}

// Default is Full with the heaviest tail trimmed for interactive use.
func Default() Config {
	c := Full()
	c.TrainSizes = []int{50, 200, 500, 1000}
	c.DataSize = 20000
	c.IsomerBudget = time.Minute
	c.Fig9Buckets = []int{10, 50, 100, 500, 1000, 5000}
	return c
}

// Quick is the preset for tests and testing.B benchmarks.
func Quick() Config {
	return Config{
		Seed:             1,
		TrainSizes:       []int{50, 100, 200, 400},
		TestQueries:      250,
		DataSize:         8000,
		BucketMultiplier: 4,
		IsomerMaxTrain:   100,
		IsomerBudget:     20 * time.Second,
		Dims:             []int{2, 4, 6, 8, 10},
		Fig9Buckets:      []int{10, 50, 100, 500, 1000},
	}
}

// Preset resolves a preset by name: quick, default, full.
func Preset(name string) (Config, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "default", "":
		return Default(), nil
	case "full":
		return Full(), nil
	}
	return Config{}, fmt.Errorf("experiments: unknown preset %q", name)
}

// Result is one rendered table or figure series.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// tableWriter latches the first write error so table emission can stay
// linear and report failure once at the end.
type tableWriter struct {
	w   io.Writer
	err error
}

func (tw *tableWriter) printf(format string, args ...any) {
	if tw.err == nil {
		_, tw.err = fmt.Fprintf(tw.w, format, args...)
	}
}

// Render writes the result as an aligned text table, returning the first
// write error.
func (r *Result) Render(w io.Writer) error {
	tw := &tableWriter{w: w}
	tw.printf("== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for j, h := range r.Header {
		widths[j] = len(h)
	}
	for _, row := range r.Rows {
		for j, cell := range row {
			if j < len(widths) && len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for j, cell := range cells {
			if j < len(widths) {
				parts[j] = fmt.Sprintf("%-*s", widths[j], cell)
			} else {
				parts[j] = cell
			}
		}
		tw.printf("%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		tw.printf("note: %s\n", n)
	}
	tw.printf("\n")
	return tw.err
}

// Runner executes one experiment under a config.
type Runner func(cfg Config) []*Result

// registry maps experiment ids to runners; populated in init() blocks of
// the per-figure files.
var registry = map[string]Runner{}

// Register adds a runner (called from init functions).
func Register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have: %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(cfg), nil
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// --- shared method plumbing ------------------------------------------------

// methodRun is the outcome of training+evaluating one method at one sweep
// point.
type methodRun struct {
	Name    string
	Buckets int
	TrainS  float64 // training wall-clock seconds
	RMS     float64
	QErr    metrics.QErrorSummary
	OK      bool
	Est     []float64
}

// newGenerator builds the dataset projection and workload generator for a
// named dataset, projected to dim attributes (numeric-first projection for
// non-box query classes, where categorical bands make no sense).
func newGenerator(cfg Config, dsName string, dim int, class workload.Class) *workload.Generator {
	ds := dataset.ByName(dsName, cfg.DataSize, cfg.Seed)
	var proj *dataset.Dataset
	if class == workload.OrthogonalRange {
		// The paper projects onto a random attribute subset; we use the
		// first dim attributes for reproducibility across runs.
		dims := make([]int, dim)
		for i := range dims {
			dims[i] = i
		}
		proj = ds.Project(dims)
	} else {
		proj = ds.NumericProjection(dim)
	}
	return workload.NewGenerator(proj, cfg.Seed+uint64(dim)*1009)
}

// trainEval trains one method and evaluates it on the test set. The two
// clock reads below are the one sanctioned nondeterminism in this
// package: training wall-clock is itself a reported quantity (the
// paper's training-cost tables), it feeds no control flow, and the
// result rows the determinism tests compare exclude it.
func trainEval(tr core.Trainer, train, test []core.LabeledQuery, minSel float64) methodRun {
	start := time.Now() //selvet:ignore detrand training wall-clock is the measured quantity of the timing tables
	m, err := tr.Train(train)
	elapsed := time.Since(start).Seconds() //selvet:ignore detrand training wall-clock is the measured quantity of the timing tables
	if err != nil {
		return methodRun{Name: tr.Name(), TrainS: elapsed}
	}
	est := core.Estimates(m, test)
	truth := workload.Truths(test)
	return methodRun{
		Name:    tr.Name(),
		Buckets: m.NumBuckets(),
		TrainS:  elapsed,
		RMS:     metrics.RMS(est, truth),
		QErr:    metrics.SummarizeQErrors(est, truth, minSel),
		OK:      true,
		Est:     est,
	}
}

// sweepPoint is one (training set, trainer) job of a sweep.
type sweepPoint struct {
	train   []core.LabeledQuery
	test    []core.LabeledQuery
	minSel  float64
	trainer core.Trainer
}

// runSweep trains and evaluates every sweep point concurrently on the
// shared worker pool (bounded by cfg.Workers; 0 = pool default) and
// returns the outcomes in point order. The points are built sequentially
// by the caller — so every workload-generator stream is consumed in the
// same order as a serial run — and each job is pure (its trainer owns any
// random state), so row assembly from the ordered slice is identical for
// every worker count.
func runSweep(cfg Config, points []sweepPoint) []methodRun {
	return parallel.Map(len(points), cfg.Workers, func(i int) methodRun {
		p := points[i]
		return trainEval(p.trainer, p.train, p.test, p.minSel)
	})
}

// standardTrainers returns the paper's compared methods for dimension dim
// and training size n under the 4× bucket convention. includeIsomer is
// false beyond the ISOMER cutoff.
func standardTrainers(cfg Config, dim, n int, includeIsomer bool) []core.Trainer {
	k := cfg.BucketMultiplier * n
	ts := []core.Trainer{}
	if includeIsomer && n <= cfg.IsomerMaxTrain {
		ts = append(ts, &isomer.Trainer{Dim: dim, Opts: isomer.Options{Budget: cfg.IsomerBudget}})
	}
	ts = append(ts,
		quicksel.New(dim, cfg.Seed+7),
		hist.New(dim, k),
		ptshist.New(dim, k, cfg.Seed+13),
	)
	return ts
}

// estimateAll evaluates a model on every sample.
func estimateAll(m core.Model, samples []core.LabeledQuery) []float64 {
	return core.Estimates(m, samples)
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// fmtSecs renders seconds.
func fmtSecs(v float64) string { return fmt.Sprintf("%.3f", v) }

// dash is the paper's marker for cut-off rows.
const dash = "-"
