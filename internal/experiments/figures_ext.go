package experiments

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gmm"
	"repro/internal/ptshist"
	"repro/internal/workload"
)

func init() {
	Register("ext_disc", extDisc)
	Register("ext_gmm", extGMM)
	Register("ext_semialg", extSemiAlg)
}

// extSemiAlg validates learnability for the general semi-algebraic family
// T_{d,b,Δ} (Section 2.2, Figure 3): annulus-with-parabola-cut queries over
// Power 2D, learned by PTSHIST from membership alone.
func extSemiAlg(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.AnnulusQuery, Centers: workload.DataDriven}
	test := g.Generate(spec, cfg.TestQueries)
	minSel := 1.0 / float64(g.Dataset().Len())

	res := &Result{
		ID:     "ext_semialg",
		Title:  "extension: semi-algebraic annulus queries (T_{2,3,2}, Figure 3), PtsHist (Power 2D)",
		Header: []string{"train_n", "buckets", "rms", "q50", "q99"},
	}
	points := []sweepPoint{}
	for _, n := range cfg.TrainSizes {
		train := g.Generate(spec, n)
		points = append(points, sweepPoint{
			train: train, test: test, minSel: minSel,
			trainer: ptshist.New(2, cfg.BucketMultiplier*n, cfg.Seed+13),
		})
	}
	for k, run := range runSweep(cfg, points) {
		n := cfg.TrainSizes[k]
		if !run.OK {
			res.Rows = append(res.Rows, []string{strconv.Itoa(n), dash, dash, dash, dash})
			continue
		}
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(n), strconv.Itoa(run.Buckets),
			fmtF(run.RMS), fmtF(run.QErr.P50), fmtF(run.QErr.P99),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: error decreases with training size — T_{d,b,Δ} has constant VC dimension, so Theorem 2.1 applies unchanged")
	return []*Result{res}
}

// extDisc is an extension experiment beyond the paper's evaluation: it
// validates the Section 2.2 claim that the semi-algebraic disc-intersection
// range space Σ_● has learnable selectivity functions, by training PTSHIST
// (whose point buckets work for any range with a membership test) on
// disc-intersection workloads over a synthetic disc dataset.
func extDisc(cfg Config) []*Result {
	ds := dataset.Discs(maxInt(cfg.DataSize, 4000), cfg.Seed)
	g := workload.NewGenerator(ds, cfg.Seed+17)
	spec := workload.Spec{Class: workload.DiscIntersect, Centers: workload.DataDriven}
	test := g.Generate(spec, cfg.TestQueries)
	minSel := 1.0 / float64(ds.Len())

	res := &Result{
		ID:     "ext_disc",
		Title:  "extension: disc-intersection (semi-algebraic) queries, PtsHist on the (cx,cy,r) encoding",
		Header: []string{"train_n", "buckets", "rms", "q50", "q99"},
	}
	points := []sweepPoint{}
	for _, n := range cfg.TrainSizes {
		train := g.Generate(spec, n)
		points = append(points, sweepPoint{
			train: train, test: test, minSel: minSel,
			trainer: ptshist.New(3, cfg.BucketMultiplier*n, cfg.Seed+13),
		})
	}
	for k, run := range runSweep(cfg, points) {
		n := cfg.TrainSizes[k]
		if !run.OK {
			res.Rows = append(res.Rows, []string{strconv.Itoa(n), dash, dash, dash, dash})
			continue
		}
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(n), strconv.Itoa(run.Buckets),
			fmtF(run.RMS), fmtF(run.QErr.P50), fmtF(run.QErr.P99),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: error decreases with training size — the VC dimension of the lifted semi-algebraic ranges is finite (Theorem 2.1), so the class is learnable like the three headline classes")
	return []*Result{res}
}

// extGMM is an extension experiment for the paper's future-work model
// family: a Gaussian mixture fit from query feedback, compared against
// PTSHIST at matched model sizes (a GMM component carries d+1 parameters
// vs a point bucket's d, so the comparison slightly favors the mixture).
func extGMM(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	test := g.Generate(spec, cfg.TestQueries)
	minSel := 1.0 / float64(g.Dataset().Len())

	res := &Result{
		ID:     "ext_gmm",
		Title:  "extension: Gaussian-mixture model (future work of Section 6) vs PtsHist (Power 2D Data-driven)",
		Header: []string{"train_n", "method", "components", "rms", "q99"},
	}
	points := []sweepPoint{}
	for _, n := range cfg.TrainSizes {
		train := g.Generate(spec, n)
		k := maxInt(n/4, 8) // mixtures need far fewer components than point buckets
		for _, tr := range []core.Trainer{
			gmm.New(2, k, cfg.Seed+13),
			ptshist.New(2, cfg.BucketMultiplier*n, cfg.Seed+13),
		} {
			points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: tr})
		}
	}
	for k, run := range runSweep(cfg, points) {
		n := cfg.TrainSizes[k/2]
		if !run.OK {
			res.Rows = append(res.Rows, []string{strconv.Itoa(n), run.Name, dash, dash, dash})
			continue
		}
		res.Rows = append(res.Rows, []string{
			strconv.Itoa(n), run.Name, strconv.Itoa(run.Buckets),
			fmtF(run.RMS), fmtF(run.QErr.P99),
		})
	}
	res.Notes = append(res.Notes,
		"expected shape: the mixture reaches comparable RMS with an order of magnitude fewer buckets, at the cost of a heuristic (non-optimal) component placement")
	return []*Result{res}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
