package experiments

import (
	"testing"
)

// TestFig9WorkerCountInvariance is the determinism regression test for the
// parallel sweep engine: under the Quick preset, running fig9 with one
// worker and with eight must produce identical result rows. (Training-time
// columns would differ run to run, but fig9 reports only sizes and RMS
// values, which the engine guarantees bit-identical for any worker count.)
func TestFig9WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("Quick-preset run is too heavy for -short")
	}
	serial := Quick()
	serial.Workers = 1
	par := Quick()
	par.Workers = 8

	rs, err := Run("fig9", serial)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run("fig9", par)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rp) {
		t.Fatalf("result count differs: %d vs %d", len(rs), len(rp))
	}
	for ri := range rs {
		a, b := rs[ri], rp[ri]
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row count %d (workers=1) vs %d (workers=8)", a.ID, len(a.Rows), len(b.Rows))
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s row %d col %d: %q (workers=1) vs %q (workers=8)",
						a.ID, i, j, a.Rows[i][j], b.Rows[i][j])
				}
			}
		}
	}
}
