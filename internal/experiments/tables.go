package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	Register("table1", func(cfg Config) []*Result {
		return qErrorTable(cfg, "table1", "power", []workload.Centers{
			workload.DataDriven, workload.Random, workload.Gaussian,
		}, true)
	})
	Register("table3", func(cfg Config) []*Result {
		return qErrorTable(cfg, "table3", "forest", []workload.Centers{
			workload.DataDriven, workload.Random, workload.Gaussian,
		}, false)
	})
	Register("table4", func(cfg Config) []*Result {
		return qErrorTable(cfg, "table4", "dmv", []workload.Centers{workload.DataDriven}, false)
	})
	Register("table5", func(cfg Config) []*Result {
		return qErrorTable(cfg, "table5", "census", []workload.Centers{workload.DataDriven}, false)
	})
}

// qErrorTable reproduces the Q-error tables (Tables 1, 3, 4, 5): for each
// workload and training size, the 50th/95th/99th/max Q-error of every
// method on held-out queries. The Power table additionally reports the
// Random workload restricted to non-empty queries (the paper's fourth
// block).
func qErrorTable(cfg Config, id, dsName string, centerKinds []workload.Centers, withNonEmpty bool) []*Result {
	// Tables 4 and 5 use the full mixed categorical/numeric schema in 2D
	// projections; the paper projects a random attribute subset. We use
	// the first two attributes (mixed types for census/dmv).
	g := newGenerator(cfg, dsName, 2, workload.OrthogonalRange)
	minSel := 1.0 / float64(g.Dataset().Len())
	res := &Result{
		ID:     id,
		Title:  fmt.Sprintf("Q-error over %s (orthogonal ranges, 2 attributes)", dsName),
		Header: []string{"workload", "train_n", "method", "50th", "95th", "99th", "max"},
	}
	emit := func(workloadName string, n int, name string, ok bool, q metrics.QErrorSummary) {
		if !ok {
			res.Rows = append(res.Rows, []string{workloadName, strconv.Itoa(n), name, dash, dash, dash, dash})
			return
		}
		res.Rows = append(res.Rows, []string{
			workloadName, strconv.Itoa(n), name,
			fmtF(q.P50), fmtF(q.P95), fmtF(q.P99), fmtF(q.Max),
		})
	}
	// Build every (workload, training size, method) point sequentially —
	// keeping the generator streams in serial order — then train them all
	// concurrently and assemble rows from the ordered outcomes.
	points := []sweepPoint{}
	truths := make([][]float64, len(centerKinds))
	counts := make([][]int, len(centerKinds))
	for ci, centers := range centerKinds {
		spec := workload.Spec{Class: workload.OrthogonalRange, Centers: centers}
		test := g.Generate(spec, cfg.TestQueries)
		truths[ci] = workload.Truths(test)
		counts[ci] = make([]int, len(cfg.TrainSizes))
		for ni, n := range cfg.TrainSizes {
			train := g.Generate(spec, n)
			trainers := standardTrainers(cfg, 2, n, true)
			counts[ci][ni] = len(trainers)
			for _, tr := range trainers {
				points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: tr})
			}
		}
	}
	runs := runSweep(cfg, points)
	k := 0
	for ci, centers := range centerKinds {
		for ni, n := range cfg.TrainSizes {
			for t := 0; t < counts[ci][ni]; t++ {
				run := runs[k]
				k++
				emit(centers.String(), n, run.Name, run.OK, run.QErr)
				if withNonEmpty && centers == workload.Random && run.OK {
					fe, ft := metrics.FilterNonEmpty(run.Est, truths[ci])
					emit("random-nonempty", n, run.Name,
						len(ft) > 0, metrics.SummarizeQErrors(fe, ft, minSel))
				}
			}
			if n > cfg.IsomerMaxTrain {
				emit(centers.String(), n, "Isomer", false, metrics.QErrorSummary{})
				if withNonEmpty && centers == workload.Random {
					emit("random-nonempty", n, "Isomer", false, metrics.QErrorSummary{})
				}
			}
		}
	}
	res.Notes = append(res.Notes,
		"expected shape: Q-errors shrink with training size; QuadHist/PtsHist beat QuickSel on tail (99th) Q-error, especially on the Random workload; Isomer rows beyond the cutoff print '-'")
	return []*Result{res}
}
