package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func init() {
	Register("fig9", fig9)
	Register("fig10_12", func(cfg Config) []*Result {
		return methodSweep(cfg, "power", workload.DataDriven, "fig10", "fig11", "fig12",
			"Power 2D Data-driven", false)
	})
	Register("fig13", func(cfg Config) []*Result {
		return methodSweep(cfg, "power", workload.Random, "fig31", "fig13", "fig33",
			"Power 2D Random", false)
	})
	Register("fig14", func(cfg Config) []*Result {
		return methodSweep(cfg, "power", workload.Random, "", "fig14", "",
			"Power 2D Random (non-empty test queries)", true)
	})
	Register("fig15", func(cfg Config) []*Result {
		return methodSweep(cfg, "power", workload.Gaussian, "fig34", "fig15", "fig36",
			"Power 2D Gaussian", false)
	})
	Register("fig16", fig16)
	// Appendix B panels for Forest (Figs 37–45) reuse the same sweep.
	Register("figB_forest_dd", func(cfg Config) []*Result {
		return methodSweep(cfg, "forest", workload.DataDriven, "fig37", "fig38", "fig39",
			"Forest 2D Data-driven", false)
	})
	Register("figB_forest_rnd", func(cfg Config) []*Result {
		return methodSweep(cfg, "forest", workload.Random, "fig40", "fig41", "fig42",
			"Forest 2D Random", false)
	})
	Register("figB_forest_gauss", func(cfg Config) []*Result {
		return methodSweep(cfg, "forest", workload.Gaussian, "fig43", "fig44", "fig45",
			"Forest 2D Gaussian", false)
	})
	// Appendix B.3 panels (Figs 46–51): DMV and Census complexity / RMS /
	// training time under Data-driven workloads on the mixed
	// categorical/numeric schemas.
	Register("figB_dmv", func(cfg Config) []*Result {
		return methodSweep(cfg, "dmv", workload.DataDriven, "fig46", "fig47", "fig48",
			"DMV 2 attributes Data-driven", false)
	})
	Register("figB_census", func(cfg Config) []*Result {
		return methodSweep(cfg, "census", workload.DataDriven, "fig49", "fig50", "fig51",
			"Census 2 attributes Data-driven", false)
	})
}

// fig9 reproduces Figure 9: QUADHIST RMS error vs model complexity, one
// series per training-set size, Power 2D Data-driven.
func fig9(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	test := g.Generate(spec, cfg.TestQueries)
	minSel := 1.0 / float64(g.Dataset().Len())

	res := &Result{
		ID:     "fig9",
		Title:  "RMS error vs model complexity (QuadHist, Power 2D Data-driven)",
		Header: []string{"train_n", "buckets", "rms"},
	}
	points := []sweepPoint{}
	for _, n := range cfg.TrainSizes {
		train := g.Generate(spec, n)
		for _, b := range cfg.Fig9Buckets {
			points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: hist.New(2, b)})
		}
	}
	runs := runSweep(cfg, points)
	k := 0
	for _, n := range cfg.TrainSizes {
		for _, b := range cfg.Fig9Buckets {
			run := runs[k]
			k++
			if !run.OK {
				res.Rows = append(res.Rows, []string{strconv.Itoa(n), strconv.Itoa(b), dash})
				continue
			}
			res.Rows = append(res.Rows, []string{
				strconv.Itoa(n), strconv.Itoa(run.Buckets), fmtF(run.RMS),
			})
		}
	}
	res.Notes = append(res.Notes,
		"expected shape: error decreases with buckets then flattens; more training queries push the curve toward the origin; the smallest training set overfits at the largest model size")
	return []*Result{res}
}

// methodSweep produces the model-complexity / RMS / training-time triple of
// figures (e.g. 10/11/12) for one dataset+workload: all four methods across
// the training-size sweep.
func methodSweep(cfg Config, dsName string, centers workload.Centers, idBuckets, idRMS, idTime, title string, nonEmptyOnly bool) []*Result {
	g := newGenerator(cfg, dsName, 2, workload.OrthogonalRange)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: centers}
	test := g.Generate(spec, cfg.TestQueries)
	minSel := 1.0 / float64(g.Dataset().Len())

	if nonEmptyOnly {
		filtered := test[:0:0]
		for _, z := range test {
			if z.Sel > 0 {
				filtered = append(filtered, z)
			}
		}
		test = filtered
	}

	resB := &Result{ID: idBuckets, Title: "model complexity vs training size (" + title + ")",
		Header: []string{"train_n", "method", "buckets"}}
	resR := &Result{ID: idRMS, Title: "RMS error vs training size (" + title + ")",
		Header: []string{"train_n", "method", "rms"}}
	resT := &Result{ID: idTime, Title: "training time vs training size (" + title + ")",
		Header: []string{"train_n", "method", "seconds"}}

	points := []sweepPoint{}
	counts := make([]int, len(cfg.TrainSizes))
	for ni, n := range cfg.TrainSizes {
		train := g.Generate(spec, n)
		trainers := standardTrainers(cfg, 2, n, true)
		counts[ni] = len(trainers)
		for _, tr := range trainers {
			points = append(points, sweepPoint{train: train, test: test, minSel: minSel, trainer: tr})
		}
	}
	runs := runSweep(cfg, points)
	k := 0
	for ni, n := range cfg.TrainSizes {
		for t := 0; t < counts[ni]; t++ {
			run := runs[k]
			k++
			if !run.OK {
				resB.Rows = append(resB.Rows, []string{strconv.Itoa(n), run.Name, dash})
				resR.Rows = append(resR.Rows, []string{strconv.Itoa(n), run.Name, dash})
				resT.Rows = append(resT.Rows, []string{strconv.Itoa(n), run.Name, dash})
				continue
			}
			resB.Rows = append(resB.Rows, []string{strconv.Itoa(n), run.Name, strconv.Itoa(run.Buckets)})
			resR.Rows = append(resR.Rows, []string{strconv.Itoa(n), run.Name, fmtF(run.RMS)})
			resT.Rows = append(resT.Rows, []string{strconv.Itoa(n), run.Name, fmtSecs(run.TrainS)})
		}
		// ISOMER beyond its cutoff: explicit dash rows, as in the paper.
		if n > cfg.IsomerMaxTrain {
			resB.Rows = append(resB.Rows, []string{strconv.Itoa(n), "Isomer", dash})
			resR.Rows = append(resR.Rows, []string{strconv.Itoa(n), "Isomer", dash})
			resT.Rows = append(resT.Rows, []string{strconv.Itoa(n), "Isomer", dash})
		}
	}
	resR.Notes = append(resR.Notes,
		"expected shape: all methods improve with training size; Isomer most accurate but cut off at larger sizes; QuadHist/PtsHist comparable to QuickSel")
	resB.Notes = append(resB.Notes,
		"expected shape: QuadHist/PtsHist/QuickSel track the 4x-buckets convention; Isomer uses a much larger multiple")
	out := []*Result{}
	if idBuckets != "" {
		out = append(out, resB)
	}
	if idRMS != "" {
		out = append(out, resR)
	}
	if idTime != "" {
		out = append(out, resT)
	}
	return out
}

// fig16 reproduces Figure 16: the train/test Gaussian-shift heat map of
// QUADHIST RMS error (Section 4.3).
func fig16(cfg Config) []*Result {
	g := newGenerator(cfg, "power", 2, workload.OrthogonalRange)
	means := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7}
	const shiftStd = 0.182 // √0.033, the covariance of Section 4.3
	n := cfg.TrainSizes[len(cfg.TrainSizes)-1]

	// Side lengths capped at 0.3: with the paper's full-width sides every
	// workload covers most of the (smoother, synthetic) data region and
	// the train/test mismatch would be invisible; narrower queries keep
	// each shifted workload genuinely local, which is the phenomenon
	// Section 4.3 studies.
	specFor := func(mean float64) workload.Spec {
		return workload.Spec{
			Class:     workload.OrthogonalRange,
			Centers:   workload.Gaussian,
			GaussMean: geom.Point{mean, mean},
			GaussStd:  shiftStd,
			MaxSide:   0.3,
		}
	}
	// Train one model per column mean, evaluate on one test set per row.
	type modelCol struct {
		mean  float64
		model *hist.Model
	}
	cols := make([]modelCol, 0, len(means))
	for _, m := range means {
		train := g.Generate(specFor(m), n)
		mdl, err := hist.New(2, cfg.BucketMultiplier*n).TrainHist(train)
		if err != nil {
			continue
		}
		cols = append(cols, modelCol{mean: m, model: mdl})
	}
	res := &Result{
		ID:     "fig16",
		Title:  fmt.Sprintf("QuadHist RMS heat map: train mean (cols) vs test mean (rows), Power 2D, n=%d", n),
		Header: append([]string{"test\\train"}, meansHeader(means)...),
	}
	for _, testMean := range means {
		test := g.Generate(specFor(testMean), cfg.TestQueries)
		truth := workload.Truths(test)
		row := []string{fmt.Sprintf("(%.1f,%.1f)", testMean, testMean)}
		for _, c := range cols {
			rms := metrics.RMS(estimateAll(c.model, test), truth)
			row = append(row, fmtF(rms))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"expected shape (Section 4.3): fixing a train column, error grows as the test mean shifts away; fixing a test row, error falls as the train mean approaches it; diagonal (near-)minimal per row where the data supports the workload — on skewed Power data, workloads centered off the mass learn less even in-distribution, as in the paper")
	return []*Result{res}
}

func meansHeader(means []float64) []string {
	out := make([]string, len(means))
	for i, m := range means {
		out[i] = fmt.Sprintf("(%.1f,%.1f)", m, m)
	}
	return out
}
