package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// smoke returns a tiny configuration that exercises every code path of the
// runners in seconds.
func smoke() Config {
	return Config{
		Seed:             1,
		TrainSizes:       []int{20, 40},
		TestQueries:      60,
		DataSize:         2000,
		BucketMultiplier: 4,
		IsomerMaxTrain:   20,
		IsomerBudget:     20 * time.Second,
		Dims:             []int{2, 3},
		Fig9Buckets:      []int{10, 40},
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"quick", "default", "full", ""} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
		if len(cfg.TrainSizes) == 0 || cfg.TestQueries == 0 || cfg.BucketMultiplier == 0 {
			t.Fatalf("preset %q incomplete: %+v", name, cfg)
		}
	}
	if _, err := Preset("bogus"); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have a registered runner.
	want := []string{
		"fig9", "fig10_12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18_19", "fig20_21", "fig22_23", "fig24_29",
		"table1", "table3", "table4", "table5",
		"figB_forest_dd", "figB_forest_rnd", "figB_forest_gauss",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", smoke()); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

// runAndCheck executes an experiment and validates basic result structure.
func runAndCheck(t *testing.T, id string, minRows int) []*Result {
	t.Helper()
	results, err := Run(id, smoke())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(results) == 0 {
		t.Fatalf("%s: no results", id)
	}
	for _, r := range results {
		if len(r.Rows) < minRows {
			t.Fatalf("%s/%s: only %d rows", id, r.ID, len(r.Rows))
		}
		for _, row := range r.Rows {
			if len(row) != len(r.Header) {
				t.Fatalf("%s/%s: ragged row %v vs header %v", id, r.ID, row, r.Header)
			}
		}
		var buf bytes.Buffer
		r.Render(&buf)
		if !strings.Contains(buf.String(), r.ID) {
			t.Fatalf("%s: render missing id", id)
		}
	}
	return results
}

func TestFig9Smoke(t *testing.T) {
	results := runAndCheck(t, "fig9", 4)
	// Error should broadly decrease from the smallest model/training to
	// the largest.
	rows := results[0].Rows
	first := parseF(t, rows[0][2])
	last := parseF(t, rows[len(rows)-1][2])
	if last >= first {
		t.Logf("warning: fig9 last rms %v !< first %v (tiny smoke config)", last, first)
	}
}

func TestFig10to12Smoke(t *testing.T) {
	results := runAndCheck(t, "fig10_12", 4)
	if len(results) != 3 {
		t.Fatalf("fig10_12 produced %d results, want 3", len(results))
	}
	// Bucket table must include an Isomer row with a large bucket count
	// at the small size and dash rows at the large size.
	foundIsomer, foundDash := false, false
	for _, row := range results[0].Rows {
		if row[1] == "Isomer" {
			if row[2] == dash {
				foundDash = true
			} else {
				foundIsomer = true
			}
		}
	}
	if !foundIsomer || !foundDash {
		t.Fatalf("isomer rows: trained=%v cutoff-dash=%v", foundIsomer, foundDash)
	}
}

func TestFig13to15Smoke(t *testing.T) {
	runAndCheck(t, "fig13", 4)
	runAndCheck(t, "fig14", 4)
	runAndCheck(t, "fig15", 4)
}

func TestFig16Smoke(t *testing.T) {
	results := runAndCheck(t, "fig16", 6)
	r := results[0]
	if len(r.Header) != 7 { // test\train + 6 means
		t.Fatalf("fig16 header %v", r.Header)
	}
}

func TestFig17Smoke(t *testing.T) {
	results := runAndCheck(t, "fig17", 4)
	// Rows exist for every (dim, n) pair.
	if len(results[0].Rows) != len(smoke().Dims)*len(smoke().TrainSizes) {
		t.Fatalf("fig17 rows = %d", len(results[0].Rows))
	}
}

func TestFig18to19Smoke(t *testing.T) {
	results := runAndCheck(t, "fig18_19", 4)
	if len(results) != 2 {
		t.Fatalf("fig18_19 produced %d results", len(results))
	}
}

func TestFig20to23Smoke(t *testing.T) {
	runAndCheck(t, "fig20_21", 4)
	runAndCheck(t, "fig22_23", 4)
}

func TestFig24to29Smoke(t *testing.T) {
	results := runAndCheck(t, "fig24_29", 4)
	r := results[0]
	// Both objectives present.
	var l2, linf bool
	for _, row := range r.Rows {
		switch row[0] {
		case "L2":
			l2 = true
		case "Linf":
			linf = true
		}
	}
	if !l2 || !linf {
		t.Fatalf("objectives present: L2=%v Linf=%v", l2, linf)
	}
}

func TestTable1Smoke(t *testing.T) {
	results := runAndCheck(t, "table1", 8)
	// Must include the non-empty random block.
	found := false
	for _, row := range results[0].Rows {
		if row[0] == "random-nonempty" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("table1 missing random-nonempty block")
	}
}

func TestTables3to5Smoke(t *testing.T) {
	runAndCheck(t, "table3", 8)
	runAndCheck(t, "table4", 4)
	runAndCheck(t, "table5", 4)
}

func TestForestAppendixSmoke(t *testing.T) {
	runAndCheck(t, "figB_forest_dd", 4)
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestExtensionExperiments(t *testing.T) {
	runAndCheck(t, "ext_disc", 2)
	results := runAndCheck(t, "ext_gmm", 4)
	var sawGMM bool
	for _, row := range results[0].Rows {
		if row[1] == "GaussMix" {
			sawGMM = true
		}
	}
	if !sawGMM {
		t.Fatal("ext_gmm missing GaussMix rows")
	}
}

func TestOptimizerExperiment(t *testing.T) {
	results := runAndCheck(t, "ext_optimizer", 6)
	rows := results[0].Rows
	if rows[0][1] != "uniformity" || rows[1][1] != "oracle" {
		t.Fatalf("baseline rows missing: %v %v", rows[0], rows[1])
	}
	if parseF(t, rows[1][3]) != 0 {
		t.Fatalf("oracle regret = %v", rows[1][3])
	}
}

func TestSemiAlgExperiment(t *testing.T) {
	runAndCheck(t, "ext_semialg", 2)
}

func TestNoiseExperiment(t *testing.T) {
	results := runAndCheck(t, "ext_noise", 3)
	rows := results[0].Rows
	clean := parseF(t, rows[0][2])
	noisiest := parseF(t, rows[len(rows)-1][2])
	if noisiest <= clean {
		t.Fatalf("noise did not increase test error: %v vs %v", noisiest, clean)
	}
	if noisiest > 0.2 {
		t.Fatalf("noise collapsed the model: test rms %v", noisiest)
	}
}

func TestPredTimeExperiment(t *testing.T) {
	results := runAndCheck(t, "ext_predtime", 1)
	for _, row := range results[0].Rows {
		if parseF(t, row[1]) <= 0 || parseF(t, row[2]) <= 0 {
			t.Fatalf("non-positive latency row %v", row)
		}
	}
}

func TestCrossingExperiment(t *testing.T) {
	results := runAndCheck(t, "ext_crossing", 3)
	rows := results[0].Rows
	// Greedy ≤ identity at the largest k, and sublinear growth overall.
	last := rows[len(rows)-1]
	if parseF(t, last[2]) > parseF(t, last[1]) {
		t.Fatalf("greedy ordering worse than identity at k=%s: %v > %v", last[0], last[2], last[1])
	}
}

func TestTheoryExperiment(t *testing.T) {
	results := runAndCheck(t, "ext_theory", 2)
	rows := results[0].Rows
	for _, row := range rows {
		or := parseF(t, row[1])
		hs := parseF(t, row[2])
		if hs >= or {
			t.Fatalf("halfspace complexity %v not below orthogonal %v at d=%s", hs, or, row[0])
		}
	}
}

func TestDMVCensusAppendixPanels(t *testing.T) {
	for _, id := range []string{"figB_dmv", "figB_census"} {
		results := runAndCheck(t, id, 4)
		if len(results) != 3 {
			t.Fatalf("%s produced %d results, want 3", id, len(results))
		}
	}
}

// Render produces aligned columns: every row line has the header's column
// positions (golden-format check).
func TestRenderAlignment(t *testing.T) {
	r := &Result{
		ID:     "golden",
		Title:  "alignment check",
		Header: []string{"a", "long_column", "c"},
		Rows: [][]string{
			{"1", "x", "0.5"},
			{"22", "yyyy", "0.25"},
		},
		Notes: []string{"note line"},
	}
	var buf bytes.Buffer
	r.Render(&buf)
	want := "== golden: alignment check ==\n" +
		"a   long_column  c\n" +
		"1   x            0.5\n" +
		"22  yyyy         0.25\n" +
		"note: note line\n\n"
	if got := buf.String(); got != want {
		t.Fatalf("render mismatch:\n got: %q\nwant: %q", got, want)
	}
}
