// Package parallel is the deterministic work-scheduling engine shared by
// the training/evaluation hot paths (design-matrix assembly, the linalg
// kernels, and the experiment sweep runners).
//
// Design contract: parallel execution must be byte-identical to serial
// execution. Three rules enforce it:
//
//  1. Ordered reduction. Work items are addressed by index and every
//     result is written to its own slot (Map) or its own disjoint output
//     region (ForEach). No result ever depends on which worker ran it or
//     in what order items completed.
//  2. Per-task seeding. Randomized tasks never share an RNG stream;
//     each derives its own seed from the run's base seed and a stable
//     task index via DeriveSeed, so the schedule cannot leak into the
//     random choices.
//  3. Bounded pool. The process-wide fan-out is limited by a token
//     bucket sized by runtime.GOMAXPROCS(0) (which defaults to
//     runtime.NumCPU). Nested parallel regions (an experiment sweep that
//     calls a parallel matrix kernel) degrade gracefully: inner regions
//     that find the bucket empty simply run on the goroutines they
//     already have — never deadlocking and never oversubscribing the
//     machine quadratically.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide worker count used when a caller
// passes 0 ("auto"). 0 itself means GOMAXPROCS. Set from the -workers
// flag of cmd/selbench and cmd/seltrain.
var defaultWorkers atomic.Int32

// SetDefault sets the process-wide default worker count used by
// Workers(0). n <= 0 restores the automatic GOMAXPROCS sizing.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Workers resolves a requested worker count: n > 0 is used as given;
// n <= 0 resolves to the process default (SetDefault), which in turn
// defaults to runtime.GOMAXPROCS(0). The result is always ≥ 1.
func Workers(n int) int {
	if n <= 0 {
		n = int(defaultWorkers.Load())
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Pool utilization counters, exported through Stats for the obs metrics
// bridge. They are observational only — nothing in the scheduler reads
// them back — so the determinism contract is untouched.
var (
	statRegions   atomic.Int64 // parallel regions entered (n > 0)
	statSerial    atomic.Int64 // regions that ran serially (1 worker)
	statSpawned   atomic.Int64 // extra worker goroutines spawned
	statSaturated atomic.Int64 // regions cut short by an empty token bucket
)

// Stats is a snapshot of the pool's lifetime utilization counters.
type Stats struct {
	// Regions is the number of parallel regions entered.
	Regions int64
	// Serial is how many of those ran single-threaded (small n or
	// workers=1).
	Serial int64
	// Spawned is the total number of extra worker goroutines started.
	Spawned int64
	// Saturated counts regions that stopped spawning because the
	// process-wide token bucket was empty (nested parallelism).
	Saturated int64
}

// ReadStats returns the current pool utilization counters.
func ReadStats() Stats {
	return Stats{
		Regions:   statRegions.Load(),
		Serial:    statSerial.Load(),
		Spawned:   statSpawned.Load(),
		Saturated: statSaturated.Load(),
	}
}

// tokens bounds the number of extra worker goroutines alive at any moment
// across every parallel region in the process. The caller's goroutine
// always participates for free, so total concurrency is ≤ 2·GOMAXPROCS
// in the worst nesting case and ≈ GOMAXPROCS in steady state.
var tokens = make(chan struct{}, maxInt(1, runtime.GOMAXPROCS(0)-1))

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ForEach runs fn(i) exactly once for every i in [0, n), using up to
// `workers` goroutines (0 = auto, see Workers). Work is claimed in
// contiguous chunks from an atomic counter, so load imbalance between
// items is absorbed dynamically while preserving cache locality; outputs
// written to disjoint, index-addressed locations are deterministic
// regardless of the worker count.
func ForEach(n, workers int, fn func(i int)) {
	forEachChunked(n, workers, 0, fn)
}

// ForEachChunk is ForEach with an explicit claim-chunk size (0 = auto).
// Kernels that stream over matrix rows pass a larger chunk to keep each
// worker on contiguous cache lines; heterogeneous task lists (experiment
// sweeps) pass 1 so a slow item cannot strand cheap ones behind it.
func ForEachChunk(n, workers, chunk int, fn func(i int)) {
	forEachChunked(n, workers, chunk, fn)
}

func forEachChunked(n, workers, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	statRegions.Add(1)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		statSerial.Add(1)
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if chunk <= 0 {
		// ~8 claims per worker balances dealing overhead vs imbalance.
		chunk = maxInt(1, n/(8*workers))
	}
	var next atomic.Int64
	run := func() {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		// Non-blocking acquire: if the process is already saturated
		// (e.g. we are a kernel nested inside a sweep worker), run the
		// remaining work on the goroutines that exist instead of piling
		// on more. This cannot deadlock because no one ever blocks on
		// the bucket.
		select {
		case tokens <- struct{}{}:
		default:
			statSaturated.Add(1)
			w = workers // bucket empty: stop spawning
			continue
		}
		statSpawned.Add(1)
		wg.Add(1)
		go func() {
			defer func() {
				<-tokens
				wg.Done()
			}()
			run()
		}()
	}
	run() // the caller is always worker 0
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results in index order. Each item is claimed individually (chunk 1), so
// heterogeneous sweep points schedule well; determinism follows from the
// index-addressed result slots.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEachChunk(n, workers, 1, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// DeriveSeed derives an independent, well-mixed seed for task `index`
// of a run seeded with `base`. It is a splitmix64 step: sequential task
// indices land in statistically independent streams, and the mapping is
// pure — the same (base, index) pair always yields the same seed, which
// is what makes parallel randomized sweeps byte-identical to serial
// ones. The result is never 0 (some downstream RNGs treat 0 as "unset").
func DeriveSeed(base, index uint64) uint64 {
	z := base + (index+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		return 0x9e3779b97f4a7c15
	}
	return z
}
