package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefault(2)
	if got := Workers(0); got != 2 {
		t.Fatalf("Workers(0) with default 2 = %d", got)
	}
	SetDefault(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) after reset = %d", got)
	}
	if got := Workers(-5); got < 1 {
		t.Fatalf("Workers(-5) = %d, want ≥ 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 17, 1000} {
			counts := make([]int32, n)
			ForEach(n, workers, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, chunk := range []int{1, 3, 1000} {
		counts := make([]int32, 257)
		ForEachChunk(len(counts), 8, chunk, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("chunk=%d: index %d ran %d times", chunk, i, c)
			}
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the engine's core contract:
// the result of a parallel map depends only on the item index, never on
// the schedule.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	f := func(i int) uint64 { return DeriveSeed(42, uint64(i)) }
	want := Map(500, 1, f)
	for _, workers := range []int{2, 4, 16} {
		got := Map(500, workers, f)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestNestedRegionsComplete exercises the token bucket: parallel regions
// nested inside parallel regions must complete all work without deadlock
// even when the bucket is exhausted.
func TestNestedRegionsComplete(t *testing.T) {
	var total atomic.Int64
	ForEach(20, 8, func(i int) {
		ForEach(30, 8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 20*30 {
		t.Fatalf("nested total = %d, want %d", total.Load(), 20*30)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for idx := uint64(0); idx < 1000; idx++ {
			s := DeriveSeed(base, idx)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d,%d) = 0", base, idx)
			}
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base=%d idx=%d", base, idx)
			}
			seen[s] = true
			if s != DeriveSeed(base, idx) {
				t.Fatal("DeriveSeed not pure")
			}
		}
	}
}

func BenchmarkForEachOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ForEach(64, 0, func(int) {})
	}
}
