// Package bvh provides a bounding-volume hierarchy over weighted boxes,
// used to accelerate selectivity estimation for histogram models with many
// buckets.
//
// A flat histogram evaluates Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ in O(m) per query.
// The BVH stores subtree weight sums, so a query that fully contains a
// subtree's bounding box adds the cached sum in O(1), and disjoint
// subtrees are skipped entirely; only buckets straddling the query
// boundary are evaluated individually. For the quadtree-partition models
// of this repository that reduces per-query work from O(m) to roughly
// O(√m) in 2D (the boundary buckets), which the prediction-time experiment
// (ext_predtime) measures.
//
// The same structure serves any model whose buckets are boxes with
// nonnegative weights — QUADHIST, ISOMER and QUICKSEL alike (overlapping
// buckets are fine: the sum is over buckets, not over space).
package bvh

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// maxLeafSize is the bucket count below which a node stays a leaf.
const maxLeafSize = 8

// Tree is an immutable BVH over weighted box buckets.
//
// Subtree weight sums are stored out-of-line in a slice indexed by node id
// rather than inside the nodes, so a tree can be reweighted without
// rebuilding: Reweight shares the node structure, bucket geometry, and
// precomputed inverse volumes, allocating only a new weight vector's worth
// of cached sums. The online-learning fast path (internal/online) publishes
// one such structurally-shared tree per feedback update.
type Tree struct {
	root    *node
	nnodes  int
	buckets []geom.Box
	weights []float64
	invVols []float64
	wsums   []float64 // subtree weight sums, indexed by node id
}

type node struct {
	id     int
	bbox   geom.Box
	idx    []int // bucket indices, non-nil at leaves
	lo, hi *node
}

// Build constructs a BVH over the buckets with the given weights. The
// slices are captured, not copied; callers must not mutate them afterward.
func Build(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) != len(weights) {
		panic("bvh: buckets/weights length mismatch")
	}
	t := &Tree{buckets: buckets, weights: weights}
	t.invVols = make([]float64, len(buckets))
	for j, b := range buckets {
		if v := b.Volume(); v > 0 {
			t.invVols[j] = 1 / v
		}
	}
	if len(buckets) == 0 {
		return t
	}
	idx := make([]int, len(buckets))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	t.wsums = make([]float64, t.nnodes)
	t.sumWeights(t.root)
	return t
}

// Reweight returns a tree over the same buckets with a new weight vector:
// node structure, bucket geometry, and inverse volumes are shared with the
// receiver (they are immutable), while the weights and the per-node sums
// are recomputed. Cost is one O(m) pass — no sorting, no tree building —
// which is what makes copy-on-write weight publication cheap enough for
// the per-feedback online update path. w is captured, not copied; callers
// must not mutate it afterward.
func (t *Tree) Reweight(w []float64) *Tree {
	if len(w) != len(t.buckets) {
		panic("bvh: Reweight weight count mismatch")
	}
	nt := &Tree{
		root:    t.root,
		nnodes:  t.nnodes,
		buckets: t.buckets,
		weights: w,
		invVols: t.invVols,
	}
	if t.root != nil {
		nt.wsums = make([]float64, nt.nnodes)
		nt.sumWeights(nt.root)
	}
	return nt
}

// sumWeights fills wsums[nd.id] for the subtree in post-order. Summation
// order is fixed by the tree structure, so reweighted trees produce
// byte-identical sums for a given weight vector.
func (t *Tree) sumWeights(nd *node) float64 {
	s := 0.0
	if nd.idx != nil {
		for _, j := range nd.idx {
			s += t.weights[j]
		}
	} else {
		s = t.sumWeights(nd.lo) + t.sumWeights(nd.hi)
	}
	t.wsums[nd.id] = s
	return s
}

func (t *Tree) build(idx []int) *node {
	nd := &node{id: t.nnodes}
	t.nnodes++
	// Bounding box of the node.
	nd.bbox = t.buckets[idx[0]].Clone()
	for _, j := range idx {
		b := t.buckets[j]
		for i := range nd.bbox.Lo {
			nd.bbox.Lo[i] = min(nd.bbox.Lo[i], b.Lo[i])
			nd.bbox.Hi[i] = max(nd.bbox.Hi[i], b.Hi[i])
		}
	}
	if len(idx) <= maxLeafSize {
		nd.idx = idx
		return nd
	}
	// Split along the widest dimension at the median bucket center.
	axis := 0
	widest := nd.bbox.Hi[0] - nd.bbox.Lo[0]
	for i := 1; i < len(nd.bbox.Lo); i++ {
		if w := nd.bbox.Hi[i] - nd.bbox.Lo[i]; w > widest {
			widest, axis = w, i
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ca := t.buckets[idx[a]].Lo[axis] + t.buckets[idx[a]].Hi[axis]
		cb := t.buckets[idx[b]].Lo[axis] + t.buckets[idx[b]].Hi[axis]
		return ca < cb
	})
	mid := len(idx) / 2
	nd.lo = t.build(idx[:mid])
	nd.hi = t.build(idx[mid:])
	nd.idx = nil
	return nd
}

// Len returns the number of indexed buckets.
func (t *Tree) Len() int { return len(t.buckets) }

// Weights returns the tree's weight vector. Callers must not mutate it.
func (t *Tree) Weights() []float64 { return t.weights }

// Estimate returns Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ over all indexed buckets,
// clamped to [0,1].
func (t *Tree) Estimate(r geom.Range) float64 {
	if t.root == nil {
		return 0
	}
	s := t.estimate(t.root, r)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (t *Tree) estimate(nd *node, r geom.Range) float64 {
	wsum := t.wsums[nd.id]
	if wsum == 0 {
		return 0
	}
	switch geom.ClassifyBox(r, nd.bbox) {
	case geom.BoxDisjoint:
		return 0
	case geom.BoxContained:
		return wsum
	}
	if nd.idx != nil {
		s := 0.0
		for _, j := range nd.idx {
			w := t.weights[j]
			if w == 0 {
				continue
			}
			switch geom.ClassifyBox(r, t.buckets[j]) {
			case geom.BoxDisjoint:
			case geom.BoxContained:
				// Zero-volume buckets behave like point masses: they
				// contribute fully when contained (matching the flat
				// model semantics) and nothing on partial overlap.
				s += w
			default:
				if t.invVols[j] != 0 {
					s += r.IntersectBoxVolume(t.buckets[j]) * t.invVols[j] * w
				}
			}
		}
		return s
	}
	return t.estimate(nd.lo, r) + t.estimate(nd.hi, r)
}

// ForEachOverlap calls fn(j, frac) for every bucket j with nonzero
// fractional coverage frac = vol(Bⱼ∩R)/vol(Bⱼ) (1 for contained buckets,
// point-mass convention for zero-volume ones). It is the sparse row of the
// design matrix the online-learning update rules need: disjoint subtrees
// are pruned, contained subtrees enumerate without further classification,
// and only boundary buckets pay for an intersection volume. Enumeration
// order is fixed by the tree structure, so consumers are deterministic.
func (t *Tree) ForEachOverlap(r geom.Range, fn func(j int, frac float64)) {
	if t.root != nil {
		t.overlap(t.root, r, false, fn)
	}
}

func (t *Tree) overlap(nd *node, r geom.Range, contained bool, fn func(j int, frac float64)) {
	if !contained {
		switch geom.ClassifyBox(r, nd.bbox) {
		case geom.BoxDisjoint:
			return
		case geom.BoxContained:
			contained = true
		}
	}
	if nd.idx != nil {
		for _, j := range nd.idx {
			if contained {
				fn(j, 1)
				continue
			}
			switch geom.ClassifyBox(r, t.buckets[j]) {
			case geom.BoxDisjoint:
			case geom.BoxContained:
				fn(j, 1)
			default:
				if t.invVols[j] != 0 {
					if frac := r.IntersectBoxVolume(t.buckets[j]) * t.invVols[j]; frac > 0 {
						fn(j, frac)
					}
				}
			}
		}
		return
	}
	t.overlap(nd.lo, r, contained, fn)
	t.overlap(nd.hi, r, contained, fn)
}

// ForEachOverlapFlat is the O(m) reference of ForEachOverlap, used by
// models below the indexing threshold (and by the property tests as
// ground truth). Buckets are visited in index order.
func ForEachOverlapFlat(buckets []geom.Box, r geom.Range, fn func(j int, frac float64)) {
	for j, b := range buckets {
		switch geom.ClassifyBox(r, b) {
		case geom.BoxDisjoint:
		case geom.BoxContained:
			fn(j, 1)
		default:
			if v := b.Volume(); v > 0 {
				if frac := r.IntersectBoxVolume(b) / v; frac > 0 {
					fn(j, frac)
				}
			}
		}
	}
}

// EstimateFlat is the O(m) reference kernel the tree accelerates:
// Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ clamped to [0,1]. It is the single flat
// implementation shared by every box-bucketed model below the indexing
// threshold, and the ground truth the BVH property tests compare against.
func EstimateFlat(buckets []geom.Box, weights []float64, r geom.Range) float64 {
	s := 0.0
	for j, b := range buckets {
		w := weights[j]
		if w == 0 {
			continue
		}
		switch geom.ClassifyBox(r, b) {
		case geom.BoxDisjoint:
		case geom.BoxContained:
			s += w
		default:
			if v := b.Volume(); v > 0 {
				s += r.IntersectBoxVolume(b) / v * w
			}
		}
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// IndexThreshold is the bucket count at which box-bucketed models switch
// from the flat kernel to a BVH walk. Below it the flat scan's tight loop
// beats the tree's pointer chasing; above it the walk touches only the
// O(√m) boundary buckets. The crossover was measured with the estpath
// benchmark (cmd/selbench -estpath).
const IndexThreshold = 64

// Lazy is a lazily-built, immutably-shared BVH over a fixed bucket set.
// The zero value is ready for use; the first Ensure (or Seed) call installs
// the tree exactly once (sync.Once), after which the same *Tree is shared
// by every concurrent reader. Models embed a Lazy so Estimate stays safe
// for any number of goroutines while never rebuilding the index.
type Lazy struct {
	once sync.Once
	tree atomic.Pointer[Tree]
}

// Ensure returns the shared tree for the given buckets/weights, building
// it on first call if the bucket count is at least IndexThreshold, and nil
// otherwise (callers fall back to EstimateFlat). The slices are captured
// by the built tree; callers must not mutate them afterwards — the same
// immutability the core.Model concurrency contract already demands.
func (l *Lazy) Ensure(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) < IndexThreshold {
		return nil
	}
	l.once.Do(func() { l.tree.Store(Build(buckets, weights)) })
	return l.tree.Load()
}

// Seed installs a prebuilt tree as this Lazy's index, winning only if no
// index has been built yet. The copy-on-write publication path uses it so
// a reweighted model starts life with its structurally-shared tree already
// in place — the subsequent Ensure/Accelerate is then a no-op instead of a
// full rebuild.
func (l *Lazy) Seed(t *Tree) {
	l.once.Do(func() { l.tree.Store(t) })
}

// Built returns the index if one has been built or seeded, and nil
// otherwise. It never triggers a build.
func (l *Lazy) Built() *Tree { return l.tree.Load() }
