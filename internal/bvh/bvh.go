// Package bvh provides a bounding-volume hierarchy over weighted boxes,
// used to accelerate selectivity estimation for histogram models with many
// buckets.
//
// A flat histogram evaluates Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ in O(m) per query.
// The BVH stores subtree weight sums, so a query that fully contains a
// subtree's bounding box adds the cached sum in O(1), and disjoint
// subtrees are skipped entirely; only buckets straddling the query
// boundary are evaluated individually. For the quadtree-partition models
// of this repository that reduces per-query work from O(m) to roughly
// O(√m) in 2D (the boundary buckets), which the prediction-time experiment
// (ext_predtime) measures.
//
// The same structure serves any model whose buckets are boxes with
// nonnegative weights — QUADHIST, ISOMER and QUICKSEL alike (overlapping
// buckets are fine: the sum is over buckets, not over space).
package bvh

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// maxLeafSize is the bucket count below which a node stays a leaf.
const maxLeafSize = 8

// Tree is an immutable BVH over weighted box buckets, stored in a flat
// structure-of-arrays layout: node bounding boxes, child links, leaf
// windows, and bucket corners all live in contiguous slices indexed by
// node or bucket id, so a query walk streams through a few dense arrays
// instead of chasing per-node pointers into scattered allocations. Box
// queries additionally take a specialized walk that classifies nodes and
// buckets with inline coordinate comparisons — no interface dispatch per
// node.
//
// Subtree weight sums are stored out-of-line in a slice indexed by node id
// rather than next to the geometry, so a tree can be reweighted without
// rebuilding: Reweight shares every structure array (node boxes, links,
// leaf windows, bucket geometry, precomputed inverse volumes), allocating
// only a new weight vector's worth of cached sums. The online-learning
// fast path (internal/online) publishes one such structurally-shared tree
// per feedback update.
type Tree struct {
	dim int
	// Node arrays, indexed by node id. Ids are assigned in build order
	// (pre-order), so children always have larger ids than their parent —
	// which is what lets sumWeights run as one reverse sweep.
	nlo, nhi    []float64 // node bounding boxes, dim coords per node
	left, right []int32   // child node ids, -1 at leaves
	loff, lcnt  []int32   // a leaf's window [loff, loff+lcnt) into leafIdx
	leafIdx     []int32   // bucket ids; each leaf's window is contiguous
	// Bucket geometry flattened alongside the originals: blo/bhi mirror
	// buckets[j].Lo/Hi at offset j*dim, kept so the leaf loops read
	// contiguous memory instead of slice-of-slice corners.
	blo, bhi []float64

	buckets []geom.Box
	weights []float64
	invVols []float64
	wsums   []float64 // subtree weight sums, indexed by node id
}

// Build constructs a BVH over the buckets with the given weights. The
// slices are captured, not copied; callers must not mutate them afterward.
func Build(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) != len(weights) {
		panic("bvh: buckets/weights length mismatch")
	}
	t := &Tree{buckets: buckets, weights: weights}
	t.invVols = make([]float64, len(buckets))
	for j, b := range buckets {
		if v := b.Volume(); v > 0 {
			t.invVols[j] = 1 / v
		}
	}
	if len(buckets) == 0 {
		return t
	}
	d := buckets[0].Dim()
	t.dim = d
	t.blo = make([]float64, len(buckets)*d)
	t.bhi = make([]float64, len(buckets)*d)
	for j, b := range buckets {
		copy(t.blo[j*d:(j+1)*d], b.Lo)
		copy(t.bhi[j*d:(j+1)*d], b.Hi)
	}
	idx := make([]int32, len(buckets))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.leafIdx = make([]int32, 0, len(buckets))
	t.build(idx)
	t.wsums = make([]float64, t.numNodes())
	t.sumWeights()
	return t
}

func (t *Tree) numNodes() int { return len(t.left) }

// build appends the subtree over idx to the node arrays and returns its id.
// Ids and the split rule (widest dimension, median bucket center) are
// identical to the historical pointer-tree builder, so trees built from the
// same buckets have the same shape they always had.
func (t *Tree) build(idx []int32) int32 {
	d := t.dim
	id := int32(len(t.left))
	off := int(id) * d
	t.nlo = append(t.nlo, t.blo[int(idx[0])*d:(int(idx[0])+1)*d]...)
	t.nhi = append(t.nhi, t.bhi[int(idx[0])*d:(int(idx[0])+1)*d]...)
	nlo := t.nlo[off : off+d]
	nhi := t.nhi[off : off+d]
	for _, j := range idx[1:] {
		bo := int(j) * d
		for i := 0; i < d; i++ {
			nlo[i] = min(nlo[i], t.blo[bo+i])
			nhi[i] = max(nhi[i], t.bhi[bo+i])
		}
	}
	t.left = append(t.left, -1)
	t.right = append(t.right, -1)
	t.loff = append(t.loff, 0)
	t.lcnt = append(t.lcnt, 0)
	if len(idx) <= maxLeafSize {
		t.loff[id] = int32(len(t.leafIdx))
		t.lcnt[id] = int32(len(idx))
		t.leafIdx = append(t.leafIdx, idx...)
		return id
	}
	// Split along the widest dimension at the median bucket center.
	axis := 0
	widest := nhi[0] - nlo[0]
	for i := 1; i < d; i++ {
		if w := nhi[i] - nlo[i]; w > widest {
			widest, axis = w, i
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ca := t.blo[int(idx[a])*d+axis] + t.bhi[int(idx[a])*d+axis]
		cb := t.blo[int(idx[b])*d+axis] + t.bhi[int(idx[b])*d+axis]
		return ca < cb
	})
	mid := len(idx) / 2
	// nlo/nhi are stale after the recursive appends; they are not used
	// again below.
	lo := t.build(idx[:mid])
	hi := t.build(idx[mid:])
	t.left[id] = lo
	t.right[id] = hi
	return id
}

// Reweight returns a tree over the same buckets with a new weight vector:
// every structure array — node boxes, child links, leaf windows, bucket
// geometry, and inverse volumes — is shared with the receiver (they are
// immutable), while the weights and the per-node sums are recomputed. Cost
// is one O(m) pass — no sorting, no tree building — which is what makes
// copy-on-write weight publication cheap enough for the per-feedback
// online update path. w is captured, not copied; callers must not mutate
// it afterward.
func (t *Tree) Reweight(w []float64) *Tree {
	if len(w) != len(t.buckets) {
		panic("bvh: Reweight weight count mismatch")
	}
	nt := &Tree{
		dim:     t.dim,
		nlo:     t.nlo,
		nhi:     t.nhi,
		left:    t.left,
		right:   t.right,
		loff:    t.loff,
		lcnt:    t.lcnt,
		leafIdx: t.leafIdx,
		blo:     t.blo,
		bhi:     t.bhi,
		buckets: t.buckets,
		weights: w,
		invVols: t.invVols,
	}
	if n := nt.numNodes(); n > 0 {
		nt.wsums = make([]float64, n)
		nt.sumWeights()
	}
	return nt
}

// sumWeights fills wsums for every node in one reverse sweep: children
// have larger ids than their parent, so by the time a parent is reached
// both subtree sums are ready. Leaf sums add bucket weights in leaf-window
// order and parents add left+right — exactly the post-order recursion the
// pointer tree used, so reweighted trees produce byte-identical sums for a
// given weight vector.
func (t *Tree) sumWeights() {
	for id := t.numNodes() - 1; id >= 0; id-- {
		if t.left[id] < 0 {
			s := 0.0
			for _, j := range t.leafIdx[t.loff[id] : t.loff[id]+t.lcnt[id]] {
				s += t.weights[j]
			}
			t.wsums[id] = s
			continue
		}
		t.wsums[id] = t.wsums[t.left[id]] + t.wsums[t.right[id]]
	}
}

// Len returns the number of indexed buckets.
func (t *Tree) Len() int { return len(t.buckets) }

// Weights returns the tree's weight vector. Callers must not mutate it.
func (t *Tree) Weights() []float64 { return t.weights }

// Estimate returns Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ over all indexed buckets,
// clamped to [0,1]. Box queries (by value or pointer — the serving wire
// path passes pooled *geom.Box) take the specialized coordinate walk; all
// other range classes go through the generic classifier.
func (t *Tree) Estimate(r geom.Range) float64 {
	if t.numNodes() == 0 {
		return 0
	}
	var s float64
	switch q := r.(type) {
	case geom.Box:
		s = t.estimateBox(0, q.Lo, q.Hi)
	case *geom.Box:
		s = t.estimateBox(0, q.Lo, q.Hi)
	default:
		s = t.estimate(0, r)
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// estimateBox is the box-query walk: node and bucket classification are
// inline float comparisons over the flat coordinate arrays. The recursion
// structure (left subtree + right subtree) and the per-leaf term order
// match the generic walk exactly, so both produce the same float results.
func (t *Tree) estimateBox(id int32, qlo, qhi geom.Point) float64 {
	wsum := t.wsums[id]
	if wsum == 0 {
		return 0
	}
	d := t.dim
	off := int(id) * d
	nlo := t.nlo[off : off+d]
	nhi := t.nhi[off : off+d]
	contained := true
	for i := 0; i < d; i++ {
		if qlo[i] > nhi[i] || nlo[i] > qhi[i] {
			return 0 // disjoint
		}
		if nlo[i] < qlo[i] || nhi[i] > qhi[i] {
			contained = false
		}
	}
	if contained {
		return wsum
	}
	if t.left[id] < 0 {
		s := 0.0
		for _, j := range t.leafIdx[t.loff[id] : t.loff[id]+t.lcnt[id]] {
			w := t.weights[j]
			if w == 0 {
				continue
			}
			bo := int(j) * d
			blo := t.blo[bo : bo+d]
			bhi := t.bhi[bo : bo+d]
			// One pass classifies the bucket and accumulates the
			// intersection volume, mirroring geom.ClassifyBox +
			// IntersectBoxVolume: disjoint skips, contained adds the
			// full weight (zero-volume buckets behave like point
			// masses), straddling pays vol·invVol·w.
			vol := 1.0
			cont, zero := true, false
			for i := 0; i < d; i++ {
				bl, bh := blo[i], bhi[i]
				if qlo[i] > bh || bl > qhi[i] {
					cont, zero = false, true
					break
				}
				if bl < qlo[i] || bh > qhi[i] {
					cont = false
				}
				side := min(bh, qhi[i]) - max(bl, qlo[i])
				if side <= 0 {
					zero = true
				} else {
					vol *= side
				}
			}
			switch {
			case cont:
				s += w
			case !zero && t.invVols[j] != 0:
				s += vol * t.invVols[j] * w
			}
		}
		return s
	}
	return t.estimateBox(t.left[id], qlo, qhi) + t.estimateBox(t.right[id], qlo, qhi)
}

// nodeBox returns node id's bounding box as a view over the flat arrays
// (no allocation; the windows are immutable).
func (t *Tree) nodeBox(id int32) geom.Box {
	off := int(id) * t.dim
	return geom.Box{
		Lo: geom.Point(t.nlo[off : off+t.dim : off+t.dim]),
		Hi: geom.Point(t.nhi[off : off+t.dim : off+t.dim]),
	}
}

func (t *Tree) estimate(id int32, r geom.Range) float64 {
	wsum := t.wsums[id]
	if wsum == 0 {
		return 0
	}
	switch geom.ClassifyBox(r, t.nodeBox(id)) {
	case geom.BoxDisjoint:
		return 0
	case geom.BoxContained:
		return wsum
	}
	if t.left[id] < 0 {
		s := 0.0
		for _, j := range t.leafIdx[t.loff[id] : t.loff[id]+t.lcnt[id]] {
			w := t.weights[j]
			if w == 0 {
				continue
			}
			switch geom.ClassifyBox(r, t.buckets[j]) {
			case geom.BoxDisjoint:
			case geom.BoxContained:
				// Zero-volume buckets behave like point masses: they
				// contribute fully when contained (matching the flat
				// model semantics) and nothing on partial overlap.
				s += w
			default:
				if t.invVols[j] != 0 {
					s += r.IntersectBoxVolume(t.buckets[j]) * t.invVols[j] * w
				}
			}
		}
		return s
	}
	return t.estimate(t.left[id], r) + t.estimate(t.right[id], r)
}

// ForEachOverlap calls fn(j, frac) for every bucket j with nonzero
// fractional coverage frac = vol(Bⱼ∩R)/vol(Bⱼ) (1 for contained buckets,
// point-mass convention for zero-volume ones). It is the sparse row of the
// design matrix the online-learning update rules need: disjoint subtrees
// are pruned, contained subtrees enumerate without further classification,
// and only boundary buckets pay for an intersection volume. Enumeration
// order is fixed by the tree structure, so consumers are deterministic.
func (t *Tree) ForEachOverlap(r geom.Range, fn func(j int, frac float64)) {
	if t.numNodes() > 0 {
		t.overlap(0, r, false, fn)
	}
}

func (t *Tree) overlap(id int32, r geom.Range, contained bool, fn func(j int, frac float64)) {
	if !contained {
		switch geom.ClassifyBox(r, t.nodeBox(id)) {
		case geom.BoxDisjoint:
			return
		case geom.BoxContained:
			contained = true
		}
	}
	if t.left[id] < 0 {
		for _, j := range t.leafIdx[t.loff[id] : t.loff[id]+t.lcnt[id]] {
			if contained {
				fn(int(j), 1)
				continue
			}
			switch geom.ClassifyBox(r, t.buckets[j]) {
			case geom.BoxDisjoint:
			case geom.BoxContained:
				fn(int(j), 1)
			default:
				if t.invVols[j] != 0 {
					if frac := r.IntersectBoxVolume(t.buckets[j]) * t.invVols[j]; frac > 0 {
						fn(int(j), frac)
					}
				}
			}
		}
		return
	}
	t.overlap(t.left[id], r, contained, fn)
	t.overlap(t.right[id], r, contained, fn)
}

// ForEachOverlapFlat is the O(m) reference of ForEachOverlap, used by
// models below the indexing threshold (and by the property tests as
// ground truth). Buckets are visited in index order.
func ForEachOverlapFlat(buckets []geom.Box, r geom.Range, fn func(j int, frac float64)) {
	for j, b := range buckets {
		switch geom.ClassifyBox(r, b) {
		case geom.BoxDisjoint:
		case geom.BoxContained:
			fn(j, 1)
		default:
			if v := b.Volume(); v > 0 {
				if frac := r.IntersectBoxVolume(b) / v; frac > 0 {
					fn(j, frac)
				}
			}
		}
	}
}

// EstimateFlat is the O(m) reference kernel the tree accelerates:
// Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ clamped to [0,1]. It is the single flat
// implementation shared by every box-bucketed model below the indexing
// threshold, and the ground truth the BVH property tests compare against.
func EstimateFlat(buckets []geom.Box, weights []float64, r geom.Range) float64 {
	s := 0.0
	for j, b := range buckets {
		w := weights[j]
		if w == 0 {
			continue
		}
		switch geom.ClassifyBox(r, b) {
		case geom.BoxDisjoint:
		case geom.BoxContained:
			s += w
		default:
			if v := b.Volume(); v > 0 {
				s += r.IntersectBoxVolume(b) / v * w
			}
		}
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// IndexThreshold is the bucket count at which box-bucketed models switch
// from the flat kernel to a BVH walk. Below it the flat scan's tight loop
// beats the tree walk; above it the walk touches only the O(√m) boundary
// buckets. The crossover was measured with the estpath benchmark
// (cmd/selbench -estpath).
const IndexThreshold = 64

// Lazy is a lazily-built, immutably-shared BVH over a fixed bucket set.
// The zero value is ready for use; the first Ensure (or Seed) call installs
// the tree exactly once (sync.Once), after which the same *Tree is shared
// by every concurrent reader. Models embed a Lazy so Estimate stays safe
// for any number of goroutines while never rebuilding the index.
type Lazy struct {
	once sync.Once
	tree atomic.Pointer[Tree]
}

// Ensure returns the shared tree for the given buckets/weights, building
// it on first call if the bucket count is at least IndexThreshold, and nil
// otherwise (callers fall back to EstimateFlat). The slices are captured
// by the built tree; callers must not mutate them afterwards — the same
// immutability the core.Model concurrency contract already demands.
func (l *Lazy) Ensure(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) < IndexThreshold {
		return nil
	}
	l.once.Do(func() { l.tree.Store(Build(buckets, weights)) })
	return l.tree.Load()
}

// Seed installs a prebuilt tree as this Lazy's index, winning only if no
// index has been built yet. The copy-on-write publication path uses it so
// a reweighted model starts life with its structurally-shared tree already
// in place — the subsequent Ensure/Accelerate is then a no-op instead of a
// full rebuild.
func (l *Lazy) Seed(t *Tree) {
	l.once.Do(func() { l.tree.Store(t) })
}

// Built returns the index if one has been built or seeded, and nil
// otherwise. It never triggers a build.
func (l *Lazy) Built() *Tree { return l.tree.Load() }

// Raw is a Tree's complete structural state as flat arrays, for
// serialization: every field maps one-to-one onto a Tree's internal
// structure-of-arrays layout, so a snapshot can store the arrays verbatim
// and a load can rebuild the index without re-running the builder (no
// sorting, no recursion, no weight sweep). Buckets and weights are not
// part of Raw — they belong to the owning model and are passed separately
// to FromRaw, which shares them exactly like Build does.
type Raw struct {
	Dim         int
	NLo, NHi    []float64 // node bounding boxes, Dim coords per node
	Left, Right []int32   // child node ids, -1 at leaves
	LOff, LCnt  []int32   // leaf windows into LeafIdx
	LeafIdx     []int32   // bucket ids, each leaf's window contiguous
	InvVols     []float64 // per-bucket inverse volumes (0 for zero-volume)
	WSums       []float64 // subtree weight sums, indexed by node id
}

// Raw exports the tree's structural arrays. The returned slices alias the
// tree's internals (both are immutable); callers must not mutate them.
func (t *Tree) Raw() Raw {
	return Raw{
		Dim:     t.dim,
		NLo:     t.nlo,
		NHi:     t.nhi,
		Left:    t.left,
		Right:   t.right,
		LOff:    t.loff,
		LCnt:    t.lcnt,
		LeafIdx: t.leafIdx,
		InvVols: t.invVols,
		WSums:   t.wsums,
	}
}

// FromRaw reconstructs a Tree from exported structural arrays plus the
// owning model's buckets and weights, validating every cross-reference so
// corrupt or adversarial input yields an error instead of a tree whose
// walks read out of bounds. All slices (including blo/bhi, which callers
// typically alias into the same backing store as the bucket corners) are
// captured, not copied.
func FromRaw(r Raw, buckets []geom.Box, weights []float64, blo, bhi []float64) (*Tree, error) {
	m, n := len(buckets), len(r.Left)
	d := r.Dim
	switch {
	case len(weights) != m:
		return nil, fmt.Errorf("bvh: %d buckets but %d weights", m, len(weights))
	case len(r.InvVols) != m:
		return nil, fmt.Errorf("bvh: %d buckets but %d invVols", m, len(r.InvVols))
	case n == 0 && m > 0, d <= 0 && n > 0:
		return nil, fmt.Errorf("bvh: empty tree over %d buckets", m)
	case len(r.Right) != n || len(r.LOff) != n || len(r.LCnt) != n || len(r.WSums) != n:
		return nil, fmt.Errorf("bvh: node array lengths disagree")
	case len(r.NLo) != n*d || len(r.NHi) != n*d:
		return nil, fmt.Errorf("bvh: node box arrays want %d coords, have %d/%d", n*d, len(r.NLo), len(r.NHi))
	case len(r.LeafIdx) > m:
		return nil, fmt.Errorf("bvh: leafIdx longer than bucket count")
	case len(blo) != m*d || len(bhi) != m*d:
		return nil, fmt.Errorf("bvh: bucket corner arrays want %d coords, have %d/%d", m*d, len(blo), len(bhi))
	}
	for id := 0; id < n; id++ {
		l, rgt := r.Left[id], r.Right[id]
		if (l < 0) != (rgt < 0) {
			return nil, fmt.Errorf("bvh: node %d has one child", id)
		}
		if l < 0 {
			off, cnt := r.LOff[id], r.LCnt[id]
			if cnt < 0 || off < 0 || int(off)+int(cnt) > len(r.LeafIdx) {
				return nil, fmt.Errorf("bvh: node %d leaf window out of range", id)
			}
			continue
		}
		// Pre-order ids: children strictly after the parent keeps the
		// reverse weight sweep and walk recursion acyclic.
		if int(l) <= id || int(rgt) <= id || int(l) >= n || int(rgt) >= n {
			return nil, fmt.Errorf("bvh: node %d has out-of-order children %d/%d", id, l, rgt)
		}
	}
	for _, j := range r.LeafIdx {
		if j < 0 || int(j) >= m {
			return nil, fmt.Errorf("bvh: leafIdx entry %d out of range", j)
		}
	}
	return &Tree{
		dim:     d,
		nlo:     r.NLo,
		nhi:     r.NHi,
		left:    r.Left,
		right:   r.Right,
		loff:    r.LOff,
		lcnt:    r.LCnt,
		leafIdx: r.LeafIdx,
		blo:     blo,
		bhi:     bhi,
		buckets: buckets,
		weights: weights,
		invVols: r.InvVols,
		wsums:   r.WSums,
	}, nil
}
