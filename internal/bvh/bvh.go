// Package bvh provides a bounding-volume hierarchy over weighted boxes,
// used to accelerate selectivity estimation for histogram models with many
// buckets.
//
// A flat histogram evaluates Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ in O(m) per query.
// The BVH stores subtree weight sums, so a query that fully contains a
// subtree's bounding box adds the cached sum in O(1), and disjoint
// subtrees are skipped entirely; only buckets straddling the query
// boundary are evaluated individually. For the quadtree-partition models
// of this repository that reduces per-query work from O(m) to roughly
// O(√m) in 2D (the boundary buckets), which the prediction-time experiment
// (ext_predtime) measures.
//
// The same structure serves any model whose buckets are boxes with
// nonnegative weights — QUADHIST, ISOMER and QUICKSEL alike (overlapping
// buckets are fine: the sum is over buckets, not over space).
package bvh

import (
	"sort"
	"sync"

	"repro/internal/geom"
)

// maxLeafSize is the bucket count below which a node stays a leaf.
const maxLeafSize = 8

// Tree is an immutable BVH over weighted box buckets.
type Tree struct {
	root    *node
	buckets []geom.Box
	weights []float64
	invVols []float64
}

type node struct {
	bbox   geom.Box
	wsum   float64
	idx    []int // bucket indices, non-nil at leaves
	lo, hi *node
}

// Build constructs a BVH over the buckets with the given weights. The
// slices are captured, not copied; callers must not mutate them afterward.
func Build(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) != len(weights) {
		panic("bvh: buckets/weights length mismatch")
	}
	t := &Tree{buckets: buckets, weights: weights}
	t.invVols = make([]float64, len(buckets))
	for j, b := range buckets {
		if v := b.Volume(); v > 0 {
			t.invVols[j] = 1 / v
		}
	}
	if len(buckets) == 0 {
		return t
	}
	idx := make([]int, len(buckets))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t
}

func (t *Tree) build(idx []int) *node {
	nd := &node{}
	// Bounding box and weight sum of the node.
	nd.bbox = t.buckets[idx[0]].Clone()
	for _, j := range idx {
		b := t.buckets[j]
		nd.wsum += t.weights[j]
		for i := range nd.bbox.Lo {
			nd.bbox.Lo[i] = min(nd.bbox.Lo[i], b.Lo[i])
			nd.bbox.Hi[i] = max(nd.bbox.Hi[i], b.Hi[i])
		}
	}
	if len(idx) <= maxLeafSize {
		nd.idx = idx
		return nd
	}
	// Split along the widest dimension at the median bucket center.
	axis := 0
	widest := nd.bbox.Hi[0] - nd.bbox.Lo[0]
	for i := 1; i < len(nd.bbox.Lo); i++ {
		if w := nd.bbox.Hi[i] - nd.bbox.Lo[i]; w > widest {
			widest, axis = w, i
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ca := t.buckets[idx[a]].Lo[axis] + t.buckets[idx[a]].Hi[axis]
		cb := t.buckets[idx[b]].Lo[axis] + t.buckets[idx[b]].Hi[axis]
		return ca < cb
	})
	mid := len(idx) / 2
	nd.lo = t.build(idx[:mid])
	nd.hi = t.build(idx[mid:])
	nd.idx = nil
	return nd
}

// Len returns the number of indexed buckets.
func (t *Tree) Len() int { return len(t.buckets) }

// Estimate returns Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ over all indexed buckets,
// clamped to [0,1].
func (t *Tree) Estimate(r geom.Range) float64 {
	if t.root == nil {
		return 0
	}
	s := t.estimate(t.root, r)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (t *Tree) estimate(nd *node, r geom.Range) float64 {
	if nd.wsum == 0 {
		return 0
	}
	switch geom.ClassifyBox(r, nd.bbox) {
	case geom.BoxDisjoint:
		return 0
	case geom.BoxContained:
		return nd.wsum
	}
	if nd.idx != nil {
		s := 0.0
		for _, j := range nd.idx {
			w := t.weights[j]
			if w == 0 {
				continue
			}
			switch geom.ClassifyBox(r, t.buckets[j]) {
			case geom.BoxDisjoint:
			case geom.BoxContained:
				// Zero-volume buckets behave like point masses: they
				// contribute fully when contained (matching the flat
				// model semantics) and nothing on partial overlap.
				s += w
			default:
				if t.invVols[j] != 0 {
					s += r.IntersectBoxVolume(t.buckets[j]) * t.invVols[j] * w
				}
			}
		}
		return s
	}
	return t.estimate(nd.lo, r) + t.estimate(nd.hi, r)
}

// EstimateFlat is the O(m) reference kernel the tree accelerates:
// Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ clamped to [0,1]. It is the single flat
// implementation shared by every box-bucketed model below the indexing
// threshold, and the ground truth the BVH property tests compare against.
func EstimateFlat(buckets []geom.Box, weights []float64, r geom.Range) float64 {
	s := 0.0
	for j, b := range buckets {
		w := weights[j]
		if w == 0 {
			continue
		}
		switch geom.ClassifyBox(r, b) {
		case geom.BoxDisjoint:
		case geom.BoxContained:
			s += w
		default:
			if v := b.Volume(); v > 0 {
				s += r.IntersectBoxVolume(b) / v * w
			}
		}
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// IndexThreshold is the bucket count at which box-bucketed models switch
// from the flat kernel to a BVH walk. Below it the flat scan's tight loop
// beats the tree's pointer chasing; above it the walk touches only the
// O(√m) boundary buckets. The crossover was measured with the estpath
// benchmark (cmd/selbench -estpath).
const IndexThreshold = 64

// Lazy is a lazily-built, immutably-shared BVH over a fixed bucket set.
// The zero value is ready for use; the first Ensure call builds the tree
// exactly once (sync.Once), after which the same *Tree is shared by every
// concurrent reader. Models embed a Lazy so Estimate stays safe for any
// number of goroutines while never rebuilding the index.
type Lazy struct {
	once sync.Once
	tree *Tree
}

// Ensure returns the shared tree for the given buckets/weights, building
// it on first call if the bucket count is at least IndexThreshold, and nil
// otherwise (callers fall back to EstimateFlat). The slices are captured
// by the built tree; callers must not mutate them afterwards — the same
// immutability the core.Model concurrency contract already demands.
func (l *Lazy) Ensure(buckets []geom.Box, weights []float64) *Tree {
	if len(buckets) < IndexThreshold {
		return nil
	}
	l.once.Do(func() { l.tree = Build(buckets, weights) })
	return l.tree
}
