package bvh_test

import (
	"math"
	"sort"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/rng"
)

// randomQueryBox draws a query box over [0,1]^d.
func randomQueryBox(r *rng.RNG, d int) geom.Box {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for j := 0; j < d; j++ {
		a, b := r.Float64(), r.Float64()
		lo[j], hi[j] = min(a, b), max(a, b)
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// TestReweightMatchesRebuild: a reweighted tree must produce exactly the
// estimates of a tree built from scratch over the new weights — the sums
// are recomputed in the same post-order, so the comparison is exact.
func TestReweightMatchesRebuild(t *testing.T) {
	r := rng.New(91)
	for _, n := range []int{80, 400, 2000} {
		buckets, w0 := randomBuckets(r, n, 2)
		tree := bvh.Build(buckets, w0)

		w1 := make([]float64, n)
		total := 0.0
		for i := range w1 {
			w1[i] = r.Float64()
			total += w1[i]
		}
		for i := range w1 {
			w1[i] /= total
		}
		rew := tree.Reweight(w1)
		ref := bvh.Build(buckets, w1)
		for q := 0; q < 200; q++ {
			box := randomQueryBox(r, 2)
			if got, want := rew.Estimate(box), ref.Estimate(box); got != want {
				t.Fatalf("n=%d query %d: reweighted %v != rebuilt %v", n, q, got, want)
			}
		}
		// The original tree must be untouched by the reweight.
		for q := 0; q < 50; q++ {
			box := randomQueryBox(r, 2)
			if got, want := tree.Estimate(box), flatEstimate(buckets, w0, box); math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d: original tree disturbed by Reweight: %v vs %v", n, got, want)
			}
		}
	}
}

func TestReweightLengthMismatchPanics(t *testing.T) {
	r := rng.New(5)
	buckets, w := randomBuckets(r, 100, 2)
	tree := bvh.Build(buckets, w)
	defer func() {
		if recover() == nil {
			t.Fatal("Reweight with wrong length did not panic")
		}
	}()
	tree.Reweight(w[:50])
}

// overlapRow collects a ForEachOverlap enumeration into a dense row.
func overlapRow(n int, visit func(fn func(j int, frac float64))) ([]float64, []int) {
	row := make([]float64, n)
	var touched []int
	visit(func(j int, frac float64) {
		row[j] = frac
		touched = append(touched, j)
	})
	sort.Ints(touched)
	return row, touched
}

// TestForEachOverlapMatchesFlat: the tree enumeration must touch exactly
// the buckets the flat scan touches, with identical coverage fractions,
// for every query class.
func TestForEachOverlapMatchesFlat(t *testing.T) {
	r := rng.New(2027)
	for _, n := range []int{64, 512, 2048} {
		buckets, w := randomBuckets(r, n, 2)
		tree := bvh.Build(buckets, w)
		queries := []geom.Range{
			geom.UnitCube(2),
			randomQueryBox(r, 2),
			geom.NewBall(geom.Point{r.Float64(), r.Float64()}, 0.3*r.Float64()),
			geom.NewHalfspace(geom.Point{1, 1}, r.Float64()),
		}
		for qi := 0; qi < 30; qi++ {
			queries = append(queries, randomQueryBox(r, 2))
		}
		for qi, q := range queries {
			flatRow, flatTouched := overlapRow(n, func(fn func(int, float64)) {
				bvh.ForEachOverlapFlat(buckets, q, fn)
			})
			treeRow, treeTouched := overlapRow(n, func(fn func(int, float64)) {
				tree.ForEachOverlap(q, fn)
			})
			if len(flatTouched) != len(treeTouched) {
				t.Fatalf("n=%d query %d: touched %d (tree) vs %d (flat)",
					n, qi, len(treeTouched), len(flatTouched))
			}
			for j := range flatRow {
				if math.Abs(flatRow[j]-treeRow[j]) > 1e-12 {
					t.Fatalf("n=%d query %d bucket %d: frac %v (tree) vs %v (flat)",
						n, qi, j, treeRow[j], flatRow[j])
				}
			}
		}
	}
}

// TestOverlapRowReproducesEstimate: Σⱼ frac ⱼ·wⱼ over the enumerated
// buckets must equal the flat estimate (before clamping both are the same
// sum over the same support).
func TestOverlapRowReproducesEstimate(t *testing.T) {
	r := rng.New(77)
	buckets, w := randomBuckets(r, 700, 2)
	tree := bvh.Build(buckets, w)
	for qi := 0; qi < 100; qi++ {
		q := randomQueryBox(r, 2)
		s := 0.0
		tree.ForEachOverlap(q, func(j int, frac float64) { s += frac * w[j] })
		want := flatEstimate(buckets, w, q)
		if math.Abs(min(max(s, 0), 1)-want) > 1e-9 {
			t.Fatalf("query %d: overlap-row sum %v vs flat estimate %v", qi, s, want)
		}
	}
}

// TestLazySeed: a seeded Lazy must serve the seeded tree and never
// rebuild; seeding after a build must lose.
func TestLazySeed(t *testing.T) {
	r := rng.New(8)
	buckets, w := randomBuckets(r, bvh.IndexThreshold+10, 2)
	pre := bvh.Build(buckets, w)

	var l bvh.Lazy
	if l.Built() != nil {
		t.Fatal("zero Lazy reports a built tree")
	}
	l.Seed(pre)
	if got := l.Ensure(buckets, w); got != pre {
		t.Fatal("Ensure after Seed did not return the seeded tree")
	}
	if l.Built() != pre {
		t.Fatal("Built did not return the seeded tree")
	}

	var l2 bvh.Lazy
	built := l2.Ensure(buckets, w)
	l2.Seed(pre)
	if got := l2.Ensure(buckets, w); got != built {
		t.Fatal("Seed after Ensure displaced the built tree")
	}
}
