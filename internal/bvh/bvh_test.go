package bvh

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/workload"
)

// flatEstimate is the reference O(m) evaluation.
func flatEstimate(buckets []geom.Box, weights []float64, r geom.Range) float64 {
	s := 0.0
	for j, b := range buckets {
		w := weights[j]
		if w == 0 || !r.IntersectsBox(b) {
			continue
		}
		if r.ContainsBox(b) {
			s += w
			continue
		}
		v := b.Volume()
		if v == 0 {
			continue
		}
		s += r.IntersectBoxVolume(b) / v * w
	}
	return core.Clamp01(s)
}

func randomBuckets(r *rng.RNG, n, d int) ([]geom.Box, []float64) {
	buckets := make([]geom.Box, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range buckets {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			a, b := r.Float64(), r.Float64()
			lo[j], hi[j] = min(a, b), max(a, b)
		}
		buckets[i] = geom.Box{Lo: lo, Hi: hi}
		weights[i] = r.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return buckets, weights
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has buckets")
	}
	if got := tr.Estimate(geom.UnitCube(2)); got != 0 {
		t.Fatalf("empty tree estimate = %v", got)
	}
}

// The BVH must agree with flat evaluation on every query class, including
// overlapping buckets (QuickSel-style).
func TestMatchesFlatEvaluation(t *testing.T) {
	r := rng.New(2024)
	for _, d := range []int{1, 2, 3, 5} {
		buckets, weights := randomBuckets(r, 300, d)
		tr := Build(buckets, weights)
		for trial := 0; trial < 40; trial++ {
			var q geom.Range
			switch trial % 3 {
			case 0:
				c := make(geom.Point, d)
				s := make([]float64, d)
				for j := 0; j < d; j++ {
					c[j] = r.Float64()
					s[j] = r.Float64()
				}
				q = geom.BoxFromCenter(c, s)
			case 1:
				c := make(geom.Point, d)
				for j := range c {
					c[j] = r.Float64()
				}
				q = geom.NewBall(c, r.Float64())
			default:
				a := make(geom.Point, d)
				for j := range a {
					a[j] = 2*r.Float64() - 1
				}
				q = geom.NewHalfspace(a, r.Float64()-0.25)
			}
			want := flatEstimate(buckets, weights, q)
			got := tr.Estimate(q)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("d=%d query %v: bvh %v != flat %v", d, q, got, want)
			}
		}
	}
}

func TestZeroVolumeBucketsConsistent(t *testing.T) {
	buckets := []geom.Box{
		geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5}),
		geom.NewBox(geom.Point{0.7, 0}, geom.Point{0.7, 1}), // zero volume
	}
	weights := []float64{0.6, 0.4}
	tr := Build(buckets, weights)
	q := geom.UnitCube(2)
	want := flatEstimate(buckets, weights, q)
	if got := tr.Estimate(q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero-volume handling differs: bvh %v, flat %v", got, want)
	}
}

func TestQuadHistModelThroughBVH(t *testing.T) {
	ds := dataset.Power(5000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 100)
	m, err := hist.New(2, 600).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	tr := Build(m.Buckets, m.Weights)
	for _, z := range test {
		a, b := m.Estimate(z.R), tr.Estimate(z.R)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("bvh %v != model %v", b, a)
		}
	}
}

func TestWholeSpaceEqualsWeightSum(t *testing.T) {
	r := rng.New(7)
	buckets, weights := randomBuckets(r, 100, 2)
	tr := Build(buckets, weights)
	got := tr.Estimate(geom.UnitCube(2))
	// All buckets are inside the cube: estimate = Σw = 1.
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("whole-space estimate = %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched inputs did not panic")
		}
	}()
	Build(make([]geom.Box, 2), make([]float64, 3))
}

func BenchmarkFlatEstimate(b *testing.B) {
	r := rng.New(1)
	buckets, weights := randomBuckets(r, 4000, 2)
	q := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flatEstimate(buckets, weights, q)
	}
}

func BenchmarkBVHEstimate(b *testing.B) {
	r := rng.New(1)
	buckets, weights := randomBuckets(r, 4000, 2)
	tr := Build(buckets, weights)
	q := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Estimate(q)
	}
}
