package bvh_test

import (
	"math"
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/workload"
)

// flatEstimate is the reference O(m) evaluation.
func flatEstimate(buckets []geom.Box, weights []float64, r geom.Range) float64 {
	s := 0.0
	for j, b := range buckets {
		w := weights[j]
		if w == 0 || !r.IntersectsBox(b) {
			continue
		}
		if r.ContainsBox(b) {
			s += w
			continue
		}
		v := b.Volume()
		if v == 0 {
			continue
		}
		s += r.IntersectBoxVolume(b) / v * w
	}
	return core.Clamp01(s)
}

func randomBuckets(r *rng.RNG, n, d int) ([]geom.Box, []float64) {
	buckets := make([]geom.Box, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range buckets {
		lo := make(geom.Point, d)
		hi := make(geom.Point, d)
		for j := 0; j < d; j++ {
			a, b := r.Float64(), r.Float64()
			lo[j], hi[j] = min(a, b), max(a, b)
		}
		buckets[i] = geom.Box{Lo: lo, Hi: hi}
		weights[i] = r.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return buckets, weights
}

func TestEmptyTree(t *testing.T) {
	tr := bvh.Build(nil, nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has buckets")
	}
	if got := tr.Estimate(geom.UnitCube(2)); got != 0 {
		t.Fatalf("empty tree estimate = %v", got)
	}
}

// The BVH must agree with flat evaluation on every query class, including
// overlapping buckets (QuickSel-style).
func TestMatchesFlatEvaluation(t *testing.T) {
	r := rng.New(2024)
	for _, d := range []int{1, 2, 3, 5} {
		buckets, weights := randomBuckets(r, 300, d)
		tr := bvh.Build(buckets, weights)
		for trial := 0; trial < 40; trial++ {
			var q geom.Range
			switch trial % 3 {
			case 0:
				c := make(geom.Point, d)
				s := make([]float64, d)
				for j := 0; j < d; j++ {
					c[j] = r.Float64()
					s[j] = r.Float64()
				}
				q = geom.BoxFromCenter(c, s)
			case 1:
				c := make(geom.Point, d)
				for j := range c {
					c[j] = r.Float64()
				}
				q = geom.NewBall(c, r.Float64())
			default:
				a := make(geom.Point, d)
				for j := range a {
					a[j] = 2*r.Float64() - 1
				}
				q = geom.NewHalfspace(a, r.Float64()-0.25)
			}
			want := flatEstimate(buckets, weights, q)
			got := tr.Estimate(q)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("d=%d query %v: bvh %v != flat %v", d, q, got, want)
			}
		}
	}
}

func TestZeroVolumeBucketsConsistent(t *testing.T) {
	buckets := []geom.Box{
		geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5}),
		geom.NewBox(geom.Point{0.7, 0}, geom.Point{0.7, 1}), // zero volume
	}
	weights := []float64{0.6, 0.4}
	tr := bvh.Build(buckets, weights)
	q := geom.UnitCube(2)
	want := flatEstimate(buckets, weights, q)
	if got := tr.Estimate(q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero-volume handling differs: bvh %v, flat %v", got, want)
	}
}

// randomQuery draws one random range of the given class index (0 box,
// 1 ball, 2 halfspace, 3 disc-intersection; the latter only in d=3).
func randomQuery(r *rng.RNG, d, class int) geom.Range {
	switch class {
	case 0:
		c := make(geom.Point, d)
		s := make([]float64, d)
		for j := 0; j < d; j++ {
			c[j] = r.Float64()
			s[j] = r.Float64()
		}
		return geom.BoxFromCenter(c, s)
	case 1:
		c := make(geom.Point, d)
		for j := range c {
			c[j] = r.Float64()
		}
		return geom.NewBall(c, 0.05+0.6*r.Float64())
	case 2:
		a := make(geom.Point, d)
		for j := range a {
			a[j] = 2*r.Float64() - 1
		}
		return geom.NewHalfspace(a, r.Float64()-0.25)
	default:
		return geom.NewDiscIntersection(r.Float64(), r.Float64(), 0.05+0.3*r.Float64())
	}
}

// Property (estimate hot path): for every range type — box, ball,
// halfspace, disc-intersection — and random bucket sets (overlapping,
// QuickSel-style; some zero-volume), the BVH walk agrees with the flat
// O(m) sum within 1e-9 relative error.
func TestPropertyBVHMatchesFlatAllRangeTypes(t *testing.T) {
	r := rng.New(2026)
	for _, d := range []int{1, 2, 3, 5} {
		for _, m := range []int{bvh.IndexThreshold, 300, 1000} {
			buckets, weights := randomBuckets(r, m, d)
			// Degrade a few buckets to zero volume (point masses).
			for i := 0; i < m/50+1; i++ {
				j, k := r.IntN(m), r.IntN(d)
				buckets[j].Hi[k] = buckets[j].Lo[k]
			}
			tr := bvh.Build(buckets, weights)
			for trial := 0; trial < 24; trial++ {
				class := trial % 4
				if class == 3 && d != 3 {
					class = trial % 3
				}
				q := randomQuery(r, d, class)
				want := bvh.EstimateFlat(buckets, weights, q)
				got := tr.Estimate(q)
				if math.Abs(got-want) > 1e-9*max(1, math.Abs(want)) {
					t.Fatalf("d=%d m=%d %v: bvh %v != flat %v (rel err %g)",
						d, m, q, got, want, math.Abs(got-want)/max(1e-300, math.Abs(want)))
				}
			}
		}
	}
}

// bvh.EstimateFlat is the exported twin of this file's reference kernel.
func TestEstimateFlatMatchesReference(t *testing.T) {
	r := rng.New(33)
	buckets, weights := randomBuckets(r, 200, 2)
	for trial := 0; trial < 30; trial++ {
		q := randomQuery(r, 2, trial%3)
		if got, want := bvh.EstimateFlat(buckets, weights, q), flatEstimate(buckets, weights, q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("bvh.EstimateFlat %v != reference %v", got, want)
		}
	}
}

// Lazy builds once, shares the same tree across concurrent callers, and
// declines to index tiny bucket sets.
func TestLazyEnsure(t *testing.T) {
	r := rng.New(44)
	small, sw := randomBuckets(r, bvh.IndexThreshold-1, 2)
	var ls bvh.Lazy
	if tr := ls.Ensure(small, sw); tr != nil {
		t.Fatalf("Lazy indexed %d buckets, below threshold %d", len(small), bvh.IndexThreshold)
	}
	big, bw := randomBuckets(r, 4*bvh.IndexThreshold, 2)
	var lb bvh.Lazy
	trees := make([]*bvh.Tree, 16)
	done := make(chan int)
	for i := range trees {
		go func(i int) {
			trees[i] = lb.Ensure(big, bw)
			done <- i
		}(i)
	}
	for range trees {
		<-done
	}
	for i, tr := range trees {
		if tr == nil || tr != trees[0] {
			t.Fatalf("goroutine %d got tree %p, want shared %p", i, tr, trees[0])
		}
	}
	if got, want := trees[0].Estimate(geom.UnitCube(2)), bvh.EstimateFlat(big, bw, geom.UnitCube(2)); math.Abs(got-want) > 1e-9 {
		t.Fatalf("lazy tree estimate %v != flat %v", got, want)
	}
}

func TestQuadHistModelThroughBVH(t *testing.T) {
	ds := dataset.Power(5000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 150, 100)
	m, err := hist.New(2, 600).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	tr := bvh.Build(m.Buckets, m.Weights)
	for _, z := range test {
		a, b := m.Estimate(z.R), tr.Estimate(z.R)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("bvh %v != model %v", b, a)
		}
	}
}

func TestWholeSpaceEqualsWeightSum(t *testing.T) {
	r := rng.New(7)
	buckets, weights := randomBuckets(r, 100, 2)
	tr := bvh.Build(buckets, weights)
	got := tr.Estimate(geom.UnitCube(2))
	// All buckets are inside the cube: estimate = Σw = 1.
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("whole-space estimate = %v", got)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched inputs did not panic")
		}
	}()
	bvh.Build(make([]geom.Box, 2), make([]float64, 3))
}

func BenchmarkFlatEstimate(b *testing.B) {
	r := rng.New(1)
	buckets, weights := randomBuckets(r, 4000, 2)
	q := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flatEstimate(buckets, weights, q)
	}
}

func BenchmarkBVHEstimate(b *testing.B) {
	r := rng.New(1)
	buckets, weights := randomBuckets(r, 4000, 2)
	tr := bvh.Build(buckets, weights)
	q := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Estimate(q)
	}
}
