package bvh_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/rng"
)

// TestPointerQueriesMatchValueQueries: the serving wire decoder passes
// *geom.Box / *geom.Halfspace / *geom.Ball (pointers into pooled arenas)
// where offline callers pass values. The SoA walk dispatches boxes by
// type switch, so the pointer form must hit the same specialized path —
// this pins pointer and value estimates byte-identical across dims,
// classes, and degenerate (zero-volume) buckets.
func TestPointerQueriesMatchValueQueries(t *testing.T) {
	r := rng.New(99)
	for _, d := range []int{1, 2, 3, 5} {
		m := bvh.IndexThreshold * 4
		buckets, weights := randomBuckets(r, m, d)
		for i := 0; i < m/40+1; i++ {
			j, k := r.IntN(m), r.IntN(d)
			buckets[j].Hi[k] = buckets[j].Lo[k] // point mass
		}
		tr := bvh.Build(buckets, weights)
		for trial := 0; trial < 32; trial++ {
			var val, ptr geom.Range
			switch trial % 3 {
			case 0:
				q := randomQuery(r, d, 0).(geom.Box)
				val, ptr = q, &q
			case 1:
				q := randomQuery(r, d, 1).(geom.Ball)
				val, ptr = q, &q
			default:
				q := randomQuery(r, d, 2).(geom.Halfspace)
				val, ptr = q, &q
			}
			ev, ep := tr.Estimate(val), tr.Estimate(ptr)
			if ev != ep {
				t.Fatalf("d=%d %T: pointer estimate %v != value estimate %v", d, val, ep, ev)
			}
			fv, fp := bvh.EstimateFlat(buckets, weights, val), bvh.EstimateFlat(buckets, weights, ptr)
			if fv != fp {
				t.Fatalf("d=%d %T: flat pointer estimate %v != value estimate %v", d, val, fp, fv)
			}
			if math.Abs(ev-fv) > 1e-9*math.Max(1, math.Abs(fv)) {
				t.Fatalf("d=%d %T: bvh %v drifted from flat %v", d, val, ev, fv)
			}
		}
	}
}

// TestReweightConcurrentNoTear publishes Reweight copies through an
// atomic pointer while estimator goroutines hammer whatever tree is
// current — the copy-on-write contract internal/online relies on. Each
// published tree's whole-space estimate equals its own weight sum, so a
// torn read (estimate mixing two weight versions) produces a value
// outside the published set. Run under -race (scripts/verify.sh does) to
// also prove memory-model cleanliness of the shared structure arrays.
func TestReweightConcurrentNoTear(t *testing.T) {
	r := rng.New(41)
	const m = 512
	buckets, w0 := randomBuckets(r, m, 2)
	base := bvh.Build(buckets, w0)

	// Precompute K weight versions and each version's expected estimate
	// for a fixed probe query.
	const versions = 16
	probe := geom.UnitCube(2)
	trees := make([]*bvh.Tree, versions)
	expect := make(map[float64]bool, versions)
	trees[0] = base
	expect[base.Estimate(probe)] = true
	for v := 1; v < versions; v++ {
		w := make([]float64, m)
		for i := range w {
			w[i] = w0[i] * (1 + 0.5*r.Float64())
		}
		trees[v] = base.Reweight(w)
		expect[trees[v].Estimate(probe)] = true
	}

	var cur atomic.Pointer[bvh.Tree]
	cur.Store(base)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got := cur.Load().Estimate(probe)
				if !expect[got] {
					t.Errorf("estimate %v matches no published weight version (torn read?)", got)
					return
				}
			}
		}()
	}
	for it := 0; it < 2000; it++ {
		cur.Store(trees[it%versions])
	}
	close(stop)
	wg.Wait()
}
