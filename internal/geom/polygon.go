package geom

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// ConvexPolygon is a convex polygon range in R², given by its vertices in
// counter-clockwise order. It exists to realize the paper's negative
// example (Section 2.2): convex polygons with arbitrarily many vertices
// have infinite VC dimension — any point set on a circle is shattered — so
// by Theorem 2.1 their selectivity functions are NOT learnable. The
// shattering construction of Figure 5 and Lemma 2.7 is machine-checked in
// internal/core's tests using this type.
type ConvexPolygon struct {
	// Vertices in CCW order; at least 3.
	Vertices []Point
}

// NewConvexPolygon builds a polygon from CCW vertices. It panics if fewer
// than 3 vertices are given or any vertex is not 2-dimensional; convexity
// and orientation are the caller's responsibility (ConvexHull builds both).
func NewConvexPolygon(vertices ...Point) ConvexPolygon {
	if len(vertices) < 3 {
		panic("geom: polygon needs at least 3 vertices")
	}
	for _, v := range vertices {
		if len(v) != 2 {
			panic("geom: polygon vertices must be 2D")
		}
	}
	return ConvexPolygon{Vertices: vertices}
}

// ConvexHull returns the convex hull of the points as a CCW polygon
// (Andrew's monotone chain). It panics if fewer than 3 non-collinear
// points are given.
func ConvexHull(points []Point) ConvexPolygon {
	if len(points) < 3 {
		panic("geom: hull needs at least 3 points")
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	// Sort lexicographically.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1]); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	cross := func(o, a, b Point) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	var lower, upper []Point
	for _, p := range pts {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		panic("geom: hull degenerate (collinear points)")
	}
	return ConvexPolygon{Vertices: hull}
}

func less(a, b Point) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// Dim returns 2.
func (pg ConvexPolygon) Dim() int { return 2 }

// Contains reports whether p lies in the closed polygon: on or left of
// every CCW edge.
func (pg ConvexPolygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		// Cross product (b−a) × (p−a) ≥ 0 for CCW-interior points.
		if (b[0]-a[0])*(p[1]-a[1])-(b[1]-a[1])*(p[0]-a[0]) < -1e-12 {
			return false
		}
	}
	return true
}

// clipAgainstEdge clips a polygon (vertex list) against the half-plane
// left of edge a→b (Sutherland–Hodgman step).
func clipAgainstEdge(poly []Point, a, b Point) []Point {
	side := func(p Point) float64 {
		return (b[0]-a[0])*(p[1]-a[1]) - (b[1]-a[1])*(p[0]-a[0])
	}
	var out []Point
	n := len(poly)
	for i := 0; i < n; i++ {
		cur := poly[i]
		nxt := poly[(i+1)%n]
		sc, sn := side(cur), side(nxt)
		if sc >= 0 {
			out = append(out, cur)
		}
		if (sc > 0 && sn < 0) || (sc < 0 && sn > 0) {
			t := sc / (sc - sn)
			out = append(out, Point{
				cur[0] + t*(nxt[0]-cur[0]),
				cur[1] + t*(nxt[1]-cur[1]),
			})
		}
	}
	return out
}

// clipToPolygon clips the subject polygon against every edge of pg.
func (pg ConvexPolygon) clipToPolygon(subject []Point) []Point {
	out := subject
	n := len(pg.Vertices)
	for i := 0; i < n && len(out) > 0; i++ {
		out = clipAgainstEdge(out, pg.Vertices[i], pg.Vertices[(i+1)%n])
	}
	return out
}

// shoelace returns the (positive) area of a CCW polygon.
func shoelace(poly []Point) float64 {
	area := 0.0
	n := len(poly)
	for i := 0; i < n; i++ {
		a := poly[i]
		b := poly[(i+1)%n]
		area += a[0]*b[1] - b[0]*a[1]
	}
	return math.Abs(area) / 2
}

// IntersectBoxVolume returns the exact area of polygon ∩ box via
// Sutherland–Hodgman clipping and the shoelace formula.
func (pg ConvexPolygon) IntersectBoxVolume(b Box) float64 {
	if b.Empty() {
		return 0
	}
	boxPoly := []Point{
		{b.Lo[0], b.Lo[1]},
		{b.Hi[0], b.Lo[1]},
		{b.Hi[0], b.Hi[1]},
		{b.Lo[0], b.Hi[1]},
	}
	clipped := pg.clipToPolygon(boxPoly)
	if len(clipped) < 3 {
		return 0
	}
	return shoelace(clipped)
}

// IntersectsBox reports whether the polygon meets the box (exact: either a
// vertex relationship holds or the clipped intersection is non-empty).
func (pg ConvexPolygon) IntersectsBox(b Box) bool {
	if b.Empty() {
		return false
	}
	// Cheap checks: any polygon vertex in the box, or any box corner in
	// the polygon.
	for _, v := range pg.Vertices {
		if b.Contains(v) {
			return true
		}
	}
	for mask := 0; mask < 4; mask++ {
		if pg.Contains(b.Corner(mask)) {
			return true
		}
	}
	// Edge-crossing case: the clipped polygon is non-empty.
	boxPoly := []Point{
		{b.Lo[0], b.Lo[1]},
		{b.Hi[0], b.Lo[1]},
		{b.Hi[0], b.Hi[1]},
		{b.Lo[0], b.Hi[1]},
	}
	return len(pg.clipToPolygon(boxPoly)) > 0
}

// ContainsBox reports whether the box lies inside the polygon (all
// corners, by convexity).
func (pg ConvexPolygon) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	for mask := 0; mask < 4; mask++ {
		if !pg.Contains(b.Corner(mask)) {
			return false
		}
	}
	return true
}

// BoundingBox returns the vertex bounding box clipped to the unit cube.
func (pg ConvexPolygon) BoundingBox() Box {
	lo := pg.Vertices[0].Clone()
	hi := pg.Vertices[0].Clone()
	for _, v := range pg.Vertices[1:] {
		for i := 0; i < 2; i++ {
			lo[i] = min(lo[i], v[i])
			hi[i] = max(hi[i], v[i])
		}
	}
	for i := 0; i < 2; i++ {
		lo[i] = clamp01(lo[i])
		hi[i] = clamp01(hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// Sample draws a uniform point from polygon ∩ [0,1]² by rejection.
func (pg ConvexPolygon) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(pg, r)
}

// String renders the polygon for diagnostics.
func (pg ConvexPolygon) String() string {
	return fmt.Sprintf("polygon{%d vertices}", len(pg.Vertices))
}

var _ Range = ConvexPolygon{}
var _ Sampler = ConvexPolygon{}
