package geom

import (
	"fmt"
	"math"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

// DiscIntersection is the semi-algebraic range of Section 2.2 of the paper:
// the set of discs in R² that intersect a query disc B. Each data disc is
// encoded as the point (x, y, z) ∈ R³ where (x, y) is its center and z ≥ 0
// its radius; the query disc with center (Cx, Cy) and radius R maps to
//
//	γ_B = {(x,y,z) : (x−Cx)² + (y−Cy)² ≤ (R+z)², z ≥ 0},
//
// a semi-algebraic set with one inequality of degree two, hence of finite
// VC dimension, so its selectivity function is learnable by Theorem 2.1.
//
// The set is convex in (x, y, z): g(x,y,z) = ‖(x,y)−C‖ − z − R is convex,
// and γ_B = {g ≤ 0} ∩ {z ≥ 0}. We exploit convexity for exact box tests.
type DiscIntersection struct {
	Cx, Cy, R float64
}

// NewDiscIntersection builds the range of discs intersecting the query disc
// centered at (cx, cy) with radius r.
func NewDiscIntersection(cx, cy, r float64) DiscIntersection {
	return DiscIntersection{Cx: cx, Cy: cy, R: r}
}

// Dim returns 3: disc space is parameterized by (x, y, z).
func (dr DiscIntersection) Dim() int { return 3 }

// g evaluates the convex defining function ‖(x,y)−C‖ − z − R; the range is
// {g ≤ 0, z ≥ 0}.
func (dr DiscIntersection) g(x, y, z float64) float64 {
	dx, dy := x-dr.Cx, y-dr.Cy
	return math.Hypot(dx, dy) - z - dr.R
}

// Contains reports whether the encoded disc p = (x, y, z) intersects the
// query disc.
func (dr DiscIntersection) Contains(p Point) bool {
	if len(p) != 3 {
		panic("geom: DiscIntersection.Contains needs a 3D point")
	}
	if p[2] < 0 {
		return false
	}
	return dr.g(p[0], p[1], p[2]) <= 0
}

// IntersectsBox reports whether the range meets the box. By convexity the
// minimum of g over the box is attained at z = Hi[2] and the (x, y) point of
// the box closest to the query center.
func (dr DiscIntersection) IntersectsBox(b Box) bool {
	if b.Empty() || b.Hi[2] < 0 {
		return false
	}
	x := clampTo(dr.Cx, b.Lo[0], b.Hi[0])
	y := clampTo(dr.Cy, b.Lo[1], b.Hi[1])
	return dr.g(x, y, b.Hi[2]) <= 0
}

// ContainsBox reports whether the box lies entirely inside the range. By
// convexity of g it suffices that all corners satisfy g ≤ 0 — but the max of
// g over a box is attained at a corner in (x, y) and at z = Lo[2].
func (dr DiscIntersection) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	if b.Lo[2] < 0 {
		return false
	}
	for _, mx := range []float64{b.Lo[0], b.Hi[0]} {
		for _, my := range []float64{b.Lo[1], b.Hi[1]} {
			if dr.g(mx, my, b.Lo[2]) > 0 {
				return false
			}
		}
	}
	return true
}

// ClassifyBox classifies b against the range, sharing the convexity
// arguments of IntersectsBox (minimum of g at the nearest (x,y) and
// z = Hi[2]) and ContainsBox (maximum at an (x,y) corner and z = Lo[2]).
func (dr DiscIntersection) ClassifyBox(b Box) BoxRelation {
	if b.Empty() || b.Hi[2] < 0 {
		return BoxDisjoint
	}
	x := clampTo(dr.Cx, b.Lo[0], b.Hi[0])
	y := clampTo(dr.Cy, b.Lo[1], b.Hi[1])
	if dr.g(x, y, b.Hi[2]) > 0 {
		return BoxDisjoint
	}
	if b.Lo[2] < 0 {
		return BoxStraddles
	}
	for _, mx := range []float64{b.Lo[0], b.Hi[0]} {
		for _, my := range []float64{b.Lo[1], b.Hi[1]} {
			if dr.g(mx, my, b.Lo[2]) > 0 {
				return BoxStraddles
			}
		}
	}
	return BoxContained
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BoundingBox returns the smallest box containing range ∩ [0,1]³. A disc
// at parameter z intersects the query disc iff its center is within R+z of
// C; at the maximal in-cube radius z = 1 the reach is R+1, so centers range
// over [C−(R+1), C+(R+1)] clipped; z itself needs ‖(x,y)−C‖ ≤ R+z with the
// closest attainable center, giving a lower bound for z.
func (dr DiscIntersection) BoundingBox() Box {
	lo := Point{clamp01(dr.Cx - dr.R - 1), clamp01(dr.Cy - dr.R - 1), 0}
	hi := Point{clamp01(dr.Cx + dr.R + 1), clamp01(dr.Cy + dr.R + 1), 1}
	// Tighten z: the nearest in-cube center to C determines the minimum
	// radius a disc must have to reach the query disc.
	nx := clampTo(dr.Cx, 0, 1)
	ny := clampTo(dr.Cy, 0, 1)
	minDist := math.Hypot(nx-dr.Cx, ny-dr.Cy)
	// Any in-cube center is at distance ≥ minDist but discs with closer
	// centers need z ≥ dist − R ≥ minDist − R.
	lo[2] = clamp01(minDist - dr.R)
	return Box{Lo: lo, Hi: hi}
}

// IntersectBoxVolume returns vol(range ∩ b) by deterministic Halton QMC:
// the region is bounded by a quadratic surface, for which no simple closed
// form over a box exists.
func (dr DiscIntersection) IntersectBoxVolume(b Box) float64 {
	if b.Empty() {
		return 0
	}
	if !dr.IntersectsBox(b) {
		return 0
	}
	if dr.ContainsBox(b) {
		return b.Volume()
	}
	return montecarlo.Volume(b.Lo, b.Hi, qmcSamples, func(p []float64) bool {
		return dr.Contains(Point(p))
	})
}

// Sample draws a uniform point from range ∩ [0,1]³ by rejection sampling.
func (dr DiscIntersection) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(dr, r)
}

// String renders the range for diagnostics.
func (dr DiscIntersection) String() string {
	return fmt.Sprintf("discx{c=(%.4g,%.4g) r=%.4g}", dr.Cx, dr.Cy, dr.R)
}

var _ Range = DiscIntersection{}
var _ Sampler = DiscIntersection{}
var _ BoxClassifier = DiscIntersection{}
