package geom

import (
	"fmt"
	"math"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

// LpBall is the distance-based range under the ℓp norm,
// {x : Σᵢ|xᵢ−Cᵢ|^p ≤ R^p} for finite p ≥ 1, generalizing Ball (p = 2).
// Appendix A.2 of the paper discusses sampling from ℓp balls via their
// smallest bounding boxes; this type makes that class first-class. P = +Inf
// selects the ℓ∞ ball (an axis-aligned cube of side 2R).
type LpBall struct {
	Center Point
	Radius float64
	P      float64
}

// NewLpBall builds an ℓp ball. It panics for p < 1 (not a norm).
func NewLpBall(center Point, radius, p float64) LpBall {
	if p < 1 {
		panic("geom: LpBall needs p ≥ 1")
	}
	return LpBall{Center: center.Clone(), Radius: radius, P: p}
}

// Dim returns the ambient dimension.
func (lb LpBall) Dim() int { return len(lb.Center) }

// lpDist returns the ℓp distance between a and the center.
func (lb LpBall) lpDist(a Point) float64 {
	if math.IsInf(lb.P, 1) {
		worst := 0.0
		for i := range a {
			worst = max(worst, math.Abs(a[i]-lb.Center[i]))
		}
		return worst
	}
	s := 0.0
	for i := range a {
		s += math.Pow(math.Abs(a[i]-lb.Center[i]), lb.P)
	}
	return math.Pow(s, 1/lb.P)
}

// Contains reports whether p lies in the closed ball.
func (lb LpBall) Contains(p Point) bool {
	return lb.lpDist(p) <= lb.Radius
}

// nearFar returns the nearest and farthest points of the box to the
// center, coordinatewise — which minimize/maximize every ℓp norm
// simultaneously.
func (lb LpBall) nearFar(b Box) (near, far Point) {
	near = make(Point, lb.Dim())
	far = make(Point, lb.Dim())
	for i := range near {
		c := lb.Center[i]
		near[i] = clampTo(c, b.Lo[i], b.Hi[i])
		if c-b.Lo[i] > b.Hi[i]-c {
			far[i] = b.Lo[i]
		} else {
			far[i] = b.Hi[i]
		}
	}
	return near, far
}

// IntersectsBox reports whether the ball meets the box.
func (lb LpBall) IntersectsBox(b Box) bool {
	if b.Empty() {
		return false
	}
	near, _ := lb.nearFar(b)
	return lb.lpDist(near) <= lb.Radius
}

// ContainsBox reports whether the box lies inside the ball.
func (lb LpBall) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	_, far := lb.nearFar(b)
	return lb.lpDist(far) <= lb.Radius
}

// BoundingBox returns the smallest box containing ball ∩ [0,1]^d — for
// every p, the ℓp ball fits in center ± radius (Appendix A.2's smallest
// bounding box).
func (lb LpBall) BoundingBox() Box {
	d := lb.Dim()
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = clamp01(lb.Center[i] - lb.Radius)
		hi[i] = clamp01(lb.Center[i] + lb.Radius)
	}
	return Box{Lo: lo, Hi: hi}
}

// IntersectBoxVolume returns vol(ball ∩ b): exact for p ∈ {1 in 1D, ∞},
// deterministic Halton QMC otherwise.
func (lb LpBall) IntersectBoxVolume(b Box) float64 {
	if b.Empty() || lb.Radius <= 0 {
		return 0
	}
	if math.IsInf(lb.P, 1) {
		// ℓ∞ ball is a box.
		return lb.BoundingBoxUnclipped().IntersectBoxVolume(b)
	}
	near, far := lb.nearFar(b)
	if lb.lpDist(near) > lb.Radius {
		return 0
	}
	if lb.lpDist(far) <= lb.Radius {
		return b.Volume()
	}
	if lb.Dim() == 1 {
		lo := max(b.Lo[0], lb.Center[0]-lb.Radius)
		hi := min(b.Hi[0], lb.Center[0]+lb.Radius)
		if hi <= lo {
			return 0
		}
		return hi - lo
	}
	return montecarlo.Volume(b.Lo, b.Hi, qmcSamples, func(p []float64) bool {
		return lb.Contains(Point(p))
	})
}

// BoundingBoxUnclipped is center ± radius without the unit-cube clip (the
// exact extent, used for the ℓ∞ closed form).
func (lb LpBall) BoundingBoxUnclipped() Box {
	d := lb.Dim()
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = lb.Center[i] - lb.Radius
		hi[i] = lb.Center[i] + lb.Radius
	}
	return Box{Lo: lo, Hi: hi}
}

// Sample draws a uniform point from ball ∩ [0,1]^d by rejection from the
// smallest bounding box (Appendix A.2).
func (lb LpBall) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(lb, r)
}

// String renders the ball for diagnostics.
func (lb LpBall) String() string {
	return fmt.Sprintf("l%gball{c=%v r=%.4g}", lb.P, []float64(lb.Center), lb.Radius)
}

var _ Range = LpBall{}
var _ Sampler = LpBall{}
