package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestUnitCube(t *testing.T) {
	c := UnitCube(3)
	if got := c.Volume(); got != 1 {
		t.Fatalf("unit cube volume = %v", got)
	}
	if !c.Contains(Point{0.5, 0.5, 0.5}) {
		t.Fatal("unit cube does not contain its center")
	}
	if c.Contains(Point{1.1, 0.5, 0.5}) {
		t.Fatal("unit cube contains exterior point")
	}
}

func TestBoxVolume(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{0.5, 0.25})
	if got := b.Volume(); !almostEqual(got, 0.125, 1e-15) {
		t.Fatalf("volume = %v, want 0.125", got)
	}
	empty := NewBox(Point{0.5, 0.5}, Point{0.4, 0.6})
	if got := empty.Volume(); got != 0 {
		t.Fatalf("empty box volume = %v", got)
	}
	if !empty.Empty() {
		t.Fatal("inverted box not reported empty")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox(Point{0, 0}, Point{0.6, 0.6})
	b := NewBox(Point{0.4, 0.4}, Point{1, 1})
	got := a.IntersectBoxVolume(b)
	if !almostEqual(got, 0.04, 1e-15) {
		t.Fatalf("intersection volume = %v, want 0.04", got)
	}
	if !a.IntersectsBox(b) || !b.IntersectsBox(a) {
		t.Fatal("overlapping boxes reported disjoint")
	}
	c := NewBox(Point{0.7, 0.7}, Point{0.9, 0.9})
	if a.IntersectsBox(c) {
		t.Fatal("disjoint boxes reported overlapping")
	}
	if got := a.IntersectBoxVolume(c); got != 0 {
		t.Fatalf("disjoint intersection volume = %v", got)
	}
}

func TestBoxContainsBox(t *testing.T) {
	outer := NewBox(Point{0, 0}, Point{1, 1})
	inner := NewBox(Point{0.2, 0.3}, Point{0.4, 0.5})
	if !outer.ContainsBox(inner) {
		t.Fatal("outer does not contain inner")
	}
	if inner.ContainsBox(outer) {
		t.Fatal("inner contains outer")
	}
}

func TestBoxFromCenterClips(t *testing.T) {
	b := BoxFromCenter(Point{0.1, 0.9}, []float64{0.5, 0.5})
	want := NewBox(Point{0, 0.65}, Point{0.35, 1})
	if !b.Equal(want) {
		t.Fatalf("got %v, want %v", b, want)
	}
}

func TestBoxChildrenPartition(t *testing.T) {
	for d := 1; d <= 4; d++ {
		b := UnitCube(d)
		kids := b.Children()
		if len(kids) != 1<<uint(d) {
			t.Fatalf("d=%d: %d children", d, len(kids))
		}
		total := 0.0
		for _, k := range kids {
			total += k.Volume()
			if !b.ContainsBox(k) {
				t.Fatalf("d=%d: child %v escapes parent", d, k)
			}
		}
		if !almostEqual(total, b.Volume(), 1e-12) {
			t.Fatalf("d=%d: children volumes sum to %v", d, total)
		}
		// Pairwise interiors disjoint: intersection volume zero.
		for i := range kids {
			for j := i + 1; j < len(kids); j++ {
				if v := kids[i].IntersectBoxVolume(kids[j]); v != 0 {
					t.Fatalf("d=%d: children %d,%d overlap with volume %v", d, i, j, v)
				}
			}
		}
	}
}

func TestBoxSplit(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{1, 0.5})
	lo, hi := b.Split(0)
	if !lo.Equal(NewBox(Point{0, 0}, Point{0.5, 0.5})) {
		t.Fatalf("lo half = %v", lo)
	}
	if !hi.Equal(NewBox(Point{0.5, 0}, Point{1, 0.5})) {
		t.Fatalf("hi half = %v", hi)
	}
}

func TestBoxCorner(t *testing.T) {
	b := NewBox(Point{0, 0, 0}, Point{1, 2, 3})
	if got := b.Corner(0); got.Dist(Point{0, 0, 0}) != 0 {
		t.Fatalf("corner 0 = %v", got)
	}
	if got := b.Corner(7); got.Dist(Point{1, 2, 3}) != 0 {
		t.Fatalf("corner 7 = %v", got)
	}
	if got := b.Corner(5); got.Dist(Point{1, 0, 3}) != 0 {
		t.Fatalf("corner 5 = %v", got)
	}
}

func TestBoxSampleInBox(t *testing.T) {
	r := rng.New(1)
	b := NewBox(Point{0.2, 0.3, 0.1}, Point{0.7, 0.4, 0.9})
	for i := 0; i < 1000; i++ {
		p, ok := b.Sample(r)
		if !ok {
			t.Fatal("sampling from non-empty box failed")
		}
		if !b.Contains(p) || !p.InUnitCube() {
			t.Fatalf("sample %v outside box", p)
		}
	}
}

// Property: intersection volume is symmetric, bounded by each box volume,
// and consistent with the IntersectsBox predicate.
func TestBoxIntersectionProperties(t *testing.T) {
	r := rng.New(99)
	randBox := func(d int) Box {
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			a, b := r.Float64(), r.Float64()
			lo[i], hi[i] = min(a, b), max(a, b)
		}
		return Box{Lo: lo, Hi: hi}
	}
	for trial := 0; trial < 500; trial++ {
		d := 1 + r.IntN(5)
		a, b := randBox(d), randBox(d)
		vab := a.IntersectBoxVolume(b)
		vba := b.IntersectBoxVolume(a)
		if !almostEqual(vab, vba, 1e-12) {
			t.Fatalf("asymmetric intersection: %v vs %v", vab, vba)
		}
		if vab > a.Volume()+1e-12 || vab > b.Volume()+1e-12 {
			t.Fatalf("intersection volume %v exceeds operand volume", vab)
		}
		if vab > 0 && !a.IntersectsBox(b) {
			t.Fatal("positive volume but IntersectsBox false")
		}
		if a.ContainsBox(b) && !almostEqual(vab, b.Volume(), 1e-12) {
			t.Fatalf("containment but volume %v != %v", vab, b.Volume())
		}
	}
}

func TestBoxEqualQuick(t *testing.T) {
	f := func(vals [4]float64) bool {
		lo := Point{math.Abs(vals[0]), math.Abs(vals[1])}
		hi := Point{math.Abs(vals[2]), math.Abs(vals[3])}
		b := NewBox(lo, hi)
		return b.Equal(b.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
