package geom

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// This file property-tests the Range contract that every query class must
// satisfy — the learners rely on these invariants being uniform across
// boxes, halfspaces, balls, and disc-intersection ranges.

// randomRanges yields a mixed bag of random ranges of each concrete type
// of the given dimension (disc-intersection only when d == 3).
func randomRanges(r *rng.RNG, d, n int) []Range {
	out := make([]Range, 0, n)
	for len(out) < n {
		switch r.IntN(4) {
		case 0:
			c := make(Point, d)
			s := make([]float64, d)
			for i := 0; i < d; i++ {
				c[i] = r.Float64()
				s[i] = r.Float64()
			}
			out = append(out, BoxFromCenter(c, s))
		case 1:
			a := make(Point, d)
			for i := range a {
				a[i] = 2*r.Float64() - 1
			}
			out = append(out, NewHalfspace(a, r.Float64()-0.25))
		case 2:
			c := make(Point, d)
			for i := range c {
				c[i] = r.Float64()
			}
			out = append(out, NewBall(c, 0.05+0.5*r.Float64()))
		case 3:
			if d != 3 {
				continue
			}
			out = append(out, NewDiscIntersection(r.Float64(), r.Float64(), 0.05+0.3*r.Float64()))
		}
	}
	return out
}

func randomSubBox(r *rng.RNG, d int) Box {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		a, b := r.Float64(), r.Float64()
		lo[i], hi[i] = min(a, b), max(a, b)
	}
	return Box{Lo: lo, Hi: hi}
}

// Contract: ContainsBox(b) ⇒ IntersectsBox(b); IntersectsBox false ⇒ zero
// volume; volumes bounded by box volume; ContainsBox ⇒ volume = box volume.
func TestRangeContractPredicatesVsVolumes(t *testing.T) {
	r := rng.New(2027)
	for _, d := range []int{1, 2, 3, 5} {
		for _, rg := range randomRanges(r, d, 60) {
			for trial := 0; trial < 10; trial++ {
				b := randomSubBox(r, d)
				vol := rg.IntersectBoxVolume(b)
				boxVol := b.Volume()
				if vol < -1e-12 || vol > boxVol+1e-9 {
					t.Fatalf("d=%d %v box %v: volume %v outside [0, %v]", d, rg, b, vol, boxVol)
				}
				if rg.ContainsBox(b) {
					if !rg.IntersectsBox(b) && boxVol > 0 {
						t.Fatalf("d=%d %v: ContainsBox without IntersectsBox", d, rg)
					}
					if math.Abs(vol-boxVol) > 1e-6*max(1, boxVol) {
						t.Fatalf("d=%d %v box %v: contained but volume %v != %v", d, rg, b, vol, boxVol)
					}
				}
				if !rg.IntersectsBox(b) && vol > 1e-9 {
					t.Fatalf("d=%d %v box %v: disjoint but volume %v", d, rg, b, vol)
				}
			}
		}
	}
}

// Contract: single-pass ClassifyBox agrees exactly with the two-call
// IntersectsBox/ContainsBox derivation for every range class, including
// empty and degenerate boxes (the BVH prune path depends on this).
func TestRangeContractClassifyBox(t *testing.T) {
	r := rng.New(2029)
	for _, d := range []int{1, 2, 3, 5} {
		for _, rg := range randomRanges(r, d, 60) {
			cl, ok := rg.(BoxClassifier)
			if !ok {
				t.Fatalf("d=%d %v: range does not implement BoxClassifier", d, rg)
			}
			for trial := 0; trial < 25; trial++ {
				b := randomSubBox(r, d)
				switch trial % 5 {
				case 1: // degenerate: zero-volume slab
					b.Hi[r.IntN(d)] = b.Lo[r.IntN(d)]
				case 2: // empty in one dimension
					i := r.IntN(d)
					b.Lo[i], b.Hi[i] = b.Hi[i]+0.1, b.Lo[i]
				}
				want := BoxStraddles
				if !rg.IntersectsBox(b) {
					want = BoxDisjoint
				} else if rg.ContainsBox(b) {
					want = BoxContained
				}
				if got := cl.ClassifyBox(b); got != want {
					t.Fatalf("d=%d %v box %v: ClassifyBox=%v, two-call derivation=%v", d, rg, b, got, want)
				}
				if got := ClassifyBox(rg, b); got != want {
					t.Fatalf("d=%d %v box %v: ClassifyBox helper=%v, want %v", d, rg, b, got, want)
				}
			}
		}
	}
}

// Contract: Contains agrees with the box predicates on degenerate boxes.
func TestRangeContractPointBoxAgreement(t *testing.T) {
	r := rng.New(5)
	for _, d := range []int{1, 2, 3} {
		for _, rg := range randomRanges(r, d, 40) {
			for trial := 0; trial < 20; trial++ {
				p := make(Point, d)
				for i := range p {
					p[i] = r.Float64()
				}
				pt := Box{Lo: p.Clone(), Hi: p.Clone()}
				if rg.Contains(p) && !rg.IntersectsBox(pt) {
					t.Fatalf("d=%d %v: contains point %v but not its degenerate box", d, rg, p)
				}
				if !rg.Contains(p) && rg.ContainsBox(pt) {
					t.Fatalf("d=%d %v: excludes point %v but contains its degenerate box", d, rg, p)
				}
			}
		}
	}
}

// Contract: intersection volume is monotone under box growth.
func TestRangeContractVolumeMonotone(t *testing.T) {
	r := rng.New(7)
	for _, d := range []int{1, 2, 3} {
		for _, rg := range randomRanges(r, d, 40) {
			inner := randomSubBox(r, d)
			outer := inner.Clone()
			for i := 0; i < d; i++ {
				outer.Lo[i] = max(0, outer.Lo[i]-0.2*r.Float64())
				outer.Hi[i] = min(1, outer.Hi[i]+0.2*r.Float64())
			}
			vi := rg.IntersectBoxVolume(inner)
			vo := rg.IntersectBoxVolume(outer)
			// QMC-backed volumes (balls d≥3, disc ranges) carry sampling
			// error proportional to the box volume.
			tol := 1e-9 + 0.03*outer.Volume()
			if vi > vo+tol {
				t.Fatalf("d=%d %v: inner volume %v > outer volume %v", d, rg, vi, vo)
			}
		}
	}
}

// Contract: the bounding box covers every sampled interior point, and
// samples always satisfy Contains.
func TestRangeContractSamplingInBounds(t *testing.T) {
	r := rng.New(11)
	for _, d := range []int{1, 2, 3} {
		for _, rg := range randomRanges(r, d, 25) {
			smp, ok := rg.(Sampler)
			if !ok {
				t.Fatalf("range %v does not implement Sampler", rg)
			}
			bb := rg.BoundingBox()
			if !rg.IntersectsBox(UnitCube(d)) {
				continue
			}
			for i := 0; i < 40; i++ {
				p, ok := smp.Sample(r)
				if !ok {
					break // numerically empty region: allowed
				}
				if !rg.Contains(p) {
					t.Fatalf("d=%d %v: sample %v not contained", d, rg, p)
				}
				if !p.InUnitCube() {
					t.Fatalf("d=%d %v: sample %v outside cube", d, rg, p)
				}
				if !bb.Contains(p) {
					t.Fatalf("d=%d %v: sample %v outside bounding box %v", d, rg, p, bb)
				}
			}
		}
	}
}

// Contract: volume over the whole cube equals the sum over a partition of
// the cube (finite additivity), within QMC tolerance.
func TestRangeContractAdditivity(t *testing.T) {
	r := rng.New(13)
	for _, d := range []int{1, 2, 3} {
		cube := UnitCube(d)
		kids := cube.Children()
		for _, rg := range randomRanges(r, d, 25) {
			total := rg.IntersectBoxVolume(cube)
			sum := 0.0
			for _, k := range kids {
				sum += rg.IntersectBoxVolume(k)
			}
			tol := 1e-9
			switch rg.(type) {
			case Ball:
				if d >= 3 {
					tol = 0.02
				}
			case DiscIntersection:
				tol = 0.02
			}
			if math.Abs(total-sum) > tol {
				t.Fatalf("d=%d %v: cube volume %v != partition sum %v", d, rg, total, sum)
			}
		}
	}
}
