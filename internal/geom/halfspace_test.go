package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func TestHalfspaceContains(t *testing.T) {
	h := NewHalfspace(Point{1, 1}, 1) // x + y ≥ 1
	if !h.Contains(Point{0.6, 0.6}) {
		t.Fatal("interior point rejected")
	}
	if h.Contains(Point{0.2, 0.2}) {
		t.Fatal("exterior point accepted")
	}
	if !h.Contains(Point{0.5, 0.5}) {
		t.Fatal("boundary point rejected (closed halfspace)")
	}
}

func TestHalfspaceVolumeSimple2D(t *testing.T) {
	// x + y ≥ 1 over the unit square cuts off exactly half.
	h := NewHalfspace(Point{1, 1}, 1)
	got := h.IntersectBoxVolume(UnitCube(2))
	if !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("volume = %v, want 0.5", got)
	}
	// x ≥ 0.25 over the unit square leaves 0.75.
	h2 := NewHalfspace(Point{1, 0}, 0.25)
	if got := h2.IntersectBoxVolume(UnitCube(2)); !almostEqual(got, 0.75, 1e-12) {
		t.Fatalf("volume = %v, want 0.75", got)
	}
	// Negative normal: −x ≥ −0.25 ⟺ x ≤ 0.25.
	h3 := NewHalfspace(Point{-1, 0}, -0.25)
	if got := h3.IntersectBoxVolume(UnitCube(2)); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("volume = %v, want 0.25", got)
	}
}

func TestHalfspaceVolumeCorner3D(t *testing.T) {
	// x + y + z ≤ 0.5 over the unit cube is the simplex of volume
	// 0.5³/3! = 1/48, so the ≥ side has 1 − 1/48.
	h := NewHalfspace(Point{-1, -1, -1}, -0.5)
	got := h.IntersectBoxVolume(UnitCube(3))
	want := 0.5 * 0.5 * 0.5 / 6
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("volume = %v, want %v", got, want)
	}
}

func TestHalfspaceVolumeDegenerate(t *testing.T) {
	// Halfspace fully containing the box.
	h := NewHalfspace(Point{1, 1}, -10)
	if got := h.IntersectBoxVolume(UnitCube(2)); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("containing halfspace volume = %v", got)
	}
	// Halfspace missing the box entirely.
	h2 := NewHalfspace(Point{1, 1}, 10)
	if got := h2.IntersectBoxVolume(UnitCube(2)); got != 0 {
		t.Fatalf("disjoint halfspace volume = %v", got)
	}
	// Zero coefficient dimension.
	h3 := NewHalfspace(Point{1, 0, 0}, 0.5)
	if got := h3.IntersectBoxVolume(UnitCube(3)); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("zero-coefficient volume = %v, want 0.5", got)
	}
}

// Property: exact volume matches QMC estimation on random halfspaces and
// random boxes across dimensions 1..8.
func TestHalfspaceVolumeAgainstQMC(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.IntN(8)
		a := make(Point, d)
		for i := range a {
			a[i] = 2*r.Float64() - 1
		}
		b := 2*r.Float64() - 1
		h := NewHalfspace(a, b)
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			u, v := r.Float64(), r.Float64()
			lo[i], hi[i] = min(u, v), max(u, v)
		}
		box := Box{Lo: lo, Hi: hi}
		exact := h.IntersectBoxVolume(box)
		approx := montecarlo.Volume(box.Lo, box.Hi, 20000, func(p []float64) bool {
			return h.Contains(Point(p))
		})
		tol := 0.02*box.Volume() + 1e-9
		if math.Abs(exact-approx) > tol {
			t.Fatalf("d=%d h=%v box=%v: exact %v vs QMC %v", d, h, box, exact, approx)
		}
	}
}

func TestHalfspaceBoxPredicatesConsistent(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 300; trial++ {
		d := 1 + r.IntN(6)
		a := make(Point, d)
		for i := range a {
			a[i] = 2*r.Float64() - 1
		}
		h := NewHalfspace(a, 2*r.Float64()-1)
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			u, v := r.Float64(), r.Float64()
			lo[i], hi[i] = min(u, v), max(u, v)
		}
		box := Box{Lo: lo, Hi: hi}
		vol := h.IntersectBoxVolume(box)
		switch {
		case h.ContainsBox(box):
			if !almostEqual(vol, box.Volume(), 1e-9) {
				t.Fatalf("ContainsBox but vol %v != %v", vol, box.Volume())
			}
		case !h.IntersectsBox(box):
			if vol != 0 {
				t.Fatalf("disjoint but vol %v", vol)
			}
		default:
			if vol < -1e-12 || vol > box.Volume()+1e-12 {
				t.Fatalf("partial volume %v out of [0, %v]", vol, box.Volume())
			}
		}
	}
}

func TestHalfspaceBoundingBoxCoversSamples(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 50; trial++ {
		d := 2 + r.IntN(4)
		a := make(Point, d)
		for i := range a {
			a[i] = 2*r.Float64() - 1
		}
		h := NewHalfspace(a, r.Float64()-0.5)
		if !h.IntersectsBox(UnitCube(d)) {
			continue
		}
		bb := h.BoundingBox()
		for i := 0; i < 200; i++ {
			p, ok := h.Sample(r)
			if !ok {
				break
			}
			if !h.Contains(p) {
				t.Fatalf("sample %v not in halfspace %v", p, h)
			}
			if !bb.Contains(p) {
				t.Fatalf("sample %v escapes bounding box %v of %v", p, bb, h)
			}
		}
	}
}

func TestHalfspaceThroughPoint(t *testing.T) {
	c := Point{0.5, 0.5}
	n := Point{0, 1}
	h := HalfspaceThroughPoint(c, n)
	if !h.Contains(Point{0.1, 0.9}) || h.Contains(Point{0.1, 0.1}) {
		t.Fatalf("halfspace through point misoriented: %v", h)
	}
	if !h.Contains(c) {
		t.Fatal("boundary point excluded")
	}
}

func TestHalfspaceBoundingBoxTightens(t *testing.T) {
	// x ≥ 0.7 over the unit square: bbox should be [0.7,1]×[0,1].
	h := NewHalfspace(Point{1, 0}, 0.7)
	bb := h.BoundingBox()
	if !almostEqual(bb.Lo[0], 0.7, 1e-9) || !almostEqual(bb.Hi[0], 1, 0) {
		t.Fatalf("bbox = %v", bb)
	}
	if !almostEqual(bb.Lo[1], 0, 0) || !almostEqual(bb.Hi[1], 1, 0) {
		t.Fatalf("bbox = %v", bb)
	}
	// x + y ≥ 1.8: both coordinates must be at least 0.8.
	h2 := NewHalfspace(Point{1, 1}, 1.8)
	bb2 := h2.BoundingBox()
	for i := 0; i < 2; i++ {
		if !almostEqual(bb2.Lo[i], 0.8, 1e-9) {
			t.Fatalf("bbox2 = %v", bb2)
		}
	}
}
