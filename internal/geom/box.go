package geom

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// Box is an axis-aligned hyper-rectangle ×ᵢ[Lo[i], Hi[i]]. A box with
// Lo[i] > Hi[i] in any dimension is empty. Boxes are the ranges of the
// orthogonal range space Σ_□ and also the buckets of the histogram models.
type Box struct {
	Lo, Hi Point
}

// NewBox builds a box from its corner points, which must have equal length.
func NewBox(lo, hi Point) Box {
	if len(lo) != len(hi) {
		panic("geom: NewBox corners of different dimension")
	}
	return Box{Lo: lo, Hi: hi}
}

// UnitCube returns [0,1]^d.
func UnitCube(d int) Box {
	lo := make(Point, d)
	hi := make(Point, d)
	for i := range hi {
		hi[i] = 1
	}
	return Box{Lo: lo, Hi: hi}
}

// BoxFromCenter builds the box with the given center and per-dimension side
// lengths, clipped to the unit cube. This is exactly how the paper's
// workload generator specifies orthogonal range queries.
func BoxFromCenter(center Point, sides []float64) Box {
	d := len(center)
	if len(sides) != d {
		panic("geom: BoxFromCenter sides of different dimension")
	}
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = clamp01(center[i] - sides[i]/2)
		hi[i] = clamp01(center[i] + sides[i]/2)
	}
	return Box{Lo: lo, Hi: hi}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Dim returns the dimensionality of the box.
func (b Box) Dim() int { return len(b.Lo) }

// Empty reports whether the box has no interior or boundary points.
func (b Box) Empty() bool {
	for i := range b.Lo {
		if b.Lo[i] > b.Hi[i] {
			return true
		}
	}
	return len(b.Lo) == 0
}

// Clone returns a deep copy of the box.
func (b Box) Clone() Box {
	return Box{Lo: b.Lo.Clone(), Hi: b.Hi.Clone()}
}

// Volume returns the Lebesgue measure of the box (0 if empty).
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		side := b.Hi[i] - b.Lo[i]
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// Center returns the midpoint of the box.
func (b Box) Center() Point {
	c := make(Point, len(b.Lo))
	for i := range c {
		c[i] = (b.Lo[i] + b.Hi[i]) / 2
	}
	return c
}

// Contains reports whether p lies in the (closed) box.
func (b Box) Contains(p Point) bool {
	if len(p) != len(b.Lo) {
		panic("geom: Box.Contains dimension mismatch")
	}
	for i := range p {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Intersect returns the intersection box b ∩ o (possibly empty).
func (b Box) Intersect(o Box) Box {
	d := b.Dim()
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = max(b.Lo[i], o.Lo[i])
		hi[i] = min(b.Hi[i], o.Hi[i])
	}
	return Box{Lo: lo, Hi: hi}
}

// IntersectsBox reports whether the boxes share any point.
func (b Box) IntersectsBox(o Box) bool {
	for i := range b.Lo {
		if b.Lo[i] > o.Hi[i] || o.Lo[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o ⊆ b.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	for i := range b.Lo {
		if o.Lo[i] < b.Lo[i] || o.Hi[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// ClassifyBox classifies o against b in one disjointness pass, agreeing
// exactly with the IntersectsBox/ContainsBox derivation.
func (b Box) ClassifyBox(o Box) BoxRelation {
	for i := range b.Lo {
		if b.Lo[i] > o.Hi[i] || o.Lo[i] > b.Hi[i] {
			return BoxDisjoint
		}
	}
	if b.ContainsBox(o) {
		return BoxContained
	}
	return BoxStraddles
}

// IntersectBoxVolume returns vol(b ∩ o) exactly.
func (b Box) IntersectBoxVolume(o Box) float64 {
	v := 1.0
	for i := range b.Lo {
		side := min(b.Hi[i], o.Hi[i]) - max(b.Lo[i], o.Lo[i])
		if side <= 0 {
			return 0
		}
		v *= side
	}
	return v
}

// BoundingBox returns the box clipped to the unit cube.
func (b Box) BoundingBox() Box {
	return b.Intersect(UnitCube(b.Dim()))
}

// Sample draws a uniform point from b ∩ [0,1]^d.
func (b Box) Sample(r *rng.RNG) (Point, bool) {
	bb := b.BoundingBox()
	if bb.Empty() {
		return UnitCube(b.Dim()).Center(), false
	}
	p := make(Point, b.Dim())
	for i := range p {
		p[i] = bb.Lo[i] + r.Float64()*(bb.Hi[i]-bb.Lo[i])
	}
	return p, true
}

// Split halves the box along dimension dim, returning the low and high half.
func (b Box) Split(dim int) (Box, Box) {
	mid := (b.Lo[dim] + b.Hi[dim]) / 2
	lo := b.Clone()
	hi := b.Clone()
	lo.Hi[dim] = mid
	hi.Lo[dim] = mid
	return lo, hi
}

// Children returns the 2^d equal sub-boxes of b (the quadtree split of
// Algorithm 2, generalized to d dimensions).
func (b Box) Children() []Box {
	d := b.Dim()
	n := 1 << uint(d)
	out := make([]Box, 0, n)
	for mask := 0; mask < n; mask++ {
		lo := make(Point, d)
		hi := make(Point, d)
		for i := 0; i < d; i++ {
			mid := (b.Lo[i] + b.Hi[i]) / 2
			if mask&(1<<uint(i)) == 0 {
				lo[i], hi[i] = b.Lo[i], mid
			} else {
				lo[i], hi[i] = mid, b.Hi[i]
			}
		}
		out = append(out, Box{Lo: lo, Hi: hi})
	}
	return out
}

// Corner returns the corner of b selected by the bit mask: bit i set means
// dimension i takes Hi[i], otherwise Lo[i].
func (b Box) Corner(mask int) Point {
	p := make(Point, b.Dim())
	for i := range p {
		if mask&(1<<uint(i)) != 0 {
			p[i] = b.Hi[i]
		} else {
			p[i] = b.Lo[i]
		}
	}
	return p
}

// Equal reports whether the boxes have identical corners.
func (b Box) Equal(o Box) bool {
	if b.Dim() != o.Dim() {
		return false
	}
	for i := range b.Lo {
		if b.Lo[i] != o.Lo[i] || b.Hi[i] != o.Hi[i] {
			return false
		}
	}
	return true
}

// String renders the box as [lo,hi]×[lo,hi]×…, for diagnostics.
func (b Box) String() string {
	var sb strings.Builder
	for i := range b.Lo {
		if i > 0 {
			sb.WriteByte('x')
		}
		fmt.Fprintf(&sb, "[%.4g,%.4g]", b.Lo[i], b.Hi[i])
	}
	return sb.String()
}

var _ Range = Box{}
var _ Sampler = Box{}
var _ BoxClassifier = Box{}
