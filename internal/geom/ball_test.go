package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func TestBallContains(t *testing.T) {
	b := NewBall(Point{0.5, 0.5}, 0.25)
	if !b.Contains(Point{0.5, 0.5}) {
		t.Fatal("center rejected")
	}
	if !b.Contains(Point{0.75, 0.5}) {
		t.Fatal("boundary point rejected (closed ball)")
	}
	if b.Contains(Point{0.76, 0.5}) {
		t.Fatal("exterior point accepted")
	}
}

func TestBallVolume1D(t *testing.T) {
	b := NewBall(Point{0.5}, 0.3)
	if got := b.IntersectBoxVolume(UnitCube(1)); !almostEqual(got, 0.6, 1e-12) {
		t.Fatalf("1D ball volume = %v, want 0.6", got)
	}
	// Ball sticking out of the cube.
	b2 := NewBall(Point{0.1}, 0.3)
	if got := b2.IntersectBoxVolume(UnitCube(1)); !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("clipped 1D ball volume = %v, want 0.4", got)
	}
}

func TestDiscFullyInsideRect(t *testing.T) {
	b := NewBall(Point{0.5, 0.5}, 0.2)
	got := b.IntersectBoxVolume(UnitCube(2))
	want := math.Pi * 0.04
	if !almostEqual(got, want, 1e-10) {
		t.Fatalf("disc area = %v, want %v", got, want)
	}
}

func TestDiscHalfInRect(t *testing.T) {
	// Disc centered on the left edge: exactly half inside.
	b := NewBall(Point{0, 0.5}, 0.2)
	got := b.IntersectBoxVolume(UnitCube(2))
	want := math.Pi * 0.04 / 2
	if !almostEqual(got, want, 1e-10) {
		t.Fatalf("half-disc area = %v, want %v", got, want)
	}
}

func TestDiscQuarterInRect(t *testing.T) {
	// Disc centered on a corner: a quarter inside.
	b := NewBall(Point{0, 0}, 0.3)
	got := b.IntersectBoxVolume(UnitCube(2))
	want := math.Pi * 0.09 / 4
	if !almostEqual(got, want, 1e-10) {
		t.Fatalf("quarter-disc area = %v, want %v", got, want)
	}
}

func TestRectInsideDisc(t *testing.T) {
	b := NewBall(Point{0.5, 0.5}, 0.9)
	box := NewBox(Point{0.3, 0.3}, Point{0.7, 0.7})
	if got := b.IntersectBoxVolume(box); !almostEqual(got, 0.16, 1e-12) {
		t.Fatalf("contained rect volume = %v, want 0.16", got)
	}
}

// Property: exact 2D disc–rectangle area matches QMC on random instances.
func TestDiscRectAreaAgainstQMC(t *testing.T) {
	r := rng.New(5150)
	for trial := 0; trial < 300; trial++ {
		c := Point{r.Float64()*1.4 - 0.2, r.Float64()*1.4 - 0.2}
		rad := 0.05 + 0.6*r.Float64()
		ball := NewBall(c, rad)
		u1, u2 := r.Float64(), r.Float64()
		v1, v2 := r.Float64(), r.Float64()
		box := NewBox(Point{min(u1, u2), min(v1, v2)}, Point{max(u1, u2), max(v1, v2)})
		if box.Volume() < 1e-4 {
			continue
		}
		exact := ball.IntersectBoxVolume(box)
		approx := montecarlo.Volume(box.Lo, box.Hi, 40000, func(p []float64) bool {
			return ball.Contains(Point(p))
		})
		tol := 0.02*box.Volume() + 1e-9
		if math.Abs(exact-approx) > tol {
			t.Fatalf("ball=%v box=%v: exact %v vs QMC %v", ball, box, exact, approx)
		}
	}
}

func TestBallVolumeHighDimPlausible(t *testing.T) {
	// Volume of the full ball of radius 0.4 centered in the cube, d=3:
	// (4/3)πr³.
	b := NewBall(Point{0.5, 0.5, 0.5}, 0.4)
	got := b.IntersectBoxVolume(UnitCube(3))
	want := 4.0 / 3.0 * math.Pi * 0.4 * 0.4 * 0.4
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("3D ball volume = %v, want ≈%v", got, want)
	}
}

func TestBallBoxPredicates(t *testing.T) {
	b := NewBall(Point{0.5, 0.5}, 0.3)
	inside := NewBox(Point{0.45, 0.45}, Point{0.55, 0.55})
	if !b.ContainsBox(inside) {
		t.Fatal("small central box not contained")
	}
	outside := NewBox(Point{0.9, 0.9}, Point{1, 1})
	if b.IntersectsBox(outside) {
		t.Fatal("distant box reported intersecting")
	}
	partial := NewBox(Point{0.7, 0.4}, Point{0.9, 0.6})
	if !b.IntersectsBox(partial) || b.ContainsBox(partial) {
		t.Fatal("partial box misclassified")
	}
}

func TestBallSampleInBall(t *testing.T) {
	r := rng.New(77)
	for _, d := range []int{1, 2, 3, 5, 8} {
		c := make(Point, d)
		for i := range c {
			c[i] = 0.3 + 0.4*r.Float64()
		}
		b := NewBall(c, 0.35)
		for i := 0; i < 100; i++ {
			p, ok := b.Sample(r)
			if !ok {
				t.Fatalf("d=%d: sampling failed", d)
			}
			if !b.Contains(p) || !p.InUnitCube() {
				t.Fatalf("d=%d: sample %v outside ball ∩ cube", d, p)
			}
		}
	}
}

func TestUnitDiscCornerAreaIdentities(t *testing.T) {
	cases := []struct {
		x, y, want float64
	}{
		{1, 1, math.Pi},
		{1, 0, math.Pi / 2},
		{0, 1, math.Pi / 2},
		{0, 0, math.Pi / 4},
		{-1, 1, 0},
		{1, -1, 0},
	}
	for _, c := range cases {
		got := unitDiscCornerArea(c.x, c.y)
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("A(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
	// Symmetry A(x,y) == A(y,x).
	r := rng.New(8)
	for i := 0; i < 200; i++ {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		if !almostEqual(unitDiscCornerArea(x, y), unitDiscCornerArea(y, x), 1e-12) {
			t.Fatalf("asymmetric corner area at (%v,%v)", x, y)
		}
	}
	// Monotone in both arguments.
	for i := 0; i < 200; i++ {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		if unitDiscCornerArea(x+0.1, y) < unitDiscCornerArea(x, y)-1e-12 {
			t.Fatalf("corner area decreasing in x at (%v,%v)", x, y)
		}
		if unitDiscCornerArea(x, y+0.1) < unitDiscCornerArea(x, y)-1e-12 {
			t.Fatalf("corner area decreasing in y at (%v,%v)", x, y)
		}
	}
}
