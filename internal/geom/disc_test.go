package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func TestDiscIntersectionContains(t *testing.T) {
	// Query disc centered (0.5, 0.5), radius 0.2.
	dr := NewDiscIntersection(0.5, 0.5, 0.2)
	// A disc at (0.8, 0.5) with radius 0.15 overlaps (gap 0.3 − 0.35 < 0).
	if !dr.Contains(Point{0.8, 0.5, 0.15}) {
		t.Fatal("overlapping disc rejected")
	}
	// A disc at (0.9, 0.5) with radius 0.1 misses (0.4 > 0.3).
	if dr.Contains(Point{0.9, 0.5, 0.1}) {
		t.Fatal("disjoint disc accepted")
	}
	// Tangent discs count as intersecting (closed set).
	if !dr.Contains(Point{0.9, 0.5, 0.2}) {
		t.Fatal("tangent disc rejected")
	}
	// Negative radius is not a disc.
	if dr.Contains(Point{0.5, 0.5, -0.1}) {
		t.Fatal("negative radius accepted")
	}
}

func TestDiscIntersectionConvexityPredicates(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 300; trial++ {
		dr := NewDiscIntersection(r.Float64(), r.Float64(), 0.05+0.4*r.Float64())
		lo := Point{r.Float64(), r.Float64(), r.Float64()}
		hi := Point{lo[0] + 0.3*r.Float64(), lo[1] + 0.3*r.Float64(), lo[2] + 0.3*r.Float64()}
		box := Box{Lo: lo, Hi: hi}
		contains := dr.ContainsBox(box)
		intersects := dr.IntersectsBox(box)
		if contains && !intersects {
			t.Fatal("ContainsBox without IntersectsBox")
		}
		// Validate against corner/point sampling.
		rr := rng.New(uint64(trial) + 1)
		anyIn, allIn := false, true
		for i := 0; i < 200; i++ {
			p := Point{
				lo[0] + rr.Float64()*(hi[0]-lo[0]),
				lo[1] + rr.Float64()*(hi[1]-lo[1]),
				lo[2] + rr.Float64()*(hi[2]-lo[2]),
			}
			if dr.Contains(p) {
				anyIn = true
			} else {
				allIn = false
			}
		}
		if anyIn && !intersects {
			t.Fatalf("sampled interior point but IntersectsBox false: %v %v", dr, box)
		}
		if contains && !allIn {
			t.Fatalf("ContainsBox but sampled exterior point: %v %v", dr, box)
		}
	}
}

func TestDiscIntersectionVolumeAgainstQMC(t *testing.T) {
	dr := NewDiscIntersection(0.5, 0.5, 0.25)
	box := NewBox(Point{0.2, 0.2, 0}, Point{0.9, 0.9, 0.5})
	got := dr.IntersectBoxVolume(box)
	want := montecarlo.Volume(box.Lo, box.Hi, 100000, func(p []float64) bool {
		return dr.Contains(Point(p))
	})
	if math.Abs(got-want) > 0.01*box.Volume() {
		t.Fatalf("volume %v vs reference %v", got, want)
	}
}

func TestDiscIntersectionSample(t *testing.T) {
	r := rng.New(13)
	dr := NewDiscIntersection(0.4, 0.6, 0.2)
	for i := 0; i < 300; i++ {
		p, ok := dr.Sample(r)
		if !ok {
			t.Fatal("sampling failed for a fat range")
		}
		if !dr.Contains(p) {
			t.Fatalf("sample %v outside range", p)
		}
		if !p.InUnitCube() {
			t.Fatalf("sample %v outside unit cube", p)
		}
	}
}

func TestDiscIntersectionBoundingBoxCoversRange(t *testing.T) {
	r := rng.New(29)
	for trial := 0; trial < 50; trial++ {
		dr := NewDiscIntersection(r.Float64(), r.Float64(), 0.05+0.3*r.Float64())
		bb := dr.BoundingBox()
		for i := 0; i < 100; i++ {
			p, ok := dr.Sample(r)
			if !ok {
				break
			}
			if !bb.Contains(p) {
				t.Fatalf("sample %v escapes bounding box %v of %v", p, bb, dr)
			}
		}
	}
}
