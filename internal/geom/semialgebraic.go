package geom

import (
	"fmt"
	"strings"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

// This file implements the general semi-algebraic range class T_{d,b,Δ} of
// Section 2.2 of the paper: subsets of R^d defined by a conjunction of at
// most b polynomial inequalities of degree at most Δ. Its VC dimension is
// a constant λ(d,b,Δ), so by Theorem 2.1 its selectivity functions are
// learnable; PTSHIST can train on these ranges out of the box because it
// only needs the membership test.
//
// Box predicates (ContainsBox / IntersectsBox) are decided soundly with
// interval arithmetic: evaluating each polynomial over the box interval
// yields an enclosure [lo, hi] of its value range; hi ≤ 0 proves the
// constraint holds everywhere, lo > 0 proves it fails everywhere. Interval
// enclosures are conservative, so IntersectsBox may report true for a box
// the range misses — allowed by the Range contract used in kd-tree pruning
// and quadtree refinement (both only need soundness, not tightness).

// Monomial is coeff · ∏ x_i^Exps[i].
type Monomial struct {
	Coeff float64
	Exps  []int // one exponent per dimension
}

// Polynomial is a multivariate polynomial Σ monomials.
type Polynomial struct {
	Terms []Monomial
}

// Eval evaluates the polynomial at a point.
func (poly Polynomial) Eval(p Point) float64 {
	s := 0.0
	for _, t := range poly.Terms {
		v := t.Coeff
		for i, e := range t.Exps {
			for k := 0; k < e; k++ {
				v *= p[i]
			}
		}
		s += v
	}
	return s
}

// interval is a closed real interval.
type interval struct{ lo, hi float64 }

func (iv interval) mul(o interval) interval {
	a, b, c, d := iv.lo*o.lo, iv.lo*o.hi, iv.hi*o.lo, iv.hi*o.hi
	return interval{min(min(a, b), min(c, d)), max(max(a, b), max(c, d))}
}

func (iv interval) add(o interval) interval {
	return interval{iv.lo + o.lo, iv.hi + o.hi}
}

func (iv interval) pow(e int) interval {
	switch {
	case e == 0:
		return interval{1, 1}
	case e == 1:
		return iv
	case e%2 == 1:
		r := iv
		for k := 1; k < e; k++ {
			r = r.mul(iv)
		}
		return r
	default:
		// Even powers: the enclosure tightens around 0 when the
		// interval straddles it.
		lo2, hi2 := iv.lo, iv.hi
		a := powF(lo2, e)
		b := powF(hi2, e)
		out := interval{min(a, b), max(a, b)}
		if iv.lo <= 0 && iv.hi >= 0 {
			out.lo = 0
		}
		return out
	}
}

func powF(x float64, e int) float64 {
	v := 1.0
	for k := 0; k < e; k++ {
		v *= x
	}
	return v
}

// evalInterval returns an enclosure of the polynomial's range over the box.
func (poly Polynomial) evalInterval(b Box) interval {
	total := interval{0, 0}
	for _, t := range poly.Terms {
		term := interval{t.Coeff, t.Coeff}
		for i, e := range t.Exps {
			if e == 0 {
				continue
			}
			term = term.mul(interval{b.Lo[i], b.Hi[i]}.pow(e))
		}
		total = total.add(term)
	}
	return total
}

// SemiAlgebraic is the range {x : Pⱼ(x) ≤ 0 for every constraint Pⱼ} —
// one member of T_{d,b,Δ}.
type SemiAlgebraic struct {
	DimN        int
	Constraints []Polynomial
}

// NewSemiAlgebraic builds a semi-algebraic range in dimension d.
func NewSemiAlgebraic(d int, constraints ...Polynomial) SemiAlgebraic {
	return SemiAlgebraic{DimN: d, Constraints: constraints}
}

// Dim returns the ambient dimension.
func (sa SemiAlgebraic) Dim() int { return sa.DimN }

// Contains reports whether every constraint polynomial is ≤ 0 at p.
func (sa SemiAlgebraic) Contains(p Point) bool {
	for _, c := range sa.Constraints {
		if c.Eval(p) > 0 {
			return false
		}
	}
	return true
}

// ContainsBox reports (soundly) whether the box lies inside the range:
// true only when interval arithmetic proves every constraint ≤ 0 over the
// whole box.
func (sa SemiAlgebraic) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	for _, c := range sa.Constraints {
		if c.evalInterval(b).hi > 0 {
			return false
		}
	}
	return true
}

// IntersectsBox reports (soundly, conservatively) whether the range may
// meet the box: false only when interval arithmetic proves some constraint
// > 0 over the whole box.
func (sa SemiAlgebraic) IntersectsBox(b Box) bool {
	if b.Empty() {
		return false
	}
	for _, c := range sa.Constraints {
		if c.evalInterval(b).lo > 0 {
			return false
		}
	}
	return true
}

// BoundingBox returns an enclosure of range ∩ [0,1]^d, tightened by
// recursive interval bisection (a few levels are enough for the workloads
// here; the box only needs to be sound).
func (sa SemiAlgebraic) BoundingBox() Box {
	d := sa.Dim()
	// Collect leaves of a shallow subdivision that may intersect.
	var lo, hi Point
	first := true
	var walk func(b Box, depth int)
	walk = func(b Box, depth int) {
		if !sa.IntersectsBox(b) {
			return
		}
		if depth == 0 || sa.ContainsBox(b) {
			if first {
				lo = b.Lo.Clone()
				hi = b.Hi.Clone()
				first = false
				return
			}
			for i := 0; i < d; i++ {
				lo[i] = min(lo[i], b.Lo[i])
				hi[i] = max(hi[i], b.Hi[i])
			}
			return
		}
		for _, k := range b.Children() {
			walk(k, depth-1)
		}
	}
	// Interval arithmetic suffers from the dependency problem (x² and x
	// in the same constraint decorrelate), so shallow subdivisions leave
	// loose enclosures; bisect deeper where dimension permits.
	depth := 5
	switch {
	case d == 3:
		depth = 3
	case d > 3:
		depth = 1 // 2^(d·depth) children: keep the subdivision small
	}
	walk(UnitCube(d), depth)
	if first {
		// Nothing provably intersecting: canonical empty box.
		e := make(Point, d)
		neg := make(Point, d)
		for i := range neg {
			neg[i] = -1
		}
		return Box{Lo: e, Hi: neg}
	}
	return Box{Lo: lo, Hi: hi}
}

// IntersectBoxVolume estimates vol(range ∩ b) by deterministic Halton QMC
// (general polynomial regions admit no closed-form volumes), after the
// sound short-circuits.
func (sa SemiAlgebraic) IntersectBoxVolume(b Box) float64 {
	if b.Empty() {
		return 0
	}
	if !sa.IntersectsBox(b) {
		return 0
	}
	if sa.ContainsBox(b) {
		return b.Volume()
	}
	return montecarlo.Volume(b.Lo, b.Hi, qmcSamples, func(p []float64) bool {
		return sa.Contains(Point(p))
	})
}

// Sample draws a uniform point from range ∩ [0,1]^d by rejection.
func (sa SemiAlgebraic) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(sa, r)
}

// String renders the range for diagnostics.
func (sa SemiAlgebraic) String() string {
	parts := make([]string, len(sa.Constraints))
	for i, c := range sa.Constraints {
		parts[i] = fmt.Sprintf("p%d(x)<=0(%d terms)", i, len(c.Terms))
	}
	return "semialg{" + strings.Join(parts, " ∧ ") + "}"
}

// Annulus builds the paper's Figure 3 example family: the set
// r_inner² ≤ (x−cx)² + (y−cy)² ≤ r_outer² below the parabola
// y − cy ≤ k(x−cx)², as a 2D semi-algebraic range with b = 3 constraints
// of degree ≤ 2.
func Annulus(cx, cy, rInner, rOuter, k float64) SemiAlgebraic {
	// (x−cx)² + (y−cy)² − rOuter² ≤ 0
	outer := Polynomial{Terms: []Monomial{
		{Coeff: 1, Exps: []int{2, 0}},
		{Coeff: 1, Exps: []int{0, 2}},
		{Coeff: -2 * cx, Exps: []int{1, 0}},
		{Coeff: -2 * cy, Exps: []int{0, 1}},
		{Coeff: cx*cx + cy*cy - rOuter*rOuter, Exps: []int{0, 0}},
	}}
	// rInner² − (x−cx)² − (y−cy)² ≤ 0
	inner := Polynomial{Terms: []Monomial{
		{Coeff: -1, Exps: []int{2, 0}},
		{Coeff: -1, Exps: []int{0, 2}},
		{Coeff: 2 * cx, Exps: []int{1, 0}},
		{Coeff: 2 * cy, Exps: []int{0, 1}},
		{Coeff: rInner*rInner - cx*cx - cy*cy, Exps: []int{0, 0}},
	}}
	// (y−cy) − k(x−cx)² ≤ 0
	parabola := Polynomial{Terms: []Monomial{
		{Coeff: 1, Exps: []int{0, 1}},
		{Coeff: -k, Exps: []int{2, 0}},
		{Coeff: 2 * k * cx, Exps: []int{1, 0}},
		{Coeff: -k*cx*cx - cy, Exps: []int{0, 0}},
	}}
	return NewSemiAlgebraic(2, outer, inner, parabola)
}

var _ Range = SemiAlgebraic{}
var _ Sampler = SemiAlgebraic{}
