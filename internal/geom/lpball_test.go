package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func TestLpBallContains(t *testing.T) {
	// ℓ1 ball of radius 0.3: diamond.
	l1 := NewLpBall(Point{0.5, 0.5}, 0.3, 1)
	if !l1.Contains(Point{0.5, 0.5}) || !l1.Contains(Point{0.6, 0.65}) {
		t.Fatal("ℓ1 interior rejected")
	}
	if l1.Contains(Point{0.7, 0.7}) { // ℓ1 distance 0.4 > 0.3
		t.Fatal("ℓ1 exterior accepted")
	}
	// ℓ∞ ball: cube.
	linf := NewLpBall(Point{0.5, 0.5}, 0.3, math.Inf(1))
	if !linf.Contains(Point{0.7, 0.7}) {
		t.Fatal("ℓ∞ interior rejected")
	}
	if linf.Contains(Point{0.85, 0.5}) {
		t.Fatal("ℓ∞ exterior accepted")
	}
}

func TestLpBallAgreesWithL2Ball(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.IntN(4)
		c := make(Point, d)
		for i := range c {
			c[i] = r.Float64()
		}
		rad := 0.05 + 0.4*r.Float64()
		lp := NewLpBall(c, rad, 2)
		l2 := NewBall(c, rad)
		p := make(Point, d)
		for i := range p {
			p[i] = r.Float64()
		}
		if lp.Contains(p) != l2.Contains(p) {
			t.Fatalf("p=2 membership differs from Ball at %v", p)
		}
		box := randomSubBox(r, d)
		if lp.IntersectsBox(box) != l2.IntersectsBox(box) {
			t.Fatalf("p=2 IntersectsBox differs for %v", box)
		}
		if lp.ContainsBox(box) != l2.ContainsBox(box) {
			t.Fatalf("p=2 ContainsBox differs for %v", box)
		}
	}
}

func TestL1BallVolume2D(t *testing.T) {
	// ℓ1 ball (diamond) fully inside: area 2r².
	l1 := NewLpBall(Point{0.5, 0.5}, 0.3, 1)
	got := l1.IntersectBoxVolume(UnitCube(2))
	want := 2 * 0.3 * 0.3
	if math.Abs(got-want) > 0.005 {
		t.Fatalf("ℓ1 ball area = %v, want %v", got, want)
	}
}

func TestLinfBallVolumeExact(t *testing.T) {
	linf := NewLpBall(Point{0.5, 0.5}, 0.2, math.Inf(1))
	got := linf.IntersectBoxVolume(UnitCube(2))
	if math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("ℓ∞ ball area = %v, want 0.16 (exact)", got)
	}
	// Clipped at the cube edge.
	edge := NewLpBall(Point{0.05, 0.5}, 0.2, math.Inf(1))
	if got := edge.IntersectBoxVolume(UnitCube(2)); math.Abs(got-0.25*0.4) > 1e-12 {
		t.Fatalf("clipped ℓ∞ area = %v, want 0.1", got)
	}
}

func TestLpBallVolumeAgainstQMC(t *testing.T) {
	for _, p := range []float64{1, 1.5, 3} {
		lb := NewLpBall(Point{0.45, 0.55}, 0.35, p)
		box := NewBox(Point{0.2, 0.3}, Point{0.8, 0.9})
		got := lb.IntersectBoxVolume(box)
		want := montecarlo.Volume(box.Lo, box.Hi, 60000, func(q []float64) bool {
			return lb.Contains(Point(q))
		})
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("p=%v: volume %v vs reference %v", p, got, want)
		}
	}
}

func TestLpBallNestedness(t *testing.T) {
	// For fixed radius, ℓp balls are nested: p ≤ q ⇒ Bp ⊆ Bq.
	r := rng.New(9)
	c := Point{0.5, 0.5, 0.5}
	l1 := NewLpBall(c, 0.3, 1)
	l2 := NewLpBall(c, 0.3, 2)
	linf := NewLpBall(c, 0.3, math.Inf(1))
	for i := 0; i < 2000; i++ {
		p := Point{r.Float64(), r.Float64(), r.Float64()}
		if l1.Contains(p) && !l2.Contains(p) {
			t.Fatalf("ℓ1 ⊄ ℓ2 at %v", p)
		}
		if l2.Contains(p) && !linf.Contains(p) {
			t.Fatalf("ℓ2 ⊄ ℓ∞ at %v", p)
		}
	}
}

func TestLpBallSampling(t *testing.T) {
	r := rng.New(21)
	for _, p := range []float64{1, 2, 4, math.Inf(1)} {
		lb := NewLpBall(Point{0.4, 0.6}, 0.25, p)
		bb := lb.BoundingBox()
		for i := 0; i < 200; i++ {
			pt, ok := lb.Sample(r)
			if !ok {
				t.Fatalf("p=%v: sampling failed", p)
			}
			if !lb.Contains(pt) || !bb.Contains(pt) {
				t.Fatalf("p=%v: sample %v invalid", p, pt)
			}
		}
	}
}

func TestLpBallRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p < 1 accepted")
		}
	}()
	NewLpBall(Point{0.5}, 0.1, 0.5)
}

func TestLpBallKDTreeCompatible(t *testing.T) {
	// The box predicates are sound, so kd-tree counting matches brute
	// force (checked here without the kdtree import via direct scan of
	// the predicates on random boxes).
	r := rng.New(31)
	lb := NewLpBall(Point{0.5, 0.5}, 0.3, 1.5)
	for trial := 0; trial < 200; trial++ {
		b := randomSubBox(r, 2)
		if lb.ContainsBox(b) {
			// Every sampled point of the box is in the ball.
			for k := 0; k < 20; k++ {
				p := Point{
					b.Lo[0] + r.Float64()*(b.Hi[0]-b.Lo[0]),
					b.Lo[1] + r.Float64()*(b.Hi[1]-b.Lo[1]),
				}
				if !lb.Contains(p) {
					t.Fatalf("ContainsBox %v but point %v outside", b, p)
				}
			}
		}
		if !lb.IntersectsBox(b) {
			for k := 0; k < 20; k++ {
				p := Point{
					b.Lo[0] + r.Float64()*(b.Hi[0]-b.Lo[0]),
					b.Lo[1] + r.Float64()*(b.Hi[1]-b.Lo[1]),
				}
				if lb.Contains(p) {
					t.Fatalf("disjoint box %v contains ball point %v", b, p)
				}
			}
		}
	}
}
