package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func TestPolynomialEval(t *testing.T) {
	// p(x,y) = 3x²y − 2y + 1
	p := Polynomial{Terms: []Monomial{
		{Coeff: 3, Exps: []int{2, 1}},
		{Coeff: -2, Exps: []int{0, 1}},
		{Coeff: 1, Exps: []int{0, 0}},
	}}
	got := p.Eval(Point{2, 0.5})
	want := 3*4*0.5 - 2*0.5 + 1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
}

// Interval enclosure must contain the polynomial's true range over a box.
func TestIntervalEnclosureSound(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		d := 1 + r.IntN(3)
		nTerms := 1 + r.IntN(5)
		terms := make([]Monomial, nTerms)
		for i := range terms {
			exps := make([]int, d)
			for j := range exps {
				exps[j] = r.IntN(4)
			}
			terms[i] = Monomial{Coeff: 4*r.Float64() - 2, Exps: exps}
		}
		poly := Polynomial{Terms: terms}
		b := randomSubBox(r, d)
		iv := poly.evalInterval(b)
		// Sample points inside the box; values must lie in [lo, hi].
		for k := 0; k < 50; k++ {
			p := make(Point, d)
			for j := 0; j < d; j++ {
				p[j] = b.Lo[j] + r.Float64()*(b.Hi[j]-b.Lo[j])
			}
			v := poly.Eval(p)
			if v < iv.lo-1e-9 || v > iv.hi+1e-9 {
				t.Fatalf("value %v outside enclosure [%v, %v]", v, iv.lo, iv.hi)
			}
		}
	}
}

func TestIntervalEvenPowerTightensAtZero(t *testing.T) {
	iv := interval{-2, 3}.pow(2)
	if iv.lo != 0 {
		t.Fatalf("x² over [−2,3] has lower bound %v, want 0", iv.lo)
	}
	if iv.hi != 9 {
		t.Fatalf("x² over [−2,3] has upper bound %v, want 9", iv.hi)
	}
}

func TestAnnulusMembership(t *testing.T) {
	// Figure 3 of the paper: 1 ≤ x²+y² ≤ 4, y ≤ 2x² — centered at the
	// origin with k=2. Use a shifted, scaled version inside the cube.
	a := Annulus(0.5, 0.5, 0.15, 0.35, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.5 + 0.25, 0.5}, true},  // in the ring, below parabola
		{Point{0.5, 0.5}, false},        // inside the hole
		{Point{0.5 + 0.5, 0.5}, false},  // outside the outer circle
		{Point{0.5, 0.5 + 0.25}, false}, // in the ring but above parabola at x=cx
		{Point{0.5, 0.5 - 0.25}, true},  // bottom of the ring
		{Point{0.5 - 0.2, 0.5 - 0.2}, true},
	}
	for _, c := range cases {
		if got := a.Contains(c.p); got != c.want {
			t.Fatalf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSemiAlgebraicBoxPredicatesSound(t *testing.T) {
	r := rng.New(9)
	a := Annulus(0.5, 0.5, 0.15, 0.35, 2)
	for trial := 0; trial < 300; trial++ {
		b := randomSubBox(r, 2)
		contains := a.ContainsBox(b)
		intersects := a.IntersectsBox(b)
		// Sample points in the box.
		anyIn, allIn := false, true
		for k := 0; k < 60; k++ {
			p := Point{
				b.Lo[0] + r.Float64()*(b.Hi[0]-b.Lo[0]),
				b.Lo[1] + r.Float64()*(b.Hi[1]-b.Lo[1]),
			}
			if a.Contains(p) {
				anyIn = true
			} else {
				allIn = false
			}
		}
		if contains && !allIn {
			t.Fatalf("ContainsBox %v but sampled exterior point", b)
		}
		if anyIn && !intersects {
			t.Fatalf("sampled interior point in %v but IntersectsBox false", b)
		}
	}
}

func TestAnnulusVolumeAgainstReference(t *testing.T) {
	// Without the parabola cut, the ring area is π(R²−r²); the shifted
	// ring lies fully inside the unit cube.
	ring := NewSemiAlgebraic(2,
		Annulus(0.5, 0.5, 0.15, 0.35, 1e9).Constraints[0],
		Annulus(0.5, 0.5, 0.15, 0.35, 1e9).Constraints[1],
	)
	got := ring.IntersectBoxVolume(UnitCube(2))
	want := math.Pi * (0.35*0.35 - 0.15*0.15)
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("ring area = %v, want %v", got, want)
	}
	// With the parabola: compare against plain QMC over the cube.
	a := Annulus(0.5, 0.5, 0.15, 0.35, 2)
	gotCut := a.IntersectBoxVolume(UnitCube(2))
	ref := montecarlo.Volume([]float64{0, 0}, []float64{1, 1}, 100000, func(p []float64) bool {
		return a.Contains(Point(p))
	})
	if math.Abs(gotCut-ref) > 0.01 {
		t.Fatalf("cut ring area = %v, reference %v", gotCut, ref)
	}
	if gotCut >= got {
		t.Fatalf("parabola cut did not reduce area: %v vs %v", gotCut, got)
	}
}

func TestSemiAlgebraicBoundingBox(t *testing.T) {
	a := Annulus(0.5, 0.5, 0.15, 0.35, 2)
	bb := a.BoundingBox()
	if bb.Empty() {
		t.Fatal("bounding box empty for a non-empty range")
	}
	// Every sample must fall inside the bounding box.
	r := rng.New(21)
	for i := 0; i < 200; i++ {
		p, ok := a.Sample(r)
		if !ok {
			t.Fatal("sampling failed")
		}
		if !a.Contains(p) {
			t.Fatalf("sample %v outside range", p)
		}
		if !bb.Contains(p) {
			t.Fatalf("sample %v outside bounding box %v", p, bb)
		}
	}
	// The box must be substantially tighter than the unit cube.
	if bb.Volume() > 0.9 {
		t.Fatalf("bounding box too loose: %v", bb)
	}
}

func TestSemiAlgebraicEmptyRange(t *testing.T) {
	// x² + 1 ≤ 0 is empty.
	empty := NewSemiAlgebraic(2, Polynomial{Terms: []Monomial{
		{Coeff: 1, Exps: []int{2, 0}},
		{Coeff: 1, Exps: []int{0, 0}},
	}})
	if empty.Contains(Point{0.5, 0.5}) {
		t.Fatal("empty range contains a point")
	}
	if empty.IntersectsBox(UnitCube(2)) {
		t.Fatal("interval arithmetic failed to prove emptiness")
	}
	if v := empty.IntersectBoxVolume(UnitCube(2)); v != 0 {
		t.Fatalf("empty range volume = %v", v)
	}
	if !empty.BoundingBox().Empty() {
		t.Fatal("empty range bounding box not empty")
	}
}

func TestSemiAlgebraicLearnableByPtsHistStyleMembership(t *testing.T) {
	// Smoke-check that a kd-tree can count points in the range (the
	// labeling path used when training on semi-algebraic workloads).
	r := rng.New(33)
	a := Annulus(0.5, 0.5, 0.15, 0.35, 2)
	inside := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := Point{r.Float64(), r.Float64()}
		if a.Contains(p) {
			inside++
		}
	}
	frac := float64(inside) / n
	vol := a.IntersectBoxVolume(UnitCube(2))
	if math.Abs(frac-vol) > 0.02 {
		t.Fatalf("uniform-point fraction %v vs volume %v", frac, vol)
	}
}
