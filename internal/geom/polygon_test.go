package geom

import (
	"math"
	"testing"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

func unitTriangle() ConvexPolygon {
	return NewConvexPolygon(Point{0.2, 0.2}, Point{0.8, 0.2}, Point{0.5, 0.8})
}

func TestPolygonContains(t *testing.T) {
	tri := unitTriangle()
	if !tri.Contains(Point{0.5, 0.4}) {
		t.Fatal("interior point rejected")
	}
	if tri.Contains(Point{0.1, 0.1}) {
		t.Fatal("exterior point accepted")
	}
	if !tri.Contains(Point{0.5, 0.2}) {
		t.Fatal("edge point rejected (closed polygon)")
	}
	if !tri.Contains(Point{0.2, 0.2}) {
		t.Fatal("vertex rejected")
	}
}

func TestPolygonAreaExact(t *testing.T) {
	// Triangle area: base 0.6, height 0.6 → 0.18.
	tri := unitTriangle()
	got := tri.IntersectBoxVolume(UnitCube(2))
	if math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("triangle area = %v, want 0.18", got)
	}
	// Square polygon matches box arithmetic.
	sq := NewConvexPolygon(Point{0.25, 0.25}, Point{0.75, 0.25}, Point{0.75, 0.75}, Point{0.25, 0.75})
	if got := sq.IntersectBoxVolume(UnitCube(2)); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("square polygon area = %v, want 0.25", got)
	}
}

func TestPolygonClippedArea(t *testing.T) {
	tri := unitTriangle()
	// Clip to the left half: exactly half the triangle by symmetry.
	left := NewBox(Point{0, 0}, Point{0.5, 1})
	got := tri.IntersectBoxVolume(left)
	if math.Abs(got-0.09) > 1e-12 {
		t.Fatalf("clipped area = %v, want 0.09", got)
	}
	// Disjoint box.
	far := NewBox(Point{0.85, 0.85}, Point{1, 1})
	if got := tri.IntersectBoxVolume(far); got != 0 {
		t.Fatalf("disjoint clipped area = %v", got)
	}
}

func TestPolygonAreaAgainstQMC(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		// Random convex polygon: hull of random points.
		n := 4 + r.IntN(6)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{0.1 + 0.8*r.Float64(), 0.1 + 0.8*r.Float64()}
		}
		hull := ConvexHull(pts)
		box := randomSubBox(r, 2)
		exact := hull.IntersectBoxVolume(box)
		approx := montecarlo.Volume(box.Lo, box.Hi, 40000, func(p []float64) bool {
			return hull.Contains(Point(p))
		})
		if math.Abs(exact-approx) > 0.02*box.Volume()+1e-9 {
			t.Fatalf("polygon %v box %v: exact %v vs QMC %v", hull, box, exact, approx)
		}
	}
}

func TestConvexHullBasics(t *testing.T) {
	// Hull of a square plus interior points is the square.
	pts := []Point{
		{0, 0}, {1, 0}, {1, 1}, {0, 1},
		{0.5, 0.5}, {0.3, 0.7},
	}
	hull := ConvexHull(pts)
	if len(hull.Vertices) != 4 {
		t.Fatalf("hull has %d vertices, want 4", len(hull.Vertices))
	}
	if got := hull.IntersectBoxVolume(UnitCube(2)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("hull area = %v, want 1", got)
	}
	// CCW orientation: all original points contained.
	for _, p := range pts {
		if !hull.Contains(p) {
			t.Fatalf("hull does not contain source point %v", p)
		}
	}
}

func TestPolygonBoxPredicates(t *testing.T) {
	tri := unitTriangle()
	inside := NewBox(Point{0.45, 0.3}, Point{0.55, 0.4})
	if !tri.ContainsBox(inside) {
		t.Fatal("inner box not contained")
	}
	partial := NewBox(Point{0.0, 0.0}, Point{0.3, 0.3})
	if !tri.IntersectsBox(partial) || tri.ContainsBox(partial) {
		t.Fatal("partial box misclassified")
	}
	outside := NewBox(Point{0.0, 0.9}, Point{0.2, 1.0})
	if tri.IntersectsBox(outside) {
		t.Fatal("distant box reported intersecting")
	}
	// Box strictly containing the polygon: edges cross nothing, but the
	// clipped polygon is the whole triangle.
	big := NewBox(Point{0.1, 0.1}, Point{0.9, 0.9})
	if !tri.IntersectsBox(big) {
		t.Fatal("containing box reported disjoint")
	}
}

func TestPolygonThinBoxThroughMiddle(t *testing.T) {
	// A thin horizontal slab crossing the triangle without containing any
	// vertex and with no box corner inside: the edge-crossing fallback
	// must detect it. (Slab corners at y=0.5 x∈[0,1] are outside; the
	// triangle at y=0.5 spans x∈[0.35,0.65].)
	tri := unitTriangle()
	slab := NewBox(Point{0, 0.49}, Point{1, 0.51})
	if !tri.IntersectsBox(slab) {
		t.Fatal("crossing slab reported disjoint")
	}
	if got := tri.IntersectBoxVolume(slab); got <= 0 {
		t.Fatalf("crossing slab area = %v", got)
	}
}

func TestPolygonSampling(t *testing.T) {
	r := rng.New(23)
	tri := unitTriangle()
	for i := 0; i < 300; i++ {
		p, ok := tri.Sample(r)
		if !ok {
			t.Fatal("sampling failed")
		}
		if !tri.Contains(p) {
			t.Fatalf("sample %v outside triangle", p)
		}
	}
}

func TestPolygonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2-vertex polygon accepted")
		}
	}()
	NewConvexPolygon(Point{0, 0}, Point{1, 1})
}

// CirclePoints places n points evenly on a circle — the Figure 5 / VC=∞
// configuration used by the shattering tests in internal/core.
func CirclePoints(n int, cx, cy, r float64) []Point {
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{cx + r*math.Cos(theta), cy + r*math.Sin(theta)}
	}
	return pts
}

// Convex polygons shatter circle points: for every subset of ≥3 points the
// hull of the subset contains no other circle point; smaller subsets are
// realized by degenerate slivers (here: tiny hulls around the points).
func TestPolygonsShatterCirclePoints(t *testing.T) {
	pts := CirclePoints(8, 0.5, 0.5, 0.35)
	for mask := 0; mask < 1<<8; mask++ {
		var sel []Point
		for i := 0; i < 8; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, pts[i])
			}
		}
		if len(sel) < 3 {
			continue // handled by sliver polygons, not hulls
		}
		hull := ConvexHull(expandForHull(sel))
		for i := 0; i < 8; i++ {
			want := mask&(1<<i) != 0
			if got := hull.Contains(pts[i]); got != want {
				t.Fatalf("mask %08b point %d: contains=%v want=%v", mask, i, got, want)
			}
		}
	}
}

// expandForHull nudges collinear-degenerate subsets so ConvexHull succeeds
// while staying strictly inside the circle chords (points on a circle are
// never collinear for ≥3 distinct points, so this is a no-op pass-through).
func expandForHull(pts []Point) []Point { return pts }
