// Package geom provides the computational-geometry substrate of the
// reproduction: points, axis-aligned boxes, halfspaces, Euclidean balls and
// disc-intersection (semi-algebraic) ranges over the unit cube [0,1]^d,
// together with the exact and quasi-Monte-Carlo intersection-volume routines
// that the histogram learners (Eq. 6 of the paper) and the quadtree splitting
// rule (Algorithm 2) are built on.
//
// Conventions: the data domain is always the unit cube [0,1]^d. Ranges may
// extend beyond the cube (e.g. halfspaces are unbounded); every volume
// reported by this package is implicitly the volume of the range clipped to
// the query box, which itself lies inside the unit cube.
package geom

import "repro/internal/rng"

// Range is a geometric query region over [0,1]^d. It corresponds to one
// range R of the paper's range space (X, R).
type Range interface {
	// Dim returns the dimensionality d of the ambient space.
	Dim() int
	// Contains reports whether the point lies in the range (closed).
	Contains(p Point) bool
	// BoundingBox returns the smallest axis-aligned box containing
	// the range clipped to the unit cube. It may be empty.
	BoundingBox() Box
	// IntersectBoxVolume returns vol(range ∩ b). Exact where a closed
	// form exists (boxes everywhere; halfspaces everywhere; balls in
	// d ≤ 2), deterministic quasi-Monte-Carlo otherwise.
	IntersectBoxVolume(b Box) float64
	// IntersectsBox reports whether the range and the box overlap.
	IntersectsBox(b Box) bool
	// ContainsBox reports whether the box lies entirely inside the range.
	ContainsBox(b Box) bool
}

// BoxRelation classifies a box against a range in one shot: the box is
// disjoint from the range, fully contained in it, or straddles its
// boundary. It is the pruning primitive of the BVH-accelerated estimate
// path — a contained subtree contributes its cached weight sum, a disjoint
// subtree contributes nothing, and only straddling boxes pay for an
// intersection volume.
type BoxRelation int

const (
	// BoxDisjoint: range ∩ box = ∅.
	BoxDisjoint BoxRelation = iota
	// BoxStraddles: the box meets the range but is not contained in it.
	BoxStraddles
	// BoxContained: box ⊆ range.
	BoxContained
)

// BoxClassifier is an optional capability of Range implementations that can
// classify a box faster than separate IntersectsBox + ContainsBox calls
// (e.g. Ball derives both answers from one center-to-box distance pass).
// Implementations must agree exactly with the two-call derivation:
// disjoint ⇔ !IntersectsBox, contained ⇔ IntersectsBox ∧ ContainsBox.
type BoxClassifier interface {
	ClassifyBox(b Box) BoxRelation
}

// ClassifyBox classifies b against r, using the range's single-pass
// BoxClassifier when available and the two-call derivation otherwise.
func ClassifyBox(r Range, b Box) BoxRelation {
	if c, ok := r.(BoxClassifier); ok {
		return c.ClassifyBox(b)
	}
	if !r.IntersectsBox(b) {
		return BoxDisjoint
	}
	if r.ContainsBox(b) {
		return BoxContained
	}
	return BoxStraddles
}

// Sampler is implemented by ranges that can draw uniform points from their
// intersection with the unit cube. All ranges in this package implement it
// via rejection sampling from the bounding box (Appendix A.2 of the paper).
type Sampler interface {
	// Sample draws a point uniformly at random from range ∩ [0,1]^d.
	// ok is false if the region appears to be empty (no acceptance after
	// an attempt budget), in which case p is the bounding-box center.
	Sample(r *rng.RNG) (p Point, ok bool)
}

// maxRejectionAttempts bounds rejection sampling; beyond it the region is
// treated as (numerically) empty.
const maxRejectionAttempts = 10000

// rejectionSample draws uniformly from rg ∩ [0,1]^d by rejection from the
// bounding box.
func rejectionSample(rg Range, r *rng.RNG) (Point, bool) {
	bb := rg.BoundingBox()
	if bb.Empty() {
		return UnitCube(rg.Dim()).Center(), false
	}
	p := make(Point, rg.Dim())
	for attempt := 0; attempt < maxRejectionAttempts; attempt++ {
		for i := range p {
			p[i] = bb.Lo[i] + r.Float64()*(bb.Hi[i]-bb.Lo[i])
		}
		if rg.Contains(p) {
			return p, true
		}
	}
	return bb.Center(), false
}
