package geom

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Halfspace is the linear-inequality range {x : A·x ≥ B}, the range family
// Σ_\ of the paper. Its VC dimension over R^d is d+1.
type Halfspace struct {
	A Point   // normal vector (need not be unit length)
	B float64 // offset
}

// NewHalfspace builds the halfspace {x : a·x ≥ b}.
func NewHalfspace(a Point, b float64) Halfspace {
	return Halfspace{A: a.Clone(), B: b}
}

// HalfspaceThroughPoint builds the halfspace whose boundary hyperplane
// passes through the given point with the given (unit) normal, selecting the
// side the normal points to. This matches the paper's workload generator:
// pick a center point on the boundary plane and a random orientation.
func HalfspaceThroughPoint(center Point, normal Point) Halfspace {
	return Halfspace{A: normal.Clone(), B: normal.Dot(center)}
}

// Dim returns the ambient dimension.
func (h Halfspace) Dim() int { return len(h.A) }

// Contains reports whether A·p ≥ B.
func (h Halfspace) Contains(p Point) bool {
	return h.A.Dot(p) >= h.B
}

// minMaxOverBox returns the minimum and maximum of A·x over the box.
func (h Halfspace) minMaxOverBox(b Box) (lo, hi float64) {
	for i, a := range h.A {
		if a >= 0 {
			lo += a * b.Lo[i]
			hi += a * b.Hi[i]
		} else {
			lo += a * b.Hi[i]
			hi += a * b.Lo[i]
		}
	}
	return lo, hi
}

// IntersectsBox reports whether the halfspace meets the box.
func (h Halfspace) IntersectsBox(b Box) bool {
	if b.Empty() {
		return false
	}
	_, hi := h.minMaxOverBox(b)
	return hi >= h.B
}

// ContainsBox reports whether the box lies entirely in the halfspace.
func (h Halfspace) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	lo, _ := h.minMaxOverBox(b)
	return lo >= h.B
}

// ClassifyBox classifies b against the halfspace from one min/max pass of
// A·x over the box (IntersectsBox and ContainsBox each pay the same pass).
func (h Halfspace) ClassifyBox(b Box) BoxRelation {
	if b.Empty() {
		return BoxDisjoint
	}
	lo, hi := h.minMaxOverBox(b)
	switch {
	case hi < h.B:
		return BoxDisjoint
	case lo >= h.B:
		return BoxContained
	}
	return BoxStraddles
}

// IntersectBoxVolume returns vol({A·x ≥ B} ∩ b) exactly using the corner
// inclusion–exclusion formula for the volume cut off a box by a hyperplane:
//
//	vol{y ∈ [0,1]^k : c·y ≤ t} = (1/(k! ∏cᵢ)) Σ_{K⊆[k]} (−1)^{|K|} (t − Σ_{i∈K}cᵢ)₊^k
//
// for cᵢ > 0, after an affine map of the box to the unit cube, coordinate
// flips to make all coefficients positive, and elimination of zero
// coefficients. Zero-coefficient dimensions contribute a plain factor.
func (h Halfspace) IntersectBoxVolume(b Box) float64 {
	boxVol := b.Volume()
	if boxVol == 0 {
		return 0
	}
	// Complement trick: vol(A·x ≥ B) = boxVol − vol(A·x < B); we compute
	// the ≤ side, which is what the formula gives: fraction of the box
	// with A·x ≤ B, then subtract.
	frac := h.fracBelow(b)
	v := boxVol * (1 - frac)
	if v < 0 {
		return 0
	}
	if v > boxVol {
		return boxVol
	}
	return v
}

// fracBelow returns the fraction of the box where A·x ≤ B.
func (h Halfspace) fracBelow(b Box) float64 {
	d := h.Dim()
	// Map x = lo + (hi−lo)·y, y ∈ [0,1]^d:  A·x = A·lo + Σ cᵢyᵢ.
	t := h.B
	c := make([]float64, 0, d)
	for i := 0; i < d; i++ {
		t -= h.A[i] * b.Lo[i]
		ci := h.A[i] * (b.Hi[i] - b.Lo[i])
		switch {
		case ci > 0:
			c = append(c, ci)
		case ci < 0:
			// Flip yᵢ → 1−yᵢ: coefficient |cᵢ|, threshold shifts.
			t -= ci
			c = append(c, -ci)
		default:
			// Zero coefficient: dimension does not constrain.
		}
	}
	k := len(c)
	if k == 0 {
		if t >= 0 {
			return 1
		}
		return 0
	}
	total := 0.0
	for _, ci := range c {
		total += ci
	}
	if t <= 0 {
		return 0
	}
	if t >= total {
		return 1
	}
	// Normalize by the largest coefficient for numerical stability; the
	// fraction is scale-invariant in (c, t).
	scale := 0.0
	for _, ci := range c {
		scale = max(scale, ci)
	}
	for i := range c {
		c[i] /= scale
	}
	t /= scale
	// Inclusion–exclusion over subsets of coefficients.
	sum := 0.0
	n := 1 << uint(k)
	for mask := 0; mask < n; mask++ {
		s := t
		bits := 0
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				s -= c[i]
				bits++
			}
		}
		if s <= 0 {
			continue
		}
		term := math.Pow(s, float64(k))
		if bits&1 == 1 {
			sum -= term
		} else {
			sum += term
		}
	}
	denom := 1.0
	for i := 1; i <= k; i++ {
		denom *= float64(i)
	}
	for _, ci := range c {
		denom *= ci
	}
	frac := sum / denom
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// BoundingBox returns the smallest box containing halfspace ∩ [0,1]^d,
// computed by the iterative tightening procedure of Appendix A.2: repeatedly
// raise each lower bound (resp. lower each upper bound) to the extreme value
// attainable when all other coordinates are at their most favorable corner.
func (h Halfspace) BoundingBox() Box {
	d := h.Dim()
	bb := UnitCube(d)
	if !h.IntersectsBox(bb) {
		// Empty: return canonical empty box.
		return Box{Lo: make(Point, d), Hi: func() Point {
			p := make(Point, d)
			for i := range p {
				p[i] = -1
			}
			return p
		}()}
	}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for i := 0; i < d; i++ {
			ai := h.A[i]
			if ai == 0 {
				continue
			}
			// Best achievable contribution from the other dims.
			rest := 0.0
			for j := 0; j < d; j++ {
				if j == i {
					continue
				}
				rest += max(h.A[j]*bb.Lo[j], h.A[j]*bb.Hi[j])
			}
			// Need ai·xᵢ ≥ B − rest.
			bound := (h.B - rest) / ai
			if ai > 0 {
				if bound > bb.Lo[i]+1e-15 {
					bb.Lo[i] = min(bound, bb.Hi[i])
					changed = true
				}
			} else {
				if bound < bb.Hi[i]-1e-15 {
					bb.Hi[i] = max(bound, bb.Lo[i])
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return bb
}

// Sample draws a uniform point from halfspace ∩ [0,1]^d by rejection from
// the tightened bounding box (Appendix A.2).
func (h Halfspace) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(h, r)
}

// String renders the halfspace for diagnostics.
func (h Halfspace) String() string {
	return fmt.Sprintf("halfspace{a=%v b=%.4g}", []float64(h.A), h.B)
}

var _ Range = Halfspace{}
var _ Sampler = Halfspace{}
var _ BoxClassifier = Halfspace{}
