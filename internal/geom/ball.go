package geom

import (
	"fmt"
	"math"

	"repro/internal/montecarlo"
	"repro/internal/rng"
)

// Ball is the distance-based range {x : ‖x − Center‖₂ ≤ Radius}, the range
// family Σ_○ of the paper. Its VC dimension over R^d is at most d+2.
type Ball struct {
	Center Point
	Radius float64
}

// NewBall builds a ball with the given center and radius.
func NewBall(center Point, radius float64) Ball {
	return Ball{Center: center.Clone(), Radius: radius}
}

// Dim returns the ambient dimension.
func (bl Ball) Dim() int { return len(bl.Center) }

// Contains reports whether p lies in the closed ball.
func (bl Ball) Contains(p Point) bool {
	s := 0.0
	r2 := bl.Radius * bl.Radius
	for i := range p {
		d := p[i] - bl.Center[i]
		s += d * d
		if s > r2 {
			return false
		}
	}
	return s <= r2
}

// distToBoxSq returns the squared distance from the center to the nearest
// point of the box, and to the farthest point.
func (bl Ball) distToBoxSq(b Box) (nearSq, farSq float64) {
	for i := range bl.Center {
		c := bl.Center[i]
		lo, hi := b.Lo[i], b.Hi[i]
		// Nearest coordinate.
		switch {
		case c < lo:
			d := lo - c
			nearSq += d * d
		case c > hi:
			d := c - hi
			nearSq += d * d
		}
		// Farthest coordinate.
		f := max(c-lo, hi-c)
		farSq += f * f
	}
	return nearSq, farSq
}

// IntersectsBox reports whether the ball meets the box.
func (bl Ball) IntersectsBox(b Box) bool {
	if b.Empty() {
		return false
	}
	nearSq, _ := bl.distToBoxSq(b)
	return nearSq <= bl.Radius*bl.Radius
}

// ContainsBox reports whether the box lies entirely inside the ball.
func (bl Ball) ContainsBox(b Box) bool {
	if b.Empty() {
		return true
	}
	_, farSq := bl.distToBoxSq(b)
	return farSq <= bl.Radius*bl.Radius
}

// ClassifyBox classifies b against the ball from a single center-to-box
// distance pass — half the work of separate IntersectsBox + ContainsBox
// calls, which is what the BVH walk would otherwise pay per node.
func (bl Ball) ClassifyBox(b Box) BoxRelation {
	if b.Empty() {
		return BoxDisjoint
	}
	nearSq, farSq := bl.distToBoxSq(b)
	r2 := bl.Radius * bl.Radius
	switch {
	case nearSq > r2:
		return BoxDisjoint
	case farSq <= r2:
		return BoxContained
	}
	return BoxStraddles
}

// BoundingBox returns the smallest box containing ball ∩ [0,1]^d.
func (bl Ball) BoundingBox() Box {
	d := bl.Dim()
	lo := make(Point, d)
	hi := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = clamp01(bl.Center[i] - bl.Radius)
		hi[i] = clamp01(bl.Center[i] + bl.Radius)
	}
	return Box{Lo: lo, Hi: hi}
}

// qmcSamples is the Halton sample budget for ball–box volumes in d ≥ 3.
const qmcSamples = 2048

// IntersectBoxVolume returns vol(ball ∩ b): exact in 1D (interval overlap)
// and 2D (closed-form disc/rectangle area), deterministic Halton QMC in
// higher dimensions.
func (bl Ball) IntersectBoxVolume(b Box) float64 {
	if b.Empty() || bl.Radius <= 0 {
		return 0
	}
	// Cheap complete-containment / disjointness short-circuits apply in
	// every dimension and handle the bulk of bucket–query pairs.
	nearSq, farSq := bl.distToBoxSq(b)
	r2 := bl.Radius * bl.Radius
	if nearSq > r2 {
		return 0
	}
	if farSq <= r2 {
		return b.Volume()
	}
	switch bl.Dim() {
	case 1:
		lo := max(b.Lo[0], bl.Center[0]-bl.Radius)
		hi := min(b.Hi[0], bl.Center[0]+bl.Radius)
		if hi <= lo {
			return 0
		}
		return hi - lo
	case 2:
		return discRectArea(bl.Center[0], bl.Center[1], bl.Radius,
			b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1])
	default:
		return montecarlo.Volume(b.Lo, b.Hi, qmcSamples, func(p []float64) bool {
			return bl.Contains(Point(p))
		})
	}
}

// discRectArea returns the exact area of the intersection of the disc of
// radius r centered at (cx, cy) with the rectangle [x1,x2]×[y1,y2].
//
// It uses the corner decomposition area = A(X2,Y2) − A(X1,Y2) − A(X2,Y1) +
// A(X1,Y1) where A(x,y) is the area of the unit disc restricted to
// {u ≤ x, v ≤ y} and coordinates are translated/scaled to the unit disc.
func discRectArea(cx, cy, r, x1, x2, y1, y2 float64) float64 {
	sx1 := (x1 - cx) / r
	sx2 := (x2 - cx) / r
	sy1 := (y1 - cy) / r
	sy2 := (y2 - cy) / r
	a := unitDiscCornerArea(sx2, sy2) - unitDiscCornerArea(sx1, sy2) -
		unitDiscCornerArea(sx2, sy1) + unitDiscCornerArea(sx1, sy1)
	a *= r * r
	if a < 0 {
		return 0
	}
	return a
}

// wInt is ∫√(1−t²)dt = (asin(t) + t√(1−t²))/2, the antiderivative of the
// half-chord width of the unit disc.
func wInt(t float64) float64 {
	if t <= -1 {
		return -math.Pi / 4
	}
	if t >= 1 {
		return math.Pi / 4
	}
	return (math.Asin(t) + t*math.Sqrt(1-t*t)) / 2
}

// unitDiscCornerArea returns area{(u,v) : u²+v² ≤ 1, u ≤ x, v ≤ y}.
//
// For fixed u, the admissible v-extent is g(u) = 0 if y ≤ −w(u),
// 2w(u) if y ≥ w(u), and y + w(u) otherwise, where w(u) = √(1−u²).
// A(x,y) = ∫_{−1}^{x} g(u) du, split at the breakpoints ±√(1−y²).
func unitDiscCornerArea(x, y float64) float64 {
	if x <= -1 {
		return 0
	}
	if y <= -1 {
		return 0
	}
	x = min(x, 1)
	y = min(y, 1)
	uy := math.Sqrt(max(0, 1-y*y))

	// ∫ 2w over [a,b]:
	full := func(a, b float64) float64 {
		if b <= a {
			return 0
		}
		return 2 * (wInt(b) - wInt(a))
	}
	// ∫ (y + w) over [a,b]:
	mixed := func(a, b float64) float64 {
		if b <= a {
			return 0
		}
		return y*(b-a) + (wInt(b) - wInt(a))
	}

	if y >= 0 {
		// Segments: [−1,−uy] full chord, [−uy,uy] mixed, [uy,1] full.
		a := full(-1, min(x, -uy))
		a += mixed(max(-1, -uy), min(x, uy))
		a += full(max(-1, uy), x)
		return a
	}
	// y < 0: [−1,−uy] empty, [−uy,uy] mixed, [uy,1] empty.
	return mixed(-uy, min(x, uy))
}

// Sample draws a uniform point from ball ∩ [0,1]^d by rejection from the
// bounding box (Appendix A.2 of the paper).
func (bl Ball) Sample(r *rng.RNG) (Point, bool) {
	return rejectionSample(bl, r)
}

// String renders the ball for diagnostics.
func (bl Ball) String() string {
	return fmt.Sprintf("ball{c=%v r=%.4g}", []float64(bl.Center), bl.Radius)
}

var _ Range = Ball{}
var _ Sampler = Ball{}
var _ BoxClassifier = Ball{}
