package geom

import "math"

// Point is a point in R^d, represented as its coordinate slice.
type Point []float64

// Clone returns a deep copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dot returns the inner product p·q. The points must have equal length.
func (p Point) Dot(q Point) float64 {
	if len(p) != len(q) {
		panic("geom: Dot on points of different dimension")
	}
	s := 0.0
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Sub returns p − q as a new point.
func (p Point) Sub(q Point) Point {
	if len(p) != len(q) {
		panic("geom: Sub on points of different dimension")
	}
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Norm returns the Euclidean norm ‖p‖₂.
func (p Point) Norm() float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	if len(p) != len(q) {
		panic("geom: Dist on points of different dimension")
	}
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// InUnitCube reports whether every coordinate lies in [0,1].
func (p Point) InUnitCube() bool {
	for _, v := range p {
		if v < 0 || v > 1 {
			return false
		}
	}
	return true
}
