package montecarlo

import (
	"testing"
)

// TestIncrementalMatchesRadicalInverse is the bit-identity contract of the
// digit-counter fast path: every coordinate of the first 10k points, in
// every supported dimension, must equal the direct per-index computation
// exactly.
func TestIncrementalMatchesRadicalInverse(t *testing.T) {
	for d := 1; d <= MaxDim; d++ {
		h := NewHalton(d)
		p := make([]float64, d)
		for i := 1; i <= 10000; i++ {
			h.Next(p)
			for j := 0; j < d; j++ {
				want := radicalInverse(i, primes[j])
				if p[j] != want {
					t.Fatalf("d=%d index=%d dim=%d: incremental %v != radicalInverse %v",
						d, i, j, p[j], want)
				}
			}
		}
	}
}

func TestNextBlockMatchesNext(t *testing.T) {
	const d, count = 3, 257 // deliberately not a multiple of any block size
	ref := NewHalton(d)
	blk := NewHalton(d)
	want := make([]float64, count*d)
	for k := 0; k < count; k++ {
		ref.Next(want[k*d : (k+1)*d])
	}
	got := make([]float64, count*d)
	blk.NextBlock(got, count)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextBlock[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHaltonReset(t *testing.T) {
	h := NewHalton(4)
	p := make([]float64, 4)
	first := make([]float64, 0, 40)
	for i := 0; i < 10; i++ {
		h.Next(p)
		first = append(first, p...)
	}
	h.Reset()
	for i := 0; i < 10; i++ {
		h.Next(p)
		for j, v := range p {
			if v != first[i*4+j] {
				t.Fatalf("after Reset, point %d dim %d = %v, want %v", i, j, v, first[i*4+j])
			}
		}
	}
}

// TestNextNoAllocs pins the steady-state allocation behaviour: after the
// digit counters have grown, Next must not allocate at all.
func TestNextNoAllocs(t *testing.T) {
	h := NewHalton(8)
	p := make([]float64, 8)
	for i := 0; i < 1<<14; i++ {
		h.Next(p) // warm up: grow digit buffers past any index the test reaches
	}
	h.Reset()
	if avg := testing.AllocsPerRun(2000, func() { h.Next(p) }); avg != 0 {
		t.Fatalf("Halton.Next allocates %v per sample, want 0", avg)
	}
}

func TestVolumeNoAllocsSteadyState(t *testing.T) {
	lo := []float64{0, 0, 0}
	hi := []float64{1, 1, 1}
	inside := func(p []float64) bool { return p[0]+p[1]+p[2] <= 1 }
	Volume(lo, hi, 4096, inside) // warm the pool
	if avg := testing.AllocsPerRun(20, func() { Volume(lo, hi, 4096, inside) }); avg > 1 {
		t.Fatalf("Volume allocates %v per call in steady state, want ≤1", avg)
	}
}

// BenchmarkHaltonNext measures per-sample cost and (with -benchmem)
// demonstrates the zero-allocation fast path.
func BenchmarkHaltonNext(b *testing.B) {
	h := NewHalton(8)
	p := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Next(p)
	}
}

// BenchmarkRadicalInverseNext is the pre-optimization baseline: the same
// 8-dimensional point generated with the direct div/mod computation.
func BenchmarkRadicalInverseNext(b *testing.B) {
	p := make([]float64, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range p {
			p[j] = radicalInverse(i+1, primes[j])
		}
	}
}
