package montecarlo

import (
	"math"
	"testing"
)

func TestRadicalInverseBase2(t *testing.T) {
	want := []float64{0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875}
	for i, w := range want {
		if got := radicalInverse(i+1, 2); math.Abs(got-w) > 1e-15 {
			t.Fatalf("radicalInverse(%d,2) = %v, want %v", i+1, got, w)
		}
	}
}

func TestHaltonInUnitCube(t *testing.T) {
	h := NewHalton(5)
	p := make([]float64, 5)
	for i := 0; i < 10000; i++ {
		h.Next(p)
		for j, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("halton sample %d dim %d out of range: %v", i, j, v)
			}
		}
	}
}

func TestHaltonEquidistribution(t *testing.T) {
	// Fraction of points in [0,0.3]×[0,0.7] should approach 0.21.
	h := NewHalton(2)
	p := make([]float64, 2)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		h.Next(p)
		if p[0] <= 0.3 && p[1] <= 0.7 {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.21) > 0.005 {
		t.Fatalf("halton box fraction = %v, want ~0.21", frac)
	}
}

func TestVolumeOfSimplex(t *testing.T) {
	// x + y + z ≤ 1 over the unit cube has volume 1/6.
	got := Volume([]float64{0, 0, 0}, []float64{1, 1, 1}, 50000, func(p []float64) bool {
		return p[0]+p[1]+p[2] <= 1
	})
	if math.Abs(got-1.0/6.0) > 0.003 {
		t.Fatalf("simplex volume = %v, want 1/6", got)
	}
}

func TestVolumeScalesWithBox(t *testing.T) {
	// Same predicate over a shifted/scaled box.
	got := Volume([]float64{0.5, 0.5}, []float64{1.0, 1.5}, 20000, func(p []float64) bool {
		return true
	})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("full box volume = %v, want 0.5", got)
	}
}

func TestVolumeDegenerateBox(t *testing.T) {
	got := Volume([]float64{0.5}, []float64{0.5}, 100, func(p []float64) bool { return true })
	if got != 0 {
		t.Fatalf("degenerate box volume = %v", got)
	}
}

func TestNewHaltonPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHalton(0) did not panic")
		}
	}()
	NewHalton(0)
}

func TestVolumeDeterministic(t *testing.T) {
	f := func(p []float64) bool { return p[0]*p[0]+p[1]*p[1] <= 1 }
	a := Volume([]float64{0, 0}, []float64{1, 1}, 10000, f)
	b := Volume([]float64{0, 0}, []float64{1, 1}, 10000, f)
	if a != b {
		t.Fatalf("QMC volume not deterministic: %v vs %v", a, b)
	}
	if math.Abs(a-math.Pi/4) > 0.002 {
		t.Fatalf("quarter-circle area = %v, want %v", a, math.Pi/4)
	}
}
