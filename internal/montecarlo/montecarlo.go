// Package montecarlo provides deterministic quasi-Monte-Carlo volume
// estimation. The paper notes that volumes of complex ranges can be
// estimated by (MC)MC sampling; because this reproduction must be exactly
// repeatable, we use a scrambled Halton low-discrepancy sequence rather than
// a pseudo-random chain. For the smooth indicator integrands that arise here
// (range ∩ box membership), Halton hit-or-miss converges like O(log^d N / N),
// far better than the O(1/√N) of plain Monte Carlo at the sample counts we
// use.
package montecarlo

// Primes used as Halton bases, enough for 16 dimensions.
var primes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}

// MaxDim is the largest dimensionality supported by the Halton generator.
const MaxDim = 16

// Halton generates the d-dimensional Halton sequence. The zero index is
// skipped (it is the origin, which biases hit-or-miss estimates).
type Halton struct {
	dim  int
	next int
}

// NewHalton returns a generator for dimension d (1 ≤ d ≤ MaxDim).
func NewHalton(d int) *Halton {
	if d < 1 || d > MaxDim {
		panic("montecarlo: dimension out of range")
	}
	return &Halton{dim: d, next: 1}
}

// radicalInverse returns the base-b radical inverse of i.
func radicalInverse(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}

// Next fills p (length dim) with the next sequence element in [0,1)^d.
func (h *Halton) Next(p []float64) {
	if len(p) != h.dim {
		panic("montecarlo: Next buffer of wrong dimension")
	}
	for j := 0; j < h.dim; j++ {
		p[j] = radicalInverse(h.next, primes[j])
	}
	h.next++
}

// Volume estimates the d-dimensional volume of {x ∈ box : inside(x)} where
// box is given by lo/hi corner slices, using n Halton samples. It returns 0
// for degenerate boxes.
func Volume(lo, hi []float64, n int, inside func(p []float64) bool) float64 {
	d := len(lo)
	boxVol := 1.0
	for i := 0; i < d; i++ {
		side := hi[i] - lo[i]
		if side <= 0 {
			return 0
		}
		boxVol *= side
	}
	h := NewHalton(d)
	u := make([]float64, d)
	p := make([]float64, d)
	hits := 0
	for k := 0; k < n; k++ {
		h.Next(u)
		for i := 0; i < d; i++ {
			p[i] = lo[i] + u[i]*(hi[i]-lo[i])
		}
		if inside(p) {
			hits++
		}
	}
	return boxVol * float64(hits) / float64(n)
}
