// Package montecarlo provides deterministic quasi-Monte-Carlo volume
// estimation. The paper notes that volumes of complex ranges can be
// estimated by (MC)MC sampling; because this reproduction must be exactly
// repeatable, we use a scrambled Halton low-discrepancy sequence rather than
// a pseudo-random chain. For the smooth indicator integrands that arise here
// (range ∩ box membership), Halton hit-or-miss converges like O(log^d N / N),
// far better than the O(1/√N) of plain Monte Carlo at the sample counts we
// use.
package montecarlo

import "sync"

// Primes used as Halton bases, enough for 16 dimensions.
var primes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}

// MaxDim is the largest dimensionality supported by the Halton generator.
const MaxDim = 16

// Halton generates the d-dimensional Halton sequence. The zero index is
// skipped (it is the origin, which biases hit-or-miss estimates).
//
// Instead of re-deriving every base-b digit of the index with a div/mod
// chain per sample (what radicalInverse does), the generator keeps one
// digit-counter array per dimension and advances it by a carry increment —
// amortized O(1) integer work per sample. The float value is then rebuilt
// from the digits in exactly radicalInverse's LSB-first operation order, so
// every emitted coordinate is bit-identical to the direct computation
// (an incrementally-updated float would accumulate rounding drift).
type Halton struct {
	dim    int
	digits [][]int32 // per-dimension base-primes[j] digits of the current index, LSB first
	nd     []int     // significant digit count per dimension (position of MSB + 1)
}

// NewHalton returns a generator for dimension d (1 ≤ d ≤ MaxDim).
func NewHalton(d int) *Halton {
	if d < 1 || d > MaxDim {
		panic("montecarlo: dimension out of range")
	}
	h := &Halton{dim: d, digits: make([][]int32, d), nd: make([]int, d)}
	for j := range h.digits {
		h.digits[j] = make([]int32, 0, 16)
	}
	return h
}

// Reset rewinds the generator to its initial state (next call to Next
// yields index 1 again), retaining the digit buffers.
func (h *Halton) Reset() {
	for j := range h.digits {
		dg := h.digits[j]
		for k := range dg {
			dg[k] = 0
		}
		h.nd[j] = 0
	}
}

// radicalInverse returns the base-b radical inverse of i. It is the direct
// (per-index) computation the incremental generator must match bit for bit;
// the tests cross-check the two.
func radicalInverse(i, b int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(b)
		r += f * float64(i%b)
		i /= b
	}
	return r
}

// Next fills p (length dim) with the next sequence element in [0,1)^d.
// It does not allocate once the digit counters have grown to their
// steady-state length (⌈log₂ index⌉ for dimension 0).
func (h *Halton) Next(p []float64) {
	if len(p) != h.dim {
		panic("montecarlo: Next buffer of wrong dimension")
	}
	for j := 0; j < h.dim; j++ {
		b := int32(primes[j])
		dg := h.digits[j]
		// Carry increment of the base-b counter.
		k := 0
		for {
			if k == len(dg) {
				dg = append(dg, 0)
				h.digits[j] = dg
			}
			dg[k]++
			if dg[k] < b {
				break
			}
			dg[k] = 0
			k++
		}
		if k+1 > h.nd[j] {
			h.nd[j] = k + 1
		}
		// Rebuild the radical inverse over the significant digits in the
		// same LSB-first order (and therefore the same roundings) as
		// radicalInverse.
		f := 1.0
		r := 0.0
		fb := float64(b)
		for t := 0; t < h.nd[j]; t++ {
			f /= fb
			r += f * float64(dg[t])
		}
		p[j] = r
	}
}

// NextBlock fills dst with count consecutive sequence elements laid out
// point-major: point k occupies dst[k*dim : (k+1)*dim]. It is equivalent
// to count calls of Next and exists so bulk consumers (Volume) can reuse
// one flat buffer for a whole block of samples.
func (h *Halton) NextBlock(dst []float64, count int) {
	if len(dst) != count*h.dim {
		panic("montecarlo: NextBlock buffer of wrong size")
	}
	for k := 0; k < count; k++ {
		h.Next(dst[k*h.dim : (k+1)*h.dim])
	}
}

// volumeBlock is the number of samples Volume draws per NextBlock call.
const volumeBlock = 128

// volumeScratch is the reusable per-call state of Volume: a sample-block
// buffer, a point buffer, and one generator per dimension (reset between
// uses). Pooling it makes Volume allocation-free after warm-up, which
// matters because the geometry code calls it once per (query, bucket)
// design-matrix entry.
type volumeScratch struct {
	blk  []float64
	p    []float64
	gens [MaxDim + 1]*Halton
}

var volumePool = sync.Pool{New: func() any {
	return &volumeScratch{
		blk: make([]float64, volumeBlock*MaxDim),
		p:   make([]float64, MaxDim),
	}
}}

// Volume estimates the d-dimensional volume of {x ∈ box : inside(x)} where
// box is given by lo/hi corner slices, using n Halton samples. It returns 0
// for degenerate boxes.
func Volume(lo, hi []float64, n int, inside func(p []float64) bool) float64 {
	d := len(lo)
	boxVol := 1.0
	for i := 0; i < d; i++ {
		side := hi[i] - lo[i]
		if side <= 0 {
			return 0
		}
		boxVol *= side
	}
	sc := volumePool.Get().(*volumeScratch)
	defer volumePool.Put(sc)
	h := sc.gens[d]
	if h == nil {
		h = NewHalton(d)
		sc.gens[d] = h
	} else {
		h.Reset()
	}
	p := sc.p[:d]
	hits := 0
	for k := 0; k < n; k += volumeBlock {
		c := volumeBlock
		if rem := n - k; rem < c {
			c = rem
		}
		blk := sc.blk[:c*d]
		h.NextBlock(blk, c)
		for t := 0; t < c; t++ {
			u := blk[t*d : (t+1)*d]
			for i := 0; i < d; i++ {
				p[i] = lo[i] + u[i]*(hi[i]-lo[i])
			}
			if inside(p) {
				hits++
			}
		}
	}
	return boxVol * float64(hits) / float64(n)
}
