package arrangement

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func TestGridCells1D(t *testing.T) {
	boxes := []geom.Box{
		geom.NewBox(geom.Point{0.2}, geom.Point{0.6}),
		geom.NewBox(geom.Point{0.4}, geom.Point{0.8}),
	}
	cells, err := GridCells(1, boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Breakpoints 0, 0.2, 0.4, 0.6, 0.8, 1 → 5 cells.
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(cells))
	}
	total := 0.0
	for _, c := range cells {
		total += c.Volume()
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("cells cover %v of the domain", total)
	}
}

func TestGridCellsRefineArrangement(t *testing.T) {
	// Every cell must be fully inside or fully outside every query box.
	boxes := []geom.Box{
		geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.5, 0.7}),
		geom.NewBox(geom.Point{0.3, 0.4}, geom.Point{0.9, 0.9}),
		geom.NewBox(geom.Point{0.0, 0.6}, geom.Point{0.4, 1.0}),
	}
	cells, err := GridCells(2, boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		for _, q := range boxes {
			v := q.IntersectBoxVolume(c)
			if v > 1e-12 && math.Abs(v-c.Volume()) > 1e-12 {
				t.Fatalf("cell %v straddles query %v", c, q)
			}
		}
	}
}

func TestGridCellsCap(t *testing.T) {
	boxes := make([]geom.Box, 30)
	for i := range boxes {
		f := float64(i+1) / 32
		boxes[i] = geom.NewBox(geom.Point{f / 2, f / 3}, geom.Point{f/2 + 0.3, f/3 + 0.3})
	}
	if _, err := GridCells(2, boxes, 100); err == nil {
		t.Fatal("cap not enforced")
	}
}

// Lemma 3.1: the arrangement learner attains (numerically) zero training
// loss on consistent labels, in both the histogram and discrete variants.
func TestExactFitOnConsistentLabels(t *testing.T) {
	ds := dataset.Power(4000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 5)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 12)
	for _, discrete := range []bool{false, true} {
		tr := New(2, discrete)
		m, err := tr.Train(train)
		if err != nil {
			t.Fatal(err)
		}
		if rms := core.RMS(m, train); rms > 2e-3 {
			t.Fatalf("discrete=%v: training RMS = %v, want ≈0 (Lemma 3.1)", discrete, rms)
		}
	}
}

// The optimal training loss of the arrangement learner lower-bounds any
// bounded-complexity histogram: compare against a deliberately tiny model.
func TestExactLearnerBeatsCoarseHistogram(t *testing.T) {
	ds := dataset.Power(4000, 2).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 6)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 10)
	exact, err := New(2, false).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse model: single uniform bucket.
	coarse := &Model{Cells: []geom.Box{geom.UnitCube(2)}, Weights: []float64{1}}
	if core.MSE(exact, train) > core.MSE(coarse, train)+1e-9 {
		t.Fatalf("exact learner (%v) worse than uniform baseline (%v)",
			core.MSE(exact, train), core.MSE(coarse, train))
	}
}

func TestGeneralizationSanity(t *testing.T) {
	ds := dataset.Power(4000, 3).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 7)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 15, 100)
	m, err := New(2, false).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.25 {
		t.Fatalf("test RMS = %v", rms)
	}
}

func TestRejectsNonBoxQueries(t *testing.T) {
	train := []core.LabeledQuery{{R: geom.NewBall(geom.Point{0.5, 0.5}, 0.2), Sel: 0.3}}
	if _, err := New(2, false).Train(train); err == nil {
		t.Fatal("ball query accepted by box-arrangement learner")
	}
}

func TestModelInterfaces(t *testing.T) {
	var _ core.Trainer = New(2, false)
	if New(2, true).Name() != "Arrangement-discrete" {
		t.Fatal("name mismatch")
	}
	if New(2, false).Name() != "Arrangement-hist" {
		t.Fatal("name mismatch")
	}
}

// Figure 1 of the paper, as an executable reconstruction: 20 data points,
// five training rectangles with selectivities 0.10/0.30/0.15/0.10/0.25, and
// an unseen query R6 whose correct answer is 0.25. The exact arrangement
// learner recovers it from the five feedback records alone.
func TestFigure1Reconstruction(t *testing.T) {
	// 20 points laid out so the five training queries select
	// 2, 6, 3, 2 and 5 of them respectively, like the figure.
	pts := []geom.Point{
		// Cluster A (4 points) near (0.15, 0.8).
		{0.12, 0.78}, {0.15, 0.82}, {0.18, 0.79}, {0.14, 0.85},
		// Cluster B (6 points) near (0.5, 0.55).
		{0.45, 0.52}, {0.50, 0.55}, {0.55, 0.53}, {0.48, 0.58}, {0.52, 0.60}, {0.46, 0.56},
		// Cluster C (5 points) near (0.8, 0.25).
		{0.78, 0.22}, {0.82, 0.25}, {0.80, 0.28}, {0.76, 0.26}, {0.84, 0.23},
		// Scattered (5 points).
		{0.10, 0.15}, {0.30, 0.30}, {0.65, 0.80}, {0.90, 0.70}, {0.25, 0.60},
	}
	sel := func(b geom.Box) float64 {
		c := 0
		for _, p := range pts {
			if b.Contains(p) {
				c++
			}
		}
		return float64(c) / float64(len(pts))
	}
	r1 := geom.NewBox(geom.Point{0.05, 0.10}, geom.Point{0.35, 0.35}) // 2 pts → 0.10
	r2 := geom.NewBox(geom.Point{0.40, 0.45}, geom.Point{0.60, 0.65}) // 6 pts → 0.30
	r3 := geom.NewBox(geom.Point{0.77, 0.20}, geom.Point{0.83, 0.30}) // 3 of cluster C
	r4 := geom.NewBox(geom.Point{0.60, 0.65}, geom.Point{0.95, 0.85}) // 2 pts → 0.10
	r5 := geom.NewBox(geom.Point{0.74, 0.18}, geom.Point{0.90, 0.32}) // 5 pts → 0.25
	wantSels := []float64{0.10, 0.30, 0.15, 0.10, 0.25}
	train := make([]core.LabeledQuery, 0, 5)
	for i, b := range []geom.Box{r1, r2, r3, r4, r5} {
		got := sel(b)
		if got != wantSels[i] {
			t.Fatalf("R%d selectivity = %v, want %v (layout drifted)", i+1, got, wantSels[i])
		}
		train = append(train, core.LabeledQuery{R: b, Sel: got})
	}
	// The unseen query R6 covers cluster C: the correct answer is 0.25.
	r6 := geom.NewBox(geom.Point{0.72, 0.15}, geom.Point{0.92, 0.35})
	if sel(r6) != 0.25 {
		t.Fatalf("R6 true selectivity = %v, want 0.25", sel(r6))
	}
	m, err := New(2, false).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Estimate(r6); math.Abs(got-0.25) > 0.03 {
		t.Fatalf("learned estimate for R6 = %v, want ≈0.25 (Figure 1)", got)
	}
}
