// Package arrangement implements the exact generic procedure of
// Section 3.1 of the paper for orthogonal range queries: the buckets are
// the cells of (a refinement of) the arrangement of the training ranges,
// and the weights minimize the training loss exactly over all histograms
// (resp. discrete distributions) — Lemma 3.1.
//
// For axis-aligned boxes the arrangement is refined by the grid of all
// query facet coordinates: every grid cell lies in the same subset of
// training ranges, which is precisely the property Lemma 3.1 needs. The
// cell count is O((2n+1)^d), the exponential dependence on d that motivates
// the bounded-complexity learners QUADHIST and PTSHIST.
package arrangement

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/solver"
)

// ErrTooManyCells is returned when the arrangement would exceed the cap.
var ErrTooManyCells = errors.New("arrangement: cell count exceeds MaxCells")

// GridCells returns the cells of the facet-coordinate grid refinement of
// the arrangement of the boxes over [0,1]^d, capped at maxCells.
func GridCells(dim int, boxes []geom.Box, maxCells int) ([]geom.Box, error) {
	coords := make([][]float64, dim)
	for i := 0; i < dim; i++ {
		vals := []float64{0, 1}
		for _, b := range boxes {
			if b.Lo[i] > 0 && b.Lo[i] < 1 {
				vals = append(vals, b.Lo[i])
			}
			if b.Hi[i] > 0 && b.Hi[i] < 1 {
				vals = append(vals, b.Hi[i])
			}
		}
		sort.Float64s(vals)
		// Deduplicate.
		uniq := vals[:1]
		for _, v := range vals[1:] {
			if v > uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		coords[i] = uniq
	}
	total := 1
	for i := 0; i < dim; i++ {
		total *= len(coords[i]) - 1
		if maxCells > 0 && total > maxCells {
			return nil, fmt.Errorf("%w: ≥%d", ErrTooManyCells, total)
		}
	}
	cells := make([]geom.Box, 0, total)
	idx := make([]int, dim)
	for {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for i := 0; i < dim; i++ {
			lo[i] = coords[i][idx[i]]
			hi[i] = coords[i][idx[i]+1]
		}
		cells = append(cells, geom.Box{Lo: lo, Hi: hi})
		// Odometer increment.
		i := 0
		for ; i < dim; i++ {
			idx[i]++
			if idx[i] < len(coords[i])-1 {
				break
			}
			idx[i] = 0
		}
		if i == dim {
			break
		}
	}
	return cells, nil
}

// Options configures the exact learner.
type Options struct {
	// Discrete selects the discrete-distribution variant: one point per
	// cell (the cell center) instead of the cell itself.
	Discrete bool
	// MaxCells caps the arrangement size (0 = 200000).
	MaxCells int
	// Solver picks the weight-estimation algorithm.
	Solver solver.Method
}

// Trainer is the exact arrangement learner.
type Trainer struct {
	Dim  int
	Opts Options
}

// New returns an arrangement trainer for boxes in dimension dim.
func New(dim int, discrete bool) *Trainer {
	return &Trainer{Dim: dim, Opts: Options{Discrete: discrete}}
}

// Name implements core.Trainer.
func (t *Trainer) Name() string {
	if t.Opts.Discrete {
		return "Arrangement-discrete"
	}
	return "Arrangement-hist"
}

// Model is the trained arrangement-based distribution.
type Model struct {
	Cells   []geom.Box
	Points  []geom.Point // non-nil in the discrete variant
	Weights []float64
}

// Train implements core.Trainer. All training ranges must be boxes.
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	boxes := make([]geom.Box, len(samples))
	for i, z := range samples {
		b, ok := z.R.(geom.Box)
		if !ok {
			return nil, errors.New("arrangement: the grid construction needs box queries")
		}
		boxes[i] = b
	}
	maxCells := t.Opts.MaxCells
	if maxCells == 0 {
		maxCells = 200000
	}
	cells, err := GridCells(t.Dim, boxes, maxCells)
	if err != nil {
		return nil, err
	}
	s := core.Selectivities(samples)
	m := &Model{Cells: cells}
	if t.Opts.Discrete {
		m.Points = make([]geom.Point, len(cells))
		for j, c := range cells {
			m.Points[j] = c.Center()
		}
		a := core.DesignMatrixPoints(samples, m.Points)
		m.Weights, err = solver.WeightsWith(t.Opts.Solver, a, s)
	} else {
		a := core.DesignMatrixBoxes(samples, cells)
		m.Weights, err = solver.WeightsWith(t.Opts.Solver, a, s)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// NumBuckets implements core.Model.
func (m *Model) NumBuckets() int { return len(m.Cells) }

// Estimate implements core.Model.
func (m *Model) Estimate(r geom.Range) float64 {
	s := 0.0
	if m.Points != nil {
		for j, p := range m.Points {
			if m.Weights[j] != 0 && r.Contains(p) {
				s += m.Weights[j]
			}
		}
		return core.Clamp01(s)
	}
	for j, c := range m.Cells {
		w := m.Weights[j]
		if w == 0 || !r.IntersectsBox(c) {
			continue
		}
		if r.ContainsBox(c) {
			s += w
			continue
		}
		v := c.Volume()
		if v == 0 {
			continue
		}
		s += r.IntersectBoxVolume(c) / v * w
	}
	return core.Clamp01(s)
}

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
