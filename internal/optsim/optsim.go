// Package optsim is a small cost-based query-optimizer simulator — the
// consumer the paper's introduction motivates: "cost-based query
// optimizers … use selectivity estimates to gauge intermediate result
// sizes and choose low-cost query execution plans."
//
// The simulator models a table scanned under a range predicate with three
// access paths (sequential scan, secondary-index scan, bitmap scan) and a
// two-table join planned by selectivity-ordered nesting. Plan costs follow
// the classical textbook model (per-page sequential cost, per-tuple random
// I/O amplification). Feeding the planner a selectivity estimator and
// replaying a workload yields the estimator's *plan regret* — the extra
// execution cost caused purely by estimation error — which is how the
// experiments quantify end-to-end estimator value beyond RMS/Q-error.
package optsim

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/core"
	"repro/internal/geom"
)

// AccessPath identifies a physical operator choice for a scan.
type AccessPath int

const (
	// SeqScan reads every page once.
	SeqScan AccessPath = iota
	// IndexScan pays a random read per matching tuple.
	IndexScan
	// BitmapScan sorts matches by page first: cheaper than IndexScan at
	// moderate selectivity, still dominated by SeqScan near 1.
	BitmapScan
)

// String names the path for reports.
func (p AccessPath) String() string {
	switch p {
	case SeqScan:
		return "seqscan"
	case IndexScan:
		return "indexscan"
	case BitmapScan:
		return "bitmapscan"
	}
	return fmt.Sprintf("path(%d)", int(p))
}

// CostModel holds the constants of the textbook cost model.
type CostModel struct {
	TuplesPerPage float64 // tuples per page
	SeqPageCost   float64 // cost of one sequential page read
	RandPageCost  float64 // cost of one random page read
	CPUTupleCost  float64 // per-tuple processing cost
}

// DefaultCostModel mirrors PostgreSQL's default cost constants in spirit.
func DefaultCostModel() CostModel {
	return CostModel{
		TuplesPerPage: 100,
		SeqPageCost:   1.0,
		RandPageCost:  4.0,
		CPUTupleCost:  0.01,
	}
}

// ScanCost returns the cost of scanning n tuples under the given path at
// the given (true) selectivity.
func (cm CostModel) ScanCost(path AccessPath, n int, sel float64) float64 {
	pages := math.Ceil(float64(n) / cm.TuplesPerPage)
	matches := sel * float64(n)
	switch path {
	case SeqScan:
		return pages*cm.SeqPageCost + float64(n)*cm.CPUTupleCost
	case IndexScan:
		// One random page per match (worst-case clustering).
		return matches*cm.RandPageCost + matches*cm.CPUTupleCost
	case BitmapScan:
		// Matches grouped by page: min(matches, pages) random page
		// reads plus a sorting overhead.
		touched := math.Min(matches, pages)
		return touched*cm.RandPageCost + matches*2*cm.CPUTupleCost
	}
	panic("optsim: unknown access path")
}

// ChoosePath returns the cheapest access path for the estimated
// selectivity.
func (cm CostModel) ChoosePath(n int, estSel float64) AccessPath {
	best := SeqScan
	bestCost := cm.ScanCost(SeqScan, n, estSel)
	for _, p := range []AccessPath{IndexScan, BitmapScan} {
		if c := cm.ScanCost(p, n, estSel); c < bestCost {
			best, bestCost = p, c
		}
	}
	return best
}

// Estimator is anything that predicts a selectivity for a range — a
// trained core.Model, the true selectivity oracle, or a naive baseline.
type Estimator interface {
	Estimate(r geom.Range) float64
}

// EstimatorFunc adapts a plain function to the Estimator interface.
type EstimatorFunc func(r geom.Range) float64

// Estimate implements Estimator.
func (f EstimatorFunc) Estimate(r geom.Range) float64 { return f(r) }

// Oracle is the perfect estimator: it replays the recorded true
// selectivity of a labeled workload (available in simulation, not in
// production). Lookup is by structural equality over the recorded queries.
type Oracle struct {
	Samples []core.LabeledQuery
}

// Estimate implements Estimator.
func (o Oracle) Estimate(r geom.Range) float64 {
	for _, z := range o.Samples {
		if reflect.DeepEqual(z.R, r) {
			return z.Sel
		}
	}
	return 0
}

// UniformityAssumption is the no-statistics baseline every classical
// optimizer falls back on: selectivity = predicate volume (attribute
// independence + uniformity).
type UniformityAssumption struct{ Dim int }

// Estimate implements Estimator.
func (u UniformityAssumption) Estimate(r geom.Range) float64 {
	return core.Clamp01(r.IntersectBoxVolume(geom.UnitCube(u.Dim)))
}

// ScanDecision records one planned-vs-optimal scan.
type ScanDecision struct {
	Query    geom.Range
	TrueSel  float64
	EstSel   float64
	Chosen   AccessPath
	Optimal  AccessPath
	Cost     float64 // executed cost of the chosen plan at the true selectivity
	BestCost float64 // executed cost of the optimal plan
}

// Regret returns the extra cost caused by the estimation error.
func (d ScanDecision) Regret() float64 { return d.Cost - d.BestCost }

// Report aggregates a replayed workload.
type Report struct {
	Decisions   []ScanDecision
	TotalCost   float64
	OptimalCost float64
	Agreements  int
}

// RegretFraction is (total − optimal)/optimal.
func (r Report) RegretFraction() float64 {
	if r.OptimalCost == 0 {
		return 0
	}
	return (r.TotalCost - r.OptimalCost) / r.OptimalCost
}

// AgreementRate is the fraction of queries planned identically to the
// oracle.
func (r Report) AgreementRate() float64 {
	if len(r.Decisions) == 0 {
		return 1
	}
	return float64(r.Agreements) / float64(len(r.Decisions))
}

// ReplayScans plans every query with the estimator and executes it at the
// true selectivity, returning the aggregate report.
func ReplayScans(cm CostModel, n int, est Estimator, queries []core.LabeledQuery) Report {
	rep := Report{}
	for _, z := range queries {
		e := est.Estimate(z.R)
		chosen := cm.ChoosePath(n, e)
		optimal := cm.ChoosePath(n, z.Sel)
		cost := cm.ScanCost(chosen, n, z.Sel)
		best := cm.ScanCost(optimal, n, z.Sel)
		rep.Decisions = append(rep.Decisions, ScanDecision{
			Query: z.R, TrueSel: z.Sel, EstSel: e,
			Chosen: chosen, Optimal: optimal,
			Cost: cost, BestCost: best,
		})
		rep.TotalCost += cost
		rep.OptimalCost += best
		if chosen == optimal {
			rep.Agreements++
		}
	}
	return rep
}

// JoinOrderCost models a two-table nested-loop join: the outer table is
// scanned once and the inner table is rescanned per surviving outer tuple,
// so cost = scan(outer) + outerMatches · scan(inner). The outer should be
// the side with the smaller filtered cardinality; wrong selectivity
// estimates flip the order.
func (cm CostModel) JoinOrderCost(nA, nB int, selA, selB float64, aOuter bool) float64 {
	scanA := cm.ScanCost(SeqScan, nA, selA)
	scanB := cm.ScanCost(SeqScan, nB, selB)
	if aOuter {
		return scanA + selA*float64(nA)*scanB
	}
	return scanB + selB*float64(nB)*scanA
}

// JoinDecision records one join-order choice.
type JoinDecision struct {
	AOuter    bool
	OptAOuter bool
	Cost      float64
	BestCost  float64
}

// PlanJoin chooses the join order from estimated selectivities and prices
// it at the true ones.
func PlanJoin(cm CostModel, nA, nB int, estA, estB, trueA, trueB float64) JoinDecision {
	estOuterA := cm.JoinOrderCost(nA, nB, estA, estB, true) <= cm.JoinOrderCost(nA, nB, estA, estB, false)
	optOuterA := cm.JoinOrderCost(nA, nB, trueA, trueB, true) <= cm.JoinOrderCost(nA, nB, trueA, trueB, false)
	return JoinDecision{
		AOuter:    estOuterA,
		OptAOuter: optOuterA,
		Cost:      cm.JoinOrderCost(nA, nB, trueA, trueB, estOuterA),
		BestCost:  cm.JoinOrderCost(nA, nB, trueA, trueB, optOuterA),
	}
}
