package optsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/workload"
)

func TestScanCostShapes(t *testing.T) {
	cm := DefaultCostModel()
	const n = 100000
	// Sequential cost is selectivity-independent.
	if cm.ScanCost(SeqScan, n, 0.01) != cm.ScanCost(SeqScan, n, 0.99) {
		t.Fatal("seqscan cost depends on selectivity")
	}
	// Index scan grows linearly with selectivity.
	lo := cm.ScanCost(IndexScan, n, 0.001)
	hi := cm.ScanCost(IndexScan, n, 0.5)
	if hi <= lo {
		t.Fatal("indexscan cost not increasing")
	}
	// Bitmap scan sits between index and sequential at mid selectivity.
	mid := 0.2
	if cm.ScanCost(BitmapScan, n, mid) >= cm.ScanCost(IndexScan, n, mid) {
		t.Fatal("bitmapscan not cheaper than indexscan at mid selectivity")
	}
}

func TestChoosePathCrossovers(t *testing.T) {
	cm := DefaultCostModel()
	const n = 100000
	// Highly selective → index; unselective → seq.
	if cm.ChoosePath(n, 0.0001) != IndexScan {
		t.Fatalf("path at sel 0.0001 = %v, want indexscan", cm.ChoosePath(n, 0.0001))
	}
	if cm.ChoosePath(n, 0.9) != SeqScan {
		t.Fatalf("path at sel 0.9 = %v, want seqscan", cm.ChoosePath(n, 0.9))
	}
	// The chosen path is always the argmin.
	for _, sel := range []float64{0, 0.001, 0.01, 0.05, 0.2, 0.5, 1} {
		chosen := cm.ChoosePath(n, sel)
		for _, p := range []AccessPath{SeqScan, IndexScan, BitmapScan} {
			if cm.ScanCost(p, n, sel) < cm.ScanCost(chosen, n, sel)-1e-9 {
				t.Fatalf("sel %v: %v cheaper than chosen %v", sel, p, chosen)
			}
		}
	}
}

func TestOracleHasZeroRegret(t *testing.T) {
	cm := DefaultCostModel()
	ds := dataset.Power(5000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	queries := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 100)
	rep := ReplayScans(cm, ds.Len(), Oracle{Samples: queries}, queries)
	if rep.RegretFraction() != 0 {
		t.Fatalf("oracle regret = %v", rep.RegretFraction())
	}
	if rep.AgreementRate() != 1 {
		t.Fatalf("oracle agreement = %v", rep.AgreementRate())
	}
}

func TestLearnedEstimatorBeatsUniformity(t *testing.T) {
	cm := DefaultCostModel()
	ds := dataset.Power(8000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 7)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven, MaxSide: 0.4}
	train, test := g.TrainTest(spec, 300, 300)
	m, err := hist.New(2, 1200).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	learned := ReplayScans(cm, ds.Len(), m, test)
	naive := ReplayScans(cm, ds.Len(), UniformityAssumption{Dim: 2}, test)
	if learned.RegretFraction() > naive.RegretFraction() {
		t.Fatalf("learned regret %v worse than uniformity %v",
			learned.RegretFraction(), naive.RegretFraction())
	}
	if learned.RegretFraction() > 0.05 {
		t.Fatalf("learned regret %v too high", learned.RegretFraction())
	}
	if learned.AgreementRate() < naive.AgreementRate() {
		t.Fatalf("learned agreement %v below uniformity %v",
			learned.AgreementRate(), naive.AgreementRate())
	}
}

func TestRegretNonNegative(t *testing.T) {
	cm := DefaultCostModel()
	ds := dataset.Forest(4000, 2).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 9)
	queries := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Random}, 200)
	rep := ReplayScans(cm, ds.Len(), UniformityAssumption{Dim: 2}, queries)
	for _, d := range rep.Decisions {
		if d.Regret() < -1e-9 {
			t.Fatalf("negative regret %v", d.Regret())
		}
	}
	if rep.TotalCost < rep.OptimalCost-1e-9 {
		t.Fatal("total cost below optimal cost")
	}
}

func TestUniformityEstimator(t *testing.T) {
	u := UniformityAssumption{Dim: 2}
	b := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5})
	if got := u.Estimate(b); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("uniformity estimate = %v, want 0.25", got)
	}
}

func TestJoinOrderPlanning(t *testing.T) {
	cm := DefaultCostModel()
	// A filtered to 10 rows, B filtered to 10000: A must be outer.
	d := PlanJoin(cm, 100000, 100000, 0.0001, 0.1, 0.0001, 0.1)
	if !d.AOuter || !d.OptAOuter {
		t.Fatalf("small-side not chosen as outer: %+v", d)
	}
	if d.Cost != d.BestCost {
		t.Fatalf("correct order but regret: %+v", d)
	}
	// A badly overestimated flips the order and costs more.
	bad := PlanJoin(cm, 100000, 100000, 0.5, 0.1, 0.0001, 0.1)
	if bad.AOuter {
		t.Fatalf("overestimate did not flip the order: %+v", bad)
	}
	if bad.Cost <= bad.BestCost {
		t.Fatalf("flipped order should cost more: %+v", bad)
	}
}

func TestModelAsEstimatorInterface(t *testing.T) {
	// core.Model satisfies Estimator directly.
	var _ Estimator = (core.Model)(nil)
}

func TestPathStrings(t *testing.T) {
	if SeqScan.String() != "seqscan" || IndexScan.String() != "indexscan" || BitmapScan.String() != "bitmapscan" {
		t.Fatal("path names wrong")
	}
}
