// Package dataset provides the synthetic stand-ins for the four real-world
// evaluation datasets of the paper (Section 4): Power, Forest (CoverType),
// Census, and DMV.
//
// The originals are UCI/government downloads that cannot ship with an
// offline reproduction, so each generator reproduces the properties the
// experiments actually exercise — attribute counts, the categorical/numeric
// split, heavy skew, multi-modal clustering, and inter-attribute
// correlation — at a configurable scale, normalized to [0,1]^d exactly as
// the paper normalizes its data. The substitution is documented in
// DESIGN.md.
//
// Categorical attributes are discretized onto [0,1]: category k of m
// occupies the band [k/m, (k+1)/m) and a tuple's coordinate is jittered
// uniformly within its band. An equality predicate then corresponds to a
// box side covering exactly the band (see workload.Generate), which makes
// the continuous volume arithmetic of the histogram models an exact proxy
// for the discrete problem.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Column describes one attribute of a dataset.
type Column struct {
	Name        string
	Categorical bool
	// Cardinality is the number of distinct categories of a categorical
	// column (0 for numeric columns).
	Cardinality int
}

// Dataset is a normalized point set with schema metadata.
type Dataset struct {
	Name   string
	Cols   []Column
	Points []geom.Point
}

// Dim returns the number of attributes.
func (d *Dataset) Dim() int { return len(d.Cols) }

// Len returns the number of tuples.
func (d *Dataset) Len() int { return len(d.Points) }

// Project returns a new dataset containing only the given attribute
// indices, in order. Points are copied.
func (d *Dataset) Project(dims []int) *Dataset {
	cols := make([]Column, len(dims))
	for i, j := range dims {
		if j < 0 || j >= d.Dim() {
			panic(fmt.Sprintf("dataset: projection index %d out of range", j))
		}
		cols[i] = d.Cols[j]
	}
	pts := make([]geom.Point, d.Len())
	for i, p := range d.Points {
		q := make(geom.Point, len(dims))
		for k, j := range dims {
			q[k] = p[j]
		}
		pts[i] = q
	}
	return &Dataset{Name: fmt.Sprintf("%s/proj%d", d.Name, len(dims)), Cols: cols, Points: pts}
}

// RandomProjection projects onto k attributes chosen uniformly without
// replacement, as the paper does per experiment ("we will choose a subset
// of attributes randomly").
func (d *Dataset) RandomProjection(k int, r *rng.RNG) *Dataset {
	if k > d.Dim() {
		panic("dataset: projection wider than schema")
	}
	perm := r.Perm(d.Dim())
	return d.Project(perm[:k])
}

// NumericProjection projects onto the first k numeric attributes — handy
// for experiments that need purely continuous subspaces (e.g. ball queries).
func (d *Dataset) NumericProjection(k int) *Dataset {
	dims := make([]int, 0, k)
	for j, c := range d.Cols {
		if !c.Categorical {
			dims = append(dims, j)
			if len(dims) == k {
				break
			}
		}
	}
	if len(dims) < k {
		panic("dataset: not enough numeric attributes")
	}
	return d.Project(dims)
}

// clamp01 clips a coordinate into the unit interval.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// catValue encodes category k of m as a jittered coordinate inside its
// band [k/m, (k+1)/m).
func catValue(k, m int, r *rng.RNG) float64 {
	return (float64(k) + 0.999*r.Float64()) / float64(m)
}

// zipf draws a Zipf(s)-distributed category in [0, n) — the skewed
// marginals typical of city/make/color columns.
func zipf(r *rng.RNG, n int, s float64) int {
	// Inverse-CDF on precomputed weights would be faster, but n is small
	// and generation is one-time; simple rejection-free scan suffices.
	total := 0.0
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	u := r.Float64() * total
	acc := 0.0
	for k := 1; k <= n; k++ {
		acc += 1 / math.Pow(float64(k), s)
		if u <= acc {
			return k - 1
		}
	}
	return n - 1
}
