package dataset

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSchemas(t *testing.T) {
	cases := []struct {
		ds          *Dataset
		wantDim     int
		wantCat     int
		wantName    string
		wantDefault int
	}{
		{Power(100, 1), 7, 0, "power", DefaultPowerSize},
		{Forest(100, 1), 10, 0, "forest", DefaultForestSize},
		{Census(100, 1), 13, 8, "census", DefaultCensusSize},
		{DMV(100, 1), 11, 10, "dmv", DefaultDMVSize},
	}
	for _, c := range cases {
		if c.ds.Dim() != c.wantDim {
			t.Fatalf("%s: dim %d, want %d", c.ds.Name, c.ds.Dim(), c.wantDim)
		}
		cat := 0
		for _, col := range c.ds.Cols {
			if col.Categorical {
				cat++
				if col.Cardinality < 2 {
					t.Fatalf("%s: categorical column %s with cardinality %d", c.ds.Name, col.Name, col.Cardinality)
				}
			}
		}
		if cat != c.wantCat {
			t.Fatalf("%s: %d categorical columns, want %d", c.ds.Name, cat, c.wantCat)
		}
		if c.ds.Len() != 100 {
			t.Fatalf("%s: %d tuples, want 100", c.ds.Name, c.ds.Len())
		}
	}
}

func TestPointsInUnitCube(t *testing.T) {
	for _, name := range []string{"power", "forest", "census", "dmv"} {
		ds := ByName(name, 2000, 7)
		for _, p := range ds.Points {
			if !p.InUnitCube() {
				t.Fatalf("%s: point %v outside unit cube", name, p)
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Power(500, 42)
	b := Power(500, 42)
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatalf("generation not deterministic at tuple %d dim %d", i, j)
			}
		}
	}
	c := Power(500, 43)
	same := true
	for i := range a.Points {
		if a.Points[i][0] != c.Points[i][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPowerSkew(t *testing.T) {
	// Power data concentrates in the low-load region (paper Figure 7:
	// mass in the lower half).
	ds := Power(20000, 1)
	low := 0
	for _, p := range ds.Points {
		if p[0] < 0.5 {
			low++
		}
	}
	frac := float64(low) / float64(ds.Len())
	if frac < 0.75 {
		t.Fatalf("power active-power lower-half fraction = %v, want ≥ 0.75 (skewed)", frac)
	}
}

func TestPowerCorrelation(t *testing.T) {
	// Active power and intensity are nearly proportional.
	ds := Power(20000, 2)
	if r := pearson(ds, 0, 3); r < 0.8 {
		t.Fatalf("power/intensity correlation = %v, want ≥ 0.8", r)
	}
	// Voltage anti-correlates with load.
	if r := pearson(ds, 0, 2); r > -0.2 {
		t.Fatalf("power/voltage correlation = %v, want ≤ −0.2", r)
	}
}

func TestCensusSpikes(t *testing.T) {
	ds := Census(20000, 3)
	zeroGain := 0
	hours40 := 0
	for _, p := range ds.Points {
		if p[10] < 0.01 {
			zeroGain++
		}
		if math.Abs(p[11]-0.40) < 0.02 {
			hours40++
		}
	}
	if f := float64(zeroGain) / float64(ds.Len()); f < 0.85 {
		t.Fatalf("capital-gain zero spike = %v, want ≥ 0.85", f)
	}
	if f := float64(hours40) / float64(ds.Len()); f < 0.35 {
		t.Fatalf("hours=40 spike = %v, want ≥ 0.35", f)
	}
}

func TestDMVZipfMarginal(t *testing.T) {
	// The top state category should strongly dominate (NY plates).
	ds := DMV(20000, 4)
	counts := make([]int, 12)
	for _, p := range ds.Points {
		k := int(p[3] * 12)
		if k >= 12 {
			k = 11
		}
		counts[k]++
	}
	if f := float64(counts[0]) / float64(ds.Len()); f < 0.5 {
		t.Fatalf("dominant state fraction = %v, want ≥ 0.5 (Zipf s=3)", f)
	}
}

func TestProject(t *testing.T) {
	ds := Census(100, 5)
	proj := ds.Project([]int{0, 3, 11})
	if proj.Dim() != 3 || proj.Len() != 100 {
		t.Fatalf("projection shape %dx%d", proj.Len(), proj.Dim())
	}
	if !proj.Cols[1].Categorical || proj.Cols[1].Cardinality != 16 {
		t.Fatalf("projection lost column metadata: %+v", proj.Cols[1])
	}
	for i, p := range proj.Points {
		if p[0] != ds.Points[i][0] || p[1] != ds.Points[i][3] || p[2] != ds.Points[i][11] {
			t.Fatalf("projection corrupted tuple %d", i)
		}
	}
}

func TestRandomProjection(t *testing.T) {
	ds := Forest(50, 6)
	r := rng.New(9)
	proj := ds.RandomProjection(4, r)
	if proj.Dim() != 4 {
		t.Fatalf("random projection dim %d", proj.Dim())
	}
}

func TestNumericProjection(t *testing.T) {
	ds := Census(50, 7)
	proj := ds.NumericProjection(3)
	for _, c := range proj.Cols {
		if c.Categorical {
			t.Fatalf("numeric projection contains categorical column %s", c.Name)
		}
	}
}

func TestCatValueStaysInBand(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 1000; trial++ {
		m := 2 + r.IntN(40)
		k := r.IntN(m)
		v := catValue(k, m, r)
		if v < float64(k)/float64(m) || v >= float64(k+1)/float64(m) {
			t.Fatalf("catValue(%d,%d) = %v escapes band", k, m, v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := rng.New(11)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[zipf(r, 10, 1.5)]++
	}
	if counts[0] <= counts[9] {
		t.Fatal("zipf head not heavier than tail")
	}
	if counts[0] < 3*counts[4] {
		t.Fatalf("zipf insufficiently skewed: %v", counts)
	}
}

func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ByName with unknown name did not panic")
		}
	}()
	ByName("nope", 10, 1)
}

func pearson(ds *Dataset, i, j int) float64 {
	n := float64(ds.Len())
	var si, sj, sii, sjj, sij float64
	for _, p := range ds.Points {
		si += p[i]
		sj += p[j]
		sii += p[i] * p[i]
		sjj += p[j] * p[j]
		sij += p[i] * p[j]
	}
	cov := sij/n - si/n*sj/n
	vi := sii/n - si/n*si/n
	vj := sjj/n - sj/n*sj/n
	return cov / math.Sqrt(vi*vj)
}
