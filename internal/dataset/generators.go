package dataset

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Default tuple counts used by the experiment harness. The originals have
// 2.1M / 581k / 49k / 11M tuples; these scaled counts preserve every
// distributional property the experiments measure while keeping exact
// selectivity labeling fast (see DESIGN.md, substitutions).
const (
	DefaultPowerSize  = 40000
	DefaultForestSize = 30000
	DefaultCensusSize = 20000
	DefaultDMVSize    = 40000
)

// Power simulates the UCI "Individual household electric power consumption"
// dataset: 7 numeric attributes over 47 months of measurements. The real
// data is dominated by a low base-load regime with bursts of high activity
// (cooking/heating), producing strong skew toward low values and strong
// correlation between global power, intensity, and the sub-meterings; the
// paper's Figure 7 shows the resulting mass concentrated in the lower half
// of the 2D projections. The generator reproduces that structure with a
// three-regime mixture driven by a latent load variable and a diurnal
// phase.
func Power(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	cols := []Column{
		{Name: "global_active_power"},
		{Name: "global_reactive_power"},
		{Name: "voltage"},
		{Name: "global_intensity"},
		{Name: "sub_metering_1"},
		{Name: "sub_metering_2"},
		{Name: "sub_metering_3"},
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		// Latent load regime: 72% idle, 23% normal, 5% peak.
		var load float64
		switch u := r.Float64(); {
		case u < 0.72:
			load = 0.08 + 0.05*math.Abs(r.NormFloat64())
		case u < 0.95:
			load = 0.30 + 0.10*r.NormFloat64()
		default:
			load = 0.70 + 0.12*r.NormFloat64()
		}
		load = clamp01(load)
		phase := r.Float64() // diurnal phase
		p := make(geom.Point, 7)
		p[0] = clamp01(load + 0.03*r.NormFloat64())
		p[1] = clamp01(0.1 + 0.3*load + 0.08*math.Abs(r.NormFloat64()))
		// Voltage is near-constant and slightly anti-correlated with load.
		p[2] = clamp01(0.55 - 0.10*load + 0.05*r.NormFloat64())
		// Intensity tracks active power almost linearly.
		p[3] = clamp01(0.95*load + 0.04*r.NormFloat64())
		// Sub-meterings: mostly zero (spike at 0) with activity bursts
		// correlated with load and phase.
		p[4] = meterValue(r, load, phase < 0.3)
		p[5] = meterValue(r, load, phase >= 0.3 && phase < 0.6)
		p[6] = clamp01(0.6*load + 0.15*math.Abs(r.NormFloat64())*boolTo(phase >= 0.5))
		pts[i] = p
	}
	return &Dataset{Name: "power", Cols: cols, Points: pts}
}

func meterValue(r *rng.RNG, load float64, active bool) float64 {
	if !active || r.Float64() < 0.6 {
		// Appliance off: exact-zero spike smeared into a tiny band so
		// the continuous geometry stays non-degenerate.
		return 0.01 * r.Float64()
	}
	return clamp01(0.5*load + 0.25*math.Abs(r.NormFloat64()))
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Forest simulates the UCI CoverType dataset restricted to its 10 numeric
// cartographic attributes (the projection the paper uses). Elevation is
// multi-modal across wilderness areas and drives most other attributes:
// distances to hydrology/roadways/fire points grow with elevation and have
// heavy right tails; the three hillshade indices are smooth functions of
// aspect and slope.
func Forest(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	cols := []Column{
		{Name: "elevation"},
		{Name: "aspect"},
		{Name: "slope"},
		{Name: "horiz_dist_hydrology"},
		{Name: "vert_dist_hydrology"},
		{Name: "horiz_dist_roadways"},
		{Name: "hillshade_9am"},
		{Name: "hillshade_noon"},
		{Name: "hillshade_3pm"},
		{Name: "horiz_dist_fire_points"},
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		// Wilderness-area mixture over elevation.
		var elev float64
		switch u := r.Float64(); {
		case u < 0.45:
			elev = 0.55 + 0.08*r.NormFloat64()
		case u < 0.80:
			elev = 0.70 + 0.07*r.NormFloat64()
		default:
			elev = 0.35 + 0.10*r.NormFloat64()
		}
		elev = clamp01(elev)
		aspect := r.Float64() // uniform orientation 0..360°
		slope := clamp01(0.15 + 0.12*math.Abs(r.NormFloat64()))
		p := make(geom.Point, 10)
		p[0] = elev
		p[1] = aspect
		p[2] = slope
		p[3] = clamp01(0.12*elev + 0.18*r.ExpFloat64()*0.35)
		p[4] = clamp01(0.08 + 0.10*r.NormFloat64() + 0.25*p[3])
		p[5] = clamp01(0.25*elev + 0.30*r.ExpFloat64()*0.4)
		// Hillshade: sinusoidal in aspect, damped by slope.
		p[6] = clamp01(0.84 + 0.12*math.Sin(2*math.Pi*aspect)*(1-slope) + 0.03*r.NormFloat64())
		p[7] = clamp01(0.88 - 0.10*slope + 0.03*r.NormFloat64())
		p[8] = clamp01(0.55 - 0.12*math.Sin(2*math.Pi*aspect)*(1-slope) + 0.04*r.NormFloat64())
		p[9] = clamp01(0.30*elev + 0.25*r.ExpFloat64()*0.4)
		pts[i] = p
	}
	return &Dataset{Name: "forest", Cols: cols, Points: pts}
}

// Census simulates the UCI Adult/Census dataset: 13 attributes, 8
// categorical and 5 numeric, with the signature spikes (capital-gain ≈ 0,
// hours-per-week = 40) and the education↔occupation correlation.
func Census(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	cols := []Column{
		{Name: "age"},
		{Name: "workclass", Categorical: true, Cardinality: 8},
		{Name: "fnlwgt"},
		{Name: "education", Categorical: true, Cardinality: 16},
		{Name: "education_num"},
		{Name: "marital_status", Categorical: true, Cardinality: 7},
		{Name: "occupation", Categorical: true, Cardinality: 14},
		{Name: "relationship", Categorical: true, Cardinality: 6},
		{Name: "race", Categorical: true, Cardinality: 5},
		{Name: "sex", Categorical: true, Cardinality: 2},
		{Name: "capital_gain"},
		{Name: "hours_per_week"},
		{Name: "native_country", Categorical: true, Cardinality: 40},
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, 13)
		// Age: right-skewed working-age distribution.
		age := clamp01(0.25 + 0.18*math.Abs(r.NormFloat64()))
		p[0] = age
		p[1] = catValue(zipf(r, 8, 1.3), 8, r) // workclass: "Private" dominates
		p[2] = clamp01(0.25 + 0.15*r.ExpFloat64())
		edu := zipf(r, 16, 0.8)
		p[3] = catValue(edu, 16, r)
		p[4] = clamp01(float64(edu)/16 + 0.05*r.NormFloat64()) // education-num tracks education
		p[5] = catValue(zipf(r, 7, 1.1), 7, r)
		// Occupation correlates with education level.
		occ := (edu + zipf(r, 6, 1.2)) % 14
		p[6] = catValue(occ, 14, r)
		p[7] = catValue(zipf(r, 6, 1.2), 6, r)
		p[8] = catValue(zipf(r, 5, 2.0), 5, r)
		p[9] = catValue(r.IntN(2), 2, r)
		// Capital gain: 92% exact zero, else heavy tail.
		if r.Float64() < 0.92 {
			p[10] = 0.005 * r.Float64()
		} else {
			p[10] = clamp01(0.1 + 0.25*r.ExpFloat64())
		}
		// Hours per week: big spike at 40h (≈0.4 normalized).
		if r.Float64() < 0.45 {
			p[11] = clamp01(0.40 + 0.005*r.NormFloat64())
		} else {
			p[11] = clamp01(0.35 + 0.12*r.NormFloat64())
		}
		p[12] = catValue(zipf(r, 40, 2.2), 40, r) // country: US dominates
		pts[i] = p
	}
	return &Dataset{Name: "census", Cols: cols, Points: pts}
}

// DMV simulates the NY State vehicle-registration dataset: 11 attributes,
// 10 categorical (record type, class, city, state, make, body type, fuel,
// color, county, scofflaw flag) and 1 numeric (unladen weight). Categorical
// marginals are strongly Zipfian (a few makes/cities dominate) and body
// type correlates with weight.
func DMV(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	cols := []Column{
		{Name: "record_type", Categorical: true, Cardinality: 4},
		{Name: "reg_class", Categorical: true, Cardinality: 20},
		{Name: "city", Categorical: true, Cardinality: 50},
		{Name: "state", Categorical: true, Cardinality: 12},
		{Name: "make", Categorical: true, Cardinality: 40},
		{Name: "body_type", Categorical: true, Cardinality: 12},
		{Name: "fuel_type", Categorical: true, Cardinality: 6},
		{Name: "color", Categorical: true, Cardinality: 15},
		{Name: "county", Categorical: true, Cardinality: 30},
		{Name: "scofflaw", Categorical: true, Cardinality: 2},
		{Name: "unladen_weight"},
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, 11)
		p[0] = catValue(zipf(r, 4, 2.5), 4, r)
		p[1] = catValue(zipf(r, 20, 1.8), 20, r)
		city := zipf(r, 50, 1.4)
		p[2] = catValue(city, 50, r)
		p[3] = catValue(zipf(r, 12, 3.0), 12, r) // almost always NY
		p[4] = catValue(zipf(r, 40, 1.2), 40, r)
		body := zipf(r, 12, 1.5)
		p[5] = catValue(body, 12, r)
		p[6] = catValue(zipf(r, 6, 2.0), 6, r)
		p[7] = catValue(zipf(r, 15, 1.3), 15, r)
		// County correlates with city.
		p[8] = catValue((city/2+zipf(r, 4, 1.5))%30, 30, r)
		p[9] = catValue(zipf(r, 2, 4.0), 2, r) // scofflaw almost always false
		// Weight: bimodal by body type (sedans vs trucks).
		if body < 4 {
			p[10] = clamp01(0.30 + 0.06*r.NormFloat64())
		} else {
			p[10] = clamp01(0.55 + 0.10*r.NormFloat64())
		}
		pts[i] = p
	}
	return &Dataset{Name: "dmv", Cols: cols, Points: pts}
}

// ByName returns the named dataset generator output at size n (0 means the
// dataset's default size). Recognized names: power, forest, census, dmv.
func ByName(name string, n int, seed uint64) *Dataset {
	switch name {
	case "power":
		if n == 0 {
			n = DefaultPowerSize
		}
		return Power(n, seed)
	case "forest":
		if n == 0 {
			n = DefaultForestSize
		}
		return Forest(n, seed)
	case "census":
		if n == 0 {
			n = DefaultCensusSize
		}
		return Census(n, seed)
	case "dmv":
		if n == 0 {
			n = DefaultDMVSize
		}
		return DMV(n, seed)
	case "discs":
		if n == 0 {
			n = 20000
		}
		return Discs(n, seed)
	}
	panic("dataset: unknown dataset " + name)
}

// Discs generates a synthetic dataset of discs in the plane, encoded as 3D
// points (cx, cy, radius) with radius ≥ 0 — the object space 𝔹 of the
// paper's semi-algebraic disc-intersection example (Section 2.2). Centers
// follow a skewed two-cluster mixture; radii are exponential with a heavy
// bias toward small discs, clamped so every disc fits the unit cube
// encoding.
func Discs(n int, seed uint64) *Dataset {
	r := rng.New(seed)
	cols := []Column{
		{Name: "center_x"},
		{Name: "center_y"},
		{Name: "radius"},
	}
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		var cx, cy float64
		if r.Float64() < 0.7 {
			cx = 0.3 + 0.1*r.NormFloat64()
			cy = 0.35 + 0.12*r.NormFloat64()
		} else {
			cx = 0.75 + 0.08*r.NormFloat64()
			cy = 0.7 + 0.08*r.NormFloat64()
		}
		rad := 0.05 * r.ExpFloat64()
		if rad > 0.3 {
			rad = 0.3
		}
		pts[i] = geom.Point{clamp01(cx), clamp01(cy), rad}
	}
	return &Dataset{Name: "discs", Cols: cols, Points: pts}
}
