package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRMS(t *testing.T) {
	got := RMS([]float64{0.1, 0.5}, []float64{0.2, 0.2})
	want := math.Sqrt((0.01 + 0.09) / 2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMS = %v, want %v", got, want)
	}
	if RMS(nil, nil) != 0 {
		t.Fatal("RMS of empty input nonzero")
	}
}

func TestLInf(t *testing.T) {
	got := LInf([]float64{0.1, 0.9}, []float64{0.2, 0.5})
	if math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("LInf = %v, want 0.4", got)
	}
}

func TestQErrors(t *testing.T) {
	q := QErrors([]float64{0.2, 0.05, 0}, []float64{0.1, 0.1, 0}, 1e-6)
	if math.Abs(q[0]-2) > 1e-12 {
		t.Fatalf("q[0] = %v, want 2", q[0])
	}
	if math.Abs(q[1]-2) > 1e-12 {
		t.Fatalf("q[1] = %v, want 2 (symmetric)", q[1])
	}
	if math.Abs(q[2]-1) > 1e-12 {
		t.Fatalf("q[2] = %v, want 1 (both floored)", q[2])
	}
}

func TestQErrorFloor(t *testing.T) {
	// Estimate 0.5 on a truly empty query: Q-error is bounded by the floor.
	q := QErrors([]float64{0.5}, []float64{0}, 1e-3)
	if math.Abs(q[0]-500) > 1e-9 {
		t.Fatalf("floored q = %v, want 500", q[0])
	}
}

// Q-errors are always ≥ 1 and symmetric in their arguments.
func TestQErrorProperties(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 1000; trial++ {
		a, b := r.Float64(), r.Float64()
		qa := QErrors([]float64{a}, []float64{b}, 1e-6)[0]
		qb := QErrors([]float64{b}, []float64{a}, 1e-6)[0]
		if qa < 1 {
			t.Fatalf("q-error %v < 1", qa)
		}
		if math.Abs(qa-qb) > 1e-12 {
			t.Fatalf("q-error asymmetric: %v vs %v", qa, qb)
		}
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	if got := Quantile(v, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(v, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(v, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	// Input must not be mutated.
	if v[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty input not NaN")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	v := make([]float64, 100)
	for i := range v {
		v[i] = float64(i + 1)
	}
	if got := Quantile(v, 0.95); got != 95 {
		t.Fatalf("p95 of 1..100 = %v, want 95", got)
	}
	if got := Quantile(v, 0.99); got != 99 {
		t.Fatalf("p99 of 1..100 = %v, want 99", got)
	}
}

func TestSummarizeQErrors(t *testing.T) {
	est := []float64{0.1, 0.2, 0.4, 0.8}
	truth := []float64{0.1, 0.1, 0.1, 0.1}
	s := SummarizeQErrors(est, truth, 1e-6)
	if s.Max != 8 {
		t.Fatalf("max q-error = %v, want 8", s.Max)
	}
	if s.P50 != 2 {
		t.Fatalf("median q-error = %v, want 2", s.P50)
	}
	if s.P99 != 8 || s.P95 != 8 {
		t.Fatalf("tail quantiles = %v/%v, want 8/8 on 4 values", s.P95, s.P99)
	}
}

func TestFilterNonEmpty(t *testing.T) {
	est := []float64{0.1, 0.2, 0.3}
	truth := []float64{0, 0.5, 0}
	fe, ft := FilterNonEmpty(est, truth)
	if len(fe) != 1 || fe[0] != 0.2 || ft[0] != 0.5 {
		t.Fatalf("filtered = %v %v", fe, ft)
	}
}

func TestMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RMS with mismatched lengths did not panic")
		}
	}()
	RMS([]float64{1}, []float64{1, 2})
}

func TestQuantileEdgeCases(t *testing.T) {
	nan := math.NaN()

	// Empty and all-NaN inputs have no quantiles.
	for _, p := range []float64{0, 0.5, 1} {
		if !math.IsNaN(Quantile(nil, p)) {
			t.Fatalf("Quantile(nil, %v) not NaN", p)
		}
		if !math.IsNaN(Quantile([]float64{}, p)) {
			t.Fatalf("Quantile(empty, %v) not NaN", p)
		}
		if !math.IsNaN(Quantile([]float64{nan, nan}, p)) {
			t.Fatalf("Quantile(all-NaN, %v) not NaN", p)
		}
	}

	// A single element is every quantile, even for out-of-range p.
	for _, p := range []float64{-1, 0, 0.25, 0.5, 1, 2} {
		if got := Quantile([]float64{7}, p); got != 7 {
			t.Fatalf("Quantile([7], %v) = %v", p, got)
		}
	}

	// p at and beyond the boundaries clamps to min and max.
	v := []float64{3, 1, 2}
	if got := Quantile(v, -0.5); got != 1 {
		t.Fatalf("Quantile(v, -0.5) = %v, want min", got)
	}
	if got := Quantile(v, 1.5); got != 3 {
		t.Fatalf("Quantile(v, 1.5) = %v, want max", got)
	}

	// NaN entries are ignored, not sorted to an end where they would
	// poison p=0 or shift every rank.
	withNaN := []float64{nan, 4, nan, 2, 6, nan}
	if got := Quantile(withNaN, 0); got != 2 {
		t.Fatalf("min with NaNs = %v, want 2", got)
	}
	if got := Quantile(withNaN, 0.5); got != 4 {
		t.Fatalf("median with NaNs = %v, want 4", got)
	}
	if got := Quantile(withNaN, 1); got != 6 {
		t.Fatalf("max with NaNs = %v, want 6", got)
	}
	// The input is not mutated by the NaN filtering.
	if !math.IsNaN(withNaN[0]) || withNaN[1] != 4 {
		t.Fatal("Quantile mutated its input")
	}

	// Infinities are legitimate values (e.g. unbounded Q-errors).
	if got := Quantile([]float64{1, math.Inf(1)}, 1); !math.IsInf(got, 1) {
		t.Fatalf("max with +Inf = %v", got)
	}
}
