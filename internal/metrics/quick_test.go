package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func toUnit(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for i, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0.5
		}
		out[i] = math.Abs(math.Mod(v, 1))
	}
	return out
}

// Property: RMS is zero iff vectors are equal, symmetric in its arguments,
// and bounded by LInf.
func TestRMSProperties(t *testing.T) {
	f := func(araw, braw [12]float64) bool {
		a := toUnit(araw[:])
		b := toUnit(braw[:])
		rab := RMS(a, b)
		rba := RMS(b, a)
		if math.Abs(rab-rba) > 1e-12 {
			return false
		}
		if RMS(a, a) != 0 {
			return false
		}
		return rab <= LInf(a, b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in p and bracketed by min/max.
func TestQuantileMonotoneBracketed(t *testing.T) {
	f := func(raw [15]float64, p1raw, p2raw float64) bool {
		v := toUnit(raw[:])
		p1 := math.Abs(math.Mod(p1raw, 1))
		p2 := math.Abs(math.Mod(p2raw, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		q1 := Quantile(v, p1)
		q2 := Quantile(v, p2)
		if q1 > q2 {
			return false
		}
		lo := Quantile(v, 0)
		hi := Quantile(v, 1)
		return q1 >= lo && q2 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the Q-error summary is internally ordered
// (p50 ≤ p95 ≤ p99 ≤ max) and every entry is ≥ 1.
func TestQErrorSummaryOrdered(t *testing.T) {
	f := func(eraw, traw [20]float64) bool {
		est := toUnit(eraw[:])
		truth := toUnit(traw[:])
		s := SummarizeQErrors(est, truth, 1e-6)
		return s.P50 >= 1 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: raising the floor never increases any Q-error.
func TestQErrorFloorMonotone(t *testing.T) {
	f := func(eraw, traw [10]float64) bool {
		est := toUnit(eraw[:])
		truth := toUnit(traw[:])
		lo := QErrors(est, truth, 1e-6)
		hi := QErrors(est, truth, 1e-2)
		for i := range lo {
			if hi[i] > lo[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
