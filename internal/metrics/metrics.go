// Package metrics implements the error measures of Section 4 of the paper:
// root-mean-square error, Q-error quantiles, and L∞ error, plus the
// non-empty filtering used for the "Random (non-empty)" rows of Table 1.
package metrics

import (
	"math"
	"sort"
)

// RMS returns √(1/n · Σ (est−truth)²). Slices must have equal length; an
// empty input yields 0.
func RMS(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("metrics: RMS length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	s := 0.0
	for i := range est {
		d := est[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(est)))
}

// LInf returns max |est−truth|.
func LInf(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("metrics: LInf length mismatch")
	}
	worst := 0.0
	for i := range est {
		worst = math.Max(worst, math.Abs(est[i]-truth[i]))
	}
	return worst
}

// QErrors returns the per-query Q-errors max(ŝ,s)/min(ŝ,s) with both values
// floored at minSel — the usual convention for zero-selectivity queries
// (a floor of 1/N treats "zero" as "below one tuple").
func QErrors(est, truth []float64, minSel float64) []float64 {
	if len(est) != len(truth) {
		panic("metrics: QErrors length mismatch")
	}
	out := make([]float64, len(est))
	for i := range est {
		a := math.Max(est[i], minSel)
		b := math.Max(truth[i], minSel)
		if a < b {
			a, b = b, a
		}
		out[i] = a / b
	}
	return out
}

// Quantile returns the p-th quantile (0 ≤ p ≤ 1) of the values using the
// nearest-rank convention the paper's tables use. NaN values are ignored —
// a latency window or Q-error list with a few undefined entries still has
// well-defined quantiles. An input with no finite-or-infinite values (empty,
// or all NaN) yields NaN.
func Quantile(values []float64, p float64) float64 {
	sorted := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			sorted = append(sorted, v)
		}
	}
	if len(sorted) == 0 {
		return math.NaN()
	}
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// QErrorSummary is the 50th/95th/99th/max row of the paper's tables.
type QErrorSummary struct {
	P50, P95, P99, Max float64
}

// SummarizeQErrors computes the Table 1 row for the given predictions.
func SummarizeQErrors(est, truth []float64, minSel float64) QErrorSummary {
	q := QErrors(est, truth, minSel)
	return QErrorSummary{
		P50: Quantile(q, 0.50),
		P95: Quantile(q, 0.95),
		P99: Quantile(q, 0.99),
		Max: Quantile(q, 1.00),
	}
}

// FilterNonEmpty returns the subsequences of est/truth where the true
// selectivity is positive — the "Random (non-empty)" evaluation of Table 1.
func FilterNonEmpty(est, truth []float64) (fe, ft []float64) {
	for i := range truth {
		if truth[i] > 0 {
			fe = append(fe, est[i])
			ft = append(ft, truth[i])
		}
	}
	return fe, ft
}
