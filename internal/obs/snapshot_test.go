package obs

import (
	"math"
	"testing"
)

func TestHistogramSnapshotMatchesLive(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 1e0, 4))
	vals := []float64{2e-6, 5e-5, 5e-5, 3e-3, 0.2, 7.5}
	for _, v := range vals {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != h.Count() {
		t.Fatalf("snapshot count %d, live %d", s.Count, h.Count())
	}
	if s.Sum != h.Sum() {
		t.Fatalf("snapshot sum %v, live %v", s.Sum, h.Sum())
	}
	if s.Max != h.Max() {
		t.Fatalf("snapshot max %v, live %v", s.Max, h.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("Quantile(%v): snapshot %v, live %v", q, got, want)
		}
	}
}

func TestHistogramSnapshotDelta(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-6, 1e0, 4))
	h.Observe(1e-5)
	h.Observe(2e-3)
	before := h.Snapshot()
	h.Observe(4e-4)
	h.Observe(4e-4)
	h.Observe(0.9)
	after := h.Snapshot()

	d := after.Delta(before)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	wantSum := after.Sum - before.Sum
	if math.Abs(d.Sum-wantSum) > 1e-12 {
		t.Fatalf("delta sum = %v, want %v", d.Sum, wantSum)
	}
	// The interval's median must fall in the 4e-4 bucket, not be dragged
	// down by the pre-interval observations.
	med := d.Quantile(0.5)
	if med < 1e-4 || med > 1e-3 {
		t.Fatalf("delta median %v outside the 4e-4 bucket", med)
	}
	// Delta against an empty snapshot is the identity.
	id := after.Delta(HistogramSnapshot{})
	if id.Count != after.Count || id.Sum != after.Sum {
		t.Fatalf("delta vs zero snapshot changed totals: %+v vs %+v", id, after)
	}
}

func TestHistogramSnapshotDeltaLayoutMismatchPanics(t *testing.T) {
	a := NewHistogram(ExpBuckets(1e-6, 1e0, 4)).Snapshot()
	b := NewHistogram(ExpBuckets(1e-6, 1e2, 4)).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("Delta across different bucket layouts did not panic")
		}
	}()
	_ = a.Delta(b)
}

func TestHistogramSnapshotEmptyQuantile(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot Quantile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty snapshot Mean = %v, want 0", got)
	}
}
