package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// populate builds a registry and records a fixed observation multiset
// using `workers` goroutines — the multiset is identical for any worker
// count, only the interleaving differs.
func populate(workers int) *Registry {
	r := NewRegistry()
	c := r.Counter("selest_requests_total", "Requests.", Label{Key: "route", Value: "/v1/estimate"})
	e := r.Counter("selest_errors_total", "Errors.", Label{Key: "route", Value: "/v1/estimate"}, Label{Key: "class", Value: "5xx"})
	g := r.Gauge("selest_models", "Models registered.")
	h := r.Histogram("selest_latency_seconds", "Latency.", nil, Label{Key: "route", Value: "/v1/estimate"})
	r.CounterFunc("selest_cache_hits_total", "Cache hits.", func() int64 { return 42 })
	r.GaugeFunc("selest_uptime_seconds", "Uptime.", func() float64 { return 3.5 })

	// A fixed index space striped across the workers: the observation
	// multiset is identical for any worker count, only the interleaving
	// differs.
	const total = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				c.Inc()
				if i%17 == 0 {
					e.Inc()
				}
				h.Observe(float64(i%200+1) * 1e-4)
			}
		}(w)
	}
	wg.Wait()
	g.Set(float64(workers))
	return r
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// TestExpositionDeterministic is the tentpole guarantee: the same
// observation multiset renders byte-identical exposition regardless of
// how many goroutines recorded it or how their writes interleaved.
func TestExpositionDeterministic(t *testing.T) {
	// Same registry rendered twice: byte-identical.
	r := populate(1)
	if a, b := render(t, r), render(t, r); a != b {
		t.Fatal("two renders of one registry differ")
	}
	// Different worker counts, same multiset: byte-identical pages,
	// except the gauge recording the worker count itself.
	norm := func(s string) string {
		lines := strings.Split(s, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "selest_models ") {
				lines[i] = "selest_models X"
			}
		}
		return strings.Join(lines, "\n")
	}
	base := norm(render(t, populate(1)))
	for _, workers := range []int{2, 4, 8} {
		got := norm(render(t, populate(workers)))
		if got != base {
			t.Fatalf("exposition differs between 1 and %d workers:\n%s\n----\n%s", workers, base, got)
		}
	}
}

func TestExpositionFormat(t *testing.T) {
	r := populate(1)
	page := render(t, r)
	for _, want := range []string{
		"# HELP selest_requests_total Requests.\n",
		"# TYPE selest_requests_total counter\n",
		`selest_requests_total{route="/v1/estimate"} 1000` + "\n",
		`selest_errors_total{class="5xx",route="/v1/estimate"} 59` + "\n",
		"# TYPE selest_latency_seconds histogram\n",
		`selest_latency_seconds_bucket{route="/v1/estimate",le="+Inf"} 1000` + "\n",
		`selest_latency_seconds_count{route="/v1/estimate"} 1000` + "\n",
		"selest_cache_hits_total 42\n",
		"selest_uptime_seconds 3.5\n",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("exposition missing %q:\n%s", want, page)
		}
	}
	// Families are name-sorted.
	idx := func(s string) int { return strings.Index(page, "# HELP "+s+" ") }
	order := []string{"selest_cache_hits_total", "selest_errors_total", "selest_latency_seconds",
		"selest_models", "selest_requests_total", "selest_uptime_seconds"}
	for i := 1; i < len(order); i++ {
		if idx(order[i-1]) < 0 || idx(order[i]) < 0 || idx(order[i-1]) > idx(order[i]) {
			t.Fatalf("families not name-sorted: %s before %s", order[i-1], order[i])
		}
	}
	// Histogram buckets are cumulative: the 1e-4 bound covers exactly the
	// five i%200==0 observations of the fixed multiset.
	if !strings.Contains(page, `selest_latency_seconds_bucket{route="/v1/estimate",le="0.0001"} 5`) {
		t.Fatalf("first bucket wrong:\n%s", page)
	}
}

// TestRegistryConcurrentReads hammers exposition against concurrent
// writes; run with -race this is the registry's data-race gate. The
// rendered page is not asserted (values are mid-flight), only that
// rendering never tears or races.
func TestRegistryConcurrentReads(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	h := r.Histogram("hot_seconds", "h", nil)
	g := r.Gauge("hot_gauge", "h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(float64(i%100) * 1e-5)
				g.Set(float64(i))
				if i%50 == 0 {
					// Registration is also allowed concurrently.
					r.Counter("late_total", "late", Label{Key: "w", Value: string(rune('a' + w))}).Inc()
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus under load: %v", err)
		}
		if buf.Len() == 0 {
			t.Fatal("empty exposition under load")
		}
	}
	close(stop)
	wg.Wait()
}

func TestMetricsHandler(t *testing.T) {
	r := populate(1)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if rec.Body.String() != render(t, r) {
		t.Fatal("handler body differs from WritePrometheus")
	}
}
