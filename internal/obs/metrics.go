package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension. Series under the same metric name are
// distinguished by their full, sorted label sets.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; methods on a nil *Counter are no-ops, so optional wiring
// costs one predictable branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. The zero value is ready to
// use; methods on a nil *Gauge are no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta (CAS loop; gauges are low-frequency).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a log-spaced-bucket distribution summary. Observations land
// in the first bucket whose upper bound is >= the value (cumulative
// Prometheus convention); the sum accumulates in integer ticks of 1e-9 so
// that concurrent observation order can never change the exposed bytes
// (integer addition commutes exactly; float accumulation does not). The
// maximum is tracked exactly via a CAS loop, so Quantile(1) is exact and
// every other quantile is exact to within one bucket's resolution.
//
// The zero value is not usable — buckets come from the Registry (or
// NewHistogram). Methods on a nil *Histogram are no-ops.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumTick atomic.Int64  // Σ value · 1e9, rounded per observation
	maxBits atomic.Uint64 // ordered uint encoding of the max (see observeMax)
}

// sumScale is the fixed-point resolution of Histogram sums: one tick is
// 1e-9 of the observed unit (one nanosecond for latency-seconds
// histograms). Integer accumulation keeps exposition order-independent.
const sumScale = 1e9

// NewHistogram returns a histogram over the given ascending upper bounds.
// Most callers use Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// ExpBuckets returns log-spaced bucket bounds from lo up to and including
// hi, with perDecade bounds per factor of ten. Each bound is computed
// directly from its index (no accumulated multiplication) and snapped to
// its own three-significant-digit decimal representation, so the value IS
// the `le` label the exposition prints — the same arguments always yield
// the same bytes, and the label never lies about the bound.
func ExpBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("obs: ExpBuckets needs 0 < lo < hi and perDecade >= 1")
	}
	var out []float64
	for i := 0; ; i++ {
		raw := lo * math.Pow(10, float64(i)/float64(perDecade))
		b, err := strconv.ParseFloat(strconv.FormatFloat(raw, 'g', 3, 64), 64)
		if err != nil {
			panic("obs: ExpBuckets round-trip: " + err.Error())
		}
		if b > hi*(1+1e-12) {
			break
		}
		out = append(out, b)
	}
	return out
}

// LatencyBuckets is the default latency histogram layout: 1µs to 100s in
// seconds, four buckets per decade (≈78% bucket width, so quantiles are
// exact to within ±33% — ample for the order-of-magnitude questions the
// serving dashboards ask).
var LatencyBuckets = ExpBuckets(1e-6, 1e2, 4)

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumTick.Add(int64(math.Round(v * sumScale)))
	h.observeMax(v)
}

// observeMax folds v into the running maximum. Floats are compared via
// their ordered-uint encoding (sign-flipped IEEE bits), which makes the
// CAS loop a plain integer max — commutative, so exposition stays
// order-independent.
func (h *Histogram) observeMax(v float64) {
	enc := orderedBits(v)
	for {
		old := h.maxBits.Load()
		if old != 0 && enc <= old {
			return
		}
		if h.maxBits.CompareAndSwap(old, enc) {
			return
		}
	}
}

// orderedBits maps a float64 to a uint64 that preserves ordering and is
// never zero for any finite non-negative input (zero means "no
// observations yet").
func orderedBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		b = ^b
	} else {
		b |= 1 << 63
	}
	return b
}

func unorderedBits(b uint64) float64 {
	if b&(1<<63) != 0 {
		b &^= 1 << 63
	} else {
		b = ^b
	}
	return math.Float64frombits(b)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (at tick resolution).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumTick.Load()) / sumScale
}

// Max returns the largest observation, exactly (0 before any observation).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	b := h.maxBits.Load()
	if b == 0 {
		return 0
	}
	return unorderedBits(b)
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution. Within a bucket the value is interpolated geometrically
// (the buckets are log-spaced), so the estimate is exact to within one
// bucket's width; Quantile(1) returns the exact maximum. Returns 0 before
// any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	// Rank of the target observation, 1-based.
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		frac := float64(rank-cum) / float64(c)
		lo, hi := h.bucketEdges(i)
		if i == len(h.bounds) {
			// Overflow bucket: bounded above by the exact max.
			hi = math.Max(h.Max(), lo)
		}
		if lo <= 0 {
			return hi * frac // first bucket: linear from zero
		}
		return lo * math.Pow(hi/lo, frac)
	}
	return h.Max()
}

// bucketEdges returns the (lower, upper) value range of bucket i.
func (h *Histogram) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		return 0, h.bounds[0]
	}
	if i == len(h.bounds) {
		return h.bounds[len(h.bounds)-1], math.Inf(1)
	}
	return h.bounds[i-1], h.bounds[i]
}

// ---- registry -------------------------------------------------------------

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) time series.
type series struct {
	labels    string // pre-rendered, sorted: `{k="v",...}` or ""
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() float64
}

// family groups all series sharing a metric name (one HELP/TYPE block).
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
}

// Registry holds named metrics and renders them as deterministic
// Prometheus text exposition. Registration takes a lock; the returned
// Counter/Gauge/Histogram handles are lock-free afterwards. Registering
// the same name+labels again returns the existing metric (kinds must
// match), so packages can idempotently re-request their handles.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels canonicalizes a label set: sorted by key, values escaped,
// rendered once at registration so exposition never re-formats.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out + "}"
}

func escapeLabelValue(v string) string {
	var out []byte
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// register finds or creates the series for (name, labels); build is called
// under the lock to create a fresh series when none exists.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, build func() *series) *series {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = build()
		s.labels = key
		f.series[key] = s
	}
	return s
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a counter func", name))
	}
	return s.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as a gauge func", name))
	}
	return s.gauge
}

// Histogram registers (or finds) a histogram over bounds (nil = the
// default LatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{hist: NewHistogram(bounds)}
	})
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for subsystems that already keep their own
// atomics (the estimate cache, the parallel pool). fn must be safe for
// concurrent calls and monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindCounter, labels, func() *series {
		return &series{counterFn: fn}
	})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, labels, func() *series {
		return &series{gaugeFn: fn}
	})
}
