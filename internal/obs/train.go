package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// StageTiming is one timed phase of a training run.
type StageTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Items   int64   `json:"items,omitempty"` // stage-defined count: buckets built, rows assembled, …
}

// TrainStats is the per-training-run profile that flows from the learners
// to seltrain/selbench output and to the retrainer's /statz block: which
// stage the time went to, and how hard the solver had to work. The
// accuracy-vs-training-time tradeoff of the paper's Section 4 becomes
// observable per run instead of only per benchmark sweep.
type TrainStats struct {
	Stages           []StageTiming `json:"stages,omitempty"`
	SolverMethod     string        `json:"solver_method,omitempty"`
	SolverIterations int           `json:"solver_iterations,omitempty"`
	TotalSeconds     float64       `json:"total_seconds"`
}

// StageSeconds returns the recorded duration of a named stage (0 when the
// stage did not run).
func (s *TrainStats) StageSeconds(name string) float64 {
	if s == nil {
		return 0
	}
	for _, st := range s.Stages {
		if st.Name == name {
			return st.Seconds
		}
	}
	return 0
}

// Summary renders the stats as one compact line for CLI output, e.g.
//
//	stages tau_search=0.004s quadtree_build=0.001s(259) solve=0.108s; solver nnls iters=42; total 0.113s
func (s *TrainStats) Summary() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if len(s.Stages) > 0 {
		b.WriteString("stages ")
		for i, st := range s.Stages {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%.3fs", st.Name, st.Seconds)
			if st.Items > 0 {
				fmt.Fprintf(&b, "(%d)", st.Items)
			}
		}
	}
	if s.SolverMethod != "" {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "solver %s", s.SolverMethod)
		if s.SolverIterations > 0 {
			fmt.Fprintf(&b, " iters=%d", s.SolverIterations)
		}
	}
	if b.Len() > 0 {
		b.WriteString("; ")
	}
	fmt.Fprintf(&b, "total %.3fs", s.TotalSeconds)
	return b.String()
}

// TrainLog collects TrainStats from inside a training run and mirrors
// every stage as a child span of an optional parent (so `seltrain -trace`
// sees the same stages the stats report). A nil *TrainLog is fully inert:
// every method is a no-op, so trainers carry their Log field unguarded.
//
// Timing always happens when a TrainLog exists, whether or not a tracer
// is attached — stage timings are a first-class training output, not a
// sampling artifact.
type TrainLog struct {
	mu     sync.Mutex
	parent Span
	stats  TrainStats
	t0     time.Time
}

// NewTrainLog returns a collector whose stage spans are children of
// parent (pass the zero Span for stats without tracing).
func NewTrainLog(parent Span) *TrainLog {
	return &TrainLog{parent: parent, t0: monotonicNow()}
}

// StageEnd closes one stage; obtained from TrainLog.Stage.
type StageEnd struct {
	l    *TrainLog
	name string
	span Span
	t0   time.Time
}

// Stage begins a named stage. Call End (or EndItems) on the result when
// the stage completes; stages are recorded in completion order.
func (l *TrainLog) Stage(name string) StageEnd {
	if l == nil {
		return StageEnd{}
	}
	return StageEnd{l: l, name: name, span: l.parent.Child(name), t0: monotonicNow()}
}

// End completes the stage.
func (e StageEnd) End() { e.EndItems(0) }

// EndItems completes the stage, annotating it with a count (buckets
// built, matrix rows, …).
func (e StageEnd) EndItems(items int64) {
	if e.l == nil {
		return
	}
	d := monotonicSince(e.t0)
	sp := e.span
	sp.Items = items
	sp.End()
	e.l.mu.Lock()
	e.l.stats.Stages = append(e.l.stats.Stages, StageTiming{
		Name:    e.name,
		Seconds: d.Seconds(),
		Items:   items,
	})
	e.l.mu.Unlock()
}

// SetSolver records which weight-estimation algorithm ran and how many
// iterations it took.
func (l *TrainLog) SetSolver(method string, iterations int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.stats.SolverMethod = method
	l.stats.SolverIterations = iterations
	l.mu.Unlock()
}

// Span returns the parent span stages are attached to (the zero Span for
// an untraced or nil log), letting learners hang extra sub-spans off the
// same trace.
func (l *TrainLog) Span() Span {
	if l == nil {
		return Span{}
	}
	return l.parent
}

// Stats returns a copy of the collected profile with TotalSeconds set to
// the elapsed time since the log was created. Stages are sorted by name
// only in exposition paths that need determinism; here they keep
// completion order, which mirrors the pipeline.
func (l *TrainLog) Stats() *TrainStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := l.stats
	out.Stages = make([]StageTiming, len(l.stats.Stages))
	copy(out.Stages, l.stats.Stages)
	l.mu.Unlock()
	out.TotalSeconds = monotonicSince(l.t0).Seconds()
	return &out
}
