package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families are sorted by
// name, series by their canonical (key-sorted) label string, and every
// value is formatted by the same shortest-round-trip rules — two
// registries holding the same values render byte-identical pages
// regardless of registration or observation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	ew := &errWriter{w: w}
	for _, f := range fams {
		ew.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
		ew.printf("# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeSeries(ew, f, f.series[k])
		}
	}
	return ew.err
}

// writeSeries renders one series' sample lines.
func writeSeries(ew *errWriter, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		v := s.counter.Value()
		if s.counterFn != nil {
			v = s.counterFn()
		}
		ew.printf("%s%s %d\n", f.name, s.labels, v)
	case kindGauge:
		v := s.gauge.Value()
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		ew.printf("%s%s %s\n", f.name, s.labels, formatValue(v))
	case kindHistogram:
		h := s.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			ew.printf("%s_bucket%s %d\n", f.name, bucketLabels(s.labels, formatValue(b)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		ew.printf("%s_bucket%s %d\n", f.name, bucketLabels(s.labels, "+Inf"), cum)
		ew.printf("%s_sum%s %s\n", f.name, s.labels, formatValue(h.Sum()))
		ew.printf("%s_count%s %d\n", f.name, s.labels, cum)
	}
}

// bucketLabels splices the le label into a pre-rendered label string.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatValue renders a float with shortest-round-trip precision, the
// same bytes for the same bits on every run and platform.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	var out []byte
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, h[i])
		}
	}
	return string(out)
}

// errWriter latches the first write error so exposition code can stay
// linear; the caller checks err once at the end.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

// Handler returns the GET /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A failed write means the scraper hung up; nothing to do.
		_ = r.WritePrometheus(w)
	})
}
