package obs

import (
	"math"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	// Re-registration returns the same handles.
	if r.Counter("c_total", "help") != c {
		t.Fatal("re-registering a counter returned a new handle")
	}
	if r.Gauge("g", "help") != g {
		t.Fatal("re-registering a gauge returned a new handle")
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
}

func TestExpBucketsSnapToLabels(t *testing.T) {
	b := ExpBuckets(1e-6, 1e2, 4)
	if len(b) == 0 {
		t.Fatal("no buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %v, want 1e-6", b[0])
	}
	if last := b[len(b)-1]; last != 1e2 {
		t.Fatalf("last bound = %v, want 100", last)
	}
	// Snapping: decade boundaries must land exactly on powers of ten.
	want := map[float64]bool{1e-6: false, 1e-5: false, 1e-4: false, 1e-3: false, 1e-2: false, 0.1: false, 1: false, 10: false, 100: false}
	for _, v := range b {
		if _, ok := want[v]; ok {
			want[v] = true
		}
	}
	for v, seen := range want {
		if !seen {
			t.Fatalf("decade bound %v missing from %v", v, b)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBuckets(1e-3, 1e3, 4))
	// 1000 observations spread over two decades.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100) // 0.01 .. 10
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5005.0; math.Abs(got-want) > 1e-3 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got := h.Max(); got != 10 {
		t.Fatalf("max = %v, want exactly 10", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("q1 = %v, want exact max 10", got)
	}
	// Log-spaced buckets at 4/decade: the estimate must land within one
	// bucket (×10^0.25 ≈ 1.78) of the true quantile.
	for _, tc := range []struct{ q, truth float64 }{{0.5, 5.0}, {0.95, 9.5}, {0.99, 9.9}} {
		got := h.Quantile(tc.q)
		if got < tc.truth/1.9 || got > tc.truth*1.9 {
			t.Fatalf("q%.2f = %v, want within a bucket of %v", tc.q, got, tc.truth)
		}
	}
	// NaN observations are dropped, not corrupting state.
	h.Observe(math.NaN())
	if h.Count() != 1000 {
		t.Fatal("NaN observation was counted")
	}
}

func TestHistogramQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(0.5)
	if got := h.Quantile(1); got != 0.5 {
		t.Fatalf("q1 after one observation = %v, want 0.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "help")
}

func TestLabelRendering(t *testing.T) {
	// Labels are sorted by key and escaped at registration.
	got := renderLabels([]Label{
		{Key: "z", Value: `quo"te`},
		{Key: "a", Value: "line\nbreak"},
		{Key: "m", Value: `back\slash`},
	})
	want := `{a="line\nbreak",m="back\\slash",z="quo\"te"}`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatal("no labels must render empty")
	}
}
