// Package obs is the repository's unified observability layer: one
// stdlib-only subsystem behind the three questions every perf or
// robustness PR has to answer — how fast is serving (metrics), where does
// the time go (tracing), and where does training spend its budget
// (TrainLog/TrainStats).
//
// Three pillars:
//
//   - Metrics: a Registry of atomic counters, gauges, and log-spaced-bucket
//     histograms with quantile estimation, exported as deterministic
//     (name- and label-sorted) Prometheus text exposition. The serving
//     layer mounts it at GET /metrics and rebuilds /statz on top of the
//     same structures.
//   - Tracing: request- and run-scoped trace IDs with hierarchical spans,
//     counter-based 1-in-N sampling, a bounded in-memory span ring, and a
//     Chrome trace-event JSON exporter (GET /debug/trace on the server,
//     `seltrain -trace out.json` offline).
//   - Training stats: TrainLog collects per-stage wall time and solver
//     iteration counts from the learners into a TrainStats value that
//     flows to seltrain/selbench output and the retrainer's /statz block.
//
// Cost contract: the disabled paths are free enough to stay compiled into
// the hot paths. A span start/stop with sampling off is a nil/atomic check
// — zero allocations, single-digit nanoseconds (BenchmarkObsDisabled
// asserts this). Counter/gauge/histogram updates are single atomic ops.
// All methods on nil receivers are no-ops, so optional wiring needs no
// branches at the call sites.
//
// Determinism: obs is the one deterministic-scope package that may read
// the wall clock — timestamps are its whole point — so every clock read
// is concentrated in the two suppressed helpers below and never leaks
// into control flow of the instrumented packages.
package obs

import "time"

// monotonicSince returns the elapsed time since an instant captured with
// monotonicNow, immune to wall-clock steps.
//
//selvet:ignore detrand duration measurement for metrics/traces only; never feeds results
func monotonicSince(t0 time.Time) time.Duration { return time.Since(t0) }

// monotonicNow captures an instant carrying Go's monotonic reading, the
// anchor for monotonicSince.
//
//selvet:ignore detrand epoch capture for metrics/traces only; never feeds results
func monotonicNow() time.Time { return time.Now() }
