package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// scrapeFixtureRegistry populates a registry with one metric of every
// kind, labelled and unlabelled, so the round-trip test covers the full
// grammar the writer can emit (escaping included).
func scrapeFixtureRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("test_requests_total", "Requests served.").Add(41)
	reg.Counter("test_errors_total", "Errors, by class.",
		Label{Key: "class", Value: "4xx"}).Add(3)
	reg.Counter("test_errors_total", "Errors, by class.",
		Label{Key: "class", Value: "5xx"}).Add(1)
	reg.Gauge("test_temperature", `Escapes: backslash \ quote " newline.`,
		Label{Key: "site", Value: `weird"va{l}ue\n`}).Set(36.625)
	reg.GaugeFunc("test_func_gauge", "Func-backed gauge.", func() float64 { return 2.5 })
	h := reg.Histogram("test_latency_seconds", "Latency.", nil,
		Label{Key: "route", Value: "/v1/estimate"})
	for _, v := range []float64{1e-5, 2e-4, 2e-4, 0.03, 4} {
		h.Observe(v)
	}
	reg.Histogram("test_plain_hist", "Unlabelled histogram.", ExpBuckets(0.1, 10, 1)).Observe(0.5)
	return reg
}

func TestScrapeRoundTripByteIdentity(t *testing.T) {
	reg := scrapeFixtureRegistry()
	var page bytes.Buffer
	if err := reg.WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	s, err := ParseScrape(bytes.NewReader(page.Bytes()))
	if err != nil {
		t.Fatalf("ParseScrape on our own exposition: %v", err)
	}
	var out bytes.Buffer
	if err := s.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page.Bytes(), out.Bytes()) {
		t.Fatalf("parse→render not byte-identical:\n--- wrote ---\n%s\n--- rendered ---\n%s", page.Bytes(), out.Bytes())
	}
	// And the re-parse is stable too (parse∘render is an identity).
	s2, err := ParseScrape(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	var out2 bytes.Buffer
	if err := s2.Render(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("second round trip diverged")
	}
}

func TestScrapeValueLookup(t *testing.T) {
	reg := scrapeFixtureRegistry()
	var page bytes.Buffer
	if err := reg.WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	s, err := ParseScrape(&page)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("test_requests_total", ""); !ok || v != 41 {
		t.Fatalf("test_requests_total = %v,%v; want 41,true", v, ok)
	}
	if v, ok := s.Value("test_errors_total", `{class="4xx"}`); !ok || v != 3 {
		t.Fatalf("test_errors_total{4xx} = %v,%v; want 3,true", v, ok)
	}
	if got := s.SumCounter("test_errors_total"); got != 4 {
		t.Fatalf("SumCounter(test_errors_total) = %v, want 4", got)
	}
	if got := s.SumCounter("no_such_counter"); got != 0 {
		t.Fatalf("SumCounter(absent) = %v, want 0", got)
	}
	if v, ok := s.Value("test_latency_seconds_count", `{route="/v1/estimate"}`); !ok || v != 5 {
		t.Fatalf("latency _count = %v,%v; want 5,true", v, ok)
	}
	if _, ok := s.Value("test_requests_total", `{class="4xx"}`); ok {
		t.Fatal("lookup with wrong labels succeeded")
	}
}

func TestScrapeHistogramSnapshot(t *testing.T) {
	reg := scrapeFixtureRegistry()
	var page bytes.Buffer
	if err := reg.WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	s, err := ParseScrape(&page)
	if err != nil {
		t.Fatal(err)
	}
	series := s.HistogramSeries("test_latency_seconds")
	if len(series) != 1 || series[0] != `{route="/v1/estimate"}` {
		t.Fatalf("HistogramSeries = %q", series)
	}
	snap, ok := s.HistogramSnapshot("test_latency_seconds", series[0])
	if !ok {
		t.Fatal("HistogramSnapshot failed on a well-formed series")
	}
	// The reconstruction must agree with a direct snapshot of the live
	// histogram on everything a scrape can know (max is client-side only).
	live := reg.Histogram("test_latency_seconds", "Latency.", nil,
		Label{Key: "route", Value: "/v1/estimate"}).Snapshot()
	if snap.Count != live.Count || math.Abs(snap.Sum-live.Sum) > 1e-12 {
		t.Fatalf("scraped count/sum %d/%v, live %d/%v", snap.Count, snap.Sum, live.Count, live.Sum)
	}
	if len(snap.Counts) != len(live.Counts) {
		t.Fatalf("scraped %d buckets, live %d", len(snap.Counts), len(live.Counts))
	}
	for i := range snap.Counts {
		if snap.Counts[i] != live.Counts[i] {
			t.Fatalf("bucket %d: scraped %d, live %d", i, snap.Counts[i], live.Counts[i])
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, want := snap.Quantile(q), live.Quantile(q)
		if math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("Quantile(%v): scraped %v, live %v", q, got, want)
		}
	}
	if _, ok := s.HistogramSnapshot("test_latency_seconds", `{route="/nope"}`); ok {
		t.Fatal("HistogramSnapshot succeeded for an absent series")
	}
	if _, ok := s.HistogramSnapshot("test_requests_total", ""); ok {
		t.Fatal("HistogramSnapshot succeeded on a counter family")
	}
}

func TestScrapeRejectsMalformedLines(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"blank line", "# HELP a A.\n# TYPE a counter\na 1\n\n"},
		{"unknown comment", "# EOF\n"},
		{"sample before family", "orphan 1\n"},
		{"help without type", "# HELP a A.\na 1\n"},
		{"type without help", "# TYPE a counter\na 1\n"},
		{"type name mismatch", "# HELP a A.\n# TYPE b counter\n"},
		{"bad kind", "# HELP a A.\n# TYPE a summary\na 1\n"},
		{"missing value", "# HELP a A.\n# TYPE a counter\na\n"},
		{"bad float", "# HELP a A.\n# TYPE a counter\na nope\n"},
		{"timestamp", "# HELP a A.\n# TYPE a counter\na 1 1700000000\n"},
		{"unclosed labels", "# HELP a A.\n# TYPE a counter\na{x=\"1\" 1\n"},
		{"foreign sample", "# HELP a A.\n# TYPE a counter\nb 1\n"},
		{"bare histogram sample", "# HELP h H.\n# TYPE h histogram\nh 1\n"},
		{"duplicate family", "# HELP a A.\n# TYPE a counter\na 1\n# HELP a A.\n# TYPE a counter\na 2\n"},
		{"bad metric name", "# HELP 9a A.\n# TYPE 9a counter\n9a 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseScrape(strings.NewReader(tc.page)); err == nil {
			t.Errorf("%s: ParseScrape accepted a malformed page", tc.name)
		}
	}
}
