package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span as stored in the tracer's ring.
// Timestamps are monotonic nanoseconds since the tracer's epoch.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64 // 0 for root spans
	Name     string
	StartNS  int64
	DurNS    int64
	Items    int64 // optional payload size (query count, bucket count …)
}

// Tracer collects hierarchical spans into a bounded in-memory ring.
//
// Sampling is counter-based 1-in-N: SetSampling(1) traces every root,
// SetSampling(100) every hundredth, SetSampling(0) — the default — turns
// tracing off. An unsampled root yields the zero Span, whose Child/End
// are no-ops, so a fully instrumented hot path costs one atomic load and
// zero allocations when tracing is off (BenchmarkObsDisabled asserts
// this; instrumentation therefore stays compiled in).
//
// The ring overwrites its oldest records under sustained tracing — the
// export endpoints are for "what is the server doing right now", not a
// durable log.
type Tracer struct {
	sample atomic.Int64 // 0 = off; N = trace 1 in N roots
	seq    atomic.Uint64
	roots  atomic.Uint64
	epoch  time.Time

	mu          sync.Mutex
	buf         []SpanRecord
	next        int // ring cursor
	n           int // filled entries
	overwritten int64
}

// DefaultTraceCapacity is the span-ring size used when NewTracer gets a
// non-positive capacity.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer with sampling off.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: monotonicNow(), buf: make([]SpanRecord, capacity)}
}

// SetSampling sets the root-span sampling rate: 0 disables tracing, 1
// traces every root, n traces one root in n.
func (t *Tracer) SetSampling(n int) {
	if t == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	t.sample.Store(int64(n))
}

// Sampling returns the current 1-in-N rate (0 = off).
func (t *Tracer) Sampling() int {
	if t == nil {
		return 0
	}
	return int(t.sample.Load())
}

// sinceEpoch is the tracer's monotonic clock.
func (t *Tracer) sinceEpoch() int64 {
	return int64(monotonicSince(t.epoch))
}

// Span is a live span handle. The zero Span is inert: Child returns
// another zero Span and End does nothing, without reading the clock or
// allocating — the entire cost of disabled tracing.
type Span struct {
	t        *Tracer
	trace    uint64
	id       uint64
	parent   uint64
	start    int64
	spanName string
	// Items annotates the span with a payload size (query count, bucket
	// count, …); set it before End. Zero means unannotated.
	Items int64
}

// StartRoot begins a new trace if the sampler admits it, returning the
// root span (or the zero Span when tracing is off or the root was
// sampled out).
func (t *Tracer) StartRoot(name string) Span {
	if t == nil {
		return Span{}
	}
	n := t.sample.Load()
	if n <= 0 {
		return Span{}
	}
	if n > 1 && (t.roots.Add(1)-1)%uint64(n) != 0 {
		return Span{}
	}
	id := t.seq.Add(1)
	return Span{t: t, trace: id, id: id, start: t.sinceEpoch(), spanName: name}
}

// Active reports whether the span is recording (false for the zero Span).
func (s Span) Active() bool { return s.t != nil }

// TraceID returns the span's trace identifier (0 for the zero Span).
func (s Span) TraceID() uint64 { return s.trace }

// Child starts a sub-span of s. On a zero Span it returns the zero Span.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, trace: s.trace, id: s.t.seq.Add(1), parent: s.id, start: s.t.sinceEpoch(), spanName: name}
}

// End completes the span and commits it to the tracer's ring. No-op on
// the zero Span.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.sinceEpoch()
	s.t.record(SpanRecord{
		TraceID:  s.trace,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.spanName,
		StartNS:  s.start,
		DurNS:    end - s.start,
		Items:    s.Items,
	})
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	if t.n == len(t.buf) {
		t.overwritten++
	} else {
		t.n++
	}
	t.buf[t.next] = r
	t.next = (t.next + 1) % len(t.buf)
	t.mu.Unlock()
}

// Snapshot returns the buffered spans ordered by start time (ties broken
// by span ID), plus how many older spans the ring has overwritten.
func (t *Tracer) Snapshot() ([]SpanRecord, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	out := make([]SpanRecord, t.n)
	if t.n == len(t.buf) {
		copy(out, t.buf[t.next:])
		copy(out[len(t.buf)-t.next:], t.buf[:t.next])
	} else {
		copy(out, t.buf[:t.n])
	}
	over := t.overwritten
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out, over
}

// ---- context propagation --------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan attaches a span to a context (the serving layer hands
// the per-request root to its handlers this way). Attaching the zero Span
// returns ctx unchanged, keeping the disabled path allocation-free.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if !s.Active() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span attached to ctx, or the zero Span.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}
