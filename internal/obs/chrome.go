package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one Chrome trace-event ("X" = complete event with a
// duration). Timestamps and durations are microseconds; tid groups every
// span of one trace onto its own lane, so concurrent requests render as
// parallel tracks in chrome://tracing / Perfetto.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	PID  int              `json:"pid"`
	TID  uint64           `json:"tid"`
	Args *chromeEventArgs `json:"args,omitempty"`
}

type chromeEventArgs struct {
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Items  int64  `json:"items,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Overwritten     int64         `json:"overwrittenSpans,omitempty"`
}

// WriteChromeTrace exports the tracer's buffered spans as Chrome
// trace-event JSON, loadable in chrome://tracing or https://ui.perfetto.dev.
// Spans are emitted in deterministic (start time, span ID) order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, over := t.Snapshot()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "selest",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  s.TraceID,
			Args: &chromeEventArgs{Span: s.SpanID, Parent: s.ParentID, Items: s.Items},
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms", Overwritten: over})
}
