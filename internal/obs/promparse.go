package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition format: a parser for the
// Prometheus text pages WritePrometheus produces, used by the load harness
// to scrape a live server's /metrics before and after a run and join the
// server's own histograms with client-observed latencies. The parser is
// deliberately strict — it accepts exactly the dialect our writer emits
// (HELP then TYPE then samples, no timestamps, no stray comments) and
// Render re-emits a parsed page byte-for-byte, so a parse→render→parse
// round trip is an identity and any drift between reader and writer fails
// loudly in tests instead of silently mis-joining metrics.

// ScrapeSample is one sample line of a scraped exposition page.
type ScrapeSample struct {
	Name   string  // full sample name, including _bucket/_sum/_count suffixes
	Labels string  // raw label block including braces, "" when unlabelled
	Raw    string  // value text exactly as scraped
	Value  float64 // parsed value
}

// ScrapeFamily is one metric family: a HELP/TYPE header and its samples,
// in page order.
type ScrapeFamily struct {
	Name    string
	Help    string // escaped form, exactly as scraped
	Type    string // "counter", "gauge", or "histogram"
	Samples []ScrapeSample
}

// Scrape is a parsed exposition page.
type Scrape struct {
	Families []ScrapeFamily
	byName   map[string]int // family name -> index in Families
}

// ParseScrape parses a Prometheus text exposition page in the dialect
// WritePrometheus emits. Every line must be a HELP comment, a TYPE
// comment, or a sample; anything else (blank lines, timestamps, unknown
// comments, samples outside a family) is a parse error carrying the line
// number.
func ParseScrape(r io.Reader) (*Scrape, error) {
	s := &Scrape{byName: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var cur *ScrapeFamily
	pendingHelp := "" // HELP seen, TYPE not yet
	pendingName := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if pendingName != "" {
				return nil, scrapeErr(lineNo, "HELP %s while HELP %s awaits its TYPE", line, pendingName)
			}
			rest := line[len("# HELP "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, scrapeErr(lineNo, "HELP line without help text: %q", line)
			}
			pendingName, pendingHelp = rest[:sp], rest[sp+1:]
			if !validMetricName(pendingName) {
				return nil, scrapeErr(lineNo, "invalid metric name %q", pendingName)
			}
			if _, dup := s.byName[pendingName]; dup {
				return nil, scrapeErr(lineNo, "duplicate family %q", pendingName)
			}
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				return nil, scrapeErr(lineNo, "TYPE line without a kind: %q", line)
			}
			name, kind := rest[:sp], rest[sp+1:]
			if name != pendingName {
				return nil, scrapeErr(lineNo, "TYPE %s does not follow its HELP (pending %q)", name, pendingName)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				return nil, scrapeErr(lineNo, "unsupported metric type %q", kind)
			}
			s.Families = append(s.Families, ScrapeFamily{Name: name, Help: pendingHelp, Type: kind})
			s.byName[name] = len(s.Families) - 1
			cur = &s.Families[len(s.Families)-1]
			pendingName, pendingHelp = "", ""
		case strings.HasPrefix(line, "#"):
			return nil, scrapeErr(lineNo, "unsupported comment line: %q", line)
		case line == "":
			return nil, scrapeErr(lineNo, "blank line")
		default:
			if pendingName != "" {
				return nil, scrapeErr(lineNo, "sample before TYPE of %q", pendingName)
			}
			if cur == nil {
				return nil, scrapeErr(lineNo, "sample before any family: %q", line)
			}
			sample, err := parseSampleLine(line)
			if err != nil {
				return nil, scrapeErr(lineNo, "%v", err)
			}
			if !sampleBelongs(cur, sample.Name) {
				return nil, scrapeErr(lineNo, "sample %q outside family %q", sample.Name, cur.Name)
			}
			cur.Samples = append(cur.Samples, sample)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scrape read: %w", err)
	}
	if pendingName != "" {
		return nil, fmt.Errorf("obs: scrape: HELP %s without a TYPE", pendingName)
	}
	return s, nil
}

func scrapeErr(line int, format string, args ...any) error {
	return fmt.Errorf("obs: scrape line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseSampleLine splits `name{labels} value` / `name value`.
func parseSampleLine(line string) (ScrapeSample, error) {
	var out ScrapeSample
	nameEnd := 0
	for nameEnd < len(line) && isMetricNameByte(line[nameEnd], nameEnd == 0) {
		nameEnd++
	}
	if nameEnd == 0 {
		return out, fmt.Errorf("malformed sample line: %q", line)
	}
	out.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := labelBlockEnd(rest)
		if end < 0 {
			return out, fmt.Errorf("unclosed label block: %q", line)
		}
		out.Labels = rest[:end+1]
		rest = rest[end+1:]
	}
	if !strings.HasPrefix(rest, " ") {
		return out, fmt.Errorf("sample without a value: %q", line)
	}
	out.Raw = rest[1:]
	if out.Raw == "" || strings.ContainsAny(out.Raw, " \t") {
		return out, fmt.Errorf("malformed value %q (timestamps are not supported)", out.Raw)
	}
	v, err := strconv.ParseFloat(out.Raw, 64)
	if err != nil {
		return out, fmt.Errorf("malformed value %q", out.Raw)
	}
	out.Value = v
	return out, nil
}

// labelBlockEnd returns the index of the '}' closing the label block at
// s[0] == '{', or -1. Braces inside quoted label values (e.g. the route
// pattern `/v1/models/{name}`) do not close the block, and backslash
// escapes inside quotes are skipped.
func labelBlockEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// sampleBelongs reports whether a sample name is legal inside a family:
// the bare name for counters and gauges, the _bucket/_sum/_count forms for
// histograms.
func sampleBelongs(f *ScrapeFamily, sample string) bool {
	if f.Type == "histogram" {
		return sample == f.Name+"_bucket" || sample == f.Name+"_sum" || sample == f.Name+"_count"
	}
	return sample == f.Name
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		if !isMetricNameByte(name[i], i == 0) {
			return false
		}
	}
	return len(name) > 0
}

func isMetricNameByte(b byte, first bool) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b == '_', b == ':':
		return true
	case b >= '0' && b <= '9':
		return !first
	}
	return false
}

// Render writes the scrape back out, byte-identical to the page it was
// parsed from.
func (s *Scrape) Render(w io.Writer) error {
	ew := &errWriter{w: w}
	for i := range s.Families {
		f := &s.Families[i]
		ew.printf("# HELP %s %s\n", f.Name, f.Help)
		ew.printf("# TYPE %s %s\n", f.Name, f.Type)
		for _, sm := range f.Samples {
			ew.printf("%s%s %s\n", sm.Name, sm.Labels, sm.Raw)
		}
	}
	return ew.err
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *ScrapeFamily {
	if s == nil {
		return nil
	}
	i, ok := s.byName[name]
	if !ok {
		return nil
	}
	return &s.Families[i]
}

// Value returns the value of the sample with the given full name and raw
// label block ("" for unlabelled). Histogram component samples are
// addressed by their _bucket/_sum/_count names.
func (s *Scrape) Value(sampleName, labels string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	famName := sampleName
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if f := s.Family(strings.TrimSuffix(sampleName, suffix)); f != nil && f.Type == "histogram" {
			famName = strings.TrimSuffix(sampleName, suffix)
			break
		}
	}
	f := s.Family(famName)
	if f == nil {
		return 0, false
	}
	for _, sm := range f.Samples {
		if sm.Name == sampleName && sm.Labels == labels {
			return sm.Value, true
		}
	}
	return 0, false
}

// SumCounter sums every series of a counter family (0 when absent) — the
// per-label breakdown collapsed to the total the SLO gates care about.
func (s *Scrape) SumCounter(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	total := 0.0
	for _, sm := range f.Samples {
		total += sm.Value
	}
	return total
}

// HistogramSeries lists the distinct base label blocks (le removed) of a
// scraped histogram family, sorted.
func (s *Scrape) HistogramSeries(name string) []string {
	f := s.Family(name)
	if f == nil || f.Type != "histogram" {
		return nil
	}
	seen := make(map[string]bool)
	for _, sm := range f.Samples {
		if sm.Name != name+"_count" {
			continue
		}
		seen[sm.Labels] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HistogramSnapshot reconstructs a HistogramSnapshot from a scraped
// histogram series (base label block without le; "" for unlabelled).
// Bucket counts are de-cumulated; the reconstruction fails (ok=false) when
// the series is absent or its cumulative counts are inconsistent with the
// _count sample. Max is unknown to a scrape and left 0, so Quantile caps
// the overflow bucket at its lower bound.
func (s *Scrape) HistogramSnapshot(name, baseLabels string) (HistogramSnapshot, bool) {
	f := s.Family(name)
	if f == nil || f.Type != "histogram" {
		return HistogramSnapshot{}, false
	}
	var snap HistogramSnapshot
	var cums []float64
	sawCount := false
	for _, sm := range f.Samples {
		switch sm.Name {
		case name + "_bucket":
			base, le, ok := splitLE(sm.Labels)
			if !ok || base != baseLabels {
				continue
			}
			if le == "+Inf" {
				snap.Bounds = append(snap.Bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return HistogramSnapshot{}, false
				}
				snap.Bounds = append(snap.Bounds, b)
			}
			cums = append(cums, sm.Value)
		case name + "_sum":
			if sm.Labels == baseLabels {
				snap.Sum = sm.Value
			}
		case name + "_count":
			if sm.Labels == baseLabels {
				snap.Count = int64(sm.Value)
				sawCount = true
			}
		}
	}
	if !sawCount || len(cums) == 0 {
		return HistogramSnapshot{}, false
	}
	if !math.IsInf(snap.Bounds[len(snap.Bounds)-1], 1) {
		return HistogramSnapshot{}, false
	}
	snap.Bounds = snap.Bounds[:len(snap.Bounds)-1] // drop +Inf; overflow is implicit
	snap.Counts = make([]int64, len(cums))
	prev := 0.0
	for i, c := range cums {
		if c < prev {
			return HistogramSnapshot{}, false // cumulative counts must not decrease
		}
		snap.Counts[i] = int64(c - prev)
		prev = c
	}
	if int64(prev) != snap.Count {
		return HistogramSnapshot{}, false
	}
	return snap, true
}

// splitLE removes the le label our exposition splices last into a bucket
// label block, returning the base block and the le value.
func splitLE(labels string) (base, le string, ok bool) {
	const only = `{le="`
	if strings.HasPrefix(labels, only) && strings.HasSuffix(labels, `"}`) && !strings.Contains(labels[len(only):], `="`) {
		return "", labels[len(only) : len(labels)-2], true
	}
	i := strings.LastIndex(labels, `,le="`)
	if i < 0 || !strings.HasSuffix(labels, `"}`) {
		return "", "", false
	}
	return labels[:i] + "}", labels[i+len(`,le="`) : len(labels)-2], true
}
