package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestTracerHierarchy(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	root := tr.StartRoot("root")
	if !root.Active() {
		t.Fatal("sampled root must be active")
	}
	c1 := root.Child("first")
	c1.Items = 7
	c1.End()
	c2 := root.Child("second")
	c2.End()
	root.End()

	spans, over := tr.Snapshot()
	if over != 0 {
		t.Fatalf("overwritten = %d, want 0", over)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Snapshot orders by start time: root started first.
	if spans[0].Name != "root" || spans[0].ParentID != 0 {
		t.Fatalf("first span = %+v, want root", spans[0])
	}
	if spans[1].Name != "first" || spans[1].ParentID != spans[0].SpanID {
		t.Fatalf("child parent linkage wrong: %+v", spans[1])
	}
	if spans[1].Items != 7 {
		t.Fatalf("Items not committed: %+v", spans[1])
	}
	for _, s := range spans[1:] {
		if s.TraceID != spans[0].TraceID {
			t.Fatalf("span %q left the trace: %+v", s.Name, s)
		}
	}
	if spans[0].DurNS < spans[1].DurNS {
		t.Fatal("root ended after its children; duration must cover them")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(64)
	// Default: off.
	if s := tr.StartRoot("off"); s.Active() {
		t.Fatal("tracing must default to off")
	}
	// 1-in-3: exactly ceil(9/3) of 9 roots admitted.
	tr.SetSampling(3)
	active := 0
	for i := 0; i < 9; i++ {
		s := tr.StartRoot("r")
		if s.Active() {
			active++
			s.End()
		}
	}
	if active != 3 {
		t.Fatalf("1-in-3 sampling admitted %d of 9 roots", active)
	}
	// Back off: zero spans, and children of zero spans stay zero.
	tr.SetSampling(0)
	s := tr.StartRoot("r")
	c := s.Child("c")
	if s.Active() || c.Active() || c.TraceID() != 0 {
		t.Fatal("disabled tracer must hand out zero spans")
	}
	c.End() // must not panic or record
	if spans, _ := tr.Snapshot(); len(spans) != 3 {
		t.Fatalf("ring has %d spans, want the 3 sampled ones", len(spans))
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSampling(1)
	for i := 0; i < 10; i++ {
		tr.StartRoot("r").End()
	}
	spans, over := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(spans))
	}
	if over != 6 {
		t.Fatalf("overwritten = %d, want 6", over)
	}
	// The survivors are the newest 4 (span IDs 7..10).
	for _, s := range spans {
		if s.SpanID <= 6 {
			t.Fatalf("old span survived overwrite: %+v", s)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	root := tr.StartRoot("root")
	ch := root.Child("stage")
	ch.Items = 3
	ch.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  uint64  `json:"tid"`
			Args struct {
				Span   uint64 `json:"span"`
				Parent uint64 `json:"parent"`
				Items  int64  `json:"items"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev0, ev1 := doc.TraceEvents[0], doc.TraceEvents[1]
	if ev0.Name != "root" || ev1.Name != "stage" {
		t.Fatalf("event order/names: %q, %q", ev0.Name, ev1.Name)
	}
	if ev0.Ph != "X" || ev1.Ph != "X" {
		t.Fatal("events must be complete ('X') events")
	}
	if ev1.Args.Parent != ev0.Args.Span || ev1.Args.Items != 3 {
		t.Fatalf("child args wrong: %+v", ev1.Args)
	}
	if ev0.TID != ev1.TID {
		t.Fatal("spans of one trace must share a tid lane")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	// Attaching the zero span returns ctx unchanged (no allocation).
	if got := ContextWithSpan(ctx, Span{}); got != ctx {
		t.Fatal("zero span must not wrap the context")
	}
	if s := SpanFromContext(ctx); s.Active() {
		t.Fatal("empty context must yield the zero span")
	}
	tr := NewTracer(4)
	tr.SetSampling(1)
	root := tr.StartRoot("root")
	ctx2 := ContextWithSpan(ctx, root)
	got := SpanFromContext(ctx2)
	if !got.Active() || got.TraceID() != root.TraceID() {
		t.Fatal("span did not round-trip through the context")
	}
}

func TestTrainLog(t *testing.T) {
	tr := NewTracer(16)
	tr.SetSampling(1)
	root := tr.StartRoot("train")
	l := NewTrainLog(root)
	if !l.Span().Active() {
		t.Fatal("TrainLog must expose its parent span")
	}
	st := l.Stage("build")
	st.EndItems(128)
	l.Stage("solve").End()
	l.SetSolver("pgd", 42)
	root.End()

	stats := l.Stats()
	if len(stats.Stages) != 2 || stats.Stages[0].Name != "build" || stats.Stages[1].Name != "solve" {
		t.Fatalf("stages = %+v", stats.Stages)
	}
	if stats.Stages[0].Items != 128 {
		t.Fatalf("items = %d, want 128", stats.Stages[0].Items)
	}
	if stats.SolverMethod != "pgd" || stats.SolverIterations != 42 {
		t.Fatalf("solver = %q/%d", stats.SolverMethod, stats.SolverIterations)
	}
	if stats.TotalSeconds <= 0 {
		t.Fatal("total must be positive")
	}
	if stats.StageSeconds("build") <= 0 || stats.StageSeconds("absent") != 0 {
		t.Fatal("StageSeconds lookup wrong")
	}
	sum := stats.Summary()
	for _, want := range []string{"stages build=", "(128)", "solve=", "solver pgd iters=42", "total "} {
		if !bytes.Contains([]byte(sum), []byte(want)) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}
	// The stages also landed as spans under the root.
	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want root+2 stages", len(spans))
	}
}

func TestTrainLogNilSafe(t *testing.T) {
	var l *TrainLog
	st := l.Stage("x")
	st.End()
	st.EndItems(5)
	l.SetSolver("m", 1)
	if l.Stats() != nil {
		t.Fatal("nil log must yield nil stats")
	}
	if l.Span().Active() {
		t.Fatal("nil log must yield the zero span")
	}
	var s *TrainStats
	if s.Summary() != "" || s.StageSeconds("x") != 0 {
		t.Fatal("nil TrainStats must be inert")
	}
}

// TestDisabledPathZeroAlloc is the unit-level twin of
// BenchmarkObsDisabled: the fully instrumented hot path must not
// allocate when tracing is off.
func TestDisabledPathZeroAlloc(t *testing.T) {
	tr := NewTracer(16) // sampling off by default
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartRoot("request")
		ctx2 := ContextWithSpan(ctx, root)
		child := SpanFromContext(ctx2).Child("stage")
		child.End()
		root.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}
