package obs

import "math"

// HistogramSnapshot is a point-in-time copy of a Histogram's state,
// decoupled from the live atomics. Snapshots support interval arithmetic
// (Delta) and the same quantile estimation as the live histogram, which is
// what turns two scrapes of a cumulative histogram into a rate: the load
// harness snapshots the server's latency histograms before and after a run
// and reports quantiles of the traffic in between, not of the whole
// uptime.
//
// Counts are per-bucket (NOT cumulative); Counts[len(Bounds)] is the
// overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 // ascending upper bounds (shared, do not mutate)
	Counts []int64   // len(Bounds)+1 per-bucket counts
	Count  int64
	Sum    float64
	Max    float64 // exact max when taken from a live histogram; 0 if unknown
}

// Snapshot copies the histogram's current state. Concurrent observations
// may land between bucket reads — each bucket is individually consistent,
// and Count is recomputed as the sum of the bucket reads so the snapshot
// is always internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.Sum(),
		Max:    h.Max(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Delta returns the interval s−prev: the observations recorded after prev
// was taken. Both snapshots must come from the same histogram (identical
// bounds); Delta panics otherwise, because silently mixing layouts would
// fabricate latencies. The delta's Max is s.Max — the cumulative maximum
// is the only upper bound available for the interval (a max cannot be
// subtracted), so it is exact when the interval contains the all-time
// maximum and conservative otherwise.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	if prev.Counts == nil {
		return s
	}
	if len(s.Bounds) != len(prev.Bounds) || len(s.Counts) != len(prev.Counts) {
		panic("obs: HistogramSnapshot.Delta across different bucket layouts")
	}
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
		Max:    s.Max,
	}
	for i, c := range s.Counts {
		dc := c - prev.Counts[i]
		if dc < 0 {
			dc = 0 // histogram was reset between snapshots
		}
		d.Counts[i] = dc
		d.Count += dc
	}
	return d
}

// Quantile estimates the q-quantile of the snapshot with the same
// geometric within-bucket interpolation as Histogram.Quantile. When Max is
// known (nonzero) it bounds the overflow bucket; otherwise the overflow
// bucket is pinned to its lower bound. Returns 0 before any observation.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 && s.Max > 0 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		frac := float64(rank-cum) / float64(c)
		lo, hi := s.bucketEdges(i)
		if lo <= 0 {
			return hi * frac
		}
		return lo * math.Pow(hi/lo, frac)
	}
	if s.Max > 0 {
		return s.Max
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value (0 before any observation).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// bucketEdges mirrors Histogram.bucketEdges, with the overflow bucket
// capped by the exact max when one is known.
func (s HistogramSnapshot) bucketEdges(i int) (lo, hi float64) {
	if i == 0 {
		return 0, s.Bounds[0]
	}
	if i == len(s.Bounds) {
		lo = s.Bounds[len(s.Bounds)-1]
		hi = lo
		if s.Max > lo {
			hi = s.Max
		}
		return lo, hi
	}
	return s.Bounds[i-1], s.Bounds[i]
}
