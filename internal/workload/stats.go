package workload

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Stats summarizes the selectivity distribution of a workload — the
// numbers behind statements like the paper's "we have observed up to 97%
// Random queries with selectivity near 0".
type Stats struct {
	N            int
	Mean         float64
	Median       float64
	Min, Max     float64
	NearZeroFrac float64 // fraction with selectivity < NearZeroThreshold
}

// NearZeroThreshold classifies a query as (near-)empty.
const NearZeroThreshold = 1e-3

// Summarize computes workload statistics.
func Summarize(samples []core.LabeledQuery) Stats {
	s := Stats{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(samples) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	vals := make([]float64, len(samples))
	total := 0.0
	nearZero := 0
	for i, z := range samples {
		vals[i] = z.Sel
		total += z.Sel
		if z.Sel < s.Min {
			s.Min = z.Sel
		}
		if z.Sel > s.Max {
			s.Max = z.Sel
		}
		if z.Sel < NearZeroThreshold {
			nearZero++
		}
	}
	sort.Float64s(vals)
	s.Mean = total / float64(len(samples))
	s.Median = vals[len(vals)/2]
	s.NearZeroFrac = float64(nearZero) / float64(len(samples))
	return s
}
