// Package workload generates the labeled query workloads of Section 4 of
// the paper: three query classes (orthogonal range, halfspace, ball) ×
// three center distributions (Data-driven, Random, Gaussian), plus the
// shifted-Gaussian grid of Section 4.3.
//
// An orthogonal range query is a center point plus per-dimension side
// lengths drawn uniformly from [0,1]; ball queries draw a radius uniformly
// from [0,1]; halfspace queries pass through the center with a uniformly
// random orientation. Categorical attributes receive equality predicates —
// the query side covers exactly the category band of the center's category
// (see dataset package docs). Labels are exact selectivities computed
// against the dataset through a kd-tree.
package workload

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/rng"
)

// Class identifies a query class.
type Class int

const (
	// OrthogonalRange is the Σ_□ family (axis-aligned boxes).
	OrthogonalRange Class = iota
	// Halfspace is the Σ_\ family (linear inequalities).
	Halfspace
	// Ball is the Σ_○ family (distance-based queries).
	Ball
	// DiscIntersect is the semi-algebraic Σ_● family of Section 2.2:
	// over a dataset of discs encoded as (cx, cy, radius) points, the
	// query selects discs intersecting a query disc. Valid only on
	// 3-dimensional disc datasets (see dataset.Discs).
	DiscIntersect
	// AnnulusQuery is the general semi-algebraic family T_{d,b,Δ} of
	// Section 2.2, instantiated as the paper's Figure 3 example: a
	// parabola-cut ring with b = 3 polynomial constraints of degree ≤ 2.
	// Valid only on 2-dimensional datasets.
	AnnulusQuery
)

// String names the class for experiment output.
func (c Class) String() string {
	switch c {
	case OrthogonalRange:
		return "range"
	case Halfspace:
		return "halfspace"
	case Ball:
		return "ball"
	case DiscIntersect:
		return "disc-intersect"
	case AnnulusQuery:
		return "annulus"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Centers identifies the query-center distribution.
type Centers int

const (
	// DataDriven samples centers uniformly from the dataset tuples.
	DataDriven Centers = iota
	// Random samples centers uniformly from the unit cube.
	Random
	// Gaussian samples centers from a per-dimension normal distribution.
	Gaussian
)

// String names the center distribution for experiment output.
func (c Centers) String() string {
	switch c {
	case DataDriven:
		return "data-driven"
	case Random:
		return "random"
	case Gaussian:
		return "gaussian"
	}
	return fmt.Sprintf("centers(%d)", int(c))
}

// Spec configures a workload.
type Spec struct {
	Class   Class
	Centers Centers
	// GaussMean/GaussStd parameterize the Gaussian center distribution.
	// The paper's default workload uses mean 0.5 and spread 0.167 per
	// dimension; Section 4.3 shifts the mean. A nil GaussMean means 0.5
	// in every dimension.
	GaussMean geom.Point
	GaussStd  float64
	// MaxSide scales the uniform side-length distribution of orthogonal
	// range queries to [0, MaxSide] (0 means the paper's [0,1]).
	MaxSide float64
	// MaxRadius scales the uniform radius distribution of ball queries
	// to [0, MaxRadius] (0 means the paper's [0,1]).
	MaxRadius float64
}

// DefaultGaussStd is the per-dimension spread of the paper's Gaussian
// workload.
const DefaultGaussStd = 0.167

// Generator produces labeled queries against a fixed dataset projection.
// It owns the kd-tree used for exact labeling, so build one Generator per
// dataset and draw as many workloads from it as needed.
type Generator struct {
	ds   *dataset.Dataset
	tree *kdtree.Tree
	r    *rng.RNG
}

// NewGenerator builds a generator (and the labeling index) for the dataset.
func NewGenerator(ds *dataset.Dataset, seed uint64) *Generator {
	return &Generator{ds: ds, tree: kdtree.Build(ds.Points), r: rng.New(seed)}
}

// Dataset returns the generator's dataset.
func (g *Generator) Dataset() *dataset.Dataset { return g.ds }

// Tree exposes the labeling kd-tree (used by examples that need true
// selectivities for evaluation).
func (g *Generator) Tree() *kdtree.Tree { return g.tree }

// center draws one query center according to the spec.
func (g *Generator) center(spec Spec) geom.Point {
	d := g.ds.Dim()
	c := make(geom.Point, d)
	switch spec.Centers {
	case DataDriven:
		p := g.ds.Points[g.r.IntN(g.ds.Len())]
		copy(c, p)
	case Random:
		for i := range c {
			c[i] = g.r.Float64()
		}
	case Gaussian:
		std := spec.GaussStd
		if std == 0 {
			std = DefaultGaussStd
		}
		for i := range c {
			mean := 0.5
			if spec.GaussMean != nil {
				mean = spec.GaussMean[i]
			}
			v := mean + std*g.r.NormFloat64()
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			c[i] = v
		}
	}
	return c
}

// query draws one unlabeled query range.
func (g *Generator) query(spec Spec) geom.Range {
	d := g.ds.Dim()
	c := g.center(spec)
	maxSide := spec.MaxSide
	if maxSide == 0 {
		maxSide = 1
	}
	maxRadius := spec.MaxRadius
	if maxRadius == 0 {
		maxRadius = 1
	}
	switch spec.Class {
	case OrthogonalRange:
		sides := make([]float64, d)
		for i := 0; i < d; i++ {
			if col := g.ds.Cols[i]; col.Categorical {
				// Equality predicate: snap to the category band of
				// the center's category.
				m := col.Cardinality
				k := int(c[i] * float64(m))
				if k >= m {
					k = m - 1
				}
				c[i] = (float64(k) + 0.5) / float64(m)
				sides[i] = 1 / float64(m)
				continue
			}
			sides[i] = maxSide * g.r.Float64()
		}
		return geom.BoxFromCenter(c, sides)
	case Ball:
		return geom.NewBall(c, maxRadius*g.r.Float64())
	case DiscIntersect:
		if d != 3 {
			panic("workload: disc-intersect queries need a 3D disc dataset")
		}
		// The query disc is centered at the (cx, cy) of the drawn
		// center; the z coordinate (a data radius) is ignored.
		return geom.NewDiscIntersection(c[0], c[1], maxRadius*g.r.Float64())
	case AnnulusQuery:
		if d != 2 {
			panic("workload: annulus queries need a 2D dataset")
		}
		outer := maxRadius * (0.1 + 0.9*g.r.Float64())
		inner := outer * g.r.Float64() * 0.8
		k := 8 * (g.r.Float64() - 0.5) // parabola curvature, either sign
		return geom.Annulus(c[0], c[1], inner, outer, k)
	case Halfspace:
		normal := make(geom.Point, d)
		for {
			norm := 0.0
			for i := range normal {
				normal[i] = g.r.NormFloat64()
				norm += normal[i] * normal[i]
			}
			if norm > 1e-12 {
				inv := 1 / math.Sqrt(norm)
				for i := range normal {
					normal[i] *= inv
				}
				break
			}
		}
		return geom.HalfspaceThroughPoint(c, normal)
	}
	panic("workload: unknown query class")
}

// Generate draws n labeled queries i.i.d. from the spec's distribution.
func (g *Generator) Generate(spec Spec, n int) []core.LabeledQuery {
	out := make([]core.LabeledQuery, n)
	for i := 0; i < n; i++ {
		q := g.query(spec)
		out[i] = core.LabeledQuery{R: q, Sel: g.tree.Selectivity(q)}
	}
	return out
}

// TrainTest draws an nTrain-query training set and an independent
// nTest-query test set from the same distribution, matching the paper's
// protocol ("training and test queries … sampled uniformly and
// independently from the same query workload").
func (g *Generator) TrainTest(spec Spec, nTrain, nTest int) (train, test []core.LabeledQuery) {
	return g.Generate(spec, nTrain), g.Generate(spec, nTest)
}

// Truths extracts the label vector of a workload.
func Truths(samples []core.LabeledQuery) []float64 {
	out := make([]float64, len(samples))
	for i, z := range samples {
		out[i] = z.Sel
	}
	return out
}
