package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// This file implements the CSV interchange format used by cmd/selgen and
// cmd/seltrain: one labeled query per row, the query parameters followed by
// the exact selectivity. The column layout depends on the query class:
//
//	range:     lo0..lo{d-1}, hi0..hi{d-1}, selectivity
//	halfspace: a0..a{d-1}, b, selectivity
//	ball:      c0..c{d-1}, radius, selectivity

// WriteCSV writes the workload in the interchange format. All queries must
// belong to the named class.
func WriteCSV(w io.Writer, class Class, samples []core.LabeledQuery) error {
	bw := bufio.NewWriter(w)
	if len(samples) == 0 {
		return fmt.Errorf("workload: empty workload")
	}
	d := samples[0].R.Dim()
	switch class {
	case OrthogonalRange:
		fmt.Fprintf(bw, "%s,%s,selectivity\n", header("lo", d), header("hi", d))
	case Halfspace:
		fmt.Fprintf(bw, "%s,b,selectivity\n", header("a", d))
	case Ball:
		fmt.Fprintf(bw, "%s,radius,selectivity\n", header("c", d))
	default:
		return fmt.Errorf("workload: unsupported class %v", class)
	}
	for i, z := range samples {
		switch class {
		case OrthogonalRange:
			b, ok := z.R.(geom.Box)
			if !ok {
				return fmt.Errorf("workload: query %d is not a box", i)
			}
			fmt.Fprintf(bw, "%s,%s,%s\n", joinF(b.Lo), joinF(b.Hi), fmtG(z.Sel))
		case Halfspace:
			h, ok := z.R.(geom.Halfspace)
			if !ok {
				return fmt.Errorf("workload: query %d is not a halfspace", i)
			}
			fmt.Fprintf(bw, "%s,%s,%s\n", joinF(h.A), fmtG(h.B), fmtG(z.Sel))
		case Ball:
			bl, ok := z.R.(geom.Ball)
			if !ok {
				return fmt.Errorf("workload: query %d is not a ball", i)
			}
			fmt.Fprintf(bw, "%s,%s,%s\n", joinF(bl.Center), fmtG(bl.Radius), fmtG(z.Sel))
		}
	}
	return bw.Flush()
}

// ReadCSV parses a workload in the interchange format, returning the
// samples and the dimensionality.
func ReadCSV(r io.Reader, class Class) ([]core.LabeledQuery, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, 0, fmt.Errorf("workload: empty input")
	}
	headerCols := len(strings.Split(sc.Text(), ","))
	var dim int
	switch class {
	case OrthogonalRange:
		dim = (headerCols - 1) / 2
		if headerCols != 2*dim+1 {
			return nil, 0, fmt.Errorf("workload: %d columns is not a range layout", headerCols)
		}
	case Halfspace, Ball:
		dim = headerCols - 2
	default:
		return nil, 0, fmt.Errorf("workload: unsupported class %v", class)
	}
	if dim < 1 {
		return nil, 0, fmt.Errorf("workload: malformed header with %d columns", headerCols)
	}
	var out []core.LabeledQuery
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != headerCols {
			return nil, 0, fmt.Errorf("workload: line %d has %d fields, want %d", lineNo, len(fields), headerCols)
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, 0, fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		sel := vals[len(vals)-1]
		if sel < 0 || sel > 1 {
			return nil, 0, fmt.Errorf("workload: line %d: selectivity %v outside [0,1]", lineNo, sel)
		}
		var q geom.Range
		switch class {
		case OrthogonalRange:
			q = geom.NewBox(geom.Point(vals[:dim]), geom.Point(vals[dim:2*dim]))
		case Halfspace:
			q = geom.NewHalfspace(geom.Point(vals[:dim]), vals[dim])
		case Ball:
			if vals[dim] < 0 {
				return nil, 0, fmt.Errorf("workload: line %d: negative radius", lineNo)
			}
			q = geom.NewBall(geom.Point(vals[:dim]), vals[dim])
		}
		out = append(out, core.LabeledQuery{R: q, Sel: sel})
	}
	return out, dim, sc.Err()
}

// ParseClass resolves a class name used by the CLI tools.
func ParseClass(name string) (Class, error) {
	switch name {
	case "range":
		return OrthogonalRange, nil
	case "halfspace":
		return Halfspace, nil
	case "ball":
		return Ball, nil
	}
	return 0, fmt.Errorf("workload: unknown class %q", name)
}

// ParseCenters resolves a center-distribution name used by the CLI tools.
func ParseCenters(name string) (Centers, error) {
	switch name {
	case "data-driven":
		return DataDriven, nil
	case "random":
		return Random, nil
	case "gaussian":
		return Gaussian, nil
	}
	return 0, fmt.Errorf("workload: unknown center distribution %q", name)
}

func joinF(p []float64) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmtG(v)
	}
	return strings.Join(parts, ",")
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func header(prefix string, d int) string {
	parts := make([]string, d)
	for i := range parts {
		parts[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return strings.Join(parts, ",")
}
