package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
)

func roundTrip(t *testing.T, class Class, samples []core.LabeledQuery) []core.LabeledQuery {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, class, samples); err != nil {
		t.Fatal(err)
	}
	got, dim, err := ReadCSV(&buf, class)
	if err != nil {
		t.Fatal(err)
	}
	if dim != samples[0].R.Dim() {
		t.Fatalf("round trip dim %d, want %d", dim, samples[0].R.Dim())
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip %d queries, want %d", len(got), len(samples))
	}
	return got
}

func TestCSVRoundTripRange(t *testing.T) {
	ds := dataset.Power(2000, 1).Project([]int{0, 1})
	g := NewGenerator(ds, 3)
	samples := g.Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 50)
	got := roundTrip(t, OrthogonalRange, samples)
	for i := range samples {
		a := samples[i].R.(geom.Box)
		b := got[i].R.(geom.Box)
		for j := 0; j < 2; j++ {
			if math.Abs(a.Lo[j]-b.Lo[j]) > 1e-6 || math.Abs(a.Hi[j]-b.Hi[j]) > 1e-6 {
				t.Fatalf("query %d corrupted: %v vs %v", i, a, b)
			}
		}
		if math.Abs(samples[i].Sel-got[i].Sel) > 1e-6 {
			t.Fatalf("label %d corrupted", i)
		}
	}
}

func TestCSVRoundTripHalfspace(t *testing.T) {
	ds := dataset.Power(2000, 2).Project([]int{0, 1, 2})
	g := NewGenerator(ds, 5)
	samples := g.Generate(Spec{Class: Halfspace, Centers: Random}, 30)
	got := roundTrip(t, Halfspace, samples)
	for i := range samples {
		a := samples[i].R.(geom.Halfspace)
		b := got[i].R.(geom.Halfspace)
		if math.Abs(a.B-b.B) > 1e-6 {
			t.Fatalf("halfspace %d offset corrupted", i)
		}
	}
}

func TestCSVRoundTripBall(t *testing.T) {
	ds := dataset.Forest(2000, 3).NumericProjection(4)
	g := NewGenerator(ds, 7)
	samples := g.Generate(Spec{Class: Ball, Centers: Gaussian}, 30)
	got := roundTrip(t, Ball, samples)
	for i := range samples {
		a := samples[i].R.(geom.Ball)
		b := got[i].R.(geom.Ball)
		if math.Abs(a.Radius-b.Radius) > 1e-6 {
			t.Fatalf("ball %d radius corrupted", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"bad field count", "lo0,lo1,hi0,hi1,selectivity\n0.1,0.2,0.3\n"},
		{"non numeric", "lo0,lo1,hi0,hi1,selectivity\n0.1,0.2,0.3,x,0.5\n"},
		{"selectivity above 1", "lo0,lo1,hi0,hi1,selectivity\n0.1,0.2,0.3,0.4,1.5\n"},
		{"negative selectivity", "lo0,lo1,hi0,hi1,selectivity\n0.1,0.2,0.3,0.4,-0.1\n"},
	}
	for _, c := range cases {
		if _, _, err := ReadCSV(strings.NewReader(c.input), OrthogonalRange); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
	// Negative radius for balls.
	if _, _, err := ReadCSV(strings.NewReader("c0,c1,radius,selectivity\n0.5,0.5,-0.2,0.3\n"), Ball); err == nil {
		t.Fatal("negative radius accepted")
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	input := "lo0,hi0,selectivity\n0.1,0.5,0.3\n\n0.2,0.6,0.4\n"
	got, dim, err := ReadCSV(strings.NewReader(input), OrthogonalRange)
	if err != nil {
		t.Fatal(err)
	}
	if dim != 1 || len(got) != 2 {
		t.Fatalf("dim=%d queries=%d", dim, len(got))
	}
}

func TestWriteCSVClassMismatch(t *testing.T) {
	samples := []core.LabeledQuery{{R: geom.NewBall(geom.Point{0.5, 0.5}, 0.1), Sel: 0.2}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, OrthogonalRange, samples); err == nil {
		t.Fatal("ball written as range accepted")
	}
}

func TestParseHelpers(t *testing.T) {
	for name, want := range map[string]Class{"range": OrthogonalRange, "halfspace": Halfspace, "ball": Ball} {
		got, err := ParseClass(name)
		if err != nil || got != want {
			t.Fatalf("ParseClass(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseClass("triangle"); err == nil {
		t.Fatal("unknown class accepted")
	}
	for name, want := range map[string]Centers{"data-driven": DataDriven, "random": Random, "gaussian": Gaussian} {
		got, err := ParseCenters(name)
		if err != nil || got != want {
			t.Fatalf("ParseCenters(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseCenters("zipf"); err == nil {
		t.Fatal("unknown centers accepted")
	}
}

func TestMaxSideCapsSides(t *testing.T) {
	ds := dataset.Power(2000, 4).Project([]int{0, 1})
	g := NewGenerator(ds, 9)
	qs := g.Generate(Spec{Class: OrthogonalRange, Centers: Random, MaxSide: 0.1}, 100)
	for _, z := range qs {
		b := z.R.(geom.Box)
		for j := 0; j < 2; j++ {
			if b.Hi[j]-b.Lo[j] > 0.1+1e-12 {
				t.Fatalf("side %v exceeds MaxSide", b.Hi[j]-b.Lo[j])
			}
		}
	}
}

func TestMaxRadiusCapsRadius(t *testing.T) {
	ds := dataset.Power(2000, 5).Project([]int{0, 1})
	g := NewGenerator(ds, 10)
	qs := g.Generate(Spec{Class: Ball, Centers: Random, MaxRadius: 0.2}, 100)
	for _, z := range qs {
		if z.R.(geom.Ball).Radius > 0.2 {
			t.Fatalf("radius %v exceeds MaxRadius", z.R.(geom.Ball).Radius)
		}
	}
}
