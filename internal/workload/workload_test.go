package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/kdtree"
)

func newGen(t *testing.T) *Generator {
	t.Helper()
	return NewGenerator(dataset.Power(5000, 1).Project([]int{0, 1}), 99)
}

func TestGenerateRangeQueries(t *testing.T) {
	g := newGen(t)
	qs := g.Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 200)
	if len(qs) != 200 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for i, z := range qs {
		box, ok := z.R.(geom.Box)
		if !ok {
			t.Fatalf("query %d is not a box", i)
		}
		if box.Dim() != 2 {
			t.Fatalf("query %d has dim %d", i, box.Dim())
		}
		if z.Sel < 0 || z.Sel > 1 {
			t.Fatalf("query %d selectivity %v", i, z.Sel)
		}
	}
}

func TestLabelsAreExact(t *testing.T) {
	g := newGen(t)
	qs := g.Generate(Spec{Class: Ball, Centers: Random}, 50)
	pts := g.Dataset().Points
	for i, z := range qs {
		want := float64(kdtree.BruteCount(pts, z.R)) / float64(len(pts))
		if math.Abs(z.Sel-want) > 1e-12 {
			t.Fatalf("query %d label %v, brute-force %v", i, z.Sel, want)
		}
	}
}

func TestDataDrivenHigherSelectivityThanRandom(t *testing.T) {
	// Data-driven centers sit on the data, so on skewed data the average
	// selectivity is substantially higher than for uniform centers.
	g := newGen(t)
	dd := g.Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 400)
	rnd := g.Generate(Spec{Class: OrthogonalRange, Centers: Random}, 400)
	sum := func(zs []float64) float64 {
		s := 0.0
		for _, v := range zs {
			s += v
		}
		return s
	}
	mDD := sum(Truths(dd)) / 400
	mRnd := sum(Truths(rnd)) / 400
	if mDD <= mRnd {
		t.Fatalf("data-driven mean selectivity %v not above random %v", mDD, mRnd)
	}
}

func TestRandomWorkloadHasEmptyQueries(t *testing.T) {
	// The paper observes up to 97% near-zero-selectivity queries in the
	// Random workload over skewed data; ours must reproduce a large
	// empty fraction.
	g := newGen(t)
	qs := g.Generate(Spec{Class: OrthogonalRange, Centers: Random}, 500)
	zero := 0
	for _, z := range qs {
		if z.Sel < 0.001 {
			zero++
		}
	}
	if frac := float64(zero) / 500; frac < 0.2 {
		t.Fatalf("random workload near-empty fraction = %v, want ≥ 0.2", frac)
	}
}

func TestGaussianCentersConcentrate(t *testing.T) {
	g := newGen(t)
	qs := g.Generate(Spec{Class: OrthogonalRange, Centers: Gaussian}, 500)
	// Box centers should cluster around 0.5 per dimension.
	var sum0 float64
	for _, z := range qs {
		b := z.R.(geom.Box)
		sum0 += (b.Lo[0] + b.Hi[0]) / 2
	}
	if m := sum0 / 500; math.Abs(m-0.5) > 0.06 {
		t.Fatalf("gaussian center mean = %v, want ≈0.5", m)
	}
}

func TestShiftedGaussian(t *testing.T) {
	g := newGen(t)
	spec := Spec{
		Class:     OrthogonalRange,
		Centers:   Gaussian,
		GaussMean: geom.Point{0.2, 0.2},
		GaussStd:  0.1,
	}
	qs := g.Generate(spec, 500)
	var sum float64
	for _, z := range qs {
		b := z.R.(geom.Box)
		sum += (b.Lo[0] + b.Hi[0]) / 2
	}
	if m := sum / 500; math.Abs(m-0.2) > 0.08 {
		t.Fatalf("shifted gaussian mean = %v, want ≈0.2", m)
	}
}

func TestHalfspaceQueries(t *testing.T) {
	g := newGen(t)
	qs := g.Generate(Spec{Class: Halfspace, Centers: DataDriven}, 100)
	for i, z := range qs {
		h, ok := z.R.(geom.Halfspace)
		if !ok {
			t.Fatalf("query %d is not a halfspace", i)
		}
		// Unit normal.
		if math.Abs(h.A.Norm()-1) > 1e-9 {
			t.Fatalf("query %d normal not unit: %v", i, h.A.Norm())
		}
	}
	// Halfspaces through data points have a wide selectivity spread with
	// mean near 1/2 on symmetric orientations.
	var mean float64
	for _, z := range qs {
		mean += z.Sel
	}
	mean /= float64(len(qs))
	if mean < 0.2 || mean > 0.8 {
		t.Fatalf("halfspace mean selectivity = %v, implausible", mean)
	}
}

func TestCategoricalEqualityPredicates(t *testing.T) {
	ds := dataset.Census(3000, 5).Project([]int{1, 0}) // workclass (cat, card 8) + age
	g := NewGenerator(ds, 11)
	qs := g.Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 100)
	for i, z := range qs {
		b := z.R.(geom.Box)
		width := b.Hi[0] - b.Lo[0]
		if math.Abs(width-1.0/8) > 1e-9 {
			t.Fatalf("query %d categorical side width = %v, want 1/8 (equality band)", i, width)
		}
		// The band must be aligned to a category boundary.
		k := b.Lo[0] * 8
		if math.Abs(k-math.Round(k)) > 1e-9 {
			t.Fatalf("query %d band not aligned: lo = %v", i, b.Lo[0])
		}
	}
}

func TestDeterministicWorkload(t *testing.T) {
	ds := dataset.Power(2000, 1).Project([]int{0, 1})
	a := NewGenerator(ds, 7).Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 50)
	b := NewGenerator(ds, 7).Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 50)
	for i := range a {
		if a[i].Sel != b[i].Sel {
			t.Fatalf("workload not deterministic at query %d", i)
		}
	}
}

func TestTrainTestIndependence(t *testing.T) {
	g := newGen(t)
	train, test := g.TrainTest(Spec{Class: OrthogonalRange, Centers: DataDriven}, 100, 100)
	if len(train) != 100 || len(test) != 100 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	// Train and test should not be identical sequences.
	same := 0
	for i := range train {
		if train[i].Sel == test[i].Sel {
			same++
		}
	}
	if same == 100 {
		t.Fatal("train and test sets identical")
	}
}

func TestAnnulusWorkload(t *testing.T) {
	g := newGen(t)
	qs := g.Generate(Spec{Class: AnnulusQuery, Centers: DataDriven}, 60)
	nonzero := 0
	for i, z := range qs {
		if _, ok := z.R.(geom.SemiAlgebraic); !ok {
			t.Fatalf("query %d is not semi-algebraic", i)
		}
		if z.Sel < 0 || z.Sel > 1 {
			t.Fatalf("query %d selectivity %v", i, z.Sel)
		}
		if z.Sel > 0 {
			nonzero++
		}
	}
	if nonzero < 10 {
		t.Fatalf("only %d/60 annulus queries select anything", nonzero)
	}
}

func TestDiscWorkload(t *testing.T) {
	ds := dataset.Discs(3000, 9)
	g := NewGenerator(ds, 4)
	qs := g.Generate(Spec{Class: DiscIntersect, Centers: DataDriven}, 60)
	for i, z := range qs {
		if _, ok := z.R.(geom.DiscIntersection); !ok {
			t.Fatalf("query %d is not a disc-intersection range", i)
		}
		if z.Sel < 0 || z.Sel > 1 {
			t.Fatalf("query %d selectivity %v", i, z.Sel)
		}
	}
}

func TestDiscWorkloadRejectsWrongDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("disc workload on 2D data did not panic")
		}
	}()
	newGen(t).Generate(Spec{Class: DiscIntersect, Centers: DataDriven}, 1)
}

func TestSummarize(t *testing.T) {
	g := newGen(t)
	rnd := g.Generate(Spec{Class: OrthogonalRange, Centers: Random}, 400)
	dd := g.Generate(Spec{Class: OrthogonalRange, Centers: DataDriven}, 400)
	sRnd := Summarize(rnd)
	sDD := Summarize(dd)
	if sRnd.N != 400 || sDD.N != 400 {
		t.Fatal("counts wrong")
	}
	// The Random workload over skewed data has far more near-empty
	// queries than the Data-driven one (the paper's 97% observation).
	if sRnd.NearZeroFrac <= sDD.NearZeroFrac {
		t.Fatalf("near-zero fractions: random %v <= data-driven %v", sRnd.NearZeroFrac, sDD.NearZeroFrac)
	}
	if sRnd.Min < 0 || sRnd.Max > 1 || sRnd.Median < sRnd.Min || sRnd.Median > sRnd.Max {
		t.Fatalf("bad stats %+v", sRnd)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty stats %+v", empty)
	}
}
