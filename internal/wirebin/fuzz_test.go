package wirebin

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/geom"
)

// FuzzDecodeRequest feeds raw frame bytes (length prefix included) through
// ReadFrame + DecodeRequest and asserts the decoder's contract: it never
// panics, every failure is typed (ErrMalformed, ErrBadQuery, or
// ErrFrameTooLarge), and arena growth is bounded by the declared frame
// length — a forged count cannot make the decoder allocate more than the
// bytes on the wire imply.
func FuzzDecodeRequest(f *testing.F) {
	box := geom.Box{Lo: geom.Point{0.1, 0.2}, Hi: geom.Point{0.6, 0.7}}
	half := geom.Halfspace{A: geom.Point{1, 2}, B: 0.5}
	ball := geom.Ball{Center: geom.Point{0.5, 0.5}, Radius: 0.25}

	seed := func(frame []byte, err error) {
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(frame)
	}
	seed(AppendEstimateReq(nil, []byte("m"), box))
	seed(AppendEstimateBatchReq(nil, []byte("model-name"), []geom.Range{box, &half, ball}))
	seed(AppendFeedbackReq(nil, nil, []geom.Range{box, ball}, []float64{0.25, 0.75}))

	// Truncations of a valid frame at every prefix length.
	whole, err := AppendEstimateBatchReq(nil, []byte("m"), []geom.Range{box, half})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < len(whole); i++ {
		trunc := append([]byte(nil), whole[:i]...)
		if i >= 4 {
			binary.LittleEndian.PutUint32(trunc[:4], uint32(i-4))
		}
		f.Add(trunc)
	}
	// Forged counts and lengths.
	forge := func(mut func(b []byte)) {
		b := append([]byte(nil), whole...)
		mut(b)
		f.Add(b)
	}
	forge(func(b []byte) { binary.LittleEndian.PutUint32(b[:4], 1<<31) })
	forge(func(b []byte) { binary.LittleEndian.PutUint32(b[:4], 1) })
	forge(func(b []byte) { b[4] = 0xFF })                  // unknown type
	forge(func(b []byte) { b[7] = 200 })                   // garbage kind
	f.Add([]byte{})                                        // clean EOF
	f.Add([]byte{1, 0, 0, 0, FrameEstimate})               // empty payload
	f.Add(bytes.Repeat([]byte{0xFF}, 64))                  // varint soup
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrame)) // huge declared, no body

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		var a Arena
		var req Request
		for {
			typ, payload, err := ReadFrame(br, &buf)
			if err != nil {
				if err == io.EOF {
					return
				}
				if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("ReadFrame returned untyped error %v", err)
				}
				if errors.Is(err, ErrFrameTooLarge) {
					continue // framing intact, keep reading
				}
				return
			}
			if len(payload) > MaxFrame {
				t.Fatalf("payload %d exceeds MaxFrame", len(payload))
			}
			derr := DecodeRequest(typ, payload, &a, &req)
			if derr != nil {
				if !errors.Is(derr, ErrMalformed) && !errors.Is(derr, ErrBadQuery) {
					t.Fatalf("DecodeRequest returned untyped error %v", derr)
				}
			} else {
				if len(req.Ranges) == 0 {
					t.Fatal("successful decode with zero ranges")
				}
				if req.Type == FrameFeedback && len(req.Sels) != len(req.Ranges) {
					t.Fatalf("feedback sels %d != ranges %d", len(req.Sels), len(req.Ranges))
				}
			}
			// Arena growth must be bounded by the payload: every coord
			// consumed >= 8 payload bytes, every range >= minQueryBytes.
			if len(a.coords)*8 > len(payload) {
				t.Fatalf("arena holds %d coords from a %d-byte payload", len(a.coords), len(payload))
			}
			if len(a.ranges)*minQueryBytes > len(payload)+minQueryBytes {
				t.Fatalf("arena holds %d ranges from a %d-byte payload", len(a.ranges), len(payload))
			}
		}
	})
}
