package wirebin

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/geom"
)

// Client is a single-connection binary-protocol client with reusable
// encode/decode buffers: steady-state calls allocate nothing beyond what
// the caller's result slices need. It is not safe for concurrent use —
// callers wanting parallelism open one Client per goroutine (connections
// are cheap and persistent).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	out  []byte
	in   []byte
	resp Response
}

// Dial connects to a selserve binary listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (useful for tests and custom
// dialers).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip flushes c.out as one request frame and decodes the one
// response frame the server owes us.
func (c *Client) roundTrip() (*Response, error) {
	if _, err := c.bw.Write(c.out); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	typ, payload, err := ReadFrame(c.br, &c.in)
	if err != nil {
		return nil, err
	}
	if err := DecodeResponse(typ, payload, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// errResponse converts a FrameError response into a Go error.
func errResponse(r *Response) error {
	return fmt.Errorf("wirebin: server error code %d: %s", r.Code, r.Msg)
}

// Estimate round-trips one estimate request. model may be "" for the
// server default. Returns the estimate and the generation of the model
// that served it.
func (c *Client) Estimate(model string, q geom.Range) (est float64, generation int64, err error) {
	c.out = c.out[:0]
	c.out, err = AppendEstimateReq(c.out, []byte(model), q)
	if err != nil {
		return 0, 0, err
	}
	r, err := c.roundTrip()
	if err != nil {
		return 0, 0, err
	}
	if r.Type == FrameError {
		return 0, 0, errResponse(r)
	}
	if r.Type != FrameEstimateResp {
		return 0, 0, ErrUnknownFrame
	}
	return r.Est, r.Generation, nil
}

// EstimateBatch round-trips one batched estimate request, appending the
// estimates to dst (pass dst[:0] to reuse capacity).
func (c *Client) EstimateBatch(model string, ranges []geom.Range, dst []float64) (ests []float64, generation int64, err error) {
	c.out = c.out[:0]
	c.out, err = AppendEstimateBatchReq(c.out, []byte(model), ranges)
	if err != nil {
		return dst, 0, err
	}
	r, err := c.roundTrip()
	if err != nil {
		return dst, 0, err
	}
	if r.Type == FrameError {
		return dst, 0, errResponse(r)
	}
	if r.Type != FrameEstimateBatchResp {
		return dst, 0, ErrUnknownFrame
	}
	return append(dst, r.Ests...), r.Generation, nil
}

// Feedback round-trips one feedback upload; sels[i] labels ranges[i].
func (c *Client) Feedback(model string, ranges []geom.Range, sels []float64) (accepted, dropped int, generation int64, err error) {
	c.out = c.out[:0]
	c.out, err = AppendFeedbackReq(c.out, []byte(model), ranges, sels)
	if err != nil {
		return 0, 0, 0, err
	}
	r, err := c.roundTrip()
	if err != nil {
		return 0, 0, 0, err
	}
	if r.Type == FrameError {
		return 0, 0, 0, errResponse(r)
	}
	if r.Type != FrameFeedbackResp {
		return 0, 0, 0, ErrUnknownFrame
	}
	return r.Accepted, r.Dropped, r.Generation, nil
}

// Pipeline sends every request frame in reqs back-to-back, then reads one
// response per request in order, invoking fn for each. It exists for
// benchmarks and tests exercising the pipelining contract; fn must not
// retain the Response.
func (c *Client) Pipeline(reqs [][]byte, fn func(i int, r *Response) error) error {
	for _, f := range reqs {
		if _, err := c.bw.Write(f); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	for i := range reqs {
		typ, payload, err := ReadFrame(c.br, &c.in)
		if err != nil {
			return err
		}
		if err := DecodeResponse(typ, payload, &c.resp); err != nil {
			return err
		}
		if err := fn(i, &c.resp); err != nil {
			return err
		}
	}
	return nil
}
