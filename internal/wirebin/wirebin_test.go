package wirebin

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func mustFrame(b []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return b
}

func decodeOne(t *testing.T, frame []byte, a *Arena, req *Request) error {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(frame))
	var buf []byte
	typ, payload, err := ReadFrame(br, &buf)
	if err != nil {
		return err
	}
	return DecodeRequest(typ, payload, a, req)
}

func TestRequestRoundTrip(t *testing.T) {
	box := geom.Box{Lo: geom.Point{0.1, 0.2}, Hi: geom.Point{0.5, 0.9}}
	half := geom.Halfspace{A: geom.Point{1, -2, 3}, B: 0.25}
	ball := geom.Ball{Center: geom.Point{0.5}, Radius: 0.125}

	var a Arena
	var req Request

	t.Run("estimate", func(t *testing.T) {
		f := mustFrame(AppendEstimateReq(nil, []byte("m1"), box))
		if err := decodeOne(t, f, &a, &req); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if req.Type != FrameEstimate || string(req.Model) != "m1" || len(req.Ranges) != 1 {
			t.Fatalf("bad request: %+v", req)
		}
		got, ok := req.Ranges[0].(*geom.Box)
		if !ok {
			t.Fatalf("range type %T, want *geom.Box", req.Ranges[0])
		}
		for i := range box.Lo {
			if got.Lo[i] != box.Lo[i] || got.Hi[i] != box.Hi[i] {
				t.Fatalf("coords differ: %+v vs %+v", got, box)
			}
		}
	})

	t.Run("batch mixed kinds", func(t *testing.T) {
		ranges := []geom.Range{box, &half, ball}
		f := mustFrame(AppendEstimateBatchReq(nil, nil, ranges))
		if err := decodeOne(t, f, &a, &req); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if req.Type != FrameEstimateBatch || len(req.Model) != 0 || len(req.Ranges) != 3 {
			t.Fatalf("bad request: %+v", req)
		}
		if _, ok := req.Ranges[0].(*geom.Box); !ok {
			t.Fatalf("range 0 type %T", req.Ranges[0])
		}
		h, ok := req.Ranges[1].(*geom.Halfspace)
		if !ok || h.B != half.B || len(h.A) != 3 {
			t.Fatalf("range 1 bad: %T %+v", req.Ranges[1], req.Ranges[1])
		}
		bl, ok := req.Ranges[2].(*geom.Ball)
		if !ok || bl.Radius != ball.Radius {
			t.Fatalf("range 2 bad: %T %+v", req.Ranges[2], req.Ranges[2])
		}
	})

	t.Run("feedback", func(t *testing.T) {
		ranges := []geom.Range{box, ball}
		sels := []float64{0.25, 1}
		f := mustFrame(AppendFeedbackReq(nil, []byte("fb"), ranges, sels))
		if err := decodeOne(t, f, &a, &req); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if req.Type != FrameFeedback || len(req.Ranges) != 2 || len(req.Sels) != 2 {
			t.Fatalf("bad request: %+v", req)
		}
		if req.Sels[0] != 0.25 || req.Sels[1] != 1 {
			t.Fatalf("sels %v", req.Sels)
		}
	})
}

func TestResponseRoundTrip(t *testing.T) {
	var resp Response
	decode := func(t *testing.T, frame []byte) {
		t.Helper()
		br := bufio.NewReader(bytes.NewReader(frame))
		var buf []byte
		typ, payload, err := ReadFrame(br, &buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := DecodeResponse(typ, payload, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}

	decode(t, AppendEstimateResp(nil, 7, 0.375))
	if resp.Type != FrameEstimateResp || resp.Generation != 7 || resp.Est != 0.375 {
		t.Fatalf("estimate resp: %+v", resp)
	}

	ests := []float64{0, 0.5, 1, math.Pi / 4}
	decode(t, AppendEstimateBatchResp(nil, 3, ests))
	if resp.Generation != 3 || len(resp.Ests) != len(ests) {
		t.Fatalf("batch resp: %+v", resp)
	}
	for i, v := range ests {
		if resp.Ests[i] != v {
			t.Fatalf("est %d: %v != %v", i, resp.Ests[i], v)
		}
	}

	decode(t, AppendFeedbackResp(nil, 9, 41, 1))
	if resp.Generation != 9 || resp.Accepted != 41 || resp.Dropped != 1 {
		t.Fatalf("feedback resp: %+v", resp)
	}

	decode(t, AppendErrorResp(nil, CodeUnknownModel, "no such model"))
	if resp.Type != FrameError || resp.Code != CodeUnknownModel || string(resp.Msg) != "no such model" {
		t.Fatalf("error resp: %+v", resp)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	box := geom.Box{Lo: geom.Point{0}, Hi: geom.Point{1}}
	good := mustFrame(AppendEstimateReq(nil, []byte("m"), box))

	var a Arena
	var req Request

	cases := []struct {
		name  string
		frame []byte
		class error
	}{
		{"trailing bytes", append(func() []byte {
			f := mustFrame(AppendEstimateReq(nil, []byte("m"), box))
			binary.LittleEndian.PutUint32(f[:4], uint32(len(f)-4+2))
			return f
		}(), 0, 0), ErrMalformed},
		{"unknown type", func() []byte {
			f := append([]byte(nil), good...)
			f[4] = 0x7F
			return f
		}(), ErrMalformed},
		{"bad kind", func() []byte {
			f := append([]byte(nil), good...)
			f[4+1+1+1] = 9 // kind byte after type+namelen+name
			return f
		}(), ErrMalformed},
		{"zero dim", func() []byte {
			f := mustFrame(AppendEstimateReq(nil, nil, geom.Box{Lo: geom.Point{}, Hi: geom.Point{}}))
			return f
		}(), ErrMalformed},
		{"negative radius", func() []byte {
			f, _ := AppendEstimateReq(nil, nil, geom.Ball{Center: geom.Point{0.5}, Radius: 0.5})
			// flip the radius sign bit (last 8 bytes are the radius)
			f[len(f)-1] |= 0x80
			return f
		}(), ErrBadQuery},
		{"sel out of range", func() []byte {
			f, _ := AppendFeedbackReq(nil, nil, []geom.Range{box}, []float64{2})
			return f
		}(), ErrBadQuery},
		{"zero count batch", func() []byte {
			dst, off := beginFrame(nil, FrameEstimateBatch)
			dst = appendName(dst, nil)
			dst = binary.AppendUvarint(dst, 0)
			return endFrame(dst, off)
		}(), ErrBadQuery},
		{"forged huge count", func() []byte {
			dst, off := beginFrame(nil, FrameEstimateBatch)
			dst = appendName(dst, nil)
			dst = binary.AppendUvarint(dst, 1<<40)
			return endFrame(dst, off)
		}(), ErrMalformed},
		{"truncated coords", func() []byte {
			f := append([]byte(nil), good...)
			f = f[:len(f)-4]
			binary.LittleEndian.PutUint32(f[:4], uint32(len(f)-4))
			return f
		}(), ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := decodeOne(t, tc.frame, &a, &req)
			if err == nil {
				t.Fatalf("decoded successfully, want error class %v", tc.class)
			}
			if !errors.Is(err, tc.class) {
				t.Fatalf("error %v is not class %v", err, tc.class)
			}
		})
	}
}

func TestReadFrameLimits(t *testing.T) {
	t.Run("oversized keeps framing", func(t *testing.T) {
		var b []byte
		b = binary.LittleEndian.AppendUint32(b, MaxFrame+1)
		b = append(b, make([]byte, MaxFrame+1)...)
		good := mustFrame(AppendEstimateReq(nil, nil, geom.Box{Lo: geom.Point{0}, Hi: geom.Point{1}}))
		b = append(b, good...)

		br := bufio.NewReader(bytes.NewReader(b))
		var buf []byte
		_, _, err := ReadFrame(br, &buf)
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("want ErrFrameTooLarge, got %v", err)
		}
		typ, _, err := ReadFrame(br, &buf)
		if err != nil || typ != FrameEstimate {
			t.Fatalf("framing lost after oversize: typ=%#x err=%v", typ, err)
		}
	})

	t.Run("clean EOF", func(t *testing.T) {
		br := bufio.NewReader(bytes.NewReader(nil))
		var buf []byte
		_, _, err := ReadFrame(br, &buf)
		if err != io.EOF {
			t.Fatalf("want io.EOF, got %v", err)
		}
	})

	t.Run("mid-frame EOF", func(t *testing.T) {
		good := mustFrame(AppendEstimateReq(nil, nil, geom.Box{Lo: geom.Point{0}, Hi: geom.Point{1}}))
		br := bufio.NewReader(bytes.NewReader(good[:len(good)-3]))
		var buf []byte
		_, _, err := ReadFrame(br, &buf)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("want ErrMalformed, got %v", err)
		}
	})

	t.Run("zero length", func(t *testing.T) {
		b := binary.LittleEndian.AppendUint32(nil, 0)
		br := bufio.NewReader(bytes.NewReader(b))
		var buf []byte
		_, _, err := ReadFrame(br, &buf)
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("want ErrMalformed, got %v", err)
		}
	})
}

// TestDecodeReuseNoGrowth checks that decoding the same frame repeatedly
// with one arena reaches a fixed point: after the first call, no arena
// buffer grows.
func TestDecodeReuseNoGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ranges := make([]geom.Range, 32)
	for i := range ranges {
		lo := geom.Point{rng.Float64(), rng.Float64()}
		ranges[i] = geom.Box{Lo: lo, Hi: geom.Point{lo[0] + 0.1, lo[1] + 0.1}}
	}
	f := mustFrame(AppendEstimateBatchReq(nil, []byte("m"), ranges))

	var a Arena
	var req Request
	if err := DecodeRequest(f[4], f[5:], &a, &req); err != nil {
		t.Fatal(err)
	}
	c0, b0 := cap(a.coords), cap(a.boxes)
	for i := 0; i < 100; i++ {
		if err := DecodeRequest(f[4], f[5:], &a, &req); err != nil {
			t.Fatal(err)
		}
	}
	if cap(a.coords) != c0 || cap(a.boxes) != b0 {
		t.Fatalf("arena grew on reuse: coords %d→%d boxes %d→%d", c0, cap(a.coords), b0, cap(a.boxes))
	}
}

// TestFloatBitExact checks coordinates survive encode/decode bit-exactly,
// including negative zero, subnormals, and extreme exponents.
func TestFloatBitExact(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1e-308, -1e308, math.Pi, 0x1p-1074, math.MaxFloat64}
	lo := geom.Point(vals[:3])
	hi := geom.Point(vals[3:6])
	f := mustFrame(AppendEstimateReq(nil, nil, geom.Box{Lo: lo, Hi: hi}))
	var a Arena
	var req Request
	if err := DecodeRequest(f[4], f[5:], &a, &req); err != nil {
		t.Fatal(err)
	}
	got := req.Ranges[0].(*geom.Box)
	for i := range lo {
		if math.Float64bits(got.Lo[i]) != math.Float64bits(lo[i]) {
			t.Fatalf("Lo[%d] bits differ", i)
		}
		if math.Float64bits(got.Hi[i]) != math.Float64bits(hi[i]) {
			t.Fatalf("Hi[%d] bits differ", i)
		}
	}
}
