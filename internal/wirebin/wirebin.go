// Package wirebin is the compact binary wire protocol of the serving
// layer (DESIGN.md §15). The JSON wire path (§13) already runs at zero
// allocations per request, but a single estimate still spends most of its
// time in the HTTP envelope: header parsing, routing, text-formatted
// floats. For an estimator sitting inside a query optimizer's per-query
// loop that envelope is the dominant cost, so this package defines a
// length-prefixed binary framing protocol for persistent TCP connections:
// fixed little-endian headers, raw float64 coordinates, varint counts, and
// per-connection reusable arenas, so a steady-state estimate frame is
// decoded, evaluated, and answered without a single heap allocation.
//
// Framing. Every frame is
//
//	u32 length (LE) | u8 type | payload
//
// where length counts the type byte plus the payload (so length >= 1).
// Frames longer than MaxFrame are rejected. Clients may pipeline: the
// server answers every request frame with exactly one response frame, in
// request order, on the same connection.
//
// Request payloads (all integers little-endian, counts unsigned varints):
//
//	FrameEstimate       name | query
//	FrameEstimateBatch  name | count | count × query
//	FrameFeedback       name | count | count × (query | f64 sel)
//
// where name is a varint byte length followed by that many bytes (empty
// means the server's default model), and query is
//
//	u8 kind | varint dim | coords
//
// with kind 1 = box (dim f64 lo, dim f64 hi), kind 2 = halfspace (dim f64
// a, f64 b), kind 3 = ball (dim f64 center, f64 radius).
//
// Response payloads:
//
//	FrameEstimateResp       varint generation | f64 estimate
//	FrameEstimateBatchResp  varint generation | varint count | count × f64
//	FrameFeedbackResp       varint generation | varint accepted | varint dropped
//	FrameError              u8 code | varint len | message bytes
//
// Every success response carries the generation of the model that answered
// it, so clients observe hot-swaps with no extra round trip. Decoding
// never allocates beyond the declared frame length: counts are validated
// against the remaining payload before any arena grows, so a garbage frame
// costs at most one bounded read. All decode failures are typed —
// errors.Is(err, ErrMalformed) for structural problems, errors.Is(err,
// ErrBadQuery) for semantically invalid queries — and never panic.
package wirebin

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// Frame types. Requests have the high bit clear, responses set.
const (
	FrameEstimate      = 0x01
	FrameEstimateBatch = 0x02
	FrameFeedback      = 0x03

	FrameEstimateResp      = 0x81
	FrameEstimateBatchResp = 0x82
	FrameFeedbackResp      = 0x83
	FrameError             = 0xEE
)

// Error codes carried by FrameError payloads.
const (
	CodeBadFrame     = 1 // malformed frame or payload
	CodeBadQuery     = 2 // structurally valid frame, semantically invalid query
	CodeUnknownModel = 3 // model name not registered
	CodeTooLarge     = 4 // frame exceeds the server's size limit
)

// Query kind tags.
const (
	kindBox       = 1
	kindHalfspace = 2
	kindBall      = 3
)

// MaxFrame bounds one frame (type byte + payload). Batched estimates at
// the default stream batch size are a few KiB; 16 MiB leaves room for
// bulk feedback uploads while keeping a garbage length prefix cheap.
const MaxFrame = 16 << 20

// maxDim bounds a query's dimensionality: beyond any workload in this
// repository, small enough that dim*8 can be validated without overflow.
const maxDim = 1 << 12

// maxName bounds the model-name field.
const maxName = 256

// Typed failure classes. Every decode error wraps exactly one of these;
// match with errors.Is.
var (
	// ErrMalformed is the structural class: truncated payloads, bad
	// varints, unknown tags, trailing bytes.
	ErrMalformed = errors.New("wirebin: malformed frame")
	// ErrBadQuery is the semantic class: well-formed bytes describing an
	// invalid query or observation.
	ErrBadQuery = errors.New("wirebin: invalid query")
	// ErrFrameTooLarge reports a length prefix exceeding MaxFrame. The
	// framing remains intact (the oversized payload can be discarded), so
	// servers answer it with CodeTooLarge rather than closing.
	ErrFrameTooLarge = errors.New("wirebin: frame exceeds size limit")
)

// Precomposed decode errors, so the steady-state error checks on the
// zero-allocation path never format.
var (
	errShortHeader = fmt.Errorf("%w: frame shorter than header", ErrMalformed)
	errTruncated   = fmt.Errorf("%w: truncated payload", ErrMalformed)
	errVarint      = fmt.Errorf("%w: invalid varint", ErrMalformed)
	errTrailing    = fmt.Errorf("%w: trailing bytes after frame content", ErrMalformed)
	errCount       = fmt.Errorf("%w: count exceeds frame size", ErrMalformed)
	errNameLen     = fmt.Errorf("%w: model name exceeds 256 bytes", ErrMalformed)
	errDim         = fmt.Errorf("%w: dimension out of range", ErrMalformed)
	errKind        = fmt.Errorf("%w: unknown query kind", ErrMalformed)
	errNoQueries   = fmt.Errorf("%w: no queries given", ErrBadQuery)
	errRadius      = fmt.Errorf("%w: ball query needs a non-negative radius", ErrBadQuery)
	errSelRange    = fmt.Errorf("%w: sel must be in [0,1]", ErrBadQuery)
)

// ErrUnknownFrame reports a request frame type the decoder does not know.
var ErrUnknownFrame = fmt.Errorf("%w: unknown frame type", ErrMalformed)

// minQueryBytes is the smallest possible encoded query (kind byte, one
// varint dim byte, and at least two float64s for a 1-d box or a 1-d
// halfspace/ball). Batch counts are validated against it before any arena
// grows, so a forged count cannot force an allocation larger than the
// frame itself.
const minQueryBytes = 1 + 1 + 16

// Arena is the per-connection decode workspace: every slice the decoder
// produces points into these buffers, which are reset (length zero,
// capacity kept) per frame, so steady-state decoding does not allocate.
// Decoded requests alias the arena and are valid until the next Reset.
type Arena struct {
	coords []float64
	boxes  []geom.Box
	halfs  []geom.Halfspace
	balls  []geom.Ball
	ranges []geom.Range
	sels   []float64
	name   []byte
}

// Reset clears the arena for the next frame, keeping all capacity.
//
//selvet:zeroalloc
func (a *Arena) Reset() {
	a.coords = a.coords[:0]
	a.boxes = a.boxes[:0]
	a.halfs = a.halfs[:0]
	a.balls = a.balls[:0]
	a.ranges = a.ranges[:0]
	a.sels = a.sels[:0]
	a.name = a.name[:0]
}

// Request is one decoded request frame. All slices alias the Arena passed
// to DecodeRequest and are valid until its next Reset.
type Request struct {
	Type   byte
	Model  []byte       // raw model name; empty means the default model
	Ranges []geom.Range // decoded queries, len >= 1
	Sels   []float64    // feedback frames only: one selectivity per range
}

// reader is a bounds-checked cursor over one frame payload.
type reader struct {
	b []byte
	i int
}

//selvet:zeroalloc
func (r *reader) remaining() int { return len(r.b) - r.i }

//selvet:zeroalloc
func (r *reader) u8() (byte, error) {
	if r.i >= len(r.b) {
		return 0, errTruncated
	}
	c := r.b[r.i]
	r.i++
	return c, nil
}

//selvet:zeroalloc
func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		return 0, errVarint
	}
	r.i += n
	return v, nil
}

// f64 reads one little-endian float64.
//
//selvet:zeroalloc
func (r *reader) f64() (float64, error) {
	if r.remaining() < 8 {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.i:]))
	r.i += 8
	return v, nil
}

// floats appends n raw float64s to the arena's coordinate store and
// returns the window. The caller has already validated that 8*n bytes
// remain, so growth is bounded by the frame length.
//
//selvet:zeroalloc
func (r *reader) floats(a *Arena, n int) geom.Point {
	start := len(a.coords)
	for k := 0; k < n; k++ {
		a.coords = append(a.coords, math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.i:])))
		r.i += 8
	}
	return geom.Point(a.coords[start : start+n : start+n])
}

// decodeQuery decodes one query into the arena, returning a pointer-typed
// range (a *geom.Box fits the interface word, keeping the path
// allocation-free — same trick as the JSON arena parser).
//
//selvet:zeroalloc
func (r *reader) decodeQuery(a *Arena) (geom.Range, error) {
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	d64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if d64 == 0 || d64 > maxDim {
		return nil, errDim
	}
	dim := int(d64)
	switch kind {
	case kindBox:
		if r.remaining() < 16*dim {
			return nil, errTruncated
		}
		lo := r.floats(a, dim)
		hi := r.floats(a, dim)
		a.boxes = append(a.boxes, geom.Box{Lo: lo, Hi: hi})
		return &a.boxes[len(a.boxes)-1], nil
	case kindHalfspace:
		if r.remaining() < 8*dim+8 {
			return nil, errTruncated
		}
		av := r.floats(a, dim)
		b, _ := r.f64()
		a.halfs = append(a.halfs, geom.Halfspace{A: av, B: b})
		return &a.halfs[len(a.halfs)-1], nil
	case kindBall:
		if r.remaining() < 8*dim+8 {
			return nil, errTruncated
		}
		c := r.floats(a, dim)
		rad, _ := r.f64()
		if rad < 0 {
			return nil, errRadius
		}
		a.balls = append(a.balls, geom.Ball{Center: c, Radius: rad})
		return &a.balls[len(a.balls)-1], nil
	}
	return nil, errKind
}

// decodeName decodes the model-name field into the arena.
//
//selvet:zeroalloc
func (r *reader) decodeName(a *Arena) ([]byte, error) {
	n64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n64 > maxName {
		return nil, errNameLen
	}
	n := int(n64)
	if r.remaining() < n {
		return nil, errTruncated
	}
	a.name = append(a.name[:0], r.b[r.i:r.i+n]...)
	r.i += n
	return a.name, nil
}

// DecodeRequest decodes one request frame payload into req, using a for
// all storage. It never panics and never allocates more than the declared
// frame length implies: batch counts are validated against the remaining
// payload before the arena grows. Errors wrap ErrMalformed (structural)
// or ErrBadQuery (semantic).
//
//selvet:zeroalloc
func DecodeRequest(typ byte, payload []byte, a *Arena, req *Request) error {
	a.Reset()
	req.Type = typ
	req.Model = nil
	req.Ranges = nil
	req.Sels = nil
	r := reader{b: payload}
	name, err := r.decodeName(a)
	if err != nil {
		return err
	}
	req.Model = name
	switch typ {
	case FrameEstimate:
		q, err := r.decodeQuery(a)
		if err != nil {
			return err
		}
		a.ranges = append(a.ranges, q)
	case FrameEstimateBatch, FrameFeedback:
		per := minQueryBytes
		if typ == FrameFeedback {
			per += 8 // the trailing sel
		}
		n64, err := r.uvarint()
		if err != nil {
			return err
		}
		if n64 == 0 {
			return errNoQueries
		}
		if n64 > uint64(r.remaining()/per) {
			return errCount
		}
		n := int(n64)
		for k := 0; k < n; k++ {
			q, err := r.decodeQuery(a)
			if err != nil {
				return err
			}
			a.ranges = append(a.ranges, q)
			if typ == FrameFeedback {
				sel, err := r.f64()
				if err != nil {
					return err
				}
				if !(sel >= 0 && sel <= 1) { // rejects NaN too
					return errSelRange
				}
				a.sels = append(a.sels, sel)
			}
		}
	default:
		return ErrUnknownFrame
	}
	if r.remaining() != 0 {
		return errTrailing
	}
	req.Ranges = a.ranges
	if typ == FrameFeedback {
		req.Sels = a.sels
	}
	return nil
}

// ---- frame transport ----

// ReadFrame reads one length-prefixed frame from br into *buf (reusing
// its capacity), returning the frame type and a payload view into *buf.
// A clean EOF at a frame boundary returns io.EOF; EOF mid-frame returns
// an error wrapping ErrMalformed. An oversized length prefix returns
// ErrFrameTooLarge with the payload consumed and discarded, so the caller
// can answer with CodeTooLarge and keep the connection.
func ReadFrame(br *bufio.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	b := *buf
	if cap(b) < 4 {
		b = make([]byte, 0, 4096)
		*buf = b
	}
	b = b[:4]
	if _, err := io.ReadFull(br, b); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, errShortHeader
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 1 {
		return 0, nil, errShortHeader
	}
	if n > MaxFrame {
		// Discard the declared payload so framing stays intact.
		if _, derr := br.Discard(n); derr != nil {
			return 0, nil, errTruncated
		}
		return 0, nil, ErrFrameTooLarge
	}
	if cap(b) < n {
		nb := make([]byte, n)
		b = nb
		*buf = nb
	}
	b = b[:n]
	if _, err := io.ReadFull(br, b); err != nil {
		return 0, nil, errTruncated
	}
	*buf = b
	return b[0], b[1:], nil
}

// ---- encoding ----

// beginFrame reserves the length prefix and writes the type byte; the
// matching endFrame backpatches the length.
//
//selvet:zeroalloc
func beginFrame(dst []byte, typ byte) ([]byte, int) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	return dst, off
}

//selvet:zeroalloc
func endFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off:off+4], uint32(len(dst)-off-4))
	return dst
}

//selvet:zeroalloc
func appendName(dst []byte, name []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

//selvet:zeroalloc
func appendF64(dst []byte, v float64) []byte {
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], math.Float64bits(v))
	return append(dst, raw[:]...)
}

//selvet:zeroalloc
func appendPoint(dst []byte, p geom.Point) []byte {
	for _, v := range p {
		dst = appendF64(dst, v)
	}
	return dst
}

// AppendQuery appends one encoded query. Pointer and value range types
// are both accepted (the serving arenas hold pointers). Unsupported range
// classes return an error wrapping ErrBadQuery.
//
//selvet:zeroalloc
func AppendQuery(dst []byte, r geom.Range) ([]byte, error) {
	switch q := r.(type) {
	case geom.Box:
		return appendBox(dst, q.Lo, q.Hi), nil
	case *geom.Box:
		return appendBox(dst, q.Lo, q.Hi), nil
	case geom.Halfspace:
		return appendHalfspace(dst, q.A, q.B), nil
	case *geom.Halfspace:
		return appendHalfspace(dst, q.A, q.B), nil
	case geom.Ball:
		return appendBall(dst, q.Center, q.Radius), nil
	case *geom.Ball:
		return appendBall(dst, q.Center, q.Radius), nil
	}
	return dst, fmt.Errorf("%w: unsupported range type %T", ErrBadQuery, r)
}

//selvet:zeroalloc
func appendBox(dst []byte, lo, hi geom.Point) []byte {
	dst = append(dst, kindBox)
	dst = binary.AppendUvarint(dst, uint64(len(lo)))
	dst = appendPoint(dst, lo)
	return appendPoint(dst, hi)
}

//selvet:zeroalloc
func appendHalfspace(dst []byte, a geom.Point, b float64) []byte {
	dst = append(dst, kindHalfspace)
	dst = binary.AppendUvarint(dst, uint64(len(a)))
	dst = appendPoint(dst, a)
	return appendF64(dst, b)
}

//selvet:zeroalloc
func appendBall(dst []byte, c geom.Point, radius float64) []byte {
	dst = append(dst, kindBall)
	dst = binary.AppendUvarint(dst, uint64(len(c)))
	dst = appendPoint(dst, c)
	return appendF64(dst, radius)
}

// AppendEstimateReq appends a complete FrameEstimate frame.
func AppendEstimateReq(dst []byte, model []byte, r geom.Range) ([]byte, error) {
	dst, off := beginFrame(dst, FrameEstimate)
	dst = appendName(dst, model)
	dst, err := AppendQuery(dst, r)
	if err != nil {
		return dst[:off], err
	}
	return endFrame(dst, off), nil
}

// AppendEstimateBatchReq appends a complete FrameEstimateBatch frame.
func AppendEstimateBatchReq(dst []byte, model []byte, ranges []geom.Range) ([]byte, error) {
	dst, off := beginFrame(dst, FrameEstimateBatch)
	dst = appendName(dst, model)
	dst = binary.AppendUvarint(dst, uint64(len(ranges)))
	var err error
	for _, r := range ranges {
		if dst, err = AppendQuery(dst, r); err != nil {
			return dst[:off], err
		}
	}
	return endFrame(dst, off), nil
}

// AppendFeedbackReq appends a complete FrameFeedback frame; sels[i] labels
// ranges[i].
func AppendFeedbackReq(dst []byte, model []byte, ranges []geom.Range, sels []float64) ([]byte, error) {
	if len(ranges) != len(sels) {
		return dst, fmt.Errorf("%w: %d ranges but %d sels", ErrBadQuery, len(ranges), len(sels))
	}
	dst, off := beginFrame(dst, FrameFeedback)
	dst = appendName(dst, model)
	dst = binary.AppendUvarint(dst, uint64(len(ranges)))
	var err error
	for i, r := range ranges {
		if dst, err = AppendQuery(dst, r); err != nil {
			return dst[:off], err
		}
		dst = appendF64(dst, sels[i])
	}
	return endFrame(dst, off), nil
}

// AppendEstimateResp appends a complete FrameEstimateResp frame.
//
//selvet:zeroalloc
func AppendEstimateResp(dst []byte, generation int64, est float64) []byte {
	dst, off := beginFrame(dst, FrameEstimateResp)
	dst = binary.AppendUvarint(dst, uint64(generation))
	dst = appendF64(dst, est)
	return endFrame(dst, off)
}

// AppendEstimateBatchResp appends a complete FrameEstimateBatchResp frame.
//
//selvet:zeroalloc
func AppendEstimateBatchResp(dst []byte, generation int64, ests []float64) []byte {
	dst, off := beginFrame(dst, FrameEstimateBatchResp)
	dst = binary.AppendUvarint(dst, uint64(generation))
	dst = binary.AppendUvarint(dst, uint64(len(ests)))
	for _, v := range ests {
		dst = appendF64(dst, v)
	}
	return endFrame(dst, off)
}

// AppendFeedbackResp appends a complete FrameFeedbackResp frame.
//
//selvet:zeroalloc
func AppendFeedbackResp(dst []byte, generation int64, accepted, dropped int) []byte {
	dst, off := beginFrame(dst, FrameFeedbackResp)
	dst = binary.AppendUvarint(dst, uint64(generation))
	dst = binary.AppendUvarint(dst, uint64(accepted))
	dst = binary.AppendUvarint(dst, uint64(dropped))
	return endFrame(dst, off)
}

// AppendErrorResp appends a complete FrameError frame.
//
//selvet:zeroalloc
func AppendErrorResp(dst []byte, code byte, msg string) []byte {
	dst, off := beginFrame(dst, FrameError)
	dst = append(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, off)
}

// Response is one decoded response frame. Ests and Msg alias the payload
// passed to DecodeResponse.
type Response struct {
	Type       byte
	Generation int64
	Est        float64   // FrameEstimateResp
	Ests       []float64 // FrameEstimateBatchResp; reuses the caller's slice
	Accepted   int       // FrameFeedbackResp
	Dropped    int       // FrameFeedbackResp
	Code       byte      // FrameError
	Msg        []byte    // FrameError; aliases the payload
}

// DecodeResponse decodes one response frame payload. resp.Ests keeps its
// capacity across calls so batch decoding does not reallocate.
func DecodeResponse(typ byte, payload []byte, resp *Response) error {
	*resp = Response{Type: typ, Ests: resp.Ests[:0]}
	r := reader{b: payload}
	switch typ {
	case FrameEstimateResp, FrameEstimateBatchResp, FrameFeedbackResp:
		gen, err := r.uvarint()
		if err != nil {
			return err
		}
		resp.Generation = int64(gen)
	case FrameError:
		code, err := r.u8()
		if err != nil {
			return err
		}
		n64, err := r.uvarint()
		if err != nil {
			return err
		}
		if uint64(r.remaining()) != n64 {
			return errTruncated
		}
		resp.Code = code
		resp.Msg = r.b[r.i:]
		return nil
	default:
		return ErrUnknownFrame
	}
	switch typ {
	case FrameEstimateResp:
		v, err := r.f64()
		if err != nil {
			return err
		}
		resp.Est = v
	case FrameEstimateBatchResp:
		n64, err := r.uvarint()
		if err != nil {
			return err
		}
		if n64 > uint64(r.remaining()/8) {
			return errCount
		}
		for k := 0; k < int(n64); k++ {
			v, _ := r.f64()
			resp.Ests = append(resp.Ests, v)
		}
	case FrameFeedbackResp:
		acc, err := r.uvarint()
		if err != nil {
			return err
		}
		drop, err := r.uvarint()
		if err != nil {
			return err
		}
		resp.Accepted, resp.Dropped = int(acc), int(drop)
	}
	if r.remaining() != 0 {
		return errTrailing
	}
	return nil
}
