package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/hist"
)

// unitModel builds a one-bucket histogram over the unit square whose
// total weight is w, so Estimate(box) = w · vol(box ∩ [0,1]²) exactly —
// a model with analytically known outputs for cache/swap tests.
func unitModel(w float64) *hist.Model {
	return &hist.Model{
		Buckets: []geom.Box{geom.UnitCube(2)},
		Weights: []float64{w},
	}
}

func postEstimate(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, estimateResponse) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp estimateResponse
	if w.Code == 200 {
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response JSON: %v: %s", err, w.Body.String())
		}
	}
	return w, resp
}

func TestQueryKeyCanonicalization(t *testing.T) {
	box := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.25})
	sameBox := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.25})
	k1, ok1 := QueryKey(box)
	k2, ok2 := QueryKey(sameBox)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("identical boxes keyed differently: %q vs %q", k1, k2)
	}
	// Distinct geometries — and distinct classes over the same floats —
	// must map to distinct keys.
	keys := map[string]string{}
	for name, q := range map[string]geom.Range{
		"box":       box,
		"other box": geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.26}),
		"ball":      geom.NewBall(geom.Point{0, 0}, 0.5),
		"halfspace": geom.NewHalfspace(geom.Point{0, 0}, 0.5),
		"unit ball": geom.NewBall(geom.Point{0.5, 0.25}, 0),
		"1d box":    geom.NewBox(geom.Point{0}, geom.Point{0.5}),
		"flat slab": geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0}),
	} {
		k, ok := QueryKey(q)
		if !ok {
			t.Fatalf("%s: no key", name)
		}
		if prev, dup := keys[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, name)
		}
		keys[k] = name
	}
	// Unknown range classes bypass the cache rather than mis-keying.
	if _, ok := QueryKey(geom.NewDiscIntersection(0.5, 0.5, 0.25)); ok {
		t.Fatal("unexpected key for a non-wire range class")
	}
}

func TestEstimateCacheLRUEviction(t *testing.T) {
	c := NewEstimateCache(2)
	c.Put("m", 1, "a", 0.1)
	c.Put("m", 1, "b", 0.2)
	if _, ok := c.Get("m", 1, "a"); !ok {
		t.Fatal("a evicted while cache not full")
	}
	c.Put("m", 1, "c", 0.3) // evicts b (a was just touched)
	if _, ok := c.Get("m", 1, "b"); ok {
		t.Fatal("LRU did not evict the least recently used entry")
	}
	if v, ok := c.Get("m", 1, "a"); !ok || v != 0.1 {
		t.Fatalf("a lost: %v %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("cache size %d, want 2", c.Len())
	}
	// Same query under a new generation is a distinct entry.
	if _, ok := c.Get("m", 2, "a"); ok {
		t.Fatal("generation ignored in cache key")
	}
}

// A batch with several malformed queries must come back as ONE 400 that
// names every bad index, so the client can fix the whole batch in one
// round trip.
func TestEstimateMalformedBatchReportsAllIndices(t *testing.T) {
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", unitModel(1))
	h := s.Handler()

	// Index 1: no class fields. Index 3: dimension mismatch (model is 2-D).
	// Index 4: negative radius. Indices 0 and 2 are fine.
	body := `{"queries":[
		{"lo":[0,0],"hi":[1,1]},
		{},
		{"center":[0.5,0.5],"radius":0.1},
		{"lo":[0],"hi":[1]},
		{"center":[0.5,0.5],"radius":-1}
	]}`
	w, _ := postEstimate(t, h, body)
	if w.Code != 400 {
		t.Fatalf("HTTP %d, want 400", w.Code)
	}
	var apiErr apiError
	if err := json.Unmarshal(w.Body.Bytes(), &apiErr); err != nil {
		t.Fatalf("bad error JSON: %v", err)
	}
	for _, want := range []string{"3 of 5", "query 1:", "query 3:", "query 4:"} {
		if !strings.Contains(apiErr.Error, want) {
			t.Fatalf("error %q does not mention %q", apiErr.Error, want)
		}
	}
	for _, good := range []string{"query 0:", "query 2:"} {
		if strings.Contains(apiErr.Error, good) {
			t.Fatalf("error %q blames valid %s", apiErr.Error, good)
		}
	}
}

// A hot-swap bumps the generation, which must atomically invalidate every
// cached estimate: the same query re-asked after the swap returns the new
// model's value, never the old one's.
func TestEstimateCacheInvalidationOnSwap(t *testing.T) {
	m1, m2 := unitModel(1), unitModel(0.5)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m1)
	h := s.Handler()

	q := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5})
	body := `{"query":{"lo":[0,0],"hi":[0.5,0.5]}}`

	_, resp := postEstimate(t, h, body)
	if resp.Generation != 1 || resp.Estimate == nil || *resp.Estimate != m1.Estimate(q) {
		t.Fatalf("first estimate: %+v", resp)
	}
	_, resp = postEstimate(t, h, body) // should be served from cache
	if *resp.Estimate != m1.Estimate(q) {
		t.Fatalf("cached estimate drifted: %v", *resp.Estimate)
	}
	var st statzResponse
	if code := doJSON(t, h, "GET", "/statz", nil, &st); code != 200 {
		t.Fatalf("statz: HTTP %d", code)
	}
	if st.EstimateCache == nil || st.EstimateCache.Hits != 1 || st.EstimateCache.Misses != 1 {
		t.Fatalf("cache counters after repeat: %+v", st.EstimateCache)
	}

	s.Registry().Set(DefaultModelName, "test", m2) // generation 2
	_, resp = postEstimate(t, h, body)
	if resp.Generation != 2 {
		t.Fatalf("post-swap generation %d, want 2", resp.Generation)
	}
	if *resp.Estimate != m2.Estimate(q) {
		t.Fatalf("post-swap estimate %v is stale (m1 would be %v, m2 is %v)",
			*resp.Estimate, m1.Estimate(q), m2.Estimate(q))
	}
	if code := doJSON(t, h, "GET", "/statz", nil, &st); code != 200 {
		t.Fatalf("statz: HTTP %d", code)
	}
	if st.EstimateCache.Misses != 2 || st.EstimateCache.Hits != 1 {
		t.Fatalf("cache counters after swap: %+v (swap must force a miss)", st.EstimateCache)
	}
}

// Batched estimates must be byte-identical for any worker count: the
// parallel fan-out writes each result to its own index slot, so the JSON
// body cannot depend on scheduling.
func TestEstimateResponsesByteIdenticalAcrossWorkers(t *testing.T) {
	const n = 100 // above the parallel threshold
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		f := float64(i+1) / float64(n+1)
		fmt.Fprintf(&sb, `{"lo":[0,0],"hi":[%g,%g]}`, f, 1-f/2)
	}
	sb.WriteString(`]}`)
	body := sb.String()

	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		s := NewServer(Options{EstimateWorkers: workers})
		s.Registry().Set(DefaultModelName, "test", unitModel(1))
		w, _ := postEstimate(t, s.Handler(), body)
		if w.Code != 200 {
			t.Fatalf("workers=%d: HTTP %d", workers, w.Code)
		}
		if want == nil {
			want = w.Body.Bytes()
			continue
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("workers=%d: response bytes differ from workers=1", workers)
		}
	}
}

// Concurrent batched estimates racing with hot-swaps must never mix
// generations: every value in a response must come from the model whose
// generation the response reports. Run under -race this also exercises
// the cache, registry, and scratch pool for data races.
func TestEstimateGenerationConsistencyUnderSwap(t *testing.T) {
	m1, m2 := unitModel(1), unitModel(0.5)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m1) // generation 1 = m1
	h := s.Handler()

	const n = 70 // above the parallel threshold
	queries := make([]geom.Range, n)
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		f := float64(i+1) / float64(n+1)
		queries[i] = geom.NewBox(geom.Point{0, 0}, geom.Point{f, 0.5})
		fmt.Fprintf(&sb, `{"lo":[0,0],"hi":[%g,0.5]}`, f)
	}
	sb.WriteString(`]}`)
	body := sb.String()

	// Precompute per-model expectations; the swapper alternates, so odd
	// generations serve m1 and even generations m2.
	want1 := make([]float64, n)
	want2 := make([]float64, n)
	for i, q := range queries {
		want1[i] = m1.Estimate(q)
		want2[i] = m2.Estimate(q)
	}

	const swaps = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				s.Registry().Set(DefaultModelName, "swap", m2)
			} else {
				s.Registry().Set(DefaultModelName, "swap", m1)
			}
			runtime.Gosched()
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w, resp := postEstimate(t, h, body)
				if w.Code != 200 {
					t.Errorf("HTTP %d: %s", w.Code, w.Body.String())
					return
				}
				want := want1
				if resp.Generation%2 == 0 {
					want = want2
				}
				for i, got := range resp.Estimates {
					if got != want[i] {
						t.Errorf("generation %d response mixed models at index %d: got %v, want %v",
							resp.Generation, i, got, want[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
