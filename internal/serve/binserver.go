package serve

// Binary protocol listener (DESIGN.md §15). The HTTP handlers speak JSON;
// this file serves the same estimate/feedback surface over the wirebin
// framing protocol on persistent TCP connections. Each connection gets one
// goroutine, one wirebin.Arena, and one pooled estimateScratch; frames are
// processed serially in arrival order, which is what makes pipelining's
// in-order response guarantee free. Estimates flow through the exact same
// estimateBatch kernel as the JSON path — same cache, same
// core.EstimateRangesInto fan-out, same generation snapshot — so the two
// protocols return bit-identical results.
//
// processBinFrame is the steady-state unit: decode into the connection
// arena, estimate into the connection scratch, append the response frame
// to the connection's output buffer. None of that allocates — the
// //selvet:zeroalloc annotations and TestBinFrameZeroAlloc hold it to
// zero allocs/op, mirroring the JSON path's TestEstimateHandlerZeroAlloc.
//
// Per-frame errors (bad frame, bad query, unknown model, oversized frame)
// are answered with a FrameError and the connection stays open: the
// framing is still intact, so there is no reason to make the client pay a
// reconnect. Only transport failures and unrecoverable framing corruption
// close the connection.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/wirebin"
)

// binStats holds the binary listener's metric handles. They are
// registered unconditionally in NewServer so scrapes see stable series
// whether or not -listen-bin is enabled.
type binStats struct {
	connsTotal *obs.Counter
	active     atomic.Int64
	frameEst   *obs.Counter
	frameBatch *obs.Counter
	frameFb    *obs.Counter
	frameOther *obs.Counter
	errFrames  *obs.Counter
	frameSecs  *obs.Histogram
}

func (s *Server) registerBinMetrics(reg *obs.Registry) {
	s.bin.connsTotal = reg.Counter("selserve_bin_connections_total",
		"Binary-protocol connections accepted.")
	reg.GaugeFunc("selserve_bin_connections_active",
		"Binary-protocol connections currently open.",
		func() float64 { return float64(s.bin.active.Load()) })
	const frameHelp = "Binary-protocol frames processed, by request type."
	s.bin.frameEst = reg.Counter("selserve_bin_frames_total", frameHelp,
		obs.Label{Key: "type", Value: "estimate"})
	s.bin.frameBatch = reg.Counter("selserve_bin_frames_total", frameHelp,
		obs.Label{Key: "type", Value: "estimate_batch"})
	s.bin.frameFb = reg.Counter("selserve_bin_frames_total", frameHelp,
		obs.Label{Key: "type", Value: "feedback"})
	s.bin.frameOther = reg.Counter("selserve_bin_frames_total", frameHelp,
		obs.Label{Key: "type", Value: "unknown"})
	s.bin.errFrames = reg.Counter("selserve_bin_error_frames_total",
		"Binary-protocol frames answered with an error frame.")
	s.bin.frameSecs = reg.Histogram("selserve_bin_frame_seconds",
		"Binary-protocol per-frame service time in seconds.", nil)
}

// binState is one connection's reusable workspace: the decode arena, the
// estimate scratch (shared with the HTTP path's pool), and the frame
// read/write buffers. Pooled so short-lived connections do not pay a
// fresh set of warm buffers.
type binState struct {
	arena wirebin.Arena
	req   wirebin.Request
	sc    *estimateScratch
	frame []byte // incoming frame buffer (header + payload)
	out   []byte // outgoing response frame bytes
}

var binStatePool = sync.Pool{New: func() any { return new(binState) }}

// Static error-frame messages: the error path stays allocation-free
// because every message the server originates is a constant (the typed
// wirebin decode errors are precomposed, so their Error() is a field
// read, not a format).
const (
	binMsgUnknownModel = "model not registered"
	binMsgDimMismatch  = "query dimension does not match model dimension"
	binMsgTooLarge     = "frame exceeds size limit"
)

// processBinFrame serves one request frame, appending exactly one
// response frame to st.out. It never fails: every error becomes a
// FrameError response. The estimate path performs zero heap allocations
// at steady state; feedback frames deep-copy observations out of the
// arena (the feedback ring retains them), matching the JSON path's cost.
//
//selvet:zeroalloc
func (s *Server) processBinFrame(st *binState, typ byte, payload []byte) {
	switch typ {
	case wirebin.FrameEstimate:
		s.bin.frameEst.Inc()
	case wirebin.FrameEstimateBatch:
		s.bin.frameBatch.Inc()
	case wirebin.FrameFeedback:
		s.bin.frameFb.Inc()
	default:
		s.bin.frameOther.Inc()
		s.bin.errFrames.Inc()
		st.out = wirebin.AppendErrorResp(st.out, wirebin.CodeBadFrame, wirebin.ErrUnknownFrame.Error())
		return
	}
	if err := wirebin.DecodeRequest(typ, payload, &st.arena, &st.req); err != nil {
		code := byte(wirebin.CodeBadFrame)
		if errors.Is(err, wirebin.ErrBadQuery) {
			code = wirebin.CodeBadQuery
		}
		s.bin.errFrames.Inc()
		st.out = wirebin.AppendErrorResp(st.out, code, err.Error())
		return
	}
	nameBytes := st.req.Model
	if len(nameBytes) == 0 {
		nameBytes = defaultModelBytes
	}
	entry, ok := s.registry.GetBytes(nameBytes)
	if !ok {
		s.bin.errFrames.Inc()
		st.out = wirebin.AppendErrorResp(st.out, wirebin.CodeUnknownModel, binMsgUnknownModel)
		return
	}
	if dim, ok := modelDim(entry.Model); ok && dim > 0 {
		for _, q := range st.req.Ranges {
			if q.Dim() != dim {
				s.bin.errFrames.Inc()
				st.out = wirebin.AppendErrorResp(st.out, wirebin.CodeBadQuery, binMsgDimMismatch)
				return
			}
		}
	}

	switch typ {
	case wirebin.FrameEstimate, wirebin.FrameEstimateBatch:
		// The cache keys by model-name string; convert only when it is on
		// (same trade the JSON path makes).
		name := ""
		if s.estCache != nil {
			//selvet:ignore zeroalloc the estimate cache keys by string; opting into caching buys this one conversion
			name = string(nameBytes)
		}
		ests := grow(&st.sc.ests, len(st.req.Ranges))
		s.estimateBatch(name, entry, st.req.Ranges, ests, st.sc, obs.Span{})
		if typ == wirebin.FrameEstimate {
			st.out = wirebin.AppendEstimateResp(st.out, entry.Generation, ests[0])
		} else {
			st.out = wirebin.AppendEstimateBatchResp(st.out, entry.Generation, ests)
		}
	case wirebin.FrameFeedback:
		// The feedback ring retains observations beyond the frame, so
		// they must leave the arena; feedback frames are off the
		// estimate fast path and may allocate.
		obsList := make([]core.LabeledQuery, len(st.req.Ranges))
		for i, q := range st.req.Ranges {
			obsList[i] = core.LabeledQuery{R: cloneRange(q), Sel: st.req.Sels[i]}
		}
		//selvet:ignore zeroalloc feedback store keys by string name
		name := string(nameBytes)
		dropped := s.feedback.Add(name, obsList)
		if s.online != nil {
			s.online.ingest(name, obsList)
		}
		st.out = wirebin.AppendFeedbackResp(st.out, entry.Generation, len(obsList), dropped)
	}
}

// cloneRange deep-copies an arena-backed range so it can outlive the
// frame that carried it.
func cloneRange(r geom.Range) geom.Range {
	clone := func(p geom.Point) geom.Point { return append(geom.Point(nil), p...) }
	switch q := r.(type) {
	case *geom.Box:
		return geom.NewBox(clone(q.Lo), clone(q.Hi))
	case *geom.Halfspace:
		return geom.NewHalfspace(clone(q.A), q.B)
	case *geom.Ball:
		return geom.NewBall(clone(q.Center), q.Radius)
	}
	return r
}

// serveBinConn runs one connection's frame loop: read, process, buffer
// the response, and flush only when the read side has drained — so a
// pipelined burst pays one writev, while a lone request is answered
// immediately before the loop blocks on the next read.
func (s *Server) serveBinConn(conn net.Conn) {
	defer func() { _ = conn.Close() }() // double-close on drain is harmless

	st := binStatePool.Get().(*binState)
	defer binStatePool.Put(st)
	st.sc = scratchPool.Get().(*estimateScratch)
	// LIFO defers: the scratch is returned and unhooked from st before
	// st itself goes back to its pool.
	defer func() {
		scratchPool.Put(st.sc)
		st.sc = nil
	}()

	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	for {
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				s.encodeFailed("bin flush", err)
				return
			}
		}
		typ, payload, err := wirebin.ReadFrame(br, &st.frame)
		if err != nil {
			switch {
			case err == io.EOF:
				return
			case errors.Is(err, wirebin.ErrFrameTooLarge):
				// Framing is intact (ReadFrame discarded the payload):
				// answer and keep serving.
				s.bin.errFrames.Inc()
				st.out = wirebin.AppendErrorResp(st.out[:0], wirebin.CodeTooLarge, binMsgTooLarge)
			default:
				// Framing corrupt or the peer vanished mid-frame: a
				// best-effort error frame, then close.
				s.bin.errFrames.Inc()
				st.out = wirebin.AppendErrorResp(st.out[:0], wirebin.CodeBadFrame, err.Error())
				if _, werr := bw.Write(st.out); werr == nil {
					if ferr := bw.Flush(); ferr != nil {
						s.encodeFailed("bin flush", ferr)
					}
				} else {
					s.encodeFailed("bin write", werr)
				}
				return
			}
		} else {
			start := time.Now()
			st.out = st.out[:0]
			s.processBinFrame(st, typ, payload)
			s.bin.frameSecs.Observe(time.Since(start).Seconds())
		}
		if _, err := bw.Write(st.out); err != nil {
			s.encodeFailed("bin write", err)
			return
		}
	}
}

// RunBin listens on addr and serves the binary protocol until ctx is
// cancelled. It is the -listen-bin counterpart of Run and is typically
// run concurrently with it; it does not start a second retrainer (model
// lifecycle stays with the HTTP listener's Serve loop).
func (s *Server) RunBin(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeBin(ctx, ln)
}

// ServeBin is RunBin on an existing listener. On cancellation it stops
// accepting, then gives in-flight connections DrainTimeout to finish
// their current frames before force-closing them.
func (s *Server) ServeBin(ctx context.Context, ln net.Listener) error {
	var mu sync.Mutex
	conns := make(map[net.Conn]struct{})
	go func() {
		<-ctx.Done()
		_ = ln.Close() // unblocks Accept
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			return err
		}
		s.bin.connsTotal.Inc()
		s.bin.active.Add(1)
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveBinConn(conn)
			mu.Lock()
			delete(conns, conn)
			mu.Unlock()
			s.bin.active.Add(-1)
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		// Collect under the lock, close outside it: Close can block on
		// the network and must not hold the connection-set mutex.
		mu.Lock()
		open := make([]net.Conn, 0, len(conns))
		for c := range conns {
			open = append(open, c)
		}
		mu.Unlock()
		for _, c := range open {
			_ = c.Close()
		}
		<-done
		if s.logger != nil {
			s.logger.LogAttrs(context.Background(), slog.LevelWarn,
				"binary drain timeout: connections force-closed",
				slog.Int("connections", len(open)))
		}
	}
	return nil
}
