package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
)

// streamLines posts NDJSON lines to the stream endpoint and returns the
// response status plus decoded result lines.
func streamLines(t *testing.T, h http.Handler, path string, lines []string) (int, []map[string]any) {
	t.Helper()
	body := strings.Join(lines, "\n") + "\n"
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return w.Code, nil
	}
	var out []map[string]any
	scan := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for scan.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scan.Text(), err)
		}
		out = append(out, rec)
	}
	return w.Code, out
}

func TestEstimateStreamEndpoint(t *testing.T) {
	train, test := fixture(t, 60, 5)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	s.Registry().Set("named", "test", m)
	h := s.Handler()

	// In-order results, byte-identical to direct model calls.
	var lines []string
	for _, z := range test {
		b := z.R.(geom.Box)
		q, _ := json.Marshal(wireQuery{Lo: b.Lo, Hi: b.Hi})
		lines = append(lines, string(q))
	}
	code, recs := streamLines(t, h, "/v1/estimate/stream", lines)
	if code != http.StatusOK {
		t.Fatalf("stream: HTTP %d", code)
	}
	if len(recs) != len(test) {
		t.Fatalf("%d result lines, want %d", len(recs), len(test))
	}
	for i, z := range test {
		got, ok := recs[i]["estimate"].(float64)
		if !ok || got != m.Estimate(z.R) {
			t.Fatalf("stream estimate %d = %v, want %v", i, recs[i], m.Estimate(z.R))
		}
	}

	// The model query parameter selects a registered model; unknown 404s.
	if code, _ := streamLines(t, h, "/v1/estimate/stream?model=named", lines[:1]); code != http.StatusOK {
		t.Fatalf("named model: HTTP %d", code)
	}
	if code, _ := streamLines(t, h, "/v1/estimate/stream?model=nope", lines[:1]); code != http.StatusNotFound {
		t.Fatalf("unknown model: HTTP %d, want 404", code)
	}

	// Non-box classes work over the stream too.
	half := geom.NewHalfspace(geom.Point{1, -1}, 0.1)
	code, recs = streamLines(t, h, "/v1/estimate/stream", []string{`{"a":[1,-1],"b":0.1}`})
	if code != http.StatusOK || len(recs) != 1 || recs[0]["estimate"].(float64) != m.Estimate(half) {
		t.Fatalf("halfspace stream: code=%d recs=%v", code, recs)
	}
}

func TestEstimateStreamErrorsInOrder(t *testing.T) {
	train, test := fixture(t, 60, 3)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	b := test[0].R.(geom.Box)
	good, _ := json.Marshal(wireQuery{Lo: b.Lo, Hi: b.Hi})
	lines := []string{
		string(good),
		`{"lo":[0,0]}`,        // semantic: missing hi
		``,                    // blank: skipped entirely
		`{"lo":[0],"hi":[1]}`, // dimension mismatch vs the 2-D model
		`{"zz":1}`,            // unknown field
		string(good),
	}
	code, recs := streamLines(t, h, "/v1/estimate/stream", lines)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d", code)
	}
	if len(recs) != 5 {
		t.Fatalf("%d lines, want 5 (blank line skipped): %v", len(recs), recs)
	}
	want := m.Estimate(test[0].R)
	if recs[0]["estimate"].(float64) != want || recs[4]["estimate"].(float64) != want {
		t.Fatalf("good queries drifted: %v", recs)
	}
	for i, frag := range map[int]string{
		1: "query 1: box query needs lo and hi of equal positive dimension",
		2: `query 2: dimension 1, model "default" has dimension 2`,
		3: `query 3: unknown field "zz"`,
	} {
		msg, ok := recs[i]["error"].(string)
		if !ok || msg != frag {
			t.Fatalf("error line %d = %v, want %q", i, recs[i], frag)
		}
	}
}

func TestEstimateStreamBatchBoundary(t *testing.T) {
	train, test := fixture(t, 60, 1)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	// More queries than one batch, exercising the flush-and-refill path.
	n := streamBatchSize + streamBatchSize/2
	b := test[0].R.(geom.Box)
	q, _ := json.Marshal(wireQuery{Lo: b.Lo, Hi: b.Hi})
	lines := make([]string, n)
	for i := range lines {
		lines[i] = string(q)
	}
	code, recs := streamLines(t, h, "/v1/estimate/stream", lines)
	if code != http.StatusOK || len(recs) != n {
		t.Fatalf("code=%d lines=%d, want 200/%d", code, len(recs), n)
	}
	want := m.Estimate(test[0].R)
	for i, rec := range recs {
		if rec["estimate"].(float64) != want {
			t.Fatalf("estimate %d = %v, want %v", i, rec, want)
		}
	}
}

// TestEstimateStreamConcurrentWithSwaps drives several streams while
// models hot-swap underneath — the -race sweep in scripts/verify.sh runs
// this to prove the pooled per-connection state and the registry COW
// publication never tear.
func TestEstimateStreamConcurrentWithSwaps(t *testing.T) {
	train, test := fixture(t, 60, 4)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	var lines []string
	for _, z := range test {
		b := z.R.(geom.Box)
		q, _ := json.Marshal(wireQuery{Lo: b.Lo, Hi: b.Hi})
		lines = append(lines, string(q))
	}
	body := strings.Join(lines, "\n") + "\n"

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				req := httptest.NewRequest("POST", "/v1/estimate/stream", strings.NewReader(body))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("stream: HTTP %d", w.Code)
					return
				}
				if n := strings.Count(w.Body.String(), "\n"); n != len(lines) {
					t.Errorf("stream returned %d lines, want %d", n, len(lines))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < 50; it++ {
			s.Registry().Set(DefaultModelName, fmt.Sprintf("swap-%d", it), m)
		}
	}()
	wg.Wait()
}

// failingWriter errors every write after the first n bytes, simulating a
// client that hung up mid-stream.
type failingWriter struct {
	h       http.Header
	status  int
	allowed int
	written int
}

func (w *failingWriter) Header() http.Header { return w.h }
func (w *failingWriter) WriteHeader(c int)   { w.status = c }
func (w *failingWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.allowed {
		return 0, fmt.Errorf("client gone")
	}
	w.written += len(p)
	return len(p), nil
}

// TestEstimateStreamWriteFailureCounted pins the encode-failure contract
// to the stream endpoint: result-line and error-line write failures must
// land in selserve_encode_errors_total (and the warn log), exactly like
// /v1/estimate's writeJSON path — they used to be dropped silently.
func TestEstimateStreamWriteFailureCounted(t *testing.T) {
	train, test := fixture(t, 60, 4)
	m := trainModel(t, train)

	run := func(t *testing.T, lines []string) int64 {
		t.Helper()
		s := NewServer(Options{})
		s.Registry().Set(DefaultModelName, "test", m)
		body := strings.Join(lines, "\n") + "\n"
		req := httptest.NewRequest("POST", "/v1/estimate/stream", strings.NewReader(body))
		w := &failingWriter{h: make(http.Header)}
		s.Handler().ServeHTTP(w, req)
		return s.encodeErrs.Value()
	}

	// Enough queries to cross a batch boundary: the mid-stream bw.Flush
	// used to return without counting.
	t.Run("result lines", func(t *testing.T) {
		var lines []string
		for i := 0; i < streamBatchSize+40; i++ {
			b := test[i%len(test)].R.(geom.Box)
			lines = append(lines, fmt.Sprintf(`{"lo":[%g,%g],"hi":[%g,%g]}`, b.Lo[0], b.Lo[1], b.Hi[0], b.Hi[1]))
		}
		if got := run(t, lines); got == 0 {
			t.Fatal("result-line write failure not counted in selserve_encode_errors_total")
		}
	})

	// Enough error lines to overflow the 64KiB response buffer so the
	// error-line write itself fails; that failure used to be dropped.
	t.Run("error lines", func(t *testing.T) {
		lines := make([]string, 3000)
		for i := range lines {
			lines[i] = `{"bogus":true}`
		}
		if got := run(t, lines); got == 0 {
			t.Fatal("error-line write failure not counted in selserve_encode_errors_total")
		}
	})
}
