package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/online"
)

// onlineManager is the serving side of internal/online: it owns one
// Updater per model name and turns accepted feedback into published weight
// updates on the request path, microseconds after the observation arrives.
// The background retrainer stays on as the structural fallback — it
// rebuilds bucket geometry, which weight updates cannot, and covers the
// model families that do not implement core.Reweightable.
//
// Concurrency: updates for one model serialize on its onlineState mutex
// (the online.Updater contract); different models update independently.
// Estimate traffic never takes these locks — it reads whatever entry the
// registry currently publishes. Publication goes through the registry's
// CompareAndSwap keyed on the entry the updater was built from, so an
// online update can never clobber a concurrent retrain or upload; on a
// lost race the updater is discarded and rebuilt from the winner.
type onlineManager struct {
	srv   *Server
	rule  online.Rule
	rate  float64
	batch int

	mu     sync.Mutex
	states map[string]*onlineState

	applied   atomic.Int64
	skipped   atomic.Int64
	published atomic.Int64
	conflicts atomic.Int64
	fallbacks atomic.Int64
	driftBits atomic.Uint64 // cumulative L1 weight drift, as float64 bits

	latency *obs.Histogram // seconds per Apply+publish
}

// onlineState is one model's updater plus its pending mini-batch.
type onlineState struct {
	mu      sync.Mutex
	gen     int64 // registry generation the updater's model corresponds to
	badGen  int64 // generation probed and found unsupported (0 = none)
	updater online.Updater
	pending []core.LabeledQuery
}

// onlineUpdateBuckets spans 1µs–100ms: the target regime is tens of
// microseconds, and anything beyond the top bucket is a pathology the
// overflow count surfaces.
var onlineUpdateBuckets = obs.ExpBuckets(1e-6, 1e-1, 4)

func newOnlineManager(s *Server) *onlineManager {
	m := &onlineManager{
		srv:    s,
		rule:   s.opts.OnlineRule,
		rate:   s.opts.OnlineRate,
		batch:  s.opts.OnlineBatchSize,
		states: make(map[string]*onlineState),
		latency: s.metrics.Histogram("selserve_online_update_seconds",
			"Latency of one online update batch (fold + publish), in seconds.",
			onlineUpdateBuckets),
	}
	s.metrics.CounterFunc("selserve_online_applied_total",
		"Feedback observations folded into serving weights online.",
		m.applied.Load)
	s.metrics.CounterFunc("selserve_online_skipped_total",
		"Feedback observations the online updater could not use (no bucket coverage or invalid label).",
		m.skipped.Load)
	s.metrics.CounterFunc("selserve_online_published_total",
		"Online weight updates published to the registry.",
		m.published.Load)
	s.metrics.CounterFunc("selserve_online_conflicts_total",
		"Online publishes lost to a concurrent retrain or upload (updater rebuilt from the winner).",
		m.conflicts.Load)
	s.metrics.CounterFunc("selserve_online_fallbacks_total",
		"Feedback observations routed to the retrain-only path (model family not reweightable).",
		m.fallbacks.Load)
	s.metrics.GaugeFunc("selserve_online_weight_drift",
		"Cumulative L1 distance the serving weights have moved under online updates.",
		m.drift)
	return m
}

func (m *onlineManager) drift() float64 {
	return math.Float64frombits(m.driftBits.Load())
}

// addDrift accumulates into the cumulative drift gauge (CAS loop — drift
// is a float, so it cannot ride an integer counter).
func (m *onlineManager) addDrift(d float64) {
	for {
		old := m.driftBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if m.driftBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// state finds or creates the per-model state.
func (m *onlineManager) state(name string) *onlineState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[name]
	if !ok {
		st = &onlineState{}
		m.states[name] = st
	}
	return st
}

// ingest folds accepted feedback into the model's online updater,
// publishing a weight update once the configured mini-batch has
// accumulated. Called on the /v1/feedback request path after the ring add;
// the ring still sees every observation, so the retrain fallback is
// unaffected by whatever happens here.
func (m *onlineManager) ingest(name string, batch []core.LabeledQuery) {
	if len(batch) == 0 {
		return
	}
	st := m.state(name)
	st.mu.Lock()
	defer st.mu.Unlock()

	entry, ok := m.srv.registry.Get(name)
	if !ok {
		return
	}
	if st.updater == nil || st.gen != entry.Generation {
		// First feedback for this model, or the registry moved on under us
		// (retrain swap, upload, or a lost publish race): rebuild the
		// updater from the entry that is actually serving.
		if st.badGen == entry.Generation {
			m.fallbacks.Add(int64(len(batch)))
			return
		}
		u, supported := online.ForModel(entry.Model, online.Options{Rule: m.rule, Rate: m.rate})
		if !supported {
			st.badGen = entry.Generation
			st.updater = nil
			m.fallbacks.Add(int64(len(batch)))
			return
		}
		st.updater = u
		st.gen = entry.Generation
		st.pending = st.pending[:0]
	}

	st.pending = append(st.pending, batch...)
	if len(st.pending) < m.batch {
		return
	}
	start := time.Now()
	nm, stats := st.updater.Apply(st.pending)
	st.pending = st.pending[:0]
	m.applied.Add(int64(stats.Applied))
	m.skipped.Add(int64(stats.Skipped))
	if stats.Drift > 0 {
		m.addDrift(stats.Drift)
	}
	if nm != nil {
		if e := m.srv.registry.CompareAndSwap(name, "online", entry, nm); e != nil {
			st.gen = e.Generation
			m.published.Add(1)
		} else {
			// A retrain or upload won the slot between our Get and the
			// swap. Its model supersedes our fold; start over from it on
			// the next feedback.
			st.updater = nil
			m.conflicts.Add(1)
		}
	}
	m.latency.Observe(time.Since(start).Seconds())
}

// onlineStatus is the /statz block for the online-update subsystem.
type onlineStatus struct {
	Rule             string  `json:"rule"`
	Rate             float64 `json:"rate"`
	BatchSize        int     `json:"batch_size"`
	Applied          int64   `json:"applied"`
	Skipped          int64   `json:"skipped"`
	Published        int64   `json:"published"`
	Conflicts        int64   `json:"conflicts"`
	Fallbacks        int64   `json:"fallbacks"`
	Pending          int     `json:"pending"`
	CumulativeDrift  float64 `json:"cumulative_drift"`
	UpdateP99Micros  float64 `json:"update_p99_us,omitempty"`
	UpdateP999Micros float64 `json:"update_p999_us,omitempty"`
}

func (m *onlineManager) status() onlineStatus {
	st := onlineStatus{
		Rule:            m.rule.String(),
		Rate:            m.rate,
		BatchSize:       m.batch,
		Applied:         m.applied.Load(),
		Skipped:         m.skipped.Load(),
		Published:       m.published.Load(),
		Conflicts:       m.conflicts.Load(),
		Fallbacks:       m.fallbacks.Load(),
		CumulativeDrift: m.drift(),
	}
	m.mu.Lock()
	states := make([]*onlineState, 0, len(m.states))
	for _, s := range m.states {
		states = append(states, s)
	}
	m.mu.Unlock()
	for _, s := range states {
		s.mu.Lock()
		st.Pending += len(s.pending)
		s.mu.Unlock()
	}
	if m.latency.Count() > 0 {
		st.UpdateP99Micros = m.latency.Quantile(0.99) * 1e6
		st.UpdateP999Micros = m.latency.Quantile(0.999) * 1e6
	}
	return st
}
