package serve

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/wirebin"
)

// startBinServer serves the binary protocol on an ephemeral port and
// returns its address plus a shutdown func.
func startBinServer(t *testing.T, s *Server) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.ServeBin(ctx, ln); err != nil {
			t.Errorf("ServeBin: %v", err)
		}
	}()
	return ln.Addr().String(), func() {
		cancel()
		<-done
	}
}

func TestBinServerEndToEnd(t *testing.T) {
	train, test := fixture(t, 60, 8)
	m := trainModel(t, train)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", m)
	addr, stop := startBinServer(t, s)
	defer stop()

	c, err := wirebin.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	t.Run("estimate matches model", func(t *testing.T) {
		for _, lq := range test {
			est, gen, err := c.Estimate("", lq.R)
			if err != nil {
				t.Fatal(err)
			}
			if want := m.Estimate(lq.R); math.Float64bits(est) != math.Float64bits(want) {
				t.Fatalf("estimate %v, model says %v", est, want)
			}
			if gen <= 0 {
				t.Fatalf("generation %d", gen)
			}
		}
	})

	t.Run("batch matches singles", func(t *testing.T) {
		ranges := make([]geom.Range, len(test))
		for i, lq := range test {
			ranges[i] = lq.R
		}
		ests, _, err := c.EstimateBatch(DefaultModelName, ranges, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ests) != len(ranges) {
			t.Fatalf("%d estimates for %d queries", len(ests), len(ranges))
		}
		for i, r := range ranges {
			if want := m.Estimate(r); math.Float64bits(ests[i]) != math.Float64bits(want) {
				t.Fatalf("batch[%d] = %v, want %v", i, ests[i], want)
			}
		}
	})

	t.Run("feedback accepted", func(t *testing.T) {
		ranges := []geom.Range{test[0].R, test[1].R}
		acc, dropped, gen, err := c.Feedback("", ranges, []float64{0.1, 0.9})
		if err != nil {
			t.Fatal(err)
		}
		if acc != 2 || dropped != 0 || gen <= 0 {
			t.Fatalf("accepted=%d dropped=%d gen=%d", acc, dropped, gen)
		}
		if total, _, _ := s.feedback.Totals(); total < 2 {
			t.Fatalf("feedback store saw %d observations", total)
		}
	})

	t.Run("error frames keep connection", func(t *testing.T) {
		if _, _, err := c.Estimate("no-such-model", test[0].R); err == nil ||
			!strings.Contains(err.Error(), "model not registered") {
			t.Fatalf("unknown model error: %v", err)
		}
		// The same connection must still serve.
		if _, _, err := c.Estimate("", test[0].R); err != nil {
			t.Fatalf("connection unusable after error frame: %v", err)
		}
		// Dimension mismatch is a per-frame error, not a hangup.
		bad := geom.Box{Lo: geom.Point{0.1, 0.1, 0.1}, Hi: geom.Point{0.2, 0.2, 0.2}}
		if _, _, err := c.Estimate("", bad); err == nil ||
			!strings.Contains(err.Error(), "dimension") {
			t.Fatalf("dim mismatch error: %v", err)
		}
		if _, _, err := c.Estimate("", test[0].R); err != nil {
			t.Fatalf("connection unusable after dim error: %v", err)
		}
	})

	t.Run("generation observes hot swap", func(t *testing.T) {
		_, gen0, err := c.Estimate("", test[0].R)
		if err != nil {
			t.Fatal(err)
		}
		s.Registry().Set(DefaultModelName, "swap", trainModel(t, train))
		_, gen1, err := c.Estimate("", test[0].R)
		if err != nil {
			t.Fatal(err)
		}
		if gen1 <= gen0 {
			t.Fatalf("generation did not advance across swap: %d -> %d", gen0, gen1)
		}
	})

	t.Run("pipelined responses in order", func(t *testing.T) {
		// Distinct queries → distinct estimates; responses must come back
		// in request order.
		var frames [][]byte
		var want []float64
		for _, lq := range test {
			f, err := wirebin.AppendEstimateReq(nil, nil, lq.R)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
			want = append(want, m.Estimate(lq.R))
		}
		err := c.Pipeline(frames, func(i int, r *wirebin.Response) error {
			if r.Type != wirebin.FrameEstimateResp {
				t.Fatalf("response %d: frame type %#x", i, r.Type)
			}
			if math.Float64bits(r.Est) != math.Float64bits(want[i]) {
				t.Fatalf("response %d out of order: got %v, want %v", i, r.Est, want[i])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestBinJSONEquivalence is the cross-protocol property test: random
// workloads through the binary listener and the HTTP JSON handler must
// produce bit-identical estimates.
func TestBinJSONEquivalence(t *testing.T) {
	train, _ := fixture(t, 80, 1)
	m := trainModel(t, train)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()
	addr, stop := startBinServer(t, s)
	defer stop()

	c, err := wirebin.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	rng := rand.New(rand.NewSource(42))
	jsonEstimate := func(t *testing.T, q geom.Range) float64 {
		t.Helper()
		b := q.(geom.Box)
		body, err := json.Marshal(estimateRequest{Query: &wireQuery{Lo: b.Lo, Hi: b.Hi}})
		if err != nil {
			t.Fatal(err)
		}
		var resp estimateResponse
		if code := doJSON(t, h, "POST", "/v1/estimate", body, &resp); code != http.StatusOK {
			t.Fatalf("HTTP %d", code)
		}
		return *resp.Estimate
	}

	for i := 0; i < 200; i++ {
		lo := geom.Point{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5}
		hi := geom.Point{lo[0] + rng.Float64(), lo[1] + rng.Float64()}
		q := geom.Box{Lo: lo, Hi: hi}
		want := jsonEstimate(t, q)
		got, _, err := c.Estimate("", q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: binary %v != json %v", i, got, want)
		}
	}
}

// TestBinFrameZeroAlloc is the binary counterpart of
// TestEstimateHandlerZeroAlloc: decode, estimate, and response encode for
// a single-estimate frame run at 0 allocs/op at steady state. It drives
// processBinFrame inline — AllocsPerRun counts process-global
// allocations, so a live client goroutine would pollute the measurement;
// the thin connection loop around it is covered by the selvet zeroalloc
// annotation sweep.
func TestBinFrameZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate runs without -race")
	}
	train, test := fixture(t, 60, 1)
	m := trainModel(t, train)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", m)

	frame, err := wirebin.AppendEstimateReq(nil, nil, test[0].R)
	if err != nil {
		t.Fatal(err)
	}
	typ, payload := frame[4], frame[5:]

	st := binStatePool.Get().(*binState)
	st.sc = scratchPool.Get().(*estimateScratch)
	defer func() {
		scratchPool.Put(st.sc)
		st.sc = nil
		binStatePool.Put(st)
	}()

	for i := 0; i < 8; i++ {
		st.out = st.out[:0]
		s.processBinFrame(st, typ, payload)
		if len(st.out) == 0 || st.out[4] != wirebin.FrameEstimateResp {
			t.Fatalf("warmup frame answered with %#x", st.out[4])
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		st.out = st.out[:0]
		s.processBinFrame(st, typ, payload)
	})
	if allocs != 0 {
		t.Fatalf("binary estimate frame path allocates %.1f objects/op, want 0", allocs)
	}

	t.Run("batch", func(t *testing.T) {
		ranges := make([]geom.Range, 16)
		for i := range ranges {
			ranges[i] = test[0].R
		}
		bframe, err := wirebin.AppendEstimateBatchReq(nil, nil, ranges)
		if err != nil {
			t.Fatal(err)
		}
		btyp, bpayload := bframe[4], bframe[5:]
		for i := 0; i < 8; i++ {
			st.out = st.out[:0]
			s.processBinFrame(st, btyp, bpayload)
		}
		allocs := testing.AllocsPerRun(200, func() {
			st.out = st.out[:0]
			s.processBinFrame(st, btyp, bpayload)
		})
		if allocs != 0 {
			t.Fatalf("binary batch frame path allocates %.1f objects/op, want 0", allocs)
		}
	})

	t.Run("error frame", func(t *testing.T) {
		bad, err := wirebin.AppendEstimateReq(nil, []byte("no-such-model"), test[0].R)
		if err != nil {
			t.Fatal(err)
		}
		etyp, epayload := bad[4], bad[5:]
		for i := 0; i < 8; i++ {
			st.out = st.out[:0]
			s.processBinFrame(st, etyp, epayload)
		}
		allocs := testing.AllocsPerRun(200, func() {
			st.out = st.out[:0]
			s.processBinFrame(st, etyp, epayload)
		})
		if allocs != 0 {
			t.Fatalf("binary error frame path allocates %.1f objects/op, want 0", allocs)
		}
	})
}

// TestBinConcurrentSwaps hammers the binary listener from several
// connections while the registry hot-swaps models, so `go test -race`
// checks the frame loop against publication races. Every response must
// be a valid estimate from some published generation.
func TestBinConcurrentSwaps(t *testing.T) {
	train, test := fixture(t, 60, 4)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", trainModel(t, train))
	addr, stop := startBinServer(t, s)
	defer stop()

	stopSwaps := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stopSwaps:
				return
			default:
				s.Registry().Set(DefaultModelName, "swap", trainModel(t, train))
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := wirebin.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer func() { _ = c.Close() }()
			lastGen := int64(0)
			for i := 0; i < 200; i++ {
				est, gen, err := c.Estimate("", test[i%len(test)].R)
				if err != nil {
					t.Errorf("estimate: %v", err)
					return
				}
				if est < 0 || est > 1 || gen < lastGen {
					t.Errorf("est=%v gen=%d (last %d)", est, gen, lastGen)
					return
				}
				lastGen = gen
			}
		}()
	}
	wg.Wait()
	close(stopSwaps)
	swapper.Wait()
}

// TestBinMetrics checks the frame and connection counters move.
func TestBinMetrics(t *testing.T) {
	train, test := fixture(t, 60, 1)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", trainModel(t, train))
	addr, stop := startBinServer(t, s)
	defer stop()

	c, err := wirebin.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Estimate("", test[0].R); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Estimate("missing", test[0].R); err == nil {
		t.Fatal("unknown model served")
	}
	_ = c.Close()

	if got := s.bin.connsTotal.Value(); got != 1 {
		t.Fatalf("connections_total = %d", got)
	}
	if got := s.bin.frameEst.Value(); got != 2 {
		t.Fatalf("frames_total{type=estimate} = %d", got)
	}
	if got := s.bin.errFrames.Value(); got != 1 {
		t.Fatalf("error_frames_total = %d", got)
	}
	if s.bin.frameSecs.Count() < 2 {
		t.Fatalf("frame_seconds count = %d", s.bin.frameSecs.Count())
	}
}

// TestBinServerDrain checks ServeBin returns promptly on cancel with an
// idle connection open (force-closed after the drain window).
func TestBinServerDrain(t *testing.T) {
	train, _ := fixture(t, 60, 1)
	s := NewServer(Options{EstimateCacheSize: -1, DrainTimeout: 50 * time.Millisecond})
	s.Registry().Set(DefaultModelName, "test", trainModel(t, train))
	addr, stop := startBinServer(t, s)

	c, err := wirebin.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	done := make(chan struct{})
	go func() {
		stop() // cancels ctx; idle conn must be reaped by the drain timer
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeBin did not drain")
	}
}
