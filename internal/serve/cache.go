package serve

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// EstimateCache is the serving layer's estimate memo: a bounded LRU from
// (model name, registry generation, canonical query bytes) to the
// estimate the model of that generation produced.
//
// Keying by generation is what makes invalidation free and exact: a
// hot-swap bumps the registry generation, so every lookup after the swap
// misses by construction — an estimate computed by an old model can never
// be served against a new one. Stale-generation entries are not purged
// eagerly; they fall off the LRU tail under new traffic, which keeps the
// swap path O(1) and lock-free for readers of the registry.
//
// The mutex guards only map/list pointer updates (no I/O, no estimation
// work is ever done under it — the lockheld analyzer gates this), so the
// cache stays cheap even under heavy contention.
type EstimateCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used; elements hold *cacheEntry
	entries map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheKey struct {
	model string
	gen   int64
	query string // canonical query bytes (QueryKey)
}

type cacheEntry struct {
	key cacheKey
	val float64
}

// NewEstimateCache returns a cache bounded to capacity entries.
// Capacity must be positive.
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity <= 0 {
		panic("serve: EstimateCache capacity must be positive")
	}
	return &EstimateCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[cacheKey]*list.Element, capacity),
	}
}

// Get returns the cached estimate for the query under the given model
// generation, updating the hit/miss counters and LRU order.
func (c *EstimateCache) Get(model string, gen int64, query string) (float64, bool) {
	k := cacheKey{model: model, gen: gen, query: query}
	c.mu.Lock()
	el, ok := c.entries[k]
	if ok {
		c.ll.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return 0, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Put records an estimate for the query under the given model generation,
// evicting the least recently used entry when full.
func (c *EstimateCache) Put(model string, gen int64, query string, v float64) {
	k := cacheKey{model: model, gen: gen, query: query}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	if c.ll.Len() >= c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	c.mu.Unlock()
}

// Len returns the current number of cached entries.
func (c *EstimateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// estimateCacheStatus is the /statz block for the estimate cache.
type estimateCacheStatus struct {
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

func (c *EstimateCache) status() estimateCacheStatus {
	return estimateCacheStatus{
		Size:     c.Len(),
		Capacity: c.cap,
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
	}
}

// QueryKey canonicalizes a query range into compact bytes for cache
// keying: a one-byte class tag followed by the raw IEEE-754 bits of the
// defining coordinates. Two wire queries that parse to the same geometry
// always map to the same key regardless of JSON formatting. Pointer and
// value forms of the same geometry produce identical keys — the
// zero-allocation wire decoder passes pointers into pooled arenas, while
// tests and embedders pass values. Ranges outside the three wire classes
// report ok=false and bypass the cache.
func QueryKey(r geom.Range) (string, bool) {
	switch q := r.(type) {
	case geom.Box:
		return boxKey(q), true
	case *geom.Box:
		return boxKey(*q), true
	case geom.Halfspace:
		return halfspaceKey(q), true
	case *geom.Halfspace:
		return halfspaceKey(*q), true
	case geom.Ball:
		return ballKey(q), true
	case *geom.Ball:
		return ballKey(*q), true
	}
	return "", false
}

func boxKey(q geom.Box) string {
	buf := make([]byte, 0, 1+16*len(q.Lo))
	buf = append(buf, 'b')
	buf = appendFloats(buf, q.Lo)
	buf = appendFloats(buf, q.Hi)
	return string(buf)
}

func halfspaceKey(q geom.Halfspace) string {
	buf := make([]byte, 0, 1+8*len(q.A)+8)
	buf = append(buf, 'h')
	buf = appendFloats(buf, q.A)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.B))
	return string(buf)
}

func ballKey(q geom.Ball) string {
	buf := make([]byte, 0, 1+8*len(q.Center)+8)
	buf = append(buf, 'c')
	buf = appendFloats(buf, q.Center)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(q.Radius))
	return string(buf)
}

func appendFloats(buf []byte, p geom.Point) []byte {
	for _, v := range p {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}
