package serve

// End-to-end acceptance test for the serving loop: a real server on an
// ephemeral port, a model upload, concurrent estimate traffic during both
// a PUT hot-swap and a feedback-triggered retrain, then a graceful drain.
// Run with -race: the whole point of the subsystem is that this access
// pattern is safe.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// post sends a JSON body and returns the status code and response bytes.
func post(t *testing.T, client *http.Client, method, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// estimateRMS measures a model's RMS over test via the HTTP API.
func estimateRMS(t *testing.T, client *http.Client, base string, test []core.LabeledQuery) float64 {
	t.Helper()
	var queries []wireQuery
	for _, z := range test {
		b := z.R.(geom.Box)
		queries = append(queries, wireQuery{Lo: b.Lo, Hi: b.Hi})
	}
	body, _ := json.Marshal(estimateRequest{Queries: queries})
	code, out := post(t, client, "POST", base+"/v1/estimate", body)
	if code != 200 {
		t.Fatalf("estimate: HTTP %d: %s", code, out)
	}
	var resp estimateResponse
	if err := json.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	return metrics.RMS(resp.Estimates, workload.Truths(test))
}

func TestEndToEndServingLoop(t *testing.T) {
	// Workload: a small initial training set (the "maintenance window"
	// model) plus a large feedback stream from the same distribution,
	// and a held-out test set.
	all, test := fixture(t, 500, 120)
	initial, feedback := all[:60], all[60:]

	m0 := trainModel(t, initial)
	s := NewServer(Options{
		MinRetrainSamples: 100,
		RetrainInterval:   time.Hour, // retrains are driven explicitly below
		DrainTimeout:      5 * time.Second,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	client := &http.Client{Timeout: 10 * time.Second}

	// Upload the initial model.
	code, out := post(t, client, "PUT", base+"/v1/models/default", envelopeOf(t, m0))
	if code != 200 {
		t.Fatalf("upload: HTTP %d: %s", code, out)
	}
	preRMS := estimateRMS(t, client, base, test)

	// Concurrent load: 8 goroutines issue estimate requests nonstop
	// while the main goroutine hot-swaps via PUT, streams feedback, and
	// forces retrains. No request may fail, let alone 5xx.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	reqBody, _ := json.Marshal(estimateRequest{Query: &wireQuery{
		Lo: []float64{0.1, 0.1}, Hi: []float64{0.6, 0.6},
	}})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errc <- fmt.Errorf("estimate under load: HTTP %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	// A PUT hot-swap in the middle of the barrage.
	m1 := trainModel(t, all[:120])
	if code, out := post(t, client, "PUT", base+"/v1/models/default", envelopeOf(t, m1)); code != 200 {
		t.Fatalf("hot-swap upload: HTTP %d: %s", code, out)
	}

	// Stream the feedback in batches and force retrain passes while the
	// readers keep hammering.
	for start := 0; start < len(feedback); start += 110 {
		end := min(start+110, len(feedback))
		var obs []observation
		for _, z := range feedback[start:end] {
			b := z.R.(geom.Box)
			sel := z.Sel
			obs = append(obs, observation{wireQuery: wireQuery{Lo: b.Lo, Hi: b.Hi}, Sel: &sel})
		}
		body, _ := json.Marshal(feedbackRequest{Observations: obs})
		if code, out := post(t, client, "POST", base+"/v1/feedback", body); code != 200 {
			t.Fatalf("feedback: HTTP %d: %s", code, out)
		}
		if code, out := post(t, client, "POST", base+"/v1/retrain", nil); code != 200 {
			t.Fatalf("retrain: HTTP %d: %s", code, out)
		}
	}

	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The feedback loop must have actually retrained and swapped at
	// least once (plenty of fresh, clean feedback arrived).
	var st statzResponse
	_, out = post(t, client, "GET", base+"/statz", nil)
	if err := json.Unmarshal(out, &st); err != nil {
		t.Fatal(err)
	}
	if st.Retrainer.Runs == 0 {
		t.Fatal("retrainer never ran")
	}
	if st.Retrainer.Swaps == 0 {
		t.Fatalf("retrainer never swapped: %+v", st.Retrainer)
	}
	for pattern, ep := range st.Endpoints {
		if ep.Errors5xx != 0 {
			t.Fatalf("%s returned %d 5xx responses", pattern, ep.Errors5xx)
		}
	}

	// Post-retrain accuracy on held-out queries must not regress versus
	// the pre-feedback model: the guarded swap only publishes candidates
	// that improve on held-out feedback, and the feedback stream here is
	// clean and much larger than the initial training set.
	postRMS := estimateRMS(t, client, base, test)
	if postRMS > preRMS+1e-9 {
		t.Fatalf("held-out RMS regressed after feedback: %.5f -> %.5f", preRMS, postRMS)
	}
	t.Logf("held-out RMS: pre-feedback %.5f, post-retrain %.5f (gen %d, %d swaps)",
		preRMS, postRMS, st.Models[0].Generation, st.Retrainer.Swaps)

	// Graceful drain: cancelling the context must stop Serve cleanly.
	// Release the client's keep-alive sockets first — Shutdown waits for
	// connections that never carried a request, and a well-behaved
	// client hangs up when told to drain.
	client.CloseIdleConnections()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve did not drain cleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
}
