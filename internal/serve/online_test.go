package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/online"
	"repro/internal/rng"
)

// onlineServer builds a server with online updates on, the retrainer
// effectively off (huge interval, driven manually where a test wants it),
// and a trained QuadHist model registered as "default".
func onlineServer(t *testing.T, opts Options) (*Server, core.Model) {
	t.Helper()
	opts.OnlineUpdates = true
	if opts.MinRetrainSamples == 0 {
		opts.MinRetrainSamples = 1 << 30 // never auto-retrain unless asked
	}
	s := NewServer(opts)
	train, _ := fixture(t, 400, 0)
	m := trainModel(t, train)
	s.registry.Set(DefaultModelName, "file", m)
	return s, m
}

// feedbackBody builds a /v1/feedback payload of box observations.
func feedbackBody(t *testing.T, obs []core.LabeledQuery) []byte {
	t.Helper()
	type wobs struct {
		Lo  []float64 `json:"lo"`
		Hi  []float64 `json:"hi"`
		Sel float64   `json:"sel"`
	}
	var req struct {
		Observations []wobs `json:"observations"`
	}
	for _, z := range obs {
		b := z.R.(geom.Box)
		req.Observations = append(req.Observations, wobs{Lo: b.Lo, Hi: b.Hi, Sel: z.Sel})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// feedbackStream generates a deterministic stream of box observations.
func feedbackStream(seed uint64, n int) []core.LabeledQuery {
	r := rng.New(seed)
	out := make([]core.LabeledQuery, n)
	for i := range out {
		lo := geom.Point{r.Float64() * 0.7, r.Float64() * 0.7}
		hi := geom.Point{lo[0] + 0.3*r.Float64(), lo[1] + 0.3*r.Float64()}
		out[i] = core.LabeledQuery{R: geom.Box{Lo: lo, Hi: hi}, Sel: r.Float64()}
	}
	return out
}

// TestOnlineFeedbackPublishes: one feedback observation through the HTTP
// path must bump the generation with source "online" and move the
// estimate toward the observed selectivity.
func TestOnlineFeedbackPublishes(t *testing.T) {
	s, m := onlineServer(t, Options{})
	h := s.Handler()
	q := geom.Box{Lo: geom.Point{0.1, 0.1}, Hi: geom.Point{0.6, 0.6}}
	before := m.Estimate(q)
	target := core.Clamp01(before + 0.2)

	code := doJSON(t, h, http.MethodPost, "/v1/feedback",
		feedbackBody(t, []core.LabeledQuery{{R: q, Sel: target}}), nil)
	if code != http.StatusOK {
		t.Fatalf("feedback status %d", code)
	}
	entry, _ := s.registry.Get(DefaultModelName)
	if entry.Source != "online" || entry.Generation != 2 {
		t.Fatalf("entry source=%q gen=%d, want online/2", entry.Source, entry.Generation)
	}
	after := entry.Model.Estimate(q)
	if math.Abs(after-target) >= math.Abs(before-target) {
		t.Fatalf("online update did not reduce error: before=%v after=%v target=%v", before, after, target)
	}
	st := s.online.status()
	if st.Applied != 1 || st.Published != 1 {
		t.Fatalf("online status %+v, want applied=1 published=1", st)
	}
	if st.CumulativeDrift <= 0 {
		t.Fatalf("cumulative drift not recorded: %+v", st)
	}
}

// TestOnlineBatchSize: with a batch size of 4, three observations publish
// nothing; the fourth publishes exactly one update folding all four.
func TestOnlineBatchSize(t *testing.T) {
	s, _ := onlineServer(t, Options{OnlineBatchSize: 4})
	stream := feedbackStream(5, 4)
	for i, z := range stream[:3] {
		s.online.ingest(DefaultModelName, []core.LabeledQuery{z})
		if got := s.online.published.Load(); got != 0 {
			t.Fatalf("published %d after %d sub-batch observations", got, i+1)
		}
	}
	s.online.ingest(DefaultModelName, []core.LabeledQuery{stream[3]})
	st := s.online.status()
	if st.Published != 1 || st.Applied+st.Skipped != 4 || st.Pending != 0 {
		t.Fatalf("batch accounting wrong: %+v", st)
	}
}

// TestOnlineFallbackUnsupported: a model family with no Reweightable
// support routes every observation to the fallback counter and never
// bumps the generation.
func TestOnlineFallbackUnsupported(t *testing.T) {
	s := NewServer(Options{OnlineUpdates: true, MinRetrainSamples: 1 << 30})
	s.registry.Set(DefaultModelName, "file", nonReweightableModel{})
	stream := feedbackStream(6, 5)
	s.online.ingest(DefaultModelName, stream)
	s.online.ingest(DefaultModelName, stream) // second probe must use the cached verdict
	st := s.online.status()
	if st.Fallbacks != 10 || st.Published != 0 {
		t.Fatalf("fallback accounting wrong: %+v", st)
	}
	entry, _ := s.registry.Get(DefaultModelName)
	if entry.Generation != 1 {
		t.Fatalf("unsupported model was republished: gen %d", entry.Generation)
	}
}

type nonReweightableModel struct{}

func (nonReweightableModel) Estimate(geom.Range) float64 { return 0.5 }
func (nonReweightableModel) NumBuckets() int             { return 1 }

// TestOnlineRebuildAfterSwap: when a retrain/upload swaps the model, the
// next online update must rebuild its updater from the winner instead of
// publishing weights derived from the dead generation.
func TestOnlineRebuildAfterSwap(t *testing.T) {
	s, _ := onlineServer(t, Options{})
	stream := feedbackStream(7, 3)
	s.online.ingest(DefaultModelName, stream[:1])
	gen1, _ := s.registry.Get(DefaultModelName)
	if gen1.Source != "online" {
		t.Fatalf("setup: first update did not publish (source %q)", gen1.Source)
	}

	// An out-of-band upload replaces the model.
	train, _ := fixture(t, 300, 0)
	m2 := trainModel(t, train)
	s.registry.Set(DefaultModelName, "upload", m2)

	s.online.ingest(DefaultModelName, stream[1:2])
	entry, _ := s.registry.Get(DefaultModelName)
	if entry.Source != "online" {
		t.Fatalf("post-swap update did not publish: source %q", entry.Source)
	}
	// The published weights must derive from m2 (shared geometry), not
	// from the pre-upload model.
	hm := entry.Model.(*hist.Model)
	h2 := m2.(*hist.Model)
	if &hm.Buckets[0] != &h2.Buckets[0] {
		t.Fatal("online update after swap did not rebuild from the new model")
	}
}

// TestOnlineDeterminism (verify.sh runs this as the seeded determinism
// self-check): the same feedback stream must yield byte-identical final
// weights regardless of how much concurrent estimate traffic runs and of
// the estimate worker count — estimates never perturb updater state, and
// updates serialize per model.
func TestOnlineDeterminism(t *testing.T) {
	stream := feedbackStream(1701, 400)
	finalWeights := func(estimateWorkers int, hammer bool) []float64 {
		s, _ := onlineServer(t, Options{EstimateWorkers: estimateWorkers, EstimateCacheSize: -1})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if hammer {
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rng.New(uint64(1000 + g))
					for {
						select {
						case <-stop:
							return
						default:
						}
						entry, _ := s.registry.Get(DefaultModelName)
						lo := geom.Point{r.Float64() * 0.5, r.Float64() * 0.5}
						hi := geom.Point{lo[0] + 0.4, lo[1] + 0.4}
						entry.Model.Estimate(geom.Box{Lo: lo, Hi: hi})
					}
				}(g)
			}
		}
		for _, z := range stream {
			s.online.ingest(DefaultModelName, []core.LabeledQuery{z})
		}
		close(stop)
		wg.Wait()
		entry, _ := s.registry.Get(DefaultModelName)
		return entry.Model.(*hist.Model).Weights
	}
	base := finalWeights(1, false)
	for _, cfg := range []struct {
		workers int
		hammer  bool
	}{{1, true}, {4, true}, {8, true}} {
		got := finalWeights(cfg.workers, cfg.hammer)
		if len(got) != len(base) {
			t.Fatalf("weight count changed: %d vs %d", len(got), len(base))
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("workers=%d hammer=%v: weight %d not byte-identical: %v vs %v",
					cfg.workers, cfg.hammer, j, got[j], base[j])
			}
		}
	}
}

// TestOnlineCOWRace is the torn-state test for the copy-on-write publish
// path: concurrent estimate readers, online updates, and full retrain
// hot-swaps. Run under -race (verify.sh does). Every estimate must come
// from some consistently-published model — in [0,1] with the model's
// weights a valid distribution — and nothing may panic or race.
func TestOnlineCOWRace(t *testing.T) {
	train, _ := fixture(t, 400, 0)
	s, _ := onlineServer(t, Options{MinRetrainSamples: 8, EstimateCacheSize: -1})
	// Give the retrainer material so RetrainNow genuinely swaps.
	s.feedback.Add(DefaultModelName, train[:64])

	const estimators = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, estimators)
	for g := 0; g < estimators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(2000 + g))
			for {
				select {
				case <-stop:
					return
				default:
				}
				entry, ok := s.registry.Get(DefaultModelName)
				if !ok {
					continue
				}
				lo := geom.Point{r.Float64() * 0.6, r.Float64() * 0.6}
				hi := geom.Point{lo[0] + 0.4*r.Float64(), lo[1] + 0.4*r.Float64()}
				est := entry.Model.Estimate(geom.Box{Lo: lo, Hi: hi})
				if est < 0 || est > 1 || math.IsNaN(est) {
					select {
					case errc <- fmt.Errorf("estimate out of range: %v (gen %d, source %s)", est, entry.Generation, entry.Source):
					default:
					}
					return
				}
			}
		}(g)
	}

	// Two writers race: online updates and retrain hot-swaps. Readers run
	// until both writers have drained their streams.
	var writers sync.WaitGroup
	writers.Add(2)
	go func() {
		defer writers.Done()
		for _, z := range feedbackStream(3000, 300) {
			s.online.ingest(DefaultModelName, []core.LabeledQuery{z})
		}
	}()
	go func() {
		defer writers.Done()
		for i := 0; i < 6; i++ {
			s.RetrainNow()
			s.feedback.Add(DefaultModelName, train[64+8*i:64+8*(i+1)])
		}
	}()
	writers.Wait()
	close(stop)
	wg.Wait()

	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Final published weights must be a valid distribution.
	entry, _ := s.registry.Get(DefaultModelName)
	hm := entry.Model.(*hist.Model)
	sumW := 0.0
	for j, w := range hm.Weights {
		if w < 0 || math.IsNaN(w) {
			t.Fatalf("final weight %d invalid: %v", j, w)
		}
		sumW += w
	}
	if math.Abs(sumW-1) > 0.05 {
		t.Fatalf("final weights not near-simplex: sum %v", sumW)
	}
	if st := s.online.status(); st.Published == 0 {
		t.Fatalf("race test published nothing: %+v", st)
	}
}

// TestOnlineRuleOption: the multiplicative rule must be honored end to
// end (status reports it; zero-weight buckets stay zero).
func TestOnlineRuleOption(t *testing.T) {
	s, _ := onlineServer(t, Options{OnlineRule: online.RuleMultiplicative, OnlineRate: 0.3})
	if got := s.online.status().Rule; got != "multiplicative" {
		t.Fatalf("status rule %q", got)
	}
	s.online.ingest(DefaultModelName, feedbackStream(8, 10))
	if s.online.status().Published == 0 {
		t.Fatal("multiplicative rule published nothing")
	}
}

// TestRingLostAccounting: drop counts every overwrite; lost counts only
// overwrites of observations no snapshot ever read.
func TestRingLostAccounting(t *testing.T) {
	r := newRing(3)
	q := func(sel float64) core.LabeledQuery {
		return core.LabeledQuery{R: geom.UnitCube(1), Sel: sel}
	}
	for i := 0; i < 3; i++ {
		r.add(q(float64(i)))
	}
	// Overwrite before any snapshot: a real loss.
	r.add(q(3))
	if r.drop != 1 || r.lost != 1 {
		t.Fatalf("pre-snapshot overwrite: drop=%d lost=%d, want 1/1", r.drop, r.lost)
	}
	// A snapshot consumes everything buffered...
	if got := len(r.snapshot()); got != 3 {
		t.Fatalf("snapshot size %d", got)
	}
	// ...so the next three overwrites displace seen observations: dropped
	// but not lost.
	for i := 4; i < 7; i++ {
		r.add(q(float64(i)))
	}
	if r.drop != 4 || r.lost != 1 {
		t.Fatalf("post-snapshot overwrites: drop=%d lost=%d, want 4/1", r.drop, r.lost)
	}
	// The fourth overwrite displaces an unseen observation again.
	r.add(q(7))
	if r.drop != 5 || r.lost != 2 {
		t.Fatalf("second loss: drop=%d lost=%d, want 5/2", r.drop, r.lost)
	}
	// Store-level totals and /statz plumbing.
	fs := newFeedbackStore(2)
	fs.Add("m", []core.LabeledQuery{q(0), q(1), q(2)})
	total, dropped, lost := fs.Totals()
	if total != 3 || dropped != 1 || lost != 1 {
		t.Fatalf("Totals = %d/%d/%d, want 3/1/1", total, dropped, lost)
	}
	if st := fs.status()["m"]; st.Lost != 1 {
		t.Fatalf("status lost = %d, want 1", st.Lost)
	}
}

// TestStatzOnlineBlock: /statz must carry the online block when the
// subsystem is enabled and omit it otherwise.
func TestStatzOnlineBlock(t *testing.T) {
	s, _ := onlineServer(t, Options{})
	s.online.ingest(DefaultModelName, feedbackStream(9, 3))
	var statz struct {
		Online *onlineStatus `json:"online"`
	}
	if code := doJSON(t, s.Handler(), http.MethodGet, "/statz", nil, &statz); code != http.StatusOK {
		t.Fatalf("statz status %d", code)
	}
	if statz.Online == nil || statz.Online.Applied+statz.Online.Skipped != 3 {
		t.Fatalf("statz online block wrong: %+v", statz.Online)
	}

	off := NewServer(Options{})
	var statzOff struct {
		Online *onlineStatus `json:"online"`
	}
	doJSON(t, off.Handler(), http.MethodGet, "/statz", nil, &statzOff)
	if statzOff.Online != nil {
		t.Fatal("statz reports online block with the subsystem disabled")
	}
}
