package serve

import (
	"bufio"
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/wirebin"
)

// benchGridModel mirrors the root package's estPathModel: a k×k grid
// histogram with deterministic simplex weights, so the in-process frame
// benchmark below serves the same model as BenchmarkServeEstimateAlloc
// and the two rows are directly comparable.
func benchGridModel(m int) *hist.Model {
	k := int(math.Round(math.Sqrt(float64(m))))
	if k*k != m {
		panic("benchGridModel: m must be a perfect square")
	}
	buckets := make([]geom.Box, 0, m)
	weights := make([]float64, 0, m)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			buckets = append(buckets, geom.NewBox(
				geom.Point{float64(i) / float64(k), float64(j) / float64(k)},
				geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)},
			))
			w := float64((i*31+j*17)%97 + 1)
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &hist.Model{Buckets: buckets, Weights: weights}
}

// BenchmarkBinFrame is the binary analogue of BenchmarkServeEstimateAlloc:
// the full server-side cost of one estimate frame — frame read, decode,
// registry lookup, estimate through the shared kernel, response encode —
// measured in-process so the comparison against serve_alloc_single (the
// in-process HTTP JSON handler) excludes loopback kernel time both arms
// would pay identically. Same 4096-bucket model, cache disabled.
func BenchmarkBinFrame(b *testing.B) {
	model := benchGridModel(4096)
	core.Accelerate(model)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "bench", model)

	q := geom.NewBox(geom.Point{0.2, 0.3}, geom.Point{0.6, 0.7})
	frame, err := wirebin.AppendEstimateReq(nil, nil, q)
	if err != nil {
		b.Fatal(err)
	}

	st := binStatePool.Get().(*binState)
	st.sc = scratchPool.Get().(*estimateScratch)
	defer func() {
		scratchPool.Put(st.sc)
		st.sc = nil
		binStatePool.Put(st)
	}()

	rd := bytes.NewReader(frame)
	br := bufio.NewReaderSize(rd, 1<<16)

	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd.Reset(frame)
			br.Reset(rd)
			typ, payload, err := wirebin.ReadFrame(br, &st.frame)
			if err != nil {
				b.Fatal(err)
			}
			st.out = st.out[:0]
			s.processBinFrame(st, typ, payload)
			if st.out[4] != wirebin.FrameEstimateResp {
				b.Fatalf("frame answered with %#x", st.out[4])
			}
		}
	})
}
