// Package serve is the online half of the paper's workflow: the offline
// pipeline (selgen → seltrain) learns a selectivity model from query
// feedback, and this package serves it to a query optimizer over HTTP while
// continuing to learn. A registry of named models answers estimate calls
// lock-free via atomically swapped snapshots; observed true selectivities
// stream into a bounded feedback buffer; and a background retrainer
// periodically refits the model on fresh feedback and hot-swaps it in when
// it does not regress — the serve/observe/refit loop that query-driven
// estimators like QuickSel assume around them. Stdlib only.
//
// Endpoints:
//
//	POST /v1/estimate      — selectivity of one query or a batch
//	POST /v1/feedback      — observed (query, selectivity) pairs
//	POST /v1/retrain       — force a retraining pass (operators, tests)
//	PUT  /v1/models/{name} — upload/replace a modelio envelope
//	GET  /v1/models/{name} — download the serving model as an envelope
//	GET  /healthz          — liveness
//	GET  /statz            — counters, latency quantiles, model inventory
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/modelio"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/parallel"
)

// Options tunes the server; zero values take the defaults noted per field.
type Options struct {
	// FeedbackCapacity bounds each model's feedback ring (default 4096).
	FeedbackCapacity int
	// MinRetrainSamples is how much buffered feedback a model needs
	// before the retrainer will refit it (default 32).
	MinRetrainSamples int
	// RetrainInterval is the background refit period (default 15s).
	RetrainInterval time.Duration
	// RetrainTolerance is how much worse (absolute RMS on held-out
	// feedback) a candidate may be and still replace the serving model
	// (default 0: never swap in a regression).
	RetrainTolerance float64
	// MaxBodyBytes caps request bodies (default 64 MiB — model envelopes
	// can be large).
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// EstimateCacheSize bounds the generation-keyed estimate cache
	// (default 4096 entries; negative disables caching).
	EstimateCacheSize int
	// EstimateWorkers is the worker count for batched estimate requests
	// (default 0: the shared pool's default, i.e. GOMAXPROCS unless
	// overridden via parallel.SetDefault).
	EstimateWorkers int
	// Metrics is the observability registry backing GET /metrics and the
	// /statz counters (default: a fresh private registry).
	Metrics *obs.Registry
	// Tracer records request/retrain spans for GET /debug/trace (default:
	// a fresh tracer with obs.DefaultTraceCapacity spans).
	Tracer *obs.Tracer
	// TraceSample sets request-trace sampling: 0 disables (default),
	// 1 traces every request, N traces one request in N.
	TraceSample int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default; profiling endpoints can stall a serving process).
	EnablePprof bool
	// OnlineUpdates enables the internal/online fast path: accepted
	// feedback is folded into the serving model's weights on the request
	// path and published as a copy-on-write registry swap, microseconds
	// after the observation arrives. The background retrainer stays on as
	// the structural fallback. Off by default.
	OnlineUpdates bool
	// OnlineBatchSize is how many accepted observations accumulate before
	// an online update is applied and published (default 1: every
	// observation publishes).
	OnlineBatchSize int
	// OnlineRate is the online learning rate η (default online.DefaultRate).
	OnlineRate float64
	// OnlineRule picks the online update rule (default online.RuleGradient).
	OnlineRule online.Rule
	// Logger receives structured request/retrain logs (default: no
	// logging; cmd/selserve passes a slog.Logger).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.FeedbackCapacity <= 0 {
		o.FeedbackCapacity = 4096
	}
	if o.MinRetrainSamples <= 0 {
		o.MinRetrainSamples = 32
	}
	if o.RetrainInterval <= 0 {
		o.RetrainInterval = 15 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.EstimateCacheSize == 0 {
		o.EstimateCacheSize = 4096
	}
	if o.OnlineBatchSize <= 0 {
		o.OnlineBatchSize = 1
	}
	if o.OnlineRate <= 0 {
		o.OnlineRate = online.DefaultRate
	}
	return o
}

// Server is a concurrent selectivity-estimation service.
type Server struct {
	opts     Options
	registry *Registry
	feedback *feedbackStore
	stats    *statsSet
	estCache *EstimateCache // nil when caching is disabled
	online   *onlineManager // nil when online updates are disabled
	metrics  *obs.Registry
	tracer   *obs.Tracer
	logger   *slog.Logger
	started  time.Time

	// encodeErrs counts response encode/write failures (satisfying the
	// contract that writeJSON never silently discards an error).
	encodeErrs *obs.Counter

	// bin holds the binary-protocol listener's metric handles (see
	// binserver.go); registered unconditionally for stable scrape series.
	bin binStats

	retrainMu    sync.Mutex
	retrainSeen  map[string]int64 // feedback total at last retrain, per model
	retrainRuns  int64
	retrainSwaps int64
	retrainErrs  int64
	retrainErr   string
	lastRetrain  RetrainResult
}

// NewServer builds a server with an empty registry.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	tracer.SetSampling(opts.TraceSample)
	s := &Server{
		opts:        opts,
		registry:    NewRegistry(),
		feedback:    newFeedbackStore(opts.FeedbackCapacity),
		stats:       newStatsSet(reg),
		metrics:     reg,
		tracer:      tracer,
		logger:      opts.Logger,
		started:     time.Now(),
		retrainSeen: make(map[string]int64),
	}
	s.encodeErrs = reg.Counter("selserve_encode_errors_total",
		"Response encode or write failures (client hangups included).")
	if opts.EstimateCacheSize > 0 {
		s.estCache = NewEstimateCache(opts.EstimateCacheSize)
	}
	s.registerMetrics(reg)
	s.registerBinMetrics(reg)
	if opts.OnlineUpdates {
		s.online = newOnlineManager(s)
	}
	return s
}

// registerMetrics bridges the server's pre-existing atomics (cache,
// feedback, retrainer, worker pool) into the obs registry as func-backed
// series, so exposition reads the same counters /statz reports rather
// than maintaining a second accounting path.
func (s *Server) registerMetrics(reg *obs.Registry) {
	reg.GaugeFunc("selserve_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.Gauge("selserve_build_info",
		"Build metadata as labels; the value is always 1.",
		obs.Label{Key: "go_version", Value: runtime.Version()},
		obs.Label{Key: "revision", Value: buildRevision()},
	).Set(1)
	reg.GaugeFunc("selserve_models",
		"Models currently registered.",
		func() float64 { return float64(len(s.registry.Names())) })

	if s.estCache != nil {
		reg.CounterFunc("selserve_estimate_cache_hits_total",
			"Estimate-cache lookups served from cache.",
			func() int64 { return s.estCache.hits.Load() })
		reg.CounterFunc("selserve_estimate_cache_misses_total",
			"Estimate-cache lookups that fell through to the model.",
			func() int64 { return s.estCache.misses.Load() })
		reg.GaugeFunc("selserve_estimate_cache_entries",
			"Entries currently in the estimate cache.",
			func() float64 { return float64(s.estCache.Len()) })
		reg.GaugeFunc("selserve_estimate_cache_capacity",
			"Configured estimate-cache capacity.",
			func() float64 { return float64(s.estCache.cap) })
	}

	reg.CounterFunc("selserve_feedback_observations_total",
		"Feedback observations accepted across all models.",
		func() int64 { total, _, _ := s.feedback.Totals(); return total })
	reg.CounterFunc("selserve_feedback_dropped_total",
		"Feedback observations overwritten by newer ones (any reason).",
		func() int64 { _, dropped, _ := s.feedback.Totals(); return dropped })
	reg.CounterFunc("selserve_feedback_lost_total",
		"Feedback observations overwritten before any retrain snapshot read them.",
		func() int64 { _, _, lost := s.feedback.Totals(); return lost })

	retrainCount := func(read func() int64) func() int64 {
		return func() int64 {
			s.retrainMu.Lock()
			defer s.retrainMu.Unlock()
			return read()
		}
	}
	reg.CounterFunc("selserve_retrain_runs_total",
		"Retrain attempts (swapped or not).",
		retrainCount(func() int64 { return s.retrainRuns }))
	reg.CounterFunc("selserve_retrain_swaps_total",
		"Retrains whose candidate was hot-swapped into serving.",
		retrainCount(func() int64 { return s.retrainSwaps }))
	reg.CounterFunc("selserve_retrain_errors_total",
		"Retrain attempts that failed.",
		retrainCount(func() int64 { return s.retrainErrs }))

	reg.CounterFunc("selserve_pool_regions_total",
		"Parallel regions entered by the shared worker pool.",
		func() int64 { return parallel.ReadStats().Regions })
	reg.CounterFunc("selserve_pool_regions_serial_total",
		"Parallel regions that ran single-threaded.",
		func() int64 { return parallel.ReadStats().Serial })
	reg.CounterFunc("selserve_pool_workers_spawned_total",
		"Extra worker goroutines spawned by the pool.",
		func() int64 { return parallel.ReadStats().Spawned })
	reg.CounterFunc("selserve_pool_saturated_total",
		"Regions that stopped spawning because the pool was saturated.",
		func() int64 { return parallel.ReadStats().Saturated })
}

// buildRevision extracts the VCS revision baked into the binary, or
// "unknown" for builds outside a repository.
func buildRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "unknown"
}

// Metrics exposes the server's observability registry so embedders can
// add their own series or render exposition out-of-band.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer exposes the server's span tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Registry exposes the model registry, e.g. for preloading models from
// disk before serving.
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the HTTP handler with every route instrumented.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("POST /v1/estimate", s.handleEstimate)
	route("POST /v1/estimate/stream", s.handleEstimateStream)
	route("POST /v1/feedback", s.handleFeedback)
	route("POST /v1/retrain", s.handleRetrain)
	route("PUT /v1/models/{name}", s.handlePutModel)
	route("GET /v1/models/{name}", s.handleGetModel)
	route("GET /healthz", s.handleHealthz)
	route("GET /statz", s.handleStatz)
	metricsHandler := s.metrics.Handler()
	route("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	})
	route("GET /debug/trace", s.handleDebugTrace)
	if s.opts.EnablePprof {
		// Explicit mounts (not the package's DefaultServeMux side effect)
		// so profiling is reachable only when the operator asked for it.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleDebugTrace exports the tracer's span ring as Chrome trace-event
// JSON (load in chrome://tracing or https://ui.perfetto.dev).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// A write failure means the client hung up mid-download.
	_ = s.tracer.WriteChromeTrace(w)
}

// Run serves on addr until ctx is cancelled, then drains in-flight
// requests for at most DrainTimeout. The retrainer runs for the same
// lifetime. Run returns nil on a clean drain.
func (s *Server) Run(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve is Run on an existing listener (tests use an ephemeral port).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	retrainCtx, stopRetrain := context.WithCancel(ctx)
	defer stopRetrain()
	go s.retrainLoop(retrainCtx)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		// Best-effort hard stop after a failed graceful drain; the drain
		// error is the one worth reporting.
		_ = hs.Close()
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// DefaultModelName is used when a request omits the model name.
const DefaultModelName = "default"

// ---- wire format ----

// wireQuery is one geometric query in any of the three classes of the
// repository's workloads. Exactly one of the class-specific field groups
// must be present: lo+hi (box), a+b (halfspace), center+radius (ball).
type wireQuery struct {
	Lo     []float64 `json:"lo,omitempty"`
	Hi     []float64 `json:"hi,omitempty"`
	A      []float64 `json:"a,omitempty"`
	B      *float64  `json:"b,omitempty"`
	Center []float64 `json:"center,omitempty"`
	Radius *float64  `json:"radius,omitempty"`
}

func (q wireQuery) toRange() (geom.Range, error) {
	switch {
	case q.Lo != nil || q.Hi != nil:
		if len(q.Lo) == 0 || len(q.Lo) != len(q.Hi) {
			return nil, errBoxDims
		}
		return geom.NewBox(geom.Point(q.Lo), geom.Point(q.Hi)), nil
	case q.A != nil || q.B != nil:
		if len(q.A) == 0 || q.B == nil {
			return nil, errHalfspaceAB
		}
		return geom.NewHalfspace(geom.Point(q.A), *q.B), nil
	case q.Center != nil || q.Radius != nil:
		if len(q.Center) == 0 || q.Radius == nil {
			return nil, errBallCR
		}
		if *q.Radius < 0 {
			return nil, errBallNegative
		}
		return geom.NewBall(geom.Point(q.Center), *q.Radius), nil
	}
	return nil, errNoClass
}

type estimateRequest struct {
	Model   string      `json:"model,omitempty"`
	Query   *wireQuery  `json:"query,omitempty"`
	Queries []wireQuery `json:"queries,omitempty"`
}

type estimateResponse struct {
	Model      string    `json:"model"`
	Generation int64     `json:"generation"`
	Estimate   *float64  `json:"estimate,omitempty"`
	Estimates  []float64 `json:"estimates,omitempty"`
}

type observation struct {
	wireQuery
	Sel *float64 `json:"sel"`
}

type feedbackRequest struct {
	Model        string        `json:"model,omitempty"`
	Observations []observation `json:"observations"`
}

type feedbackResponse struct {
	Model    string `json:"model"`
	Accepted int    `json:"accepted"`
	Dropped  int    `json:"dropped"`
}

type modelStatus struct {
	Name       string    `json:"name"`
	Type       string    `json:"type"`
	Buckets    int       `json:"buckets"`
	Generation int64     `json:"generation"`
	Source     string    `json:"source"`
	LoadedAt   time.Time `json:"loaded_at"`
}

type statzResponse struct {
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Build         buildStatus               `json:"build"`
	Endpoints     map[string]endpointStatus `json:"endpoints"`
	Models        []modelStatus             `json:"models"`
	Feedback      map[string]feedbackStatus `json:"feedback"`
	Retrainer     retrainerStatus           `json:"retrainer"`
	Online        *onlineStatus             `json:"online,omitempty"`
	EstimateCache *estimateCacheStatus      `json:"estimate_cache,omitempty"`
}

// buildStatus identifies the running binary in /statz.
type buildStatus struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision"`
}

type retrainerStatus struct {
	Runs      int64          `json:"runs"`
	Swaps     int64          `json:"swaps"`
	Errors    int64          `json:"errors"`
	LastError string         `json:"last_error,omitempty"`
	Last      *RetrainResult `json:"last,omitempty"`
}

// ---- handlers ----

type apiError struct {
	Error string `json:"error"`
}

// encodeScratch is a pooled encode buffer with its json.Encoder bound
// once, so control-plane responses reuse one buffer instead of allocating
// an encoder per call.
type encodeScratch struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	es := new(encodeScratch)
	es.enc = json.NewEncoder(&es.buf)
	return es
}}

// writeJSON encodes v through a pooled encoder and writes it in one
// Write. Encode failures (a value the encoder rejects) and short writes
// (the client hung up mid-response) are counted in obs and logged instead
// of silently discarded.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	es := encPool.Get().(*encodeScratch)
	es.buf.Reset()
	if err := es.enc.Encode(v); err != nil {
		encPool.Put(es)
		s.encodeFailed("encode", err)
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	if _, err := w.Write(es.buf.Bytes()); err != nil {
		s.encodeFailed("write", err)
	}
	encPool.Put(es)
}

// encodeFailed records one response encode/write failure.
func (s *Server) encodeFailed(stage string, err error) {
	s.encodeErrs.Inc()
	if s.logger != nil {
		s.logger.LogAttrs(context.Background(), slog.LevelWarn, "response encode failed",
			slog.String("stage", stage),
			slog.String("error", err.Error()),
		)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeRaw writes pre-encoded JSON bytes: the zero-allocation counterpart
// of writeJSON for the hand-rolled estimate encoder.
//
//selvet:zeroalloc
func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.encodeFailed("write", err)
	}
}

// decodeBody parses a size-limited JSON request body, rejecting unknown
// fields so client typos fail loudly instead of silently estimating the
// wrong thing.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// readBody slurps the request body into the pooled scratch buffer,
// enforcing MaxBodyBytes by hand — http.MaxBytesReader allocates a
// wrapper per request, which the zero-allocation estimate path cannot
// afford. Returns false after writing the error response.
//
//selvet:zeroalloc
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, sc *estimateScratch) bool {
	if cl := r.ContentLength; cl > s.opts.MaxBodyBytes {
		s.writeError(w, http.StatusBadRequest, "invalid request body: http: request body too large")
		return false
	} else if cl > 0 && int64(cap(sc.body)) < cl {
		sc.body = make([]byte, 0, cl)
	}
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			// Grow via append, keeping the doubled capacity pooled.
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Body.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if int64(len(sc.body)) > s.opts.MaxBodyBytes {
			s.writeError(w, http.StatusBadRequest, "invalid request body: http: request body too large")
			return false
		}
		if err == io.EOF {
			return true
		}
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "read request body: %v", err)
			return false
		}
	}
}

func modelName(name string) string {
	if name == "" {
		return DefaultModelName
	}
	return name
}

// estimateScratch is the per-request working set of the estimate hot
// path. Requests check one out of scratchPool, so steady-state serving
// reuses the same slices and encode buffer instead of allocating per
// request; every slot is (re)assigned before use, so nothing leaks
// between requests.
type estimateScratch struct {
	// decode state (see wire.go)
	body   []byte           // raw request bytes
	name   []byte           // parsed model name
	strbuf []byte           // escape-decoding scratch
	coords []float64        // arena backing every parsed coordinate slice
	boxes  []geom.Box       // parsed concrete geometry, pointed to by ranges
	halfs  []geom.Halfspace //
	balls  []geom.Ball      //
	qerrs  []error          // per-query validation error, nil when valid
	ranges []geom.Range     // one per query, nil when invalid

	// estimate + encode state
	keys   []string
	miss   []int
	missRg []geom.Range
	missV  []float64
	ests   []float64
	bad    []string
	out    []byte // hand-rolled response bytes
}

var scratchPool = sync.Pool{New: func() any { return new(estimateScratch) }}

// grow reslices *s to n elements, reallocating only when the pooled
// capacity is too small. Stale values from a previous request may remain
// until overwritten — callers assign every slot they read.
//
//selvet:zeroalloc
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

//selvet:zeroalloc
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	sc := scratchPool.Get().(*estimateScratch)
	defer scratchPool.Put(sc)
	if !s.readBody(w, r, sc) {
		return
	}
	sc.resetWire()
	single, nQueries, perr := parseEstimateRequest(sc)
	if perr != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: %v", perr)
		return
	}
	if single && nQueries > 0 {
		s.writeError(w, http.StatusBadRequest, "specify either query or queries, not both")
		return
	}
	ranges := sc.ranges
	if len(ranges) == 0 {
		s.writeError(w, http.StatusBadRequest, "no queries given")
		return
	}
	nameBytes := sc.nameOrDefault()
	entry, ok := s.registry.GetBytes(nameBytes)
	if !ok {
		s.writeError(w, http.StatusNotFound, "model %q not registered", string(nameBytes))
		return
	}
	dim, _ := modelDim(entry.Model)

	bad := sc.bad[:0]
	for i, q := range ranges {
		err := sc.qerrs[i]
		if err == nil && dim > 0 && q.Dim() != dim {
			//selvet:ignore zeroalloc malformed queries take the 400 path; well-formed requests never reach this line
			err = fmt.Errorf("dimension %d, model %q has dimension %d", q.Dim(), string(nameBytes), dim)
		}
		if err != nil {
			//selvet:ignore zeroalloc error-message formatting for the 400 response only; the happy path keeps bad empty
			bad = append(bad, fmt.Sprintf("query %d: %v", i, err))
		}
	}
	sc.bad = bad
	if len(bad) > 0 {
		// Report every malformed query at once so a client can fix the
		// whole batch in one round trip.
		s.writeError(w, http.StatusBadRequest, "%d of %d queries invalid: %s",
			len(bad), len(ranges), strings.Join(bad, "; "))
		return
	}

	// The cache keys by model-name string; convert only when it is on.
	name := ""
	if s.estCache != nil {
		//selvet:ignore zeroalloc the estimate cache keys by string; opting into caching buys this one conversion
		name = string(nameBytes)
	}
	ests := grow(&sc.ests, len(ranges))
	s.estimateBatch(name, entry, ranges, ests, sc, obs.SpanFromContext(r.Context()))

	sc.out = appendEstimateResponse(sc.out[:0], nameBytes, entry.Generation, ests, single)
	s.writeRaw(w, http.StatusOK, sc.out)
}

// estimateBatch fills ests[i] for every range, serving what it can from
// the generation-keyed cache and evaluating the misses as one batch on
// the shared deterministic kernel (core.EstimateRangesInto). Results are
// index-addressed throughout, so the output is byte-identical for any
// worker count. When sp is an active trace span, the cache scan and the
// kernel fan-out appear as its children; for the untraced common case
// every span call is an inert value-copy.
//
//selvet:zeroalloc
func (s *Server) estimateBatch(name string, entry *Entry, ranges []geom.Range, ests []float64, sc *estimateScratch, sp obs.Span) {
	if s.estCache == nil {
		core.EstimateRangesTraced(entry.Model, ranges, s.opts.EstimateWorkers, ests, sp)
		return
	}
	lookup := sp.Child("serve.cache_lookup")
	keys := grow(&sc.keys, len(ranges))
	miss := sc.miss[:0]
	missRg := sc.missRg[:0]
	for i, q := range ranges {
		keys[i] = ""
		if k, ok := QueryKey(q); ok {
			keys[i] = k
			if v, hit := s.estCache.Get(name, entry.Generation, k); hit {
				ests[i] = v
				continue
			}
		}
		miss = append(miss, i)
		missRg = append(missRg, q)
	}
	lookup.Items = int64(len(ranges) - len(miss)) // cache hits
	lookup.End()
	sc.miss, sc.missRg = miss, missRg
	if len(miss) == 0 {
		return
	}
	missV := grow(&sc.missV, len(miss))
	core.EstimateRangesTraced(entry.Model, missRg, s.opts.EstimateWorkers, missV, sp)
	for k, i := range miss {
		ests[i] = missV[k]
		if keys[i] != "" {
			s.estCache.Put(name, entry.Generation, keys[i], missV[k])
		}
	}
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	var req feedbackRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Observations) == 0 {
		s.writeError(w, http.StatusBadRequest, "no observations given")
		return
	}
	name := modelName(req.Model)
	if _, ok := s.registry.Get(name); !ok {
		s.writeError(w, http.StatusNotFound, "model %q not registered", name)
		return
	}
	obs := make([]core.LabeledQuery, len(req.Observations))
	for i, o := range req.Observations {
		q, err := o.toRange()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "observation %d: %v", i, err)
			return
		}
		if o.Sel == nil || *o.Sel < 0 || *o.Sel > 1 {
			s.writeError(w, http.StatusBadRequest, "observation %d: sel must be in [0,1]", i)
			return
		}
		obs[i] = core.LabeledQuery{R: q, Sel: *o.Sel}
	}
	dropped := s.feedback.Add(name, obs)
	if s.online != nil {
		// Fast path: fold the observations into the serving weights now.
		// The ring keeps its copy regardless — structural refreshes still
		// come from the background retrainer.
		s.online.ingest(name, obs)
	}
	s.writeJSON(w, http.StatusOK, feedbackResponse{Model: name, Accepted: len(obs), Dropped: dropped})
}

func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	results := s.RetrainNow()
	if results == nil {
		results = []RetrainResult{}
	}
	s.writeJSON(w, http.StatusOK, results)
}

func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	publish := obs.SpanFromContext(r.Context()).Child("serve.publish_model")
	m, err := modelio.LoadAny(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		publish.End()
		// Bad bytes are the client's fault; anything else is ours.
		status := http.StatusInternalServerError
		if errors.Is(err, modelio.ErrMalformed) ||
			errors.Is(err, modelio.ErrUnknownVersion) ||
			errors.Is(err, modelio.ErrUnknownType) ||
			errors.Is(err, modelio.ErrInvalidModel) {
			status = http.StatusBadRequest
		}
		s.writeError(w, status, "load model: %v", err)
		return
	}
	entry := s.registry.Set(name, "upload", m)
	publish.Items = int64(m.NumBuckets())
	publish.End()
	s.writeJSON(w, http.StatusOK, modelStatus{
		Name:       name,
		Type:       modelTypeName(m),
		Buckets:    m.NumBuckets(),
		Generation: entry.Generation,
		Source:     entry.Source,
		LoadedAt:   entry.LoadedAt,
	})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.registry.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "model %q not registered", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := modelio.Save(w, entry.Model); err != nil {
		// Headers are gone; all we can do is log via the status recorder.
		s.writeError(w, http.StatusInternalServerError, "save model: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	models := make([]modelStatus, 0)
	for _, name := range s.registry.Names() {
		entry, ok := s.registry.Get(name)
		if !ok {
			continue
		}
		models = append(models, modelStatus{
			Name:       name,
			Type:       modelTypeName(entry.Model),
			Buckets:    entry.Model.NumBuckets(),
			Generation: entry.Generation,
			Source:     entry.Source,
			LoadedAt:   entry.LoadedAt,
		})
	}
	s.retrainMu.Lock()
	rt := retrainerStatus{Runs: s.retrainRuns, Swaps: s.retrainSwaps, Errors: s.retrainErrs, LastError: s.retrainErr}
	if s.retrainRuns > 0 {
		last := s.lastRetrain
		rt.Last = &last
	}
	s.retrainMu.Unlock()
	resp := statzResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Build:         buildStatus{GoVersion: runtime.Version(), Revision: buildRevision()},
		Endpoints:     s.stats.status(),
		Models:        models,
		Feedback:      s.feedback.status(),
		Retrainer:     rt,
	}
	if s.online != nil {
		ol := s.online.status()
		resp.Online = &ol
	}
	if s.estCache != nil {
		ec := s.estCache.status()
		resp.EstimateCache = &ec
	}
	s.writeJSON(w, http.StatusOK, resp)
}
