package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"unicode/utf16"
	"unicode/utf8"
	"unsafe"

	"repro/internal/geom"
)

// This file is the zero-allocation JSON wire codec for the estimate hot
// path. encoding/json allocates per request (decoder state, field maps,
// one slice per coordinate array, reflect-driven encoding); at the
// measured serve throughput that garbage dominates the envelope cost.
// The codec here parses the estimate request grammar by hand into pooled
// arenas owned by estimateScratch and renders responses with append-style
// writers, so a steady-state single-estimate request performs no heap
// allocation at all (gated by TestEstimateHandlerZeroAlloc and
// scripts/verify.sh).
//
// Scope: only the estimate request/response grammar lives here. The
// feedback path keeps encoding/json because its observations outlive the
// request (the feedback ring retains them), so they must be deep-copied
// anyway; control-plane endpoints are not hot.

// Shared header values assigned with a map store rather than Header.Set,
// which allocates a fresh one-element slice per call.
var (
	jsonContentType   = []string{"application/json"}
	ndjsonContentType = []string{"application/x-ndjson"}
)

// defaultModelBytes is DefaultModelName for byte-oriented name handling.
var defaultModelBytes = []byte(DefaultModelName)

// Per-query validation errors, shared with wireQuery.toRange so both
// decode paths report identical messages.
var (
	errBoxDims      = errors.New("box query needs lo and hi of equal positive dimension")
	errHalfspaceAB  = errors.New("halfspace query needs a and b")
	errBallCR       = errors.New("ball query needs center and radius")
	errBallNegative = errors.New("ball query needs a non-negative radius")
	errNoClass      = errors.New("query must specify lo/hi, a/b, or center/radius")
)

// bstr views b as a string without copying. The result aliases b and must
// not outlive it; use only for transient strconv/map-lookup calls.
//
//selvet:zeroalloc
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// ---- decoding ----

// queryParts is one wire query mid-parse: raw field groups plus presence
// flags. Presence (not emptiness) drives class selection, mirroring the
// encoding/json nil-vs-empty semantics of wireQuery.
type queryParts struct {
	lo, hi, a, center geom.Point
	b, radius         float64
	hasLo, hasHi      bool
	hasA, hasB        bool
	hasCenter         bool
	hasRadius         bool
}

// build validates the parts and appends the resulting concrete geometry
// to the scratch arenas, returning a pointer into them. Pointers keep the
// geom.Range interface value allocation-free (a *geom.Box fits the
// interface word; the value-receiver method set carries over). Arena
// growth may relocate the backing array, but previously returned pointers
// keep addressing the old block, which remains valid for the request.
//
//selvet:zeroalloc
func (qp *queryParts) build(sc *estimateScratch) (geom.Range, error) {
	switch {
	case qp.hasLo || qp.hasHi:
		if len(qp.lo) == 0 || len(qp.lo) != len(qp.hi) {
			return nil, errBoxDims
		}
		sc.boxes = append(sc.boxes, geom.Box{Lo: qp.lo, Hi: qp.hi})
		return &sc.boxes[len(sc.boxes)-1], nil
	case qp.hasA || qp.hasB:
		if len(qp.a) == 0 || !qp.hasB {
			return nil, errHalfspaceAB
		}
		sc.halfs = append(sc.halfs, geom.Halfspace{A: qp.a, B: qp.b})
		return &sc.halfs[len(sc.halfs)-1], nil
	case qp.hasCenter || qp.hasRadius:
		if len(qp.center) == 0 || !qp.hasRadius {
			return nil, errBallCR
		}
		if qp.radius < 0 {
			return nil, errBallNegative
		}
		sc.balls = append(sc.balls, geom.Ball{Center: qp.center, Radius: qp.radius})
		return &sc.balls[len(sc.balls)-1], nil
	}
	return nil, errNoClass
}

// wireParser scans one JSON document in place. Syntax errors and unknown
// fields are returned as errors (the transport-level "invalid request
// body" class); per-query semantic errors land in estimateScratch.qerrs
// so the handler can report every bad query in one response, exactly like
// the encoding/json path did.
type wireParser struct {
	b  []byte
	i  int
	sc *estimateScratch
}

var errUnterminated = errors.New("unexpected end of request body")

//selvet:zeroalloc
func (p *wireParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

//selvet:zeroalloc
func (p *wireParser) expect(c byte) error {
	p.ws()
	if p.i >= len(p.b) {
		return errUnterminated
	}
	if p.b[p.i] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.i)
	}
	p.i++
	return nil
}

// tryNull consumes a JSON null if one is next. A null field is treated as
// absent, matching encoding/json decoding into omitempty pointers/slices.
//
//selvet:zeroalloc
func (p *wireParser) tryNull() bool {
	p.ws()
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// parseString decodes a JSON string. The fast path (no escapes) returns a
// window into the input; escaped strings decode into the scratch buffer.
// Either way the result is transient: callers copy what they keep.
//
//selvet:zeroalloc
func (p *wireParser) parseString() ([]byte, error) {
	p.ws()
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return nil, fmt.Errorf("expected string at offset %d", p.i)
	}
	p.i++
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, nil
		}
		if c == '\\' {
			return p.parseStringSlow(start)
		}
		if c < 0x20 {
			return nil, fmt.Errorf("invalid control character in string at offset %d", p.i)
		}
		p.i++
	}
	return nil, errUnterminated
}

//selvet:zeroalloc
func (p *wireParser) parseStringSlow(start int) ([]byte, error) {
	buf := append(p.sc.strbuf[:0], p.b[start:p.i]...)
	//selvet:ignore zeroalloc one closure on the escaped-string slow path keeps the grown buffer pooled; unescaped strings never reach it
	defer func() { p.sc.strbuf = buf[:0] }() // keep grown capacity pooled
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return buf, nil
		case c == '\\':
			p.i++
			if p.i >= len(p.b) {
				return nil, errUnterminated
			}
			switch e := p.b[p.i]; e {
			case '"', '\\', '/':
				buf = append(buf, e)
			case 'b':
				buf = append(buf, '\b')
			case 'f':
				buf = append(buf, '\f')
			case 'n':
				buf = append(buf, '\n')
			case 'r':
				buf = append(buf, '\r')
			case 't':
				buf = append(buf, '\t')
			case 'u':
				if p.i+4 >= len(p.b) {
					return nil, errUnterminated
				}
				v, err := strconv.ParseUint(bstr(p.b[p.i+1:p.i+5]), 16, 32)
				if err != nil {
					return nil, fmt.Errorf("invalid \\u escape at offset %d", p.i-1)
				}
				r := rune(v)
				p.i += 4
				if utf16.IsSurrogate(r) {
					// Combine a valid high/low pair into one rune, exactly
					// as encoding/json does; an unpaired half encodes as
					// U+FFFD (utf8.AppendRune substitutes it on its own).
					if r2 := p.lookaheadU(); r2 >= 0 {
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							r = dec
							p.i += 6
						}
					}
				}
				buf = utf8.AppendRune(buf, r)
			default:
				return nil, fmt.Errorf("invalid escape \\%s at offset %d", string(e), p.i-1)
			}
			p.i++
		case c < 0x20:
			return nil, fmt.Errorf("invalid control character in string at offset %d", p.i)
		default:
			buf = append(buf, c)
			p.i++
		}
	}
	return nil, errUnterminated
}

// lookaheadU returns the code unit of a \uXXXX escape starting directly
// after the current position (p.i on the last consumed digit), or -1
// when the next bytes are not a well-formed \u escape.
//
//selvet:zeroalloc
func (p *wireParser) lookaheadU() rune {
	if p.i+7 > len(p.b) || p.b[p.i+1] != '\\' || p.b[p.i+2] != 'u' {
		return -1
	}
	v, err := strconv.ParseUint(bstr(p.b[p.i+3:p.i+7]), 16, 32)
	if err != nil {
		return -1
	}
	return rune(v)
}

//selvet:zeroalloc
func (p *wireParser) parseFloat() (float64, error) {
	p.ws()
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.i++
			continue
		}
		break
	}
	if p.i == start {
		return 0, fmt.Errorf("expected number at offset %d", start)
	}
	v, err := strconv.ParseFloat(bstr(p.b[start:p.i]), 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number at offset %d", start)
	}
	return v, nil
}

// parseFloatArray parses a JSON number array by appending to the shared
// coordinate arena and returns the element count. The caller slices the
// window off the arena tail immediately; growth during later arrays may
// relocate the arena, but earlier windows keep addressing the old block.
//
//selvet:zeroalloc
func (p *wireParser) parseFloatArray() (int, error) {
	if err := p.expect('['); err != nil {
		return 0, err
	}
	start := len(p.sc.coords)
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
		return 0, nil
	}
	for {
		v, err := p.parseFloat()
		if err != nil {
			return 0, err
		}
		p.sc.coords = append(p.sc.coords, v)
		p.ws()
		if p.i >= len(p.b) {
			return 0, errUnterminated
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case ']':
			p.i++
			return len(p.sc.coords) - start, nil
		default:
			return 0, fmt.Errorf("expected ',' or ']' at offset %d", p.i)
		}
	}
}

// parseOptArray parses a number array (or null) into the arena and
// records the window and presence flag.
//
//selvet:zeroalloc
func (p *wireParser) parseOptArray(dst *geom.Point, has *bool) error {
	if p.tryNull() {
		return nil
	}
	n, err := p.parseFloatArray()
	if err != nil {
		return err
	}
	*dst = geom.Point(p.sc.coords[len(p.sc.coords)-n:])
	*has = true
	return nil
}

// parseOptFloat parses a number (or null) and records presence.
//
//selvet:zeroalloc
func (p *wireParser) parseOptFloat(dst *float64, has *bool) error {
	if p.tryNull() {
		return nil
	}
	v, err := p.parseFloat()
	if err != nil {
		return err
	}
	*dst = v
	*has = true
	return nil
}

// parseQueryObject parses one wire query object into qp. Unknown fields
// are rejected, mirroring decodeBody's DisallowUnknownFields.
//
//selvet:zeroalloc
func (p *wireParser) parseQueryObject(qp *queryParts) error {
	*qp = queryParts{}
	if err := p.expect('{'); err != nil {
		return err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		p.i++
		return nil
	}
	for {
		key, err := p.parseString()
		if err != nil {
			return err
		}
		if err := p.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "lo":
			err = p.parseOptArray(&qp.lo, &qp.hasLo)
		case "hi":
			err = p.parseOptArray(&qp.hi, &qp.hasHi)
		case "a":
			err = p.parseOptArray(&qp.a, &qp.hasA)
		case "b":
			err = p.parseOptFloat(&qp.b, &qp.hasB)
		case "center":
			err = p.parseOptArray(&qp.center, &qp.hasCenter)
		case "radius":
			err = p.parseOptFloat(&qp.radius, &qp.hasRadius)
		default:
			return fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return err
		}
		p.ws()
		if p.i >= len(p.b) {
			return errUnterminated
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case '}':
			p.i++
			return nil
		default:
			return fmt.Errorf("expected ',' or '}' at offset %d", p.i)
		}
	}
}

// parseQuery parses one query object and appends its range (or nil plus
// the semantic error) to the scratch, keeping indexes aligned with the
// request order.
//
//selvet:zeroalloc
func (p *wireParser) parseQuery(qp *queryParts) error {
	if err := p.parseQueryObject(qp); err != nil {
		return err
	}
	r, verr := qp.build(p.sc)
	p.sc.ranges = append(p.sc.ranges, r) // nil when verr != nil
	p.sc.qerrs = append(p.sc.qerrs, verr)
	return nil
}

// parseEstimateRequest parses the whole estimate request body from
// sc.body. On return sc.name holds the raw model name (empty when
// omitted), sc.ranges/sc.qerrs hold one entry per query in request order,
// and the flags report which request forms appeared. A non-nil error is a
// transport-level decode failure ("invalid request body"); per-query
// validation problems are in sc.qerrs instead.
//
//selvet:zeroalloc
func parseEstimateRequest(sc *estimateScratch) (hasQuery bool, nQueries int, err error) {
	p := wireParser{b: sc.body, sc: sc}
	var qp queryParts
	if err := p.expect('{'); err != nil {
		return false, 0, err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == '}' {
		return false, 0, nil
	}
	for {
		key, err := p.parseString()
		if err != nil {
			return hasQuery, nQueries, err
		}
		if err := p.expect(':'); err != nil {
			return hasQuery, nQueries, err
		}
		switch string(key) {
		case "model":
			if !p.tryNull() {
				name, err := p.parseString()
				if err != nil {
					return hasQuery, nQueries, err
				}
				sc.name = append(sc.name[:0], name...)
			}
		case "query":
			if !p.tryNull() {
				if err := p.parseQuery(&qp); err != nil {
					return hasQuery, nQueries, err
				}
				hasQuery = true
			}
		case "queries":
			if !p.tryNull() {
				n, err := p.parseQueryArray(&qp)
				if err != nil {
					return hasQuery, nQueries, err
				}
				nQueries += n
			}
		default:
			return hasQuery, nQueries, fmt.Errorf("unknown field %q", key)
		}
		p.ws()
		if p.i >= len(p.b) {
			return hasQuery, nQueries, errUnterminated
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case '}':
			return hasQuery, nQueries, nil
		default:
			return hasQuery, nQueries, fmt.Errorf("expected ',' or '}' at offset %d", p.i)
		}
	}
}

//selvet:zeroalloc
func (p *wireParser) parseQueryArray(qp *queryParts) (int, error) {
	if err := p.expect('['); err != nil {
		return 0, err
	}
	p.ws()
	if p.i < len(p.b) && p.b[p.i] == ']' {
		p.i++
		return 0, nil
	}
	n := 0
	for {
		if err := p.parseQuery(qp); err != nil {
			return n, err
		}
		n++
		p.ws()
		if p.i >= len(p.b) {
			return n, errUnterminated
		}
		switch p.b[p.i] {
		case ',':
			p.i++
		case ']':
			p.i++
			return n, nil
		default:
			return n, fmt.Errorf("expected ',' or ']' at offset %d", p.i)
		}
	}
}

// resetWire clears the per-request decode state while keeping every
// pooled capacity.
//
//selvet:zeroalloc
func (sc *estimateScratch) resetWire() {
	sc.name = sc.name[:0]
	sc.coords = sc.coords[:0]
	sc.boxes = sc.boxes[:0]
	sc.halfs = sc.halfs[:0]
	sc.balls = sc.balls[:0]
	sc.ranges = sc.ranges[:0]
	sc.qerrs = sc.qerrs[:0]
}

// nameOrDefault returns the parsed model name, defaulting like modelName.
//
//selvet:zeroalloc
func (sc *estimateScratch) nameOrDefault() []byte {
	if len(sc.name) == 0 {
		return defaultModelBytes
	}
	return sc.name
}

// ---- encoding ----

// appendJSONFloat renders a float64 the way encoding/json does ('f' for
// ordinary magnitudes, 'e' with a trimmed exponent otherwise), so the
// hand-rolled encoder is byte-compatible with the old reflect-based one.
//
//selvet:zeroalloc
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// Estimates are clamped to [0,1]; this matches encoding/json's
		// refusal to emit non-finite numbers without aborting the response.
		return append(dst, '0')
	}
	format := byte('f')
	if abs := math.Abs(f); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9" like encoding/json.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString renders s as a JSON string with the escapes required
// by the grammar; multi-byte UTF-8 passes through unescaped.
//
//selvet:zeroalloc
func appendJSONString(dst []byte, s []byte) []byte {
	const hexdigits = "0123456789abcdef"
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c >= 0x20:
			dst = append(dst, c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c == '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexdigits[c>>4], hexdigits[c&0xf])
		}
	}
	return append(dst, '"')
}

// appendEstimateResponse renders the estimate response (single or batch)
// exactly as encoding/json rendered estimateResponse, trailing newline
// included.
//
//selvet:zeroalloc
func appendEstimateResponse(dst []byte, name []byte, generation int64, ests []float64, single bool) []byte {
	dst = append(dst, `{"model":`...)
	dst = appendJSONString(dst, name)
	dst = append(dst, `,"generation":`...)
	dst = strconv.AppendInt(dst, generation, 10)
	if single {
		dst = append(dst, `,"estimate":`...)
		dst = appendJSONFloat(dst, ests[0])
	} else {
		dst = append(dst, `,"estimates":[`...)
		for i, v := range ests {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONFloat(dst, v)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}', '\n')
}
