package serve

import (
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// endpointStats holds one route's metric handles. Counters and the latency
// histogram live in the server's obs.Registry, so the same numbers back
// both /statz (JSON summary) and /metrics (Prometheus exposition) — one
// source of truth instead of two accounting paths.
type endpointStats struct {
	requests  *obs.Counter
	errors4xx *obs.Counter
	errors5xx *obs.Counter
	latency   *obs.Histogram // seconds
	inflight  atomic.Int64   // requests currently inside the handler
	spanName  string         // precomputed so tracing never formats per request
}

func (e *endpointStats) record(d time.Duration, status int) {
	e.requests.Inc()
	switch {
	case status >= 500:
		e.errors5xx.Inc()
	case status >= 400:
		e.errors4xx.Inc()
	}
	e.latency.Observe(d.Seconds())
}

// latencySummary is the quantile block of one /statz endpoint row. Field
// names predate the obs registry and are kept stable for dashboards;
// values now come from the log-bucketed histogram (quantiles exact to
// within one bucket, max exact) instead of a 1024-entry sliding window —
// so they summarize the full uptime, not just recent traffic.
type latencySummary struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
}

// endpointStatus is one /statz endpoint row.
type endpointStatus struct {
	Requests  int64           `json:"requests"`
	Errors4xx int64           `json:"errors_4xx"`
	Errors5xx int64           `json:"errors_5xx"`
	Latency   *latencySummary `json:"latency,omitempty"`
}

func (e *endpointStats) status() endpointStatus {
	st := endpointStatus{
		Requests:  e.requests.Value(),
		Errors4xx: e.errors4xx.Value(),
		Errors5xx: e.errors5xx.Value(),
	}
	if e.latency.Count() > 0 {
		const toMS = 1e3 // histogram records seconds; /statz reports ms
		st.Latency = &latencySummary{
			P50:  e.latency.Quantile(0.50) * toMS,
			P95:  e.latency.Quantile(0.95) * toMS,
			P99:  e.latency.Quantile(0.99) * toMS,
			P999: e.latency.Quantile(0.999) * toMS,
			Max:  e.latency.Max() * toMS,
		}
	}
	return st
}

// statsSet lazily registers the per-route metric handles, keyed by the
// route pattern.
type statsSet struct {
	reg    *obs.Registry
	mu     sync.Mutex
	routes map[string]*endpointStats
}

func newStatsSet(reg *obs.Registry) *statsSet {
	return &statsSet{reg: reg, routes: make(map[string]*endpointStats)}
}

func (s *statsSet) route(pattern string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.routes[pattern]
	if !ok {
		rl := obs.Label{Key: "route", Value: pattern}
		e = &endpointStats{
			requests: s.reg.Counter("selserve_http_requests_total",
				"HTTP requests served, by route.", rl),
			errors4xx: s.reg.Counter("selserve_http_errors_total",
				"HTTP error responses, by class and route.",
				obs.Label{Key: "class", Value: "4xx"}, rl),
			errors5xx: s.reg.Counter("selserve_http_errors_total",
				"HTTP error responses, by class and route.",
				obs.Label{Key: "class", Value: "5xx"}, rl),
			latency: s.reg.Histogram("selserve_http_request_seconds",
				"HTTP request latency in seconds, by route.", nil, rl),
			spanName: "http " + pattern,
		}
		// Func-backed so the scrape reads the live atomic: a load-harness
		// scrape mid-run sees how deep each route's concurrency actually got.
		s.reg.GaugeFunc("selserve_http_inflight",
			"Requests currently being handled, by route.",
			func() float64 { return float64(e.inflight.Load()) }, rl)
		s.routes[pattern] = e
	}
	return e
}

func (s *statsSet) status() map[string]endpointStatus {
	s.mu.Lock()
	routes := make(map[string]*endpointStats, len(s.routes))
	for k, v := range s.routes {
		routes[k] = v
	}
	s.mu.Unlock()
	out := make(map[string]endpointStatus, len(routes))
	for k, v := range routes {
		out[k] = v.status()
	}
	return out
}

// statusRecorder captures the response code for the stats middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes to the underlying writer when it
// supports them, so wrapping a handler in the middleware never silently
// buffers a response the handler meant to stream.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers optional interfaces (deadlines, hijacking) by unwrapping.
func (w *statusRecorder) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// recorderPool recycles statusRecorders: the middleware wraps every
// request, so a per-request allocation here would alone break the
// zero-allocation estimate-path gate.
var recorderPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// instrument wraps a handler with request counting, latency capture, trace
// span creation, and 5xx structured logging for its route pattern.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	es := s.stats.route(pattern)
	//selvet:zeroalloc
	return func(w http.ResponseWriter, r *http.Request) {
		rec := recorderPool.Get().(*statusRecorder)
		rec.ResponseWriter, rec.status = w, http.StatusOK
		sp := s.tracer.StartRoot(es.spanName)
		if sp.Active() {
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		es.inflight.Add(1)
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		es.inflight.Add(-1)
		sp.End()
		es.record(d, rec.status)
		if rec.status >= 500 && s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelError, "request failed",
				slog.String("route", pattern),
				slog.Int("status", rec.status),
				slog.Duration("duration", d),
				slog.Uint64("trace_id", sp.TraceID()),
			)
		}
		rec.ResponseWriter = nil // handlers never retain the recorder
		recorderPool.Put(rec)
	}
}
