package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// latencyWindow is how many recent request latencies each endpoint keeps
// for the /statz quantiles — a sliding window, not a full history, so
// memory stays bounded under sustained traffic.
const latencyWindow = 1024

// endpointStats accumulates counters and a latency window for one route.
// Counters are atomics so the hot path never contends; only the latency
// ring takes a (short) lock.
type endpointStats struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64

	mu   sync.Mutex
	lat  [latencyWindow]float64 // milliseconds
	n    int                    // filled entries
	next int                    // ring cursor
}

func (e *endpointStats) record(d time.Duration, status int) {
	e.requests.Add(1)
	switch {
	case status >= 500:
		e.errors5xx.Add(1)
	case status >= 400:
		e.errors4xx.Add(1)
	}
	ms := float64(d) / float64(time.Millisecond)
	e.mu.Lock()
	e.lat[e.next] = ms
	e.next = (e.next + 1) % latencyWindow
	if e.n < latencyWindow {
		e.n++
	}
	e.mu.Unlock()
}

// latencySummary is the quantile block of one /statz endpoint row.
type latencySummary struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// endpointStatus is one /statz endpoint row.
type endpointStatus struct {
	Requests  int64           `json:"requests"`
	Errors4xx int64           `json:"errors_4xx"`
	Errors5xx int64           `json:"errors_5xx"`
	Latency   *latencySummary `json:"latency,omitempty"`
}

func (e *endpointStats) status() endpointStatus {
	st := endpointStatus{
		Requests:  e.requests.Load(),
		Errors4xx: e.errors4xx.Load(),
		Errors5xx: e.errors5xx.Load(),
	}
	e.mu.Lock()
	window := make([]float64, e.n)
	if e.n == latencyWindow {
		copy(window, e.lat[:])
	} else {
		copy(window, e.lat[:e.n])
	}
	e.mu.Unlock()
	if len(window) > 0 {
		st.Latency = &latencySummary{
			P50: metrics.Quantile(window, 0.50),
			P95: metrics.Quantile(window, 0.95),
			P99: metrics.Quantile(window, 0.99),
			Max: metrics.Quantile(window, 1.00),
		}
	}
	return st
}

// statsSet holds the per-route stats, keyed by the route pattern.
type statsSet struct {
	mu     sync.Mutex
	routes map[string]*endpointStats
}

func newStatsSet() *statsSet {
	return &statsSet{routes: make(map[string]*endpointStats)}
}

func (s *statsSet) route(pattern string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.routes[pattern]
	if !ok {
		e = &endpointStats{}
		s.routes[pattern] = e
	}
	return e
}

func (s *statsSet) status() map[string]endpointStatus {
	s.mu.Lock()
	routes := make(map[string]*endpointStats, len(s.routes))
	for k, v := range s.routes {
		routes[k] = v
	}
	s.mu.Unlock()
	out := make(map[string]endpointStatus, len(routes))
	for k, v := range routes {
		out[k] = v.status()
	}
	return out
}

// statusRecorder captures the response code for the stats middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting and latency capture for
// its route pattern.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	es := s.stats.route(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		es.record(time.Since(start), rec.status)
	}
}
