package serve

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ring is a bounded FIFO of labeled queries with drop-oldest backpressure:
// when feedback arrives faster than the retrainer consumes it, the oldest
// observations are overwritten — fresh feedback is worth more than stale.
type ring struct {
	buf   []core.LabeledQuery
	head  int // index of the oldest element
	size  int
	total int64 // observations ever added
	drop  int64 // observations overwritten by newer ones (any reason)
	seen  int64 // total at the last snapshot: observations a consumer has read
	lost  int64 // observations overwritten before ANY snapshot read them
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]core.LabeledQuery, capacity)}
}

// add appends one observation, overwriting the oldest when full. Beyond
// the plain drop count, it tracks observations actually LOST: overwritten
// before any snapshot (retrain pass) read them. An overwrite after a
// snapshot has consumed the element is benign — the signal reached the
// retrainer — so drop and lost can legitimately diverge, and lost is the
// number that means feedback silently vanished.
func (r *ring) add(z core.LabeledQuery) (dropped bool) {
	if len(r.buf) == 0 {
		r.drop++
		r.lost++
		r.total++
		return true
	}
	if r.size == len(r.buf) {
		// Sequence number of the element being overwritten: elements are
		// numbered 0..total-1 in arrival order, and the buffer holds the
		// last size of them, so the oldest buffered one is total−size.
		if oldestSeq := r.total - int64(r.size); oldestSeq >= r.seen {
			r.lost++
		}
		r.buf[r.head] = z
		r.head = (r.head + 1) % len(r.buf)
		r.drop++
		dropped = true
	} else {
		r.buf[(r.head+r.size)%len(r.buf)] = z
		r.size++
	}
	r.total++
	return dropped
}

// snapshot copies the buffered observations in arrival order and marks
// them seen: everything buffered now has reached a consumer, so its later
// overwrite is not a loss.
func (r *ring) snapshot() []core.LabeledQuery {
	out := make([]core.LabeledQuery, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.seen = r.total
	return out
}

// feedbackStore keys bounded rings by model name.
type feedbackStore struct {
	mu       sync.Mutex
	capacity int
	rings    map[string]*ring
}

func newFeedbackStore(capacity int) *feedbackStore {
	return &feedbackStore{capacity: capacity, rings: make(map[string]*ring)}
}

// Add buffers observations for name, returning how many displaced older
// ones (backpressure signal echoed to the client).
func (s *feedbackStore) Add(name string, obs []core.LabeledQuery) (dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		r = newRing(s.capacity)
		s.rings[name] = r
	}
	for _, z := range obs {
		if r.add(z) {
			dropped++
		}
	}
	return dropped
}

// Snapshot returns the buffered observations and the total ever added for
// name. The total lets the retrainer skip models with no fresh feedback.
func (s *feedbackStore) Snapshot(name string) ([]core.LabeledQuery, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		return nil, 0
	}
	return r.snapshot(), r.total
}

// Totals sums observations ever added, ever dropped, and ever lost (see
// ring.add) across all rings; the obs metrics bridge reads these at
// exposition time.
func (s *feedbackStore) Totals() (total, dropped, lost int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rings {
		total += r.total
		dropped += r.drop
		lost += r.lost
	}
	return total, dropped, lost
}

// Names returns every model name with buffered feedback.
func (s *feedbackStore) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.rings))
	for name := range s.rings {
		names = append(names, name)
	}
	return names
}

// feedbackStatus is the /statz row for one ring.
type feedbackStatus struct {
	Buffered int   `json:"buffered"`
	Capacity int   `json:"capacity"`
	Total    int64 `json:"total"`
	Dropped  int64 `json:"dropped"`
	// Lost counts observations overwritten before any retrain snapshot
	// read them — feedback that silently vanished, as opposed to Dropped,
	// which also counts benign overwrites of already-consumed elements.
	Lost int64 `json:"lost"`
}

func (s *feedbackStore) status() map[string]feedbackStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]feedbackStatus, len(s.rings))
	for name, r := range s.rings {
		out[name] = feedbackStatus{
			Buffered: r.size,
			Capacity: len(r.buf),
			Total:    r.total,
			Dropped:  r.drop,
			Lost:     r.lost,
		}
	}
	return out
}

// RetrainResult describes one retrain attempt, for /statz and tests.
type RetrainResult struct {
	Model        string          `json:"model"`
	Samples      int             `json:"samples"`
	CandidateRMS float64         `json:"candidate_rms"`
	CurrentRMS   float64         `json:"current_rms"`
	Swapped      bool            `json:"swapped"`
	Generation   int64           `json:"generation,omitempty"`
	Err          string          `json:"error,omitempty"`
	Train        *obs.TrainStats `json:"train,omitempty"`
}

// retrainLoop periodically refits every model that has accumulated enough
// fresh feedback and hot-swaps improved candidates into the registry.
func (s *Server) retrainLoop(ctx context.Context) {
	t := time.NewTicker(s.opts.RetrainInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.RetrainNow()
		}
	}
}

// RetrainNow runs one retraining pass over every model with feedback and
// returns what happened per model. It is what the background loop calls on
// each tick; tests and operators (POST /v1/retrain) can invoke it directly.
func (s *Server) RetrainNow() []RetrainResult {
	var out []RetrainResult
	for _, name := range s.feedback.Names() {
		res, attempted := s.retrainModel(name)
		if attempted {
			out = append(out, res)
		}
	}
	return out
}

// retrainModel refits one model from its feedback ring. The candidate is
// trained on a stream-striped split and only swapped in if it does not
// regress versus the serving model on the held-out stripe — feedback can be
// noisy, and a guarded swap keeps a bad batch from degrading serving.
func (s *Server) retrainModel(name string) (RetrainResult, bool) {
	samples, total := s.feedback.Snapshot(name)
	if len(samples) < s.opts.MinRetrainSamples {
		return RetrainResult{}, false
	}
	s.retrainMu.Lock()
	seen := s.retrainSeen[name]
	if total == seen {
		s.retrainMu.Unlock()
		return RetrainResult{}, false // nothing new since the last pass
	}
	s.retrainSeen[name] = total
	s.retrainMu.Unlock()

	sp := s.tracer.StartRoot("serve.retrain")
	defer sp.End()

	entry, ok := s.registry.Get(name)
	if !ok {
		return s.finishRetrain(RetrainResult{Model: name, Err: "model not registered"})
	}

	// Stripe split: every 5th observation is validation, so both sets
	// span the whole feedback window rather than one temporal half.
	train := make([]core.LabeledQuery, 0, len(samples))
	val := make([]core.LabeledQuery, 0, len(samples)/5+1)
	for i, z := range samples {
		if i%5 == 4 {
			val = append(val, z)
		} else {
			train = append(train, z)
		}
	}
	if len(val) == 0 {
		val = train
	}

	tlog := obs.NewTrainLog(sp)
	tr, err := trainerFor(entry.Model, len(train), uint64(total), tlog)
	if err != nil {
		return s.finishRetrain(RetrainResult{Model: name, Samples: len(samples), Err: err.Error()})
	}
	cand, err := tr.Train(train)
	if err != nil {
		return s.finishRetrain(RetrainResult{Model: name, Samples: len(samples), Err: err.Error(), Train: tlog.Stats()})
	}
	res := RetrainResult{
		Model:        name,
		Samples:      len(samples),
		CandidateRMS: core.RMS(cand, val),
		CurrentRMS:   core.RMS(entry.Model, val),
		Train:        tlog.Stats(),
	}
	if res.CandidateRMS <= res.CurrentRMS+s.opts.RetrainTolerance {
		// CompareAndSwap so a concurrent upload beats a stale retrain.
		if e := s.registry.CompareAndSwap(name, "retrain", entry, cand); e != nil {
			res.Swapped = true
			res.Generation = e.Generation
		}
	}
	return s.finishRetrain(res)
}

// finishRetrain records the result in the retrainer counters and logs the
// outcome when a logger is attached.
func (s *Server) finishRetrain(res RetrainResult) (RetrainResult, bool) {
	s.retrainMu.Lock()
	s.retrainRuns++
	if res.Swapped {
		s.retrainSwaps++
	}
	if res.Err != "" {
		s.retrainErrs++
		s.retrainErr = res.Err
	}
	s.lastRetrain = res
	s.retrainMu.Unlock()
	if s.logger != nil {
		attrs := []slog.Attr{
			slog.String("model", res.Model),
			slog.Int("samples", res.Samples),
			slog.Bool("swapped", res.Swapped),
		}
		if res.Err != "" {
			attrs = append(attrs, slog.String("error", res.Err))
			s.logger.LogAttrs(context.Background(), slog.LevelError, "retrain failed", attrs...)
		} else {
			attrs = append(attrs,
				slog.Float64("candidate_rms", res.CandidateRMS),
				slog.Float64("current_rms", res.CurrentRMS))
			if res.Train != nil {
				attrs = append(attrs, slog.String("train", res.Train.Summary()))
			}
			s.logger.LogAttrs(context.Background(), slog.LevelInfo, "retrain finished", attrs...)
		}
	}
	return res, true
}
