package serve

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/rng"
	"repro/internal/workload"
)

// benchOnlineServer builds an online-enabled server with a trained model,
// outside the timed region.
func benchOnlineServer(b *testing.B, nBuckets int) *Server {
	b.Helper()
	ds := dataset.Power(3000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 11)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, _ := g.TrainTest(spec, 400, 0)
	m, err := hist.New(2, nBuckets).Train(train)
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(Options{
		OnlineUpdates:     true,
		MinRetrainSamples: 1 << 30, // retrainer driven never
		EstimateCacheSize: -1,      // measure the model, not the cache
	})
	s.registry.Set(DefaultModelName, "file", m)
	return s
}

// BenchmarkOnlineUpdate measures the feedback-to-published-model latency
// of one online update (fold + COW reweight + registry CAS) while
// concurrent estimate traffic reads the registry — the ISSUE target is
// p99 under 100µs per feedback item. Per-item wall times are collected
// and the p50/p99 reported as custom metrics alongside ns/op.
func BenchmarkOnlineUpdate(b *testing.B) {
	for _, nBuckets := range []int{200, 512} {
		b.Run(fmt.Sprintf("buckets=%d", nBuckets), func(b *testing.B) {
			s := benchOnlineServer(b, nBuckets)

			// Concurrent estimate traffic for the whole timed region.
			stop := make(chan struct{})
			defer close(stop)
			for g := 0; g < 4; g++ {
				go func(g int) {
					r := rng.New(uint64(100 + g))
					for {
						select {
						case <-stop:
							return
						default:
						}
						entry, _ := s.registry.Get(DefaultModelName)
						lo := geom.Point{r.Float64() * 0.6, r.Float64() * 0.6}
						hi := geom.Point{lo[0] + 0.4, lo[1] + 0.4}
						entry.Model.Estimate(geom.Box{Lo: lo, Hi: hi})
					}
				}(g)
			}

			r := rng.New(7)
			stream := make([]core.LabeledQuery, b.N)
			for i := range stream {
				lo := geom.Point{r.Float64() * 0.7, r.Float64() * 0.7}
				hi := geom.Point{lo[0] + 0.3*r.Float64(), lo[1] + 0.3*r.Float64()}
				stream[i] = core.LabeledQuery{R: geom.Box{Lo: lo, Hi: hi}, Sel: r.Float64()}
			}
			lat := make([]time.Duration, b.N)
			batch := make([]core.LabeledQuery, 1)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch[0] = stream[i]
				start := time.Now()
				s.online.ingest(DefaultModelName, batch)
				lat[i] = time.Since(start)
			}
			b.StopTimer()

			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			quant := func(q float64) float64 {
				idx := int(q * float64(len(lat)-1))
				return float64(lat[idx].Nanoseconds()) / 1e3
			}
			b.ReportMetric(quant(0.50), "p50-µs")
			b.ReportMetric(quant(0.99), "p99-µs")
			if st := s.online.status(); st.Published == 0 {
				b.Fatalf("benchmark published nothing: %+v", st)
			}
		})
	}
}
