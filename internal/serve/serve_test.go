package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/hist"
	"repro/internal/modelio"
	"repro/internal/workload"
)

// fixture returns a labeled 2-D box workload split into train/test.
func fixture(t *testing.T, nTrain, nTest int) ([]core.LabeledQuery, []core.LabeledQuery) {
	t.Helper()
	ds := dataset.Power(3000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 11)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	return g.TrainTest(spec, nTrain, nTest)
}

// trainModel fits a QuadHist model on the sample.
func trainModel(t *testing.T, train []core.LabeledQuery) core.Model {
	t.Helper()
	m, err := hist.New(2, 200).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// envelopeOf serializes a model to modelio envelope bytes.
func envelopeOf(t *testing.T, m core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := modelio.Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doJSON posts body to the handler and decodes the JSON response into out.
func doJSON(t *testing.T, h http.Handler, method, path string, body []byte, out any) int {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code < 300 {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON: %v: %s", method, path, err, w.Body.String())
		}
	}
	return w.Code
}

func TestRingDropOldest(t *testing.T) {
	r := newRing(3)
	q := func(sel float64) core.LabeledQuery {
		return core.LabeledQuery{R: geom.UnitCube(1), Sel: sel}
	}
	for i := 1; i <= 3; i++ {
		if r.add(q(float64(i))) {
			t.Fatalf("add %d dropped before full", i)
		}
	}
	if !r.add(q(4)) {
		t.Fatal("overflowing add did not report a drop")
	}
	snap := r.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot size %d, want 3", len(snap))
	}
	for i, want := range []float64{2, 3, 4} {
		if snap[i].Sel != want {
			t.Fatalf("snapshot[%d].Sel = %v, want %v (drop-oldest order)", i, snap[i].Sel, want)
		}
	}
	if r.total != 4 || r.drop != 1 {
		t.Fatalf("total=%d drop=%d, want 4/1", r.total, r.drop)
	}
}

func TestRegistryGenerationsAndCAS(t *testing.T) {
	train, _ := fixture(t, 40, 10)
	m1 := trainModel(t, train)
	m2 := trainModel(t, train[:20])

	reg := NewRegistry()
	if _, ok := reg.Get("x"); ok {
		t.Fatal("empty registry returned a model")
	}
	e1 := reg.Set("x", "upload", m1)
	if e1.Generation != 1 {
		t.Fatalf("first generation %d, want 1", e1.Generation)
	}
	e2 := reg.Set("x", "upload", m2)
	if e2.Generation != 2 {
		t.Fatalf("second generation %d, want 2", e2.Generation)
	}
	// A CAS against the stale entry must lose.
	if e := reg.CompareAndSwap("x", "retrain", e1, m1); e != nil {
		t.Fatal("stale CompareAndSwap succeeded")
	}
	// Against the current entry it must win and bump the generation.
	e3 := reg.CompareAndSwap("x", "retrain", e2, m1)
	if e3 == nil || e3.Generation != 3 || e3.Source != "retrain" {
		t.Fatalf("current CompareAndSwap: %+v", e3)
	}
	if got, _ := reg.Get("x"); got != e3 {
		t.Fatal("Get did not observe the swapped entry")
	}
}

func TestEstimateEndpoint(t *testing.T) {
	train, test := fixture(t, 60, 5)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	// Batch request: estimates must match direct calls exactly.
	var queries []wireQuery
	for _, z := range test {
		b := z.R.(geom.Box)
		queries = append(queries, wireQuery{Lo: b.Lo, Hi: b.Hi})
	}
	body, _ := json.Marshal(estimateRequest{Queries: queries})
	var resp estimateResponse
	if code := doJSON(t, h, "POST", "/v1/estimate", body, &resp); code != 200 {
		t.Fatalf("batch estimate: HTTP %d", code)
	}
	if resp.Model != DefaultModelName || resp.Generation != 1 {
		t.Fatalf("response metadata: %+v", resp)
	}
	if len(resp.Estimates) != len(test) {
		t.Fatalf("%d estimates, want %d", len(resp.Estimates), len(test))
	}
	for i, z := range test {
		if resp.Estimates[i] != m.Estimate(z.R) {
			t.Fatalf("estimate %d drifted from direct call", i)
		}
	}

	// Single-query form.
	b := test[0].R.(geom.Box)
	body, _ = json.Marshal(estimateRequest{Query: &wireQuery{Lo: b.Lo, Hi: b.Hi}})
	resp = estimateResponse{}
	if code := doJSON(t, h, "POST", "/v1/estimate", body, &resp); code != 200 {
		t.Fatalf("single estimate: HTTP %d", code)
	}
	if resp.Estimate == nil || *resp.Estimate != m.Estimate(test[0].R) {
		t.Fatalf("single estimate drifted: %+v", resp)
	}

	// Error paths.
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown model", `{"model":"nope","query":{"lo":[0,0],"hi":[1,1]}}`, 404},
		{"no queries", `{}`, 400},
		{"both forms", `{"query":{"lo":[0,0],"hi":[1,1]},"queries":[{"lo":[0,0],"hi":[1,1]}]}`, 400},
		{"dimension mismatch", `{"query":{"lo":[0],"hi":[1]}}`, 400},
		{"mixed class fields", `{"query":{"lo":[0,0]}}`, 400},
		{"unknown field", `{"quer":{"lo":[0,0],"hi":[1,1]}}`, 400},
		{"not json", `hello`, 400},
	}
	for _, c := range cases {
		if code := doJSON(t, h, "POST", "/v1/estimate", []byte(c.body), nil); code != c.want {
			t.Fatalf("%s: HTTP %d, want %d", c.name, code, c.want)
		}
	}
}

func TestEstimateNonBoxClasses(t *testing.T) {
	train, _ := fixture(t, 60, 5)
	m := trainModel(t, train)
	s := NewServer(Options{})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	half := geom.NewHalfspace(geom.Point{1, -1}, 0.1)
	ball := geom.NewBall(geom.Point{0.4, 0.6}, 0.2)
	body := `{"queries":[{"a":[1,-1],"b":0.1},{"center":[0.4,0.6],"radius":0.2}]}`
	var resp estimateResponse
	if code := doJSON(t, h, "POST", "/v1/estimate", []byte(body), &resp); code != 200 {
		t.Fatalf("HTTP %d", code)
	}
	if resp.Estimates[0] != m.Estimate(half) || resp.Estimates[1] != m.Estimate(ball) {
		t.Fatalf("non-box estimates drifted: %v", resp.Estimates)
	}
}

func TestModelUploadAndDownload(t *testing.T) {
	train, test := fixture(t, 60, 10)
	m := trainModel(t, train)
	s := NewServer(Options{})
	h := s.Handler()

	var st modelStatus
	if code := doJSON(t, h, "PUT", "/v1/models/power", envelopeOf(t, m), &st); code != 200 {
		t.Fatalf("upload: HTTP %d", code)
	}
	if st.Type != "quadhist" || st.Generation != 1 || st.Buckets != m.NumBuckets() {
		t.Fatalf("upload status: %+v", st)
	}

	// Download must round-trip to identical estimates.
	req := httptest.NewRequest("GET", "/v1/models/power", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != 200 {
		t.Fatalf("download: HTTP %d", w.Code)
	}
	got, err := modelio.Load(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		if got.Estimate(z.R) != m.Estimate(z.R) {
			t.Fatal("downloaded model drifted")
		}
	}

	// Uploads accept binary snapshots too (the format is sniffed), with
	// estimates identical to the JSON-uploaded model's.
	var bbuf bytes.Buffer
	if err := modelio.SaveBinary(&bbuf, m); err != nil {
		t.Fatal(err)
	}
	var bst modelStatus
	if code := doJSON(t, h, "PUT", "/v1/models/powerbin", bbuf.Bytes(), &bst); code != 200 {
		t.Fatalf("binary upload: HTTP %d", code)
	}
	if bst.Type != "quadhist" || bst.Buckets != m.NumBuckets() {
		t.Fatalf("binary upload status: %+v", bst)
	}
	for _, z := range test {
		zb := z.R.(geom.Box)
		body, _ := json.Marshal(estimateRequest{Model: "powerbin", Query: &wireQuery{Lo: zb.Lo, Hi: zb.Hi}})
		var resp estimateResponse
		if code := doJSON(t, h, "POST", "/v1/estimate", body, &resp); code != 200 {
			t.Fatalf("estimate on binary-uploaded model: HTTP %d", code)
		}
		if resp.Estimate == nil || *resp.Estimate != m.Estimate(z.R) {
			t.Fatal("binary-uploaded model drifted")
		}
	}

	// Decode failures map to 400, missing models to 404.
	cases := []struct {
		name string
		body string
		want int
	}{
		{"truncated", string(envelopeOf(t, m)[:40]), 400},
		{"wrong version", `{"version":9,"type":"quadhist","payload":{}}`, 400},
		{"unknown type", `{"version":1,"type":"neuralnet","payload":{}}`, 400},
		{"invalid weights", `{"version":1,"type":"ptshist","payload":{"Points":[[0.5,0.5]],"Weights":[0.2]}}`, 400},
	}
	for _, c := range cases {
		if code := doJSON(t, h, "PUT", "/v1/models/bad", []byte(c.body), nil); code != c.want {
			t.Fatalf("%s: HTTP %d, want %d", c.name, code, c.want)
		}
	}
	if code := doJSON(t, h, "GET", "/v1/models/bad", nil, nil); code != 404 {
		t.Fatalf("download of never-registered model: HTTP %d, want 404", code)
	}
}

func TestFeedbackValidation(t *testing.T) {
	train, _ := fixture(t, 40, 5)
	s := NewServer(Options{FeedbackCapacity: 2})
	s.Registry().Set(DefaultModelName, "test", trainModel(t, train))
	h := s.Handler()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"ok", `{"observations":[{"lo":[0,0],"hi":[0.5,0.5],"sel":0.2}]}`, 200},
		{"unknown model", `{"model":"nope","observations":[{"lo":[0,0],"hi":[1,1],"sel":0.2}]}`, 404},
		{"empty", `{"observations":[]}`, 400},
		{"missing sel", `{"observations":[{"lo":[0,0],"hi":[1,1]}]}`, 400},
		{"sel out of range", `{"observations":[{"lo":[0,0],"hi":[1,1],"sel":1.5}]}`, 400},
		{"bad query", `{"observations":[{"sel":0.5}]}`, 400},
	}
	for _, c := range cases {
		if code := doJSON(t, h, "POST", "/v1/feedback", []byte(c.body), nil); code != c.want {
			t.Fatalf("%s: HTTP %d, want %d", c.name, code, c.want)
		}
	}

	// Overflow reports backpressure: capacity 2, one already buffered.
	body := `{"observations":[{"lo":[0,0],"hi":[1,1],"sel":0.9},{"lo":[0,0],"hi":[0.1,0.1],"sel":0.01}]}`
	var resp feedbackResponse
	if code := doJSON(t, h, "POST", "/v1/feedback", []byte(body), &resp); code != 200 {
		t.Fatalf("overflow feedback: HTTP %d", code)
	}
	if resp.Accepted != 2 || resp.Dropped != 1 {
		t.Fatalf("backpressure: %+v, want accepted=2 dropped=1", resp)
	}
}

func TestRetrainGuardRejectsRegression(t *testing.T) {
	train, _ := fixture(t, 200, 5)
	m := trainModel(t, train)
	s := NewServer(Options{MinRetrainSamples: 10, RetrainTolerance: 0})
	s.Registry().Set(DefaultModelName, "test", m)

	// Adversarial feedback: constant wrong labels. The candidate trained
	// on them scores worse than the serving model on the validation
	// stripe (which carries the same wrong labels is the risk — so use
	// labels the serving model already fits well on train, badly shuffled).
	var obs []core.LabeledQuery
	for i, z := range train[:50] {
		obs = append(obs, core.LabeledQuery{R: z.R, Sel: train[(i+25)%50].Sel})
	}
	s.feedback.Add(DefaultModelName, obs)
	results := s.RetrainNow()
	if len(results) != 1 {
		t.Fatalf("%d retrain results, want 1", len(results))
	}
	res := results[0]
	if res.Err != "" {
		t.Fatalf("retrain error: %s", res.Err)
	}
	if res.Swapped && res.CandidateRMS > res.CurrentRMS {
		t.Fatalf("regressing candidate swapped in: %+v", res)
	}
	// Whatever happened, the serving entry must still be coherent.
	if e, ok := s.Registry().Get(DefaultModelName); !ok || e.Model == nil {
		t.Fatal("registry lost the model")
	}

	// A second pass with no new feedback must be a no-op.
	if results := s.RetrainNow(); len(results) != 0 {
		t.Fatalf("retrain without fresh feedback ran: %+v", results)
	}
}

func TestStatz(t *testing.T) {
	train, _ := fixture(t, 40, 5)
	s := NewServer(Options{})
	s.Registry().Set("power", "test", trainModel(t, train))
	h := s.Handler()

	for i := 0; i < 5; i++ {
		body := `{"model":"power","query":{"lo":[0,0],"hi":[0.5,0.5]}}`
		if code := doJSON(t, h, "POST", "/v1/estimate", []byte(body), nil); code != 200 {
			t.Fatalf("estimate: HTTP %d", code)
		}
	}
	doJSON(t, h, "POST", "/v1/estimate", []byte(`broken`), nil)
	if code := doJSON(t, h, "GET", "/healthz", nil, nil); code != 200 {
		t.Fatal("healthz not ok")
	}

	var st statzResponse
	if code := doJSON(t, h, "GET", "/statz", nil, &st); code != 200 {
		t.Fatalf("statz: HTTP %d", code)
	}
	est := st.Endpoints["POST /v1/estimate"]
	if est.Requests != 6 || est.Errors4xx != 1 || est.Errors5xx != 0 {
		t.Fatalf("estimate endpoint stats: %+v", est)
	}
	if est.Latency == nil || est.Latency.Max < est.Latency.P50 {
		t.Fatalf("latency summary: %+v", est.Latency)
	}
	if len(st.Models) != 1 || st.Models[0].Name != "power" || st.Models[0].Type != "quadhist" {
		t.Fatalf("model inventory: %+v", st.Models)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := NewServer(Options{})
	h := s.Handler()
	if code := doJSON(t, h, "GET", "/v1/estimate", nil, nil); code != 405 {
		t.Fatalf("GET estimate: HTTP %d, want 405", code)
	}
	if code := doJSON(t, h, "POST", "/nope", nil, nil); code != 404 {
		t.Fatalf("unknown route: HTTP %d, want 404", code)
	}
}

func TestTrainerForAllFamilies(t *testing.T) {
	train, _ := fixture(t, 40, 5)
	models := []core.Model{trainModel(t, train)}
	for _, m := range models {
		tr, err := trainerFor(m, 40, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Train(train); err != nil {
			t.Fatal(err)
		}
	}
	// Unsupported/empty models degrade to an error, not a panic.
	if _, err := trainerFor(&hist.Model{}, 10, 1, nil); err == nil ||
		!strings.Contains(err.Error(), "dimensionality") {
		t.Fatalf("empty model: %v", err)
	}
}
