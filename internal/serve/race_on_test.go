//go:build race

package serve

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so 0-allocs/op gates only hold without it.
const raceEnabled = true
