package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// TestAppendJSONFloatMatchesEncodingJSON pins the hand-rolled float
// encoder to encoding/json's exact output across magnitude regimes, so
// swapping the encoder never changes a single response byte.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 0.25, 1.0 / 3.0, 0.1, 0.2, 0.1 + 0.2, math.Pi,
		1e-6, 9.999e-7, 1e-7, 1e-9, 2.5e-13, 1e-300, 5e-324,
		1e20, 1e21, 1.5e21, 1e22, math.MaxFloat64, 123456.789,
	}
	r := rng.New(7)
	for i := 0; i < 500; i++ {
		vals = append(vals, r.Float64())
		vals = append(vals, r.Float64()*math.Pow(10, float64(i%40-20)))
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, v)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONFloat(%g) = %s, encoding/json says %s", v, got, want)
		}
	}
}

// TestAppendEstimateResponseMatchesEncodingJSON pins the full response
// encoder to the bytes json.Encoder produced for estimateResponse before
// the hand-rolled path existed.
func TestAppendEstimateResponseMatchesEncodingJSON(t *testing.T) {
	single := 0.25
	cases := []estimateResponse{
		{Model: "default", Generation: 1, Estimate: &single},
		{Model: `we"ird\name`, Generation: 42, Estimates: []float64{0, 1, 0.125, 3e-9}},
		{Model: "batch", Generation: 7, Estimates: []float64{0.5}},
	}
	for _, resp := range cases {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(resp); err != nil {
			t.Fatal(err)
		}
		ests := resp.Estimates
		isSingle := resp.Estimate != nil
		if isSingle {
			ests = []float64{*resp.Estimate}
		}
		got := appendEstimateResponse(nil, []byte(resp.Model), resp.Generation, ests, isSingle)
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("hand-rolled response %q, encoding/json produced %q", got, buf.Bytes())
		}
	}
}

// randomWireQuery draws one wire query across the three classes; bad
// selects an invalid variant so error paths agree too.
func randomWireQuery(r *rng.RNG, d int, bad bool) wireQuery {
	pt := func(n int) []float64 {
		p := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()*2 - 0.5
		}
		return p
	}
	f := func(v float64) *float64 { return &v }
	switch r.IntN(3) {
	case 0:
		if bad {
			return wireQuery{Lo: pt(d)} // missing hi
		}
		lo, hi := pt(d), pt(d)
		for i := range hi {
			hi[i] = lo[i] + r.Float64()*0.5
		}
		return wireQuery{Lo: lo, Hi: hi}
	case 1:
		if bad {
			return wireQuery{A: pt(d)} // missing b
		}
		return wireQuery{A: pt(d), B: f(r.Float64())}
	default:
		if bad {
			return wireQuery{Center: pt(d), Radius: f(-0.1)}
		}
		return wireQuery{Center: pt(d), Radius: f(r.Float64() * 0.5)}
	}
}

// TestWireParserMatchesEncodingJSON is the decode property test: any
// request the old encoding/json path accepted parses to identical
// geometry (and any per-query error it reported is reported identically)
// by the hand-rolled parser.
func TestWireParserMatchesEncodingJSON(t *testing.T) {
	r := rng.New(1234)
	names := []string{"", "default", "tenant-7", `esc"aped`, "uni\tcode"}
	for trial := 0; trial < 200; trial++ {
		d := 1 + r.IntN(4)
		req := estimateRequest{Model: names[r.IntN(len(names))]}
		n := 1 + r.IntN(6)
		single := n == 1 && r.IntN(2) == 0
		var wqs []wireQuery
		for i := 0; i < n; i++ {
			wqs = append(wqs, randomWireQuery(r, d, r.IntN(4) == 0))
		}
		if single {
			req.Query = &wqs[0]
		} else {
			req.Queries = wqs
		}
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}

		sc := new(estimateScratch)
		sc.body = body
		sc.resetWire()
		hasQuery, nQueries, perr := parseEstimateRequest(sc)
		if perr != nil {
			t.Fatalf("trial %d: parse error %v on %s", trial, perr, body)
		}
		if hasQuery != single || nQueries != len(req.Queries) {
			t.Fatalf("trial %d: form flags (%v,%d), want (%v,%d)", trial, hasQuery, nQueries, single, len(req.Queries))
		}
		if string(sc.nameOrDefault()) != modelName(req.Model) {
			t.Fatalf("trial %d: model %q, want %q", trial, sc.nameOrDefault(), modelName(req.Model))
		}
		if len(sc.ranges) != n {
			t.Fatalf("trial %d: %d ranges, want %d", trial, len(sc.ranges), n)
		}
		for i, wq := range wqs {
			want, werr := wq.toRange()
			got, gerr := sc.ranges[i], sc.qerrs[i]
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("trial %d query %d: error %v, want %v", trial, i, gerr, werr)
			}
			if werr != nil {
				if gerr.Error() != werr.Error() {
					t.Fatalf("trial %d query %d: error %q, want %q", trial, i, gerr, werr)
				}
				continue
			}
			var gv geom.Range
			switch g := got.(type) {
			case *geom.Box:
				gv = *g
			case *geom.Halfspace:
				gv = *g
			case *geom.Ball:
				gv = *g
			default:
				t.Fatalf("trial %d query %d: unexpected range type %T", trial, i, got)
			}
			if !reflect.DeepEqual(gv, want) {
				t.Fatalf("trial %d query %d: parsed %#v, want %#v", trial, i, gv, want)
			}
		}
	}
}

// TestWireParserEdgeCases pins grammar corners the property test cannot
// reach: null fields, escapes in names, duplicate-free whitespace, and
// transport-level rejections.
func TestWireParserEdgeCases(t *testing.T) {
	parse := func(body string) (*estimateScratch, bool, int, error) {
		sc := new(estimateScratch)
		sc.body = []byte(body)
		sc.resetWire()
		hq, nq, err := parseEstimateRequest(sc)
		return sc, hq, nq, err
	}

	// null query/queries/model are absent, like encoding/json omitempty.
	sc, hq, nq, err := parse(`{"model":null,"query":null,"queries":null}`)
	if err != nil || hq || nq != 0 || len(sc.name) != 0 {
		t.Fatalf("null fields: hq=%v nq=%d err=%v", hq, nq, err)
	}
	// "lo": null leaves the box class unselected.
	sc, _, _, err = parse(`{"query":{"lo":null,"a":[1],"b":0.5}}`)
	if err != nil || sc.qerrs[0] != nil {
		t.Fatalf("null lo: err=%v qerr=%v", err, sc.qerrs[0])
	}
	if _, ok := sc.ranges[0].(*geom.Halfspace); !ok {
		t.Fatalf("null lo: parsed %T, want *geom.Halfspace", sc.ranges[0])
	}
	// Escaped model names decode.
	sc, _, _, err = parse(`{"model":"a\"b\\cA\n"}`)
	if err != nil || string(sc.name) != "a\"b\\cA\n" {
		t.Fatalf("escaped model: %q err=%v", sc.name, err)
	}
	// Scientific-notation coordinates.
	sc, _, _, err = parse(`{"query":{"lo":[-1e-3,2E2],"hi":[1.5e0,3e2]}}`)
	if err != nil || sc.qerrs[0] != nil {
		t.Fatalf("scientific notation: err=%v qerr=%v", err, sc.qerrs[0])
	}
	if b := sc.ranges[0].(*geom.Box); b.Lo[0] != -1e-3 || b.Lo[1] != 200 || b.Hi[0] != 1.5 || b.Hi[1] != 300 {
		t.Fatalf("scientific notation parsed %v", sc.ranges[0])
	}
	// Transport-level failures.
	for _, bad := range []string{
		``, `hello`, `{`, `{"model"}`, `{"model":}`, `{"query":{"lo":[}}`,
		`{"nope":1}`, `{"query":{"zz":[1]}}`, `{"query":{"lo":[1,]}}`,
		`{"queries":[{"lo":[0],"hi":[1]}`, `{"model":"x`,
	} {
		if _, _, _, err := parse(bad); err == nil {
			t.Fatalf("parse(%q) accepted, want error", bad)
		}
	}
	// Empty queries array parses to zero queries (the handler 400s later).
	if _, hq, nq, err := parse(`{"queries":[]}`); err != nil || hq || nq != 0 {
		t.Fatalf("empty queries: hq=%v nq=%d err=%v", hq, nq, err)
	}
}

// TestQueryKeyPointerValueAgree: the wire decoder hands the cache pointer
// ranges while embedders hand it values; both must key identically or a
// hot cache would split per caller.
func TestQueryKeyPointerValueAgree(t *testing.T) {
	box := geom.NewBox(geom.Point{0.1, 0.2}, geom.Point{0.6, 0.9})
	half := geom.NewHalfspace(geom.Point{1, -1}, 0.1)
	ball := geom.NewBall(geom.Point{0.4, 0.6}, 0.2)
	pairs := []struct{ v, p geom.Range }{
		{box, &box}, {half, &half}, {ball, &ball},
	}
	for _, pr := range pairs {
		kv, okv := QueryKey(pr.v)
		kp, okp := QueryKey(pr.p)
		if !okv || !okp || kv != kp {
			t.Fatalf("%T: value key %q (ok=%v) != pointer key %q (ok=%v)", pr.v, kv, okv, kp, okp)
		}
	}
	if _, ok := QueryKey(nil); ok {
		t.Fatal("nil range produced a cache key")
	}
}

// reusableBody lets one http.Request replay the same payload without
// allocating a fresh reader per iteration.
type reusableBody struct{ *bytes.Reader }

func (reusableBody) Close() error { return nil }

// discardWriter is a minimal ResponseWriter whose header map is reused
// across requests, so response writing itself is measurable at 0 allocs.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header         { return w.h }
func (w *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardWriter) WriteHeader(code int)        { w.status = code }

// TestEstimateHandlerZeroAlloc is the end-to-end allocation gate for the
// single-estimate request path (the TestObsDisabledAllocs pattern applied
// to the handler): mux dispatch, instrumentation, body read, decode,
// estimate, encode — 0 allocs/op at steady state. The cache is disabled
// because cache keying interns query bytes as map-key strings by design.
func TestEstimateHandlerZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the gate runs without -race")
	}
	train, test := fixture(t, 60, 1)
	m := trainModel(t, train)
	s := NewServer(Options{EstimateCacheSize: -1})
	s.Registry().Set(DefaultModelName, "test", m)
	h := s.Handler()

	b := test[0].R.(geom.Box)
	payload, err := json.Marshal(estimateRequest{Query: &wireQuery{Lo: b.Lo, Hi: b.Hi}})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(payload)
	req := httptest.NewRequest("POST", "/v1/estimate", rd)
	req.Body = reusableBody{rd}
	w := &discardWriter{h: make(http.Header)}

	// Warm the pools and prove the path actually serves 200s.
	for i := 0; i < 8; i++ {
		rd.Reset(payload)
		w.status = 0
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("warmup request: HTTP %d", w.status)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(payload)
		h.ServeHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("single-estimate request path allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWireParserSurrogatePairs pins \uXXXX handling to encoding/json:
// valid high/low pairs combine into one rune, unpaired halves decode to
// U+FFFD, and a high surrogate followed by a non-surrogate escape only
// consumes itself. encoding/json is the oracle for every case.
func TestWireParserSurrogatePairs(t *testing.T) {
	// The escapes are assembled from a spelled-out backslash rune so the
	// test source itself contains no escape sequences that editors or
	// formatters might normalize.
	bs := string(rune(92))
	hi, lo := bs+"uD83D", bs+"uDE00"
	cases := []string{
		hi + lo,                           // valid escaped pair: one emoji
		hi,                                // lone high surrogate
		lo,                                // lone low surrogate
		hi + "x",                          // high surrogate, then a literal byte
		hi + bs + "u0041",                 // high surrogate, then a non-surrogate escape
		hi + hi + lo,                      // lone high, then a valid pair
		lo + hi + lo + "ok",               // low first, then a valid pair, then literals
		"A" + bs + "u00e9" + bs + "u4e2d", // BMP escapes untouched by pairing
		"pre" + hi + lo + "post",          // pair embedded in literal text
		"literal \U0001F600 text",         // raw UTF-8 emoji passes through unescaped
	}
	for _, esc := range cases {
		body := `{"model":"` + esc + `"}`
		var want struct {
			Model string `json:"model"`
		}
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("oracle rejected %q: %v", body, err)
		}
		sc := new(estimateScratch)
		sc.body = []byte(body)
		sc.resetWire()
		if _, _, err := parseEstimateRequest(sc); err != nil {
			t.Errorf("parse(%q): %v", body, err)
			continue
		}
		if got := string(sc.name); got != want.Model {
			t.Errorf("parse(%q) name = %q, want %q (per encoding/json)", body, got, want.Model)
		}
	}

	// Truncated escapes at end of input are transport errors.
	for _, bad := range []string{`{"model":"\u12`, `{"model":"\uD83D\uDE`, `{"model":"\uZZZZ"}`} {
		sc := new(estimateScratch)
		sc.body = []byte(bad)
		sc.resetWire()
		if _, _, err := parseEstimateRequest(sc); err == nil {
			t.Errorf("parse(%q) accepted, want error", bad)
		}
	}
}

// TestWireParserExponentFloats pins textual float forms json.Marshal
// never emits (uppercase E, explicit +, subnormals, extreme exponents)
// to bit-identical agreement with encoding/json.
func TestWireParserExponentFloats(t *testing.T) {
	cases := []string{
		"1e5", "1E5", "1e+5", "1e-5", "2.5e3", "-1.25E-2",
		"0.0", "-0", "1e308", "-1e308", "5e-324", "4.9e-324",
		"123456789.123456789e-9", "1E+2",
	}
	for _, f := range cases {
		var want []float64
		if err := json.Unmarshal([]byte("["+f+"]"), &want); err != nil {
			t.Fatalf("oracle rejected %s: %v", f, err)
		}
		body := `{"query":{"lo":[` + f + `],"hi":[` + f + `]}}`
		sc := new(estimateScratch)
		sc.body = []byte(body)
		sc.resetWire()
		if _, _, err := parseEstimateRequest(sc); err != nil {
			t.Errorf("parse(%s): %v", f, err)
			continue
		}
		box, ok := sc.ranges[0].(*geom.Box)
		if !ok {
			t.Errorf("parse(%s): range %T, want *geom.Box", f, sc.ranges[0])
			continue
		}
		if math.Float64bits(box.Lo[0]) != math.Float64bits(want[0]) {
			t.Errorf("parse(%s) = %v (bits %x), want %v (bits %x)",
				f, box.Lo[0], math.Float64bits(box.Lo[0]), want[0], math.Float64bits(want[0]))
		}
	}
	// Malformed numbers stay rejected.
	for _, bad := range []string{"1e", "1e+", "--1", "1.2.3", "0x10"} {
		body := `{"query":{"lo":[` + bad + `],"hi":[1]}}`
		sc := new(estimateScratch)
		sc.body = []byte(body)
		sc.resetWire()
		if _, _, err := parseEstimateRequest(sc); err == nil {
			t.Errorf("parse(%s) accepted, want error", bad)
		}
	}
}

// unknownLenReader hides its concrete type from httptest.NewRequest so
// the request carries ContentLength -1, exercising the streamed-overflow
// branch of readBody rather than the declared-length rejection.
type unknownLenReader struct{ r *bytes.Reader }

func (u unknownLenReader) Read(p []byte) (int, error) { return u.r.Read(p) }

// TestReadBodyTruncation covers both MaxBodyBytes rejections: a declared
// Content-Length over the cap fails before any read, and a stream with
// unknown length is cut off as soon as the cap is crossed. A body at
// exactly the cap must reach the parser.
func TestReadBodyTruncation(t *testing.T) {
	const limit = 1 << 10
	s := NewServer(Options{MaxBodyBytes: limit})
	h := s.Handler()

	big := bytes.Repeat([]byte("x"), limit+1)

	// Declared length over the cap: rejected up front.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(big)))
	if w.Code != http.StatusBadRequest || !bytes.Contains(w.Body.Bytes(), []byte("request body too large")) {
		t.Fatalf("declared oversize: HTTP %d %q", w.Code, w.Body.String())
	}

	// Unknown length (chunked-style): rejected once the cap is crossed.
	w = httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/estimate", unknownLenReader{bytes.NewReader(big)})
	if req.ContentLength != -1 {
		t.Fatalf("test harness: ContentLength = %d, want -1", req.ContentLength)
	}
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest || !bytes.Contains(w.Body.Bytes(), []byte("request body too large")) {
		t.Fatalf("streamed oversize: HTTP %d %q", w.Code, w.Body.String())
	}

	// Exactly at the cap: readBody succeeds and the parser sees the body
	// (the 404 proves it got past transport into model lookup).
	atLimit := append([]byte(`{"model":"nosuch","query":{"lo":[0],"hi":[1]}`), bytes.Repeat([]byte(" "), limit-46)...)
	atLimit = append(atLimit, '}')
	if len(atLimit) != limit {
		t.Fatalf("test harness: body is %d bytes, want %d", len(atLimit), limit)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(atLimit)))
	if w.Code != http.StatusNotFound {
		t.Fatalf("at-limit body: HTTP %d %q, want 404 model-not-found", w.Code, w.Body.String())
	}
}
