package serve

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// The NDJSON streaming endpoint: POST /v1/estimate/stream?model=NAME.
//
// The batched JSON endpoint pays the full HTTP envelope (headers, routing,
// one response document) per request. For bulk consumers — a query
// optimizer warming its plan cache, a benchmark harness, a backfill — the
// streaming endpoint amortizes that envelope over one connection: the
// client writes one wire-query object per line, the server batches up to
// streamBatchSize parsed queries, evaluates each batch on the shared
// deterministic kernel (core.EstimateRangesInto via its traced wrapper,
// honoring Options.EstimateWorkers), and writes one {"estimate":x} line
// per query, in request order, flushing after every batch.
//
// A malformed line does not abort the stream: the server flushes the
// queries batched so far (preserving output order) and then writes an
// {"error":"query N: ..."} line in that query's position, so the client
// can still correlate responses to requests by line count.
//
// The serving model is resolved once per connection; the response header
// X-Model-Generation echoes the generation that answers the whole stream,
// so a long stream is deterministic even while hot swaps land.

// streamBatchSize bounds how many queries accumulate before the kernel
// runs. Large enough to clear core's parallel threshold (64) and amortize
// flushes; small enough that the first results of a long stream appear
// quickly.
const streamBatchSize = 256

// streamMaxLine bounds one NDJSON line (a single query object).
const streamMaxLine = 64 << 10

var streamReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, streamMaxLine) }}
var streamWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 64<<10) }}

func (s *Server) handleEstimateStream(w http.ResponseWriter, r *http.Request) {
	name := modelName(r.URL.Query().Get("model"))
	entry, ok := s.registry.Get(name)
	if !ok {
		s.writeError(w, http.StatusNotFound, "model %q not registered", name)
		return
	}
	dim, _ := modelDim(entry.Model)
	sp := obs.SpanFromContext(r.Context())

	// The handler interleaves request-body reads with response writes. Go's
	// HTTP/1 server is half-duplex by default: once the response starts, it
	// may stop delivering the rest of the body, which truncates long streams
	// whose upload is still in flight when the first batch flushes. Full
	// duplex opts out of that; writers that don't support it (HTTP/2 is
	// always full-duplex) return an error we can ignore.
	_ = http.NewResponseController(w).EnableFullDuplex()

	sc := scratchPool.Get().(*estimateScratch)
	defer scratchPool.Put(sc)
	br := streamReaderPool.Get().(*bufio.Reader)
	br.Reset(r.Body)
	defer streamReaderPool.Put(br)
	bw := streamWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer streamWriterPool.Put(bw)

	h := w.Header()
	h["Content-Type"] = ndjsonContentType
	h.Set("X-Model-Generation", strconv.FormatInt(entry.Generation, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// flush evaluates the batched queries and writes one result line per
	// query. Returning false means the client is gone and the stream ends.
	sc.resetWire()
	flush := func() bool {
		if len(sc.ranges) == 0 {
			return true
		}
		ests := grow(&sc.ests, len(sc.ranges))
		core.EstimateRangesTraced(entry.Model, sc.ranges, s.opts.EstimateWorkers, ests, sp)
		out := sc.out[:0]
		for _, v := range ests {
			out = append(out, `{"estimate":`...)
			out = appendJSONFloat(out, v)
			out = append(out, '}', '\n')
		}
		sc.out = out
		_, err := bw.Write(out)
		sc.resetWire()
		if err != nil {
			s.encodeFailed("stream write", err)
			return false
		}
		return true
	}
	// fail writes one in-order error line for the current query, flushing
	// the batch ahead of it first.
	qindex := 0
	fail := func(msg string) bool {
		if !flush() {
			return false
		}
		out := append(sc.out[:0], `{"error":"query `...)
		out = strconv.AppendInt(out, int64(qindex), 10)
		out = append(out, `: `...)
		// Re-escape through the string encoder minus its quotes.
		quoted := appendJSONString(sc.strbuf[:0], []byte(msg))
		out = append(out, quoted[1:len(quoted)-1]...)
		sc.strbuf = quoted[:0]
		out = append(out, '"', '}', '\n')
		sc.out = out
		if _, err := bw.Write(out); err != nil {
			s.encodeFailed("stream write", err)
			return false
		}
		return true
	}

	var qp queryParts
	done := false
	for !done {
		line, err := br.ReadSlice('\n')
		switch {
		case err == bufio.ErrBufferFull:
			// Skip the oversized line's remainder, then report in order.
			for err == bufio.ErrBufferFull {
				_, err = br.ReadSlice('\n')
			}
			if !fail("line exceeds 64KiB") {
				return
			}
			qindex++
			continue
		case err != nil && len(line) == 0:
			done = true
			continue
		case err != nil:
			done = true // final unterminated line: parse it, then stop
		}
		if blank(line) {
			continue
		}
		p := wireParser{b: line, sc: sc}
		perr := p.parseQueryObject(&qp)
		var q = geom.Range(nil)
		if perr == nil {
			q, perr = qp.build(sc)
		}
		if perr == nil && dim > 0 && q.Dim() != dim {
			if !fail(dimMismatch(q.Dim(), name, dim)) {
				return
			}
			qindex++
			continue
		}
		if perr != nil {
			if !fail(perr.Error()) {
				return
			}
			qindex++
			continue
		}
		sc.ranges = append(sc.ranges, q)
		qindex++
		if len(sc.ranges) >= streamBatchSize {
			if !flush() {
				return
			}
			if err := bw.Flush(); err != nil {
				s.encodeFailed("stream flush", err)
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	if !flush() {
		return
	}
	if err := bw.Flush(); err != nil {
		s.encodeFailed("stream flush", err)
	}
}

// blank reports whether an NDJSON line holds only whitespace.
func blank(line []byte) bool {
	for _, c := range line {
		switch c {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// dimMismatch formats the dimension error exactly like the batch path.
func dimMismatch(qdim int, name string, dim int) string {
	return fmt.Sprintf("dimension %d, model %q has dimension %d", qdim, name, dim)
}
