package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/hist"
	"repro/internal/isomer"
	"repro/internal/obs"
	"repro/internal/ptshist"
	"repro/internal/quicksel"
)

// Entry is one immutable registry snapshot: a model plus its provenance.
// Readers obtain an Entry and use it without locking; a hot-swap publishes
// a brand-new Entry, so an in-flight Estimate never sees a torn model.
type Entry struct {
	Model core.Model
	// Generation counts swaps of this name, starting at 1. An estimate
	// response echoes it so clients can tell which model answered.
	Generation int64
	// Source records where the model came from: "upload", "file", or
	// "retrain".
	Source string
	// LoadedAt is when the entry was published.
	LoadedAt time.Time
}

// slot holds one name's hot-swappable entry. Readers only touch the
// atomic pointer; writers (upload, retrain) serialize on the mutex so
// generation numbers are assigned exactly once per published entry.
type slot struct {
	ptr atomic.Pointer[Entry]
	mu  sync.Mutex
	gen int64
}

// Registry maps model names to hot-swappable entries. Lookups are two
// steps: a read-locked map access to find the slot, then an atomic load of
// the current entry. Swaps store a new entry into the slot atomically, so
// the estimate path never blocks on a writer.
type Registry struct {
	mu    sync.RWMutex
	slots map[string]*slot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{slots: make(map[string]*slot)}
}

// Get returns the current entry for name, or false if the name has never
// been set.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	sl, ok := r.slots[name]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	e := sl.ptr.Load()
	return e, e != nil
}

// GetBytes is Get keyed by raw name bytes. The map index with an inline
// string conversion compiles to a no-copy lookup, so the zero-allocation
// estimate path can resolve a model without materializing a string.
//
//selvet:zeroalloc
func (r *Registry) GetBytes(name []byte) (*Entry, bool) {
	r.mu.RLock()
	sl, ok := r.slots[string(name)]
	r.mu.RUnlock()
	if !ok {
		return nil, false
	}
	e := sl.ptr.Load()
	return e, e != nil
}

// getOrCreateSlot finds name's slot, creating it on first use.
func (r *Registry) getOrCreateSlot(name string) *slot {
	r.mu.RLock()
	sl, ok := r.slots[name]
	r.mu.RUnlock()
	if ok {
		return sl
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sl, ok = r.slots[name]; !ok {
		sl = &slot{}
		r.slots[name] = sl
	}
	return sl
}

// Set publishes a model under name, creating the slot on first use, and
// returns the new entry. Concurrent Estimate calls keep using the entry
// they already loaded; subsequent calls see the new one.
func (r *Registry) Set(name, source string, m core.Model) *Entry {
	// Build the acceleration index before publishing (and outside the
	// slot lock) so the first estimate after the swap is already fast.
	core.Accelerate(m)
	sl := r.getOrCreateSlot(name)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.gen++
	e := &Entry{Model: m, Generation: sl.gen, Source: source, LoadedAt: time.Now()}
	sl.ptr.Store(e)
	return e
}

// CompareAndSwap publishes a model under name only if the current entry is
// still old (same pointer). It returns the new entry, or nil if the slot
// moved on — the retrainer uses this so a concurrent upload wins over a
// stale retrain.
func (r *Registry) CompareAndSwap(name, source string, old *Entry, m core.Model) *Entry {
	r.mu.RLock()
	sl, ok := r.slots[name]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	core.Accelerate(m) // pre-publish, outside the slot lock (see Set)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.ptr.Load() != old {
		return nil
	}
	sl.gen++
	e := &Entry{Model: m, Generation: sl.gen, Source: source, LoadedAt: time.Now()}
	sl.ptr.Store(e)
	return e
}

// Names returns the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.slots))
	for name, sl := range r.slots {
		if sl.ptr.Load() != nil {
			names = append(names, name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// modelTypeName returns the envelope tag used for a model in /statz output.
func modelTypeName(m core.Model) string {
	switch m.(type) {
	case *hist.Model:
		return "quadhist"
	case *ptshist.Model:
		return "ptshist"
	case *quicksel.Model:
		return "quicksel"
	case *isomer.Model:
		return "isomer"
	case *gmm.Model:
		return "gaussmix"
	}
	return fmt.Sprintf("%T", m)
}

// modelDim returns the ambient dimensionality of a model, needed to rebuild
// a trainer for retraining. Not every model records it explicitly, so it is
// recovered from the bucket geometry.
func modelDim(m core.Model) (int, bool) {
	switch t := m.(type) {
	case *hist.Model:
		if len(t.Buckets) > 0 {
			return t.Buckets[0].Dim(), true
		}
	case *ptshist.Model:
		if len(t.Points) > 0 {
			return len(t.Points[0]), true
		}
	case *quicksel.Model:
		if len(t.Buckets) > 0 {
			return t.Buckets[0].Dim(), true
		}
	case *isomer.Model:
		if len(t.Buckets) > 0 {
			return t.Buckets[0].Dim(), true
		}
	case *gmm.Model:
		if len(t.Components) > 0 {
			return len(t.Components[0].Mean), true
		}
	}
	return 0, false
}

// maxRetrainBuckets caps the complexity of retrained models. Offline
// training in a maintenance window can afford the paper's 4×-sample bucket
// budget; a retrain competes with serving traffic on the same node, so its
// cost is bounded.
const maxRetrainBuckets = 512

// trainerFor builds a trainer of the same family as m, sized for a
// feedback batch of n queries, with its TrainLog attached (log may be
// nil). The retrainer refits with the same method that produced the
// serving model, per the paper's online-learning loop.
func trainerFor(m core.Model, n int, seed uint64, log *obs.TrainLog) (core.Trainer, error) {
	dim, ok := modelDim(m)
	if !ok {
		return nil, fmt.Errorf("serve: cannot infer dimensionality of empty %s model", modelTypeName(m))
	}
	buckets := min(4*n, maxRetrainBuckets)
	switch m.(type) {
	case *hist.Model:
		tr := hist.New(dim, buckets)
		tr.Log = log
		return tr, nil
	case *ptshist.Model:
		tr := ptshist.New(dim, buckets, seed)
		tr.Log = log
		return tr, nil
	case *quicksel.Model:
		tr := quicksel.New(dim, seed)
		tr.Log = log
		return tr, nil
	case *isomer.Model:
		tr := isomer.New(dim)
		tr.Log = log
		return tr, nil
	}
	return nil, fmt.Errorf("serve: no retrainer for model type %s", modelTypeName(m))
}
