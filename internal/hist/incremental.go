package hist

import (
	"errors"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/quadtree"
	"repro/internal/solver"
)

// Incremental maintains a QUADHIST model under streaming query feedback —
// the deployment mode of query-driven histograms in a live optimizer
// (STHoles and ISOMER likewise ingest one observed query at a time). The
// quadtree refines online with each observation (Algorithm 2 is inherently
// incremental), and the weights are re-estimated every RefitEvery
// observations over the full feedback history.
//
// Because the quadtree partition is order-independent (Lemma A.4), an
// Incremental that has seen a workload in any order owns exactly the same
// buckets as a batch Trainer given that workload — property-tested in
// incremental_test.go.
type Incremental struct {
	dim        int
	tau        float64
	refitEvery int
	sol        solver.Method

	tree     *quadtree.Tree
	samples  []core.LabeledQuery
	model    *Model
	sinceFit int
}

// IncrementalOptions configures streaming training.
type IncrementalOptions struct {
	// Tau is the split threshold (must be positive: there is no whole-
	// workload available up front to search it automatically).
	Tau float64
	// MaxBuckets caps the partition size (0 = unlimited).
	MaxBuckets int
	// RefitEvery re-estimates weights after this many observations
	// (default 32). Refit is also available on demand.
	RefitEvery int
	// Solver picks the weight-estimation algorithm.
	Solver solver.Method
}

// NewIncremental returns a streaming QUADHIST for dimension dim.
func NewIncremental(dim int, opts IncrementalOptions) (*Incremental, error) {
	if opts.Tau <= 0 {
		return nil, errors.New("hist: incremental training needs an explicit positive Tau")
	}
	refit := opts.RefitEvery
	if refit == 0 {
		refit = 32
	}
	var qopts []quadtree.Option
	if opts.MaxBuckets > 0 {
		qopts = append(qopts, quadtree.WithMaxLeaves(opts.MaxBuckets))
	}
	return &Incremental{
		dim:        dim,
		tau:        opts.Tau,
		refitEvery: refit,
		sol:        opts.Solver,
		tree:       quadtree.New(dim, qopts...),
	}, nil
}

// Observe ingests one feedback record (query, observed selectivity),
// refining the bucket structure immediately and re-fitting weights on the
// configured cadence.
func (inc *Incremental) Observe(q geom.Range, sel float64) error {
	rvol := q.IntersectBoxVolume(geom.UnitCube(inc.dim))
	inc.tree.Insert(q, sel, rvol, inc.tau)
	inc.samples = append(inc.samples, core.LabeledQuery{R: q, Sel: sel})
	inc.sinceFit++
	if inc.sinceFit >= inc.refitEvery {
		return inc.Refit()
	}
	return nil
}

// Refit re-estimates the bucket weights from the full feedback history.
func (inc *Incremental) Refit() error {
	buckets := inc.tree.Leaves()
	a := core.DesignMatrixBoxes(inc.samples, buckets)
	w, err := solver.WeightsWith(inc.sol, a, core.Selectivities(inc.samples))
	if err != nil {
		return err
	}
	inc.model = &Model{Buckets: buckets, Weights: w}
	inc.sinceFit = 0
	return nil
}

// Observed returns the number of feedback records ingested.
func (inc *Incremental) Observed() int { return len(inc.samples) }

// NumBuckets returns the current partition size (which may be ahead of the
// last refit model).
func (inc *Incremental) NumBuckets() int { return inc.tree.NumLeaves() }

// Estimate returns the current model's prediction. Before any refit it
// falls back to the uniform prior (volume of the range inside the cube) —
// the estimate a fresh optimizer without statistics would use.
func (inc *Incremental) Estimate(r geom.Range) float64 {
	if inc.model == nil {
		return core.Clamp01(r.IntersectBoxVolume(geom.UnitCube(inc.dim)))
	}
	return inc.model.Estimate(r)
}

// Snapshot returns the last refit model (nil before the first refit). The
// returned model is immutable: later observations build a new one.
func (inc *Incremental) Snapshot() *Model { return inc.model }

var _ core.Model = (*Incremental)(nil)
