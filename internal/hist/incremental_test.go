package hist

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestIncrementalRequiresTau(t *testing.T) {
	if _, err := NewIncremental(2, IncrementalOptions{}); err == nil {
		t.Fatal("zero Tau accepted")
	}
}

func TestIncrementalConvergesToBatchQuality(t *testing.T) {
	ds := dataset.Power(6000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 200, 150)

	inc, err := NewIncremental(2, IncrementalOptions{Tau: 0.005, RefitEvery: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range train {
		if err := inc.Observe(z.R, z.Sel); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Refit(); err != nil {
		t.Fatal(err)
	}
	incRMS := core.RMS(inc, test)

	batch, err := (&Trainer{Dim: 2, Opts: Options{Tau: 0.005}}).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	batchRMS := core.RMS(batch, test)
	if math.Abs(incRMS-batchRMS) > 1e-9 {
		t.Fatalf("incremental RMS %v != batch RMS %v (same τ, same feedback)", incRMS, batchRMS)
	}
}

// Lemma A.4 in streaming form: two Incrementals fed the same feedback in
// different orders end with identical bucket sets.
func TestIncrementalOrderIndependence(t *testing.T) {
	ds := dataset.Power(4000, 2).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 7)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 60)

	buildKeys := func(order []int) []string {
		inc, err := NewIncremental(2, IncrementalOptions{Tau: 0.01, RefitEvery: 1 << 30})
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := inc.Observe(train[i].R, train[i].Sel); err != nil {
				t.Fatal(err)
			}
		}
		if err := inc.Refit(); err != nil {
			t.Fatal(err)
		}
		m := inc.Snapshot()
		keys := make([]string, len(m.Buckets))
		for i, b := range m.Buckets {
			keys[i] = b.String()
		}
		sort.Strings(keys)
		return keys
	}

	base := make([]int, len(train))
	for i := range base {
		base[i] = i
	}
	keys1 := buildKeys(base)
	r := rng.New(3)
	for trial := 0; trial < 3; trial++ {
		keys2 := buildKeys(r.Perm(len(train)))
		if len(keys1) != len(keys2) {
			t.Fatalf("bucket counts differ: %d vs %d", len(keys1), len(keys2))
		}
		for i := range keys1 {
			if keys1[i] != keys2[i] {
				t.Fatalf("buckets differ at %d: %s vs %s", i, keys1[i], keys2[i])
			}
		}
	}
}

func TestIncrementalEstimateBeforeRefit(t *testing.T) {
	inc, err := NewIncremental(2, IncrementalOptions{Tau: 0.01, RefitEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform prior: estimate equals clipped volume.
	q := geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.6, 0.6})
	if got := inc.Estimate(q); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("prior estimate = %v, want 0.25", got)
	}
	if inc.Snapshot() != nil {
		t.Fatal("snapshot before refit should be nil")
	}
}

func TestIncrementalRefitCadence(t *testing.T) {
	ds := dataset.Power(3000, 3).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 9)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 25)

	inc, err := NewIncremental(2, IncrementalOptions{Tau: 0.02, RefitEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, z := range train {
		if err := inc.Observe(z.R, z.Sel); err != nil {
			t.Fatal(err)
		}
		if i == 9 && inc.Snapshot() == nil {
			t.Fatal("no refit after RefitEvery observations")
		}
	}
	if inc.Observed() != 25 {
		t.Fatalf("observed %d", inc.Observed())
	}
	// Model improves with feedback versus the uniform prior.
	test := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 100)
	if err := inc.Refit(); err != nil {
		t.Fatal(err)
	}
	fitted := core.RMS(inc, test)
	prior, err := NewIncremental(2, IncrementalOptions{Tau: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	priorRMS := core.RMS(prior, test)
	if fitted >= priorRMS {
		t.Fatalf("fitted RMS %v not better than uniform prior %v", fitted, priorRMS)
	}
}

func TestIncrementalBucketCap(t *testing.T) {
	inc, err := NewIncremental(2, IncrementalOptions{Tau: 1e-6, MaxBuckets: 30, RefitEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	for i := 0; i < 50; i++ {
		c := geom.Point{r.Float64(), r.Float64()}
		q := geom.BoxFromCenter(c, []float64{0.5, 0.5})
		if err := inc.Observe(q, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if inc.NumBuckets() > 30 {
		t.Fatalf("bucket cap exceeded: %d", inc.NumBuckets())
	}
}
