package hist

import (
	"math"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/rng"
)

// gridModel builds a k×k grid partition of [0,1]² with random simplex
// weights — a synthetic QUADHIST stand-in that skips training.
func gridModel(r *rng.RNG, k int) *Model {
	buckets := make([]geom.Box, 0, k*k)
	weights := make([]float64, 0, k*k)
	total := 0.0
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			buckets = append(buckets, geom.NewBox(
				geom.Point{float64(i) / float64(k), float64(j) / float64(k)},
				geom.Point{float64(i+1) / float64(k), float64(j+1) / float64(k)},
			))
			w := r.Float64()
			weights = append(weights, w)
			total += w
		}
	}
	for i := range weights {
		weights[i] /= total
	}
	return &Model{Buckets: buckets, Weights: weights}
}

// Above the indexing threshold, Estimate must route through the shared
// BVH and agree with the flat kernel; Accelerate is idempotent and does
// not change results.
func TestEstimateAcceleratedMatchesFlat(t *testing.T) {
	r := rng.New(101)
	m := gridModel(r, 32) // 1024 buckets, well above bvh.IndexThreshold
	queries := make([]geom.Range, 0, 30)
	for i := 0; i < 10; i++ {
		c := geom.Point{r.Float64(), r.Float64()}
		queries = append(queries,
			geom.BoxFromCenter(c, []float64{r.Float64(), r.Float64()}),
			geom.NewBall(c, 0.05+0.4*r.Float64()),
			geom.NewHalfspace(geom.Point{2*r.Float64() - 1, 2*r.Float64() - 1}, r.Float64()-0.25),
		)
	}
	for _, q := range queries {
		want := bvh.EstimateFlat(m.Buckets, m.Weights, q)
		if got := m.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("accelerated estimate %v != flat %v for %v", got, want, q)
		}
	}
	m.Accelerate()
	m.Accelerate() // idempotent
	for _, q := range queries {
		want := bvh.EstimateFlat(m.Buckets, m.Weights, q)
		if got := m.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("post-Accelerate estimate %v != flat %v for %v", got, want, q)
		}
	}
}

// Below the threshold the model stays on the flat kernel (no index),
// and estimates are bit-identical to the reference sum.
func TestEstimateSmallModelStaysFlat(t *testing.T) {
	r := rng.New(102)
	m := gridModel(r, 7) // 49 buckets < bvh.IndexThreshold
	for i := 0; i < 20; i++ {
		q := geom.BoxFromCenter(geom.Point{r.Float64(), r.Float64()}, []float64{r.Float64(), r.Float64()})
		if got, want := m.Estimate(q), bvh.EstimateFlat(m.Buckets, m.Weights, q); got != want {
			t.Fatalf("small-model estimate %v != flat %v", got, want)
		}
	}
}
