package hist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/workload"
)

func trainTest2D(t *testing.T, nTrain, nTest int) (train, test []core.LabeledQuery) {
	t.Helper()
	ds := dataset.Power(8000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 42)
	return g.TrainTest(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, nTrain, nTest)
}

func TestTrainBasic(t *testing.T) {
	train, test := trainTest2D(t, 150, 150)
	m, err := New(2, 400).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() == 0 || m.NumBuckets() > 400 {
		t.Fatalf("bucket count %d outside (0, 400]", m.NumBuckets())
	}
	// Weights on the simplex.
	sum := 0.0
	for _, w := range m.Weights {
		if w < -1e-12 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Useful accuracy on held-out queries (loose sanity bound; the
	// precise curves are exercised by the experiment harness).
	if rms := core.RMS(m, test); rms > 0.15 {
		t.Fatalf("test RMS = %v, implausibly high", rms)
	}
	// Training error below trivial predictors.
	if rms := core.RMS(m, train); rms > 0.12 {
		t.Fatalf("train RMS = %v", rms)
	}
}

func TestEstimatesInRange(t *testing.T) {
	train, test := trainTest2D(t, 80, 200)
	m, err := New(2, 200).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v outside [0,1]", e)
		}
	}
	// Whole-space query estimates ≈ 1 (all mass).
	if e := m.Estimate(geom.UnitCube(2)); math.Abs(e-1) > 1e-6 {
		t.Fatalf("unit-cube estimate = %v, want 1", e)
	}
}

// Histogram additivity: for a box split into two halves, the estimates add
// to the estimate of the whole (within fp tolerance) — the "consistency"
// property the paper requires of valid models.
func TestAdditivityOverDisjointBoxes(t *testing.T) {
	train, _ := trainTest2D(t, 100, 0)
	m, err := New(2, 300).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	whole := geom.NewBox(geom.Point{0.1, 0.2}, geom.Point{0.7, 0.9})
	left, right := whole.Split(0)
	sumParts := 0.0
	for j, b := range m.Buckets {
		v := b.Volume()
		if v == 0 {
			continue
		}
		sumParts += (left.IntersectBoxVolume(b) + right.IntersectBoxVolume(b)) / v * m.Weights[j]
	}
	eWhole := 0.0
	for j, b := range m.Buckets {
		v := b.Volume()
		if v == 0 {
			continue
		}
		eWhole += whole.IntersectBoxVolume(b) / v * m.Weights[j]
	}
	if math.Abs(sumParts-eWhole) > 1e-9 {
		t.Fatalf("additivity violated: %v + parts vs %v", sumParts, eWhole)
	}
}

// Monotonicity: enlarging a query can only increase the estimate.
func TestMonotonicity(t *testing.T) {
	train, _ := trainTest2D(t, 100, 0)
	m, err := New(2, 300).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	small := geom.NewBox(geom.Point{0.3, 0.3}, geom.Point{0.5, 0.5})
	big := geom.NewBox(geom.Point{0.2, 0.2}, geom.Point{0.6, 0.6})
	if m.Estimate(small) > m.Estimate(big)+1e-9 {
		t.Fatalf("monotonicity violated: %v > %v", m.Estimate(small), m.Estimate(big))
	}
}

func TestExplicitTau(t *testing.T) {
	train, _ := trainTest2D(t, 60, 0)
	coarse, err := (&Trainer{Dim: 2, Opts: Options{Tau: 0.2, MaxBuckets: 100000}}).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := (&Trainer{Dim: 2, Opts: Options{Tau: 0.01, MaxBuckets: 100000}}).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.NumBuckets() >= fine.NumBuckets() {
		t.Fatalf("smaller τ should give more buckets: %d vs %d", coarse.NumBuckets(), fine.NumBuckets())
	}
}

func TestSearchTauHitsBudget(t *testing.T) {
	train, _ := trainTest2D(t, 100, 0)
	for _, budget := range []int{50, 200, 800} {
		m, err := New(2, budget).TrainHist(train)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumBuckets() > budget {
			t.Fatalf("budget %d exceeded: %d buckets", budget, m.NumBuckets())
		}
		// The search should land reasonably close to the budget, not
		// collapse to a single bucket.
		if m.NumBuckets() < budget/8 {
			t.Fatalf("budget %d badly underused: %d buckets", budget, m.NumBuckets())
		}
	}
}

func TestMoreTrainingReducesError(t *testing.T) {
	// The learnability shape of Fig 9/11 at sanity-check scale.
	ds := dataset.Power(8000, 3).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 7)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	test := g.Generate(spec, 300)
	var rmsSmall, rmsBig float64
	{
		m, err := New(2, 100).TrainHist(g.Generate(spec, 25))
		if err != nil {
			t.Fatal(err)
		}
		rmsSmall = core.RMS(m, test)
	}
	{
		m, err := New(2, 1200).TrainHist(g.Generate(spec, 300))
		if err != nil {
			t.Fatal(err)
		}
		rmsBig = core.RMS(m, test)
	}
	if rmsBig >= rmsSmall {
		t.Fatalf("300-query model (RMS %v) not better than 25-query model (RMS %v)", rmsBig, rmsSmall)
	}
}

func TestBallQueryTraining2D(t *testing.T) {
	ds := dataset.Power(6000, 5).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 11)
	spec := workload.Spec{Class: workload.Ball, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 100, 100)
	m, err := New(2, 300).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.2 {
		t.Fatalf("ball-query test RMS = %v", rms)
	}
}

func TestHalfspaceQueryTraining2D(t *testing.T) {
	ds := dataset.Power(6000, 6).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 13)
	spec := workload.Spec{Class: workload.Halfspace, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 100, 100)
	m, err := New(2, 300).TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.2 {
		t.Fatalf("halfspace-query test RMS = %v", rms)
	}
}

func TestLInfObjective(t *testing.T) {
	train, _ := trainTest2D(t, 60, 0)
	tr := &Trainer{Dim: 2, Opts: Options{MaxBuckets: 80, Objective: ObjectiveLInf}}
	m, err := tr.TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	linfLInf := core.LInf(m, train)
	// L∞-trained model should have training L∞ no worse than the
	// L2-trained model on the same buckets.
	tr2 := &Trainer{Dim: 2, Opts: Options{MaxBuckets: 80}}
	m2, err := tr2.TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	if linfLInf > core.LInf(m2, train)+1e-6 {
		t.Fatalf("L∞ objective (%v) worse than L2 objective (%v) in L∞ norm on train",
			linfLInf, core.LInf(m2, train))
	}
}

func TestSolverChoiceEquivalence(t *testing.T) {
	train, test := trainTest2D(t, 80, 100)
	var models []*Model
	for _, method := range []solver.Method{solver.MethodNNLS, solver.MethodPGD} {
		tr := &Trainer{Dim: 2, Opts: Options{MaxBuckets: 150, Solver: method}}
		m, err := tr.TrainHist(train)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	d := core.RMS(models[0], test) - core.RMS(models[1], test)
	if math.Abs(d) > 0.03 {
		t.Fatalf("NNLS and PGD test RMS differ by %v", d)
	}
}

func TestEmptyTrainingSetFails(t *testing.T) {
	if _, err := New(2, 100).TrainHist(nil); err == nil {
		t.Fatal("training on empty set succeeded")
	}
}

func TestTrainerInterface(t *testing.T) {
	train, _ := trainTest2D(t, 30, 0)
	var tr core.Trainer = New(2, 64)
	if tr.Name() != "QuadHist" {
		t.Fatalf("name = %q", tr.Name())
	}
	m, err := tr.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() == 0 {
		t.Fatal("interface-trained model has no buckets")
	}
}

// searchTau is monotone in its budget: a larger bucket budget never yields
// fewer buckets, and the cap is always respected.
func TestSearchTauMonotoneInBudget(t *testing.T) {
	train, _ := trainTest2D(t, 120, 0)
	prev := 0
	for _, budget := range []int{40, 80, 160, 320, 640} {
		m, err := New(2, budget).TrainHist(train)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumBuckets() > budget {
			t.Fatalf("budget %d exceeded: %d", budget, m.NumBuckets())
		}
		if m.NumBuckets() < prev {
			t.Fatalf("bucket count fell from %d to %d as budget grew", prev, m.NumBuckets())
		}
		prev = m.NumBuckets()
	}
}

// Training is insensitive to training-set ordering in the respects the
// optimization pins down: identical buckets (Lemma A.4, exactly) and
// identical fitted training selectivities (the optimal A·w of a convex
// least-squares program is unique even when w itself is not — with more
// buckets than queries the weight vector is underdetermined, so held-out
// estimates may differ between equally-optimal solutions).
func TestModelOrderIndependentEndToEnd(t *testing.T) {
	ds := dataset.Power(4000, 9).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 3)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, _ := g.TrainTest(spec, 60, 60)

	tr := &Trainer{Dim: 2, Opts: Options{Tau: 0.01, Solver: solver.MethodNNLS}}
	m1, err := tr.TrainHist(train)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := make([]core.LabeledQuery, len(train))
	r := rng.New(8)
	for i, idx := range r.Perm(len(train)) {
		shuffled[i] = train[idx]
	}
	m2, err := tr.TrainHist(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if m1.NumBuckets() != m2.NumBuckets() {
		t.Fatalf("bucket counts differ across orders: %d vs %d", m1.NumBuckets(), m2.NumBuckets())
	}
	for _, z := range train {
		a, b := m1.Estimate(z.R), m2.Estimate(z.R)
		if math.Abs(a-b) > 2e-3 {
			t.Fatalf("order-dependent fitted value: %v vs %v", a, b)
		}
	}
}
