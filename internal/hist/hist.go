// Package hist implements QUADHIST (Section 3.2 of the paper): a
// query-driven histogram whose buckets are the leaves of a quadtree refined
// by the training workload's geometry and selectivities, with weights fit by
// the generic constrained least-squares program of Equation 8.
//
// QUADHIST is the paper's generic instantiation for low-dimensional data.
// Regardless of the query class — orthogonal range, halfspace, or ball —
// the buckets are axis-aligned boxes, so prediction only needs
// range-vs-box intersection volumes (exact in the geometry substrate).
package hist

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/quadtree"
	"repro/internal/solver"
)

// Objective selects the training loss of Section 4.6.
type Objective int

const (
	// ObjectiveL2 is the mean-squared loss of Equation 8 (default).
	ObjectiveL2 Objective = iota
	// ObjectiveLInf minimizes the maximum absolute training error via LP.
	ObjectiveLInf
)

// Options configures QUADHIST training.
type Options struct {
	// Tau is the split threshold of Algorithm 2. If zero, it is chosen by
	// binary search so that the bucket count approaches MaxBuckets (the
	// paper controls model size "by varying τ or adding a hard
	// termination condition").
	Tau float64
	// MaxBuckets caps model complexity. Zero means unlimited (valid only
	// with explicit Tau).
	MaxBuckets int
	// Solver picks the weight-estimation algorithm (auto by default).
	Solver solver.Method
	// Objective picks the training loss (L2 by default).
	Objective Objective
}

// Trainer builds QUADHIST models for a fixed dimensionality.
type Trainer struct {
	Dim  int
	Opts Options
	// Log, when non-nil, collects per-stage timings and solver iteration
	// counts (and mirrors the stages as trace spans); see obs.TrainLog.
	Log *obs.TrainLog
}

// New returns a QUADHIST trainer with the paper's defaults: model size
// capped at maxBuckets, τ found automatically.
func New(dim, maxBuckets int) *Trainer {
	return &Trainer{Dim: dim, Opts: Options{MaxBuckets: maxBuckets}}
}

// Name implements core.Trainer.
func (t *Trainer) Name() string { return "QuadHist" }

// Model is a trained QUADHIST histogram: disjoint box buckets partitioning
// [0,1]^d with simplex weights.
//
// Estimate is BVH-accelerated: at bvh.IndexThreshold buckets and above, a
// lazily-built, immutably-shared tree prunes disjoint subtrees and adds
// cached weight sums for contained ones, so large models answer in
// roughly O(√m) instead of O(m). Buckets and Weights must not be mutated
// after the first Estimate/Accelerate call.
type Model struct {
	Buckets []geom.Box
	Weights []float64

	accel bvh.Lazy
}

// Train implements core.Trainer.
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	m, err := t.TrainHist(samples)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// TrainHist is Train with a concrete return type.
func (t *Trainer) TrainHist(samples []core.LabeledQuery) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("hist: empty training set")
	}
	if t.Opts.Tau == 0 && t.Opts.MaxBuckets == 0 {
		return nil, errors.New("hist: need Tau or MaxBuckets")
	}
	qsamples := makeQuadSamples(samples, t.Dim)
	tau := t.Opts.Tau
	if tau == 0 {
		stage := t.Log.Stage("tau_search")
		tau = searchTau(t.Dim, qsamples, t.Opts.MaxBuckets)
		stage.End()
	}
	var opts []quadtree.Option
	if t.Opts.MaxBuckets > 0 {
		opts = append(opts, quadtree.WithMaxLeaves(t.Opts.MaxBuckets))
	}
	stage := t.Log.Stage("quadtree_build")
	tree := quadtree.BuildFromQueries(t.Dim, qsamples, tau, opts...)
	buckets := tree.Leaves()
	stage.EndItems(int64(len(buckets)))

	stage = t.Log.Stage("design_matrix")
	a := core.DesignMatrixBoxes(samples, buckets)
	s := core.Selectivities(samples)
	stage.EndItems(int64(a.Rows) * int64(a.Cols))

	stage = t.Log.Stage("solve")
	var w []float64
	var err error
	var sst solver.Stats
	if t.Opts.Objective == ObjectiveLInf {
		w, err = lp.MinimaxWeights(a, s)
		sst.Method = "lp_minimax"
	} else {
		w, err = solver.WeightsWithStats(t.Opts.Solver, a, s, &sst)
	}
	stage.EndItems(int64(sst.Iterations))
	if err != nil {
		return nil, fmt.Errorf("hist: weight estimation: %w", err)
	}
	t.Log.SetSolver(sst.Method, sst.Iterations)
	return &Model{Buckets: buckets, Weights: w}, nil
}

// makeQuadSamples precomputes clipped query volumes once per query.
func makeQuadSamples(samples []core.LabeledQuery, dim int) []quadtree.Sample {
	cube := geom.UnitCube(dim)
	out := make([]quadtree.Sample, len(samples))
	for i, z := range samples {
		out[i] = quadtree.Sample{R: z.R, S: z.Sel, RVol: z.R.IntersectBoxVolume(cube)}
	}
	return out
}

// searchTau binary-searches the split threshold so the resulting leaf count
// approaches (but does not exceed) maxBuckets. The leaf count is monotone
// non-increasing in τ, which makes bisection sound.
func searchTau(dim int, samples []quadtree.Sample, maxBuckets int) float64 {
	lo, hi := 1e-7, 1.0 // leaf counts: many .. 1
	leavesAt := func(tau float64) int {
		// The cap makes probe builds cheap even for tiny τ.
		t := quadtree.BuildFromQueries(dim, samples, tau,
			quadtree.WithMaxLeaves(maxBuckets+(1<<uint(dim))))
		return t.NumLeaves()
	}
	if leavesAt(lo) <= maxBuckets {
		return lo
	}
	for iter := 0; iter < 40 && hi/lo > 1.001; iter++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: τ spans decades
		if leavesAt(mid) <= maxBuckets {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// NumBuckets implements core.Model.
func (m *Model) NumBuckets() int { return len(m.Buckets) }

// Estimate implements core.Model: Equation 6, Σⱼ vol(Bⱼ∩R)/vol(Bⱼ)·wⱼ,
// through the shared BVH for large models and the flat kernel below the
// indexing threshold.
func (m *Model) Estimate(r geom.Range) float64 {
	if t := m.accel.Ensure(m.Buckets, m.Weights); t != nil {
		return t.Estimate(r)
	}
	return bvh.EstimateFlat(m.Buckets, m.Weights, r)
}

// Accelerate implements core.Accelerable: it forces the one-time BVH
// build so the first estimate after a model swap is already sub-linear.
func (m *Model) Accelerate() { m.accel.Ensure(m.Buckets, m.Weights) }

// IndexTree returns the built BVH index, or nil if none has been built
// yet. It never triggers a build; the binary snapshot writer uses it to
// decide whether a tree section can be persisted.
func (m *Model) IndexTree() *bvh.Tree { return m.accel.Built() }

// SeedIndex installs a prebuilt BVH as this model's index (winning only if
// none exists yet), so a model loaded from a binary snapshot skips the
// build entirely — the subsequent Accelerate is a no-op.
func (m *Model) SeedIndex(t *bvh.Tree) { m.accel.Seed(t) }

// WeightView implements core.Reweightable.
func (m *Model) WeightView() ([]geom.Box, []float64) { return m.Buckets, m.Weights }

// WithWeights implements core.Reweightable: the returned model shares the
// receiver's buckets, and when the receiver's BVH is built the new model
// is seeded with a reweighted tree (shared node structure, fresh subtree
// sums) — so publishing an online weight update costs one O(m) pass, not
// an index rebuild.
func (m *Model) WithWeights(w []float64) core.Model {
	if len(w) != len(m.Buckets) {
		panic("hist: WithWeights weight count mismatch")
	}
	nm := &Model{Buckets: m.Buckets, Weights: w}
	if t := m.accel.Built(); t != nil {
		nm.accel.Seed(t.Reweight(w))
	}
	return nm
}

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
var _ core.Accelerable = (*Model)(nil)
var _ core.Reweightable = (*Model)(nil)
