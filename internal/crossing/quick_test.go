package crossing

import (
	"testing"
	"testing/quick"
)

// Property: Hamming distance is a metric on bitsets — symmetric,
// zero-diagonal, triangle inequality.
func TestHammingDistanceIsMetric(t *testing.T) {
	mk := func(bits []bool) Bitset {
		b := NewBitset(len(bits))
		for i, v := range bits {
			if v {
				b.Set(i)
			}
		}
		return b
	}
	f := func(xs, ys, zs [64]bool) bool {
		a := mk(xs[:])
		b := mk(ys[:])
		c := mk(zs[:])
		dab := a.HammingDistance(b)
		dba := b.HammingDistance(a)
		if dab != dba {
			return false
		}
		if a.HammingDistance(a) != 0 {
			return false
		}
		dac := a.HammingDistance(c)
		dcb := c.HammingDistance(b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: set bits are exactly those reported by Get, and the Hamming
// distance equals the number of positions where the inputs differ.
func TestBitsetSetGetHamming(t *testing.T) {
	f := func(xs, ys [100]bool) bool {
		a := NewBitset(100)
		b := NewBitset(100)
		want := 0
		for i := 0; i < 100; i++ {
			if xs[i] {
				a.Set(i)
			}
			if ys[i] {
				b.Set(i)
			}
			if xs[i] != ys[i] {
				want++
			}
		}
		for i := 0; i < 100; i++ {
			if a.Get(i) != xs[i] || b.Get(i) != ys[i] {
				return false
			}
		}
		return a.HammingDistance(b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total crossing mass Σ_x I_x equals the sum of pairwise
// symmetric-difference sizes along the ordering, for any ordering.
func TestCrossingMassConservation(t *testing.T) {
	f := func(rows [6][32]bool, seed uint8) bool {
		inc := make([]Bitset, 6)
		for i := range inc {
			b := NewBitset(32)
			for j, v := range rows[i] {
				if v {
					b.Set(j)
				}
			}
			inc[i] = b
		}
		order := IdentityOrder(6)
		// Rotate by seed for variety of orderings.
		r := int(seed) % 6
		order = append(order[r:], order[:r]...)
		counts := CrossingCounts(inc, order, 32)
		total := 0
		for _, c := range counts {
			total += c
		}
		want := 0
		for i := 0; i+1 < len(order); i++ {
			want += inc[order[i]].HammingDistance(inc[order[i+1]])
		}
		return total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
