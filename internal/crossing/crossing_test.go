package crossing

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomBoxes(r *rng.RNG, k int) []geom.Range {
	out := make([]geom.Range, k)
	for i := range out {
		c := geom.Point{r.Float64(), r.Float64()}
		s := []float64{0.2 + 0.5*r.Float64(), 0.2 + 0.5*r.Float64()}
		out[i] = geom.BoxFromCenter(c, s)
	}
	return out
}

func randomPoints(r *rng.RNG, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{r.Float64(), r.Float64()}
	}
	return out
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unexpected bit set")
	}
	o := NewBitset(130)
	o.Set(0)
	o.Set(65)
	if d := b.HammingDistance(o); d != 3 {
		t.Fatalf("hamming distance = %d, want 3", d)
	}
}

func TestPopcount(t *testing.T) {
	cases := map[uint64]int{
		0: 0, 1: 1, 3: 2, 0xFF: 8, 0xFFFFFFFFFFFFFFFF: 64, 1 << 63: 1,
	}
	for x, want := range cases {
		if got := popcount(x); got != want {
			t.Fatalf("popcount(%x) = %d, want %d", x, got, want)
		}
	}
}

func TestIncidenceMatrix(t *testing.T) {
	ranges := []geom.Range{
		geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 1}),
		geom.NewBox(geom.Point{0.5, 0}, geom.Point{1, 1}),
	}
	pts := []geom.Point{{0.25, 0.5}, {0.75, 0.5}}
	inc := IncidenceMatrix(ranges, pts)
	if !inc[0].Get(0) || inc[0].Get(1) {
		t.Fatal("left-box incidence wrong")
	}
	if inc[1].Get(0) || !inc[1].Get(1) {
		t.Fatal("right-box incidence wrong")
	}
}

func TestCrossingCountsManual(t *testing.T) {
	// Three boxes sweeping right; x sits in box 0 and 1 but not 2.
	ranges := []geom.Range{
		geom.NewBox(geom.Point{0.0, 0}, geom.Point{0.4, 1}),
		geom.NewBox(geom.Point{0.2, 0}, geom.Point{0.6, 1}),
		geom.NewBox(geom.Point{0.5, 0}, geom.Point{0.9, 1}),
	}
	pts := []geom.Point{{0.3, 0.5}}
	inc := IncidenceMatrix(ranges, pts)
	counts := CrossingCounts(inc, []int{0, 1, 2}, 1)
	// x ∈ R0⊕R1? x in both → no. x ∈ R1⊕R2? in R1 only → yes. I_x = 1.
	if counts[0] != 1 {
		t.Fatalf("I_x = %d, want 1", counts[0])
	}
	// Reversed order gives the same count (symmetric pairs).
	counts2 := CrossingCounts(inc, []int{2, 1, 0}, 1)
	if counts2[0] != 1 {
		t.Fatalf("reversed I_x = %d, want 1", counts2[0])
	}
}

// The greedy ordering must produce a permutation and never increase the
// total crossing mass relative to what its own chaining guarantees; on
// structured range families it beats the identity ordering.
func TestGreedyOrderIsPermutation(t *testing.T) {
	r := rng.New(3)
	ranges := randomBoxes(r, 40)
	pts := randomPoints(r, 500)
	inc := IncidenceMatrix(ranges, pts)
	order := GreedyOrder(inc)
	seen := make([]bool, len(ranges))
	for _, i := range order {
		if seen[i] {
			t.Fatalf("duplicate index %d in order", i)
		}
		seen[i] = true
	}
	if len(order) != len(ranges) {
		t.Fatalf("order length %d", len(order))
	}
}

func TestGreedyBeatsIdentityOnAverage(t *testing.T) {
	r := rng.New(7)
	var greedyTotal, identityTotal float64
	for trial := 0; trial < 10; trial++ {
		ranges := randomBoxes(r, 60)
		pts := randomPoints(r, 400)
		inc := IncidenceMatrix(ranges, pts)
		_, meanG := MaxAndMean(CrossingCounts(inc, GreedyOrder(inc), len(pts)))
		_, meanI := MaxAndMean(CrossingCounts(inc, IdentityOrder(len(ranges)), len(pts)))
		greedyTotal += meanG
		identityTotal += meanI
	}
	if greedyTotal >= identityTotal {
		t.Fatalf("greedy ordering (%v) not better than identity (%v)", greedyTotal, identityTotal)
	}
}

// Lemma 2.4's scaling: the greedy ordering's max crossing number grows
// sublinearly in k (for boxes, λ = 4 → ~k^{3/4} log k), while the identity
// ordering grows linearly. Check the ratio max/k shrinks as k doubles.
func TestSublinearCrossingGrowth(t *testing.T) {
	r := rng.New(11)
	pts := randomPoints(r, 600)
	ratioAt := func(k int) float64 {
		ranges := randomBoxes(r, k)
		inc := IncidenceMatrix(ranges, pts)
		maxC, _ := MaxAndMean(CrossingCounts(inc, GreedyOrder(inc), len(pts)))
		return float64(maxC) / float64(k)
	}
	small := ratioAt(40)
	large := ratioAt(320)
	if large >= small {
		t.Fatalf("crossing ratio did not shrink: k=40 → %v, k=320 → %v", small, large)
	}
}

func TestTheoryBound(t *testing.T) {
	if TheoryBound(1, 4) != 0 {
		t.Fatal("k=1 bound nonzero")
	}
	// Monotone in k, sublinear relative growth.
	if TheoryBound(100, 4) <= TheoryBound(10, 4) {
		t.Fatal("bound not increasing in k")
	}
	if TheoryBound(1000, 4)/1000 >= TheoryBound(100, 4)/100 {
		t.Fatal("bound not sublinear")
	}
}

func TestEmptyInputs(t *testing.T) {
	if GreedyOrder(nil) != nil {
		t.Fatal("empty greedy order not nil")
	}
	maxC, meanC := MaxAndMean(nil)
	if maxC != 0 || meanC != 0 {
		t.Fatal("empty summary nonzero")
	}
}
