// Package crossing implements the low-crossing-number ordering machinery
// behind Lemma 2.4 of the paper, the combinatorial heart of the
// fat-shattering upper bound (Lemma 2.5).
//
// For an ordering R₁,…,R_k of ranges, a point x "crosses" the consecutive
// pair (Rᵢ, Rᵢ₊₁) if x lies in their symmetric difference; I_x is the
// number of pairs x crosses. Chazelle–Welzl (Theorem 4.3, quoted in the
// paper) prove an ordering exists with max_x I_x = O(k^{1−1/λ} log k) for
// dual VC dimension λ. This package provides the crossing-count
// measurement and a greedy nearest-neighbor ordering heuristic in
// symmetric-difference (Hamming) distance over a reference point sample —
// the standard practical surrogate for the reweighting construction — so
// the sublinear scaling can be verified empirically (experiment
// ext_crossing).
package crossing

import (
	"math"

	"repro/internal/geom"
)

// IncidenceMatrix returns rows[i][j] = 1 iff points[j] ∈ ranges[i], as a
// packed bitset per range.
func IncidenceMatrix(ranges []geom.Range, points []geom.Point) []Bitset {
	out := make([]Bitset, len(ranges))
	for i, r := range ranges {
		bs := NewBitset(len(points))
		for j, p := range points {
			if r.Contains(p) {
				bs.Set(j)
			}
		}
		out[i] = bs
	}
	return out
}

// Bitset is a fixed-length bit vector.
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns an all-zero bitset of length n.
func NewBitset(n int) Bitset {
	return Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Set sets bit i.
func (b Bitset) Set(i int) { b.words[i/64] |= 1 << uint(i%64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

// HammingDistance returns |b ⊕ o| (the sample estimate of the symmetric
// difference measure between two ranges).
func (b Bitset) HammingDistance(o Bitset) int {
	d := 0
	for w := range b.words {
		d += popcount(b.words[w] ^ o.words[w])
	}
	return d
}

func popcount(x uint64) int {
	// math/bits would do; hand-rolled to keep the package dependency-free
	// beyond geom (and because SWAR popcount is three lines).
	x = x - (x>>1)&0x5555555555555555
	x = x&0x3333333333333333 + (x>>2)&0x3333333333333333
	x = (x + x>>4) & 0x0f0f0f0f0f0f0f0f
	return int(x * 0x0101010101010101 >> 56)
}

// CrossingCounts returns, for each sample point, the number of consecutive
// pairs of the ordering it crosses: I_x = Σᵢ 1(x ∈ Rᵢ ⊕ Rᵢ₊₁).
func CrossingCounts(incidence []Bitset, order []int, nPoints int) []int {
	counts := make([]int, nPoints)
	for i := 0; i+1 < len(order); i++ {
		a := incidence[order[i]]
		b := incidence[order[i+1]]
		for w := range a.words {
			diff := a.words[w] ^ b.words[w]
			for diff != 0 {
				bit := diff & (-diff)
				j := w*64 + trailingZeros(bit)
				if j < nPoints {
					counts[j]++
				}
				diff ^= bit
			}
		}
	}
	return counts
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// MaxAndMean summarizes crossing counts.
func MaxAndMean(counts []int) (maxC int, meanC float64) {
	total := 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if len(counts) > 0 {
		meanC = float64(total) / float64(len(counts))
	}
	return maxC, meanC
}

// GreedyOrder builds an ordering by nearest-neighbor chaining in Hamming
// distance: start from range 0 and repeatedly append the unused range with
// the smallest symmetric difference to the current tail. O(k²·n/64).
func GreedyOrder(incidence []Bitset) []int {
	k := len(incidence)
	if k == 0 {
		return nil
	}
	used := make([]bool, k)
	order := make([]int, 0, k)
	cur := 0
	used[0] = true
	order = append(order, 0)
	for len(order) < k {
		best := -1
		bestD := math.MaxInt
		for j := 0; j < k; j++ {
			if used[j] {
				continue
			}
			if d := incidence[cur].HammingDistance(incidence[j]); d < bestD {
				bestD, best = d, j
			}
		}
		used[best] = true
		order = append(order, best)
		cur = best
	}
	return order
}

// IdentityOrder returns 0..k−1, the "as generated" (effectively random)
// baseline ordering.
func IdentityOrder(k int) []int {
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	return order
}

// TheoryBound evaluates the Chazelle–Welzl envelope c·k^{1−1/λ}·log k with
// unit constant, for comparison columns in the experiment output.
func TheoryBound(k, lambda int) float64 {
	if k < 2 {
		return 0
	}
	fk := float64(k)
	return math.Pow(fk, 1-1/float64(lambda)) * math.Log(fk)
}
