// Package kdtree provides a kd-tree over data points in [0,1]^d with pruned
// range counting for arbitrary geom.Range queries.
//
// It is the substrate that labels training and test workloads with exact
// selectivities: counting the data points inside a query range, divided by
// the dataset size. Pruning uses only the ContainsBox / IntersectsBox
// predicates of the range, so the same tree serves orthogonal ranges,
// halfspaces, balls, and semi-algebraic ranges alike.
package kdtree

import (
	"sort"

	"repro/internal/geom"
)

// leafSize is the maximum number of points stored in a leaf node.
const leafSize = 32

// Tree is an immutable kd-tree over a fixed point set.
type Tree struct {
	dim  int
	root *node
	n    int
}

type node struct {
	bbox   geom.Box
	count  int
	points []geom.Point // non-nil only at leaves
	axis   int
	split  float64
	lo, hi *node
}

// Build constructs a kd-tree over the given points (which are not copied;
// callers must not mutate them afterwards). All points must share the same
// dimensionality.
func Build(points []geom.Point) *Tree {
	if len(points) == 0 {
		return &Tree{}
	}
	d := len(points[0])
	pts := make([]geom.Point, len(points))
	copy(pts, points)
	t := &Tree{dim: d, n: len(points)}
	t.root = build(pts, 0, d)
	return t
}

func boundingBox(points []geom.Point, d int) geom.Box {
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points[1:] {
		for i := 0; i < d; i++ {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func build(points []geom.Point, depth, d int) *node {
	nd := &node{bbox: boundingBox(points, d), count: len(points)}
	if len(points) <= leafSize {
		nd.points = points
		return nd
	}
	// Split the widest dimension of the bounding box at the median:
	// keeps the tree balanced even under heavy data skew.
	axis := 0
	widest := nd.bbox.Hi[0] - nd.bbox.Lo[0]
	for i := 1; i < d; i++ {
		if w := nd.bbox.Hi[i] - nd.bbox.Lo[i]; w > widest {
			widest, axis = w, i
		}
	}
	if widest == 0 {
		// All points identical: degenerate leaf regardless of size.
		nd.points = points
		return nd
	}
	sort.Slice(points, func(i, j int) bool { return points[i][axis] < points[j][axis] })
	mid := len(points) / 2
	// Move mid off runs of equal coordinates so both sides are non-empty.
	// The exact float comparisons are deliberate: after sorting, a "run"
	// means bit-identical coordinates (duplicated input points), and the
	// split must not separate them — a tolerance would merge distinct
	// neighbors instead.
	for mid < len(points)-1 && points[mid][axis] == points[mid-1][axis] { //selvet:ignore floateq exact comparison detects runs of duplicated coordinates after sorting
		mid++
	}
	if mid == len(points)-1 && points[mid][axis] == points[mid-1][axis] { //selvet:ignore floateq exact comparison detects runs of duplicated coordinates after sorting
		for mid > 1 && points[mid][axis] == points[mid-1][axis] { //selvet:ignore floateq exact comparison detects runs of duplicated coordinates after sorting
			mid--
		}
	}
	nd.axis = axis
	nd.split = points[mid][axis]
	nd.lo = build(points[:mid], depth+1, d)
	nd.hi = build(points[mid:], depth+1, d)
	nd.points = nil
	return nd
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.n }

// Count returns the number of indexed points inside the range.
func (t *Tree) Count(r geom.Range) int {
	if t.root == nil {
		return 0
	}
	return countNode(t.root, r)
}

func countNode(nd *node, r geom.Range) int {
	if !r.IntersectsBox(nd.bbox) {
		return 0
	}
	if r.ContainsBox(nd.bbox) {
		return nd.count
	}
	if nd.points != nil {
		c := 0
		for _, p := range nd.points {
			if r.Contains(p) {
				c++
			}
		}
		return c
	}
	return countNode(nd.lo, r) + countNode(nd.hi, r)
}

// Selectivity returns Count(r)/Len(), the exact selectivity of the range on
// the indexed dataset — the ground-truth labels of the paper's workloads.
func (t *Tree) Selectivity(r geom.Range) float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.Count(r)) / float64(t.n)
}

// BruteCount is the reference O(n) implementation used by tests and the
// labeling ablation benchmark.
func BruteCount(points []geom.Point, r geom.Range) int {
	c := 0
	for _, p := range points {
		if r.Contains(p) {
			c++
		}
	}
	return c
}
