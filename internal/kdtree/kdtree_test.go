package kdtree

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func randomPoints(r *rng.RNG, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		for j := range p {
			p[j] = r.Float64()
		}
		pts[i] = p
	}
	return pts
}

func clusteredPoints(r *rng.RNG, n, d int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, d)
		base := 0.2 + 0.1*float64(i%3)
		for j := range p {
			p[j] = base + 0.05*r.NormFloat64()
			if p[j] < 0 {
				p[j] = 0
			}
			if p[j] > 1 {
				p[j] = 1
			}
		}
		pts[i] = p
	}
	return pts
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero length")
	}
	if got := tr.Count(geom.UnitCube(2)); got != 0 {
		t.Fatalf("empty tree count = %d", got)
	}
	if got := tr.Selectivity(geom.UnitCube(2)); got != 0 {
		t.Fatalf("empty tree selectivity = %v", got)
	}
}

func TestCountMatchesBruteForceBoxes(t *testing.T) {
	r := rng.New(1)
	for _, d := range []int{1, 2, 3, 5, 8} {
		pts := randomPoints(r, 2000, d)
		tr := Build(pts)
		for trial := 0; trial < 50; trial++ {
			center := make(geom.Point, d)
			sides := make([]float64, d)
			for i := 0; i < d; i++ {
				center[i] = r.Float64()
				sides[i] = r.Float64()
			}
			q := geom.BoxFromCenter(center, sides)
			want := BruteCount(pts, q)
			if got := tr.Count(q); got != want {
				t.Fatalf("d=%d box: kd count %d != brute %d", d, got, want)
			}
		}
	}
}

func TestCountMatchesBruteForceBalls(t *testing.T) {
	r := rng.New(2)
	for _, d := range []int{2, 4, 7} {
		pts := randomPoints(r, 1500, d)
		tr := Build(pts)
		for trial := 0; trial < 50; trial++ {
			c := make(geom.Point, d)
			for i := range c {
				c[i] = r.Float64()
			}
			q := geom.NewBall(c, r.Float64())
			want := BruteCount(pts, q)
			if got := tr.Count(q); got != want {
				t.Fatalf("d=%d ball: kd count %d != brute %d", d, got, want)
			}
		}
	}
}

func TestCountMatchesBruteForceHalfspaces(t *testing.T) {
	r := rng.New(3)
	for _, d := range []int{2, 5} {
		pts := randomPoints(r, 1500, d)
		tr := Build(pts)
		for trial := 0; trial < 50; trial++ {
			a := make(geom.Point, d)
			for i := range a {
				a[i] = 2*r.Float64() - 1
			}
			q := geom.NewHalfspace(a, 2*r.Float64()-1)
			want := BruteCount(pts, q)
			if got := tr.Count(q); got != want {
				t.Fatalf("d=%d halfspace: kd count %d != brute %d", d, got, want)
			}
		}
	}
}

func TestCountOnSkewedData(t *testing.T) {
	r := rng.New(4)
	pts := clusteredPoints(r, 3000, 3)
	tr := Build(pts)
	for trial := 0; trial < 50; trial++ {
		c := geom.Point{r.Float64(), r.Float64(), r.Float64()}
		q := geom.NewBall(c, 0.2*r.Float64())
		want := BruteCount(pts, q)
		if got := tr.Count(q); got != want {
			t.Fatalf("skewed ball: kd count %d != brute %d", got, want)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many duplicates stress the median-split adjustment.
	pts := make([]geom.Point, 0, 500)
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Point{0.5, 0.5})
	}
	r := rng.New(5)
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{r.Float64(), r.Float64()})
	}
	tr := Build(pts)
	q := geom.NewBox(geom.Point{0.49, 0.49}, geom.Point{0.51, 0.51})
	want := BruteCount(pts, q)
	if got := tr.Count(q); got != want {
		t.Fatalf("duplicate points: kd count %d != brute %d", got, want)
	}
}

func TestSelectivityFullRange(t *testing.T) {
	r := rng.New(6)
	pts := randomPoints(r, 500, 2)
	tr := Build(pts)
	if got := tr.Selectivity(geom.UnitCube(2)); got != 1 {
		t.Fatalf("selectivity of unit cube = %v, want 1", got)
	}
}
