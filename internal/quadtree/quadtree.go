// Package quadtree implements the d-dimensional quadtree that drives
// QUADHIST's bucket-design phase (Section 3.2, Algorithms 1 and 2 of the
// paper).
//
// The tree starts as a single node spanning [0,1]^d. Each training sample
// (R, s) refines it: a node u is split into its 2^d equal children whenever
// the estimated density it would carry,
//
//	p = vol(u ∩ R)/vol(R) · s,
//
// exceeds the threshold τ, and the refinement recurses into the children.
// The final leaves become the histogram buckets. The construction is
// order-independent (Lemma A.4) — property-tested in this package — unless a
// hard leaf cap is set, in which case insertion order can matter for the
// tail of the splits (the paper notes the same caveat for its hard
// termination condition).
package quadtree

import "repro/internal/geom"

// Tree is a 2^d-ary spatial subdivision of the unit cube.
type Tree struct {
	dim       int
	root      *node
	numLeaves int
	maxLeaves int // 0 means unlimited
	maxDepth  int
}

type node struct {
	box      geom.Box
	children []*node // nil for leaves
}

// defaultMaxDepth bounds tree depth as a safety valve: a node at depth k
// has volume 2^{−dk}, far below any useful bucket size well before this.
const defaultMaxDepth = 32

// Option configures tree construction.
type Option func(*Tree)

// WithMaxLeaves caps the number of leaves; once reached, no further splits
// happen (the paper's "hard termination condition on the number of leaves").
func WithMaxLeaves(n int) Option {
	return func(t *Tree) { t.maxLeaves = n }
}

// WithMaxDepth overrides the safety depth limit.
func WithMaxDepth(d int) Option {
	return func(t *Tree) { t.maxDepth = d }
}

// New returns a single-node tree over [0,1]^dim.
func New(dim int, opts ...Option) *Tree {
	t := &Tree{
		dim:       dim,
		root:      &node{box: geom.UnitCube(dim)},
		numLeaves: 1,
		maxDepth:  defaultMaxDepth,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// NumLeaves returns the current number of leaves (histogram buckets).
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Dim returns the dimensionality of the tree.
func (t *Tree) Dim() int { return t.dim }

// Insert refines the tree with one training sample: query range r with
// selectivity s, split threshold tau (Algorithm 2). rVol must be the volume
// of r clipped to the unit cube; passing it explicitly lets callers compute
// it once per query.
func (t *Tree) Insert(r geom.Range, s, rVol, tau float64) {
	t.InsertCounted(r, s, rVol, tau)
}

// InsertCounted is Insert returning the number of tree nodes visited —
// the quantity Lemma A.2 bounds by O((s(R)/τ)·log(s(R)/(τ·vol R))). The
// bound is validated empirically in the package tests.
func (t *Tree) InsertCounted(r geom.Range, s, rVol, tau float64) int {
	if rVol <= 0 || s <= 0 {
		return 0
	}
	return t.update(t.root, 0, r, s, rVol, tau)
}

func (t *Tree) update(u *node, depth int, r geom.Range, s, rVol, tau float64) int {
	// Cheap disjointness rejection before the volume computation: the
	// quadtree "doubles up as a data structure for answering R as a range
	// query" (Section 3.2).
	if !r.IntersectsBox(u.box) {
		return 0
	}
	visited := 1
	p := r.IntersectBoxVolume(u.box) / rVol * s
	if p <= tau {
		return visited
	}
	if u.children == nil {
		if depth >= t.maxDepth {
			return visited
		}
		if t.maxLeaves > 0 && t.numLeaves+(1<<uint(t.dim))-1 > t.maxLeaves {
			return visited
		}
		boxes := u.box.Children()
		u.children = make([]*node, len(boxes))
		for i, b := range boxes {
			u.children[i] = &node{box: b}
		}
		t.numLeaves += len(boxes) - 1
	}
	for _, c := range u.children {
		visited += t.update(c, depth+1, r, s, rVol, tau)
	}
	return visited
}

// Leaves returns the leaf boxes in deterministic DFS order.
func (t *Tree) Leaves() []geom.Box {
	out := make([]geom.Box, 0, t.numLeaves)
	var walk func(u *node)
	walk = func(u *node) {
		if u.children == nil {
			out = append(out, u.box)
			return
		}
		for _, c := range u.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Depth returns the maximum leaf depth (root = 0), for diagnostics.
func (t *Tree) Depth() int {
	var walk func(u *node, d int) int
	walk = func(u *node, d int) int {
		if u.children == nil {
			return d
		}
		best := d
		for _, c := range u.children {
			if v := walk(c, d+1); v > best {
				best = v
			}
		}
		return best
	}
	return walk(t.root, 0)
}

// Sample is one training example for BuildFromQueries.
type Sample struct {
	R    geom.Range
	S    float64 // labeled selectivity
	RVol float64 // vol(R ∩ [0,1]^d); computed lazily if zero and needed
}

// BuildFromQueries runs Algorithm 1: a fresh tree refined by every sample
// in order. Samples with unknown RVol have it computed here.
func BuildFromQueries(dim int, samples []Sample, tau float64, opts ...Option) *Tree {
	t := New(dim, opts...)
	cube := geom.UnitCube(dim)
	for _, z := range samples {
		rvol := z.RVol
		if rvol == 0 {
			rvol = z.R.IntersectBoxVolume(cube)
		}
		t.Insert(z.R, z.S, rvol, tau)
	}
	return t
}
