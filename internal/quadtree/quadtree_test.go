package quadtree

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestSingleNodeTree(t *testing.T) {
	tr := New(2)
	if tr.NumLeaves() != 1 {
		t.Fatalf("fresh tree has %d leaves", tr.NumLeaves())
	}
	leaves := tr.Leaves()
	if len(leaves) != 1 || !leaves[0].Equal(geom.UnitCube(2)) {
		t.Fatalf("fresh tree leaves = %v", leaves)
	}
}

func TestInsertSplits(t *testing.T) {
	tr := New(2)
	// A query covering the whole cube with selectivity 1 and tiny τ must
	// split the root.
	q := geom.UnitCube(2)
	tr.Insert(q, 1.0, 1.0, 0.3)
	if tr.NumLeaves() != 4 {
		t.Fatalf("leaves after one split = %d, want 4", tr.NumLeaves())
	}
	// Each child carries p = 0.25 ≤ 0.3, so no further splits.
	if tr.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", tr.Depth())
	}
}

func TestInsertRecursesUnderSmallTau(t *testing.T) {
	tr := New(2)
	tr.Insert(geom.UnitCube(2), 1.0, 1.0, 0.05)
	// p(root)=1 > τ, p(child)=0.25 > τ, p(grandchild)=0.0625 > 0.05,
	// p(great-grandchild)=~0.0156 ≤ 0.05 → depth 3, 64 leaves.
	if tr.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", tr.Depth())
	}
	if tr.NumLeaves() != 64 {
		t.Fatalf("leaves = %d, want 64", tr.NumLeaves())
	}
}

func TestZeroSelectivityNoSplit(t *testing.T) {
	tr := New(2)
	tr.Insert(geom.UnitCube(2), 0, 1.0, 0.01)
	if tr.NumLeaves() != 1 {
		t.Fatalf("zero-selectivity query split the tree: %d leaves", tr.NumLeaves())
	}
}

func TestSplitsFollowQueryGeometry(t *testing.T) {
	tr := New(2)
	// A small query in the lower-left corner: only that region refines.
	q := geom.NewBox(geom.Point{0, 0}, geom.Point{0.25, 0.25})
	tr.Insert(q, 0.5, q.Volume(), 0.01)
	leaves := tr.Leaves()
	// Leaves intersecting the query must be smaller than leaves far away.
	var smallIn, bigOut bool
	for _, l := range leaves {
		if q.IntersectsBox(l) && l.Volume() < 0.25 {
			smallIn = true
		}
		if !q.IntersectsBox(l) && l.Volume() >= 0.25 {
			bigOut = true
		}
	}
	if !smallIn || !bigOut {
		t.Fatalf("refinement not localized: smallIn=%v bigOut=%v leaves=%d", smallIn, bigOut, len(leaves))
	}
}

func leavesKey(boxes []geom.Box) []string {
	keys := make([]string, len(boxes))
	for i, b := range boxes {
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return keys
}

// Lemma A.4: the partition is independent of the order in which training
// queries are inserted (without a leaf cap).
func TestOrderIndependence(t *testing.T) {
	r := rng.New(2022)
	for trial := 0; trial < 20; trial++ {
		dim := 1 + r.IntN(3)
		n := 5 + r.IntN(15)
		samples := make([]Sample, n)
		for i := range samples {
			center := make(geom.Point, dim)
			sides := make([]float64, dim)
			for j := 0; j < dim; j++ {
				center[j] = r.Float64()
				sides[j] = r.Float64()
			}
			q := geom.BoxFromCenter(center, sides)
			samples[i] = Sample{R: q, S: r.Float64(), RVol: q.Volume()}
		}
		tau := 0.02 + 0.1*r.Float64()
		base := leavesKey(BuildFromQueries(dim, samples, tau).Leaves())
		for perm := 0; perm < 5; perm++ {
			shuffled := make([]Sample, n)
			for i, idx := range r.Perm(n) {
				shuffled[i] = samples[idx]
			}
			got := leavesKey(BuildFromQueries(dim, shuffled, tau).Leaves())
			if len(got) != len(base) {
				t.Fatalf("trial %d: leaf count differs across orders: %d vs %d", trial, len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("trial %d: partitions differ at %d: %s vs %s", trial, i, got[i], base[i])
				}
			}
		}
	}
}

// The leaves always partition the unit cube: volumes sum to 1, pairwise
// interior-disjoint.
func TestLeavesPartitionUnitCube(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		dim := 1 + r.IntN(3)
		samples := make([]Sample, 10)
		for i := range samples {
			center := make(geom.Point, dim)
			sides := make([]float64, dim)
			for j := 0; j < dim; j++ {
				center[j] = r.Float64()
				sides[j] = r.Float64()
			}
			q := geom.BoxFromCenter(center, sides)
			samples[i] = Sample{R: q, S: r.Float64(), RVol: q.Volume()}
		}
		tr := BuildFromQueries(dim, samples, 0.05)
		leaves := tr.Leaves()
		if len(leaves) != tr.NumLeaves() {
			t.Fatalf("NumLeaves %d != len(Leaves) %d", tr.NumLeaves(), len(leaves))
		}
		total := 0.0
		for _, l := range leaves {
			total += l.Volume()
		}
		if total < 0.999999 || total > 1.000001 {
			t.Fatalf("leaf volumes sum to %v", total)
		}
		for i := range leaves {
			for j := i + 1; j < len(leaves); j++ {
				if v := leaves[i].IntersectBoxVolume(leaves[j]); v > 1e-12 {
					t.Fatalf("leaves %d and %d overlap with volume %v", i, j, v)
				}
			}
		}
	}
}

func TestMaxLeavesCap(t *testing.T) {
	tr := New(2, WithMaxLeaves(10))
	for i := 0; i < 5; i++ {
		tr.Insert(geom.UnitCube(2), 1.0, 1.0, 0.0001)
	}
	if tr.NumLeaves() > 10 {
		t.Fatalf("leaf cap exceeded: %d", tr.NumLeaves())
	}
}

func TestMaxDepthCap(t *testing.T) {
	tr := New(1, WithMaxDepth(3))
	tr.Insert(geom.UnitCube(1), 1.0, 1.0, 1e-9)
	if tr.Depth() > 3 {
		t.Fatalf("depth cap exceeded: %d", tr.Depth())
	}
}

func TestBallQueryRefinement(t *testing.T) {
	// Non-box ranges drive the same splitting machinery.
	tr := New(2)
	b := geom.NewBall(geom.Point{0.5, 0.5}, 0.2)
	tr.Insert(b, 0.8, b.IntersectBoxVolume(geom.UnitCube(2)), 0.02)
	if tr.NumLeaves() <= 4 {
		t.Fatalf("ball query did not refine the tree: %d leaves", tr.NumLeaves())
	}
	// Leaves near the center should be finer than corner leaves.
	leaves := tr.Leaves()
	var insideMin, outsideMax float64 = 1, 0
	for _, l := range leaves {
		if b.IntersectsBox(l) {
			insideMin = min(insideMin, l.Volume())
		} else {
			outsideMax = max(outsideMax, l.Volume())
		}
	}
	if insideMin >= outsideMax {
		t.Fatalf("refinement not concentrated near ball: insideMin=%v outsideMax=%v", insideMin, outsideMax)
	}
}

// Lemma A.2: a single insertion visits O((s/τ)·log(s/(τ·vol R))) nodes. We
// validate the bound empirically with a generous constant across random
// queries and thresholds.
func TestInsertVisitBoundLemmaA2(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 120; trial++ {
		tr := New(2)
		c := geom.Point{r.Float64(), r.Float64()}
		sides := []float64{0.1 + 0.8*r.Float64(), 0.1 + 0.8*r.Float64()}
		q := geom.BoxFromCenter(c, sides)
		vol := q.Volume()
		if vol < 1e-4 {
			continue
		}
		s := 0.05 + 0.9*r.Float64()
		tau := 0.002 + 0.05*r.Float64()
		visited := tr.InsertCounted(q, s, vol, tau)
		ratio := s / tau
		logTerm := math.Log2(math.Max(2, s/(tau*vol)))
		bound := 64 * ratio * logTerm // generous constant for the O(·)
		if float64(visited) > bound {
			t.Fatalf("trial %d: visited %d > bound %v (s=%v τ=%v vol=%v)",
				trial, visited, bound, s, tau, vol)
		}
	}
}

// The visit count scales roughly linearly in 1/τ (the Lemma A.2 leading
// term): quadrupling 1/τ should not multiply visits by much more than 4×
// (log slack allowed).
func TestInsertVisitScalesWithTau(t *testing.T) {
	q := geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.9, 0.9})
	vol := q.Volume()
	visitsAt := func(tau float64) int {
		tr := New(2)
		return tr.InsertCounted(q, 0.8, vol, tau)
	}
	v1 := visitsAt(0.02)
	v2 := visitsAt(0.005)
	if v2 <= v1 {
		t.Fatalf("smaller τ did not increase visits: %d vs %d", v1, v2)
	}
	if float64(v2) > 10*4*float64(v1) {
		t.Fatalf("visit growth superlinear in 1/τ: %d vs %d", v1, v2)
	}
}
