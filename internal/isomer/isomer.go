// Package isomer implements the ISOMER baseline (Srivastava et al., ICDE
// 2006) used in the paper's comparisons: a query-feedback histogram whose
// buckets are created by refining the space along observed query boundaries
// (STHoles-style) and whose bucket weights are the maximum-entropy
// distribution consistent with all observed query selectivities, fit by
// iterative proportional scaling.
//
// Deviation from the original, documented in DESIGN.md: instead of STHoles'
// nested buckets-with-holes we maintain an equivalent flat partition into
// disjoint boxes, splitting every bucket that partially overlaps an
// incoming query into its intersection and complement pieces. This
// reproduces the behaviours the paper measures — the best accuracy of the
// compared methods, a bucket count that is a large multiple of the query
// count, and training cost that blows up with workload size (the paper cut
// ISOMER off at 500 training queries / 30 minutes; we enforce a
// configurable budget and report the same "-" rows).
package isomer

import (
	"errors"
	"math"
	"time"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// ErrBudget is returned when training exceeds the configured budget, the
// analogue of the paper's 30-minute cutoff.
var ErrBudget = errors.New("isomer: training budget exceeded")

// opsPerSecond converts a time-denominated budget into deterministic
// work units (one unit ≈ one bucket visit or one scaling-row update).
// The constant is a fixed calibration — roughly what one 2020s core
// sustains on this workload — NOT a clock: the same workload exhausts
// the same budget at exactly the same point on every machine and every
// run, which keeps the paper's cutoff rows ("-") reproducible.
const opsPerSecond = 50e6

// Options configures ISOMER training.
type Options struct {
	// MaxBuckets caps the partition size (default 20000). The original
	// chooses its own bucket count; the paper reports 48–160× the query
	// count.
	MaxBuckets int
	// Budget bounds training cost, expressed as a duration for
	// continuity with the paper's 30-minute cutoff (default 30s). It is
	// enforced deterministically: the duration is converted to work
	// units via the fixed opsPerSecond calibration, so whether a run
	// hits the cutoff depends only on the workload, never on the
	// machine or scheduler.
	Budget time.Duration
	// WorkBudget, when nonzero, sets the work-unit budget directly and
	// takes precedence over Budget.
	WorkBudget int64
	// ScalingIters bounds iterative-scaling sweeps (default 200).
	ScalingIters int
	// Nested selects the faithful STHoles nested-bucket construction
	// (stholes.go) instead of the default flat query-boundary
	// refinement. Both yield a disjoint box partition; they differ in
	// which boundaries survive the bucket cap.
	Nested bool
}

// workBudget meters deterministic training cost. spend reports whether
// the budget still covers n more units.
type workBudget struct{ left int64 }

func newWorkBudget(opts Options) *workBudget {
	if opts.WorkBudget > 0 {
		return &workBudget{left: opts.WorkBudget}
	}
	d := opts.Budget
	if d == 0 {
		d = 30 * time.Second
	}
	return &workBudget{left: int64(d.Seconds() * opsPerSecond)}
}

func (b *workBudget) spend(n int64) bool {
	b.left -= n
	return b.left >= 0
}

// Trainer builds ISOMER models.
type Trainer struct {
	Dim  int
	Opts Options
	// Log, when non-nil, collects per-stage timings and solver iteration
	// counts (and mirrors the stages as trace spans); see obs.TrainLog.
	Log *obs.TrainLog
}

// New returns an ISOMER trainer with defaults.
func New(dim int) *Trainer { return &Trainer{Dim: dim} }

// Name implements core.Trainer.
func (t *Trainer) Name() string { return "Isomer" }

// Model is a trained ISOMER histogram: a disjoint box partition with
// maximum-entropy weights. Estimate is BVH-accelerated above
// bvh.IndexThreshold buckets (ISOMER's partitions run to 48–160× the
// query count, so nearly every trained model is indexed); Buckets and
// Weights must not be mutated after the first Estimate/Accelerate call.
type Model struct {
	Buckets []geom.Box
	Weights []float64

	accel bvh.Lazy
}

// Train implements core.Trainer. Queries must be boxes (ISOMER is an
// orthogonal-range method; the paper compares it only there).
func (t *Trainer) Train(samples []core.LabeledQuery) (core.Model, error) {
	maxBuckets := t.Opts.MaxBuckets
	if maxBuckets == 0 {
		maxBuckets = 20000
	}
	iters := t.Opts.ScalingIters
	if iters == 0 {
		iters = 200
	}
	budget := newWorkBudget(t.Opts)

	boxes := make([]geom.Box, len(samples))
	for i, z := range samples {
		b, ok := z.R.(geom.Box)
		if !ok {
			return nil, errors.New("isomer: orthogonal range queries only")
		}
		boxes[i] = b
	}

	// Phase 1: bucket construction — flat query-boundary refinement by
	// default, the faithful STHoles nested drilling with Options.Nested.
	stage := t.Log.Stage("bucket_refine")
	var buckets []geom.Box
	if t.Opts.Nested {
		buckets = NestedBuckets(t.Dim, boxes, maxBuckets)
		if !budget.spend(int64(len(boxes)) * int64(len(buckets))) {
			stage.EndItems(int64(len(buckets)))
			return nil, ErrBudget
		}
	} else {
		buckets = []geom.Box{geom.UnitCube(t.Dim)}
		for _, q := range boxes {
			if !budget.spend(int64(len(buckets))) {
				stage.EndItems(int64(len(buckets)))
				return nil, ErrBudget
			}
			if len(buckets) >= maxBuckets {
				break
			}
			next := buckets[:0:0]
			for _, b := range buckets {
				if len(buckets)+len(next) > maxBuckets+64 || !b.IntersectsBox(q) || q.ContainsBox(b) {
					next = append(next, b)
					continue
				}
				next = append(next, splitAround(b, q)...)
			}
			buckets = next
		}
	}
	stage.EndItems(int64(len(buckets)))

	// Phase 2: maximum-entropy weights by iterative proportional scaling.
	stage = t.Log.Stage("iterative_scaling")
	w, sweeps, err := maxEntropyWeights(buckets, samples, iters, budget)
	stage.EndItems(int64(sweeps))
	if err != nil {
		return nil, err
	}
	t.Log.SetSolver("iterative_scaling", sweeps)
	return &Model{Buckets: buckets, Weights: w}, nil
}

// splitAround partitions bucket b into b∩q plus the complement slabs — the
// standard box-difference decomposition (≤ 2d+1 disjoint pieces).
func splitAround(b, q geom.Box) []geom.Box {
	pieces := make([]geom.Box, 0, 2*b.Dim()+1)
	cur := b.Clone()
	for i := 0; i < b.Dim(); i++ {
		if cur.Lo[i] < q.Lo[i] {
			piece := cur.Clone()
			piece.Hi[i] = q.Lo[i]
			if !piece.Empty() && piece.Volume() > 0 {
				pieces = append(pieces, piece)
			}
			cur.Lo[i] = q.Lo[i]
		}
		if cur.Hi[i] > q.Hi[i] {
			piece := cur.Clone()
			piece.Lo[i] = q.Hi[i]
			if !piece.Empty() && piece.Volume() > 0 {
				pieces = append(pieces, piece)
			}
			cur.Hi[i] = q.Hi[i]
		}
	}
	if !cur.Empty() && cur.Volume() > 0 {
		pieces = append(pieces, cur) // the intersection piece
	}
	return pieces
}

// maxEntropyWeights runs generalized iterative scaling: starting from the
// uniform (volume-proportional) distribution — the entropy maximizer — each
// sweep rescales the mass inside every query region so its selectivity
// matches the feedback, then renormalizes. For feasible constraint sets
// this converges to the maximum-entropy consistent distribution. The second
// return value is the number of sweeps that ran (for TrainStats).
func maxEntropyWeights(buckets []geom.Box, samples []core.LabeledQuery, iters int, budget *workBudget) ([]float64, int, error) {
	n := len(buckets)
	m := len(samples)
	// Fraction of bucket j inside query i, stored sparsely per query.
	// full marks buckets entirely inside the query, whose mass scales as
	// a unit (no fractional split).
	type entry struct {
		j    int
		frac float64
		full bool
	}
	rows := make([][]entry, m)
	for i, z := range samples {
		for j, b := range buckets {
			if !z.R.IntersectsBox(b) {
				continue
			}
			var f float64
			full := false
			if z.R.ContainsBox(b) {
				f = 1
				full = true
			} else {
				v := b.Volume()
				if v == 0 {
					continue
				}
				f = z.R.IntersectBoxVolume(b) / v
			}
			if f > 0 {
				rows[i] = append(rows[i], entry{j: j, frac: f, full: full})
			}
		}
		if !budget.spend(int64(n)) {
			return nil, 0, ErrBudget
		}
	}

	w := make([]float64, n)
	for j, b := range buckets {
		w[j] = b.Volume()
	}
	normalizeTo1(w)

	const floor = 1e-6
	sweeps := 0
	for sweep := 0; sweep < iters; sweep++ {
		sweeps = sweep + 1
		sweepCost := int64(0)
		for _, r := range rows {
			sweepCost += int64(len(r)) + 1
		}
		if !budget.spend(sweepCost) {
			return nil, sweeps, ErrBudget
		}
		worst := 0.0
		for i, z := range samples {
			target := math.Min(math.Max(z.Sel, floor), 1-floor)
			cur := 0.0
			for _, e := range rows[i] {
				cur += e.frac * w[e.j]
			}
			cur = math.Min(math.Max(cur, floor), 1-floor)
			worst = math.Max(worst, math.Abs(cur-target))
			// Scale inside mass by r and outside by matching factor so
			// the constraint holds exactly after renormalization.
			r := target * (1 - cur) / (cur * (1 - target))
			if math.Abs(r-1) < 1e-12 {
				continue
			}
			for _, e := range rows[i] {
				if e.full {
					w[e.j] *= r
				} else {
					// Fractional overlap: split the bucket's mass
					// proportionally by volume fraction.
					in := w[e.j] * e.frac
					out := w[e.j] - in
					w[e.j] = in*r + out
				}
			}
			normalizeTo1(w)
		}
		if worst < 1e-6 {
			break
		}
	}
	return w, sweeps, nil
}

func normalizeTo1(w []float64) {
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		u := 1.0 / float64(len(w))
		for i := range w {
			w[i] = u
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// NumBuckets implements core.Model.
func (m *Model) NumBuckets() int { return len(m.Buckets) }

// Estimate implements core.Model, via the shared BVH for large models and
// the flat kernel below the indexing threshold.
func (m *Model) Estimate(r geom.Range) float64 {
	if t := m.accel.Ensure(m.Buckets, m.Weights); t != nil {
		return t.Estimate(r)
	}
	return bvh.EstimateFlat(m.Buckets, m.Weights, r)
}

// Accelerate implements core.Accelerable (force the one-time BVH build).
func (m *Model) Accelerate() { m.accel.Ensure(m.Buckets, m.Weights) }

// IndexTree returns the built BVH index, or nil if none has been built
// yet. It never triggers a build; the binary snapshot writer uses it to
// decide whether a tree section can be persisted.
func (m *Model) IndexTree() *bvh.Tree { return m.accel.Built() }

// SeedIndex installs a prebuilt BVH as this model's index (winning only if
// none exists yet), so a model loaded from a binary snapshot skips the
// build entirely — the subsequent Accelerate is a no-op.
func (m *Model) SeedIndex(t *bvh.Tree) { m.accel.Seed(t) }

var _ core.Trainer = (*Trainer)(nil)
var _ core.Model = (*Model)(nil)
var _ core.Accelerable = (*Model)(nil)
