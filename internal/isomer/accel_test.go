package isomer

import (
	"math"
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

// A trained ISOMER model (large disjoint partition) must estimate
// identically through its BVH and the flat kernel, and implement the
// core.Accelerable capability.
func TestTrainedModelAcceleratedMatchesFlat(t *testing.T) {
	ds := dataset.Power(4000, 1).Project([]int{0, 1})
	g := workload.NewGenerator(ds, 17)
	train, test := g.TrainTest(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 120, 60)
	mm, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	m := mm.(*Model)
	if m.NumBuckets() < bvh.IndexThreshold {
		t.Fatalf("fixture too small to exercise the BVH path: %d buckets", m.NumBuckets())
	}
	if !core.Accelerate(m) {
		t.Fatal("isomer model does not implement core.Accelerable")
	}
	for _, z := range test {
		want := bvh.EstimateFlat(m.Buckets, m.Weights, z.R)
		if got := m.Estimate(z.R); math.Abs(got-want) > 1e-9 {
			t.Fatalf("accelerated estimate %v != flat %v for %v", got, want, z.R)
		}
	}
	// Non-box query classes prune through the same index.
	for _, q := range []geom.Range{
		geom.NewBall(geom.Point{0.4, 0.6}, 0.2),
		geom.NewHalfspace(geom.Point{1, -0.5}, 0.1),
	} {
		want := bvh.EstimateFlat(m.Buckets, m.Weights, q)
		if got := m.Estimate(q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("accelerated estimate %v != flat %v for %v", got, want, q)
		}
	}
}
