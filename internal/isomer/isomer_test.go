package isomer

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/workload"
)

func gen2D(seed uint64) *workload.Generator {
	return workload.NewGenerator(dataset.Power(6000, 1).Project([]int{0, 1}), seed)
}

func TestSplitAroundPartition(t *testing.T) {
	b := geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1})
	q := geom.NewBox(geom.Point{0.25, 0.25}, geom.Point{0.75, 0.75})
	pieces := splitAround(b, q)
	total := 0.0
	for _, p := range pieces {
		total += p.Volume()
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("pieces cover %v of the bucket", total)
	}
	// Disjoint.
	for i := range pieces {
		for j := i + 1; j < len(pieces); j++ {
			if v := pieces[i].IntersectBoxVolume(pieces[j]); v > 1e-12 {
				t.Fatalf("pieces %d,%d overlap by %v", i, j, v)
			}
		}
	}
	// One piece equals the intersection.
	found := false
	for _, p := range pieces {
		if p.Equal(b.Intersect(q)) {
			found = true
		}
	}
	if !found {
		t.Fatal("intersection piece missing")
	}
}

func TestSplitAroundCorner(t *testing.T) {
	b := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5})
	q := geom.NewBox(geom.Point{0.25, 0.25}, geom.Point{1, 1})
	pieces := splitAround(b, q)
	total := 0.0
	for _, p := range pieces {
		total += p.Volume()
	}
	if math.Abs(total-0.25) > 1e-12 {
		t.Fatalf("pieces cover %v, want bucket volume 0.25", total)
	}
}

func TestTrainAccuracy(t *testing.T) {
	g := gen2D(42)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 80, 120)
	m, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	// ISOMER is the most accurate method in the paper; demand decent
	// held-out error and near-exact training consistency.
	if rms := core.RMS(m, test); rms > 0.1 {
		t.Fatalf("test RMS = %v", rms)
	}
	if rms := core.RMS(m, train); rms > 0.02 {
		t.Fatalf("train RMS = %v, max-entropy fit should be nearly consistent", rms)
	}
}

func TestBucketCountGrowsFast(t *testing.T) {
	// The paper reports ISOMER using 48–160× the training size in
	// buckets; our refinement should likewise be a large multiple.
	g := gen2D(1)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train := g.Generate(spec, 60)
	m, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	model := m.(*Model)
	if model.NumBuckets() < 10*len(train) {
		t.Fatalf("bucket count %d < 10× training size", model.NumBuckets())
	}
}

func TestWeightsOnSimplex(t *testing.T) {
	g := gen2D(2)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Gaussian}, 40)
	m, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	model := m.(*Model)
	sum := 0.0
	for _, w := range model.Weights {
		if w < -1e-12 {
			t.Fatalf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestBudgetEnforced(t *testing.T) {
	g := gen2D(3)
	train := g.Generate(workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}, 400)
	tr := &Trainer{Dim: 2, Opts: Options{Budget: time.Microsecond}}
	_, err := tr.Train(train)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestRejectsNonBoxQueries(t *testing.T) {
	train := []core.LabeledQuery{{R: geom.NewBall(geom.Point{0.5, 0.5}, 0.1), Sel: 0.2}}
	if _, err := New(2).Train(train); err == nil {
		t.Fatal("ball query accepted")
	}
}

func TestMaxEntropyPrefersUniformWhereUnconstrained(t *testing.T) {
	// One query pinning the left half to 0.8: inside the halves the
	// distribution should stay volume-proportional (max entropy), i.e.
	// estimates for sub-boxes scale with their volume share.
	left := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 1})
	train := []core.LabeledQuery{{R: left, Sel: 0.8}}
	m, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if e := m.Estimate(left); math.Abs(e-0.8) > 0.01 {
		t.Fatalf("constrained estimate = %v, want 0.8", e)
	}
	// Quarter of the left half should carry half of the left mass.
	q := geom.NewBox(geom.Point{0, 0}, geom.Point{0.5, 0.5})
	if e := m.Estimate(q); math.Abs(e-0.4) > 0.01 {
		t.Fatalf("sub-box estimate = %v, want 0.4 (uniform within constraint)", e)
	}
	// Right half gets the remainder, uniformly.
	q2 := geom.NewBox(geom.Point{0.5, 0}, geom.Point{0.75, 1})
	if e := m.Estimate(q2); math.Abs(e-0.1) > 0.01 {
		t.Fatalf("right sub-box estimate = %v, want 0.1", e)
	}
}

func TestEstimateBounds(t *testing.T) {
	g := gen2D(4)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.Random}
	train, test := g.TrainTest(spec, 50, 100)
	m, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range test {
		e := m.Estimate(z.R)
		if e < 0 || e > 1 {
			t.Fatalf("estimate %v out of range", e)
		}
	}
}
