package isomer

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestSTHolesDrillSingleQuery(t *testing.T) {
	tr := newSTHTree(2, 100)
	q := geom.NewBox(geom.Point{0.25, 0.25}, geom.Point{0.75, 0.75})
	tr.drill(q)
	if tr.buckets != 2 {
		t.Fatalf("bucket count %d, want 2 (root + hole)", tr.buckets)
	}
	// Root region = cube minus hole.
	if v := tr.root.regionVolume(); math.Abs(v-0.75) > 1e-12 {
		t.Fatalf("root region volume %v, want 0.75", v)
	}
	if v := tr.root.children[0].regionVolume(); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("hole region volume %v, want 0.25", v)
	}
}

func TestSTHolesNestedDrilling(t *testing.T) {
	tr := newSTHTree(2, 100)
	outer := geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.9, 0.9})
	inner := geom.NewBox(geom.Point{0.3, 0.3}, geom.Point{0.6, 0.6})
	tr.drill(outer)
	tr.drill(inner)
	// inner is fully within outer's hole → a child of the hole.
	if len(tr.root.children) != 1 {
		t.Fatalf("root has %d children", len(tr.root.children))
	}
	hole := tr.root.children[0]
	if len(hole.children) != 1 {
		t.Fatalf("hole has %d children, want nested inner hole", len(hole.children))
	}
	if !hole.children[0].box.Equal(inner) {
		t.Fatalf("nested hole box %v", hole.children[0].box)
	}
	// Region volumes account for nesting.
	if v := hole.regionVolume(); math.Abs(v-(0.64-0.09)) > 1e-12 {
		t.Fatalf("outer-hole region volume %v", v)
	}
}

func TestSTHolesShrinkAvoidsPartialOverlap(t *testing.T) {
	tr := newSTHTree(2, 100)
	a := geom.NewBox(geom.Point{0.1, 0.1}, geom.Point{0.5, 0.5})
	b := geom.NewBox(geom.Point{0.3, 0.3}, geom.Point{0.8, 0.8}) // partially overlaps a
	tr.drill(a)
	tr.drill(b)
	// Invariant: no child partially overlaps a sibling — children of any
	// node are pairwise disjoint boxes.
	var check func(n *sthNode)
	check = func(n *sthNode) {
		for i := range n.children {
			for j := i + 1; j < len(n.children); j++ {
				bi, bj := n.children[i].box, n.children[j].box
				if v := bi.IntersectBoxVolume(bj); v > 1e-12 {
					t.Fatalf("sibling holes overlap: %v ∩ %v = %v", bi, bj, v)
				}
			}
			if !n.box.ContainsBox(n.children[i].box) {
				t.Fatalf("child %v escapes parent %v", n.children[i].box, n.box)
			}
			check(n.children[i])
		}
	}
	check(tr.root)
}

func TestNestedBucketsPartitionUnitCube(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		queries := make([]geom.Box, 15)
		for i := range queries {
			c := geom.Point{r.Float64(), r.Float64()}
			queries[i] = geom.BoxFromCenter(c, []float64{r.Float64(), r.Float64()})
		}
		buckets := NestedBuckets(2, queries, 5000)
		total := 0.0
		for _, b := range buckets {
			total += b.Volume()
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("trial %d: flattened buckets cover %v of the cube", trial, total)
		}
		for i := range buckets {
			for j := i + 1; j < len(buckets); j++ {
				if v := buckets[i].IntersectBoxVolume(buckets[j]); v > 1e-12 {
					t.Fatalf("trial %d: buckets %d,%d overlap by %v", trial, i, j, v)
				}
			}
		}
	}
}

func TestCutAway(t *testing.T) {
	cand := geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1})
	obst := geom.NewBox(geom.Point{0.6, 0.2}, geom.Point{0.9, 0.8})
	cut := cutAway(cand, obst)
	if cut.IntersectsBox(obst) && !cut.ContainsBox(obst) {
		if v := cut.IntersectBoxVolume(obst); v > 1e-12 {
			t.Fatalf("cut %v still partially overlaps obstacle", cut)
		}
	}
	// The best cut keeps the left part [0,0.6]×[0,1], volume 0.6.
	if math.Abs(cut.Volume()-0.6) > 1e-12 {
		t.Fatalf("cut volume %v, want 0.6", cut.Volume())
	}
	// Obstacle covering the candidate entirely: empty result.
	tiny := geom.NewBox(geom.Point{0.4, 0.4}, geom.Point{0.6, 0.6})
	huge := geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1})
	if got := cutAway(tiny, huge); got.Volume() != 0 {
		t.Fatalf("uncuttable candidate kept volume %v", got.Volume())
	}
}

func TestNestedTrainerAccuracy(t *testing.T) {
	g := gen2D(77)
	spec := workload.Spec{Class: workload.OrthogonalRange, Centers: workload.DataDriven}
	train, test := g.TrainTest(spec, 80, 120)
	tr := &Trainer{Dim: 2, Opts: Options{Nested: true}}
	m, err := tr.Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if rms := core.RMS(m, test); rms > 0.1 {
		t.Fatalf("nested ISOMER test RMS = %v", rms)
	}
	// Comparable to the flat engine on the same feedback.
	flat, err := New(2).Train(train)
	if err != nil {
		t.Fatal(err)
	}
	if core.RMS(m, test) > core.RMS(flat, test)+0.05 {
		t.Fatalf("nested (%v) much worse than flat (%v)", core.RMS(m, test), core.RMS(flat, test))
	}
}

func TestNestedBucketCapRespected(t *testing.T) {
	r := rng.New(5)
	queries := make([]geom.Box, 200)
	for i := range queries {
		c := geom.Point{r.Float64(), r.Float64()}
		queries[i] = geom.BoxFromCenter(c, []float64{0.5 * r.Float64(), 0.5 * r.Float64()})
	}
	buckets := NestedBuckets(2, queries, 50)
	// The flattening of ≤50 nested buckets produces at most 50·(2d+1)
	// disjoint boxes.
	if len(buckets) > 50*5 {
		t.Fatalf("flattened bucket count %d exceeds cap implication", len(buckets))
	}
}
