package isomer

import (
	"repro/internal/geom"
)

// This file implements the faithful STHoles bucket structure (Bruno,
// Chaudhuri, Gravano 2001) that the original ISOMER builds on: a tree of
// nested buckets where each bucket's region is its box minus its
// children's boxes. Observing a query drills a "hole": in every bucket the
// query partially overlaps, the intersection is shrunk until it does not
// partially intersect any existing child, then installed as a new child
// (children fully inside the candidate are re-parented into it).
//
// The package's default Trainer uses the flat-partition variant (see
// isomer.go) because it is faster at equal fidelity on the paper's
// measurements; NestedBuckets exposes this faithful structure for the
// structural tests and for Options.Nested.

// sthNode is one nested bucket.
type sthNode struct {
	box      geom.Box
	children []*sthNode
}

// regionVolume is vol(box) − Σ vol(children) (children are disjoint and
// nested inside the box by construction).
func (n *sthNode) regionVolume() float64 {
	v := n.box.Volume()
	for _, c := range n.children {
		v -= c.box.Volume()
	}
	if v < 0 {
		return 0
	}
	return v
}

// regionIntersectVolume is vol(region ∩ r) = vol(box ∩ r) − Σ vol(child ∩ r).
func (n *sthNode) regionIntersectVolume(r geom.Range) float64 {
	v := r.IntersectBoxVolume(n.box)
	for _, c := range n.children {
		v -= r.IntersectBoxVolume(c.box)
	}
	if v < 0 {
		return 0
	}
	return v
}

// sthTree is the STHoles bucket tree.
type sthTree struct {
	root    *sthNode
	buckets int
	max     int
}

func newSTHTree(dim, maxBuckets int) *sthTree {
	return &sthTree{root: &sthNode{box: geom.UnitCube(dim)}, buckets: 1, max: maxBuckets}
}

// drill observes one query box, drilling holes down the tree.
func (t *sthTree) drill(q geom.Box) {
	t.drillAt(t.root, q)
}

func (t *sthTree) drillAt(n *sthNode, q geom.Box) {
	if !n.box.IntersectsBox(q) {
		return
	}
	// Recurse into children first: holes are drilled at every level the
	// query partially penetrates.
	for _, c := range n.children {
		t.drillAt(c, q)
	}
	if t.buckets >= t.max {
		return
	}
	cand := n.box.Intersect(q)
	if cand.Empty() || cand.Volume() == 0 || cand.Equal(n.box) {
		return
	}
	// Shrink the candidate until it partially intersects no child
	// (STHoles' shrink step): for each offending child, cut the candidate
	// along the dimension that sacrifices the least volume.
	cand = t.shrink(n, cand)
	if cand.Empty() || cand.Volume() == 0 || cand.Equal(n.box) {
		return
	}
	// Children fully inside the candidate move into the new hole.
	hole := &sthNode{box: cand}
	kept := n.children[:0:0]
	for _, c := range n.children {
		if cand.ContainsBox(c.box) {
			hole.children = append(hole.children, c)
		} else {
			kept = append(kept, c)
		}
	}
	n.children = append(kept, hole)
	t.buckets++
}

// shrink cuts cand until no child of n partially overlaps it.
func (t *sthTree) shrink(n *sthNode, cand geom.Box) geom.Box {
	for iter := 0; iter < 64; iter++ {
		var offender *sthNode
		for _, c := range n.children {
			// Partial overlap must be volume-based: closed boxes that
			// merely touch (zero-volume intersection) are not offenders,
			// or a previous cut's shared boundary would trap the loop.
			if cand.IntersectBoxVolume(c.box) > 1e-15 && !cand.ContainsBox(c.box) {
				offender = c
				break
			}
		}
		if offender == nil {
			return cand
		}
		cand = cutAway(cand, offender.box)
		if cand.Empty() || cand.Volume() == 0 {
			return cand
		}
	}
	// The iteration cap should be unreachable (every cut strictly reduces
	// volume); drop the candidate rather than install an overlapping hole.
	return geom.Box{Lo: cand.Lo, Hi: cand.Lo}
}

// cutAway shrinks cand along the single dimension that removes the overlap
// with obst while keeping the largest remaining volume.
func cutAway(cand, obst geom.Box) geom.Box {
	d := cand.Dim()
	best := geom.Box{Lo: make(geom.Point, d), Hi: make(geom.Point, d)}
	bestVol := -1.0
	for i := 0; i < d; i++ {
		// Option A: keep the part below obst.Lo[i].
		if obst.Lo[i] > cand.Lo[i] {
			a := cand.Clone()
			a.Hi[i] = min(a.Hi[i], obst.Lo[i])
			if v := a.Volume(); v > bestVol {
				best, bestVol = a, v
			}
		}
		// Option B: keep the part above obst.Hi[i].
		if obst.Hi[i] < cand.Hi[i] {
			b := cand.Clone()
			b.Lo[i] = max(b.Lo[i], obst.Hi[i])
			if v := b.Volume(); v > bestVol {
				best, bestVol = b, v
			}
		}
	}
	if bestVol <= 0 {
		// No cut removes the overlap (obst spans cand in every
		// dimension): give up on this candidate.
		return geom.Box{Lo: best.Lo, Hi: best.Lo}
	}
	return best
}

// regions returns every bucket's box and the list of child boxes carved
// out of it, flattened in DFS order.
type sthRegion struct {
	box   geom.Box
	holes []geom.Box
}

func (t *sthTree) regions() []sthRegion {
	var out []sthRegion
	var walk func(n *sthNode)
	walk = func(n *sthNode) {
		reg := sthRegion{box: n.box}
		for _, c := range n.children {
			reg.holes = append(reg.holes, c.box)
		}
		out = append(out, reg)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// NestedBuckets builds the STHoles structure for the query boxes and
// returns each bucket region as (outer box, holes). Exposed for tests and
// for callers that want the faithful nested geometry.
func NestedBuckets(dim int, queries []geom.Box, maxBuckets int) []geom.Box {
	if maxBuckets == 0 {
		maxBuckets = 20000
	}
	t := newSTHTree(dim, maxBuckets)
	for _, q := range queries {
		t.drill(q)
	}
	// Flatten regions to disjoint boxes: each region contributes its box
	// with the holes subtracted via the same box-difference decomposition
	// the flat engine uses, yielding a disjoint partition equivalent to
	// the nested structure.
	var out []geom.Box
	for _, reg := range t.regions() {
		pieces := []geom.Box{reg.box}
		for _, h := range reg.holes {
			var next []geom.Box
			for _, p := range pieces {
				if !p.IntersectsBox(h) {
					next = append(next, p)
					continue
				}
				for _, piece := range splitAround(p, h) {
					// splitAround keeps the intersection piece as its
					// last element; drop pieces inside the hole.
					if h.ContainsBox(piece) {
						continue
					}
					next = append(next, piece)
				}
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	return out
}
