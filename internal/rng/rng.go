// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// All experiments in this reproduction must be exactly repeatable across
// machines and Go releases, so we do not rely on math/rand (whose default
// source and shuffling algorithms have changed between releases). The
// generator here is SplitMix64 feeding a xoshiro256** state, the same
// construction recommended by Blackman and Vigna; it is tiny, fast, and has
// well-understood statistical quality far beyond what selectivity-estimation
// experiments demand.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive independent streams with Split instead of sharing.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// only for seeding, as in the reference xoshiro implementation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of the
// receiver's future output. It consumes one value from the receiver.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard conversion.
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// modulo bias at n << 2^64 is negligible for our purposes, but we use
	// rejection to keep the stream exactly uniform.
	bound := uint64(n)
	limit := (math.MaxUint64 / bound) * bound
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method (deterministic given the stream, no trig tables needed).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
